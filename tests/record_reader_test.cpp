/** @file Tests for the incremental buffered record reader. */
#include "ski/record_reader.h"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/datasets.h"
#include "path/parser.h"
#include "ski/streamer.h"
#include "util/error.h"

using jsonski::ParseError;
using jsonski::ski::RecordReader;

namespace {

std::vector<std::string>
readAll(const std::string& text, size_t buffer)
{
    std::istringstream in(text);
    RecordReader reader(in, buffer);
    std::vector<std::string> out;
    std::string_view rec;
    while (reader.next(rec))
        out.push_back(std::string(rec));
    return out;
}

} // namespace

TEST(RecordReader, BasicNdjson)
{
    auto recs = readAll("{\"a\":1}\n{\"b\":2}\n[3]\n", 1 << 16);
    EXPECT_EQ(recs, (std::vector<std::string>{"{\"a\":1}", "{\"b\":2}",
                                              "[3]"}));
}

TEST(RecordReader, EmptyStream)
{
    EXPECT_TRUE(readAll("", 1024).empty());
    EXPECT_TRUE(readAll("  \n \t ", 1024).empty());
}

TEST(RecordReader, TinyBufferForcesRefills)
{
    std::string text;
    std::vector<std::string> expected;
    for (int i = 0; i < 200; ++i) {
        std::string rec =
            "{\"id\":" + std::to_string(i) + ",\"p\":[1,2,3]}";
        expected.push_back(rec);
        text += rec + "\n";
    }
    // Buffer fits only a handful of records at a time.
    auto recs = readAll(text, 300);
    EXPECT_EQ(recs, expected);
}

TEST(RecordReader, RecordLargerThanBufferGrows)
{
    std::string big = "{\"payload\":\"" + std::string(5000, 'x') + "\"}";
    std::string text = big + "\n{\"k\":1}";
    std::istringstream in(text);
    RecordReader reader(in, 256);
    std::string_view rec;
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec, big);
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec, "{\"k\":1}");
    EXPECT_FALSE(reader.next(rec));
    EXPECT_GT(reader.bufferSize(), 256u);
}

TEST(RecordReader, CountsAndBytes)
{
    std::istringstream in("{} [1] {}");
    RecordReader reader(in, 64);
    std::string_view rec;
    size_t n = 0;
    while (reader.next(rec))
        ++n;
    EXPECT_EQ(n, 3u);
    EXPECT_EQ(reader.recordsRead(), 3u);
    EXPECT_EQ(reader.bytesRead(), 2u + 3u + 2u);
}

TEST(RecordReader, UnterminatedTrailingRecordThrows)
{
    std::istringstream in("{\"a\":1}\n{\"b\":");
    RecordReader reader(in, 64);
    std::string_view rec;
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec, "{\"a\":1}");
    EXPECT_THROW(reader.next(rec), ParseError);
}

TEST(RecordReader, StrayBytesThrow)
{
    // The scan is eager, so the error may surface on any next() call;
    // draining the stream must throw.
    std::istringstream in("{} oops {}");
    RecordReader reader(in, 64);
    EXPECT_THROW(
        {
            std::string_view rec;
            while (reader.next(rec)) {
            }
        },
        ParseError);
}

TEST(RecordReader, StringsStraddlingRefills)
{
    // A record whose long string crosses several buffer refills, with
    // metacharacters inside.
    std::string big = "{\"s\":\"" + std::string(700, ',') + "}{" +
                      std::string(700, ']') + "\"}";
    std::string text = big + "\n[7]";
    std::istringstream in(text);
    RecordReader reader(in, 256);
    std::string_view rec;
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec, big);
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec, "[7]");
}

TEST(RecordReader, EscapeHeavyRecordsAcrossBufferGrowth)
{
    // Regression: record views must stay intact when the buffer grows
    // mid-stream while \uXXXX and \\ escapes straddle refill points.
    // Build records whose escape sequences land at every offset around
    // the 256-byte refill boundary.
    std::vector<std::string> records;
    for (size_t pad = 240; pad <= 260; ++pad) {
        std::string rec = "{\"k\":\"" + std::string(pad, 'a');
        rec += "\\u00e9\\\\\\\"\\n"; // é, backslash, quote, newline
        rec += "tail\", \"n\": " + std::to_string(pad) + "}";
        records.push_back(rec);
    }
    // One oversized record in the middle forces buffer growth; the
    // records after it must still come back byte-identical.  The run
    // length is even so the closing quote stays a real quote.
    std::string big = "{\"big\":\"" + std::string(3000, '\\') + "\"}";
    records.insert(records.begin() + records.size() / 2, big);

    std::string text;
    for (const std::string& r : records)
        text += r + "\n";
    auto out = readAll(text, 256);
    ASSERT_EQ(out.size(), records.size());
    for (size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(out[i], records[i]) << "record " << i;
}

TEST(RecordReader, EndToEndQueryOverGeneratedFeed)
{
    auto data = jsonski::gen::generateSmall(jsonski::gen::DatasetId::WM,
                                            128 * 1024);
    std::istringstream in(data.buffer);
    RecordReader reader(in, 4096);
    jsonski::ski::Streamer streamer(jsonski::path::parse("$.nm"));
    std::string_view rec;
    size_t matches = 0, records = 0;
    while (reader.next(rec)) {
        matches += streamer.run(rec).matches;
        ++records;
    }
    EXPECT_EQ(records, data.count());
    EXPECT_EQ(matches, data.count());
}
