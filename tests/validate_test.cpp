/** @file Tests for the full JSON validator. */
#include "json/validate.h"

#include <gtest/gtest.h>

using jsonski::json::validate;

TEST(Validate, AcceptsBasics)
{
    EXPECT_TRUE(validate("{}"));
    EXPECT_TRUE(validate("[]"));
    EXPECT_TRUE(validate("1"));
    EXPECT_TRUE(validate("-0.5e+10"));
    EXPECT_TRUE(validate("\"s\""));
    EXPECT_TRUE(validate("true"));
    EXPECT_TRUE(validate("false"));
    EXPECT_TRUE(validate("null"));
    EXPECT_TRUE(validate("  [1, 2]  "));
}

TEST(Validate, AcceptsNested)
{
    EXPECT_TRUE(validate(R"({"a":{"b":[{"c":[1,2,{"d":null}]}]}})"));
}

TEST(Validate, RejectsStructuralErrors)
{
    EXPECT_FALSE(validate(""));
    EXPECT_FALSE(validate("{"));
    EXPECT_FALSE(validate("}"));
    EXPECT_FALSE(validate("[1,]"));
    EXPECT_FALSE(validate("{\"a\":}"));
    EXPECT_FALSE(validate("{\"a\" 1}"));
    EXPECT_FALSE(validate("{a:1}"));
    EXPECT_FALSE(validate("[1 2]"));
    EXPECT_FALSE(validate("[1][2]"));
    EXPECT_FALSE(validate("{\"a\":1,}"));
}

TEST(Validate, RejectsBadNumbers)
{
    EXPECT_FALSE(validate("01"));
    EXPECT_FALSE(validate("-01"));
    EXPECT_FALSE(validate("1."));
    EXPECT_FALSE(validate("1.e3"));
    EXPECT_FALSE(validate("1e"));
    EXPECT_FALSE(validate("+1"));
    EXPECT_FALSE(validate("-"));
    EXPECT_TRUE(validate("0"));
    EXPECT_TRUE(validate("-0"));
    EXPECT_TRUE(validate("0.5"));
}

TEST(Validate, RejectsBadStrings)
{
    EXPECT_FALSE(validate("\"abc"));
    EXPECT_FALSE(validate("\"\\q\""));
    EXPECT_FALSE(validate("\"\\u12g4\""));
    EXPECT_FALSE(validate("\"a\nb\"")); // raw control char
    EXPECT_TRUE(validate("\"a\\nb\""));
    EXPECT_TRUE(validate("\"\\u1234\""));
}

TEST(Validate, RejectsBadLiterals)
{
    EXPECT_FALSE(validate("tru"));
    EXPECT_FALSE(validate("nul"));
    EXPECT_FALSE(validate("falsey"));  // trailing chars
}

TEST(Validate, ErrorPositionReported)
{
    auto r = validate("[1, x]");
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_position, 4u);
    EXPECT_FALSE(r.message.empty());
}

TEST(Validate, DeepNestingWithinLimit)
{
    std::string deep;
    for (int i = 0; i < 500; ++i)
        deep += '[';
    deep += '1';
    for (int i = 0; i < 500; ++i)
        deep += ']';
    EXPECT_TRUE(validate(deep));
}

TEST(Validate, NestingBeyondLimitRejected)
{
    std::string deep;
    for (int i = 0; i < 2000; ++i)
        deep += '[';
    deep += '1';
    for (int i = 0; i < 2000; ++i)
        deep += ']';
    EXPECT_FALSE(validate(deep));
}
