/**
 * @file
 * Cross-ISA kernel differential: every kernel compiled into this
 * binary must produce bit-identical quote/backslash/string bitmaps,
 * metacharacter bitmaps, prefix-XOR/select results, and UTF-8 verdicts
 * on every input — the contract that makes runtime dispatch safe
 * (DESIGN.md §11).  The scalar kernel is the reference; each other
 * runnable kernel is compared against it over:
 *
 *   - seeded random blocks (uniform bytes, JSON-flavored bytes, and
 *     high-bit-heavy bytes),
 *   - adversarial boundary blocks (backslash at byte 63 carrying into
 *     byte 64, quote at byte 0, odd- and even-length escape runs
 *     ending exactly at the block boundary),
 *   - every 64-byte block of the seam/fuzz corpus documents
 *     (src/testing), including the padded partial tail.
 *
 * On hosts where only the scalar kernel passes its cpuid probe the
 * cross-kernel tests skip with a note instead of silently passing.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "intervals/classifier.h"
#include "json/utf8.h"
#include "kernels/kernel.h"
#include "testing/differential.h"
#include "util/bits.h"
#include "util/error.h"
#include "util/rng.h"

using namespace jsonski;
namespace jt = jsonski::testing;
using intervals::BlockBits;
using intervals::ClassifierCarry;
using intervals::kBlockSize;

namespace {

/** Runnable kernels other than scalar; empty on scalar-only hosts. */
std::vector<const kernels::Kernel*>
alternateKernels()
{
    std::vector<const kernels::Kernel*> out;
    for (const kernels::Kernel* k : kernels::runnable()) {
        if (std::string_view(k->name) != "scalar")
            out.push_back(k);
    }
    return out;
}

const kernels::Kernel&
scalarKernel()
{
    const kernels::Kernel* k = kernels::find("scalar");
    EXPECT_NE(k, nullptr);
    return *k;
}

#define SKIP_WITHOUT_SIMD_KERNELS(alts)                                   \
    do {                                                                  \
        if ((alts).empty())                                               \
            GTEST_SKIP() << "only the scalar kernel is runnable on this " \
                            "host; cross-kernel differential skipped";    \
    } while (0)

/** 64-byte test blocks: random in three flavors + handcrafted
 *  boundary adversaries + every block of the fuzz/seam corpus. */
std::vector<std::string>
testBlocks()
{
    std::vector<std::string> blocks;
    Rng rng(0xC0FFEE);

    // Uniform random bytes: exercises every comparator including the
    // signed-compare pitfalls of movemask-based whitespace tests.
    for (int i = 0; i < 200; ++i) {
        std::string b(kBlockSize, '\0');
        for (char& c : b)
            c = static_cast<char>(rng.below(256));
        blocks.push_back(b);
    }

    // JSON-flavored bytes: dense in the nine metacharacters.
    static constexpr std::string_view flavored =
        "\"\\{}[],: \t\n\r0123456789abcxyz";
    for (int i = 0; i < 200; ++i) {
        std::string b(kBlockSize, '\0');
        for (char& c : b)
            c = flavored[rng.below(flavored.size())];
        blocks.push_back(b);
    }

    // High-bit-heavy bytes for the ASCII screen.
    for (int i = 0; i < 100; ++i) {
        std::string b(kBlockSize, '\0');
        for (char& c : b)
            c = static_cast<char>(0x60 + rng.below(0xA0));
        blocks.push_back(b);
    }

    // Boundary adversaries.
    std::string b(kBlockSize, 'x');
    b[63] = '\\'; // backslash at the last byte: carry into next block
    blocks.push_back(b);
    b = std::string(kBlockSize, 'x');
    b[0] = '"'; // quote at byte 0: carry-in sensitive
    blocks.push_back(b);
    for (size_t run = 1; run <= 8; ++run) {
        // Escape run of odd/even length ending exactly at byte 63.
        b = std::string(kBlockSize, 'x');
        for (size_t i = kBlockSize - run; i < kBlockSize; ++i)
            b[i] = '\\';
        blocks.push_back(b);
    }
    blocks.push_back(std::string(kBlockSize, '\\'));
    blocks.push_back(std::string(kBlockSize, '"'));
    b.clear();
    for (size_t i = 0; i < kBlockSize / 2; ++i)
        b += "\\\"";
    blocks.push_back(b);

    // Every full block of the corpus documents (the partial tails are
    // covered by the end-to-end document test below).
    for (const std::string& doc : jt::defaultCorpus(2048)) {
        for (size_t base = 0; base + kBlockSize <= doc.size();
             base += kBlockSize)
            blocks.push_back(doc.substr(base, kBlockSize));
    }
    return blocks;
}

bool
equalBits(const BlockBits& a, const BlockBits& b)
{
    return a.in_string == b.in_string && a.quote == b.quote &&
           a.open_brace == b.open_brace &&
           a.close_brace == b.close_brace &&
           a.open_bracket == b.open_bracket &&
           a.close_bracket == b.close_bracket && a.colon == b.colon &&
           a.comma == b.comma && a.whitespace == b.whitespace;
}

std::string
hexBlock(const std::string& block)
{
    std::string out;
    char buf[4];
    for (unsigned char c : block) {
        std::snprintf(buf, sizeof buf, "%02x", c);
        out += buf;
    }
    return out;
}

} // namespace

TEST(KernelRegistry, ScalarAlwaysCompiledAndRunnable)
{
    bool have_scalar = false;
    for (const kernels::Kernel* k : kernels::all()) {
        if (std::string_view(k->name) == "scalar") {
            have_scalar = true;
            EXPECT_TRUE(k->supported());
        }
    }
    EXPECT_TRUE(have_scalar);
    EXPECT_FALSE(kernels::runnable().empty());
    // Best-first ordering: priorities strictly decrease.
    const auto& all = kernels::all();
    for (size_t i = 1; i < all.size(); ++i)
        EXPECT_GT(all[i - 1]->priority, all[i]->priority);
}

TEST(KernelRegistry, FindKnowsAliases)
{
    EXPECT_NE(kernels::find("scalar"), nullptr);
    EXPECT_EQ(kernels::find("no-such-kernel"), nullptr);
    const kernels::Kernel* sse2 = kernels::find("sse2");
    const kernels::Kernel* westmere = kernels::find("westmere");
    EXPECT_EQ(sse2, westmere); // alias or both absent (non-x86)
}

TEST(KernelRegistry, SelectRejectsBadNamesTyped)
{
    EXPECT_THROW((void)kernels::select("bogus"), ConfigError);
    EXPECT_THROW((void)kernels::select(""), ConfigError);
    EXPECT_THROW((void)kernels::select("AVX2"), ConfigError); // case
    EXPECT_THROW((void)kernels::select("avx2 "), ConfigError); // junk
    EXPECT_EQ(&kernels::select("scalar"), kernels::find("scalar"));
}

TEST(KernelRegistry, ActiveIsRunnable)
{
    const kernels::Kernel& k = kernels::active();
    EXPECT_TRUE(k.supported());
    EXPECT_EQ(kernels::activeName(), std::string_view(k.name));
}

TEST(KernelEquivalence, RawBitmapsBitIdentical)
{
    auto alts = alternateKernels();
    SKIP_WITHOUT_SIMD_KERNELS(alts);
    const kernels::Kernel& ref = scalarKernel();
    static constexpr char probes[] = {'"', '\\', '{', '}', '[', ']',
                                      ':', ',', ' ', 'x'};
    for (const std::string& block : testBlocks()) {
        kernels::RawBits64 want = ref.raw_bits(block.data());
        for (const kernels::Kernel* k : alts) {
            kernels::RawBits64 got = k->raw_bits(block.data());
            EXPECT_EQ(got.backslash, want.backslash)
                << k->name << " block " << hexBlock(block);
            EXPECT_EQ(got.quote, want.quote) << k->name;
            EXPECT_EQ(got.open_brace, want.open_brace) << k->name;
            EXPECT_EQ(got.close_brace, want.close_brace) << k->name;
            EXPECT_EQ(got.open_bracket, want.open_bracket) << k->name;
            EXPECT_EQ(got.close_bracket, want.close_bracket) << k->name;
            EXPECT_EQ(got.colon, want.colon) << k->name;
            EXPECT_EQ(got.comma, want.comma) << k->name;
            EXPECT_EQ(got.whitespace, want.whitespace) << k->name;

            kernels::StringRaw sw = ref.string_raw(block.data());
            kernels::StringRaw sg = k->string_raw(block.data());
            EXPECT_EQ(sg.backslash, sw.backslash) << k->name;
            EXPECT_EQ(sg.quote, sw.quote) << k->name;

            for (char c : probes)
                EXPECT_EQ(k->eq_bits(block.data(), c),
                          ref.eq_bits(block.data(), c))
                    << k->name << " eq '" << c << "'";
            EXPECT_EQ(k->whitespace_bits(block.data()),
                      ref.whitespace_bits(block.data()))
                << k->name << " block " << hexBlock(block);
            EXPECT_EQ(k->ascii_block(block.data()),
                      ref.ascii_block(block.data()))
                << k->name << " block " << hexBlock(block);
        }
    }
}

TEST(KernelEquivalence, WordPrimitivesBitIdentical)
{
    auto alts = alternateKernels();
    SKIP_WITHOUT_SIMD_KERNELS(alts);
    const kernels::Kernel& ref = scalarKernel();
    Rng rng(7);
    std::vector<uint64_t> words = {0,
                                   1,
                                   ~uint64_t{0},
                                   uint64_t{1} << 63,
                                   0x5555555555555555ULL,
                                   0xAAAAAAAAAAAAAAAAULL};
    for (int i = 0; i < 500; ++i)
        words.push_back(rng.next());
    for (uint64_t w : words) {
        for (const kernels::Kernel* k : alts) {
            EXPECT_EQ(k->prefix_xor(w), ref.prefix_xor(w))
                << k->name << " word " << w;
            int pc = bits::popcount(w);
            for (int kth = 1; kth <= pc; ++kth)
                EXPECT_EQ(k->select_bit(w, kth), ref.select_bit(w, kth))
                    << k->name << " word " << w << " k " << kth;
        }
    }
}

TEST(KernelEquivalence, ClassifierChainOverSeamCorpus)
{
    auto alts = alternateKernels();
    SKIP_WITHOUT_SIMD_KERNELS(alts);
    const kernels::Kernel& ref = scalarKernel();

    // Thread carries across every block of each document under one
    // kernel, then replay under the others: the full classification
    // stream (bitmaps AND carries, including the padded tail) must be
    // bit-identical, exactly what chunked ingestion relies on.
    for (const std::string& doc : jt::defaultCorpus(2048)) {
        std::vector<BlockBits> want;
        ClassifierCarry want_carry;
        {
            kernels::Override o(ref);
            ClassifierCarry carry;
            size_t base = 0;
            for (; base + kBlockSize <= doc.size(); base += kBlockSize)
                want.push_back(
                    intervals::classifyBlock(doc.data() + base, carry));
            if (base < doc.size())
                want.push_back(intervals::classifyPartialBlock(
                    doc.data() + base, doc.size() - base, carry));
            want_carry = carry;
        }
        for (const kernels::Kernel* k : alts) {
            kernels::Override o(*k);
            ClassifierCarry carry;
            std::vector<BlockBits> got;
            size_t base = 0;
            for (; base + kBlockSize <= doc.size(); base += kBlockSize)
                got.push_back(
                    intervals::classifyBlock(doc.data() + base, carry));
            if (base < doc.size())
                got.push_back(intervals::classifyPartialBlock(
                    doc.data() + base, doc.size() - base, carry));
            ASSERT_EQ(got.size(), want.size());
            for (size_t i = 0; i < got.size(); ++i)
                EXPECT_TRUE(equalBits(got[i], want[i]))
                    << k->name << " block " << i << " of doc "
                    << doc.substr(0, 80);
            EXPECT_EQ(carry.prev_escaped, want_carry.prev_escaped)
                << k->name;
            EXPECT_EQ(carry.prev_in_string, want_carry.prev_in_string)
                << k->name;
        }
    }
}

TEST(KernelEquivalence, Utf8VerdictsIdentical)
{
    auto alts = alternateKernels();
    SKIP_WITHOUT_SIMD_KERNELS(alts);
    const kernels::Kernel& ref = scalarKernel();

    std::vector<std::string> samples = jt::defaultCorpus(2048);
    // Invalid and boundary-placed sequences: the error *position* must
    // match too, which catches ASCII-screen off-by-one-block bugs.
    samples.push_back(std::string(64, 'a') + "\xC3");           // truncated
    samples.push_back(std::string(63, 'a') + "\xC3\xA9" + "b"); // straddle
    samples.push_back(std::string(64, 'a') + "\xED\xA0\x80");   // surrogate
    samples.push_back(std::string(100, 'a') + "\xF4\x90\x80\x80"); // >max
    samples.push_back("\x80 continuation first");
    samples.push_back(std::string(200, 'a') + "\xE2\x82\xAC" +
                      std::string(200, 'b'));

    for (const std::string& s : samples) {
        json::Utf8Result want;
        {
            kernels::Override o(ref);
            want = json::validateUtf8(s);
        }
        for (const kernels::Kernel* k : alts) {
            kernels::Override o(*k);
            json::Utf8Result got = json::validateUtf8(s);
            EXPECT_EQ(got.ok, want.ok) << k->name;
            EXPECT_EQ(got.error_position, want.error_position) << k->name;
        }
    }
}
