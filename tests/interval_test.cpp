/** @file Tests for structural-interval word operations (Algorithm 3). */
#include "intervals/interval.h"

#include <gtest/gtest.h>

#include "util/rng.h"

using namespace jsonski::intervals;
namespace bits = jsonski::bits;

TEST(Interval, BuildBasic)
{
    // Metachar at bit 9, start at 3: interval covers [3, 9).
    uint64_t bm = uint64_t{1} << 9;
    uint64_t iv = buildInterval(bm, 3);
    EXPECT_EQ(iv, uint64_t{0b111111} << 3);
    EXPECT_EQ(intervalEnd(iv), 9);
    EXPECT_FALSE(intervalOpen(iv));
}

TEST(Interval, BuildSkipsHitAtStart)
{
    // A metachar at the start position itself is excluded.
    uint64_t bm = (uint64_t{1} << 3) | (uint64_t{1} << 7);
    uint64_t iv = buildInterval(bm, 3);
    EXPECT_EQ(intervalEnd(iv), 7);
}

TEST(Interval, BuildOpenInterval)
{
    // No metachar after the start: interval runs to the end of word.
    uint64_t iv = buildInterval(0, 10);
    EXPECT_EQ(iv, ~uint64_t{0} << 10);
    EXPECT_TRUE(intervalOpen(iv));
    EXPECT_EQ(intervalEnd(iv), 64);
}

TEST(Interval, BuildFromZero)
{
    uint64_t bm = uint64_t{1} << 5;
    uint64_t iv = buildInterval(bm, 0);
    EXPECT_EQ(iv, uint64_t{0b11111});
    EXPECT_EQ(intervalEnd(iv), 5);
}

TEST(Interval, BuildAdjacent)
{
    // Metachar immediately after start: interval is a single character.
    uint64_t bm = uint64_t{1} << 4;
    uint64_t iv = buildInterval(bm, 3);
    EXPECT_EQ(iv, uint64_t{1} << 3);
    EXPECT_EQ(intervalEnd(iv), 4);
}

TEST(Interval, NextIntervalBetweenFirstTwoBits)
{
    uint64_t bm = (uint64_t{1} << 4) | (uint64_t{1} << 11) |
                  (uint64_t{1} << 30);
    uint64_t iv = nextInterval(bm);
    EXPECT_EQ(iv, (bits::maskBelow(11) & ~bits::maskBelow(4)));
    EXPECT_EQ(intervalEnd(iv), 11);
}

TEST(Interval, NextIntervalSingleBitIsOpen)
{
    uint64_t bm = uint64_t{1} << 20;
    uint64_t iv = nextInterval(bm);
    EXPECT_TRUE(intervalOpen(iv));
    EXPECT_EQ(iv, ~uint64_t{0} << 20);
}

TEST(Interval, PropertyIntervalIsContiguousRun)
{
    jsonski::Rng rng(5);
    for (int iter = 0; iter < 2000; ++iter) {
        uint64_t bm = rng.next() & rng.next() & rng.next();
        int start = static_cast<int>(rng.below(64));
        uint64_t iv = buildInterval(bm, start);
        // The interval must be a contiguous run of 1s starting at start.
        ASSERT_NE(iv & (uint64_t{1} << start), 0u);
        // (iv >> start) + 1 must be a power of two for a contiguous run.
        uint64_t run = iv >> start;
        EXPECT_EQ(run & (run + 1), 0u) << "not contiguous";
        // No metachar bit strictly inside the interval after start.
        EXPECT_EQ(bm & iv & ~(uint64_t{1} << start) &
                      ~bits::maskBelow(start),
                  0u);
    }
}
