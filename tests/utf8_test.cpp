/** @file Tests for the UTF-8 validator. */
#include "json/utf8.h"

#include <gtest/gtest.h>

#include <string>

using jsonski::json::validateUtf8;

TEST(Utf8, AcceptsAscii)
{
    EXPECT_TRUE(validateUtf8(""));
    EXPECT_TRUE(validateUtf8("hello world"));
    EXPECT_TRUE(validateUtf8(std::string(1000, 'a')));
}

TEST(Utf8, AcceptsWellFormedMultibyte)
{
    EXPECT_TRUE(validateUtf8("caf\xc3\xa9"));               // é (2B)
    EXPECT_TRUE(validateUtf8("\xe4\xb8\xad\xe6\x96\x87"));  // 中文 (3B)
    EXPECT_TRUE(validateUtf8("\xf0\x9f\x98\x80"));          // 😀 (4B)
    EXPECT_TRUE(validateUtf8("\xc2\x80"));                  // U+0080 min 2B
    EXPECT_TRUE(validateUtf8("\xe0\xa0\x80"));              // U+0800 min 3B
    EXPECT_TRUE(validateUtf8("\xf0\x90\x80\x80"));          // U+10000 min 4B
    EXPECT_TRUE(validateUtf8("\xf4\x8f\xbf\xbf"));          // U+10FFFF max
    EXPECT_TRUE(validateUtf8("\xed\x9f\xbf"));              // U+D7FF
    EXPECT_TRUE(validateUtf8("\xee\x80\x80"));              // U+E000
}

TEST(Utf8, RejectsMalformed)
{
    EXPECT_FALSE(validateUtf8("\x80"));         // stray continuation
    EXPECT_FALSE(validateUtf8("\xc3"));         // truncated 2B
    EXPECT_FALSE(validateUtf8("\xc3(z"));       // bad continuation
    EXPECT_FALSE(validateUtf8("\xe2\x82"));     // truncated 3B
    EXPECT_FALSE(validateUtf8("\xf0\x9f\x98")); // truncated 4B
    EXPECT_FALSE(validateUtf8("\xc0\xaf"));     // overlong '/'
    EXPECT_FALSE(validateUtf8("\xc1\xbf"));     // overlong
    EXPECT_FALSE(validateUtf8("\xe0\x9f\xbf")); // overlong 3B
    EXPECT_FALSE(validateUtf8("\xf0\x8f\xbf\xbf")); // overlong 4B
    EXPECT_FALSE(validateUtf8("\xed\xa0\x80")); // surrogate U+D800
    EXPECT_FALSE(validateUtf8("\xed\xbf\xbf")); // surrogate U+DFFF
    EXPECT_FALSE(validateUtf8("\xf4\x90\x80\x80")); // > U+10FFFF
    EXPECT_FALSE(validateUtf8("\xf5\x80\x80\x80")); // invalid lead F5
    EXPECT_FALSE(validateUtf8("\xff"));
}

TEST(Utf8, ErrorPositionReported)
{
    std::string s = "good ascii then \xc3(";
    auto r = validateUtf8(s);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_position, s.size() - 2);
}

TEST(Utf8, FastPathBlocksWithLateError)
{
    // >64 bytes of ASCII (vector fast path) before the bad byte.
    std::string s(200, 'x');
    s += '\x80';
    auto r = validateUtf8(s);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_position, 200u);
}

TEST(Utf8, MultibyteStraddlingBlockBoundary)
{
    // A 4-byte sequence crossing a 64-byte boundary.
    std::string s(62, 'a');
    s += "\xf0\x9f\x98\x80"; // bytes 62..65
    s += std::string(70, 'b');
    EXPECT_TRUE(validateUtf8(s));
}
