/**
 * @file
 * Wire-protocol unit tests: query-list splitting, header and trailer
 * round trips, match framing, and the incremental ResponseParser —
 * including feeding it one byte at a time, which is what arbitrary
 * socket chunking degenerates to.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/protocol.h"
#include "util/error.h"
#include "util/parse.h"

using namespace jsonski;
using namespace jsonski::service;

namespace {

TEST(SplitQueries, TopLevelCommasOnly)
{
    auto q = splitQueries("$.a[1:3],$.b");
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0], "$.a[1:3]");
    EXPECT_EQ(q[1], "$.b");
}

TEST(SplitQueries, TrimsWhitespace)
{
    auto q = splitQueries("  $.a , $.b  ");
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0], "$.a");
    EXPECT_EQ(q[1], "$.b");
}

TEST(SplitQueries, NormalizedJoinIsStable)
{
    // The plan-cache key: both spellings normalize to one string.
    EXPECT_EQ(joinQueries(splitQueries("$.a, $.b")),
              joinQueries(splitQueries("$.a,$.b")));
}

TEST(SplitQueries, SliceCommaStaysLiteral)
{
    auto q = splitQueries("$.a[1,3]");
    ASSERT_EQ(q.size(), 1u);
    EXPECT_EQ(q[0], "$.a[1,3]");
}

TEST(Header, RoundTrip)
{
    RequestHeader h;
    h.queries = {"$.a[*].b", "$..c"};
    h.records = true;
    h.count_only = true;
    h.limit = 7;
    h.length = 1234;
    h.has_length = true;

    RequestHeader back = parseHeader(
        encodeHeader(h).substr(0, encodeHeader(h).size() - 1));
    EXPECT_EQ(back.queries, h.queries);
    EXPECT_TRUE(back.records);
    EXPECT_TRUE(back.count_only);
    EXPECT_EQ(back.limit, 7u);
    EXPECT_TRUE(back.has_length);
    EXPECT_EQ(back.length, 1234u);
    EXPECT_FALSE(back.stats);
}

TEST(Header, DocRoundTrip)
{
    RequestHeader h;
    h.queries = {"$.a[*]"};
    h.has_length = true;
    h.length = 99;
    h.has_doc = true;
    h.doc_id = "orders-2026-08";

    std::string line = encodeHeader(h);
    RequestHeader back =
        parseHeader(std::string_view(line).substr(0, line.size() - 1));
    EXPECT_TRUE(back.has_doc);
    EXPECT_EQ(back.doc_id, "orders-2026-08");
    EXPECT_TRUE(back.has_length);
    EXPECT_EQ(back.length, 99u);
}

TEST(Header, DocRejections)
{
    const char* bad[] = {
        "jsq/1 $.a doc=",                  // empty id
        "jsq/1 $.a doc=d1",                // doc= requires length=
        "jsq/1 $.a doc=d1 records length=9", // resident doc vs records
        "jsq/1 !stats doc=d1 length=9",    // stats takes no flags
    };
    for (const char* line : bad) {
        try {
            parseHeader(line);
            ADD_FAILURE() << "accepted: " << line;
        } catch (const ParseError& e) {
            EXPECT_EQ(e.code(), ErrorCode::BadRequest) << line;
        }
    }
}

TEST(Header, StatsRequest)
{
    RequestHeader h = parseHeader("jsq/1 !stats");
    EXPECT_TRUE(h.stats);
    EXPECT_TRUE(h.queries.empty());
}

TEST(Header, RejectionsAreTypedBadRequest)
{
    const char* bad[] = {
        "",                      // empty line
        "jsq/2 $.a",             // wrong magic
        "jsq/1",                 // missing query list
        "jsq/1  ",               // empty query list
        "jsq/1 $.a frobnicate",  // unknown flag
        "jsq/1 $.a limit=",      // empty flag value
        "jsq/1 $.a limit=x",     // non-numeric flag value
        "jsq/1 $.a length=-1",   // sign is not a digit
        "http/1.1 GET /",        // something else entirely
    };
    for (const char* line : bad) {
        try {
            parseHeader(line);
            ADD_FAILURE() << "accepted: " << line;
        } catch (const ParseError& e) {
            EXPECT_EQ(e.code(), ErrorCode::BadRequest) << line;
        }
    }
}

TEST(Header, QueriesFlagDeclaresContinuationLines)
{
    RequestHeader h = parseHeader("jsq/1 $.a queries=2");
    ASSERT_EQ(h.queries.size(), 1u);
    EXPECT_EQ(h.queries[0], "$.a");
    EXPECT_EQ(h.pending_queries, 2u);

    const char* bad[] = {
        "jsq/1 $.a queries=",    // empty count
        "jsq/1 $.a queries=0",   // zero lines makes no sense
        "jsq/1 $.a queries=x",   // non-numeric
        "jsq/1 !stats queries=1",// stats takes no flags
    };
    for (const char* line : bad) {
        try {
            parseHeader(line);
            ADD_FAILURE() << "accepted: " << line;
        } catch (const ParseError& e) {
            EXPECT_EQ(e.code(), ErrorCode::BadRequest) << line;
        }
    }
}

TEST(QueryLine, RoundTripAndRejections)
{
    std::string line = encodeQueryLine("$.a[1:3].b");
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.back(), '\n');
    EXPECT_EQ(parseQueryLine(
                  std::string_view(line).substr(0, line.size() - 1)),
              "$.a[1:3].b");
    // Whitespace around the query trims away, like the header list.
    EXPECT_EQ(parseQueryLine("query=  $.x "), "$.x");

    for (const char* bad : {"query=", "query= ", "$.a", ""}) {
        try {
            parseQueryLine(bad);
            ADD_FAILURE() << "accepted: '" << bad << "'";
        } catch (const ParseError& e) {
            EXPECT_EQ(e.code(), ErrorCode::BadRequest) << bad;
        }
    }
}

TEST(Header, MultilineEncodingRoundTrips)
{
    // The scales-past-the-header-cap form: first query inline, the
    // rest shipped as query= continuation lines declared by queries=N.
    RequestHeader h;
    h.queries = {"$.a[*]", "$..b", "$[?(@.c=='x, y')]"};
    h.multiline = true;
    h.has_length = true;
    h.length = 10;

    std::string wire = encodeHeader(h);
    std::vector<std::string> lines;
    for (size_t pos = 0; pos < wire.size();) {
        size_t nl = wire.find('\n', pos);
        lines.push_back(wire.substr(pos, nl - pos));
        pos = nl + 1;
    }
    ASSERT_EQ(lines.size(), 3u);

    RequestHeader back = parseHeader(lines[0]);
    ASSERT_EQ(back.queries.size(), 1u);
    EXPECT_EQ(back.queries[0], "$.a[*]");
    EXPECT_EQ(back.pending_queries, 2u);
    EXPECT_TRUE(back.has_length);
    for (size_t i = 0; i < back.pending_queries; ++i)
        back.queries.push_back(parseQueryLine(lines[1 + i]));
    back.pending_queries = 0;
    EXPECT_EQ(back.queries, h.queries);

    // A single query never grows continuation lines, multiline or not.
    RequestHeader one;
    one.queries = {"$.a"};
    one.multiline = true;
    std::string flat = encodeHeader(one);
    EXPECT_EQ(flat.find("queries="), std::string::npos);
    EXPECT_EQ(flat.find("query="), std::string::npos);
}

TEST(Trailer, QmapRoundTrip)
{
    // A duplicate-bearing request: positions 0 and 1 share distinct
    // query 0 (both report its count), position 2 owns its own.
    Trailer t;
    t.ok = true;
    t.matches = 12;
    t.per_query = {5, 5, 2};
    t.qmap = {0, 0, 2};

    std::string line = encodeTrailer(t);
    Trailer back = parseTrailer(
        std::string_view(line).substr(0, line.size() - 1));
    EXPECT_EQ(back.per_query, t.per_query);
    EXPECT_EQ(back.qmap, t.qmap);

    // Omitted on single-query responses.
    Trailer single;
    single.ok = true;
    EXPECT_EQ(encodeTrailer(single).find("qmap="), std::string::npos);
}

TEST(Trailer, OkRoundTrip)
{
    Trailer t;
    t.ok = true;
    t.matches = 42;
    t.bytes_in = 4096;
    t.ff = {1, 2, 3, 4, 5};
    t.plan = "hit";
    t.index = "miss";
    t.per_query = {40, 2};

    std::string line = encodeTrailer(t);
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.back(), '\n');
    Trailer back = parseTrailer(
        std::string_view(line).substr(0, line.size() - 1));
    EXPECT_TRUE(back.ok);
    EXPECT_EQ(back.matches, 42u);
    EXPECT_EQ(back.bytes_in, 4096u);
    EXPECT_EQ(back.ff, t.ff);
    EXPECT_EQ(back.plan, "hit");
    EXPECT_EQ(back.index, "miss");
    EXPECT_EQ(back.per_query, t.per_query);
}

TEST(Trailer, IndexFieldOmittedWhenEmpty)
{
    Trailer t;
    t.ok = true;
    std::string line = encodeTrailer(t);
    EXPECT_EQ(line.find("index="), std::string::npos);
    Trailer back = parseTrailer(
        std::string_view(line).substr(0, line.size() - 1));
    EXPECT_TRUE(back.index.empty());
}

TEST(Trailer, ErrorRoundTrip)
{
    Trailer t;
    t.ok = false;
    t.code = ErrorCode::DeadlineExpired;
    t.error_pos = 99;
    t.bytes_in = 100;

    std::string line = encodeTrailer(t);
    Trailer back = parseTrailer(
        std::string_view(line).substr(0, line.size() - 1));
    EXPECT_FALSE(back.ok);
    EXPECT_EQ(back.code, ErrorCode::DeadlineExpired);
    EXPECT_EQ(back.error_pos, 99u);
}

TEST(Trailer, EveryErrorCodeNameRoundTrips)
{
    // The trailer carries codes by name; every enum value must survive.
    for (int c = 0; c <= static_cast<int>(ErrorCode::MatchLimitExceeded);
         ++c) {
        auto code = static_cast<ErrorCode>(c);
        EXPECT_EQ(errorCodeFromName(errorCodeName(code)), code);
    }
}

TEST(ResponseParser, MatchValueWithNewlineRoundTrips)
{
    // Length-prefixed framing: embedded newlines must not split frames.
    std::string wire = encodeMatch(0, "line1\nline2");
    Trailer t;
    t.matches = 1;
    wire += encodeTrailer(t);

    ResponseParser p;
    p.feed(wire);
    ASSERT_TRUE(p.done());
    ASSERT_EQ(p.matches().size(), 1u);
    EXPECT_EQ(p.matches()[0].second, "line1\nline2");
}

TEST(ResponseParser, ByteAtATime)
{
    std::string wire = encodeMatch(0, R"({"k": [1, 2]})");
    wire += encodeMatch(1, "\"v\"");
    Trailer t;
    t.matches = 2;
    t.per_query = {1, 1};
    wire += encodeTrailer(t);

    std::vector<std::pair<size_t, std::string>> streamed;
    ResponseParser p([&](size_t qi, std::string_view v) {
        streamed.emplace_back(qi, std::string(v));
    });
    for (char c : wire)
        p.feed(std::string_view(&c, 1));
    ASSERT_TRUE(p.done());
    ASSERT_EQ(streamed.size(), 2u);
    EXPECT_EQ(streamed[0].first, 0u);
    EXPECT_EQ(streamed[0].second, R"({"k": [1, 2]})");
    EXPECT_EQ(streamed[1].first, 1u);
    EXPECT_EQ(streamed[1].second, "\"v\"");
    EXPECT_EQ(p.trailer().matches, 2u);
}

TEST(ResponseParser, FramingViolationThrows)
{
    ResponseParser p;
    EXPECT_THROW(p.feed("garbage that is neither match nor trailer\n"),
                 ParseError);
}

TEST(ParseSize, StrictValidation)
{
    size_t v = 0;
    EXPECT_TRUE(parseSize("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parseSize("65536", v));
    EXPECT_EQ(v, 65536u);

    // The jsq bug class this replaces: strtoul accepted all of these.
    EXPECT_FALSE(parseSize("", v));
    EXPECT_FALSE(parseSize("12abc", v));
    EXPECT_FALSE(parseSize("-1", v));
    EXPECT_FALSE(parseSize("+1", v));
    EXPECT_FALSE(parseSize(" 1", v));
    EXPECT_FALSE(parseSize("0x10", v));
    EXPECT_FALSE(parseSize("99999999999999999999999999", v)); // overflow

    EXPECT_TRUE(parsePositiveSize("1", v));
    EXPECT_FALSE(parsePositiveSize("0", v));
}

} // namespace
