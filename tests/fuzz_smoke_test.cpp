/**
 * @file
 * Time-boxed differential fuzz smoke run, registered as a ctest so the
 * malformed-input contract is re-proven on every build (including the
 * ASan+UBSan CI job).  Ten thousand seeded mutants across every
 * generator dataset; JSONSKI_FUZZ_MUTANTS overrides the budget for
 * longer local or CI soaks.
 */
#include "testing/differential.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "json/validate.h"
#include "kernels/kernel.h"
#include "path/parser.h"
#include "testing/mutator.h"
#include "util/error.h"

using namespace jsonski;
// gtest also owns a ::testing namespace; alias ours unambiguously.
namespace jt = jsonski::testing;

namespace {

size_t
mutantBudget()
{
    if (const char* env = std::getenv("JSONSKI_FUZZ_MUTANTS")) {
        long v = std::atol(env);
        if (v > 0)
            return static_cast<size_t>(v);
    }
    return 10000;
}

} // namespace

TEST(FuzzSmoke, CorpusIsValidAndCoversEveryDataset)
{
    auto corpus = jt::defaultCorpus();
    // 6 datasets x (up to 4 small records + 1 large) + 3 handcrafted.
    EXPECT_GE(corpus.size(), 6u * 2u + 3u);
    for (const std::string& doc : corpus)
        EXPECT_TRUE(json::validate(doc)) << doc.substr(0, 120);
}

TEST(FuzzSmoke, MutatorIsDeterministic)
{
    jt::StructuredMutator a(99), b(99);
    std::string doc = R"({"k":[1,2,{"x":"y"}],"m":"z"})";
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.mutate(doc), b.mutate(doc));
}

TEST(FuzzSmoke, MutatorActuallyMutates)
{
    jt::StructuredMutator m(7);
    std::string doc = R"({"k":[1,2,3],"m":"z"})";
    size_t changed = 0, invalid = 0;
    for (int i = 0; i < 200; ++i) {
        std::vector<jt::Mutation> edits;
        std::string mut = m.mutate(doc, &edits);
        changed += mut != doc;
        invalid += !json::validate(mut);
        EXPECT_FALSE(edits.empty() && mut != doc);
    }
    // The corpus must be genuinely damaged most of the time.
    EXPECT_GT(changed, 150u);
    EXPECT_GT(invalid, 100u);
}

TEST(FuzzSmoke, QueryMutatorIsDeterministic)
{
    jt::QueryMutator a(31), b(31);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.wellFormed(), b.wellFormed());
        EXPECT_EQ(a.nearMiss(), b.nearMiss());
    }
}

TEST(FuzzSmoke, WellFormedQueriesAlwaysParseAndRoundTrip)
{
    jt::QueryMutator m(12021);
    size_t with_filter = 0, with_descendant = 0, non_canonical = 0;
    for (int i = 0; i < 2000; ++i) {
        std::string text = m.wellFormed();
        path::PathQuery q;
        ASSERT_NO_THROW(q = path::parse(text)) << text;
        with_filter += q.hasFilter();
        with_descendant += q.hasDescendant();
        non_canonical += q.toString() != text;
        // The canonical form is a parse fixed point (plan-cache key).
        EXPECT_EQ(path::parse(q.toString()), q) << text;
    }
    // The generator must exercise the new grammar surface, including
    // non-canonical whitespace spellings that normalize away.
    EXPECT_GT(with_filter, 400u);
    EXPECT_GT(with_descendant, 400u);
    EXPECT_GT(non_canonical, 100u);
}

TEST(FuzzSmoke, NearMissesRejectCleanlyOrParse)
{
    jt::QueryMutator m(777);
    size_t rejected = 0, accepted = 0;
    for (int i = 0; i < 2000; ++i) {
        std::string text = m.nearMiss();
        try {
            (void)path::parse(text);
            ++accepted;
        } catch (const PathError& e) {
            ++rejected;
            // Rejections must point inside the text they reject.
            if (e.position() != PathError::kNoPosition) {
                EXPECT_LE(e.position(), text.size()) << text;
            }
        }
        // Anything else (std::exception, crash) fails the test.
    }
    // Single-byte damage must usually break the grammar, but some
    // edits stay legal — both outcomes must occur.
    EXPECT_GT(rejected, 1000u);
    EXPECT_GT(accepted, 0u);
}

TEST(FuzzSmoke, TenThousandMutantsNoDivergenceNoEscape)
{
    jt::FuzzConfig config;
    config.seed = 20260805;
    config.mutants = mutantBudget();
    config.corpus = jt::defaultCorpus();
    config.queries = jt::defaultQueries();

    jt::FuzzReport report = jt::runDifferentialFuzz(config);

    EXPECT_EQ(report.executed, config.mutants);
    EXPECT_GT(report.valid_mutants, 0u);
    EXPECT_GT(report.invalid_mutants, 0u);
    // Damage must actually be detected sometimes, not just skipped.
    EXPECT_GT(report.parse_errors, 0u);
    // The seam-hunting mode must have replayed mutants through the
    // chunked path with forced seams (several per mutant on average).
    EXPECT_GT(report.seam_replays, report.executed);
    // On multi-kernel hosts every mutant must also have been replayed
    // under each alternate SIMD kernel (unless the environment pinned
    // the replay set via JSONSKI_TEST_KERNELS).
    if (kernels::runnable().size() > 1 &&
        std::getenv("JSONSKI_TEST_KERNELS") == nullptr) {
        EXPECT_GE(report.kernel_replays, report.executed / 2);
    }
    // The grammar leg must have run one generated query per mutant and
    // seen the parser reject a healthy share of the near-misses.
    EXPECT_EQ(report.grammar_runs, report.executed);
    EXPECT_GT(report.grammar_rejects, report.executed / 4);
    // The index leg must have replayed the warm path and probed a
    // corrupted sidecar for a healthy share of the mutants (only ones
    // whose streaming run escaped are skipped).
    EXPECT_GE(report.index_replays, report.executed / 2);
    EXPECT_EQ(report.index_mutations, report.index_replays);
    // The query-set leg must have run one batched-vs-sequential pass
    // per mutant, and the near-miss-salted sets must have been
    // rejected atomically a healthy share of the time.
    EXPECT_EQ(report.set_runs, report.executed);
    EXPECT_GT(report.set_rejects, report.executed / 4);
    std::string details;
    for (const std::string& f : report.failures)
        details += "\n  " + f;
    EXPECT_TRUE(report.ok())
        << report.divergences << " divergences, " << report.escapes
        << " escapes:" << details;
}
