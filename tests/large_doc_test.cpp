/**
 * @file
 * Large-document differential tests: random documents big enough that
 * every structure routinely crosses many 64-byte blocks — long
 * strings, long primitive runs, deep mixed nesting — with all five
 * engines compared value for value.  This is the heavy-caliber
 * companion to differential_test.cpp's small-document fuzzing.
 */
#include <gtest/gtest.h>

#include "baseline/dom/query.h"
#include "baseline/jpstream/engine.h"
#include "baseline/pison/query.h"
#include "baseline/tape/query.h"
#include "json/validate.h"
#include "json/writer.h"
#include "path/parser.h"
#include "ski/streamer.h"
#include "util/rng.h"

using namespace jsonski;
using jsonski::path::parse;

namespace {

/** Value generator biased toward block-crossing shapes. */
void
genValue(Rng& rng, json::Writer& w, int depth)
{
    double shape = rng.real();
    if (depth <= 0 || shape < 0.35) {
        switch (rng.below(4)) {
          case 0:
            // Long strings with embedded metacharacters and escapes.
            w.string("x" + std::string(rng.below(300), ',') +
                     "\"}{][:" + rng.ident(rng.below(100)));
            break;
          case 1:
            w.number(rng.range(-1000000000, 1000000000));
            break;
          case 2:
            w.boolean(rng.chance(0.5));
            break;
          default:
            w.null();
            break;
        }
    } else if (shape < 0.55) {
        // Long primitive arrays: exercise comma batching across blocks.
        w.beginArray();
        size_t n = rng.below(400);
        for (size_t i = 0; i < n; ++i)
            w.number(static_cast<int64_t>(i));
        w.endArray();
    } else if (shape < 0.8) {
        w.beginObject();
        size_t n = rng.below(12);
        for (size_t i = 0; i < n; ++i) {
            w.key("key_" + std::to_string(i) + "_" +
                  rng.ident(rng.below(20)));
            genValue(rng, w, depth - 1);
        }
        // The queried keys, placed late so skipping precedes them.
        if (rng.chance(0.5)) {
            w.key("target");
            genValue(rng, w, depth - 1);
        }
        if (rng.chance(0.4)) {
            w.key("list");
            w.beginArray();
            size_t m = rng.below(6);
            for (size_t j = 0; j < m; ++j)
                genValue(rng, w, depth - 1);
            w.endArray();
        }
        w.endObject();
    } else {
        w.beginArray();
        size_t n = rng.below(8);
        for (size_t i = 0; i < n; ++i)
            genValue(rng, w, depth - 1);
        w.endArray();
    }
}

void
expectAllEnginesAgree(const std::string& doc, const char* query)
{
    auto q = parse(query);
    path::CollectSink ref;
    ski::Streamer(q).run(doc, &ref);

    path::CollectSink jp, dm, tp, pi;
    jpstream::Engine(q).run(doc, &jp);
    dom::parseAndQuery(doc, q, &dm);
    tape::parseAndQuery(doc, q, &tp);
    pison::parseAndQuery(doc, q, &pi);
    ASSERT_EQ(jp.values, ref.values) << query << " (jpstream)";
    ASSERT_EQ(dm.values, ref.values) << query << " (dom)";
    ASSERT_EQ(tp.values, ref.values) << query << " (tape)";
    ASSERT_EQ(pi.values, ref.values) << query << " (pison)";
}

} // namespace

TEST(LargeDoc, AllEnginesAgreeOnBlockCrossingDocuments)
{
    Rng rng(987654);
    const char* queries[] = {
        "$.target",
        "$.target.target",
        "$.list[*].target",
        "$.list[2:5]",
        "$.target.list[0]",
        "$.key_0_",  // likely miss
    };
    size_t total_bytes = 0;
    size_t total_matches = 0;
    for (int iter = 0; iter < 30; ++iter) {
        json::Writer w;
        w.beginObject();
        w.key("pad");
        genValue(rng, w, 3);
        w.key("target");
        genValue(rng, w, 4);
        w.key("list");
        w.beginArray();
        size_t n = 2 + rng.below(8);
        for (size_t i = 0; i < n; ++i)
            genValue(rng, w, 3);
        w.endArray();
        w.endObject();
        std::string doc = w.take();
        ASSERT_TRUE(json::validate(doc));
        total_bytes += doc.size();
        for (const char* q : queries) {
            expectAllEnginesAgree(doc, q);
            total_matches += ski::query(doc, q).count;
        }
    }
    // The corpus must be genuinely large and matching.
    EXPECT_GT(total_bytes, 400u * 1024);
    EXPECT_GT(total_matches, 50u);
}

TEST(LargeDoc, DescendantAgreesSkiVsDomOnBigDocuments)
{
    Rng rng(13579);
    for (int iter = 0; iter < 10; ++iter) {
        json::Writer w;
        w.beginObject();
        w.key("root");
        genValue(rng, w, 5);
        w.endObject();
        std::string doc = w.take();
        ASSERT_TRUE(json::validate(doc));
        auto q = parse("$..target");
        path::CollectSink a, b;
        ski::Streamer(q).run(doc, &a);
        dom::parseAndQuery(doc, q, &b);
        ASSERT_EQ(a.values, b.values);
    }
}
