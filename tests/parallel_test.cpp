/** @file Tests for the parallel single-record JSONSki extension. */
#include "ski/parallel.h"

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "path/parser.h"
#include "ski/streamer.h"

using namespace jsonski;
using jsonski::path::parse;

namespace {

/** Parallel result must equal the serial streamer's, values included. */
void
expectMatchesSerial(const std::string& json, const char* query,
                    size_t threads = 4)
{
    auto q = parse(query);
    ski::Streamer serial(q);
    path::CollectSink want;
    serial.run(json, &want);

    ski::ParallelStreamer par(q);
    ThreadPool pool(threads);
    path::CollectSink got;
    size_t n = par.run(json, pool, &got);
    EXPECT_EQ(n, want.values.size()) << query;
    EXPECT_EQ(got.values, want.values) << query;
}

} // namespace

TEST(ParallelStreamer, RootArrayQueries)
{
    std::string json = R"([{"v":1},{"v":2},{"w":0},{"v":3},[9],7])";
    expectMatchesSerial(json, "$[*].v");
    expectMatchesSerial(json, "$[*]");
    expectMatchesSerial(json, "$[1:4].v");
    expectMatchesSerial(json, "$[2]");
    expectMatchesSerial(json, "$[10]");
}

TEST(ParallelStreamer, KeyPrefixBeforeArray)
{
    std::string json =
        R"({"meta": 1, "pd": [{"id":1},{"id":2},{"id":3}], "z": 0})";
    expectMatchesSerial(json, "$.pd[*].id");
    expectMatchesSerial(json, "$.pd[0:2].id");
    expectMatchesSerial(json, "$.pd[*]");
    expectMatchesSerial(json, "$.missing[*].id");
}

TEST(ParallelStreamer, KeyOnlyQueryFallsBackToSerial)
{
    std::string json = R"({"a": {"b": 42}})";
    auto q = parse("$.a.b");
    ski::ParallelStreamer par(q);
    EXPECT_FALSE(par.parallelizable());
    ThreadPool pool(2);
    path::CollectSink sink;
    EXPECT_EQ(par.run(json, pool, &sink), 1u);
    EXPECT_EQ(sink.values, (std::vector<std::string>{"42"}));
}

TEST(ParallelStreamer, TypeMismatches)
{
    ThreadPool pool(2);
    EXPECT_EQ(ski::ParallelStreamer(parse("$[*].v"))
                  .run(R"({"a":1})", pool),
              0u);
    EXPECT_EQ(ski::ParallelStreamer(parse("$.a[*]"))
                  .run(R"({"a": 5})", pool),
              0u);
    EXPECT_EQ(ski::ParallelStreamer(parse("$.a[*]")).run("[]", pool), 0u);
}

TEST(ParallelStreamer, EmptyAndTinyArrays)
{
    expectMatchesSerial("[]", "$[*].v");
    expectMatchesSerial("[1]", "$[*]");
    expectMatchesSerial(R"([{"v":1}])", "$[*].v");
}

TEST(ParallelStreamer, DeepTailQuery)
{
    std::string json =
        R"([{"a":{"b":[{"c":1},{"c":2}]}},{"a":{"b":[{"c":3}]}}])";
    expectMatchesSerial(json, "$[*].a.b[*].c");
    expectMatchesSerial(json, "$[*].a.b[1].c");
}

TEST(ParallelStreamer, GeneratedDatasets)
{
    using gen::DatasetId;
    struct Case
    {
        DatasetId id;
        const char* query;
    };
    const Case cases[] = {
        {DatasetId::TT, "$[*].en.urls[*].url"},
        {DatasetId::TT, "$[*].text"},
        {DatasetId::BB, "$.pd[*].cp[1:3].id"},
        {DatasetId::WP, "$[10:21].cl.P150[*].ms.pty"},
        {DatasetId::NSPL, "$.dt[*][*][2:4]"},
    };
    for (const Case& c : cases) {
        std::string json = gen::generateLarge(c.id, 1024 * 1024);
        expectMatchesSerial(json, c.query, 4);
    }
}

TEST(ParallelStreamer, ThreadCountInvariance)
{
    std::string json = gen::generateLarge(gen::DatasetId::WM, 256 * 1024);
    auto q = parse("$.it[*].nm");
    ski::ParallelStreamer par(q);
    size_t expected = ski::Streamer(q).run(json).matches;
    for (size_t t : {1u, 2u, 3u, 8u}) {
        ThreadPool pool(t);
        EXPECT_EQ(par.run(json, pool), expected) << t;
    }
}
