/** @file Tests for the DOM (RapidJSON-class) baseline. */
#include "baseline/dom/query.h"

#include <gtest/gtest.h>

#include "baseline/dom/parser.h"
#include "path/parser.h"
#include "util/error.h"

using namespace jsonski::dom;
using jsonski::ParseError;
using jsonski::path::CollectSink;
using jsonski::path::parse;

TEST(DomParser, BuildsTree)
{
    std::string json = R"({"a": [1, {"b": "x"}], "c": true})";
    Document doc;
    parse(json, doc);
    const Node* root = doc.root();
    ASSERT_TRUE(root && root->isObject());
    ASSERT_EQ(root->members.size(), 2u);
    const Node* a = root->find("a");
    ASSERT_TRUE(a && a->isArray());
    ASSERT_EQ(a->elements.size(), 2u);
    EXPECT_EQ(a->elements[0]->text, "1");
    const Node* b = a->elements[1]->find("b");
    ASSERT_TRUE(b);
    EXPECT_EQ(b->text, "\"x\"");
    const Node* c = root->find("c");
    ASSERT_TRUE(c);
    EXPECT_EQ(c->type, Node::Type::Bool);
    EXPECT_EQ(doc.nodeCount(), 6u);
}

TEST(DomParser, ContainerSpans)
{
    std::string json = R"(  {"a": [1, 2]}  )";
    Document doc;
    parse(json, doc);
    EXPECT_EQ(doc.root()->text, R"({"a": [1, 2]})");
    EXPECT_EQ(doc.root()->find("a")->text, "[1, 2]");
}

TEST(DomParser, EmptyContainers)
{
    Document doc;
    parse("{}", doc);
    EXPECT_TRUE(doc.root()->members.empty());
    Document doc2;
    parse(R"({"a":[]})", doc2);
    EXPECT_TRUE(doc2.root()->find("a")->elements.empty());
}

TEST(DomParser, Malformed)
{
    Document doc;
    EXPECT_THROW(parse("", doc), ParseError);
    EXPECT_THROW(parse("{", doc), ParseError);
    EXPECT_THROW(parse("[1,,2]", doc), ParseError);
    EXPECT_THROW(parse("{\"a\":1}}", doc), ParseError);
    EXPECT_THROW(parse("tru", doc), ParseError);
}

TEST(DomParser, DepthLimit)
{
    std::string deep(10000, '[');
    Document doc;
    EXPECT_THROW(parse(deep, doc), ParseError);
}

TEST(DomQuery, BasicPath)
{
    CollectSink sink;
    size_t n = parseAndQuery(R"({"place":{"name":"Manhattan"}})",
                             parse("$.place.name"), &sink);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(sink.values[0], "\"Manhattan\"");
}

TEST(DomQuery, SliceOverArray)
{
    CollectSink sink;
    size_t n =
        parseAndQuery("[0,10,20,30,40]", parse("$[1:4]"), &sink);
    EXPECT_EQ(n, 3u);
    EXPECT_EQ(sink.values, (std::vector<std::string>{"10", "20", "30"}));
}

TEST(DomQuery, WildcardNested)
{
    size_t n = parseAndQuery(R"([{"v":[1,2]},{"v":[3]},{"w":[4]}])",
                             parse("$[*].v[*]"));
    EXPECT_EQ(n, 3u);
}

TEST(DomQuery, TypeMismatch)
{
    EXPECT_EQ(parseAndQuery(R"({"a": 5})", parse("$.a.b")), 0u);
    EXPECT_EQ(parseAndQuery(R"({"a": 5})", parse("$.a[0]")), 0u);
    EXPECT_EQ(parseAndQuery("[1,2]", parse("$.a")), 0u);
}

TEST(DomQuery, RootQuery)
{
    CollectSink sink;
    size_t n = parseAndQuery(R"({"a":1})", parse("$"), &sink);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(sink.values[0], R"({"a":1})");
}

TEST(DomQuery, OutOfRangeIndex)
{
    EXPECT_EQ(parseAndQuery("[1,2]", parse("$[9]")), 0u);
    EXPECT_EQ(parseAndQuery("[1,2]", parse("$[1]")), 1u);
}
