/** @file Tests for the lazy bitmap accessors of the stream cursor. */
#include "intervals/cursor.h"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.h"

using namespace jsonski::intervals;
namespace bits = jsonski::bits;

TEST(CursorLazy, BitsMatchEagerClassification)
{
    std::string s = R"({"a": [1, "x,y"], "b": {"c": 2}, "d": null})";
    s += std::string(100, ' ');
    s += R"([{"e": 3}])";
    StreamCursor lazy(s);
    StreamCursor eager(s);
    for (size_t base = 0; base < s.size(); base += kBlockSize) {
        lazy.setPos(base);
        eager.setPos(base);
        const BlockBits& full = eager.block();
        EXPECT_EQ(lazy.bits('{'), full.open_brace) << base;
        EXPECT_EQ(lazy.bits('}'), full.close_brace) << base;
        EXPECT_EQ(lazy.bits('['), full.open_bracket) << base;
        EXPECT_EQ(lazy.bits(']'), full.close_bracket) << base;
        EXPECT_EQ(lazy.bits(':'), full.colon) << base;
        EXPECT_EQ(lazy.bits(','), full.comma) << base;
    }
}

TEST(CursorLazy, Bits2And3AreUnions)
{
    std::string s = R"([{"k": [1, 2]}, {"k": [3]}])";
    s.resize(64, ' ');
    StreamCursor cur(s);
    EXPECT_EQ(cur.bits2('{', '['), cur.bits('{') | cur.bits('['));
    EXPECT_EQ(cur.bits3(',', '}', ']'),
              cur.bits(',') | cur.bits('}') | cur.bits(']'));
}

TEST(CursorLazy, StringLayerMasksLazily)
{
    std::string s = R"({"m": "a{b}c[d]e:f,g"})";
    s.resize(64, ' ');
    StreamCursor cur(s);
    // Metachars inside the value string must be masked.
    EXPECT_EQ(bits::popcount(cur.bits('{')), 1);
    EXPECT_EQ(bits::popcount(cur.bits('}')), 1);
    EXPECT_EQ(bits::popcount(cur.bits('[')), 0);
    EXPECT_EQ(bits::popcount(cur.bits(':')), 1);
    EXPECT_EQ(bits::popcount(cur.bits(',')), 0);
}

TEST(CursorLazy, StringsAtThreadsCarriesForward)
{
    // A string crossing three blocks.
    std::string s = "[\"" + std::string(150, 'x') + "\", 1]";
    StreamCursor cur(s);
    const StringBits& b0 = cur.stringsAt(0);
    EXPECT_NE(b0.in_string, 0u);
    const StringBits& b1 = cur.stringsAt(1);
    EXPECT_EQ(b1.in_string, ~uint64_t{0}); // fully inside
    const StringBits& b2 = cur.stringsAt(2);
    EXPECT_NE(b2.quote, 0u); // closing quote lives here
}

TEST(CursorLazy, ScalarClassifierModeAgrees)
{
    jsonski::Rng rng(5);
    std::string s;
    static constexpr char chars[] = "{}[]:,\"\\ ab1\n";
    for (int i = 0; i < 500; ++i)
        s += chars[rng.below(sizeof(chars) - 1)];
    StreamCursor simd(s, /*scalar_classifier=*/false);
    StreamCursor scalar(s, /*scalar_classifier=*/true);
    for (size_t base = 0; base < s.size(); base += kBlockSize) {
        simd.setPos(base);
        scalar.setPos(base);
        EXPECT_EQ(simd.strings().in_string, scalar.strings().in_string)
            << base;
        EXPECT_EQ(simd.bits('{'), scalar.bits('{')) << base;
        EXPECT_EQ(simd.bits(','), scalar.bits(',')) << base;
    }
}

TEST(CursorLazy, PartialTailBlockIsPadded)
{
    std::string s = R"({"a":1})"; // 8 bytes
    StreamCursor cur(s);
    // Bits beyond the input must be zero for structural classes.
    EXPECT_EQ(cur.bits('}') >> s.size(), 0u);
    EXPECT_EQ(cur.bits('{'), 1u);
}

TEST(CursorLazy, EagerBlockCacheInvalidatesAcrossBlocks)
{
    std::string s(200, ',');
    StreamCursor cur(s);
    EXPECT_EQ(cur.block().comma, ~uint64_t{0});
    cur.setPos(64);
    EXPECT_EQ(cur.block().comma, ~uint64_t{0});
    cur.setPos(192); // final partial block: 8 commas
    EXPECT_EQ(bits::popcount(cur.block().comma), 8);
}
