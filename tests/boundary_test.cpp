/**
 * @file
 * Parameterized block-boundary sweeps: every bit-parallel algorithm in
 * the repository works on 64-byte words, so every interesting structure
 * is slid across a word boundary at all 64+ alignments and checked
 * against the character-level DOM engine.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/dom/query.h"
#include "intervals/chunk_source.h"
#include "intervals/cursor.h"
#include "json/validate.h"
#include "path/parser.h"
#include "ski/skipper.h"
#include "ski/streamer.h"

using namespace jsonski;
using jsonski::path::parse;

namespace {

/** The document under test; structurally diverse on purpose. */
const char* kCore =
    R"({"alpha": [1, -2.5e3, "s,]}"], "beta": {"gamma": {"x": true},)"
    R"( "delta": [[0], [1, 2], []]}, "eps\"c": null, "tail": "end"})";

const char* kQueries[] = {
    "$.alpha[2]",       "$.beta.gamma.x", "$.beta.delta[1][0]",
    "$.tail",           "$.alpha[*]",     "$.beta.delta[*][*]",
    "$.missing.attr",   "$.beta.delta[0:2]",
};

/** Pad with @p offset spaces so structures straddle block boundaries. */
std::string
padded(size_t offset)
{
    return std::string(offset, ' ') + kCore;
}

class AlignmentSweep : public ::testing::TestWithParam<size_t>
{
};

} // namespace

TEST_P(AlignmentSweep, JsonSkiMatchesDomAtEveryAlignment)
{
    std::string doc = padded(GetParam());
    for (const char* qtext : kQueries) {
        auto q = parse(qtext);
        ski::Streamer streamer(q);
        path::CollectSink ski_sink;
        streamer.run(doc, &ski_sink);
        path::CollectSink dom_sink;
        dom::parseAndQuery(doc, q, &dom_sink);
        EXPECT_EQ(ski_sink.values, dom_sink.values)
            << "offset=" << GetParam() << " query=" << qtext;
    }
}

TEST_P(AlignmentSweep, SkipperFindsObjectEndAtEveryAlignment)
{
    std::string doc = padded(GetParam()) + "###";
    intervals::StreamCursor cur(doc);
    ski::Skipper skip(cur);
    cur.setPos(GetParam()); // at the '{'
    skip.overObj(ski::Group::G2);
    EXPECT_EQ(doc.compare(cur.pos(), 3, "###"), 0)
        << "offset=" << GetParam();
}

TEST_P(AlignmentSweep, StringEndAtEveryAlignment)
{
    // A string whose escaped quote lands at a different in-block
    // offset for each parameter.
    std::string doc = std::string(GetParam(), ' ') +
                      "\"pad\\\"ding\" rest";
    intervals::StreamCursor cur(doc);
    ski::Skipper skip(cur);
    size_t end = skip.stringEnd(GetParam());
    EXPECT_EQ(doc[end - 1], '"');
    EXPECT_EQ(doc.substr(end, 5), " rest");
}

INSTANTIATE_TEST_SUITE_P(AllInBlockOffsets, AlignmentSweep,
                         ::testing::Range<size_t>(0, 130));

namespace {

class BackslashRunSweep : public ::testing::TestWithParam<int>
{
};

} // namespace

TEST_P(BackslashRunSweep, EscapeRunsStraddlingBlockEdges)
{
    // A backslash run of parameter length placed so it ends exactly at
    // the 64-byte boundary; whether the quote that follows closes the
    // string depends on the run parity.
    int run = GetParam();
    std::string prefix = "{\"k\": \"";
    std::string doc = prefix;
    doc += std::string(static_cast<size_t>(64 - (prefix.size() % 64)) +
                           64 - static_cast<size_t>(run),
                       'x');
    doc += std::string(static_cast<size_t>(run), '\\');
    if (run % 2 == 0) {
        // The quote closes the string.
        doc += "\", \"m\": [1, 2]}";
    } else {
        // The quote is escaped; the string continues and closes later.
        doc += "\" after\", \"m\": [1, 2]}";
    }
    ASSERT_TRUE(jsonski::json::validate(doc)) << "run=" << run;
    // Compare SIMD vs reference classification over the whole doc.
    using namespace jsonski::intervals;
    ClassifierCarry c1, c2;
    for (size_t base = 0; base < doc.size(); base += kBlockSize) {
        size_t len = std::min(kBlockSize, doc.size() - base);
        BlockBits a = len == kBlockSize
                          ? classifyBlock(doc.data() + base, c1)
                          : classifyPartialBlock(doc.data() + base, len,
                                                 c1);
        BlockBits b = classifyBlockReference(doc.data() + base, len, c2);
        ASSERT_EQ(a.in_string, b.in_string) << "run=" << run;
        ASSERT_EQ(a.quote, b.quote) << "run=" << run;
        ASSERT_EQ(a.comma, b.comma) << "run=" << run;
    }
    // And the engine behaves identically to the DOM baseline.
    auto q = parse("$.m[1]");
    EXPECT_EQ(ski::Streamer(q).run(doc).matches,
              dom::parseAndQuery(doc, q))
        << "run=" << run;
}

INSTANTIATE_TEST_SUITE_P(RunLengths, BackslashRunSweep,
                         ::testing::Range(0, 20));

namespace {

class ElementCountSweep : public ::testing::TestWithParam<size_t>
{
};

} // namespace

TEST_P(ElementCountSweep, SliceAcrossSizes)
{
    // Arrays of every size around the block capacity; slice semantics
    // must agree with DOM everywhere.
    size_t n = GetParam();
    std::string doc = "[";
    for (size_t i = 0; i < n; ++i) {
        if (i)
            doc += ',';
        doc += std::to_string(i);
    }
    doc += "]";
    for (const char* qtext : {"$[3:7]", "$[0]", "$[*]", "$[15:40]"}) {
        auto q = parse(qtext);
        path::CollectSink a, b;
        ski::Streamer(q).run(doc, &a);
        dom::parseAndQuery(doc, q, &b);
        EXPECT_EQ(a.values, b.values) << "n=" << n << " q=" << qtext;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ElementCountSweep,
                         ::testing::Values(0, 1, 2, 3, 6, 7, 8, 15, 16,
                                           17, 20, 31, 32, 33, 40, 63,
                                           64, 65, 100, 128, 200));

TEST(TailPadding, StructuralFinalByteAtEveryOffset)
{
    // Regression for StreamCursor::prepareTail: when the document's
    // final byte is structural (a closing brace/bracket) and lands at
    // any in-block offset — including 63, where the padded tail block
    // is one byte short of full — the close must still classify and
    // the query must still complete.  Documents ending at offset 63
    // exactly fill a block and must NOT take the tail path at all.
    auto q = parse("$.k[0]");
    for (size_t total = 60; total <= 132; ++total) {
        // total bytes, last byte '}': {"k": [1], "p": "x..x"}
        std::string fixed = R"({"k": [1], "p": ")";
        size_t pad = total - fixed.size() - 2; // payload + `"}`
        std::string doc = fixed + std::string(pad, 'x') + "\"}";
        ASSERT_EQ(doc.size(), total);
        path::CollectSink a, b;
        ski::Streamer(q).run(doc, &a);
        dom::parseAndQuery(doc, q, &b);
        EXPECT_EQ(a.values, b.values) << "total=" << total;
        ASSERT_EQ(a.values.size(), 1u) << "total=" << total;
        EXPECT_EQ(a.values[0], "1");
    }
}

TEST(TailPadding, CloseScanIntoPaddedTail)
{
    // The G2/G3 close scans read whole blocks; when the matching close
    // sits in the padded tail the padding must read as whitespace, not
    // as stale bytes.  Exercise the skipper directly at sizes around
    // one and two blocks.
    for (size_t inner : {40u, 55u, 56u, 57u, 61u, 62u, 120u, 125u}) {
        std::string doc = "[" + std::string(inner, ' ') + "1]";
        intervals::StreamCursor cur(doc);
        ski::Skipper skip(cur);
        skip.overAry(ski::Group::G2);
        EXPECT_EQ(cur.pos(), doc.size()) << "inner=" << inner;
    }
}

namespace {

/**
 * Run @p qtext over @p doc with chunk seams at the offsets in
 * @p schedule (SplitSource cycles it) and return the collected values;
 * the whole-buffer run of the same pair is the expected value.
 */
std::vector<std::string>
chunkedValues(const std::string& doc, const char* qtext,
              std::vector<size_t> schedule, size_t chunk_bytes = 64)
{
    intervals::SplitSource src(doc, std::move(schedule));
    path::CollectSink sink;
    ski::Streamer(parse(qtext)).run(src, &sink, chunk_bytes);
    return sink.values;
}

std::vector<std::string>
wholeValues(const std::string& doc, const char* qtext)
{
    path::CollectSink sink;
    ski::Streamer(parse(qtext)).runResident(doc, &sink);
    return sink.values;
}

} // namespace

TEST(ChunkSeam, BackslashAsLastByteOfChunk)
{
    // The escape's backslash is the final byte a chunk delivers; the
    // escaped character arrives in the next chunk.  The classifier's
    // trailing-backslash carry must survive the seam or the quote after
    // it flips the in-string parity.
    const std::string doc = R"({"k": "a\"b", "m": 1})";
    size_t bs = doc.find('\\');
    ASSERT_NE(bs, std::string::npos);
    for (const char* q : {"$.k", "$.m"}) {
        std::vector<std::string> expect = wholeValues(doc, q);
        // One seam right after the backslash, then the rest in one go.
        EXPECT_EQ(chunkedValues(doc, q, {bs + 1, doc.size() + 1}), expect)
            << "q=" << q;
        // Degenerate: every byte its own chunk (a seam after the
        // backslash and everywhere else).
        EXPECT_EQ(chunkedValues(doc, q, {1}), expect) << "q=" << q;
    }
}

TEST(ChunkSeam, QuoteAsFirstByteOfNextChunk)
{
    // A string-opening and a string-closing quote each arriving as the
    // first byte of a fresh chunk: the in-string parity carried from
    // the previous chunk decides their meaning.
    const std::string doc = R"({"key": "value", "n": [1, 2]})";
    size_t open = doc.find("\"value\"");
    size_t close = open + 6; // the closing quote of "value"
    ASSERT_EQ(doc[open], '"');
    ASSERT_EQ(doc[close], '"');
    for (const char* q : {"$.key", "$.n[1]"}) {
        std::vector<std::string> expect = wholeValues(doc, q);
        EXPECT_EQ(chunkedValues(doc, q, {open, doc.size() + 1}), expect)
            << "open-quote seam, q=" << q;
        EXPECT_EQ(chunkedValues(doc, q, {close, doc.size() + 1}), expect)
            << "close-quote seam, q=" << q;
    }
}

TEST(ChunkSeam, KeySpanningThreeChunks)
{
    // The matched attribute name itself is cut twice: the scan hold
    // must keep the key's first chunk resident until the comparison
    // runs, and the comparison must see the reassembled bytes.
    const std::string doc =
        R"({"unrelated": 0, "spanning_key_name": {"x": 42}, "z": null})";
    size_t key = doc.find("spanning_key_name");
    ASSERT_NE(key, std::string::npos);
    std::vector<std::string> expect = wholeValues(doc, "$.spanning_key_name.x");
    ASSERT_EQ(expect, (std::vector<std::string>{"42"}));
    // Seams after the first 4 and first 11 bytes of the key, cutting it
    // into three chunks, at several refill granularities.
    std::vector<size_t> schedule = {key + 4, 7, doc.size() + 1};
    for (size_t chunk : {size_t{16}, size_t{64}, size_t{4096}}) {
        EXPECT_EQ(chunkedValues(doc, "$.spanning_key_name.x", schedule,
                                chunk),
                  expect)
            << "chunk=" << chunk;
    }
    // And with every byte of the document its own chunk.
    EXPECT_EQ(chunkedValues(doc, "$.spanning_key_name.x", {1}), expect);
}
