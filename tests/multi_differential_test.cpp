/**
 * @file
 * Property test: on random documents and random query *sets*, the
 * multi-query streamer must agree with per-query single runs, value
 * for value and in order.
 */
#include <gtest/gtest.h>

#include "json/validate.h"
#include "json/writer.h"
#include "path/ast.h"
#include "ski/multi.h"
#include "ski/streamer.h"
#include "util/rng.h"

using namespace jsonski;
using jsonski::path::PathQuery;
using jsonski::path::PathStep;

namespace {

const std::vector<std::string> kKeys = {"a", "b", "cc", "id", "v", "nm"};

void
genValue(Rng& rng, json::Writer& w, int depth)
{
    double shape = rng.real();
    if (depth <= 0 || shape < 0.4) {
        switch (rng.below(4)) {
          case 0:
            w.number(rng.range(-999, 999));
            break;
          case 1:
            w.string(rng.ident(1 + rng.below(8)));
            break;
          case 2:
            w.boolean(rng.chance(0.5));
            break;
          default:
            w.null();
            break;
        }
    } else if (shape < 0.72) {
        w.beginObject();
        std::vector<std::string> keys = kKeys;
        size_t n = rng.below(4);
        for (size_t i = 0; i < n && !keys.empty(); ++i) {
            size_t pick = rng.below(keys.size());
            w.key(keys[pick]);
            keys.erase(keys.begin() + static_cast<long>(pick));
            genValue(rng, w, depth - 1);
        }
        w.endObject();
    } else {
        w.beginArray();
        size_t n = rng.below(5);
        for (size_t i = 0; i < n; ++i)
            genValue(rng, w, depth - 1);
        w.endArray();
    }
}

PathQuery
genQuery(Rng& rng)
{
    PathQuery q;
    size_t steps = 1 + rng.below(3);
    for (size_t i = 0; i < steps; ++i) {
        switch (rng.below(4)) {
          case 0:
            q.steps.push_back(
                PathStep::makeKey(kKeys[rng.below(kKeys.size())]));
            break;
          case 1:
            q.steps.push_back(PathStep::makeIndex(rng.below(3)));
            break;
          case 2: {
            size_t lo = rng.below(2);
            q.steps.push_back(
                PathStep::makeSlice(lo, lo + 1 + rng.below(3)));
            break;
          }
          default:
            q.steps.push_back(PathStep::makeWildcard());
            break;
        }
    }
    return q;
}

} // namespace

TEST(MultiDifferential, RandomQuerySetsAgreeWithSingleRuns)
{
    Rng rng(424242);
    size_t total = 0;
    for (int iter = 0; iter < 300; ++iter) {
        json::Writer w;
        w.beginObject();
        std::vector<std::string> keys = kKeys;
        size_t n = 1 + rng.below(4);
        for (size_t i = 0; i < n && !keys.empty(); ++i) {
            size_t pick = rng.below(keys.size());
            w.key(keys[pick]);
            keys.erase(keys.begin() + static_cast<long>(pick));
            genValue(rng, w, 4);
        }
        w.endObject();
        std::string doc = w.take();
        ASSERT_TRUE(json::validate(doc));

        size_t k = 1 + rng.below(4);
        std::vector<PathQuery> queries;
        for (size_t i = 0; i < k; ++i)
            queries.push_back(genQuery(rng));

        // Random sets collide: the streamer deduplicates, so each
        // input position maps onto its distinct id.
        ski::MultiStreamer multi(queries);
        const path::QuerySet& set = multi.querySet();
        ski::MultiCollectSink msink(set.size());
        auto mr = multi.run(doc, &msink);

        for (size_t i = 0; i < k; ++i) {
            size_t qi = set.id_of[i];
            ski::Streamer single(queries[i]);
            path::CollectSink ssink;
            auto sr = single.run(doc, &ssink);
            ASSERT_EQ(mr.matches[qi], sr.matches)
                << "query " << queries[i].toString() << "\ndoc " << doc;
            ASSERT_EQ(msink.values[qi], ssink.values)
                << "query " << queries[i].toString() << "\ndoc " << doc;
            total += sr.matches;
        }
    }
    EXPECT_GT(total, 20u); // the corpus exercised real matches
}
