/**
 * @file
 * Tests for the cached structural semi-index (src/index/): builder
 * level semantics, content hashing, sidecar serialization with its
 * corruption contract (every defect -> typed IndexError), and the
 * byte-bounded DocumentIndexCache.
 */
#include "index/structural_index.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "index/index_cache.h"
#include "intervals/chunk_source.h"
#include "util/bits.h"

using namespace jsonski;
using index::ContentHasher;
using index::DocumentIndexCache;
using index::hashContent;
using index::IndexBuilder;
using index::IndexError;
using index::StructuralIndex;

namespace {

/** All set positions answered by repeated nextClose-style queries. */
std::vector<size_t>
closers(const StructuralIndex& ix, size_t level)
{
    std::vector<size_t> out;
    size_t from = 0;
    for (;;) {
        size_t p = ix.nextClose(level, from);
        if (p == StructuralIndex::kNone)
            return out;
        out.push_back(p);
        from = p + 1;
    }
}

} // namespace

TEST(ContentHash, IndependentOfFeedGranularity)
{
    std::string doc = R"({"a": [1, 2, 3], "b": "x\"y"})";
    uint64_t whole = hashContent(doc);
    for (size_t stride : {1u, 3u, 7u, 8u, 13u, 64u}) {
        ContentHasher h;
        for (size_t i = 0; i < doc.size(); i += stride)
            h.update(doc.data() + i, std::min(stride, doc.size() - i));
        EXPECT_EQ(h.finish(), whole) << "stride " << stride;
    }
}

TEST(ContentHash, LengthFolded)
{
    // Same words, different lengths must differ (trailing zero bytes
    // must not collide with their absence).
    std::string a(8, '\0');
    std::string b(16, '\0');
    EXPECT_NE(hashContent(a), hashContent(b));
    EXPECT_NE(hashContent(""), hashContent(std::string(1, '\0')));
}

TEST(StructuralIndexBuild, LevelConvention)
{
    //                  0123456789012345678
    std::string doc = R"({"a":{"b":1},"c":2})";
    StructuralIndex ix = StructuralIndex::build(doc);
    ASSERT_TRUE(ix.usable());
    EXPECT_EQ(ix.docSize(), doc.size());
    EXPECT_EQ(ix.maxDepth(), 2u);
    // Root object closer at level 0; inner at level 1.
    EXPECT_EQ(closers(ix, 0), (std::vector<size_t>{18}));
    EXPECT_EQ(closers(ix, 1), (std::vector<size_t>{11}));
    // Root comma between the two attributes.
    EXPECT_EQ(ix.countCommas(0, 0, doc.size()), 1u);
    EXPECT_EQ(ix.selectComma(0, 0, doc.size(), 1), 12u);
    EXPECT_EQ(ix.countCommas(1, 0, doc.size()), 0u);
}

TEST(StructuralIndexBuild, StringsAreMasked)
{
    std::string doc = R"({"k": "}],:,{", "m": [1,2]})";
    StructuralIndex ix = StructuralIndex::build(doc);
    ASSERT_TRUE(ix.usable());
    EXPECT_EQ(closers(ix, 0).size(), 1u); // only the real root '}'
    // The only level-0 comma is the attribute separator.
    EXPECT_EQ(ix.countCommas(0, 0, doc.size()), 1u);
    EXPECT_EQ(ix.countCommas(1, 0, doc.size()), 1u); // inside [1,2]
}

TEST(StructuralIndexBuild, NextOpenOrCloseSeesChildOpeners)
{
    std::string doc = R"([1, 2, {"a": 3}, 4])";
    StructuralIndex ix = StructuralIndex::build(doc);
    ASSERT_TRUE(ix.usable());
    // First opener-or-closer at level 0 after the '[' is the child '{'.
    EXPECT_EQ(ix.nextOpenOrClose(0, 1), 7u);
    // After the child object: the root ']'.
    EXPECT_EQ(ix.nextOpenOrClose(0, 15), 18u);
}

TEST(StructuralIndexBuild, EntryCarriesResumeInsideStrings)
{
    // A string spanning the first block boundary: block 1 starts
    // in-string, and the index must know it.
    std::string doc = "{\"k\": \"" + std::string(80, 'x') + "\", \"m\": 1}";
    StructuralIndex ix = StructuralIndex::build(doc);
    ASSERT_TRUE(ix.usable());
    intervals::ClassifierCarry c0 = ix.carryFor(0);
    EXPECT_EQ(c0.prev_in_string, 0u);
    EXPECT_EQ(c0.prev_escaped, 0u);
    intervals::ClassifierCarry c1 = ix.carryFor(1);
    EXPECT_EQ(c1.prev_in_string, ~uint64_t{0});
}

TEST(StructuralIndexBuild, UnusableOnStructuralDamage)
{
    for (const char* doc : {
             R"({"a": 1)",        // unbalanced
             R"({"a": 1]})",      // type-mismatched closer
             R"(}{)",             // underflow
             R"({"a": "unterm)",  // in-string at EOF
             R"([1, 2]])",        // trailing closer underflows
         }) {
        StructuralIndex ix = StructuralIndex::build(doc);
        EXPECT_FALSE(ix.usable()) << doc;
        EXPECT_EQ(ix.levels(), 0u) << doc;
        // Identity metadata survives so unusable indexes are cacheable.
        EXPECT_TRUE(ix.describes(doc)) << doc;
    }
}

TEST(StructuralIndexBuild, DeepDocsIndexOnlyTheTopLevels)
{
    std::string doc;
    for (int i = 0; i < 30; ++i)
        doc += "[";
    doc += "1";
    for (int i = 0; i < 30; ++i)
        doc += "]";
    StructuralIndex ix = StructuralIndex::build(doc, /*max_levels=*/4);
    ASSERT_TRUE(ix.usable());
    EXPECT_EQ(ix.levels(), 4u);
    EXPECT_EQ(ix.maxDepth(), 30u);
    EXPECT_EQ(closers(ix, 3).size(), 1u);
}

TEST(StructuralIndexBuild, ChunkedBuildEqualsResident)
{
    std::string doc = R"({"a": [1, 2, {"b": "x,y"}], "c": {"d": []}})";
    StructuralIndex whole = StructuralIndex::build(doc);
    for (size_t chunk : {1u, 7u, 64u, 4096u}) {
        intervals::ViewSource src(doc);
        StructuralIndex chunked =
            StructuralIndex::build(src, StructuralIndex::kDefaultLevels,
                                   chunk);
        EXPECT_EQ(chunked.serialize(), whole.serialize())
            << "chunk " << chunk;
    }
}

TEST(StructuralIndexBuild, DescribesChecksHashAndSize)
{
    std::string doc = R"({"a": 1})";
    StructuralIndex ix = StructuralIndex::build(doc);
    EXPECT_TRUE(ix.describes(doc));
    EXPECT_FALSE(ix.describes(R"({"a": 2})")); // same size, edited
    EXPECT_FALSE(ix.describes(R"({"a": 1} )")); // different size
}

TEST(Serialization, RoundTrip)
{
    std::string doc = R"({"a": [1, 2, {"b": 3}], "c": "}\""})";
    StructuralIndex ix = StructuralIndex::build(doc);
    ASSERT_TRUE(ix.usable());
    std::string bytes = ix.serialize();
    StructuralIndex back = StructuralIndex::deserialize(bytes);
    EXPECT_EQ(back.contentHash(), ix.contentHash());
    EXPECT_EQ(back.docSize(), ix.docSize());
    EXPECT_EQ(back.maxDepth(), ix.maxDepth());
    EXPECT_EQ(back.usable(), ix.usable());
    EXPECT_EQ(back.levels(), ix.levels());
    EXPECT_EQ(back.serialize(), bytes);
    EXPECT_TRUE(back.describes(doc));
}

TEST(Serialization, UnusableRoundTrip)
{
    StructuralIndex ix = StructuralIndex::build(R"({"broken": )");
    ASSERT_FALSE(ix.usable());
    StructuralIndex back = StructuralIndex::deserialize(ix.serialize());
    EXPECT_FALSE(back.usable());
    EXPECT_EQ(back.contentHash(), ix.contentHash());
}

TEST(Serialization, RejectsBadMagic)
{
    std::string bytes = StructuralIndex::build(R"({"a":1})").serialize();
    bytes[0] = 'X';
    try {
        StructuralIndex::deserialize(bytes);
        FAIL() << "bad magic accepted";
    } catch (const IndexError& e) {
        EXPECT_EQ(e.offset(), 0u);
    }
}

TEST(Serialization, RejectsBadVersion)
{
    std::string bytes = StructuralIndex::build(R"({"a":1})").serialize();
    bytes[4] = static_cast<char>(0x7f);
    try {
        StructuralIndex::deserialize(bytes);
        FAIL() << "bad version accepted";
    } catch (const IndexError& e) {
        EXPECT_EQ(e.offset(), 4u);
    }
}

TEST(Serialization, RejectsTruncationAtEveryLength)
{
    std::string bytes = StructuralIndex::build(
        R"({"a": [1, 2], "b": {"c": 3}})").serialize();
    for (size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_THROW(
            StructuralIndex::deserialize(
                std::string_view(bytes.data(), len)),
            IndexError)
            << "accepted truncation to " << len;
    }
}

TEST(Serialization, RejectsTrailingGarbage)
{
    std::string bytes = StructuralIndex::build(R"({"a":1})").serialize();
    EXPECT_THROW(StructuralIndex::deserialize(bytes + "x"), IndexError);
}

TEST(Serialization, EverySingleByteMutationIsDetected)
{
    // The trailing checksum covers every preceding byte, so no
    // single-byte corruption may survive deserialization.
    std::string bytes = StructuralIndex::build(
        R"({"a": [1, {"b": 2}], "c": "x"})").serialize();
    for (size_t i = 0; i < bytes.size(); ++i) {
        for (unsigned char flip : {0x01, 0x80}) {
            std::string bad = bytes;
            bad[i] = static_cast<char>(
                static_cast<unsigned char>(bad[i]) ^ flip);
            EXPECT_THROW(StructuralIndex::deserialize(bad), IndexError)
                << "byte " << i << " flip " << int(flip)
                << " slipped through";
        }
    }
}

TEST(Serialization, FileRoundTripAndIoErrors)
{
    std::string doc = R"({"a": [1, 2, 3]})";
    StructuralIndex ix = StructuralIndex::build(doc);
    std::string path = ::testing::TempDir() + "index_test_roundtrip.jski";
    index::saveIndexFile(ix, path);
    StructuralIndex back = index::loadIndexFile(path);
    EXPECT_TRUE(back.describes(doc));
    std::remove(path.c_str());
    EXPECT_THROW(index::loadIndexFile(path), IndexError);
    EXPECT_THROW(
        index::saveIndexFile(ix, "/nonexistent-dir-zz/x.jski"),
        IndexError);
}

TEST(DocumentIndexCache, MissThenHit)
{
    DocumentIndexCache cache;
    std::string doc = R"({"a": 1})";
    bool hit = true;
    auto first = cache.get(doc, &hit);
    EXPECT_FALSE(hit);
    auto second = cache.get(doc, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(first.get(), second.get()); // same resident index
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_GT(cache.bytes(), 0u);
}

TEST(DocumentIndexCache, IdenticalBytesShareOneEntry)
{
    DocumentIndexCache cache;
    std::string a = R"({"a": 1})";
    std::string b = a; // distinct buffer, same content
    cache.get(a);
    bool hit = false;
    cache.get(b, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(cache.entries(), 1u);
}

TEST(DocumentIndexCache, UnusableIndexesAreCachedToo)
{
    DocumentIndexCache cache;
    std::string doc = R"({"broken": )";
    auto ix = cache.get(doc);
    EXPECT_FALSE(ix->usable());
    bool hit = false;
    cache.get(doc, &hit);
    EXPECT_TRUE(hit); // negative knowledge: no rebuild per query
}

TEST(DocumentIndexCache, ByteCapacityEvicts)
{
    // Tiny capacity: every shard holds at most one small index.
    DocumentIndexCache cache(/*capacity_bytes=*/1);
    for (int i = 0; i < 64; ++i) {
        std::string doc =
            "{\"k" + std::to_string(i) + "\": [" +
            std::string(static_cast<size_t>(200), '1') + "]}";
        cache.get(doc);
    }
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_LE(cache.entries(), 8u); // one survivor per shard at most
}

TEST(DocumentIndexCache, ConcurrentFirstAccessBuildsOnce)
{
    DocumentIndexCache cache;
    std::string doc = R"({"a": [1, 2, 3], "b": {"c": 4}})";
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] { cache.get(doc); });
    for (auto& th : threads)
        th.join();
    // The build runs under the shard lock: racing first queries must
    // produce exactly one miss, everyone else hits.
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), static_cast<uint64_t>(kThreads - 1));
}
