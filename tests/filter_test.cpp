/**
 * @file
 * Filter-predicate evaluation tests (DESIGN.md §13): the streamer's
 * lazy verdict protocol (G1 to the candidate, probe the predicate
 * field, then G3-emit or G2-skip the rest) against the DOM oracle,
 * across the operator x literal matrix, candidate shapes, chunk seams
 * forced inside predicate-relevant values, and a seeded random
 * differential.  The selectivity test pins the acceptance criterion
 * that non-matching candidates are G2-skipped, not parsed.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/dom/query.h"
#include "path/matches.h"
#include "path/parser.h"
#include "ski/multi.h"
#include "ski/streamer.h"
#include "testing/seam.h"
#include "util/error.h"
#include "util/rng.h"

using namespace jsonski;
using jsonski::ski::Group;
// gtest also owns a ::testing namespace; alias ours unambiguously.
namespace jt = jsonski::testing;

namespace {

std::vector<std::string>
runSki(const std::string& query, const std::string& doc,
       ski::StreamResult* result = nullptr)
{
    path::CollectSink sink;
    ski::Streamer streamer(path::parse(query));
    ski::StreamResult r = streamer.run(doc, &sink);
    if (result != nullptr)
        *result = r;
    return sink.values;
}

std::vector<std::string>
runDom(const std::string& query, const std::string& doc)
{
    path::CollectSink sink;
    dom::parseAndQuery(doc, path::parse(query), &sink);
    return sink.values;
}

/** Both engines, which must agree; returns the agreed values. */
std::vector<std::string>
runBoth(const std::string& query, const std::string& doc)
{
    std::vector<std::string> ski_values = runSki(query, doc);
    EXPECT_EQ(ski_values, runDom(query, doc)) << query << " on " << doc;
    return ski_values;
}

} // namespace

TEST(Filter, OperatorByLiteralMatrixAgreesWithDom)
{
    // Candidates cover every scalar kind plus containers; each query
    // in the matrix must produce identical results from the streamer
    // and the DOM oracle — including the empty result.
    const std::string doc = R"([
        {"v": 1,      "id": "n1"},
        {"v": 10,     "id": "n10"},
        {"v": -2.5,   "id": "nneg"},
        {"v": "abc",  "id": "sabc"},
        {"v": "abd",  "id": "sabd"},
        {"v": true,   "id": "bt"},
        {"v": false,  "id": "bf"},
        {"v": null,   "id": "z"},
        {"v": {"w": 1}, "id": "obj"},
        {"v": [1, 2],   "id": "arr"},
        {"id": "missing"}
    ])";
    const char* ops[] = {"==", "!=", "<", "<=", ">", ">="};
    const char* literals[] = {"1",    "10.0", "-2.5", "'abc'",
                              "true", "false", "null"};
    size_t nonempty = 0;
    for (const char* op : ops) {
        for (const char* lit : literals) {
            std::string q = std::string("$[?(@.v") + op + lit + ")].id";
            nonempty += !runBoth(q, doc).empty();
        }
    }
    EXPECT_NO_THROW((void)runBoth("$[?(@.v)].id", doc)); // existence
    // The matrix must actually select things, not vacuously agree.
    EXPECT_GT(nonempty, 20u);

    // Spot-check semantics, not just agreement.
    EXPECT_EQ(runBoth("$[?(@.v==1)].id", doc),
              std::vector<std::string>{"\"n1\""});
    EXPECT_EQ(runBoth("$[?(@.v<'abd')].id", doc),
              std::vector<std::string>{"\"sabc\""});
    EXPECT_EQ(runBoth("$[?(@.v==null)].id", doc),
              std::vector<std::string>{"\"z\""});
    // != means present-and-not-equal: missing fields never match, but
    // containers (comparable to nothing) do.
    EXPECT_EQ(runBoth("$[?(@.v!=1)].id", doc).size(), 9u);
}

TEST(Filter, FieldPositionWithinCandidateIsIrrelevant)
{
    // The predicate field before, between, and after other keys — the
    // probe scan must find it wherever it sits, and G2-skip the rest.
    const std::string doc = R"([
        {"k": 5, "pad1": "xxxx", "pad2": [1, {"k": 99}]},
        {"pad1": {"k": 99}, "k": 5, "pad2": "yyyy"},
        {"pad1": 1, "pad2": 2, "k": 5}
    ])";
    EXPECT_EQ(runBoth("$[?(@.k==5)]", doc).size(), 3u);
    // Nested occurrences of the field name must not leak into the
    // verdict: only top-level attributes of the candidate count.
    EXPECT_TRUE(runBoth("$[?(@.k==99)]", doc).empty());
}

TEST(Filter, MissingFieldAndNonScalarComparand)
{
    const std::string doc = R"([
        {"a": 1}, {"b": 2}, {"a": {"x": 1}}, {"a": [3]}, 7, "s", null
    ])";
    // Existence: present whatever the value's type; non-object array
    // elements are never candidates.
    EXPECT_EQ(runBoth("$[?(@.a)]", doc).size(), 3u);
    // Ordering against a container is Incomparable -> no match; the
    // DOM oracle must agree on every operator.
    for (const char* op : {"==", "!=", "<", "<=", ">", ">="}) {
        std::string q = std::string("$[?(@.a") + op + "1)]";
        (void)runBoth(q, doc);
    }
    EXPECT_TRUE(runBoth("$[?(@.zz==1)]", doc).empty());
}

TEST(Filter, DescendantFilterCombinations)
{
    const std::string doc = R"({
        "a": [{"b": 1, "c": {"d": "x"}}, {"b": 9, "c": {"d": "y"}}],
        "n": {"a": [{"b": 4, "c": {"d": "z"}}, {"c": {"d": "w"}}]}
    })";
    // Interior descendant feeding a filter.
    EXPECT_EQ(runBoth("$..a[?(@.b>3)].c.d", doc),
              (std::vector<std::string>{"\"y\"", "\"z\""}));
    // Filter output feeding another descendant (NFA path).
    EXPECT_EQ(runBoth("$..a[?(@.b)]..d", doc),
              (std::vector<std::string>{"\"x\"", "\"y\"", "\"z\""}));
    // Chained filters.
    EXPECT_EQ(runBoth("$.a[?(@.b>=1)].c", doc).size(), 2u);
    // Existence filter over everything the descendant finds.
    (void)runBoth("$..c[?(@.d=='x')]", doc);
}

TEST(Filter, SeamsInsidePredicateValues)
{
    // Chunk seams forced *inside* the values the predicate compares:
    // mid-number, mid-string, and straddling the candidate's closing
    // brace.  Chunked evaluation must equal whole-buffer evaluation in
    // values, errors, and skip accounting at every ladder rung.
    const std::string doc =
        R"([{"v": 123456, "id": 1}, {"v": "alpha beta", "id": 2},)"
        R"( {"v": 123457, "id": 3}, {"w": 5, "id": 4}])";
    const std::vector<std::string> queries = {
        "$[?(@.v==123456)].id",
        "$[?(@.v>123456)].id",
        "$[?(@.v=='alpha beta')].id",
        "$[?(@.v)].id",
        "$[?(@.v!='alpha beta')].id",
    };
    for (const std::string& qtext : queries) {
        path::PathQuery q = path::parse(qtext);
        jt::SeamRun whole = jt::runStreamerWhole(doc, q);
        ASSERT_FALSE(whole.threw_parse_error) << qtext;
        // Seams at every byte of the first candidate's value span plus
        // the chunk ladder: {1, 7, 64} byte refills, and one forced
        // seam at each offset inside "123456" / "alpha beta".
        for (size_t seam = 7; seam < 24; ++seam) {
            for (size_t chunk : {size_t{1}, size_t{7}, size_t{64}}) {
                jt::SeamRun chunked = jt::runStreamerChunked(
                    doc, q, {seam, doc.size() + 1}, chunk);
                EXPECT_FALSE(chunked.threw_parse_error)
                    << qtext << " seam=" << seam << " chunk=" << chunk;
                EXPECT_EQ(chunked.values, whole.values)
                    << qtext << " seam=" << seam << " chunk=" << chunk;
                EXPECT_EQ(chunked.stats.skipped, whole.stats.skipped)
                    << qtext << " seam=" << seam << " chunk=" << chunk;
            }
        }
    }
}

TEST(Filter, SelectivityShowsUpAsG2VersusG3)
{
    // Acceptance criterion: failed candidates are G2-skipped (their
    // remainder is fast-forwarded, not parsed), passing candidates are
    // G3-emitted.  Padding makes the skipped bytes unmistakable.
    std::string doc = "[";
    for (int i = 0; i < 200; ++i) {
        if (i != 0)
            doc += ",";
        doc += R"({"sel": )" + std::to_string(i % 100) +
               R"(, "pad": "................................"})";
    }
    doc += "]";

    ski::StreamResult rare, common;
    size_t n_rare = runSki("$[?(@.sel==0)]", doc, &rare).size();
    size_t n_common = runSki("$[?(@.sel>=10)]", doc, &common).size();
    EXPECT_EQ(n_rare, 2u);
    EXPECT_EQ(n_common, 180u);

    // Low selectivity: most candidate bytes are G2 (skipped after a
    // failed verdict).  High selectivity flips the balance to G3.
    EXPECT_GT(rare.stats.get(Group::G2), rare.stats.get(Group::G3));
    EXPECT_GT(common.stats.get(Group::G3), common.stats.get(Group::G2));
    // And the G2 volume must scale with the number of rejected
    // candidates, not be a fixed overhead.
    EXPECT_GT(rare.stats.get(Group::G2),
              common.stats.get(Group::G2) * 2);
}

TEST(Filter, RandomDifferentialSkiVsDom)
{
    // Seeded random documents x a pool of filter queries; the streamer
    // and the DOM oracle must agree on every pair.
    Rng rng(246813);
    const std::vector<std::string> queries = {
        "$[?(@.a==3)]",        "$[?(@.a>2)].b",    "$[?(@.a<'m')]",
        "$[?(@.a)].b",         "$[?(@.a!=null)]",  "$..r[?(@.a>=2)]",
        "$..r[?(@.a=='k2')].b", "$[?(@.b)][?(@.a)]",
    };
    size_t total = 0;
    for (int iter = 0; iter < 200; ++iter) {
        // A root array of random candidates, some nested under "r".
        std::string doc = "[";
        size_t n = 1 + rng.below(6);
        for (size_t i = 0; i < n; ++i) {
            if (i != 0)
                doc += ",";
            switch (rng.below(8)) {
              case 0: doc += std::to_string(rng.below(10)); break;
              case 1: doc += "\"s" + std::to_string(rng.below(5)) + "\"";
                      break;
              case 2: doc += "null"; break;
              default: {
                doc += "{";
                size_t keys = rng.below(4);
                for (size_t k = 0; k < keys; ++k) {
                    if (k != 0)
                        doc += ",";
                    switch (rng.below(4)) {
                      case 0: doc += "\"a\": " +
                                     std::to_string(rng.below(6)); break;
                      case 1: doc += "\"a\": \"k" +
                                     std::to_string(rng.below(4)) + "\"";
                              break;
                      case 2: doc += "\"b\": [" +
                                     std::to_string(rng.below(9)) + "]";
                              break;
                      default: doc += "\"r\": [{\"a\": " +
                                      std::to_string(rng.below(4)) +
                                      ", \"b\": " +
                                      std::to_string(rng.below(4)) + "}]";
                    }
                }
                doc += "}";
              }
            }
        }
        doc += "]";
        const std::string& q = queries[iter % queries.size()];
        total += runBoth(q, doc).size();
    }
    // The random stream must actually produce matches.
    EXPECT_GT(total, 50u);
}

TEST(Filter, MultiStreamerEvaluatesFilters)
{
    // Filters ride the divergent-suffix fallback: the combined pass
    // must agree with the single-query run, value for value.
    const std::string doc =
        R"([{"a":1,"x":"p"},{"a":2},{"a":1,"x":"q"},{"b":3}])";
    path::PathQuery q = path::parse("$[?(@.a==1)]");
    ski::MultiStreamer ms({q});
    ski::MultiCollectSink sink(1);
    auto r = ms.run(doc, &sink);

    path::CollectSink solo;
    ski::Streamer single(q);
    auto sr = single.run(doc, &solo);
    EXPECT_EQ(r.matches[0], sr.matches);
    EXPECT_EQ(sink.values[0], solo.values);
    EXPECT_EQ(sr.matches, 2u);
}
