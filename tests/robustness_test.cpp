/**
 * @file
 * Robustness properties: no engine may crash, hang, or accept an
 * answer silently diverging from the others on hostile inputs —
 * malformed bytes, truncations, and pathological nesting.  Engines are
 * allowed to throw ParseError (streaming engines may also legitimately
 * return 0 without detecting damage in fast-forwarded regions,
 * paper §3.3).
 */
#include <gtest/gtest.h>

#include <string>

#include "baseline/dom/query.h"
#include "baseline/jpstream/engine.h"
#include "baseline/pison/query.h"
#include "baseline/tape/query.h"
#include "json/validate.h"
#include "path/parser.h"
#include "ski/record_scanner.h"
#include "ski/streamer.h"
#include "util/error.h"
#include "util/rng.h"

using namespace jsonski;
using jsonski::path::parse;

namespace {

/** Run every engine, requiring graceful behaviour (result or throw). */
void
mustNotCrash(const std::string& json, const path::PathQuery& q)
{
    auto tryRun = [&](auto&& fn) {
        try {
            (void)fn();
        } catch (const ParseError&) {
            // acceptable
        }
    };
    tryRun([&] { return ski::Streamer(q).run(json).matches; });
    tryRun([&] { return jpstream::Engine(q).run(json); });
    tryRun([&] { return dom::parseAndQuery(json, q); });
    tryRun([&] { return tape::parseAndQuery(json, q); });
    tryRun([&] { return pison::parseAndQuery(json, q); });
    tryRun([&] { return ski::scanRecords(json).size(); });
}

} // namespace

TEST(Robustness, RandomGarbageBytes)
{
    Rng rng(31337);
    auto q = parse("$.a.b[0]");
    static constexpr char chars[] = "{}[]:,\"\\ abc012\n\t.-e+";
    for (int iter = 0; iter < 500; ++iter) {
        size_t len = rng.below(200);
        std::string s;
        for (size_t i = 0; i < len; ++i)
            s += chars[rng.below(sizeof(chars) - 1)];
        mustNotCrash(s, q);
    }
}

TEST(Robustness, TruncationsOfValidDocument)
{
    std::string doc =
        R"({"a": {"b": [1, "two", {"c": null}], "d": "x\"y"}, "e": 2})";
    auto q = parse("$.a.b[2].c");
    for (size_t cut = 0; cut <= doc.size(); ++cut)
        mustNotCrash(doc.substr(0, cut), q);
}

TEST(Robustness, ValidDocumentsNeverThrow)
{
    // The flip side: if the validator accepts it, every engine must
    // process it without throwing.
    const char* docs[] = {
        "{}",
        "[]",
        "0",
        "\"\"",
        "[[[[[[[[[[1]]]]]]]]]]",
        R"({"":{"":[null,null]}})",
        R"([{},{},{}])",
        "  {  }  ",
        R"({"a":"\\\\\\\""})",
        R"([1e-300, -0.0, 1E+5])",
    };
    auto q = parse("$.a[0]");
    for (const char* d : docs) {
        ASSERT_TRUE(json::validate(d)) << d;
        EXPECT_NO_THROW((void)ski::Streamer(q).run(d).matches) << d;
        EXPECT_NO_THROW((void)jpstream::Engine(q).run(d)) << d;
        EXPECT_NO_THROW((void)dom::parseAndQuery(d, q)) << d;
        EXPECT_NO_THROW((void)tape::parseAndQuery(d, q)) << d;
        EXPECT_NO_THROW((void)pison::parseAndQuery(d, q)) << d;
    }
}

TEST(Robustness, VeryDeepNestingIsIterativeInJsonSki)
{
    // JSONSki skips irrelevant substructure iteratively: recursion
    // depth is bounded by the query, so 200k-deep data is fine where a
    // recursive DOM parser must bail out.
    std::string deep = "{\"pad\":";
    for (int i = 0; i < 200000; ++i)
        deep += "[";
    deep += "1";
    for (int i = 0; i < 200000; ++i)
        deep += "]";
    deep += ",\"k\":42}";
    auto q = parse("$.k");
    auto r = ski::Streamer(q).run(deep);
    EXPECT_EQ(r.matches, 1u);
    EXPECT_THROW((void)dom::parseAndQuery(deep, q), ParseError);
    // The character-level streaming baseline is also iterative.
    EXPECT_EQ(jpstream::Engine(q).run(deep), 1u);
}

TEST(Robustness, HugeFlatObject)
{
    std::string doc = "{";
    for (int i = 0; i < 50000; ++i)
        doc += "\"k" + std::to_string(i) + "\":" + std::to_string(i) + ",";
    doc += "\"needle\":1}";
    auto q = parse("$.needle");
    EXPECT_EQ(ski::Streamer(q).run(doc).matches, 1u);
    EXPECT_EQ(pison::parseAndQuery(doc, q), 1u);
}

TEST(Robustness, MismatchedContainersCaughtWhereExamined)
{
    // "[}" style damage on the traversed path throws in the detailed
    // parsers; the fast-forwarding streamer may or may not see it —
    // but must not crash.
    auto q = parse("$.a[0]");
    mustNotCrash("[}", q);
    mustNotCrash("{]", q);
    mustNotCrash(R"({"a": [1, 2}})", q);
    EXPECT_THROW((void)dom::parseAndQuery("[}", q), ParseError);
}
