/**
 * @file
 * Cross-engine differential property test: on randomly generated JSON
 * documents and randomly generated path queries, all five engines
 * (JSONSki, JPStream-, DOM-, tape-, and Pison-class) must produce the
 * same matches, value for value.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baseline/dom/query.h"
#include "baseline/jpstream/engine.h"
#include "baseline/pison/query.h"
#include "baseline/tape/query.h"
#include "json/validate.h"
#include "json/writer.h"
#include "path/parser.h"
#include "ski/streamer.h"
#include "util/rng.h"

using jsonski::Rng;
using jsonski::json::Writer;
using jsonski::path::CollectSink;
using jsonski::path::PathQuery;
using jsonski::path::PathStep;

namespace {

const std::vector<std::string> kKeys = {"a", "b", "cc", "dd", "key",
                                        "nm", "id", "v"};

/** Random JSON value with unique keys per object. */
void
genValue(Rng& rng, Writer& w, int depth)
{
    double shape = rng.real();
    if (depth <= 0 || shape < 0.45) {
        // Primitive.
        switch (rng.below(5)) {
          case 0:
            w.number(rng.range(-1000000, 1000000));
            break;
          case 1:
            w.number(rng.real() * 100 - 50);
            break;
          case 2:
            w.string(rng.chance(0.3) ? "we\"ird }{ ][ :, \\chars"
                                     : rng.ident(1 + rng.below(20)));
            break;
          case 3:
            w.boolean(rng.chance(0.5));
            break;
          default:
            w.null();
            break;
        }
    } else if (shape < 0.75) {
        w.beginObject();
        std::vector<std::string> keys = kKeys;
        size_t n = rng.below(5);
        for (size_t i = 0; i < n && !keys.empty(); ++i) {
            size_t pick = rng.below(keys.size());
            w.key(keys[pick]);
            keys.erase(keys.begin() + static_cast<long>(pick));
            genValue(rng, w, depth - 1);
        }
        w.endObject();
    } else {
        w.beginArray();
        size_t n = rng.below(6);
        for (size_t i = 0; i < n; ++i)
            genValue(rng, w, depth - 1);
        w.endArray();
    }
}

std::string
genDocument(Rng& rng)
{
    Writer w;
    if (rng.chance(0.5)) {
        w.beginObject();
        std::vector<std::string> keys = kKeys;
        size_t n = 1 + rng.below(5);
        for (size_t i = 0; i < n && !keys.empty(); ++i) {
            size_t pick = rng.below(keys.size());
            w.key(keys[pick]);
            keys.erase(keys.begin() + static_cast<long>(pick));
            genValue(rng, w, 4);
        }
        w.endObject();
    } else {
        w.beginArray();
        size_t n = 1 + rng.below(7);
        for (size_t i = 0; i < n; ++i)
            genValue(rng, w, 4);
        w.endArray();
    }
    return w.take();
}

PathQuery
genQuery(Rng& rng)
{
    PathQuery q;
    size_t steps = 1 + rng.below(4);
    for (size_t i = 0; i < steps; ++i) {
        switch (rng.below(4)) {
          case 0:
            q.steps.push_back(
                PathStep::makeKey(kKeys[rng.below(kKeys.size())]));
            break;
          case 1:
            q.steps.push_back(PathStep::makeIndex(rng.below(4)));
            break;
          case 2: {
            size_t lo = rng.below(3);
            q.steps.push_back(
                PathStep::makeSlice(lo, lo + 1 + rng.below(3)));
            break;
          }
          default:
            q.steps.push_back(PathStep::makeWildcard());
            break;
        }
    }
    return q;
}

std::vector<std::string>
runAll(const std::string& json, const PathQuery& q,
       std::vector<std::vector<std::string>>& per_engine)
{
    per_engine.clear();
    {
        CollectSink s;
        jsonski::ski::Streamer streamer(q);
        streamer.run(json, &s);
        per_engine.push_back(std::move(s.values));
    }
    {
        CollectSink s;
        jsonski::jpstream::Engine e(q);
        e.run(json, &s);
        per_engine.push_back(std::move(s.values));
    }
    {
        CollectSink s;
        jsonski::dom::parseAndQuery(json, q, &s);
        per_engine.push_back(std::move(s.values));
    }
    {
        CollectSink s;
        jsonski::tape::parseAndQuery(json, q, &s);
        per_engine.push_back(std::move(s.values));
    }
    {
        CollectSink s;
        jsonski::pison::parseAndQuery(json, q, &s);
        per_engine.push_back(std::move(s.values));
    }
    return per_engine[0];
}

} // namespace

TEST(Differential, AllEnginesAgreeOnRandomInputs)
{
    Rng rng(20260707);
    const char* names[] = {"jsonski", "jpstream", "dom", "tape", "pison"};
    size_t total_matches = 0;
    for (int iter = 0; iter < 400; ++iter) {
        std::string json = genDocument(rng);
        ASSERT_TRUE(jsonski::json::validate(json)) << json;
        PathQuery q = genQuery(rng);
        std::vector<std::vector<std::string>> results;
        std::vector<std::string> reference = runAll(json, q, results);
        for (size_t e = 1; e < results.size(); ++e) {
            EXPECT_EQ(results[e], reference)
                << "engine " << names[e] << " disagrees with jsonski\n"
                << "query: " << q.toString() << "\njson:  " << json;
        }
        total_matches += reference.size();
    }
    // The corpus must actually exercise matching, not just misses.
    EXPECT_GT(total_matches, 100u);
}

TEST(Differential, AgreementOnWhitespaceHeavyInputs)
{
    Rng rng(777);
    for (int iter = 0; iter < 100; ++iter) {
        std::string json = genDocument(rng);
        // Inject whitespace after every structural character outside
        // strings (cheap: regenerate via validator-approved expansion).
        std::string spaced;
        bool in_string = false;
        bool escaped = false;
        for (char c : json) {
            spaced += c;
            if (escaped) {
                escaped = false;
                continue;
            }
            if (c == '\\') {
                escaped = true;
                continue;
            }
            if (c == '"')
                in_string = !in_string;
            if (!in_string &&
                (c == '{' || c == ',' || c == ':' || c == '[')) {
                spaced += iter % 2 == 0 ? " " : "\n\t ";
            }
        }
        ASSERT_TRUE(jsonski::json::validate(spaced));
        PathQuery q = genQuery(rng);
        std::vector<std::vector<std::string>> results;
        std::vector<std::string> reference = runAll(spaced, q, results);
        for (size_t e = 1; e < results.size(); ++e)
            EXPECT_EQ(results[e], reference)
                << "query: " << q.toString() << "\njson: " << spaced;
    }
}
