/**
 * @file
 * Cross-thread telemetry merge determinism: a ParallelStreamer run
 * gives each element span its own Registry and merges them in span
 * (document) order after the pool joins, so the merged registry must
 * be identical run-to-run and across pool sizes, even though the
 * pool's dynamic scheduling assigns spans to threads differently each
 * time.  Wall-clock phase timings are the one legitimately
 * nondeterministic field and are excluded from the comparison.
 */
#include "ski/parallel.h"

#include <gtest/gtest.h>

#include <string>

#include "gen/datasets.h"
#include "path/parser.h"
#include "telemetry/telemetry.h"
#include "util/thread_pool.h"

using namespace jsonski;
using namespace jsonski::telemetry;

namespace {

/** Everything except phase_ns, which is wall-clock and may not repeat. */
void
expectDeterministicFieldsEqual(const Registry& a, const Registry& b)
{
    EXPECT_EQ(a.counters, b.counters);
    EXPECT_EQ(a.skipped, b.skipped);
    for (size_t g = 0; g < kSkipGroupCount; ++g)
        EXPECT_EQ(a.skip_hist[g].buckets, b.skip_hist[g].buckets) << g;
    EXPECT_EQ(a.trace.total(), b.trace.total());
    EXPECT_EQ(a.trace.dropped(), b.trace.dropped());
    EXPECT_EQ(a.trace.snapshot(), b.trace.snapshot());
}

Registry
runScoped(ski::ParallelStreamer& streamer, std::string_view json,
          ThreadPool& pool, size_t& matches)
{
    Registry reg;
    {
        Scope scope(reg);
        matches = streamer.run(json, pool);
    }
    return reg;
}

} // namespace

TEST(TelemetryMergeTest, ParallelMergeIsDeterministic)
{
    std::string json =
        gen::generateLarge(gen::DatasetId::TT, 512 * 1024);
    ski::ParallelStreamer streamer(
        path::parse("$[*].en.urls[*].url"));
    ASSERT_TRUE(streamer.parallelizable());

    ThreadPool pool4(4);
    size_t m1 = 0, m2 = 0;
    Registry r1 = runScoped(streamer, json, pool4, m1);
    Registry r2 = runScoped(streamer, json, pool4, m2);
    EXPECT_EQ(m1, m2);
    EXPECT_GT(m1, 0u);
    expectDeterministicFieldsEqual(r1, r2);

    // The merged result is also independent of the pool size: merging
    // happens in span order, not completion order.
    ThreadPool pool2(2);
    size_t m3 = 0;
    Registry r3 = runScoped(streamer, json, pool2, m3);
    EXPECT_EQ(m1, m3);
    expectDeterministicFieldsEqual(r1, r3);

    if (kEnabled) {
        EXPECT_GT(r1.skippedTotal(), 0u);
        EXPECT_GT(r1.trace.total(), 0u);
    } else {
        EXPECT_EQ(r1.skippedTotal(), 0u);
        EXPECT_EQ(r1.trace.total(), 0u);
    }
}

TEST(TelemetryMergeTest, ParallelRunWithoutScopeIsSafe)
{
    // No registry installed in the caller: the per-span registries are
    // skipped entirely and nothing crashes.
    ASSERT_EQ(current(), nullptr);
    std::string json =
        gen::generateLarge(gen::DatasetId::BB, 128 * 1024);
    ski::ParallelStreamer streamer(path::parse("$.pd[*].cp[1:3].id"));
    ThreadPool pool(4);
    size_t parallel = streamer.run(json, pool);
    EXPECT_GT(parallel, 0u);
}

TEST(TelemetryMergeTest, WorkerRecordsDoNotLeakIntoCallerDirectly)
{
    // The caller's registry must see worker activity only through the
    // ordered merge; a second run with a *different* registry installed
    // must leave the first untouched.
    std::string json =
        gen::generateLarge(gen::DatasetId::TT, 128 * 1024);
    ski::ParallelStreamer streamer(
        path::parse("$[*].en.urls[*].url"));
    ThreadPool pool(4);
    size_t m = 0;
    Registry first = runScoped(streamer, json, pool, m);
    Registry snapshot = first; // copy
    Registry second;
    {
        Scope scope(second);
        (void)streamer.run(json, pool);
    }
    expectDeterministicFieldsEqual(first, snapshot);
    expectDeterministicFieldsEqual(first, second);
}
