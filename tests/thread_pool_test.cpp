/** @file Tests for the fork-join thread pool. */
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

using jsonski::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns)
{
    ThreadPool pool(2);
    pool.waitIdle(); // must not hang
    SUCCEED();
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroItems)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](size_t) { FAIL(); });
    SUCCEED();
}

TEST(ThreadPool, ParallelForFewerItemsThanThreads)
{
    ThreadPool pool(8);
    std::atomic<int> count{0};
    pool.parallelFor(3, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ParallelForComputesSum)
{
    ThreadPool pool(4);
    std::vector<long> squares(500);
    pool.parallelFor(squares.size(), [&](size_t i) {
        squares[i] = static_cast<long>(i) * static_cast<long>(i);
    });
    long total = std::accumulate(squares.begin(), squares.end(), 0L);
    long expected = 0;
    for (long i = 0; i < 500; ++i)
        expected += i * i;
    EXPECT_EQ(total, expected);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int round = 0; round < 5; ++round)
        pool.parallelFor(50, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 250);
}

TEST(ThreadPool, SizeReportsWorkerCount)
{
    ThreadPool pool(5);
    EXPECT_EQ(pool.size(), 5u);
}
