/**
 * @file
 * Property test pinning the fast-forward primitives to ground truth:
 * for every container in random documents, goOverObj/goOverAry started
 * at its opener must land exactly one past its closer — as reported by
 * the character-level DOM parse of the same document.
 */
#include <gtest/gtest.h>

#include <functional>

#include "baseline/dom/node.h"
#include "baseline/dom/parser.h"
#include "intervals/cursor.h"
#include "json/validate.h"
#include "json/writer.h"
#include "ski/skipper.h"
#include "util/rng.h"

using namespace jsonski;

namespace {

void
genValue(Rng& rng, json::Writer& w, int depth)
{
    double shape = rng.real();
    if (depth <= 0 || shape < 0.4) {
        if (rng.chance(0.4))
            w.string(rng.chance(0.3) ? "tricky }{][ \\\" here"
                                     : rng.ident(1 + rng.below(40)));
        else
            w.number(rng.range(-100000, 100000));
    } else if (shape < 0.72) {
        w.beginObject();
        size_t n = rng.below(5);
        for (size_t i = 0; i < n; ++i) {
            w.key("k" + std::to_string(i));
            genValue(rng, w, depth - 1);
        }
        w.endObject();
    } else {
        w.beginArray();
        size_t n = rng.below(6);
        for (size_t i = 0; i < n; ++i)
            genValue(rng, w, depth - 1);
        w.endArray();
    }
}

/** Collect (start, end) extents of every container via the DOM. */
void
collectExtents(const dom::Node* node, std::string_view doc,
               std::vector<std::pair<size_t, size_t>>& out)
{
    if (node->isObject() || node->isArray()) {
        size_t start =
            static_cast<size_t>(node->text.data() - doc.data());
        out.emplace_back(start, start + node->text.size());
        for (const auto& [name, child] : node->members)
            collectExtents(child, doc, out);
        for (const dom::Node* child : node->elements)
            collectExtents(child, doc, out);
    }
}

} // namespace

TEST(SkipperProperty, ContainerSkipsMatchDomExtents)
{
    Rng rng(24680);
    size_t containers_checked = 0;
    for (int iter = 0; iter < 150; ++iter) {
        json::Writer w;
        genValue(rng, w, 5);
        std::string doc = w.take();
        if (doc.empty() || (doc[0] != '{' && doc[0] != '['))
            continue;
        ASSERT_TRUE(json::validate(doc));

        dom::Document tree;
        dom::parse(doc, tree);
        std::vector<std::pair<size_t, size_t>> extents;
        collectExtents(tree.root(), doc, extents);

        // Forward-only cursor: visit extents in start order.
        std::sort(extents.begin(), extents.end());
        for (auto [start, end] : extents) {
            // Each check needs a fresh cursor (forward-only), so bound
            // the per-document work.
            intervals::StreamCursor cur(doc);
            ski::Skipper skip(cur);
            cur.setPos(start);
            if (doc[start] == '{')
                skip.overObj(ski::Group::G2);
            else
                skip.overAry(ski::Group::G2);
            ASSERT_EQ(cur.pos(), end)
                << "container at " << start << " in: " << doc;
            ++containers_checked;
            if (containers_checked % 7 == 0)
                break; // sample the rest; keep runtime bounded
        }
    }
    EXPECT_GT(containers_checked, 300u);
}

TEST(SkipperProperty, ToObjEndFromEveryAttributeBoundary)
{
    // From the position after each top-level attribute value, toObjEnd
    // must land one past the root '}'.
    Rng rng(11223);
    for (int iter = 0; iter < 100; ++iter) {
        json::Writer w;
        w.beginObject();
        size_t n = 1 + rng.below(6);
        for (size_t i = 0; i < n; ++i) {
            w.key("k" + std::to_string(i));
            genValue(rng, w, 3);
        }
        w.endObject();
        std::string doc = w.take();

        dom::Document tree;
        dom::parse(doc, tree);
        for (const auto& [name, child] : tree.root()->members) {
            size_t value_end =
                static_cast<size_t>(child->text.data() - doc.data()) +
                child->text.size();
            intervals::StreamCursor cur(doc);
            ski::Skipper skip(cur);
            cur.setPos(value_end);
            skip.toObjEnd(ski::Group::G4);
            ASSERT_EQ(cur.pos(), doc.size()) << doc;
        }
    }
}
