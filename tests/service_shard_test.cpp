/**
 * @file
 * Sharded-event-loop and absolute-deadline tests (DESIGN.md §12).
 *
 * Three families:
 *
 *  - Drip-feed regressions.  The old per-poll timeouts restarted on
 *    every byte of progress, so a client dripping one byte per window
 *    (slow loris) could pin a worker indefinitely — on the header
 *    read, on the body stream, and symmetrically on the write side by
 *    *draining* one buffer per window.  These tests pace a client just
 *    under the old per-poll window and assert the connection still
 *    expires on the absolute envelope, quickly.  They fail against the
 *    per-poll implementation by construction.
 *
 *  - Shard correctness.  The same corpus must produce byte-identical
 *    values and trailers across shards in {1, 2, 8}, with and without
 *    force_poll (epoll+SO_REUSEPORT vs. poll+fd-handoff accept), and a
 *    merged `!stats` scrape must equal the per-shard sums.
 *
 *  - Accept robustness.  Fd exhaustion (EMFILE) must pause the
 *    listener instead of busy-spinning it, and the loop must come back
 *    and serve once descriptors free up.
 */
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "service/loopback.h"
#include "service/protocol.h"
#include "service/server.h"
#include "util/error.h"

using namespace jsonski;
using namespace jsonski::service;

namespace {

using Clock = std::chrono::steady_clock;

RequestHeader
queryHeader(std::string query)
{
    RequestHeader h;
    h.queries = {std::move(query)};
    return h;
}

int
elapsedMs(Clock::time_point since)
{
    return static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - since)
            .count());
}

TEST(ServiceDeadline, DripFedHeaderExpiresOnAbsoluteDeadline)
{
    ServerConfig cfg;
    cfg.shards = 1;
    cfg.read_deadline_ms = 300;
    Server server(cfg);
    server.start();

    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    ASSERT_TRUE(server.adoptConnection(sv[0]));

    // Drip one header byte per 50 ms, forever: every byte lands well
    // inside a 300 ms per-poll window, so the old code would keep
    // extending the read until the 4 KiB header cap — minutes away.
    // The absolute envelope must cut the connection at ~300 ms.
    std::atomic<bool> stop{false};
    std::thread dripper([&] {
        const std::string header = "jsq/1 $.aaaaaaaaaaaaaaaaaaaa";
        size_t i = 0;
        while (!stop.load()) {
            char b = header[i++ % header.size()];
            if (::send(sv[1], &b, 1, MSG_NOSIGNAL) <= 0)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
    });

    Clock::time_point start = Clock::now();
    std::string out;
    char buf[512];
    ssize_t n;
    while ((n = ::read(sv[1], buf, sizeof buf)) > 0)
        out.append(buf, static_cast<size_t>(n));
    int ms = elapsedMs(start);
    stop.store(true);
    dripper.join();
    ::close(sv[1]);

    ResponseParser p;
    p.feed(out);
    ASSERT_TRUE(p.done()) << "raw response: " << out;
    EXPECT_FALSE(p.trailer().ok);
    EXPECT_EQ(p.trailer().code, ErrorCode::DeadlineExpired);
    // Absolute envelope: expiry lands near 300 ms, nowhere near the
    // minutes the per-poll implementation would take.
    EXPECT_LT(ms, 3000);
    EXPECT_EQ(server.stats().rejected_deadline, 1u);
    server.stop();
}

TEST(ServiceDeadline, DripFedBodyExpiresOnAbsoluteDeadline)
{
    ServerConfig cfg;
    cfg.shards = 1;
    cfg.read_deadline_ms = 300;
    Server server(cfg);
    server.start();

    // One body byte per 50 ms: each arrives inside a fresh 300 ms
    // per-poll window, so the old code would stream the whole ~5 s
    // body and answer ok.  The absolute envelope rejects at ~300 ms.
    std::string doc = R"({"a": ")" + std::string(80, 'x') + R"("})";
    ClientOptions opt;
    opt.chunk_schedule = {1};
    opt.write_delay_ms = 50;
    opt.half_close = false;
    opt.overall_timeout_ms = 10000;

    Clock::time_point start = Clock::now();
    ClientResult r = runRequest(server, queryHeader("$.a"), doc, opt);
    int ms = elapsedMs(start);

    ASSERT_TRUE(r.has_trailer);
    EXPECT_FALSE(r.trailer.ok);
    EXPECT_EQ(r.trailer.code, ErrorCode::DeadlineExpired);
    EXPECT_LT(ms, 3000);
    EXPECT_EQ(server.stats().rejected_deadline, 1u);
    server.stop();
}

TEST(ServiceDeadline, DripDrainingReaderExpiresWriteDeadline)
{
    // The write-side twin: a reader draining ~4 KiB per 10 ms
    // (~400 KB/s) wakes the writer every time the socket buffer dips
    // below half — always inside a 400 ms per-poll window — yet a
    // multi-megabyte response can never finish a flush within the
    // absolute envelope.  The old code would slowly push the whole
    // response; the fix severs the connection at the deadline.
    ServerConfig cfg;
    cfg.shards = 1;
    cfg.write_deadline_ms = 400;
    Server server(cfg);
    server.start();

    std::string doc = "[";
    for (int i = 0; i < 60000; ++i) {
        if (i)
            doc += ',';
        doc += "\"payload-payload-payload-payload-" + std::to_string(i) +
               "\"";
    }
    doc += "]"; // ~2.8 MB of match frames back

    ClientOptions opt;
    opt.read_delay_ms = 5; // drip-drain, never stalled outright
    opt.overall_timeout_ms = 20000;
    Clock::time_point start = Clock::now();
    ClientResult r = runRequest(server, queryHeader("$[*]"), doc, opt);
    int ms = elapsedMs(start);

    EXPECT_FALSE(r.has_trailer);
    EXPECT_TRUE(r.severed);
    EXPECT_EQ(server.stats().rejected_deadline, 1u);
    // Sever + drain of the ~400 KB already in kernel buffers takes a
    // few seconds at the dripped rate (more under sanitized parallel
    // load); the discriminating assertions are the missing trailer and
    // the deadline counter above — this cap only catches gross
    // pathology (the old code dripping the full response would also
    // deliver a trailer, failing above regardless of timing).
    EXPECT_LT(ms, 15000);
    server.stop();
}

/** One (doc, query) case and what every topology must say about it. */
struct WireCase
{
    std::string query;
    std::string doc;
};

/** Flattened observable outcome of one request, for equality. */
struct Outcome
{
    bool ok = false;
    ErrorCode code = ErrorCode::Unspecified;
    size_t error_pos = 0;
    size_t matches = 0;
    std::array<uint64_t, 5> ff{};
    std::vector<std::string> values;

    bool
    operator==(const Outcome& o) const
    {
        return ok == o.ok && code == o.code && error_pos == o.error_pos &&
               matches == o.matches && ff == o.ff && values == o.values;
    }
};

Outcome
outcomeOf(const ClientResult& r)
{
    Outcome o;
    EXPECT_TRUE(r.has_trailer);
    o.ok = r.trailer.ok;
    o.code = r.trailer.ok ? ErrorCode::Unspecified : r.trailer.code;
    o.error_pos = r.trailer.ok ? 0 : r.trailer.error_pos;
    o.matches = r.trailer.matches;
    o.ff = r.trailer.ff;
    for (const auto& [qi, value] : r.matches)
        o.values.push_back(value);
    return o;
}

TEST(ServiceShard, DifferentialAcrossShardCountsAndAcceptPaths)
{
    const std::vector<WireCase> cases = {
        {"$.store.book[*].price",
         R"({"store": {"book": [{"price": 8.95}, {"price": 12.99}],)"
         R"( "bicycle": {"price": 19.95}}})"},
        {"$.a[*].b", R"({"a": [{"b": 1}, {"c": 2}, {"b": [3, 4]}]})"},
        {"$[*]", "[1, \"two\", [3], {\"four\": 4}, null, true]"},
        // Malformed mid-document: ErrorCode and position must agree.
        {"$.a[*]", R"({"a": [1, 2, }]})"},
    };
    const std::vector<size_t> chunkings = {1, 4096};

    // Reference outcomes from the single-shard epoll topology...
    std::vector<Outcome> reference;
    {
        ServerConfig cfg;
        cfg.shards = 1;
        Server server(cfg);
        server.start();
        for (const WireCase& c : cases)
            reference.push_back(
                outcomeOf(runRequest(server, queryHeader(c.query), c.doc)));
        server.stop();
    }

    // ...must be reproduced by every topology, at every chunking, over
    // both the adopted-fd path and a real TCP connection.
    for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
        for (bool force_poll : {false, true}) {
            ServerConfig cfg;
            cfg.shards = shards;
            cfg.workers = 1;
            cfg.force_poll = force_poll;
            Server server(cfg);
            server.start();
            ASSERT_EQ(server.shardCount(), shards);
            for (size_t ci = 0; ci < cases.size(); ++ci) {
                const WireCase& c = cases[ci];
                for (size_t chunk : chunkings) {
                    ClientOptions opt;
                    opt.chunk_schedule = {chunk};
                    Outcome got = outcomeOf(runRequest(
                        server, queryHeader(c.query), c.doc, opt));
                    EXPECT_TRUE(got == reference[ci])
                        << "shards=" << shards
                        << " force_poll=" << force_poll
                        << " chunk=" << chunk << " case=" << ci;
                }
                int fd = connectTcp("127.0.0.1", server.port());
                Outcome got = outcomeOf(
                    runRequestFd(fd, queryHeader(c.query), c.doc));
                EXPECT_TRUE(got == reference[ci])
                    << "tcp shards=" << shards
                    << " force_poll=" << force_poll << " case=" << ci;
            }
            server.stop();
        }
    }
}

/** Value of `name{shard="i"}` for each shard on a metrics page. */
std::vector<uint64_t>
shardSeries(const std::string& page, const std::string& name,
            size_t nshards)
{
    std::vector<uint64_t> vals(nshards, 0);
    for (size_t i = 0; i < nshards; ++i) {
        std::string key = "jsonski_server_shard_" + name + "{shard=\"" +
                          std::to_string(i) + "\"} ";
        size_t at = page.find(key);
        EXPECT_NE(at, std::string::npos) << key;
        if (at != std::string::npos)
            vals[i] = std::stoull(page.substr(at + key.size()));
    }
    return vals;
}

uint64_t
scalarGauge(const std::string& page, const std::string& name)
{
    std::string key = "jsonski_server_" + name + " ";
    size_t at = page.find("\n" + key);
    EXPECT_NE(at, std::string::npos) << key;
    return at == std::string::npos
               ? 0
               : std::stoull(page.substr(at + 1 + key.size()));
}

TEST(ServiceShard, ConcurrentScrapesMergeShardCounters)
{
    constexpr size_t kShards = 4;
    constexpr int kQueries = 12;
    constexpr int kScrapes = 4;
    ServerConfig cfg;
    cfg.shards = kShards;
    cfg.workers = 1;
    Server server(cfg);
    server.start();

    // Queries and scrapes race; every scrape must still be a coherent
    // page (one locked snapshot per shard).
    std::vector<std::thread> threads;
    for (int i = 0; i < kQueries; ++i)
        threads.emplace_back([&] {
            ClientResult r = runRequest(server, queryHeader("$.a"),
                                        R"({"a": 1})");
            EXPECT_TRUE(r.has_trailer && r.trailer.ok);
        });
    for (int i = 0; i < kScrapes; ++i)
        threads.emplace_back([&] {
            EXPECT_NE(scrapeStats(server).find("jsonski_server_shards"),
                      std::string::npos);
        });
    for (auto& th : threads)
        th.join();

    // Quiesced final scrape: the per-shard series must sum to the
    // merged totals, which must equal what actually ran.
    std::string page = scrapeStats(server);
    EXPECT_EQ(scalarGauge(page, "shards"), kShards);

    std::vector<uint64_t> reqs =
        shardSeries(page, "requests_total", kShards);
    uint64_t shard_sum = 0;
    for (size_t i = 0; i < kShards; ++i) {
        shard_sum += reqs[i];
        // Round-robin adoption: every shard saw some of the 17.
        EXPECT_GT(reqs[i], 0u) << "shard " << i << " page:\n" << page;
    }
    uint64_t expected = kQueries + kScrapes + 1; // + this scrape
    EXPECT_EQ(shard_sum, expected);
    EXPECT_EQ(scalarGauge(page, "requests_total"), expected);
    EXPECT_EQ(server.stats().requests_total, expected);

    std::vector<uint64_t> conns =
        shardSeries(page, "connections_total", kShards);
    uint64_t conn_sum = 0;
    for (uint64_t v : conns)
        conn_sum += v;
    EXPECT_EQ(conn_sum, scalarGauge(page, "connections_total"));
    server.stop();
}

TEST(ServiceShard, AcceptSurvivesFdExhaustion)
{
    ServerConfig cfg;
    cfg.shards = 1;
    cfg.workers = 1;
    cfg.accept_backoff_ms = 50;
    Server server(cfg);
    server.start();

    // Two warm-up round trips: the first guarantees the shard loop
    // (and its poller fd) exists before the fd table is squeezed.
    // The second matters under UBSan: its vptr check validates memory
    // through a pipe(), which fails spuriously once the fd table is
    // full.  With workers=1 the second request cannot start until the
    // first request's handler (including its destructors, whose
    // successful checks populate the vptr type cache) has returned —
    // so every check that later runs inside the exhaustion window is
    // a cache hit needing no probe.
    for (int i = 0; i < 2; ++i) {
        ClientResult warm =
            runRequest(server, queryHeader("$.a"), R"({"a": 0})");
        ASSERT_TRUE(warm.has_trailer && warm.trailer.ok);
    }

    // The client saw its trailer, but the server worker still tears
    // its end of the connection down asynchronously.  If that close
    // landed *after* the dup() flood below, it would donate a free
    // slot: the parked connection would be accepted and then killed
    // by the EMFILE idle reap instead of surviving in the backlog.
    // The server shares this process, so wait for the process-wide
    // fd count to go quiet before squeezing the table.
    auto countOpenFds = [] {
        int n = 0;
        DIR* d = ::opendir("/proc/self/fd");
        if (d == nullptr)
            return -1;
        while (::readdir(d) != nullptr)
            ++n;
        ::closedir(d);
        return n;
    };
    {
        int stable = 0;
        int last = countOpenFds();
        Clock::time_point start = Clock::now();
        while (stable < 10 && elapsedMs(start) < 2000) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            int now = countOpenFds();
            stable = now == last ? stable + 1 : 0;
            last = now;
        }
    }

    rlimit saved{};
    ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);

    // Exhaust the fd table: burn every free slot, then release exactly
    // one so the client socket below can exist while accept() cannot.
    std::vector<int> hogs;
    rlimit low{};
    low.rlim_cur = 64;
    low.rlim_max = saved.rlim_max;
    // Count what's already open by burning until failure first.
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &low), 0);
    for (;;) {
        int fd = ::dup(0);
        if (fd < 0)
            break;
        hogs.push_back(fd);
    }
    ASSERT_FALSE(hogs.empty()) << "fd table did not fill";
    ::close(hogs.back());
    hogs.pop_back();

    // The SYN handshake completes in the kernel backlog; the server's
    // accept4 must hit EMFILE, count a backoff, and pause the listener
    // instead of spinning on the level-triggered fd.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
        0);

    // Generous ceiling: under parallel sanitized runs on a loaded box
    // the shard loop can take seconds to get scheduled; the pass path
    // normally completes in well under 100 ms.
    Clock::time_point start = Clock::now();
    while (server.stats().accept_backoffs == 0 && elapsedMs(start) < 30000)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_GE(server.stats().accept_backoffs, 1u);

    // Free the descriptors; after the backoff the listener re-arms and
    // the parked connection is served end to end.
    for (int hog : hogs)
        ::close(hog);
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);

    ClientResult r =
        runRequestFd(fd, queryHeader("$.a"), R"({"a": "alive"})");
    ASSERT_TRUE(r.has_trailer);
    EXPECT_TRUE(r.trailer.ok);
    EXPECT_EQ(r.trailer.matches, 1u);
    server.stop();
}

} // namespace
