/** @file Tests for the synthetic dataset generators. */
#include "gen/datasets.h"

#include <gtest/gtest.h>

#include "json/validate.h"
#include "path/parser.h"
#include "ski/streamer.h"

using namespace jsonski::gen;
using jsonski::json::validate;
using jsonski::path::parse;

namespace {

size_t
countMatches(std::string_view json, const char* query)
{
    return jsonski::ski::query(json, query).count;
}

} // namespace

TEST(Datasets, Names)
{
    EXPECT_EQ(datasetName(DatasetId::TT), "TT");
    EXPECT_EQ(datasetName(DatasetId::NSPL), "NSPL");
}

TEST(Datasets, LargeRecordsAreValidJson)
{
    for (DatasetId id : kAllDatasets) {
        std::string json = generateLarge(id, 64 * 1024);
        EXPECT_GE(json.size(), 64u * 1024) << datasetName(id);
        auto r = validate(json);
        EXPECT_TRUE(r.ok) << datasetName(id) << ": " << r.message
                          << " at " << r.error_position;
    }
}

TEST(Datasets, SmallRecordsAreValidJson)
{
    for (DatasetId id : kAllDatasets) {
        SmallRecords data = generateSmall(id, 64 * 1024);
        EXPECT_GT(data.count(), 0u);
        for (size_t i = 0; i < data.count(); ++i) {
            auto r = validate(data.record(i));
            ASSERT_TRUE(r.ok)
                << datasetName(id) << " record " << i << ": " << r.message;
        }
    }
}

TEST(Datasets, Deterministic)
{
    std::string a = generateLarge(DatasetId::TT, 32 * 1024, 7);
    std::string b = generateLarge(DatasetId::TT, 32 * 1024, 7);
    std::string c = generateLarge(DatasetId::TT, 32 * 1024, 8);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Datasets, PaperQueriesFindMatches)
{
    // Every Table 5 query must hit its dataset (the rare-attribute
    // queries too, at this size).
    struct Case
    {
        DatasetId id;
        const char* query;
    };
    const Case cases[] = {
        {DatasetId::TT, "$[*].en.urls[*].url"},
        {DatasetId::TT, "$[*].text"},
        {DatasetId::BB, "$.pd[*].cp[1:3].id"},
        {DatasetId::BB, "$.pd[*].vc[*].cha"},
        {DatasetId::GMD, "$[*].rt[*].lg[*].st[*].dt.tx"},
        {DatasetId::GMD, "$[*].atm"},
        {DatasetId::NSPL, "$.mt.vw.co[*].nm"},
        {DatasetId::NSPL, "$.dt[*][*][2:4]"},
        {DatasetId::WM, "$.it[*].bmrpr.pr"},
        {DatasetId::WM, "$.it[*].nm"},
        {DatasetId::WP, "$[*].cl.P150[*].ms.pty"},
        {DatasetId::WP, "$[10:21].cl.P150[*].ms.pty"},
    };
    for (const Case& c : cases) {
        std::string json = generateLarge(c.id, 2 * 1024 * 1024);
        EXPECT_GT(countMatches(json, c.query), 0u)
            << datasetName(c.id) << " " << c.query;
    }
}

TEST(Datasets, SelectivityShapes)
{
    // Rare-attribute queries must be *much* more selective than their
    // dataset's per-record query, mirroring Table 5.
    std::string bb = generateLarge(DatasetId::BB, 4 * 1024 * 1024);
    size_t bb1 = countMatches(bb, "$.pd[*].cp[1:3].id");
    size_t bb2 = countMatches(bb, "$.pd[*].vc[*].cha");
    EXPECT_GT(bb1, 20 * bb2);

    std::string wm = generateLarge(DatasetId::WM, 4 * 1024 * 1024);
    size_t wm1 = countMatches(wm, "$.it[*].bmrpr.pr");
    size_t wm2 = countMatches(wm, "$.it[*].nm");
    EXPECT_GT(wm2, 8 * wm1);
    EXPECT_GT(wm1, 0u);
}

TEST(Datasets, Nspl1HasExactly44Matches)
{
    std::string json = generateLarge(DatasetId::NSPL, 1024 * 1024);
    EXPECT_EQ(countMatches(json, "$.mt.vw.co[*].nm"), 44u);
}

TEST(Datasets, Tt2MatchesEqualRecordCount)
{
    SmallRecords small = generateSmall(DatasetId::TT, 512 * 1024);
    std::string large = generateLarge(DatasetId::TT, 512 * 1024);
    size_t matches = countMatches(large, "$[*].text");
    // Same seed and target: the large array holds the same records
    // (allowing one record of drift from the different wrappers).
    EXPECT_LE(matches > small.count() ? matches - small.count()
                                      : small.count() - matches,
              1u);
    EXPECT_GT(matches, 50u);
}

TEST(Datasets, SmallSpansCoverBuffer)
{
    SmallRecords data = generateSmall(DatasetId::BB, 128 * 1024);
    size_t covered = 0;
    for (auto [off, len] : data.spans) {
        EXPECT_LE(off + len, data.buffer.size());
        covered += len + 1; // +1 newline separator
    }
    EXPECT_EQ(covered, data.buffer.size());
}
