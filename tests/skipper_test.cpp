/** @file Tests for the bit-parallel fast-forward primitives (G1..G5). */
#include "ski/skipper.h"

#include <gtest/gtest.h>

#include <string>

#include "intervals/cursor.h"
#include "util/error.h"

using namespace jsonski::ski;
using jsonski::ParseError;
using jsonski::intervals::StreamCursor;

namespace {

/** Cursor+skipper pair bound to a string (keeps tests terse). */
struct Fixture
{
    explicit Fixture(std::string text)
        : json(std::move(text)), cur(json), skip(cur, &stats)
    {}

    std::string json;
    FastForwardStats stats;
    StreamCursor cur;
    Skipper skip;
};

} // namespace

TEST(SkipperOverObj, Flat)
{
    Fixture f(R"({"a":1,"b":2} tail)");
    f.skip.overObj(Group::G2);
    EXPECT_EQ(f.cur.pos(), f.json.find(" tail"));
    EXPECT_EQ(f.stats.get(Group::G2), f.cur.pos());
}

TEST(SkipperOverObj, Nested)
{
    Fixture f(R"({"a":{"b":{"c":1}},"d":{"e":[{}]}},X)");
    f.skip.overObj(Group::G2);
    EXPECT_EQ(f.json[f.cur.pos()], ',');
}

TEST(SkipperOverObj, BracesInStringsIgnored)
{
    Fixture f(R"({"a":"}}}{{{","b":"{"}Z)");
    f.skip.overObj(Group::G2);
    EXPECT_EQ(f.json[f.cur.pos()], 'Z');
}

TEST(SkipperOverObj, SpansManyBlocks)
{
    std::string inner;
    for (int i = 0; i < 50; ++i)
        inner += "{\"k" + std::to_string(i) + "\":[1,2,3]},";
    std::string json = "{\"list\":[" + inner + "{}]}END";
    Fixture f(json);
    f.skip.overObj(Group::G2);
    EXPECT_EQ(f.json.compare(f.cur.pos(), 3, "END"), 0);
}

TEST(SkipperOverObj, UnterminatedThrows)
{
    Fixture f(R"({"a":{"b":1})");
    EXPECT_THROW(f.skip.overObj(Group::G2), ParseError);
}

TEST(SkipperOverAry, NestedWithStrings)
{
    Fixture f(R"([[1,"]]",[2,[3]]],"x"],tail)");
    f.skip.overAry(Group::G2);
    // Skips the *first* complete array: [[1,"]]",[2,[3]]],"x"]
    EXPECT_EQ(f.json[f.cur.pos()], ',');
    EXPECT_EQ(f.cur.pos(), f.json.size() - 5);
}

TEST(SkipperOverPrimitive, Number)
{
    Fixture f("12345, next");
    f.skip.overPrimitive(Group::G2);
    EXPECT_EQ(f.json[f.cur.pos()], ',');
}

TEST(SkipperOverPrimitive, StringWithMetachars)
{
    Fixture f(R"("a,b}c]d", next)");
    f.skip.overPrimitive(Group::G2);
    EXPECT_EQ(f.cur.pos(), f.json.find(", next"));
}

TEST(SkipperOverPrimitive, EndsAtCloseBrace)
{
    Fixture f("true}");
    f.skip.overPrimitive(Group::G2);
    EXPECT_EQ(f.json[f.cur.pos()], '}');
}

TEST(SkipperOverPrimitive, RootPrimitiveRunsToEof)
{
    Fixture f("3.14159");
    f.skip.overPrimitive(Group::G2);
    EXPECT_TRUE(f.cur.atEnd());
}

TEST(SkipperOverValue, DispatchesOnType)
{
    {
        Fixture f(R"(  {"a":1},x)");
        f.skip.overValue(Group::G2);
        EXPECT_EQ(f.json[f.cur.pos()], ',');
    }
    {
        Fixture f("  [1,2],x");
        f.skip.overValue(Group::G2);
        EXPECT_EQ(f.json[f.cur.pos()], ',');
    }
    {
        Fixture f("  null,x");
        f.skip.overValue(Group::G2);
        EXPECT_EQ(f.json[f.cur.pos()], ',');
    }
}

TEST(SkipperToObjEnd, FromInsideObject)
{
    std::string json = R"({"a":1,"b":{"c":2},"d":3}#)";
    Fixture f(json);
    // Position after the value of "a" (at the comma).
    f.cur.setPos(json.find(",\"b\""));
    f.skip.toObjEnd(Group::G4);
    EXPECT_EQ(f.json[f.cur.pos()], '#');
    EXPECT_GT(f.stats.get(Group::G4), 0u);
}

TEST(SkipperToAryEnd, FromInsideArray)
{
    std::string json = R"([1,[2,3],{"a":[4]},5]#)";
    Fixture f(json);
    f.cur.setPos(2); // after "1,"
    f.skip.toAryEnd(Group::G5);
    EXPECT_EQ(f.json[f.cur.pos()], '#');
}

TEST(SkipperStringEnd, Simple)
{
    Fixture f(R"("hello" rest)");
    EXPECT_EQ(f.skip.stringEnd(0), 7u);
}

TEST(SkipperStringEnd, EscapedQuotes)
{
    Fixture f(R"("a\"b" rest)");
    EXPECT_EQ(f.skip.stringEnd(0), 6u);
}

TEST(SkipperStringEnd, AcrossBlocks)
{
    std::string json = "\"" + std::string(100, 'x') + "\"!";
    Fixture f(json);
    EXPECT_EQ(f.skip.stringEnd(0), 102u);
}

TEST(SkipperStringEnd, UnterminatedThrows)
{
    Fixture f("\"abc");
    EXPECT_THROW(f.skip.stringEnd(0), ParseError);
}

TEST(SkipperStringEnd, BackslashParityAtBlock63)
{
    // Regression: a backslash run ending at byte 63 carries its parity
    // into the next block.  Odd run => the quote at byte 64 is escaped
    // and the string ends at the later real quote; even run => it ends
    // exactly at byte 64.
    for (size_t run = 1; run <= 8; ++run) {
        std::string json = "\"";
        json += std::string(64 - run - 1, 'y');
        json += std::string(run, '\\');
        ASSERT_EQ(json.size(), 64u);
        json += "\"z\" rest";
        Fixture f(json);
        // stringEnd() returns the position just past the real closing
        // quote, which is byte 64 when the run is even, byte 66 when
        // odd.
        EXPECT_EQ(f.skip.stringEnd(0), run % 2 ? 67u : 65u)
            << "run of " << run;
    }
}

TEST(SkipperStringEnd, QuoteExactlyAtBlockBoundary)
{
    // String whose closing quote is the first byte of a block, with no
    // escapes involved: the cross-block in-string carry alone decides.
    for (size_t len : {62u, 63u, 64u, 126u, 127u, 128u}) {
        std::string json = "\"" + std::string(len, 'x') + "\" rest";
        Fixture f(json);
        EXPECT_EQ(f.skip.stringEnd(0), len + 2) << "len " << len;
    }
}

// --- G1: toAttr -----------------------------------------------------------

TEST(SkipperToAttr, AnyStopsAtFirstAttribute)
{
    std::string json = R"({"alpha": 42, "beta": 7})";
    Fixture f(json);
    f.cur.setPos(1);
    auto r = f.skip.toAttr(Skipper::TypeFilter::Any, Group::G1);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(f.json.substr(r.key_begin, r.key_end - r.key_begin), "alpha");
    EXPECT_EQ(f.json[f.cur.pos()], '4');
}

TEST(SkipperToAttr, AnyIteratesAllAttributes)
{
    std::string json = R"({"a":1,"b":[2],"c":{"d":3}})";
    Fixture f(json);
    f.cur.setPos(1);
    std::vector<std::string> keys;
    for (;;) {
        auto r = f.skip.toAttr(Skipper::TypeFilter::Any, Group::G1);
        if (!r.found)
            break;
        keys.push_back(
            std::string(f.json.substr(r.key_begin, r.key_end - r.key_begin)));
        f.skip.overValue(Group::G2);
    }
    EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_TRUE(f.cur.atEnd());
}

TEST(SkipperToAttr, ObjectFilterSkipsPrimitivesAndArrays)
{
    std::string json =
        R"({"n":1,"s":"x","arr":[1,{"deep":2}],"obj":{"k":9},"z":0})";
    Fixture f(json);
    f.cur.setPos(1);
    auto r = f.skip.toAttr(Skipper::TypeFilter::Object, Group::G1);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(f.json.substr(r.key_begin, r.key_end - r.key_begin), "obj");
    EXPECT_EQ(f.json[f.cur.pos()], '{');
    EXPECT_GT(f.stats.get(Group::G1), 0u);
}

TEST(SkipperToAttr, ObjectFilterFirstAttrIsObject)
{
    std::string json = R"({"obj":{"k":9},"z":0})";
    Fixture f(json);
    f.cur.setPos(1);
    auto r = f.skip.toAttr(Skipper::TypeFilter::Object, Group::G1);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(f.json.substr(r.key_begin, r.key_end - r.key_begin), "obj");
}

TEST(SkipperToAttr, ObjectFilterNoObjectValue)
{
    std::string json = R"({"a":1,"b":[{"x":1}],"c":"s"}#)";
    Fixture f(json);
    f.cur.setPos(1);
    auto r = f.skip.toAttr(Skipper::TypeFilter::Object, Group::G1);
    EXPECT_FALSE(r.found);
    EXPECT_EQ(f.json[f.cur.pos()], '#');
}

TEST(SkipperToAttr, ArrayFilterSkipsObjects)
{
    std::string json = R"({"o":{"a":[1]},"p":3,"arr":[7],"q":0})";
    Fixture f(json);
    f.cur.setPos(1);
    auto r = f.skip.toAttr(Skipper::TypeFilter::Array, Group::G1);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(f.json.substr(r.key_begin, r.key_end - r.key_begin), "arr");
    EXPECT_EQ(f.json[f.cur.pos()], '[');
}

TEST(SkipperToAttr, EmptyObject)
{
    std::string json = "{}#";
    Fixture f(json);
    f.cur.setPos(1);
    auto r = f.skip.toAttr(Skipper::TypeFilter::Any, Group::G1);
    EXPECT_FALSE(r.found);
    EXPECT_EQ(f.json[f.cur.pos()], '#');
}

TEST(SkipperToAttr, KeyRecoveredAfterBatchedPrimitiveRun)
{
    // Many primitive attributes before the object-typed one; the batch
    // scan skims past the key, which must be recovered by keyBefore().
    std::string json = R"({"a":1,"b":2,"c":3,"d":4,"tgt" : {"k":1},"e":5})";
    Fixture f(json);
    f.cur.setPos(1);
    auto r = f.skip.toAttr(Skipper::TypeFilter::Object, Group::G1);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(f.json.substr(r.key_begin, r.key_end - r.key_begin), "tgt");
    EXPECT_EQ(f.json[f.cur.pos()], '{');
}

TEST(SkipperToAttr, KeyWithEscapedQuoteRecovered)
{
    std::string json = R"({"a":1,"we\"ird":{"k":1}})";
    Fixture f(json);
    f.cur.setPos(1);
    auto r = f.skip.toAttr(Skipper::TypeFilter::Object, Group::G1);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(f.json.substr(r.key_begin, r.key_end - r.key_begin),
              "we\\\"ird");
}

// --- Element scans ---------------------------------------------------------

TEST(SkipperToTypedElem, FindsFirstObject)
{
    std::string json = R"(1,"s",[2,3],{"k":1},4])";
    Fixture f(json); // array body, '[' already consumed conceptually
    size_t idx = 0;
    auto r = f.skip.toTypedElem('{', idx, SIZE_MAX, Group::G1);
    EXPECT_EQ(r, Skipper::ElemStop::Found);
    EXPECT_EQ(idx, 3u);
    EXPECT_EQ(f.json[f.cur.pos()], '{');
}

TEST(SkipperToTypedElem, ArrayEnd)
{
    std::string json = R"(1,2,"x"]#)";
    Fixture f(json);
    size_t idx = 0;
    auto r = f.skip.toTypedElem('{', idx, SIZE_MAX, Group::G1);
    EXPECT_EQ(r, Skipper::ElemStop::End);
    EXPECT_EQ(f.json[f.cur.pos()], '#');
}

TEST(SkipperToTypedElem, BudgetLimit)
{
    std::string json = "1,2,3,4,5,6]";
    Fixture f(json);
    size_t idx = 0;
    auto r = f.skip.toTypedElem('{', idx, 3, Group::G1);
    EXPECT_EQ(r, Skipper::ElemStop::Found);
    EXPECT_EQ(idx, 3u);
    EXPECT_EQ(f.json[f.cur.pos()], '4');
}

TEST(SkipperToTypedElem, SkipsWrongContainers)
{
    std::string json = R"([1],[2],{"k":1}])";
    Fixture f(json);
    size_t idx = 0;
    auto r = f.skip.toTypedElem('{', idx, SIZE_MAX, Group::G1);
    EXPECT_EQ(r, Skipper::ElemStop::Found);
    EXPECT_EQ(idx, 2u);
    EXPECT_EQ(f.json[f.cur.pos()], '{');
}

TEST(SkipperOverElems, SkipsExactCount)
{
    std::string json = R"(10,{"a":1},[3,3],40,50])";
    Fixture f(json);
    size_t idx = 0;
    auto r = f.skip.overElems(3, idx, Group::G5);
    EXPECT_EQ(r, Skipper::ElemStop::Found);
    EXPECT_EQ(idx, 3u);
    EXPECT_EQ(f.json[f.cur.pos()], '4');
}

TEST(SkipperOverElems, EndsEarlyWhenArrayCloses)
{
    std::string json = "1,2]#";
    Fixture f(json);
    size_t idx = 0;
    auto r = f.skip.overElems(10, idx, Group::G5);
    EXPECT_EQ(r, Skipper::ElemStop::End);
    EXPECT_EQ(f.json[f.cur.pos()], '#');
}

TEST(SkipperOverElems, LongPrimitiveRunAcrossBlocks)
{
    std::string json;
    for (int i = 0; i < 100; ++i)
        json += std::to_string(i * 11) + ",";
    json += "\"end\"]#";
    Fixture f(json);
    size_t idx = 0;
    auto r = f.skip.overElems(100, idx, Group::G5);
    EXPECT_EQ(r, Skipper::ElemStop::Found);
    EXPECT_EQ(idx, 100u);
    EXPECT_EQ(f.json[f.cur.pos()], '"');
}

TEST(SkipperConsume, ThrowsOnUnexpected)
{
    Fixture f("  }");
    EXPECT_THROW(f.skip.consume(']'), ParseError);
    Fixture g("  ]x");
    g.skip.consume(']');
    EXPECT_EQ(g.json[g.cur.pos()], 'x');
}

TEST(SkipperStats, AccountingSumsAcrossGroups)
{
    Fixture f(R"({"a":{"b":1}},x)");
    f.skip.overObj(Group::G2);
    FastForwardStats& s = f.stats;
    EXPECT_EQ(s.total(), s.get(Group::G2));
    EXPECT_NEAR(s.overallRatio(f.json.size()),
                static_cast<double>(f.cur.pos()) / f.json.size(), 1e-12);
}
