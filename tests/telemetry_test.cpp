/**
 * @file
 * Tests for the telemetry substrate: histogram bucketing, trace-ring
 * wraparound, registry merge/reset, scope install semantics, exporter
 * output validity, and the gated-hook contract (hooks record when
 * JSONSKI_TELEMETRY=ON, stay silent when OFF).  The differential check
 * that telemetry skipped-byte totals equal FastForwardStats (Table 6
 * accounting) lives here too.
 */
#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <string>

#include "json/validate.h"
#include "path/parser.h"
#include "ski/stats.h"
#include "ski/streamer.h"
#include "telemetry/export.h"

using namespace jsonski;
using namespace jsonski::telemetry;

TEST(SkipHistogramTest, Log2Bucketing)
{
    SkipHistogram h;
    h.add(0); // bit_width(0) == 0
    h.add(1); // bucket 1: [1, 2)
    h.add(2); // bucket 2: [2, 4)
    h.add(3);
    h.add(4); // bucket 3: [4, 8)
    h.add(7);
    h.add(64); // bucket 7: [64, 128)
    h.add(~uint64_t{0}); // bucket 64
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[1], 1u);
    EXPECT_EQ(h.buckets[2], 2u);
    EXPECT_EQ(h.buckets[3], 2u);
    EXPECT_EQ(h.buckets[7], 1u);
    EXPECT_EQ(h.buckets[64], 1u);
    EXPECT_EQ(h.count(), 8u);
}

TEST(SkipHistogramTest, Merge)
{
    SkipHistogram a, b;
    a.add(5);
    b.add(5);
    b.add(100);
    a.merge(b);
    EXPECT_EQ(a.buckets[3], 2u);
    EXPECT_EQ(a.buckets[7], 1u);
    EXPECT_EQ(a.count(), 3u);
}

namespace {

TraceEntry
entry(uint64_t i)
{
    return TraceEntry{i, i + 10, static_cast<uint16_t>(i % 7),
                      static_cast<uint8_t>(i % 5)};
}

} // namespace

TEST(TraceRingTest, FillsUpToCapacity)
{
    TraceRing ring(4);
    for (uint64_t i = 0; i < 3; ++i)
        ring.push(entry(i));
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.total(), 3u);
    EXPECT_EQ(ring.dropped(), 0u);
    auto snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    for (uint64_t i = 0; i < 3; ++i)
        EXPECT_EQ(snap[i], entry(i));
}

TEST(TraceRingTest, WraparoundKeepsNewestOldestFirst)
{
    TraceRing ring(4);
    for (uint64_t i = 0; i < 10; ++i)
        ring.push(entry(i));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.total(), 10u);
    EXPECT_EQ(ring.dropped(), 6u);
    auto snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    // Oldest retained entry first: 6, 7, 8, 9.
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(snap[i], entry(6 + i)) << i;
}

TEST(TraceRingTest, ZeroCapacityCountsButRetainsNothing)
{
    TraceRing ring(0);
    for (uint64_t i = 0; i < 5; ++i)
        ring.push(entry(i));
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.total(), 5u);
    EXPECT_EQ(ring.dropped(), 5u);
    EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRingTest, MergePreservesTotalsAndOrder)
{
    TraceRing a(8), b(2);
    a.push(entry(0));
    for (uint64_t i = 1; i < 5; ++i)
        b.push(entry(i)); // b retains 3, 4; dropped 2
    a.merge(b);
    EXPECT_EQ(a.total(), 5u); // 1 own + 2 retained + 2 dropped in b
    auto snap = a.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0], entry(0));
    EXPECT_EQ(snap[1], entry(3));
    EXPECT_EQ(snap[2], entry(4));
}

TEST(TraceRingTest, ClearResets)
{
    TraceRing ring(2);
    ring.push(entry(0));
    ring.push(entry(1));
    ring.push(entry(2));
    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.total(), 0u);
    ring.push(entry(7));
    EXPECT_EQ(ring.snapshot().size(), 1u);
}

TEST(RegistryTest, MergeIsElementWise)
{
    Registry a, b;
    a.counters[0] = 2;
    b.counters[0] = 3;
    a.skipped[1] = 100;
    b.skipped[1] = 50;
    b.skipped[4] = 7;
    a.skip_hist[1].add(100);
    b.skip_hist[1].add(50);
    a.phase_ns[0] = 10;
    b.phase_ns[0] = 20;
    b.trace.push(entry(1));
    a.merge(b);
    EXPECT_EQ(a.counters[0], 5u);
    EXPECT_EQ(a.skipped[1], 150u);
    EXPECT_EQ(a.skipped[4], 7u);
    EXPECT_EQ(a.skippedTotal(), 157u);
    EXPECT_EQ(a.skip_hist[1].count(), 2u);
    EXPECT_EQ(a.phase_ns[0], 30u);
    EXPECT_EQ(a.trace.total(), 1u);
}

TEST(RegistryTest, ResetZeroesEverything)
{
    Registry r;
    r.counters[3] = 9;
    r.skipped[2] = 11;
    r.skip_hist[2].add(11);
    r.phase_ns[1] = 5;
    r.trace.push(entry(0));
    r.reset();
    EXPECT_EQ(r.counter(Counter::PairingFallbackParses), 0u);
    EXPECT_EQ(r.skippedTotal(), 0u);
    EXPECT_EQ(r.skip_hist[2].count(), 0u);
    EXPECT_EQ(r.phase_ns[1], 0u);
    EXPECT_EQ(r.trace.total(), 0u);
}

TEST(ScopeTest, InstallsAndRestoresNested)
{
    EXPECT_EQ(current(), nullptr);
    Registry outer, inner;
    {
        Scope a(outer);
        EXPECT_EQ(current(), &outer);
        {
            Scope b(inner);
            EXPECT_EQ(current(), &inner);
        }
        EXPECT_EQ(current(), &outer);
    }
    EXPECT_EQ(current(), nullptr);
}

TEST(HooksTest, GatedOnBuildConfig)
{
    Registry reg;
    {
        Scope scope(reg);
        count(Counter::CursorReseeks);
        count(Counter::BytesScanned, 64);
        recordSkip(2, 10, 25, 3);
        PhaseScope phase(Phase::Pair); // must compile in both configs
    }
    if (kEnabled) {
        EXPECT_EQ(reg.counter(Counter::CursorReseeks), 1u);
        EXPECT_EQ(reg.counter(Counter::BytesScanned), 64u);
        EXPECT_EQ(reg.skipped[2], 15u);
        EXPECT_EQ(reg.skip_hist[2].count(), 1u);
        ASSERT_EQ(reg.trace.total(), 1u);
        EXPECT_EQ(reg.trace.snapshot()[0],
                  (TraceEntry{10, 25, 3, 2}));
    } else {
        EXPECT_EQ(reg.counter(Counter::CursorReseeks), 0u);
        EXPECT_EQ(reg.skippedTotal(), 0u);
        EXPECT_EQ(reg.trace.total(), 0u);
    }
}

TEST(HooksTest, SilentWithoutScope)
{
    // No registry installed: hooks must not crash, whatever the config.
    count(Counter::BlocksClassified);
    recordSkip(0, 0, 64, 0);
    PhaseScope phase(Phase::Skip);
}

namespace {

Registry
sampleRegistry()
{
    Registry r;
    r.counters[0] = 42;
    r.counters[5] = 4096;
    r.skipped[0] = 1000;
    r.skipped[3] = 9;
    r.skip_hist[0].add(1000);
    r.skip_hist[3].add(9);
    r.phase_ns[0] = 123456;
    r.trace.push(TraceEntry{0, 1000, 1, 0});
    r.trace.push(TraceEntry{1200, 1209, 2, 3});
    return r;
}

} // namespace

TEST(ExportTest, JsonIsWellFormed)
{
    Registry r = sampleRegistry();
    std::string out = toJson(r);
    auto v = json::validate(out);
    EXPECT_TRUE(v.ok) << v.message << " at " << v.error_position
                      << "\n" << out;
    EXPECT_NE(out.find("\"skipped_bytes\""), std::string::npos);
    EXPECT_NE(out.find("\"G1\":1000"), std::string::npos);
    EXPECT_NE(out.find("\"blocks_classified\":42"), std::string::npos);
    EXPECT_NE(out.find("\"trace\""), std::string::npos);
    // The empty registry must also be valid JSON.
    Registry empty;
    EXPECT_TRUE(json::validate(toJson(empty)).ok);
}

TEST(ExportTest, PrometheusHasMetricFamilies)
{
    std::string out = toPrometheus(sampleRegistry());
    EXPECT_NE(out.find("jsonski_counter_total{name=\"blocks_classified\"} 42"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("jsonski_skipped_bytes_total{group=\"G1\"} 1000"),
              std::string::npos);
    EXPECT_NE(out.find("# TYPE"), std::string::npos);
    EXPECT_NE(out.find("+Inf"), std::string::npos);
}

TEST(ExportTest, PrometheusExtraLabels)
{
    std::string out = toPrometheus(sampleRegistry(), "run=\"r1\"");
    EXPECT_NE(out.find("{run=\"r1\",name=\"blocks_classified\"}"),
              std::string::npos)
        << out;
}

TEST(ExportTest, RenderReportMentionsEveryCounter)
{
    std::string out = renderReport(sampleRegistry());
    for (size_t c = 0; c < kCounterCount; ++c)
        EXPECT_NE(out.find(counterName(static_cast<Counter>(c))),
                  std::string::npos)
            << counterName(static_cast<Counter>(c));
}

TEST(StatsTest, RatiosClampToOne)
{
    // A record-stream accumulation can exceed the single-document
    // length handed to ratio(); the accessors clamp (stats.h contract).
    ski::FastForwardStats stats;
    stats.add(ski::Group::G1, 500);
    stats.add(ski::Group::G2, 700);
    EXPECT_DOUBLE_EQ(stats.ratio(ski::Group::G1, 100), 1.0);
    EXPECT_DOUBLE_EQ(stats.overallRatio(100), 1.0);
    EXPECT_DOUBLE_EQ(stats.overallRatio(0), 0.0);
    EXPECT_LE(stats.ratio(ski::Group::G1, 1000), 0.5);
}

// Differential check (Table 6 accounting): the registry's per-group
// byte totals must equal FastForwardStats for the same run when the
// hooks are compiled in, and stay zero when they are compiled out.
TEST(IntegrationTest, TelemetryMatchesFastForwardStats)
{
    std::string json = R"({"pd":[)";
    for (int i = 0; i < 200; ++i) {
        if (i != 0)
            json += ',';
        json += R"({"id":)" + std::to_string(i) +
                R"(,"pad":"xxxxxxxxxxxxxxxxxxxxxxxx","cp":[1,2,3],)" +
                R"("deep":{"a":{"b":[1,2,3,4,5,6,7,8]}}})";
    }
    json += R"(],"tail":"end"})";

    ski::Streamer streamer(path::parse("$.pd[*].id"));
    Registry reg;
    ski::StreamResult result;
    {
        Scope scope(reg);
        result = streamer.run(json);
    }
    EXPECT_EQ(result.matches, 200u);
    ASSERT_GT(result.stats.total(), 0u);

    for (size_t g = 0; g < ski::kGroupCount; ++g) {
        uint64_t expected =
            kEnabled ? result.stats.get(static_cast<ski::Group>(g)) : 0;
        EXPECT_EQ(reg.skipped[g], expected) << "G" << (g + 1);
        EXPECT_EQ(kEnabled && expected > 0,
                  reg.skip_hist[g].count() > 0)
            << "G" << (g + 1);
    }
    if (kEnabled) {
        EXPECT_GT(reg.counter(Counter::BlocksClassified), 0u);
        EXPECT_EQ(reg.counter(Counter::BytesScanned),
                  reg.counter(Counter::BlocksClassified) * 64);
        EXPECT_GT(reg.trace.total(), 0u);
        // Every retained trace entry is a sane in-bounds span.
        for (const TraceEntry& e : reg.trace.snapshot()) {
            EXPECT_LT(e.begin, e.end);
            EXPECT_LE(e.end, json.size());
            EXPECT_LT(e.group, kSkipGroupCount);
        }
    } else {
        EXPECT_EQ(reg.counter(Counter::BlocksClassified), 0u);
        EXPECT_EQ(reg.trace.total(), 0u);
    }
}
