/** @file Tests for the streaming JSON writer. */
#include "json/writer.h"

#include <gtest/gtest.h>

#include "json/validate.h"

using namespace jsonski::json;

TEST(Writer, EmptyObject)
{
    Writer w;
    w.beginObject();
    w.endObject();
    EXPECT_EQ(w.take(), "{}");
}

TEST(Writer, EmptyArray)
{
    Writer w;
    w.beginArray();
    w.endArray();
    EXPECT_EQ(w.take(), "[]");
}

TEST(Writer, FlatObject)
{
    Writer w;
    w.beginObject();
    w.key("a");
    w.number(int64_t{1});
    w.key("b");
    w.string("x");
    w.key("c");
    w.boolean(true);
    w.key("d");
    w.null();
    w.endObject();
    EXPECT_EQ(w.take(), R"({"a":1,"b":"x","c":true,"d":null})");
}

TEST(Writer, NestedStructures)
{
    Writer w;
    w.beginObject();
    w.key("arr");
    w.beginArray();
    w.number(int64_t{1});
    w.beginObject();
    w.key("k");
    w.string("v");
    w.endObject();
    w.beginArray();
    w.endArray();
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.take(), R"({"arr":[1,{"k":"v"},[]]})");
}

TEST(Writer, EscapesStrings)
{
    Writer w;
    w.beginObject();
    w.key("quote\"key");
    w.string("line\nbreak");
    w.endObject();
    std::string out = w.take();
    EXPECT_EQ(out, "{\"quote\\\"key\":\"line\\nbreak\"}");
    EXPECT_TRUE(validate(out));
}

TEST(Writer, Doubles)
{
    Writer w;
    w.beginArray();
    w.number(3.25);
    w.number(-0.5);
    w.endArray();
    std::string out = w.take();
    EXPECT_TRUE(validate(out)) << out;
}

TEST(Writer, RawValue)
{
    Writer w;
    w.beginArray();
    w.raw(R"({"pre":"rendered"})");
    w.number(int64_t{2});
    w.endArray();
    EXPECT_EQ(w.take(), R"([{"pre":"rendered"},2])");
}

TEST(Writer, TakeResetsState)
{
    Writer w;
    w.beginArray();
    w.number(int64_t{1});
    w.endArray();
    EXPECT_EQ(w.take(), "[1]");
    w.beginObject();
    w.endObject();
    EXPECT_EQ(w.take(), "{}");
}

TEST(Writer, ProducesValidJsonUnderStress)
{
    Writer w;
    w.beginArray();
    for (int i = 0; i < 50; ++i) {
        w.beginObject();
        w.key("i");
        w.number(static_cast<int64_t>(i));
        w.key("nested");
        w.beginArray();
        for (int j = 0; j < 3; ++j)
            w.string("s" + std::to_string(j));
        w.endArray();
        w.endObject();
    }
    w.endArray();
    EXPECT_TRUE(validate(w.take()));
}
