/** @file Determinism and range tests for util/rng.h. */
#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

using jsonski::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(10);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(12);
    for (int i = 0; i < 10000; ++i) {
        double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(14);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(Rng, IdentLengthAndAlphabet)
{
    Rng rng(15);
    std::string s = rng.ident(32);
    EXPECT_EQ(s.size(), 32u);
    for (char c : s)
        EXPECT_TRUE(c >= 'a' && c <= 'z');
}
