/** @file Tests for the bit-parallel record scanner. */
#include "ski/record_scanner.h"

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "json/validate.h"
#include "util/error.h"

using jsonski::ParseError;
using jsonski::ski::scanRecords;

TEST(RecordScanner, SingleRecord)
{
    std::string s = R"({"a": 1})";
    auto spans = scanRecords(s);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0], (std::pair<size_t, size_t>{0, s.size()}));
}

TEST(RecordScanner, NewlineDelimited)
{
    std::string s = "{\"a\":1}\n{\"b\":2}\n[3,4]\n";
    auto spans = scanRecords(s);
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(s.substr(spans[0].first, spans[0].second), "{\"a\":1}");
    EXPECT_EQ(s.substr(spans[1].first, spans[1].second), "{\"b\":2}");
    EXPECT_EQ(s.substr(spans[2].first, spans[2].second), "[3,4]");
}

TEST(RecordScanner, ConcatenatedNoSeparator)
{
    std::string s = "{}{}[]";
    auto spans = scanRecords(s);
    ASSERT_EQ(spans.size(), 3u);
}

TEST(RecordScanner, EmptyInput)
{
    EXPECT_TRUE(scanRecords("").empty());
    EXPECT_TRUE(scanRecords("   \n\t ").empty());
}

TEST(RecordScanner, BracesInsideStringsIgnored)
{
    std::string s = R"({"a": "}{", "b": "]["})" "\n" R"(["{\"nested\": 1}"])";
    auto spans = scanRecords(s);
    ASSERT_EQ(spans.size(), 2u);
    for (auto [off, len] : spans)
        EXPECT_TRUE(jsonski::json::validate(s.substr(off, len)));
}

TEST(RecordScanner, DeepNestingCrossesBlocks)
{
    std::string rec = "{\"k\":";
    for (int i = 0; i < 100; ++i)
        rec += "[";
    rec += "1";
    for (int i = 0; i < 100; ++i)
        rec += "]";
    rec += "}";
    std::string s = rec + "\n" + rec;
    auto spans = scanRecords(s);
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(s.substr(spans[1].first, spans[1].second), rec);
}

TEST(RecordScanner, MatchesGeneratorOffsets)
{
    auto data = jsonski::gen::generateSmall(jsonski::gen::DatasetId::TT,
                                            256 * 1024);
    auto spans = scanRecords(data.buffer);
    ASSERT_EQ(spans.size(), data.count());
    for (size_t i = 0; i < spans.size(); ++i)
        EXPECT_EQ(spans[i], data.spans[i]) << i;
}

TEST(RecordScanner, Errors)
{
    EXPECT_THROW(scanRecords("{\"a\":1"), ParseError);
    EXPECT_THROW(scanRecords("}"), ParseError);
    EXPECT_THROW(scanRecords("{} junk {}"), ParseError);
    EXPECT_THROW(scanRecords("42"), ParseError); // scalar root
}

TEST(RecordScanner, StrayAfterLastRecord)
{
    EXPECT_THROW(scanRecords("{} x"), ParseError);
}

TEST(RecordScanner, LargeRecordFastPath)
{
    // One record much larger than a block exercises the popcount
    // fast path for interior blocks.
    std::string rec = "[";
    for (int i = 0; i < 5000; ++i)
        rec += "{\"v\":" + std::to_string(i) + "},";
    rec += "{}]";
    std::string s = rec + " " + "{\"tail\": true}";
    auto spans = scanRecords(s);
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].second, rec.size());
}
