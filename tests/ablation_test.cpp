/**
 * @file
 * The ablation knobs must never change results — only performance.
 * Every option combination is run against every paper query on small
 * generated datasets and must agree with the default configuration.
 */
#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "harness/engines.h"
#include "path/parser.h"
#include "ski/streamer.h"

using namespace jsonski::ski;
using jsonski::gen::generateLarge;
using jsonski::path::CollectSink;
using jsonski::path::parse;

namespace {

std::vector<std::string>
runWith(const std::string& json, const jsonski::path::PathQuery& q,
        StreamerOptions opt)
{
    Streamer s(q, opt);
    CollectSink sink;
    s.run(json, &sink);
    return sink.values;
}

} // namespace

TEST(Ablation, AllOptionCombinationsAgree)
{
    for (const auto& spec : jsonski::harness::paperQueries()) {
        std::string json = generateLarge(spec.dataset, 2 * 1024 * 1024);
        auto q = parse(spec.large_query);
        auto reference = runWith(json, q, StreamerOptions{});
        EXPECT_FALSE(reference.empty()) << spec.id;
        for (bool type_filter : {false, true}) {
            for (bool batch : {false, true}) {
                for (bool scalar : {false, true}) {
                    StreamerOptions opt{type_filter, batch, scalar};
                    EXPECT_EQ(runWith(json, q, opt), reference)
                        << spec.id << " tf=" << type_filter
                        << " batch=" << batch << " scalar=" << scalar;
                }
            }
        }
    }
}

TEST(Ablation, StatsShiftBetweenGroupsNotTotals)
{
    // Disabling the type filter reroutes G1 skips into G2 but the
    // match counts stay identical (checked above); here we confirm G1
    // drops to zero in that mode.
    std::string json =
        generateLarge(jsonski::gen::DatasetId::WM, 256 * 1024);
    auto q = parse("$.it[*].bmrpr.pr");
    Streamer no_g1(q, StreamerOptions{.type_filter = false});
    StreamResult r = no_g1.run(json);
    EXPECT_EQ(r.stats.get(Group::G1), 0u);
    Streamer full(q);
    StreamResult rf = full.run(json);
    EXPECT_GT(rf.stats.get(Group::G1), 0u);
}
