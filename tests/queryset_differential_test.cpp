/**
 * @file
 * Set-differential test wall for one-pass multi-query batching: the
 * combined query engine must be observationally identical to N
 * independent Streamer::run passes — per-query values byte for byte,
 * per-query match counts, ErrorCode and error position — across query
 * sets with shared prefixes, disjoint prefixes, duplicates, and
 * filter/descendant divergent suffixes, at every chunk size in the
 * ladder and under every runnable SIMD kernel.  The batched pass must
 * also never ingest more bytes than the *slowest* solo pass (one
 * combined scan replaces N scans, it never adds input work — and it
 * inherits early-stop from the point where the last query dies).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "intervals/chunk_source.h"
#include "kernels/kernel.h"
#include "path/matches.h"
#include "path/parser.h"
#include "path/queryset.h"
#include "ski/multi.h"
#include "ski/streamer.h"
#include "testing/differential.h"
#include "util/error.h"

using namespace jsonski;

namespace {

/** Chunk ladder; 0 = whole-buffer run (no chunk source at all). */
const std::vector<size_t> kChunks = {0, 1, 7, 64, 4096};

/** One engine's observable outcome for one (doc, query/set, chunk). */
struct Outcome
{
    bool threw = false;
    ErrorCode code = ErrorCode::Unspecified;
    size_t pos = 0;
    std::vector<std::vector<std::string>> values; ///< per distinct id
    std::vector<size_t> matches;                  ///< per distinct id
    size_t input_bytes = 0;
};

Outcome
runSolo(const std::string& doc, const path::PathQuery& q, size_t chunk)
{
    Outcome out;
    out.values.resize(1);
    out.matches.resize(1, 0);
    path::CollectSink sink;
    ski::Streamer s(q);
    try {
        ski::StreamResult r;
        if (chunk == 0) {
            r = s.run(doc, &sink);
        } else {
            intervals::SplitSource src(doc, chunk);
            r = s.run(src, &sink, chunk);
        }
        out.matches[0] = r.matches;
        out.input_bytes = r.input_bytes;
    } catch (const ParseError& e) {
        out.threw = true;
        out.code = e.code();
        out.pos = e.position();
    }
    out.values[0] = std::move(sink.values);
    return out;
}

Outcome
runBatched(const std::string& doc, const ski::MultiStreamer& ms,
           size_t chunk)
{
    Outcome out;
    ski::MultiCollectSink sink(ms.queryCount());
    try {
        ski::MultiStreamer::Result r;
        if (chunk == 0) {
            r = ms.run(doc, &sink);
        } else {
            intervals::SplitSource src(doc, chunk);
            r = ms.run(src, &sink, chunk);
        }
        out.matches = std::move(r.matches);
        out.input_bytes = r.input_bytes;
    } catch (const ParseError& e) {
        out.threw = true;
        out.code = e.code();
        out.pos = e.position();
    }
    out.values = std::move(sink.values);
    return out;
}

/**
 * The wall's core assertion for one (doc, set, chunk): when every solo
 * pass succeeds, the batched pass must succeed with bit-identical
 * per-query values and counts and no extra input bytes; when every
 * solo pass fails with one agreed (code, pos), the batched pass must
 * fail with exactly that (code, pos).  Docs are crafted so one of the
 * two cases holds — mixed solo verdicts fail the test as a crafting
 * error rather than silently skipping.
 */
void
checkSet(const std::string& doc,
         const std::vector<std::string>& set_texts, size_t chunk,
         const std::string& label)
{
    SCOPED_TRACE(label + " chunk=" + std::to_string(chunk) +
                 " kernel=" + std::string(kernels::activeName()));
    ski::MultiStreamer ms(path::QuerySet::fromTexts(set_texts));
    Outcome batched = runBatched(doc, ms, chunk);

    std::vector<Outcome> solos;
    for (const path::PathQuery& q : ms.queries())
        solos.push_back(runSolo(doc, q, chunk));

    bool any_threw = false, all_threw = true;
    for (const Outcome& s : solos) {
        any_threw = any_threw || s.threw;
        all_threw = all_threw && s.threw;
    }
    if (!any_threw) {
        ASSERT_FALSE(batched.threw)
            << "batched threw " << errorCodeName(batched.code) << "@"
            << batched.pos << " where every solo pass succeeded";
        size_t max_solo_bytes = 0;
        for (size_t qi = 0; qi < solos.size(); ++qi) {
            EXPECT_EQ(batched.values[qi], solos[qi].values[0])
                << "query " << ms.querySet().canonical[qi];
            EXPECT_EQ(batched.matches[qi], solos[qi].matches[0])
                << "query " << ms.querySet().canonical[qi];
            max_solo_bytes =
                std::max(max_solo_bytes, solos[qi].input_bytes);
        }
        // One combined scan never adds input work: a solo pass stops
        // pulling chunks once its own query is exhausted, and the
        // batched pass stops once the *last* live query is — so its
        // ingestion is bounded by the slowest solo pass (and therefore
        // far under the sum of all N).
        EXPECT_LE(batched.input_bytes, max_solo_bytes);
    } else {
        ASSERT_TRUE(all_threw)
            << "crafting error: solo passes disagree on success";
        for (size_t qi = 1; qi < solos.size(); ++qi) {
            ASSERT_EQ(solos[qi].code, solos[0].code)
                << "crafting error: solo error codes disagree";
            ASSERT_EQ(solos[qi].pos, solos[0].pos)
                << "crafting error: solo error positions disagree";
        }
        EXPECT_TRUE(batched.threw)
            << "batched succeeded where every solo pass threw "
            << errorCodeName(solos[0].code) << "@" << solos[0].pos;
        if (batched.threw) {
            EXPECT_EQ(batched.code, solos[0].code);
            EXPECT_EQ(batched.pos, solos[0].pos);
        }
    }
}

/** A document exercising every query-set shape below. */
const std::string kDoc = R"({
  "user": {"id": 42, "name": "ada", "tags": ["x", "y", "z"]},
  "place": {"name": "Linz", "cc": "AT"},
  "stats": [10, 20, 30, 40, 50],
  "items": [{"a": 1, "b": "p"}, {"a": 2, "b": "q"},
            {"a": 1, "b": "r"}, {"c": true}],
  "deep": {"l1": {"id": 7, "l2": {"id": 8}}}
})";

struct NamedSet
{
    const char* name;
    std::vector<std::string> texts;
};

/** The four shape families of the issue, plus a combined stressor. */
std::vector<NamedSet>
querySets()
{
    return {
        {"shared-prefix",
         {"$.user.id", "$.user.name", "$.user.tags[*]",
          "$.user.tags[1]"}},
        {"disjoint",
         {"$.user.id", "$.place.name", "$.stats[1:4]", "$.deep.l1.id"}},
        {"duplicates",
         {"$.user.id", "$['user'].id", "$.user.id", "$.place.name"}},
        {"filter-mix",
         {"$.items[?(@.a==1)].b", "$.user.id", "$.items[*].b"}},
        {"descendant-mix", {"$..id", "$.user.name", "$.deep..id"}},
        {"combined",
         {"$.items[?(@.a==1)]", "$..id", "$.user.id", "$['user'].id",
          "$.stats[0]"}},
    };
}

} // namespace

TEST(QuerySetDifferential, ShapesTimesChunksTimesKernels)
{
    for (const kernels::Kernel* kern : kernels::runnable()) {
        kernels::Override guard(*kern);
        for (const NamedSet& set : querySets())
            for (size_t chunk : kChunks)
                checkSet(kDoc, set.texts, chunk, set.name);
    }
}

TEST(QuerySetDifferential, GeneratorCorpusAgrees)
{
    // Every generator-dataset document from the fuzz corpus, against
    // query sets drawn from the default mix (shared prefixes arise
    // naturally: the Table 5 shapes overlap on their first steps).
    std::vector<std::string> queries = jsonski::testing::defaultQueries();
    std::vector<std::string> corpus = jsonski::testing::defaultCorpus(2048);
    for (const std::string& doc : corpus) {
        for (size_t i = 0; i + 3 <= queries.size(); i += 3) {
            std::vector<std::string> set(queries.begin() + i,
                                         queries.begin() + i + 3);
            set.push_back(set.front()); // salt with a duplicate
            for (size_t chunk : {size_t{0}, size_t{7}, size_t{4096}})
                checkSet(doc, set, chunk,
                         "corpus set@" + std::to_string(i));
        }
    }
}

TEST(QuerySetDifferential, MalformedDocsAgreeOnErrorDetail)
{
    // Crafted so every solo pass detects the same damage at the same
    // byte: damage at the top level, before or after the region any
    // query descends into, is seen identically by all of them.
    struct Bad
    {
        const char* doc;
        std::vector<std::string> set;
    };
    const std::vector<Bad> bads = {
        // Value missing at the first attribute: nobody gets past it.
        {R"({"user" 1, "place": 2})", {"$.user.id", "$.place.name"}},
        // Stray byte before the root value: no engine can match a
        // non-container root, and the prefix-scan license means every
        // solo pass (and the batched pass) succeeds with zero matches
        // without reading past it — agreement on the success side.
        {R"(x{"a": 1})", {"$.a", "$.b", "$..a"}},
        // Unbalanced close where a value should start.
        {R"({"a": }, "b": 1})", {"$.a", "$.b"}},
        // Truncated inside the shared prefix, mid-key: both queries
        // are on the identical attribute scan when the bytes run out
        // (truncating *after* one query's last match would be seen
        // through that query's object-exit fast-forward instead, a
        // different detection path with a different error code).
        {R"({"user": {"id)", {"$.user.id", "$.user.name"}},
    };
    for (const Bad& b : bads)
        for (size_t chunk : kChunks)
            checkSet(b.doc, b.set, chunk, "malformed");
}

TEST(QuerySetDifferential, SharedPrefixesCompileToSharedTrieNodes)
{
    // Four queries under $.user share the root and the `user` node:
    // strictly fewer trie nodes than the same count of disjoint
    // queries, and no divergent suffixes for plain sets.
    ski::MultiStreamer shared(path::QuerySet::fromTexts(
        {"$.user.id", "$.user.name", "$.user.tags[*]", "$.user.cc"}));
    ski::MultiStreamer disjoint(path::QuerySet::fromTexts(
        {"$.a.b", "$.c.d", "$.e.f", "$.g.h"}));
    EXPECT_EQ(shared.queryCount(), disjoint.queryCount());
    EXPECT_LT(shared.trieNodes(), disjoint.trieNodes());
    EXPECT_EQ(shared.suffixCount(), 0u);
    EXPECT_EQ(disjoint.suffixCount(), 0u);

    // Filter and descendant steps divert to per-query suffixes; the
    // plain prefix stays shared.
    ski::MultiStreamer mixed(path::QuerySet::fromTexts(
        {"$.user.items[?(@.a==1)]", "$.user..id", "$.user.name"}));
    EXPECT_EQ(mixed.suffixCount(), 2u);
}

TEST(QuerySetDifferential, DuplicateQueriesEmitOneFrameStream)
{
    // Regression for the duplicate double-emit bug: a set listing one
    // query three times (under different spellings) must produce ONE
    // distinct stream whose values equal the solo run — not three
    // copies, not duplicated frames.
    ski::MultiStreamer ms(path::QuerySet::fromTexts(
        {"$.user.id", "$['user'].id", "$.user.id"}));
    ASSERT_EQ(ms.queryCount(), 1u);
    EXPECT_EQ(ms.querySet().id_of, (std::vector<size_t>{0, 0, 0}));
    ski::MultiCollectSink sink(1);
    auto r = ms.run(kDoc, &sink);
    EXPECT_EQ(r.matches, (std::vector<size_t>{1}));
    EXPECT_EQ(sink.values[0], (std::vector<std::string>{"42"}));
}

TEST(QuerySetDifferential, PerQueryStatsAttributeSuffixWork)
{
    // Suffix replay work lands in per_query[qi]; trie-resident queries
    // report zero (their skips are shared, in the whole-pass stats).
    ski::MultiStreamer ms(path::QuerySet::fromTexts(
        {"$.items[?(@.a==1)].b", "$.user.id"}));
    auto r = ms.run(kDoc);
    ASSERT_EQ(r.per_query.size(), 2u);
    size_t filter_id = SIZE_MAX, plain_id = SIZE_MAX;
    for (size_t qi = 0; qi < ms.queryCount(); ++qi) {
        if (ms.querySet().canonical[qi] == "$.user.id")
            plain_id = qi;
        else
            filter_id = qi;
    }
    ASSERT_NE(filter_id, SIZE_MAX);
    ASSERT_NE(plain_id, SIZE_MAX);
    EXPECT_EQ(r.per_query[plain_id].total(), 0u);
    EXPECT_GT(r.per_query[filter_id].total(), 0u);
    // Whole-pass stats include the replay work.
    EXPECT_GE(r.stats.total(), r.per_query[filter_id].total());
}
