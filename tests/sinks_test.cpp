/** @file Tests for convenience sinks and early termination. */
#include "ski/sinks.h"

#include <gtest/gtest.h>

#include "path/parser.h"
#include "ski/streamer.h"

using namespace jsonski::ski;
using jsonski::path::parse;

namespace {

const char* kArray = R"([{"v":"a"},{"v":"b"},{"v":"c"},{"v":"d"}])";

} // namespace

TEST(Sinks, LimitStopsEarly)
{
    Streamer s(parse("$[*].v"));
    LimitSink sink(2);
    StreamResult r = s.run(kArray, &sink);
    EXPECT_EQ(sink.values, (std::vector<std::string>{"\"a\"", "\"b\""}));
    // The partial count reflects delivered matches only.
    EXPECT_EQ(r.matches, 2u);
}

TEST(Sinks, LimitLargerThanMatchesIsHarmless)
{
    Streamer s(parse("$[*].v"));
    LimitSink sink(100);
    StreamResult r = s.run(kArray, &sink);
    EXPECT_EQ(r.matches, 4u);
    EXPECT_EQ(sink.values.size(), 4u);
}

TEST(Sinks, EarlyStopSkipsWork)
{
    // With limit 1 on a huge array, the pass must not visit the rest:
    // verified via the stream position... indirectly via wall progress
    // being impossible to observe, we check that stats only cover a
    // small prefix.
    std::string big = "[";
    for (int i = 0; i < 10000; ++i)
        big += "{\"v\":" + std::to_string(i) + "},";
    big += "{}]";
    Streamer s(parse("$[*].v"));
    LimitSink sink(1);
    StreamResult r = s.run(big, &sink);
    EXPECT_EQ(r.matches, 1u);
    EXPECT_LT(r.stats.total(), big.size() / 100);
}

TEST(Sinks, UnescapeDecodesStrings)
{
    std::string json = R"({"msg": "line\nbreak é \"q\""})";
    Streamer s(parse("$.msg"));
    UnescapeSink sink;
    s.run(json, &sink);
    ASSERT_EQ(sink.values.size(), 1u);
    EXPECT_EQ(sink.values[0], "line\nbreak \xc3\xa9 \"q\"");
}

TEST(Sinks, UnescapeKeepsNonStringsVerbatim)
{
    Streamer s(parse("$[*]"));
    UnescapeSink sink;
    s.run(R"([1, {"a":2}, "s"])", &sink);
    EXPECT_EQ(sink.values,
              (std::vector<std::string>{"1", R"({"a":2})", "s"}));
}

TEST(Sinks, ConcatBuildsNdjson)
{
    Streamer s(parse("$[*].v"));
    ConcatSink sink;
    s.run(kArray, &sink);
    EXPECT_EQ(sink.out, "\"a\"\n\"b\"\n\"c\"\n\"d\"\n");
}

TEST(Sinks, ConcatCustomSeparator)
{
    Streamer s(parse("$[*].v"));
    ConcatSink sink(", ");
    s.run(kArray, &sink);
    EXPECT_EQ(sink.out, "\"a\", \"b\", \"c\", \"d\", ");
}
