/** @file Unit tests for util/bits.h word primitives. */
#include "util/bits.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace bits = jsonski::bits;

TEST(Bits, Popcount)
{
    EXPECT_EQ(bits::popcount(0), 0);
    EXPECT_EQ(bits::popcount(1), 1);
    EXPECT_EQ(bits::popcount(~uint64_t{0}), 64);
    EXPECT_EQ(bits::popcount(0xF0F0F0F0F0F0F0F0ULL), 32);
}

TEST(Bits, TrailingZeros)
{
    EXPECT_EQ(bits::trailingZeros(1), 0);
    EXPECT_EQ(bits::trailingZeros(uint64_t{1} << 63), 63);
    EXPECT_EQ(bits::trailingZeros(0b101000), 3);
}

TEST(Bits, LowestBit)
{
    EXPECT_EQ(bits::lowestBit(0), 0u);
    EXPECT_EQ(bits::lowestBit(0b1100), 0b100u);
    EXPECT_EQ(bits::lowestBit(uint64_t{1} << 63), uint64_t{1} << 63);
}

TEST(Bits, ClearLowest)
{
    EXPECT_EQ(bits::clearLowest(0), 0u);
    EXPECT_EQ(bits::clearLowest(0b1100), 0b1000u);
    EXPECT_EQ(bits::clearLowest(1), 0u);
}

TEST(Bits, MaskBelowLowest)
{
    EXPECT_EQ(bits::maskBelowLowest(0b1000), 0b111u);
    EXPECT_EQ(bits::maskBelowLowest(1), 0u);
    EXPECT_EQ(bits::maskBelowLowest(0), ~uint64_t{0});
}

TEST(Bits, MaskBelow)
{
    EXPECT_EQ(bits::maskBelow(0), 0u);
    EXPECT_EQ(bits::maskBelow(1), 1u);
    EXPECT_EQ(bits::maskBelow(8), 0xFFu);
    EXPECT_EQ(bits::maskBelow(64), ~uint64_t{0});
}

TEST(Bits, SelectBitSimple)
{
    //         bit:   76543210
    uint64_t x = 0b10110010;
    EXPECT_EQ(bits::selectBit(x, 1), 1);
    EXPECT_EQ(bits::selectBit(x, 2), 4);
    EXPECT_EQ(bits::selectBit(x, 3), 5);
    EXPECT_EQ(bits::selectBit(x, 4), 7);
}

TEST(Bits, SelectBitMatchesNaive)
{
    jsonski::Rng rng(42);
    for (int iter = 0; iter < 2000; ++iter) {
        uint64_t x = rng.next() & rng.next(); // sparse-ish
        int n = bits::popcount(x);
        if (n == 0)
            continue;
        int k = static_cast<int>(rng.below(static_cast<uint64_t>(n))) + 1;
        // Naive k-th set bit.
        uint64_t y = x;
        for (int i = 1; i < k; ++i)
            y &= y - 1;
        int expected = bits::trailingZeros(y);
        EXPECT_EQ(bits::selectBit(x, k), expected)
            << "x=" << std::hex << x << " k=" << std::dec << k;
    }
}

TEST(Bits, PrefixXorSimple)
{
    EXPECT_EQ(bits::prefixXor(0), 0u);
    // Single bit at i: everything from i upward flips.
    EXPECT_EQ(bits::prefixXor(uint64_t{1} << 3), ~uint64_t{0} << 3);
    // Two bits: a run between them (first inclusive, second exclusive).
    uint64_t quotes = (uint64_t{1} << 2) | (uint64_t{1} << 5);
    EXPECT_EQ(bits::prefixXor(quotes), uint64_t{0b011100});
}

TEST(Bits, PrefixXorMatchesNaive)
{
    jsonski::Rng rng(7);
    for (int iter = 0; iter < 2000; ++iter) {
        uint64_t x = rng.next();
        uint64_t expected = 0;
        bool parity = false;
        for (int i = 0; i < 64; ++i) {
            parity ^= ((x >> i) & 1) != 0;
            if (parity)
                expected |= uint64_t{1} << i;
        }
        EXPECT_EQ(bits::prefixXor(x), expected);
    }
}

TEST(Bits, BroadcastByte)
{
    EXPECT_EQ(bits::broadcastByte(0x00), 0u);
    EXPECT_EQ(bits::broadcastByte(0xAB), 0xABABABABABABABABULL);
}
