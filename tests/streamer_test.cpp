/** @file End-to-end tests for the JSONSki streaming query evaluator. */
#include "ski/streamer.h"

#include <gtest/gtest.h>

#include "path/parser.h"
#include "util/error.h"

using namespace jsonski::ski;
using jsonski::ParseError;
using jsonski::path::parse;

namespace {

/** Run a query collecting values. */
QueryResult
eval(std::string_view json, std::string_view path)
{
    return query(json, path, /*collect=*/true);
}

// The paper's Figure 1 tweet, lightly extended.
const char* kTweet = R"({
  "coordinates": [40.74118764, -73.9998279],
  "user": {"id": 6253282, "name": "jsonski"},
  "place": {
    "name": "Manhattan",
    "bounding_box": {
      "type": "Polygon",
      "pos": [[-74.026675, 40.683935], [-74.026675, 40.877483],
              [-73.910408, 40.877483], [-73.910408, 40.683935]]
    }
  }
})";

} // namespace

TEST(Streamer, PaperRunningExample)
{
    auto r = eval(kTweet, "$.place.name");
    ASSERT_EQ(r.count, 1u);
    EXPECT_EQ(r.values[0], "\"Manhattan\"");
}

TEST(Streamer, RootQueryMatchesWholeRecord)
{
    auto r = eval(R"({"a": 1})", "$");
    ASSERT_EQ(r.count, 1u);
    EXPECT_EQ(r.values[0], R"({"a": 1})");
}

TEST(Streamer, SimpleKeyMiss)
{
    auto r = eval(kTweet, "$.place.population");
    EXPECT_EQ(r.count, 0u);
}

TEST(Streamer, RootTypeMismatchYieldsNoMatches)
{
    EXPECT_EQ(eval("[1,2,3]", "$.a").count, 0u);
    EXPECT_EQ(eval(R"({"a":1})", "$[0]").count, 0u);
}

TEST(Streamer, NestedObjectValueOutput)
{
    auto r = eval(kTweet, "$.place.bounding_box.type");
    ASSERT_EQ(r.count, 1u);
    EXPECT_EQ(r.values[0], "\"Polygon\"");
}

TEST(Streamer, ObjectValuedMatchIsWholeObject)
{
    auto r = eval(kTweet, "$.user");
    ASSERT_EQ(r.count, 1u);
    EXPECT_EQ(r.values[0], R"({"id": 6253282, "name": "jsonski"})");
}

TEST(Streamer, ArrayWildcard)
{
    auto r = eval(R"([{"v":1},{"v":2},{"v":3}])", "$[*].v");
    ASSERT_EQ(r.count, 3u);
    EXPECT_EQ(r.values, (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Streamer, ArrayIndex)
{
    auto r = eval("[10,20,30,40]", "$[2]");
    ASSERT_EQ(r.count, 1u);
    EXPECT_EQ(r.values[0], "30");
}

TEST(Streamer, ArrayIndexOutOfBounds)
{
    EXPECT_EQ(eval("[10,20]", "$[5]").count, 0u);
}

TEST(Streamer, ArraySlice)
{
    auto r = eval("[0,1,2,3,4,5]", "$[2:4]");
    ASSERT_EQ(r.count, 2u);
    EXPECT_EQ(r.values, (std::vector<std::string>{"2", "3"}));
}

TEST(Streamer, SliceOnObjectElements)
{
    auto r = eval(R"([{"id":0},{"id":1},{"id":2},{"id":3}])", "$[1:3].id");
    ASSERT_EQ(r.count, 2u);
    EXPECT_EQ(r.values, (std::vector<std::string>{"1", "2"}));
}

TEST(Streamer, WildcardOverHeterogeneousArray)
{
    // Only object elements can contribute to `.v`.
    auto r = eval(R"([1,"s",{"v":7},[{"v":8}],{"v":9}])", "$[*].v");
    ASSERT_EQ(r.count, 2u);
    EXPECT_EQ(r.values, (std::vector<std::string>{"7", "9"}));
}

TEST(Streamer, NestedArraySteps)
{
    auto r = eval(R"({"dt":[[[1,2,3,4],[5,6,7,8]],[[9,10,11,12]]]})",
                  "$.dt[*][*][2:4]");
    ASSERT_EQ(r.count, 6u);
    EXPECT_EQ(r.values, (std::vector<std::string>{"3", "4", "7", "8", "11",
                                                  "12"}));
}

TEST(Streamer, TypeMismatchUnderKeyStep)
{
    // `place` exists but is not an object: no match, no error.
    auto r = eval(R"({"place": 42})", "$.place.name");
    EXPECT_EQ(r.count, 0u);
}

TEST(Streamer, FirstMatchingAttributeOnlyG4)
{
    // After `name` matches, the rest of the object is fast-forwarded;
    // duplicate names can't occur per the JSON spec assumption.
    std::string json = R"({"place": {"a":1, "name": "X", "tail": {"name":"Y"}}})";
    auto r = eval(json, "$.place.name");
    ASSERT_EQ(r.count, 1u);
    EXPECT_EQ(r.values[0], "\"X\"");
    // G4 must have skipped the tail.
    EXPECT_GT(r.stats.get(Group::G4), 0u);
}

TEST(Streamer, DecoyKeysInStrings)
{
    // Values that *contain* the queried key as text must not confuse
    // the matcher.
    std::string json =
        R"({"decoy": "\"name\": {", "place": {"name": "ok"}})";
    auto r = eval(json, "$.place.name");
    ASSERT_EQ(r.count, 1u);
    EXPECT_EQ(r.values[0], "\"ok\"");
}

TEST(Streamer, EmptyContainers)
{
    EXPECT_EQ(eval("{}", "$.a").count, 0u);
    EXPECT_EQ(eval("[]", "$[*]").count, 0u);
    EXPECT_EQ(eval(R"({"a":{}})", "$.a.b").count, 0u);
    EXPECT_EQ(eval(R"({"a":[]})", "$.a[*]").count, 0u);
}

TEST(Streamer, WildcardEmitsAllTypes)
{
    auto r = eval(R"([1, "two", null, {"k":3}, [4]])", "$[*]");
    ASSERT_EQ(r.count, 5u);
    EXPECT_EQ(r.values[0], "1");
    EXPECT_EQ(r.values[1], "\"two\"");
    EXPECT_EQ(r.values[2], "null");
    EXPECT_EQ(r.values[3], R"({"k":3})");
    EXPECT_EQ(r.values[4], "[4]");
}

TEST(Streamer, DeepQueryAcrossManySiblings)
{
    // Build an object with many irrelevant attributes before and after
    // the relevant one, nested a few levels.
    std::string json = R"({"x1":[1,2],"x2":{"y":0},"a":{"p":[7],"b":{)";
    for (int i = 0; i < 40; ++i)
        json += "\"f" + std::to_string(i) + "\":" + std::to_string(i) + ",";
    json += R"("c":[{"d":1},{"d":2},{"d":3}]}},"z":"tail")";
    json += "}";
    auto r = eval(json, "$.a.b.c[1].d");
    ASSERT_EQ(r.count, 1u);
    EXPECT_EQ(r.values[0], "2");
}

TEST(Streamer, FastForwardRatioHighWhenMatchComesEarly)
{
    // Needle first: G4 fast-forwards the rest of the object (the
    // paper's dominant case, e.g. NSPL1 at 99.99%).
    std::string json = "{\"needle\":\"found\"";
    for (int i = 0; i < 500; ++i)
        json += ",\"k" + std::to_string(i) + "\":{\"deep\":[1,2,3,4,5]}";
    json += "}";
    auto r = eval(json, "$.needle");
    ASSERT_EQ(r.count, 1u);
    EXPECT_GT(r.stats.overallRatio(json.size()), 0.98);
    EXPECT_GT(r.stats.ratio(Group::G4, json.size()), 0.95);
}

TEST(Streamer, FastForwardRatioWithLateNeedle)
{
    // Needle last and value type unknown: every key is examined but
    // every value is still skipped (G2); the ratio reflects only the
    // values.
    std::string json = "{";
    for (int i = 0; i < 500; ++i)
        json += "\"k" + std::to_string(i) + "\":{\"deep\":[1,2,3,4,5]},";
    json += "\"needle\":\"found\"}";
    auto r = eval(json, "$.needle");
    ASSERT_EQ(r.count, 1u);
    EXPECT_GT(r.stats.ratio(Group::G2, json.size()), 0.65);
}

TEST(Streamer, WhitespaceTolerant)
{
    std::string json =
        "  {  \"a\"  :  [  {  \"b\"  :  [ 1 ,  2 ]  }  ]  }  ";
    auto r = eval(json, "$.a[0].b[1]");
    ASSERT_EQ(r.count, 1u);
    EXPECT_EQ(r.values[0], "2");
}

TEST(Streamer, SliceBudgetStopsDescent)
{
    // Elements past the slice end must be fast-forwarded (G5), even if
    // they are of the matching type.
    std::string json = R"([{"v":0},{"v":1},{"v":2},{"v":3},{"v":4}])";
    auto r = eval(json, "$[1:2].v");
    ASSERT_EQ(r.count, 1u);
    EXPECT_EQ(r.values[0], "1");
    EXPECT_GT(r.stats.get(Group::G5), 0u);
}

TEST(Streamer, MalformedInputThrowsOnTraversedPath)
{
    EXPECT_THROW(eval(R"({"a": {"b": 1)", "$.a.b.c"), ParseError);
    EXPECT_THROW(eval("", "$.a"), ParseError);
}

TEST(Streamer, CountOnlyModeMatchesCollectMode)
{
    std::string json = R"([{"v":1},{"v":2},{"w":0},{"v":3}])";
    auto collected = query(json, "$[*].v", true);
    auto counted = query(json, "$[*].v", false);
    EXPECT_EQ(collected.count, counted.count);
    EXPECT_EQ(counted.count, 3u);
    EXPECT_TRUE(counted.values.empty());
}

TEST(Streamer, Utf8PayloadsPassThrough)
{
    std::string json = "{\"name\": \"M\xc3\xbcnchen \xe4\xb8\xad\"}";
    auto r = eval(json, "$.name");
    ASSERT_EQ(r.count, 1u);
    EXPECT_EQ(r.values[0], "\"M\xc3\xbcnchen \xe4\xb8\xad\"");
}

TEST(Streamer, LongStringsSpanningBlocks)
{
    std::string big(500, 'x');
    std::string json = R"({"pad": ")" + big + R"(", "k": 1})";
    auto r = eval(json, "$.k");
    ASSERT_EQ(r.count, 1u);
    EXPECT_EQ(r.values[0], "1");
}

TEST(Streamer, StatsAreWithinInputLength)
{
    auto r = eval(kTweet, "$.place.bounding_box.pos[1:3]");
    EXPECT_LE(r.stats.total(), std::string_view(kTweet).size());
}

TEST(Streamer, IndexIntoNestedArrays)
{
    auto r = eval(kTweet, "$.place.bounding_box.pos[2]");
    ASSERT_EQ(r.count, 1u);
    EXPECT_EQ(r.values[0], "[-73.910408, 40.877483]");
}
