/**
 * @file
 * Plan-cache tests: compile path, normalized-key hits, LRU eviction,
 * eviction survival via shared ownership, error paths, and the
 * deterministic counters under concurrent first access that the
 * service's `!stats` page reports.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "service/plan_cache.h"
#include "util/error.h"

using namespace jsonski;
using namespace jsonski::service;

namespace {

TEST(CompilePlan, SingleQueryUsesStreamer)
{
    auto plan = compilePlan("$.a[*].b");
    ASSERT_TRUE(plan->single.has_value());
    EXPECT_FALSE(plan->multi.has_value());
    EXPECT_EQ(plan->queryCount(), 1u);

    auto r = plan->single->run(R"({"a": [{"b": 1}, {"b": 2}]})");
    EXPECT_EQ(r.matches, 2u);
}

TEST(CompilePlan, MultiQueryUsesMultiStreamer)
{
    auto plan = compilePlan("$.a,$.b");
    EXPECT_FALSE(plan->single.has_value());
    ASSERT_TRUE(plan->multi.has_value());
    EXPECT_EQ(plan->queryCount(), 2u);

    auto r = plan->multi->run(R"({"a": 1, "b": 2})");
    ASSERT_EQ(r.matches.size(), 2u);
    EXPECT_EQ(r.matches[0], 1u);
    EXPECT_EQ(r.matches[1], 1u);
}

TEST(CompilePlan, BadQueryThrowsPathError)
{
    EXPECT_THROW(compilePlan("$.a["), PathError);
    EXPECT_THROW(compilePlan(""), PathError);
}

TEST(PlanCache, MissThenHit)
{
    PlanCache cache(8);
    bool hit = true;
    auto p1 = cache.get("$.a.b", &hit);
    EXPECT_FALSE(hit);
    auto p2 = cache.get("$.a.b", &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(p1.get(), p2.get()); // same compiled object
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, NormalizedSpellingsShareOneEntry)
{
    PlanCache cache(8);
    bool hit = false;
    auto p1 = cache.get("$.a, $.b", &hit);
    EXPECT_FALSE(hit);
    auto p2 = cache.get("$.a,$.b", &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(p1.get(), p2.get());
    EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, HitAvoidsReparsing)
{
    // A query text that compiled once but is syntactically invalid
    // cannot exist; instead prove the hit path never re-parses by
    // observing the identical Plan object across many lookups.
    PlanCache cache(8);
    auto first = cache.get("$..name");
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(cache.get("$..name").get(), first.get());
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 100u);
}

TEST(PlanCache, BadQueryIsNotCached)
{
    PlanCache cache(8);
    EXPECT_THROW(cache.get("$.a["), PathError);
    EXPECT_THROW(cache.get("$.a["), PathError); // throws again: no entry
    EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCache, EvictionKeepsCapacityBounded)
{
    // Capacity rounds up to one per shard; insert far more than that
    // and the resident count must stay at the rounded capacity while
    // the eviction counter accounts for every displaced plan.
    PlanCache cache(PlanCache::kShards);
    const size_t inserted = 64;
    for (size_t i = 0; i < inserted; ++i)
        cache.get("$.k" + std::to_string(i));
    EXPECT_LE(cache.size(), PlanCache::kShards);
    EXPECT_EQ(cache.evictions(), inserted - cache.size());
    EXPECT_EQ(cache.misses(), inserted);
}

TEST(PlanCache, EvictedPlanSurvivesViaSharedOwnership)
{
    PlanCache cache(PlanCache::kShards);
    std::shared_ptr<const Plan> held = cache.get("$.victim[*]");
    for (size_t i = 0; i < 64; ++i)
        cache.get("$.filler" + std::to_string(i));
    // Whether or not the entry is still resident, the handle works.
    auto r = held->single->run(R"({"victim": [1, 2, 3]})");
    EXPECT_EQ(r.matches, 3u);
}

TEST(PlanCache, LruKeepsHotEntryResident)
{
    // One shard => strict LRU order within it.  Re-touching a key keeps
    // it resident while colder keys are displaced around it.
    PlanCache cache(PlanCache::kShards); // one entry per shard
    cache.get("$.hot");
    uint64_t misses_after_insert = cache.misses();
    cache.get("$.hot");
    EXPECT_EQ(cache.misses(), misses_after_insert); // still resident
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(PlanCache, ConcurrentFirstAccessIsOneMiss)
{
    // The compile runs under the shard lock, so N racing lookups of a
    // fresh key are exactly 1 miss + N-1 hits — the acceptance
    // criterion that cache hits provably skip recompilation.
    PlanCache cache(64);
    constexpr int kThreads = 8;
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::shared_ptr<const Plan>> plans(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            ready.fetch_add(1);
            while (!go.load())
                std::this_thread::yield();
            plans[t] = cache.get("$.raced[*].key");
        });
    while (ready.load() < kThreads)
        std::this_thread::yield();
    go.store(true);
    for (auto& th : threads)
        th.join();

    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), static_cast<uint64_t>(kThreads - 1));
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(plans[t].get(), plans[0].get());
}

TEST(PlanCache, ConcurrentMixedWorkload)
{
    // Hammer a small cache from many threads with overlapping keys;
    // the invariant checks are internal (no crash, counters add up).
    PlanCache cache(PlanCache::kShards * 2);
    constexpr int kThreads = 8;
    constexpr int kIters = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                auto plan =
                    cache.get("$.q" + std::to_string((t + i) % 24));
                ASSERT_NE(plan, nullptr);
                ASSERT_TRUE(plan->single.has_value());
            }
        });
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(cache.hits() + cache.misses(),
              static_cast<uint64_t>(kThreads * kIters));
    EXPECT_LE(cache.size(), PlanCache::kShards * 2 + PlanCache::kShards);
}

} // namespace
