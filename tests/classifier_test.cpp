/** @file Tests for the 64-byte block classifier (SIMD vs scalar reference). */
#include "intervals/classifier.h"

#include <gtest/gtest.h>

#include <string>

#include "util/bits.h"
#include "util/rng.h"

using namespace jsonski::intervals;
namespace bits = jsonski::bits;

namespace {

/** Classify a whole string with the production classifier. */
std::vector<BlockBits>
classifyAll(const std::string& s)
{
    std::vector<BlockBits> out;
    ClassifierCarry carry;
    size_t pos = 0;
    while (pos < s.size()) {
        size_t remaining = s.size() - pos;
        if (remaining >= kBlockSize)
            out.push_back(classifyBlock(s.data() + pos, carry));
        else
            out.push_back(
                classifyPartialBlock(s.data() + pos, remaining, carry));
        pos += kBlockSize;
    }
    return out;
}

/** Classify a whole string with the scalar reference. */
std::vector<BlockBits>
classifyAllReference(const std::string& s)
{
    std::vector<BlockBits> out;
    ClassifierCarry carry;
    size_t pos = 0;
    while (pos < s.size()) {
        size_t remaining = std::min(s.size() - pos, kBlockSize);
        out.push_back(
            classifyBlockReference(s.data() + pos, remaining, carry));
        pos += kBlockSize;
    }
    return out;
}

void
expectSame(const std::string& s)
{
    auto a = classifyAll(s);
    auto b = classifyAllReference(s);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].in_string, b[i].in_string) << "block " << i;
        EXPECT_EQ(a[i].quote, b[i].quote) << "block " << i;
        EXPECT_EQ(a[i].open_brace, b[i].open_brace) << "block " << i;
        EXPECT_EQ(a[i].close_brace, b[i].close_brace) << "block " << i;
        EXPECT_EQ(a[i].open_bracket, b[i].open_bracket) << "block " << i;
        EXPECT_EQ(a[i].close_bracket, b[i].close_bracket) << "block " << i;
        EXPECT_EQ(a[i].colon, b[i].colon) << "block " << i;
        EXPECT_EQ(a[i].comma, b[i].comma) << "block " << i;
        EXPECT_EQ(a[i].whitespace, b[i].whitespace) << "block " << i;
    }
}

uint64_t
bitAt(uint64_t bm, size_t i)
{
    return (bm >> i) & 1;
}

} // namespace

TEST(Classifier, SimpleObject)
{
    std::string s = R"({"a": 1, "b": [2, 3]})";
    s.resize(kBlockSize, ' ');
    ClassifierCarry carry;
    BlockBits b = classifyBlock(s.data(), carry);
    EXPECT_EQ(bitAt(b.open_brace, 0), 1u);
    EXPECT_EQ(bitAt(b.colon, 4), 1u);   // after "a"
    EXPECT_EQ(bitAt(b.comma, 7), 1u);   // after 1
    EXPECT_EQ(bitAt(b.open_bracket, 14), 1u);
    EXPECT_EQ(bitAt(b.close_bracket, 19), 1u);
    EXPECT_EQ(bitAt(b.close_brace, 20), 1u);
    EXPECT_EQ(carry.prev_in_string, 0u);
}

TEST(Classifier, MetacharsInsideStringsAreMasked)
{
    std::string s = R"({"a{b}[c]:,": 1})";
    s.resize(kBlockSize, ' ');
    ClassifierCarry carry;
    BlockBits b = classifyBlock(s.data(), carry);
    // The only structural metachars are the outer braces, one colon,
    // and no commas/brackets.
    EXPECT_EQ(bits::popcount(b.open_brace), 1);
    EXPECT_EQ(bits::popcount(b.close_brace), 1);
    EXPECT_EQ(bits::popcount(b.open_bracket), 0);
    EXPECT_EQ(bits::popcount(b.close_bracket), 0);
    EXPECT_EQ(bits::popcount(b.colon), 1);
    EXPECT_EQ(bits::popcount(b.comma), 0);
}

TEST(Classifier, EscapedQuoteDoesNotEndString)
{
    std::string s = R"({"a\"}": 1})";
    s.resize(kBlockSize, ' ');
    ClassifierCarry carry;
    BlockBits b = classifyBlock(s.data(), carry);
    // The '}' inside the name "a\"}" must be masked.
    EXPECT_EQ(bits::popcount(b.close_brace), 1);
    EXPECT_EQ(bitAt(b.close_brace, 10), 1u);
}

TEST(Classifier, DoubleBackslashEndsEscape)
{
    std::string s = R"({"a\\": 1})";
    s.resize(kBlockSize, ' ');
    ClassifierCarry carry;
    BlockBits b = classifyBlock(s.data(), carry);
    // The quote after the double backslash closes the string.
    EXPECT_EQ(bits::popcount(b.quote), 2);
    EXPECT_EQ(bits::popcount(b.colon), 1);
}

TEST(Classifier, InStringCarryAcrossBlocks)
{
    // A string that starts in block 0 and closes in block 1.
    std::string s = "{\"k\": \"" + std::string(70, 'x') + "\", \"m\": 1}";
    auto blocks = classifyAll(s);
    ASSERT_GE(blocks.size(), 2u);
    // Block 1 starts inside the string; the ',' after the close quote
    // is structural, while any ',' earlier would be masked.
    expectSame(s);
}

TEST(Classifier, BackslashRunAcrossBlockBoundary)
{
    // Force an odd backslash run ending exactly at the block boundary.
    std::string s = "{\"k\": \"" + std::string(56, 'y');
    s += '\\';      // byte 63: escapes byte 64 (the quote below)
    s += "\" more\", \"m\": [1]}";
    expectSame(s);
}

TEST(Classifier, PartialBlockPadsAsWhitespace)
{
    std::string s = R"({"a":1})";
    ClassifierCarry carry;
    BlockBits b = classifyPartialBlock(s.data(), s.size(), carry);
    for (size_t i = s.size(); i < kBlockSize; ++i)
        EXPECT_EQ(bitAt(b.whitespace, i), 1u) << i;
    EXPECT_EQ(bitAt(b.close_brace, 6), 1u);
}

TEST(Classifier, RandomJsonLikeDifferential)
{
    jsonski::Rng rng(1234);
    static constexpr char chars[] =
        "{}[]:,\"\\ \tabc012\n\r.-xyzKLM";
    for (int iter = 0; iter < 300; ++iter) {
        size_t len = 1 + rng.below(300);
        std::string s;
        for (size_t i = 0; i < len; ++i)
            s += chars[rng.below(sizeof(chars) - 1)];
        expectSame(s);
    }
}

TEST(Classifier, QuoteHeavyDifferential)
{
    jsonski::Rng rng(99);
    // Stress strings and escapes specifically.
    static constexpr char chars[] = "\"\\a{,}";
    for (int iter = 0; iter < 300; ++iter) {
        size_t len = 1 + rng.below(260);
        std::string s;
        for (size_t i = 0; i < len; ++i)
            s += chars[rng.below(sizeof(chars) - 1)];
        expectSame(s);
    }
}

TEST(Classifier, ReportsSimdMode)
{
    // Just ensure the introspection function links and runs.
    (void)classifierUsesSimd();
    SUCCEED();
}

TEST(Classifier, BackslashRunParityAtBlock63)
{
    // Regression: a backslash run ending exactly at byte 63 must carry
    // its parity into block 1 — an odd run escapes the quote at byte
    // 64, an even run does not.  The probe is the ',' at byte 65:
    // structural only when the quote closed the string.
    for (size_t run = 1; run <= 8; ++run) {
        std::string s = "{\"k\": \"";
        s += std::string(64 - run - s.size(), 'y');
        s += std::string(run, '\\');
        ASSERT_EQ(s.size(), 64u);
        s += '"';
        s += ',';
        if (run % 2) {
            s += " z\", \"m\": 1}"; // quote was escaped; close later
        } else {
            s += " \"m\": 1}"; // quote closed the value string
        }
        expectSame(s);
        auto blocks = classifyAll(s);
        ASSERT_GE(blocks.size(), 2u);
        EXPECT_EQ(bitAt(blocks[1].comma, 1), run % 2 ? 0u : 1u)
            << "run of " << run;
    }
}

TEST(Classifier, BackslashesFillingWholeBlocks)
{
    // Escape runs longer than a block: both full-block carries (the
    // run covers all of block 1) and the parity at its end must agree
    // with the scalar reference.
    for (size_t run = 63; run <= 130; ++run) {
        std::string s = "{\"k\": \"";
        s += std::string(run, '\\');
        if (run % 2)
            s += '\\'; // keep the escape count even => string can close
        s += "\", \"m\": [1, 2]}";
        expectSame(s);
    }
}
