/** @file Tests for the multi-query streamer. */
#include "ski/multi.h"

#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "path/parser.h"
#include "ski/streamer.h"
#include "util/rng.h"

using namespace jsonski::ski;
using jsonski::path::PathQuery;
using jsonski::path::parse;

namespace {

MultiStreamer
make(std::initializer_list<const char*> queries)
{
    std::vector<PathQuery> qs;
    for (const char* q : queries)
        qs.push_back(parse(q));
    return MultiStreamer(std::move(qs));
}

const char* kDoc = R"({
  "user": {"id": 7, "name": "ann"},
  "place": {"name": "Manhattan", "tags": ["a", "b", "c"]},
  "stats": {"views": 10, "likes": [1, 2, 3, 4, 5]}
})";

} // namespace

TEST(MultiStreamer, TwoDisjointQueries)
{
    MultiStreamer ms = make({"$.user.id", "$.place.name"});
    MultiCollectSink sink(2);
    auto r = ms.run(kDoc, &sink);
    EXPECT_EQ(r.matches, (std::vector<size_t>{1, 1}));
    EXPECT_EQ(sink.values[0], (std::vector<std::string>{"7"}));
    EXPECT_EQ(sink.values[1], (std::vector<std::string>{"\"Manhattan\""}));
}

TEST(MultiStreamer, SharedPrefix)
{
    MultiStreamer ms = make({"$.place.name", "$.place.tags[*]"});
    MultiCollectSink sink(2);
    auto r = ms.run(kDoc, &sink);
    EXPECT_EQ(r.matches, (std::vector<size_t>{1, 3}));
    EXPECT_EQ(sink.values[1],
              (std::vector<std::string>{"\"a\"", "\"b\"", "\"c\""}));
}

TEST(MultiStreamer, PrefixQueryAlsoAccepts)
{
    // $.place accepts a value that $.place.name descends into: both
    // must fire.
    MultiStreamer ms = make({"$.place", "$.place.name"});
    MultiCollectSink sink(2);
    auto r = ms.run(kDoc, &sink);
    EXPECT_EQ(r.matches, (std::vector<size_t>{1, 1}));
    EXPECT_EQ(sink.values[1][0], "\"Manhattan\"");
    // The container match spans the whole object.
    EXPECT_EQ(sink.values[0][0].front(), '{');
    EXPECT_NE(sink.values[0][0].find("Manhattan"), std::string::npos);
}

TEST(MultiStreamer, OverlappingArrayRanges)
{
    MultiStreamer ms =
        make({"$.stats.likes[1:3]", "$.stats.likes[2:5]",
              "$.stats.likes[*]"});
    MultiCollectSink sink(3);
    auto r = ms.run(kDoc, &sink);
    EXPECT_EQ(r.matches, (std::vector<size_t>{2, 3, 5}));
    EXPECT_EQ(sink.values[0], (std::vector<std::string>{"2", "3"}));
    EXPECT_EQ(sink.values[1], (std::vector<std::string>{"3", "4", "5"}));
}

TEST(MultiStreamer, DuplicateQueries)
{
    // Duplicates collapse into one distinct query with one match
    // stream; both input positions map onto distinct id 0.
    MultiStreamer ms = make({"$.user.id", "$.user.id"});
    EXPECT_EQ(ms.queryCount(), 1u);
    EXPECT_EQ(ms.querySet().id_of, (std::vector<size_t>{0, 0}));
    EXPECT_EQ(ms.querySet().representatives(),
              (std::vector<size_t>{0}));
    auto r = ms.run(kDoc);
    EXPECT_EQ(r.matches, (std::vector<size_t>{1}));
}

TEST(MultiStreamer, MatchesSingleQueryRuns)
{
    // Every multi result must equal the corresponding single-query run.
    const char* queries[] = {"$.user.id", "$.user.name", "$.place.name",
                             "$.place.tags[0]", "$.stats.likes[2:4]",
                             "$.missing.deep[1]"};
    std::vector<PathQuery> qs;
    for (const char* q : queries)
        qs.push_back(parse(q));
    MultiStreamer ms(qs);
    MultiCollectSink sink(qs.size());
    auto r = ms.run(kDoc, &sink);
    for (size_t i = 0; i < qs.size(); ++i) {
        Streamer single(qs[i]);
        CollectSink ss;
        auto sr = single.run(kDoc, &ss);
        EXPECT_EQ(r.matches[i], sr.matches) << queries[i];
        EXPECT_EQ(sink.values[i], ss.values) << queries[i];
    }
}

TEST(MultiStreamer, AgreesOnGeneratedDatasets)
{
    using jsonski::gen::DatasetId;
    struct Case
    {
        DatasetId id;
        std::initializer_list<const char*> queries;
    };
    const Case cases[] = {
        {DatasetId::TT, {"$[*].en.urls[*].url", "$[*].text"}},
        {DatasetId::BB, {"$.pd[*].cp[1:3].id", "$.pd[*].vc[*].cha"}},
        {DatasetId::WM, {"$.it[*].bmrpr.pr", "$.it[*].nm"}},
    };
    for (const Case& c : cases) {
        std::string json = jsonski::gen::generateLarge(c.id, 512 * 1024);
        std::vector<PathQuery> qs;
        for (const char* q : c.queries)
            qs.push_back(parse(q));
        MultiStreamer ms(qs);
        auto r = ms.run(json);
        for (size_t i = 0; i < qs.size(); ++i) {
            Streamer single(qs[i]);
            EXPECT_EQ(r.matches[i], single.run(json).matches)
                << static_cast<int>(c.id) << " query " << i;
        }
    }
}

TEST(MultiStreamer, FastForwardStillHigh)
{
    std::string json =
        jsonski::gen::generateLarge(jsonski::gen::DatasetId::WM,
                                    512 * 1024);
    MultiStreamer ms = make({"$.it[*].nm", "$.it[*].bmrpr.pr"});
    auto r = ms.run(json);
    EXPECT_GT(r.stats.overallRatio(json.size()), 0.6);
}

TEST(MultiStreamer, G4GeneralizesToAllCandidates)
{
    // Both keys live early in the object; the tail must be skipped.
    std::string json = R"({"a":1,"b":2,)";
    for (int i = 0; i < 200; ++i)
        json += "\"f" + std::to_string(i) + "\":[1,2,3],";
    json += "\"z\":0}";
    MultiStreamer ms = make({"$.a", "$.b"});
    auto r = ms.run(json);
    EXPECT_EQ(r.matches, (std::vector<size_t>{1, 1}));
    EXPECT_GT(r.stats.get(Group::G4), json.size() / 2);
}
