/** @file Tests for the JSONPath parser. */
#include "path/parser.h"

#include <gtest/gtest.h>

#include "util/error.h"

using namespace jsonski::path;
using jsonski::PathError;

TEST(PathParser, RootOnly)
{
    PathQuery q = parse("$");
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.toString(), "$");
}

TEST(PathParser, DotChildren)
{
    PathQuery q = parse("$.place.name");
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0], PathStep::makeKey("place"));
    EXPECT_EQ(q[1], PathStep::makeKey("name"));
}

TEST(PathParser, QuotedChild)
{
    PathQuery q = parse("$['bounding_box'].type");
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0], PathStep::makeKey("bounding_box"));
    EXPECT_EQ(q[1], PathStep::makeKey("type"));
}

TEST(PathParser, Index)
{
    PathQuery q = parse("$.a[3]");
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[1], PathStep::makeIndex(3));
    EXPECT_TRUE(q[1].coversIndex(3));
    EXPECT_FALSE(q[1].coversIndex(2));
    EXPECT_FALSE(q[1].coversIndex(4));
}

TEST(PathParser, Slice)
{
    PathQuery q = parse("$.cp[1:3].id");
    ASSERT_EQ(q.size(), 3u);
    EXPECT_EQ(q[1], PathStep::makeSlice(1, 3));
    EXPECT_FALSE(q[1].coversIndex(0));
    EXPECT_TRUE(q[1].coversIndex(1));
    EXPECT_TRUE(q[1].coversIndex(2));
    EXPECT_FALSE(q[1].coversIndex(3));
}

TEST(PathParser, Wildcard)
{
    PathQuery q = parse("$[*].text");
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0].kind, PathStep::Kind::Wildcard);
    EXPECT_TRUE(q[0].coversIndex(0));
    EXPECT_TRUE(q[0].coversIndex(1u << 30));
}

TEST(PathParser, PaperQueries)
{
    // All twelve Table 5 query shapes must parse.
    const char* queries[] = {
        "$[*].en.urls[*].url", "$[*].text",
        "$.pd[*].cp[1:3].id",  "$.pd[*].vc[*].cha",
        "$[*].rt[*].lg[*].st[*].dt.tx", "$[*].atm",
        "$.mt.vw.co[*].nm",    "$.dt[*][*][2:4]",
        "$.it[*].bmrpr.pr",    "$.it[*].nm",
        "$[*].cl.P150[*].ms.pty", "$[10:21].cl.P150[*].ms.pty",
    };
    for (const char* s : queries) {
        PathQuery q = parse(s);
        EXPECT_EQ(q.toString(), s);
    }
}

TEST(PathParser, TypeInference)
{
    PathQuery q = parse("$.pd[*].cp[1:3].id");
    // pd selects an array (next step [*]), [*] selects objects (.cp),
    // cp selects an array ([1:3]), [1:3] selects objects (.id), id: Any.
    EXPECT_EQ(q.expectedTypeAfter(0), ExpectedType::Array);
    EXPECT_EQ(q.expectedTypeAfter(1), ExpectedType::Object);
    EXPECT_EQ(q.expectedTypeAfter(2), ExpectedType::Array);
    EXPECT_EQ(q.expectedTypeAfter(3), ExpectedType::Object);
    EXPECT_EQ(q.expectedTypeAfter(4), ExpectedType::Any);
}

TEST(PathParser, Errors)
{
    EXPECT_THROW(parse(""), PathError);
    EXPECT_THROW(parse("place.name"), PathError);
    EXPECT_THROW(parse("$..name.more"), PathError); // '..' must be last
    EXPECT_THROW(parse("$."), PathError);
    EXPECT_THROW(parse("$["), PathError);
    EXPECT_THROW(parse("$[abc]"), PathError);
    EXPECT_THROW(parse("$[1:"), PathError);
    EXPECT_THROW(parse("$[3:1]"), PathError);
    EXPECT_THROW(parse("$[2:2]"), PathError);
    EXPECT_THROW(parse("$['unterminated]"), PathError);
    EXPECT_THROW(parse("$[*"), PathError);
    EXPECT_THROW(parse("$x"), PathError);
}

TEST(PathParser, RootSlice)
{
    PathQuery q = parse("$[10:21].cl");
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0], PathStep::makeSlice(10, 21));
}
