/** @file Tests for the JSONPath parser. */
#include "path/parser.h"

#include <gtest/gtest.h>

#include "util/error.h"

using namespace jsonski::path;
using jsonski::PathError;

TEST(PathParser, RootOnly)
{
    PathQuery q = parse("$");
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.toString(), "$");
}

TEST(PathParser, DotChildren)
{
    PathQuery q = parse("$.place.name");
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0], PathStep::makeKey("place"));
    EXPECT_EQ(q[1], PathStep::makeKey("name"));
}

TEST(PathParser, QuotedChild)
{
    PathQuery q = parse("$['bounding_box'].type");
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0], PathStep::makeKey("bounding_box"));
    EXPECT_EQ(q[1], PathStep::makeKey("type"));
}

TEST(PathParser, Index)
{
    PathQuery q = parse("$.a[3]");
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[1], PathStep::makeIndex(3));
    EXPECT_TRUE(q[1].coversIndex(3));
    EXPECT_FALSE(q[1].coversIndex(2));
    EXPECT_FALSE(q[1].coversIndex(4));
}

TEST(PathParser, Slice)
{
    PathQuery q = parse("$.cp[1:3].id");
    ASSERT_EQ(q.size(), 3u);
    EXPECT_EQ(q[1], PathStep::makeSlice(1, 3));
    EXPECT_FALSE(q[1].coversIndex(0));
    EXPECT_TRUE(q[1].coversIndex(1));
    EXPECT_TRUE(q[1].coversIndex(2));
    EXPECT_FALSE(q[1].coversIndex(3));
}

TEST(PathParser, Wildcard)
{
    PathQuery q = parse("$[*].text");
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0].kind, PathStep::Kind::Wildcard);
    EXPECT_TRUE(q[0].coversIndex(0));
    EXPECT_TRUE(q[0].coversIndex(1u << 30));
}

TEST(PathParser, PaperQueries)
{
    // All twelve Table 5 query shapes must parse.
    const char* queries[] = {
        "$[*].en.urls[*].url", "$[*].text",
        "$.pd[*].cp[1:3].id",  "$.pd[*].vc[*].cha",
        "$[*].rt[*].lg[*].st[*].dt.tx", "$[*].atm",
        "$.mt.vw.co[*].nm",    "$.dt[*][*][2:4]",
        "$.it[*].bmrpr.pr",    "$.it[*].nm",
        "$[*].cl.P150[*].ms.pty", "$[10:21].cl.P150[*].ms.pty",
    };
    for (const char* s : queries) {
        PathQuery q = parse(s);
        EXPECT_EQ(q.toString(), s);
    }
}

TEST(PathParser, TypeInference)
{
    PathQuery q = parse("$.pd[*].cp[1:3].id");
    // pd selects an array (next step [*]), [*] selects objects (.cp),
    // cp selects an array ([1:3]), [1:3] selects objects (.id), id: Any.
    EXPECT_EQ(q.expectedTypeAfter(0), ExpectedType::Array);
    EXPECT_EQ(q.expectedTypeAfter(1), ExpectedType::Object);
    EXPECT_EQ(q.expectedTypeAfter(2), ExpectedType::Array);
    EXPECT_EQ(q.expectedTypeAfter(3), ExpectedType::Object);
    EXPECT_EQ(q.expectedTypeAfter(4), ExpectedType::Any);
}

TEST(PathParser, Errors)
{
    EXPECT_THROW(parse(""), PathError);
    EXPECT_THROW(parse("place.name"), PathError);
    EXPECT_NO_THROW(parse("$..name.more")); // interior '..' is legal now
    EXPECT_THROW(parse("$."), PathError);
    EXPECT_THROW(parse("$["), PathError);
    EXPECT_THROW(parse("$[abc]"), PathError);
    EXPECT_THROW(parse("$[1:"), PathError);
    EXPECT_THROW(parse("$[3:1]"), PathError);
    EXPECT_THROW(parse("$[2:2]"), PathError);
    EXPECT_THROW(parse("$['unterminated]"), PathError);
    EXPECT_THROW(parse("$[*"), PathError);
    EXPECT_THROW(parse("$x"), PathError);
}

TEST(PathParser, FilterGrammar)
{
    PathQuery q = parse("$.rows[?(@.v < 10)].id");
    ASSERT_EQ(q.size(), 3u);
    EXPECT_EQ(q[1].kind, PathStep::Kind::Filter);
    EXPECT_EQ(q[1].key, "v");
    EXPECT_EQ(q[1].op, FilterOp::Lt);
    EXPECT_EQ(q[1].literal, FilterLiteral::makeNumber(10));
    EXPECT_TRUE(q.hasFilter());
    // Canonical form strips interior whitespace.
    EXPECT_EQ(q.toString(), "$.rows[?(@.v<10)].id");

    EXPECT_EQ(parse("$[?(@.a)]")[0].op, FilterOp::Exists);
    EXPECT_EQ(parse("$[?(@.a==1)]")[0].op, FilterOp::Eq);
    EXPECT_EQ(parse("$[?(@.a!=1)]")[0].op, FilterOp::Ne);
    EXPECT_EQ(parse("$[?(@.a<=1)]")[0].op, FilterOp::Le);
    EXPECT_EQ(parse("$[?(@.a>1)]")[0].op, FilterOp::Gt);
    EXPECT_EQ(parse("$[?(@.a>=1)]")[0].op, FilterOp::Ge);

    EXPECT_EQ(parse("$[?(@.a=='x')]")[0].literal,
              FilterLiteral::makeString("x"));
    EXPECT_EQ(parse("$[?(@.a==\"x\")]")[0].literal,
              FilterLiteral::makeString("x"));
    EXPECT_EQ(parse("$[?(@.a==true)]")[0].literal,
              FilterLiteral::makeBool(true));
    EXPECT_EQ(parse("$[?(@.a==false)]")[0].literal,
              FilterLiteral::makeBool(false));
    EXPECT_EQ(parse("$[?(@.a==null)]")[0].literal,
              FilterLiteral::makeNull());
    EXPECT_EQ(parse("$[?(@.a==-2.5e2)]")[0].literal,
              FilterLiteral::makeNumber(-250));

    // Quoted predicate field, escapes decoded.
    PathStep f = parse("$[?(@['odd key']=='a\\'b')]")[0];
    EXPECT_EQ(f.key, "odd key");
    EXPECT_EQ(f.literal, FilterLiteral::makeString("a'b"));

    // Filters compose with every other step kind.
    EXPECT_NO_THROW(parse("$..a[?(@.b > 3)]"));
    EXPECT_NO_THROW(parse("$[?(@.a)][?(@.b)]"));
    EXPECT_NO_THROW(parse("$.a[?(@.b=='x')]..c"));
}

TEST(PathParser, FilterErrorsCarryPositions)
{
    // Each rejection names the byte offset of the offending character.
    auto position_of = [](const char* text) {
        try {
            parse(text);
        } catch (const PathError& e) {
            return e.position();
        }
        return PathError::kNoPosition;
    };
    EXPECT_EQ(position_of("$[?(@.]"), 6u);           // empty field
    EXPECT_EQ(position_of("$[?(@.a=='x)]"), 9u);     // unterminated lit
    EXPECT_EQ(position_of("$[?(@.a==1==2)]"), 10u);  // chained ops
    EXPECT_EQ(position_of("$[?(@.a=1)]"), 7u);       // single '='
    EXPECT_EQ(position_of("$[?(@.a==zz)]"), 9u);     // bad literal
    EXPECT_EQ(position_of("$[?(a==1)]"), 4u);        // missing '@'
    EXPECT_EQ(position_of("$[?(@.a==1)"), 11u);      // missing ']'
    EXPECT_EQ(position_of("$['unterminated]"), 2u);  // open quote
    EXPECT_EQ(position_of("$[?(@.a=='\\q')]"), 11u); // unknown escape
}

TEST(PathParser, RoundTripIsCanonicalAndIdempotent)
{
    // parse -> toString -> parse must reproduce the same steps, and
    // toString must be a fixed point: the plan cache keys on this
    // normal form, so equality here is cache-hit equality.
    const char* queries[] = {
        "$",
        "$.place.name",
        "$['bounding_box'].type",
        "$.cp[1:3].id",
        "$[*].text",
        "$[0]",
        "$..id",
        "$..a.b",
        "$..a[2].b",
        "$..a..b",
        "$..['odd key']",
        "$.rows[?(@.v<10)].id",
        "$[?(@.a)]",
        "$[?(@.a=='x')]",
        "$[?(@.a!=null)]",
        "$[?(@.a>=2.5)]",
        "$[?(@['odd key']==true)]",
        "$..a[?(@.b>3)]",
        "$.a[?(@.b=='x')]..c",
        "$[?(@.n==-250)]",
    };
    for (const char* text : queries) {
        PathQuery q = parse(text);
        std::string canon = q.toString();
        PathQuery again = parse(canon);
        EXPECT_EQ(again, q) << text;
        EXPECT_EQ(again.toString(), canon) << text;
    }
    // Non-canonical spellings normalize to one plan-cache key.
    EXPECT_EQ(parse("$[?( @.v < 10 )]").toString(), "$[?(@.v<10)]");
    EXPECT_EQ(parse("$[?(@['v']<10)]").toString(), "$[?(@.v<10)]");
    EXPECT_EQ(parse("$[?(@.v<1e1)]").toString(), "$[?(@.v<10)]");
    EXPECT_EQ(parse("$[?(@.s==\"x\")]").toString(), "$[?(@.s=='x')]");
    EXPECT_EQ(parse("$['plain']").toString(), "$.plain");
    EXPECT_EQ(parse("$..['plain']").toString(), "$..plain");
}

TEST(PathParser, RootSlice)
{
    PathQuery q = parse("$[10:21].cl");
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0], PathStep::makeSlice(10, 21));
}
