/** @file Tests for scalar JSON text helpers. */
#include "json/text.h"

#include <gtest/gtest.h>

#include "util/error.h"

using namespace jsonski::json;
using jsonski::ParseError;

TEST(Text, SkipWhitespace)
{
    EXPECT_EQ(skipWhitespace("  \t\n x", 0), 5u);
    EXPECT_EQ(skipWhitespace("x", 0), 0u);
    EXPECT_EQ(skipWhitespace("   ", 0), 3u);
    EXPECT_EQ(skipWhitespace("ab  cd", 2), 4u);
}

TEST(Text, ScanStringSimple)
{
    std::string s = R"("hello" rest)";
    EXPECT_EQ(scanString(s, 0), 7u);
}

TEST(Text, ScanStringWithEscapes)
{
    std::string s = R"("a\"b\\" tail)";
    EXPECT_EQ(scanString(s, 0), 8u);
}

TEST(Text, ScanStringUnterminated)
{
    EXPECT_EQ(scanString(R"("abc)", 0), std::string_view::npos);
    EXPECT_EQ(scanString(R"("abc\")", 0), std::string_view::npos);
}

TEST(Text, ScanPrimitiveNumber)
{
    std::string s = "-12.5e3, next";
    EXPECT_EQ(scanPrimitive(s, 0), 7u);
}

TEST(Text, ScanPrimitiveLiteralBeforeBrace)
{
    std::string s = "true}";
    EXPECT_EQ(scanPrimitive(s, 0), 4u);
}

TEST(Text, EscapeRoundTrip)
{
    std::string raw = "line1\nline2\t\"quoted\" \\slash";
    std::string escaped = escapeString(raw);
    EXPECT_EQ(unescapeString(escaped), raw);
}

TEST(Text, EscapeControlCharacters)
{
    std::string raw;
    raw += '\x01';
    EXPECT_EQ(escapeString(raw), "\\u0001");
}

TEST(Text, UnescapeUnicodeBasic)
{
    EXPECT_EQ(unescapeString("\\u0041"), "A");
    EXPECT_EQ(unescapeString("\\u00e9"), "\xc3\xa9");     // é
    EXPECT_EQ(unescapeString("\\u4e2d"), "\xe4\xb8\xad"); // 中
}

TEST(Text, UnescapeSurrogatePair)
{
    // U+1F600 GRINNING FACE
    EXPECT_EQ(unescapeString("\\ud83d\\ude00"), "\xf0\x9f\x98\x80");
}

TEST(Text, UnescapeErrors)
{
    EXPECT_THROW(unescapeString("\\"), ParseError);
    EXPECT_THROW(unescapeString("\\q"), ParseError);
    EXPECT_THROW(unescapeString("\\u12"), ParseError);
    EXPECT_THROW(unescapeString("\\u12zz"), ParseError);
    EXPECT_THROW(unescapeString("\\ud800x"), ParseError);  // unpaired high
    EXPECT_THROW(unescapeString("\\udc00"), ParseError);   // unpaired low
}

TEST(Text, IsWhitespace)
{
    EXPECT_TRUE(isWhitespace(' '));
    EXPECT_TRUE(isWhitespace('\t'));
    EXPECT_TRUE(isWhitespace('\n'));
    EXPECT_TRUE(isWhitespace('\r'));
    EXPECT_FALSE(isWhitespace('a'));
    EXPECT_FALSE(isWhitespace('\0'));
}
