/**
 * @file
 * Warm-path equivalence: Streamer::runIndexed with a semi-index built
 * from the document must be *observationally identical* to plain
 * Streamer::run — same match values byte for byte, same match counts,
 * and on malformed input the same ErrorCode at the same position —
 * across the differential corpus, the default query mix, a ladder of
 * chunk sizes, and every runnable SIMD kernel.  (FastForwardStats may
 * differ: the index changes how bytes are skipped, not what matches.)
 *
 * Invalidation contract: an index that no longer describes the
 * document (edited or truncated bytes) is detected by describes() and
 * the caller streams — with results identical to never having had an
 * index; a deliberately foreign index fails closed with
 * ErrorCode::IndexMismatch, never with silently wrong output.
 */
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "index/structural_index.h"
#include "intervals/chunk_source.h"
#include "kernels/kernel.h"
#include "path/matches.h"
#include "path/parser.h"
#include "ski/streamer.h"
#include "testing/differential.h"
#include "testing/mutator.h"
#include "util/error.h"

using jsonski::ErrorCode;
using jsonski::errorCodeName;
using jsonski::ParseError;
using jsonski::index::StructuralIndex;
using jsonski::path::CollectSink;
using jsonski::ski::Streamer;
using jsonski::testing::defaultCorpus;
using jsonski::testing::defaultQueries;
using jsonski::testing::StructuredMutator;
namespace path = jsonski::path;
namespace ski = jsonski::ski;
namespace kernels = jsonski::kernels;
namespace intervals = jsonski::intervals;

namespace {

/** Everything observable from one pass. */
struct Observed
{
    bool threw = false;
    ErrorCode code = ErrorCode::Unspecified;
    size_t position = 0;
    size_t matches = 0;
    std::vector<std::string> values;

    bool
    operator==(const Observed& o) const
    {
        return threw == o.threw && code == o.code &&
               position == o.position && matches == o.matches &&
               values == o.values;
    }
};

Observed
observe(const std::function<ski::StreamResult(CollectSink*)>& pass)
{
    Observed out;
    CollectSink sink;
    try {
        ski::StreamResult r = pass(&sink);
        out.matches = r.matches;
    } catch (const ParseError& e) {
        out.threw = true;
        out.code = e.code();
        out.position = e.position();
    }
    out.values = std::move(sink.values);
    return out;
}

Observed
runPlain(const std::string& doc, const path::PathQuery& q)
{
    Streamer s(q);
    return observe([&](CollectSink* sink) { return s.run(doc, sink); });
}

Observed
runWarm(const std::string& doc, const path::PathQuery& q,
        const StructuralIndex& ix)
{
    Streamer s(q);
    return observe(
        [&](CollectSink* sink) { return s.runIndexed(doc, ix, sink); });
}

Observed
runWarmChunked(const std::string& doc, const path::PathQuery& q,
               const StructuralIndex& ix, size_t chunk_bytes)
{
    Streamer s(q);
    return observe([&](CollectSink* sink) {
        intervals::ViewSource src(doc);
        return s.runIndexed(src, ix, sink, chunk_bytes);
    });
}

std::string
describe(const Observed& o)
{
    if (o.threw)
        return std::string("throw ") + std::string(errorCodeName(o.code)) +
               "@" + std::to_string(o.position);
    return std::to_string(o.matches) + " matches";
}

const std::vector<size_t> kChunkings = {1, 7, 64, 4096};

} // namespace

TEST(IndexedDifferential, WarmEqualsStreamingAcrossCorpusAndChunkings)
{
    std::vector<std::string> corpus = defaultCorpus();
    std::vector<std::string> query_texts = defaultQueries();
    std::vector<path::PathQuery> queries;
    for (const std::string& t : query_texts)
        queries.push_back(path::parse(t));

    size_t compared = 0;
    for (const std::string& doc : corpus) {
        StructuralIndex ix = StructuralIndex::build(doc);
        ASSERT_TRUE(ix.describes(doc));
        EXPECT_TRUE(ix.usable()) << doc.substr(0, 80);
        for (size_t qi = 0; qi < queries.size(); ++qi) {
            Observed cold = runPlain(doc, queries[qi]);
            Observed warm = runWarm(doc, queries[qi], ix);
            EXPECT_TRUE(cold == warm)
                << "query=" << query_texts[qi] << " cold "
                << describe(cold) << " warm " << describe(warm)
                << " doc: " << doc.substr(0, 120);
            for (size_t chunk : kChunkings) {
                Observed wc = runWarmChunked(doc, queries[qi], ix, chunk);
                EXPECT_TRUE(cold == wc)
                    << "query=" << query_texts[qi] << " chunk=" << chunk
                    << " cold " << describe(cold) << " warm "
                    << describe(wc) << " doc: " << doc.substr(0, 120);
                ++compared;
            }
            ++compared;
        }
    }
    EXPECT_GT(compared, 0u);
}

TEST(IndexedDifferential, WarmEqualsStreamingUnderEveryKernel)
{
    std::vector<std::string> corpus = defaultCorpus();
    std::vector<std::string> query_texts = defaultQueries();
    std::vector<path::PathQuery> queries;
    for (const std::string& t : query_texts)
        queries.push_back(path::parse(t));

    for (const kernels::Kernel* kern : kernels::runnable()) {
        kernels::Override guard(*kern);
        for (size_t di = 0; di < corpus.size(); ++di) {
            const std::string& doc = corpus[di];
            StructuralIndex ix = StructuralIndex::build(doc);
            // Rotate queries so the sweep stays fast but every query
            // runs under every kernel across the corpus.
            size_t qi = di % queries.size();
            Observed cold = runPlain(doc, queries[qi]);
            Observed warm = runWarm(doc, queries[qi], ix);
            Observed chunked =
                runWarmChunked(doc, queries[qi], ix, 64);
            EXPECT_TRUE(cold == warm)
                << "kernel=" << kern->name
                << " query=" << query_texts[qi] << " cold "
                << describe(cold) << " warm " << describe(warm);
            EXPECT_TRUE(cold == chunked)
                << "kernel=" << kern->name
                << " query=" << query_texts[qi] << " chunked";
        }
    }
}

TEST(IndexedDifferential, MutantSweepWarmMatchesStreaming)
{
    // Structured mutants include structurally-clean-but-invalid
    // documents — the warm path must reproduce streaming's error
    // behaviour (same ErrorCode, same position) on those too, and the
    // builder must mark truly unclean ones unusable (fallback).
    std::vector<std::string> corpus = defaultCorpus();
    std::vector<std::string> query_texts = defaultQueries();
    std::vector<path::PathQuery> queries;
    for (const std::string& t : query_texts)
        queries.push_back(path::parse(t));

    StructuredMutator mutator(/*seed=*/42);
    size_t warm_runs = 0;
    for (size_t iter = 0; iter < 400; ++iter) {
        const std::string& seed_doc =
            corpus[mutator.rng().below(corpus.size())];
        std::string mutant = mutator.mutate(seed_doc, nullptr);
        StructuralIndex ix = StructuralIndex::build(mutant);
        ASSERT_TRUE(ix.describes(mutant));
        size_t qi = iter % queries.size();
        Observed cold = runPlain(mutant, queries[qi]);
        Observed warm = runWarm(mutant, queries[qi], ix);
        EXPECT_TRUE(cold == warm)
            << "iter=" << iter << " usable=" << ix.usable()
            << " query=" << query_texts[qi] << " cold " << describe(cold)
            << " warm " << describe(warm)
            << " json: " << mutant.substr(0, 160);
        Observed chunked = runWarmChunked(mutant, queries[qi], ix, 7);
        EXPECT_TRUE(cold == chunked)
            << "iter=" << iter << " chunked divergence query="
            << query_texts[qi];
        if (ix.usable())
            ++warm_runs;
    }
    // The sweep must actually exercise the warm path, not just the
    // unusable-index fallback.
    EXPECT_GT(warm_runs, 50u);
}

TEST(IndexedDifferential, StaleIndexIsDetectedAndStreamingFallsBack)
{
    std::string doc =
        R"({"cp": [{"id": 1}, {"id": 2}, {"id": 3}], "nm": "x"})";
    StructuralIndex ix = StructuralIndex::build(doc);
    ASSERT_TRUE(ix.usable());

    // Edited document (same length): the identity check must refuse.
    std::string edited = doc;
    edited[edited.find('1')] = '9';
    EXPECT_FALSE(ix.describes(edited));

    // Truncated document: refused too.
    EXPECT_FALSE(ix.describes(std::string_view(doc).substr(
        0, doc.size() - 1)));

    // The caller contract: on a describes() failure, stream.  Results
    // must be identical to never having had an index at all.
    path::PathQuery q = path::parse("$.cp[*].id");
    Observed fresh = runPlain(edited, q);
    StructuralIndex rebuilt = StructuralIndex::build(edited);
    Observed warm = runWarm(edited, q, rebuilt);
    EXPECT_TRUE(fresh == warm);
    EXPECT_EQ(fresh.matches, 3u);
}

TEST(IndexedDifferential, ForeignIndexFailsClosed)
{
    // Same shape, different layout: positions disagree.  The warm path
    // must throw IndexMismatch (or happen to agree byte-for-byte),
    // never return silently wrong values.
    std::string doc =
        R"({"aa": [1, 2, 3, 4, 5, 6, 7], "bb": {"cc": 1}})";
    std::string other =
        R"({"aa": [{"x": [0]}, 2], "bb": {"cc": 2222222}})";
    ASSERT_EQ(doc.size(), other.size());
    StructuralIndex foreign = StructuralIndex::build(other);
    ASSERT_TRUE(foreign.usable());
    path::PathQuery q = path::parse("$.bb.cc");
    Observed honest = runPlain(doc, q);
    Streamer s(q);
    try {
        CollectSink sink;
        s.runIndexed(doc, foreign, &sink);
        // Accidental agreement is acceptable only if fully identical.
        EXPECT_EQ(sink.values, honest.values);
    } catch (const ParseError& e) {
        EXPECT_EQ(e.code(), ErrorCode::IndexMismatch);
        EXPECT_LE(e.position(), doc.size());
    }
}

TEST(IndexedDifferential, InvalidButCleanDocumentRepaysPlainOnMismatch)
{
    // Fuzz-found (50k soak, iter 19320): a backslash spliced in front
    // of a string's closing quote keeps the string open through what
    // used to be structure, so the document is grammatically invalid
    // yet structurally clean — quotes, braces, and brackets still
    // balance, usable() stays true.  Lenient streaming skips over the
    // junk and succeeds with 0 matches; the warm path's depth tracking
    // desynchronizes from the classifier's, trips the defensive
    // byte-verify, and must *replay plain* (identical outcome), not
    // surface IndexMismatch where streaming soldiered on.
    const std::string doc =
        R"({"created_at":"2003-09-11T13:31:42Z","id":900000000000,)"
        R"("text":"product vector summer student river student evening coffee engin\",)"
        R"("user":{"id":8045x94,"name":"Bbmmpjk","screen_name":"kwtzawl",)"
        R"("followers_count":39493,"friends_count":3245,)"
        R"("description":"array bitmap product travel query stream",)"
        R"("verified":false},1en":{"hashtags":[{"text":"lnnykfq",)"
        R"("indices":[90,98]}],"urls":[],"user_mentions":[]},)"
        R"("coordinates":null,"place":{"name":"Fnuqrjzpx","country":"Vnxeqkgc",)"
        R"("bounding_box":{"type":"Polygon","pos":[[[114.841795,-40.420884],)"
        R"([173.24938,89.942375],[14.134515,-18.316721],)"
        R"([117.541925,-86.786759]]]}},"rtc":419,"lang":"es"})";
    StructuralIndex ix = StructuralIndex::build(doc);
    ASSERT_TRUE(ix.usable());
    for (const char* qt : {"$.nm", "$.rtc", "$.place.name", "$[*]"}) {
        path::PathQuery q = path::parse(qt);
        Observed plain = runPlain(doc, q);
        Observed warm = runWarm(doc, q, ix);
        EXPECT_TRUE(plain == warm)
            << qt << ": plain " << describe(plain) << " vs warm "
            << describe(warm);
        // The chunked warm path cannot replay a forward-only source;
        // it may fail closed with IndexMismatch, but must never
        // produce a *different* answer silently.
        for (size_t chunk : kChunkings) {
            Observed cw = runWarmChunked(doc, q, ix, chunk);
            EXPECT_TRUE(cw == plain ||
                        (cw.threw && cw.code == ErrorCode::IndexMismatch))
                << qt << " chunk=" << chunk << ": plain "
                << describe(plain) << " vs chunked-warm " << describe(cw);
        }
    }
}

TEST(IndexedDifferential, SidecarReplayAfterRoundTrip)
{
    // Serialize -> deserialize -> warm run: the sidecar must be as
    // good as the freshly built index.
    std::vector<std::string> corpus = defaultCorpus();
    path::PathQuery q = path::parse("$..id");
    for (size_t i = 0; i < corpus.size(); i += 3) {
        const std::string& doc = corpus[i];
        StructuralIndex ix = StructuralIndex::deserialize(
            StructuralIndex::build(doc).serialize());
        ASSERT_TRUE(ix.describes(doc));
        Observed cold = runPlain(doc, q);
        Observed warm = runWarm(doc, q, ix);
        EXPECT_TRUE(cold == warm) << "doc " << i;
    }
}
