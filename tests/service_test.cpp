/**
 * @file
 * End-to-end service tests over the loopback harness (DESIGN.md §10).
 *
 * The centerpiece is the differential rig: every (document, query)
 * pair from the shared fuzz corpus runs once through the wire —
 * header, socket-chunked body, match frames, trailer — and once
 * directly through Streamer::run; values must agree byte for byte and
 * the trailer's ErrorCode / position / FastForwardStats must equal the
 * direct run's, at every adversarial client chunking in the ladder.
 * Around it: the robustness envelope (header caps, deadlines, body and
 * match caps, slow readers), protocol edges at socket boundaries, the
 * plan-cache counters, the `!stats` scrape, and graceful shutdown.
 */
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <string>
#include <thread>
#include <vector>

#include "path/parser.h"
#include "path/queryset.h"
#include "service/loopback.h"
#include "service/plan_cache.h"
#include "service/protocol.h"
#include "service/server.h"
#include "ski/multi.h"
#include "ski/streamer.h"
#include "testing/differential.h"
#include "util/error.h"

using namespace jsonski;
using namespace jsonski::service;

namespace {

/** The acceptance-criterion client chunkings. */
const std::vector<size_t> kChunkings = {1, 7, 64, 4096};

RequestHeader
queryHeader(std::string query)
{
    RequestHeader h;
    h.queries = {std::move(query)};
    return h;
}

ClientOptions
chunked(size_t chunk)
{
    ClientOptions opt;
    opt.chunk_schedule = {chunk};
    return opt;
}

/** What a direct (no wire) evaluation observed. */
struct DirectRun
{
    bool ok = true;
    ErrorCode code = ErrorCode::Unspecified;
    size_t error_pos = 0;
    std::vector<std::string> values;
    std::array<uint64_t, 5> ff{};
};

DirectRun
runDirect(const std::string& query, std::string_view doc)
{
    DirectRun out;
    ski::Streamer streamer(path::parse(query));
    ski::CollectSink sink;
    try {
        auto r = streamer.run(doc, &sink);
        out.ff = r.stats.skipped;
    } catch (const ParseError& e) {
        out.ok = false;
        out.code = e.code();
        out.error_pos = e.position();
    }
    out.values = std::move(sink.values);
    return out;
}

/**
 * Push raw bytes through an adopted socketpair and return everything
 * the server wrote back — the escape hatch for malformed *headers*,
 * which the structured harness cannot produce.
 */
std::string
rawExchange(Server& server, std::string_view bytes, bool half_close = true)
{
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    EXPECT_TRUE(server.adoptConnection(sv[0]));
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(sv[1], bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            break;
        off += static_cast<size_t>(n);
    }
    if (half_close)
        ::shutdown(sv[1], SHUT_WR);
    std::string out;
    char buf[4096];
    ssize_t n;
    while ((n = ::read(sv[1], buf, sizeof buf)) > 0)
        out.append(buf, static_cast<size_t>(n));
    ::close(sv[1]);
    return out;
}

Trailer
trailerOf(const std::string& raw)
{
    ResponseParser p;
    p.feed(raw);
    EXPECT_TRUE(p.done());
    return p.trailer();
}

TEST(Service, LoopbackDifferentialAgainstDirectStreamer)
{
    // Full corpus x query mix; the chunking ladder rotates across
    // pairs, and a handcrafted nucleus runs the full cross product.
    Server server;
    server.start();

    std::vector<std::string> corpus =
        jsonski::testing::defaultCorpus(2048);
    std::vector<std::string> queries = jsonski::testing::defaultQueries();
    ASSERT_FALSE(corpus.empty());
    ASSERT_FALSE(queries.empty());

    size_t compared = 0;
    size_t rotate = 0;
    for (const std::string& doc : corpus) {
        for (const std::string& query : queries) {
            size_t chunk = kChunkings[rotate++ % kChunkings.size()];
            DirectRun direct = runDirect(query, doc);
            ClientResult r = runRequest(server, queryHeader(query), doc,
                                        chunked(chunk));
            ASSERT_TRUE(r.has_trailer)
                << "severed: q=" << query << " chunk=" << chunk;
            const Trailer& t = r.trailer;

            EXPECT_EQ(t.ok, direct.ok) << query << " chunk=" << chunk;
            if (direct.ok) {
                EXPECT_EQ(t.matches, direct.values.size());
                // The streamer stops pulling once the root value
                // closes, so trailing bytes may stay unread.
                EXPECT_LE(t.bytes_in, doc.size());
                EXPECT_GT(t.bytes_in, 0u);
                EXPECT_EQ(t.ff, direct.ff) << query;
            } else {
                EXPECT_EQ(t.code, direct.code) << query;
                EXPECT_EQ(t.error_pos, direct.error_pos) << query;
            }
            // Byte-identity of every delivered value, in order.
            ASSERT_EQ(r.matches.size(), direct.values.size());
            for (size_t i = 0; i < r.matches.size(); ++i) {
                EXPECT_EQ(r.matches[i].first, 0u);
                EXPECT_EQ(r.matches[i].second, direct.values[i]);
            }
            ++compared;
        }
    }

    // Nucleus: one adversarial document through every chunking.
    const std::string doc =
        R"({"a": [{"b": "x\n\"y\""}, {"b": "é€"}, )"
        R"({"b": [1.5e-3, true, null]}], "tail": "padding padding"})";
    const std::string query = "$.a[*].b";
    DirectRun direct = runDirect(query, doc);
    for (size_t chunk : kChunkings) {
        ClientResult r =
            runRequest(server, queryHeader(query), doc, chunked(chunk));
        ASSERT_TRUE(r.has_trailer);
        EXPECT_EQ(r.trailer.matches, direct.values.size());
        ASSERT_EQ(r.matches.size(), direct.values.size());
        for (size_t i = 0; i < r.matches.size(); ++i)
            EXPECT_EQ(r.matches[i].second, direct.values[i]);
        EXPECT_EQ(r.trailer.ff, direct.ff);
        ++compared;
    }

    EXPECT_GT(compared, 100u);
    server.stop();
}

TEST(Service, MultiQueryDifferentialAndPerQueryCounts)
{
    Server server;
    server.start();

    const std::string doc =
        R"({"a": [1, 2, 3], "b": {"c": "v"}, "d": [{"c": 1}, {"c": 2}]})";
    RequestHeader h;
    h.queries = {"$.a[*]", "$.b.c", "$.d[*].c"};

    ski::MultiStreamer direct({path::parse("$.a[*]"),
                               path::parse("$.b.c"),
                               path::parse("$.d[*].c")});
    ski::MultiCollectSink sink(3);
    auto dr = direct.run(doc, &sink);

    for (size_t chunk : kChunkings) {
        ClientResult r = runRequest(server, h, doc, chunked(chunk));
        ASSERT_TRUE(r.has_trailer);
        EXPECT_TRUE(r.trailer.ok);
        ASSERT_EQ(r.trailer.per_query.size(), 3u);
        for (size_t qi = 0; qi < 3; ++qi)
            EXPECT_EQ(r.trailer.per_query[qi], dr.matches[qi]);
        // Re-bucket the wire matches per query and compare bytes.
        std::vector<std::vector<std::string>> got(3);
        for (auto& [qi, value] : r.matches) {
            ASSERT_LT(qi, 3u);
            got[qi].push_back(value);
        }
        EXPECT_EQ(got, sink.values);
    }
    server.stop();
}

TEST(Service, DuplicateQueriesShareOneFrameStream)
{
    // Regression for the duplicate double-emit bug: a request listing
    // the same query twice (under different spellings) gets ONE frame
    // stream, tagged with the representative request position; the
    // trailer still reports a count per request position (duplicates
    // repeat) and qmap says which frame id serves each position.
    Server server;
    server.start();
    const std::string doc = R"({"a": [1, 2], "b": "v"})";
    RequestHeader h;
    h.queries = {"$.a[*]", "$['a'][*]", "$.b"};

    for (size_t chunk : kChunkings) {
        ClientResult r = runRequest(server, h, doc, chunked(chunk));
        ASSERT_TRUE(r.has_trailer);
        EXPECT_TRUE(r.trailer.ok);
        // Distinct matches only: 2 for $.a[*] (once!) + 1 for $.b.
        EXPECT_EQ(r.trailer.matches, 3u);
        EXPECT_EQ(r.trailer.per_query,
                  (std::vector<size_t>{2, 2, 1}));
        EXPECT_EQ(r.trailer.qmap, (std::vector<size_t>{0, 0, 2}));
        ASSERT_EQ(r.matches.size(), 3u);
        EXPECT_EQ(r.matches[0].first, 0u);
        EXPECT_EQ(r.matches[0].second, "1");
        EXPECT_EQ(r.matches[1].first, 0u);
        EXPECT_EQ(r.matches[1].second, "2");
        EXPECT_EQ(r.matches[2].first, 2u);
        EXPECT_EQ(r.matches[2].second, "\"v\"");
    }
    server.stop();
}

TEST(Service, MultilineQueryListMatchesInlineList)
{
    // The continuation-line form must be observationally identical to
    // the inline comma list: same frames, same tags, same trailer.
    Server server;
    server.start();
    const std::string doc =
        R"({"a": [1, 2, 3], "b": {"c": "v"}, "d": [{"c": 9}]})";
    RequestHeader inline_h;
    inline_h.queries = {"$.a[*]", "$.b.c", "$.d[*].c"};
    RequestHeader multi_h = inline_h;
    multi_h.multiline = true;

    for (size_t chunk : kChunkings) {
        ClientResult a = runRequest(server, inline_h, doc, chunked(chunk));
        ClientResult b = runRequest(server, multi_h, doc, chunked(chunk));
        ASSERT_TRUE(a.has_trailer);
        ASSERT_TRUE(b.has_trailer);
        EXPECT_TRUE(b.trailer.ok);
        EXPECT_EQ(b.trailer.matches, a.trailer.matches);
        EXPECT_EQ(b.trailer.per_query, a.trailer.per_query);
        EXPECT_EQ(b.trailer.qmap, a.trailer.qmap);
        EXPECT_EQ(b.matches, a.matches);
    }
    EXPECT_EQ(server.stats().multi_query_requests,
              2 * kChunkings.size());
    server.stop();
}

TEST(Service, OversizedQueryListIsATypedRejection)
{
    ServerConfig cfg;
    cfg.max_queries = 2;
    Server server(cfg);
    server.start();

    // Inline form: three queries against a cap of two.
    RequestHeader h;
    h.queries = {"$.a", "$.b", "$.c"};
    ClientResult r = runRequest(server, h, "{}");
    ASSERT_TRUE(r.has_trailer);
    EXPECT_FALSE(r.trailer.ok);
    EXPECT_EQ(r.trailer.code, ErrorCode::TooManyQueries);

    // Declared form: the header announces five continuation lines the
    // client never sends — the server must reject on the declaration
    // alone (before reading a single query= line), so the response is
    // TooManyQueries, not a read timeout or UnexpectedEnd.
    Trailer t = trailerOf(rawExchange(server, "jsq/1 $.a queries=5\n"));
    EXPECT_FALSE(t.ok);
    EXPECT_EQ(t.code, ErrorCode::TooManyQueries);

    EXPECT_EQ(server.stats().rejected_too_many_queries, 2u);

    // At the cap is fine.
    RequestHeader ok_h;
    ok_h.queries = {"$.a", "$.b"};
    ClientResult ok = runRequest(server, ok_h, R"({"a": 1, "b": 2})");
    ASSERT_TRUE(ok.has_trailer);
    EXPECT_TRUE(ok.trailer.ok);
    EXPECT_EQ(ok.trailer.matches, 2u);
    server.stop();
}

TEST(Service, PlanCacheKeysOnTheCanonicalQuerySet)
{
    // The multi-query plan cache is keyed on the canonical *set*:
    // order and duplicates collapse away, so {A,B} and {B,A,A} share
    // one compiled engine; {A,C} is a different set and misses.
    PlanCache cache(8);
    bool hit = false;
    auto p1 = cache.get("$.a, $.b", &hit);
    EXPECT_FALSE(hit);
    auto p2 = cache.get("$.b, $['a'], $.a", &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(p1.get(), p2.get());
    auto p3 = cache.get("$.a, $.c", &hit);
    EXPECT_FALSE(hit);
    EXPECT_NE(p1.get(), p3.get());
    EXPECT_EQ(cache.size(), 2u);

    // The request-set out-param still reflects the *request* order and
    // duplicates, which is what frame tagging keys on.
    path::QuerySet set;
    cache.get("$.b, $.a, $.a", &hit, &set);
    EXPECT_TRUE(hit);
    EXPECT_EQ(set.id_of, (std::vector<size_t>{0, 1, 1}));
    EXPECT_EQ(set.canonical,
              (std::vector<std::string>{"$.b", "$.a"}));
}

TEST(Service, MultiQueryWithSuffixesOverTheWire)
{
    // Filter and descendant members of a query set replay on divergent
    // suffixes server-side; the wire result must equal the direct
    // combined run, frame tags included.
    Server server;
    server.start();
    const std::string doc =
        R"({"items": [{"a": 1, "b": "p"}, {"a": 2, "b": "q"}, )"
        R"({"a": 1, "b": "r"}], "meta": {"id": 3, "sub": {"id": 4}}})";
    RequestHeader h;
    h.queries = {"$.items[?(@.a==1)].b", "$..id", "$.meta.id"};

    ski::MultiStreamer direct(path::QuerySet::fromTexts(h.queries));
    ski::MultiCollectSink sink(direct.queryCount());
    auto dr = direct.run(doc, &sink);

    for (size_t chunk : kChunkings) {
        ClientResult r = runRequest(server, h, doc, chunked(chunk));
        ASSERT_TRUE(r.has_trailer) << "chunk=" << chunk;
        EXPECT_TRUE(r.trailer.ok);
        ASSERT_EQ(r.trailer.per_query.size(), 3u);
        for (size_t i = 0; i < 3; ++i)
            EXPECT_EQ(r.trailer.per_query[i],
                      dr.matches[direct.querySet().id_of[i]]);
        std::vector<std::vector<std::string>> got(direct.queryCount());
        for (auto& [qi, value] : r.matches) {
            ASSERT_LT(qi, 3u);
            got[direct.querySet().id_of[qi]].push_back(value);
        }
        EXPECT_EQ(got, sink.values);
    }
    server.stop();
}

TEST(Service, QuoteAwareQueryListSplitting)
{
    // Filter string literals may contain every separator the protocol
    // cares about: commas, brackets, and spaces.  None of them may
    // split the list or unbalance the depth tracking.
    std::vector<std::string> qs =
        splitQueries("$[?(@.a==',]')], $.b, $[?(@.c=='x y, [z]')]");
    ASSERT_EQ(qs.size(), 3u);
    EXPECT_EQ(qs[0], "$[?(@.a==',]')]");
    EXPECT_EQ(qs[1], "$.b");
    EXPECT_EQ(qs[2], "$[?(@.c=='x y, [z]')]");

    // Escaped quote inside a literal does not close it.
    qs = splitQueries(R"($[?(@.a=='p\',q')],$.b)");
    ASSERT_EQ(qs.size(), 2u);
    EXPECT_EQ(qs[0], R"($[?(@.a=='p\',q')])");

    // Header parsing: predicate whitespace must not be taken for the
    // query-list / flags separator.
    RequestHeader h =
        parseHeader("jsq/1 $[?( @.v < 10 )].id,$.nm count limit=5");
    ASSERT_EQ(h.queries.size(), 2u);
    EXPECT_EQ(h.queries[0], "$[?( @.v < 10 )].id");
    EXPECT_EQ(h.queries[1], "$.nm");
    EXPECT_TRUE(h.count_only);
    EXPECT_EQ(h.limit, 5u);

    // ...and a literal containing a space keeps the list intact too.
    h = parseHeader("jsq/1 $[?(@.a=='x y')] records");
    ASSERT_EQ(h.queries.size(), 1u);
    EXPECT_EQ(h.queries[0], "$[?(@.a=='x y')]");
    EXPECT_TRUE(h.records);
}

TEST(Service, PlanCacheCanonicalizesFilterSpellings)
{
    // Every spelling of the same query must land on one cache entry
    // whose key is the parse->print normal form.
    PlanCache cache(8);
    bool hit = false;
    auto p1 = cache.get("$[?( @.v < 10 )].id", &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(p1->key, "$[?(@.v<10)].id");
    auto p2 = cache.get("$[?(@['v']<1e1)].id", &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(p1.get(), p2.get());
    auto p3 = cache.get("$['id'] , $[\"nm\"]", &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(p3->key, "$.id,$.nm");
    EXPECT_EQ(cache.get("$.id,$.nm", &hit).get(), p3.get());
    EXPECT_TRUE(hit);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);

    // A malformed filter throws before anything is inserted; a filter
    // inside a multi-query list compiles (the combined engine replays
    // it on the divergent suffix).
    EXPECT_THROW(cache.get("$[?(@.]"), PathError);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NO_THROW(cache.get("$.id,$[?(@.s=='x')]"));
    EXPECT_EQ(cache.size(), 3u);
}

TEST(Service, FilterQueryOverTheWireMatchesDirect)
{
    // Acceptance criterion: `$..a[?(@.b op lit)]` via jsqd equals the
    // direct evaluation byte for byte, at every client chunking.
    Server server;
    server.start();
    const std::string doc =
        R"({"a": [{"b": 1, "c": "u"}, {"b": 7, "c": "v"}, )"
        R"({"c": "w"}, {"b": "s"}], )"
        R"("n": {"a": [{"b": 9, "c": "x"}, {"b": 2}]}})";
    const std::vector<std::string> queries = {
        "$..a[?(@.b>3)]",      "$..a[?(@.b>3)].c",  "$..a[?(@.b)]",
        "$.a[?(@.c=='v')].b",  "$..a[?(@.b<=2)]",   "$.a[?(@.b!=7)]",
    };
    for (const std::string& query : queries) {
        DirectRun direct = runDirect(query, doc);
        ASSERT_TRUE(direct.ok) << query;
        for (size_t chunk : kChunkings) {
            ClientResult r = runRequest(server, queryHeader(query), doc,
                                        chunked(chunk));
            ASSERT_TRUE(r.has_trailer) << query << " chunk=" << chunk;
            EXPECT_TRUE(r.trailer.ok) << query;
            EXPECT_EQ(r.trailer.matches, direct.values.size()) << query;
            EXPECT_EQ(r.trailer.ff, direct.ff)
                << query << " chunk=" << chunk;
            ASSERT_EQ(r.matches.size(), direct.values.size()) << query;
            for (size_t i = 0; i < r.matches.size(); ++i)
                EXPECT_EQ(r.matches[i].second, direct.values[i])
                    << query << " chunk=" << chunk;
        }
    }
    server.stop();
}

TEST(Service, MalformedBodiesAtSocketSeams)
{
    // Documents broken mid-escape, mid-\uXXXX, mid-UTF-8, truncated:
    // the trailer must carry the same ErrorCode and byte position the
    // direct run throws, no matter where the socket seams fall.
    Server server;
    server.start();

    const std::vector<std::string> docs = {
        R"({"a": [1, 2, {"b": "unterminated)",
        R"({"k": "esc\)",
        "{\"k\": \"\\u12",
        std::string("{\"k\": \"\xe2\x82"), // truncated UTF-8 sequence
        R"([1, 2, 3)",
        R"({"a" 1})",
        R"({"a": 00})",
    };
    for (const std::string& doc : docs) {
        DirectRun direct = runDirect("$.a", doc);
        for (size_t chunk : {size_t{1}, size_t{7}}) {
            ClientResult r = runRequest(server, queryHeader("$.a"), doc,
                                        chunked(chunk));
            ASSERT_TRUE(r.has_trailer) << doc;
            EXPECT_EQ(r.trailer.ok, direct.ok) << doc;
            if (!direct.ok) {
                EXPECT_EQ(r.trailer.code, direct.code) << doc;
                EXPECT_EQ(r.trailer.error_pos, direct.error_pos) << doc;
            }
        }
    }
    server.stop();
}

TEST(Service, TruncatedHeaderYieldsUnexpectedEnd)
{
    Server server;
    server.start();
    // Half-close mid-header: no newline ever arrives.
    Trailer t = trailerOf(rawExchange(server, "jsq/1 $.a"));
    EXPECT_FALSE(t.ok);
    EXPECT_EQ(t.code, ErrorCode::UnexpectedEnd);
    server.stop();
}

TEST(Service, OversizedHeaderIsRejectedBeforeNewline)
{
    ServerConfig cfg;
    cfg.max_header_bytes = 128;
    Server server(cfg);
    server.start();
    // 4 KiB of header with no newline: the server must reject at the
    // cap, not buffer hoping for a line end.
    std::string huge = "jsq/1 $." + std::string(4096, 'a');
    Trailer t = trailerOf(rawExchange(server, huge));
    EXPECT_FALSE(t.ok);
    EXPECT_EQ(t.code, ErrorCode::HeaderTooLarge);
    EXPECT_EQ(server.stats().rejected_header_too_large, 1u);
    server.stop();
}

TEST(Service, BadMagicAndBadQueryAreTypedRejections)
{
    Server server;
    server.start();

    Trailer t = trailerOf(rawExchange(server, "http/1.1 GET /\n"));
    EXPECT_FALSE(t.ok);
    EXPECT_EQ(t.code, ErrorCode::BadRequest);

    // Well-formed header, malformed JSONPath.
    t = trailerOf(rawExchange(server, "jsq/1 $.a[\n{}"));
    EXPECT_FALSE(t.ok);
    EXPECT_EQ(t.code, ErrorCode::BadRequest);
    EXPECT_EQ(server.stats().rejected_bad_request, 2u);
    server.stop();
}

TEST(Service, StalledSenderTripsReadDeadline)
{
    ServerConfig cfg;
    cfg.read_deadline_ms = 150;
    Server server(cfg);
    server.start();

    ClientOptions opt;
    opt.stall_after = 4; // stop mid-document, keep the socket open
    opt.half_close = false;
    ClientResult r = runRequest(server, queryHeader("$.a"),
                                R"({"a": [1, 2, 3]})", opt);
    ASSERT_TRUE(r.has_trailer);
    EXPECT_FALSE(r.trailer.ok);
    EXPECT_EQ(r.trailer.code, ErrorCode::DeadlineExpired);
    EXPECT_EQ(server.stats().rejected_deadline, 1u);
    server.stop();
}

TEST(Service, SlowReaderIsBackpressuredNotBuffered)
{
    // A huge match volume against a reader that never drains: the
    // bounded write queue must flush-or-reject under its deadline
    // instead of ballooning. The connection is severed (no trailer
    // can be delivered through a full pipe).
    ServerConfig cfg;
    cfg.write_deadline_ms = 150;
    cfg.write_queue_bytes = 4096;
    Server server(cfg);
    server.start();

    std::string doc = "[";
    for (int i = 0; i < 20000; ++i) {
        if (i)
            doc += ',';
        doc += "\"payload-payload-payload-payload-" + std::to_string(i) +
               "\"";
    }
    doc += "]";

    ClientOptions opt;
    opt.read_delay_ms = 60000; // effectively: never read
    opt.overall_timeout_ms = 3000;
    ClientResult r = runRequest(server, queryHeader("$[*]"), doc, opt);
    EXPECT_FALSE(r.has_trailer);
    EXPECT_TRUE(r.severed);
    EXPECT_EQ(server.stats().rejected_deadline, 1u);
    server.stop();
}

TEST(Service, ClientLimitStopsEarlyWithOkTrailer)
{
    Server server;
    server.start();
    RequestHeader h = queryHeader("$[*]");
    h.limit = 2;
    ClientResult r = runRequest(server, h, "[10, 20, 30, 40, 50]");
    ASSERT_TRUE(r.has_trailer);
    EXPECT_TRUE(r.trailer.ok);
    EXPECT_EQ(r.trailer.matches, 2u);
    ASSERT_EQ(r.matches.size(), 2u);
    EXPECT_EQ(r.matches[0].second, "10");
    EXPECT_EQ(r.matches[1].second, "20");
    server.stop();
}

TEST(Service, ServerMatchCapIsATypedError)
{
    ServerConfig cfg;
    cfg.max_matches = 3;
    Server server(cfg);
    server.start();
    ClientResult r =
        runRequest(server, queryHeader("$[*]"), "[1, 2, 3, 4, 5]");
    ASSERT_TRUE(r.has_trailer);
    EXPECT_FALSE(r.trailer.ok);
    EXPECT_EQ(r.trailer.code, ErrorCode::MatchLimitExceeded);
    server.stop();
}

TEST(Service, BodyByteCapIsATypedError)
{
    ServerConfig cfg;
    cfg.max_body_bytes = 32;
    Server server(cfg);
    server.start();
    std::string doc = R"({"a": ")" + std::string(100, 'x') + R"("})";
    ClientResult r = runRequest(server, queryHeader("$.a"), doc);
    ASSERT_TRUE(r.has_trailer);
    EXPECT_FALSE(r.trailer.ok);
    EXPECT_EQ(r.trailer.code, ErrorCode::RecordTooLarge);
    EXPECT_EQ(r.trailer.error_pos, 32u);
    EXPECT_EQ(server.stats().rejected_too_large, 1u);
    server.stop();
}

TEST(Service, LengthFramedBodyNeedsNoHalfClose)
{
    Server server;
    server.start();
    const std::string doc = R"({"a": [1, 2, 3]})";
    RequestHeader h = queryHeader("$.a[*]");
    h.has_length = true;
    h.length = doc.size();
    ClientOptions opt;
    opt.half_close = false; // EOF framing would hang here
    ClientResult r = runRequest(server, h, doc, opt);
    ASSERT_TRUE(r.has_trailer);
    EXPECT_TRUE(r.trailer.ok);
    EXPECT_EQ(r.trailer.matches, 3u);
    EXPECT_EQ(r.trailer.bytes_in, doc.size());
    server.stop();
}

TEST(Service, RecordsModeStreamsNdjson)
{
    Server server;
    server.start();
    const std::string body = R"({"a": 1})"
                             "\n"
                             R"({"a": 2})"
                             "\n"
                             R"({"b": 9})"
                             "\n"
                             R"({"a": 3})"
                             "\n";
    RequestHeader h = queryHeader("$.a");
    h.records = true;
    for (size_t chunk : kChunkings) {
        ClientResult r = runRequest(server, h, body, chunked(chunk));
        ASSERT_TRUE(r.has_trailer);
        EXPECT_TRUE(r.trailer.ok);
        EXPECT_EQ(r.trailer.matches, 3u);
        ASSERT_EQ(r.matches.size(), 3u);
        EXPECT_EQ(r.matches[0].second, "1");
        EXPECT_EQ(r.matches[1].second, "2");
        EXPECT_EQ(r.matches[2].second, "3");
    }
    server.stop();
}

TEST(Service, CountOnlySuppressesMatchFrames)
{
    Server server;
    server.start();
    RequestHeader h = queryHeader("$[*]");
    h.count_only = true;
    ClientResult r = runRequest(server, h, "[1, 2, 3]");
    ASSERT_TRUE(r.has_trailer);
    EXPECT_TRUE(r.trailer.ok);
    EXPECT_EQ(r.trailer.matches, 3u);
    EXPECT_TRUE(r.matches.empty()); // nothing but the trailer on the wire
    server.stop();
}

RequestHeader
docHeader(std::string query, std::string_view body,
          std::string id = "d1")
{
    RequestHeader h = queryHeader(std::move(query));
    h.has_length = true;
    h.length = body.size();
    h.has_doc = true;
    h.doc_id = std::move(id);
    return h;
}

TEST(Service, DocRequestWarmMatchesStreamingAndReportsCacheVerdict)
{
    ServerConfig cfg;
    cfg.shards = 1; // one index-cache partition → exact hit/miss
    Server server(cfg);
    server.start();

    const std::string doc =
        R"({"cp": [{"id": 1}, {"id": 2}, {"id": 3}], "nm": "x"})";
    const std::string query = "$.cp[*].id";
    DirectRun direct = runDirect(query, doc);
    ASSERT_TRUE(direct.ok);

    // First sight: the shard builds and caches the index (miss); every
    // later request for the same bytes answers warm (hit).  Values are
    // byte-identical to the direct streaming run either way, at every
    // client chunking.
    ClientResult first =
        runRequest(server, docHeader(query, doc), doc);
    ASSERT_TRUE(first.has_trailer);
    EXPECT_TRUE(first.trailer.ok);
    EXPECT_EQ(first.trailer.index, "miss");
    EXPECT_EQ(first.trailer.bytes_in, doc.size());
    ASSERT_EQ(first.matches.size(), direct.values.size());
    for (size_t i = 0; i < first.matches.size(); ++i)
        EXPECT_EQ(first.matches[i].second, direct.values[i]);

    for (size_t chunk : kChunkings) {
        ClientResult r = runRequest(server, docHeader(query, doc), doc,
                                    chunked(chunk));
        ASSERT_TRUE(r.has_trailer);
        EXPECT_TRUE(r.trailer.ok);
        EXPECT_EQ(r.trailer.index, "hit") << "chunk=" << chunk;
        ASSERT_EQ(r.matches.size(), direct.values.size());
        for (size_t i = 0; i < r.matches.size(); ++i)
            EXPECT_EQ(r.matches[i].second, direct.values[i]);
    }

    // A different query over the same cached document is still a hit:
    // the cache keys on content, not on (doc, query).
    ClientResult other =
        runRequest(server, docHeader("$.nm", doc), doc);
    ASSERT_TRUE(other.has_trailer);
    EXPECT_EQ(other.trailer.index, "hit");
    ASSERT_EQ(other.matches.size(), 1u);
    EXPECT_EQ(other.matches[0].second, "\"x\"");

    index::DocumentIndexCacheStats dc = server.docCacheTotals();
    EXPECT_EQ(dc.misses, 1u);
    EXPECT_EQ(dc.hits, kChunkings.size() + 1);
    EXPECT_EQ(dc.entries, 1u);

    std::string page = scrapeStats(server);
    EXPECT_NE(page.find("jsonski_server_doc_index_cache_misses 1"),
              std::string::npos);
    EXPECT_NE(page.find("jsonski_server_doc_index_cache_hits"),
              std::string::npos);
    EXPECT_NE(page.find("jsonski_server_doc_index_cache_bytes"),
              std::string::npos);
    server.stop();
}

TEST(Service, DocRequestErrorsMatchStreamingErrors)
{
    // Structurally clean (balanced containers, closed strings) so the
    // index is usable, yet grammatically wrong: the warm path must
    // reproduce the streaming ErrorCode and position in the trailer.
    ServerConfig cfg;
    cfg.shards = 1;
    Server server(cfg);
    server.start();
    const std::string doc = R"({"a" 1})"; // missing colon
    const std::string query = "$.a";
    DirectRun direct = runDirect(query, doc);
    ASSERT_FALSE(direct.ok);
    for (int pass = 0; pass < 2; ++pass) {
        ClientResult r = runRequest(server, docHeader(query, doc), doc);
        ASSERT_TRUE(r.has_trailer);
        EXPECT_FALSE(r.trailer.ok);
        EXPECT_EQ(r.trailer.code, direct.code);
        EXPECT_EQ(r.trailer.error_pos, direct.error_pos);
        EXPECT_EQ(r.trailer.index, pass == 0 ? "miss" : "hit");
    }
    server.stop();
}

TEST(Service, DocRequestOnUncleanDocumentStreamsWithIndexNone)
{
    // Structurally unclean (unbalanced): the builder marks the index
    // unusable, the request streams, and the trailer says index=none —
    // with the same typed error the plain path reports.
    ServerConfig cfg;
    cfg.shards = 1;
    Server server(cfg);
    server.start();
    const std::string doc = R"({"a": [1, 2)";
    DirectRun direct = runDirect("$.a[*]", doc);
    ASSERT_FALSE(direct.ok);
    ClientResult r = runRequest(server, docHeader("$.a[*]", doc), doc);
    ASSERT_TRUE(r.has_trailer);
    EXPECT_FALSE(r.trailer.ok);
    EXPECT_EQ(r.trailer.code, direct.code);
    EXPECT_EQ(r.trailer.error_pos, direct.error_pos);
    EXPECT_EQ(r.trailer.index, "none");
    server.stop();
}

TEST(Service, DocRequestMultiQueryStreamsWithIndexNone)
{
    Server server;
    server.start();
    const std::string doc = R"({"a": [1, 2], "b": {"c": "v"}})";
    RequestHeader h;
    h.queries = {"$.a[*]", "$.b.c"};
    h.has_length = true;
    h.length = doc.size();
    h.has_doc = true;
    h.doc_id = "m";
    ClientResult r = runRequest(server, h, doc);
    ASSERT_TRUE(r.has_trailer);
    EXPECT_TRUE(r.trailer.ok);
    EXPECT_EQ(r.trailer.index, "none");
    EXPECT_EQ(r.trailer.matches, 3u);
    ASSERT_EQ(r.trailer.per_query.size(), 2u);
    EXPECT_EQ(r.trailer.per_query[0], 2u);
    EXPECT_EQ(r.trailer.per_query[1], 1u);
    server.stop();
}

TEST(Service, DocRequestBodyCapIsATypedError)
{
    ServerConfig cfg;
    cfg.max_doc_bytes = 16;
    Server server(cfg);
    server.start();
    const std::string doc =
        R"({"a": ")" + std::string(64, 'x') + R"("})";
    ClientResult r = runRequest(server, docHeader("$.a", doc), doc);
    ASSERT_TRUE(r.has_trailer);
    EXPECT_FALSE(r.trailer.ok);
    EXPECT_EQ(r.trailer.code, ErrorCode::RecordTooLarge);
    EXPECT_EQ(r.trailer.index, "none");
    EXPECT_EQ(server.stats().rejected_too_large, 1u);
    server.stop();
}

TEST(Service, DocRequestWithoutLengthIsBadRequest)
{
    Server server;
    server.start();
    Trailer t =
        trailerOf(rawExchange(server, "jsq/1 $.a doc=d1\n{\"a\": 1}"));
    EXPECT_FALSE(t.ok);
    EXPECT_EQ(t.code, ErrorCode::BadRequest);
    Trailer t2 = trailerOf(rawExchange(
        server, "jsq/1 $.a records doc=d1 length=9\n{\"a\": 1}\n"));
    EXPECT_FALSE(t2.ok);
    EXPECT_EQ(t2.code, ErrorCode::BadRequest);
    server.stop();
}

TEST(Service, DocRequestTruncatedBodyIsUnexpectedEnd)
{
    Server server;
    server.start();
    const std::string doc = R"({"a": [1, 2, 3]})";
    RequestHeader h = docHeader("$.a[*]", doc);
    h.length = doc.size() + 10; // client half-closes short of this
    ClientResult r = runRequest(server, h, doc);
    ASSERT_TRUE(r.has_trailer);
    EXPECT_FALSE(r.trailer.ok);
    EXPECT_EQ(r.trailer.code, ErrorCode::UnexpectedEnd);
    server.stop();
}

TEST(Service, NonDocRequestsOmitTheIndexField)
{
    Server server;
    server.start();
    ClientResult r =
        runRequest(server, queryHeader("$.a"), R"({"a": 1})");
    ASSERT_TRUE(r.has_trailer);
    EXPECT_TRUE(r.trailer.ok);
    EXPECT_TRUE(r.trailer.index.empty());
    index::DocumentIndexCacheStats dc = server.docCacheTotals();
    EXPECT_EQ(dc.hits + dc.misses, 0u);
    server.stop();
}

TEST(Service, PlanCacheCountersAcrossConcurrentConnections)
{
    ServerConfig cfg;
    cfg.workers = 4;
    cfg.shards = 1; // one plan-cache partition → exact counters
    Server server(cfg);
    server.start();

    // N concurrent connections, same fresh query: compile-under-lock
    // makes the counters deterministic — 1 miss, N-1 hits — and the
    // trailer's plan verdict agrees.
    constexpr int kClients = 6;
    std::vector<std::thread> clients;
    std::vector<ClientResult> results(kClients);
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back([&, c] {
            results[c] = runRequest(server, queryHeader("$.fresh[*]"),
                                    R"({"fresh": [1, 2]})");
        });
    for (auto& th : clients)
        th.join();

    int hits = 0, misses = 0;
    for (const ClientResult& r : results) {
        ASSERT_TRUE(r.has_trailer);
        EXPECT_TRUE(r.trailer.ok);
        EXPECT_EQ(r.trailer.matches, 2u);
        if (r.trailer.plan == "hit")
            ++hits;
        else if (r.trailer.plan == "miss")
            ++misses;
    }
    EXPECT_EQ(misses, 1);
    EXPECT_EQ(hits, kClients - 1);
    EXPECT_EQ(server.planCache().misses(), 1u);
    EXPECT_EQ(server.planCache().hits(),
              static_cast<uint64_t>(kClients - 1));

    // A later request for the same query is a straight hit.
    ClientResult r = runRequest(server, queryHeader("$.fresh[*]"),
                                R"({"fresh": []})");
    ASSERT_TRUE(r.has_trailer);
    EXPECT_EQ(r.trailer.plan, "hit");
    server.stop();
}

TEST(Service, PlanCacheEvictionCounterMovesUnderPressure)
{
    ServerConfig cfg;
    cfg.shards = 1; // one partition, so the capacity is not split
    cfg.plan_cache_capacity = PlanCache::kShards; // one per shard
    Server server(cfg);
    server.start();
    for (int i = 0; i < 32; ++i)
        runRequest(server, queryHeader("$.k" + std::to_string(i)), "{}");
    EXPECT_GT(server.planCache().evictions(), 0u);
    EXPECT_LE(server.planCache().size(), PlanCache::kShards);
    server.stop();
}

TEST(Service, StatsScrapeIsPrometheusText)
{
    Server server;
    server.start();
    runRequest(server, queryHeader("$.a"), R"({"a": 1})");
    std::string page = scrapeStats(server);
    EXPECT_NE(page.find("# TYPE jsonski_server_requests_total counter"),
              std::string::npos);
    EXPECT_NE(page.find("jsonski_server_responses_ok 1"),
              std::string::npos);
    EXPECT_NE(page.find("jsonski_server_plan_cache_misses"),
              std::string::npos);
    EXPECT_EQ(server.stats().stats_requests, 1u);
    server.stop();
}

TEST(Service, TelemetryMergesAcrossRequests)
{
    Server server;
    server.start();
    for (int i = 0; i < 3; ++i)
        runRequest(server, queryHeader("$.a[*]"),
                   R"({"a": [1, 2, 3], "skip": [4, 5, 6]})");
    // The merged registry feeds metricsText(); the server counters in
    // it must reflect all three requests.
    std::string page = server.metricsText();
    EXPECT_NE(page.find("jsonski_server_requests_total 3"),
              std::string::npos);
    server.stop();
}

TEST(Service, TcpListenerEndToEnd)
{
    for (bool force_poll : {false, true}) {
        ServerConfig cfg;
        cfg.force_poll = force_poll;
        Server server(cfg);
        server.start();
        ASSERT_NE(server.port(), 0);
        int fd = connectTcp("127.0.0.1", server.port());
        ClientResult r = runRequestFd(fd, queryHeader("$.a"),
                                      R"({"a": "tcp"})");
        ASSERT_TRUE(r.has_trailer) << "force_poll=" << force_poll;
        EXPECT_TRUE(r.trailer.ok);
        ASSERT_EQ(r.matches.size(), 1u);
        EXPECT_EQ(r.matches[0].second, "\"tcp\"");
        EXPECT_EQ(server.stats().connections_total, 1u);
        server.stop();
    }
}

TEST(Service, IdleConnectionIsReaped)
{
    ServerConfig cfg;
    cfg.idle_deadline_ms = 100;
    Server server(cfg);
    server.start();
    int fd = connectTcp("127.0.0.1", server.port());
    // Send nothing; the event loop must close us, not leak the slot.
    char byte;
    ssize_t n = ::read(fd, &byte, 1); // blocks until the server closes
    EXPECT_EQ(n, 0);
    ::close(fd);
    // The counter is bumped by the loop thread; poll briefly.
    for (int i = 0; i < 100 && server.stats().idle_closed == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(server.stats().idle_closed, 1u);
    server.stop();
}

TEST(Service, GracefulStopDrainsAndRefusesNewWork)
{
    Server server;
    server.start();
    ClientResult r =
        runRequest(server, queryHeader("$.a"), R"({"a": 1})");
    ASSERT_TRUE(r.has_trailer);
    server.stop();

    // After the drain, injected connections are refused (fd closed).
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    EXPECT_FALSE(server.adoptConnection(sv[0]));
    char byte;
    EXPECT_EQ(::read(sv[1], &byte, 1), 0); // peer closed, clean EOF
    ::close(sv[1]);

    ServerStats s = server.stats();
    EXPECT_EQ(s.responses_ok, 1u);
}

} // namespace
