/** @file Tests for the experiment harness (engines + runner). */
#include "harness/engines.h"
#include "harness/runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "harness/report.h"
#include "json/validate.h"
#include "path/parser.h"

using namespace jsonski::harness;
using jsonski::ThreadPool;
using jsonski::gen::DatasetId;
using jsonski::path::parse;

TEST(Engines, AllFiveConstruct)
{
    auto engines = makeAllEngines();
    ASSERT_EQ(engines.size(), 5u);
    std::vector<std::string_view> names;
    for (const auto& e : engines)
        names.push_back(e->name());
    EXPECT_EQ(names, (std::vector<std::string_view>{
                         "JPStream", "RapidJSON-like", "simdjson-like",
                         "Pison-like", "JSONSki"}));
}

TEST(Engines, AgreeOnGeneratedDataset)
{
    std::string json =
        jsonski::gen::generateLarge(DatasetId::BB, 256 * 1024);
    auto q = parse("$.pd[*].cp[1:3].id");
    auto engines = makeAllEngines();
    size_t reference = engines[0]->run(json, q);
    EXPECT_GT(reference, 0u);
    for (const auto& e : engines)
        EXPECT_EQ(e->run(json, q), reference) << e->name();
}

TEST(Engines, ParallelLargeAgreesWithSerial)
{
    std::string json =
        jsonski::gen::generateLarge(DatasetId::TT, 256 * 1024);
    auto q = parse("$[*].en.urls[*].url");
    ThreadPool pool(4);
    for (const auto& e : makeAllEngines()) {
        if (!e->supportsParallelLarge())
            continue;
        EXPECT_EQ(e->runParallelLarge(json, q, pool), e->run(json, q))
            << e->name();
    }
}

TEST(Engines, PaperQueryTableIsComplete)
{
    const auto& queries = paperQueries();
    ASSERT_EQ(queries.size(), 12u);
    // Each dataset appears exactly twice.
    for (DatasetId id : jsonski::gen::kAllDatasets) {
        int count = 0;
        for (const auto& q : queries)
            count += q.dataset == id;
        EXPECT_EQ(count, 2) << jsonski::gen::datasetName(id);
    }
    // Exactly two queries are excluded from the small-record scenario
    // (NSPL1 and WP2, as in the paper).
    int excluded = 0;
    for (const auto& q : queries)
        excluded += q.small_query.empty();
    EXPECT_EQ(excluded, 2);
    // All query strings parse.
    for (const auto& q : queries) {
        EXPECT_NO_THROW(parse(q.large_query)) << q.id;
        if (!q.small_query.empty()) {
            EXPECT_NO_THROW(parse(q.small_query)) << q.id;
        }
    }
}

TEST(Engines, JsonSkiStatsInstrumentation)
{
    std::string json =
        jsonski::gen::generateLarge(DatasetId::WM, 128 * 1024);
    jsonski::ski::FastForwardStats stats;
    size_t n = runJsonSkiWithStats(json, parse("$.it[*].nm"), stats);
    EXPECT_GT(n, 0u);
    EXPECT_GT(stats.overallRatio(json.size()), 0.5);
}

TEST(Runner, TimeBestReturnsMatches)
{
    Timing t = timeBest([] { return size_t{42}; }, 2);
    EXPECT_EQ(t.matches, 42u);
    EXPECT_GE(t.seconds, 0.0);
    EXPECT_LT(t.seconds, 1.0);
}

TEST(Runner, TimeBestReportsSpread)
{
    Timing t = timeBest([] { return size_t{1}; }, 3);
    EXPECT_GE(t.runs, 3);
    // best <= median, and the spread statistics are finite and sane.
    EXPECT_LE(t.seconds, t.median);
    EXPECT_GE(t.rel_stddev, 0.0);
    EXPECT_TRUE(std::isfinite(t.rel_stddev));
}

TEST(Runner, TimeBestThrowsOnMatchDisagreement)
{
    // A workload whose result changes between repeats is a broken
    // benchmark; timeBest must fail loudly instead of reporting a
    // throughput for it.  The counter survives the warm-up runs, so
    // the timed repeats each see a distinct value.
    size_t calls = 0;
    EXPECT_THROW(timeBest([&] { return ++calls; }, 3),
                 std::runtime_error);
}

TEST(Report, EmitsValidJson)
{
    BenchReport report("unit_test", "report smoke test");
    report.inputBytes(1024);
    report.threads(2);
    report.beginRow("Q1", "JSONSki");
    Timing t = timeBest([] { return size_t{5}; }, 2);
    report.timing(t, 1024);
    report.metric("extra", static_cast<uint64_t>(7));
    report.text("note", "quoted \"value\"");
    report.beginRow("Q1", "other-engine");
    report.metric("score", 0.5);
    std::string out = report.toJson();
    auto v = jsonski::json::validate(out);
    ASSERT_TRUE(v.ok) << v.message << " at " << v.error_position << "\n"
                      << out;
    EXPECT_NE(out.find("\"schema\":\"jsonski-bench-v1\""),
              std::string::npos);
    EXPECT_NE(out.find("\"artifact\":\"unit_test\""), std::string::npos);
    EXPECT_NE(out.find("\"gbps\""), std::string::npos);
    EXPECT_NE(out.find("\"median_seconds\""), std::string::npos);
    EXPECT_NE(out.find("quoted \\\"value\\\""), std::string::npos);
}

TEST(Report, FfStatsSectionMatchesAccounting)
{
    jsonski::ski::FastForwardStats stats;
    stats.add(jsonski::ski::Group::G1, 600);
    stats.add(jsonski::ski::Group::G4, 100);
    BenchReport report("unit_test_ff", "ff section");
    report.beginRow("Q", "JSONSki");
    report.ffStats(stats, 1000);
    std::string out = report.toJson();
    ASSERT_TRUE(jsonski::json::validate(out).ok) << out;
    EXPECT_NE(out.find("\"G1\":600"), std::string::npos) << out;
    EXPECT_NE(out.find("\"G4\":100"), std::string::npos);
    EXPECT_NE(out.find("\"overall_ratio\":0.7"), std::string::npos);
}

TEST(Runner, ComputeStats)
{
    DatasetStats s = computeStats(R"({"a":[1,{"b":2}],"c":"x"})");
    EXPECT_EQ(s.objects, 2u);
    EXPECT_EQ(s.arrays, 1u);
    EXPECT_EQ(s.attributes, 3u);
    EXPECT_EQ(s.primitives, 3u);
    EXPECT_EQ(s.max_depth, 3u);
}

TEST(Runner, SmallSerialVsParallel)
{
    auto data = jsonski::gen::generateSmall(DatasetId::WM, 256 * 1024);
    auto q = parse("$.nm");
    auto engine = makeEngine(Method::JsonSki);
    size_t serial = runSmallSerial(*engine, data, q);
    ThreadPool pool(4);
    size_t parallel = runSmallParallel(*engine, data, q, pool);
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(serial, data.count());
}

TEST(Runner, Formatting)
{
    EXPECT_EQ(fmtSeconds(1.23456), "1.2346");
    EXPECT_EQ(fmtPercent(0.9944), "99.44%");
    EXPECT_EQ(fmtMb(1024 * 1024), "1.0 MB");
}

TEST(Runner, BenchBytesDefaults)
{
    char prog[] = "bench";
    char* argv1[] = {prog, nullptr};
    unsetenv("JSONSKI_BENCH_MB");
    EXPECT_EQ(benchBytes(1, argv1, 32), 32u * 1024 * 1024);
    char arg[] = "8";
    char* argv2[] = {prog, arg, nullptr};
    EXPECT_EQ(benchBytes(2, argv2, 32), 8u * 1024 * 1024);
}
