/**
 * @file
 * Chunked-ingestion unit tests: ChunkSource implementations, the
 * chunked StreamCursor (refills, discard floor, prepareTail on a
 * multi-chunk stream), the bounded-memory acceptance criterion
 * (window peak <= 2x chunk size, backed by the heap hooks), and
 * RecordReader over a ChunkSource.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "gen/datasets.h"
#include "intervals/chunk_source.h"
#include "intervals/cursor.h"
#include "path/matches.h"
#include "path/parser.h"
#include "ski/record_reader.h"
#include "ski/streamer.h"
#include "util/mem_stats.h"

namespace {

using jsonski::intervals::ChunkSource;
using jsonski::intervals::FileSource;
using jsonski::intervals::IstreamSource;
using jsonski::intervals::SplitSource;
using jsonski::intervals::StreamCursor;
using jsonski::intervals::ViewSource;
using jsonski::path::CollectSink;
using jsonski::ski::RecordReader;
using jsonski::ski::Streamer;
using jsonski::ski::StreamResult;

/** Drain a source with @p cap-sized reads; returns the reassembly. */
std::string
drain(ChunkSource& src, size_t cap, std::vector<size_t>* sizes = nullptr)
{
    std::string out;
    std::vector<char> buf(cap);
    for (;;) {
        size_t n = src.read(buf.data(), cap);
        if (n == 0)
            break;
        if (sizes != nullptr)
            sizes->push_back(n);
        out.append(buf.data(), n);
    }
    return out;
}

/** A document of exactly @p n bytes whose query "$.tail" matches "7". */
std::string
docOfSize(size_t n)
{
    const std::string prefix = "{\"pad\": \"";
    const std::string suffix = "\", \"tail\": 7}";
    EXPECT_GE(n, prefix.size() + suffix.size());
    return prefix + std::string(n - prefix.size() - suffix.size(), 'x') +
           suffix;
}

// ---------------------------------------------------------------------
// ChunkSource implementations
// ---------------------------------------------------------------------

TEST(ChunkSourceTest, ViewSourceDeliversWholeViewByDefault)
{
    const std::string doc = docOfSize(200);
    ViewSource src(doc);
    std::vector<size_t> sizes;
    EXPECT_EQ(drain(src, 4096, &sizes), doc);
    EXPECT_EQ(sizes, (std::vector<size_t>{doc.size()}));
    EXPECT_EQ(src.remaining(), 0u);
    // Terminal: keeps returning 0.
    char b;
    EXPECT_EQ(src.read(&b, 1), 0u);
}

TEST(ChunkSourceTest, ViewSourceHonorsChunkHint)
{
    const std::string doc = docOfSize(100);
    ViewSource src(doc, 33);
    std::vector<size_t> sizes;
    EXPECT_EQ(drain(src, 4096, &sizes), doc);
    EXPECT_EQ(sizes, (std::vector<size_t>{33, 33, 33, 1}));
}

TEST(ChunkSourceTest, SplitSourceNeverCrossesScheduledSeam)
{
    const std::string doc = docOfSize(50);
    // Seams after 10 and then every (10, 3) cycle; a huge cap must not
    // merge deliveries across a scheduled seam.
    SplitSource src(doc, std::vector<size_t>{10, 3});
    std::vector<size_t> sizes;
    EXPECT_EQ(drain(src, 4096, &sizes), doc);
    EXPECT_EQ(sizes, (std::vector<size_t>{10, 3, 10, 3, 10, 3, 10, 1}));
    EXPECT_GT(src.seams(), 0u);
}

TEST(ChunkSourceTest, SplitSourceSmallCapAddsExtraSeams)
{
    const std::string doc = docOfSize(30);
    SplitSource src(doc, std::vector<size_t>{10});
    std::vector<size_t> sizes;
    EXPECT_EQ(drain(src, 4, &sizes), doc);
    // Each scheduled 10-byte chunk is delivered as 4+4+2.
    EXPECT_EQ(sizes, (std::vector<size_t>{4, 4, 2, 4, 4, 2, 4, 4, 2}));
}

TEST(ChunkSourceTest, SplitSourceZeroScheduleEntryCountsAsOne)
{
    const std::string doc = "[1]";
    SplitSource src(doc, std::vector<size_t>{0});
    std::vector<size_t> sizes;
    EXPECT_EQ(drain(src, 4096, &sizes), doc);
    EXPECT_EQ(sizes, (std::vector<size_t>{1, 1, 1}));
}

TEST(ChunkSourceTest, IstreamSourceReadsShortFinalChunk)
{
    const std::string doc = docOfSize(70);
    std::istringstream in(doc);
    IstreamSource src(in);
    EXPECT_EQ(drain(src, 64), doc);
}

TEST(ChunkSourceTest, FileSourceReadsTmpfile)
{
    const std::string doc = docOfSize(300);
    std::FILE* f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(doc.data(), 1, doc.size(), f), doc.size());
    std::rewind(f);
    FileSource src(f);
    EXPECT_EQ(drain(src, 128), doc);
    std::fclose(f);
}

// ---------------------------------------------------------------------
// Chunked StreamCursor
// ---------------------------------------------------------------------

TEST(ChunkedCursorTest, ByteIterationMatchesInputAndCountsRefills)
{
    const std::string doc = docOfSize(1000);
    ViewSource src(doc, 64);
    StreamCursor cur(src, 64);
    std::string seen;
    while (!cur.atEnd()) {
        // Classify as a real consumer would; the classifier's resume
        // block is part of the discard floor, so an unclassified
        // stream pins the window at byte 0 by design.
        (void)cur.strings();
        seen.push_back(cur.current());
        cur.advance(1);
    }
    EXPECT_EQ(seen, doc);
    EXPECT_TRUE(cur.exhausted());
    EXPECT_TRUE(cur.chunked());
    const StreamCursor::IngestStats& s = cur.ingestStats();
    EXPECT_EQ(s.bytes_ingested, doc.size());
    EXPECT_GE(s.refills, doc.size() / 64);
    // With no holds the window must have recycled, not accumulated.
    EXPECT_GT(cur.windowBase(), 0u);
    EXPECT_LE(cur.windowCapacity(), 2 * 64u);
    EXPECT_LE(s.window_peak, 2 * 64u);
}

TEST(ChunkedCursorTest, EnsureBlockRefillsAndDetectsEnd)
{
    const std::string doc = docOfSize(130); // blocks 0, 1, partial 2
    ViewSource src(doc, 32);
    StreamCursor cur(src, 32);
    EXPECT_TRUE(cur.ensureBlock(0));
    EXPECT_TRUE(cur.ensureBlock(1));
    EXPECT_TRUE(cur.ensureBlock(2)); // partial block still has bytes
    EXPECT_FALSE(cur.ensureBlock(3));
    EXPECT_TRUE(cur.exhausted());
    EXPECT_EQ(cur.size(), doc.size());
}

TEST(ChunkedCursorTest, HoldPinsBytesAcrossRefills)
{
    const std::string doc = docOfSize(4096);
    ViewSource src(doc, 64);
    StreamCursor cur(src, 64);
    cur.setHold(0); // pin the whole stream, as a value-span emit would
    while (!cur.atEnd())
        cur.advance(64);
    EXPECT_EQ(cur.windowBase(), 0u);
    EXPECT_EQ(cur.slice(0, doc.size()), doc);
    cur.setHold(StreamCursor::kNoHold);
}

TEST(ChunkedCursorTest, PrepareTailOnMultiChunkStream)
{
    // The final block is partial and arrives in dribbles: the cursor
    // must finish refilling (hit EOF) before padding the tail block for
    // classification, or the padding would corrupt the string-layer
    // carries.  Sweep sizes around block multiples.
    jsonski::path::PathQuery q = jsonski::path::parse("$.tail");
    for (size_t n : {127u, 128u, 129u, 191u, 192u, 193u, 200u}) {
        const std::string doc = docOfSize(n);
        for (size_t sched : {1u, 7u, 64u, 97u}) {
            SplitSource src(doc, sched);
            CollectSink sink;
            StreamResult r = Streamer(q).run(src, &sink, 64);
            EXPECT_EQ(sink.values, (std::vector<std::string>{"7"}))
                << "n=" << n << " sched=" << sched;
            EXPECT_EQ(r.input_bytes, doc.size());
        }
    }
}

TEST(ChunkedCursorTest, HeldSpanLargerThanChunkGrowsWindow)
{
    // A matched value longer than the chunk must survive intact: the
    // hold forces the window to grow past its steady-state size.
    std::string big(10000, 'y');
    std::string doc = "{\"big\": \"" + big + "\", \"z\": 1}";
    jsonski::path::PathQuery q = jsonski::path::parse("$.big");
    SplitSource src(doc, 64);
    CollectSink sink;
    StreamResult r = Streamer(q).run(src, &sink, 64);
    ASSERT_EQ(sink.values.size(), 1u);
    EXPECT_EQ(sink.values[0], "\"" + big + "\"");
    EXPECT_GT(r.ingest.window_peak, big.size());
}

TEST(ChunkedCursorTest, MatchedContainersStraddleSeamsWithSpill)
{
    // Matched objects wider than a block: while one is being walked
    // for emission, the consumer hold pins its start as the position
    // crosses block boundaries, so refills must compact around a held
    // span — the seam-straddle and spill counters account for it.
    std::string doc = "[";
    for (int i = 0; i < 50; ++i) {
        if (i != 0)
            doc += ",";
        doc += "{\"i\": " + std::to_string(i) + ", \"pad\": \"" +
               std::string(180, 'p') + "\"}";
    }
    doc += "]";
    jsonski::path::PathQuery q = jsonski::path::parse("$[*]");
    SplitSource src(doc, 64);
    CollectSink sink;
    StreamResult r = Streamer(q).run(src, &sink, 64);
    ASSERT_EQ(sink.values.size(), 50u);
    EXPECT_GT(r.ingest.seam_straddles, 0u);
    EXPECT_GT(r.ingest.spill_bytes, 0u);
    // One ~200-byte element held at a time: the window stays a small
    // constant, nowhere near the ~10 KB document.
    EXPECT_LE(r.ingest.window_peak, size_t{1024});
}

// ---------------------------------------------------------------------
// Bounded-memory acceptance criterion
// ---------------------------------------------------------------------

TEST(ChunkedCursorTest, WindowPeakBoundedByTwiceChunkBytes)
{
    // ISSUE 3 acceptance: a twitter-like corpus piped through the
    // chunked path at --chunk-bytes 4096 keeps the resident buffer
    // within 2x the chunk size.
    constexpr size_t kChunk = 4096;
    const std::string doc =
        jsonski::gen::generateLarge(jsonski::gen::DatasetId::TT, 1 << 20);
    jsonski::path::PathQuery q = jsonski::path::parse("$..id");
    ViewSource src(doc, kChunk);
    CollectSink sink;
    StreamResult r = Streamer(q).run(src, &sink, kChunk);
    EXPECT_EQ(r.input_bytes, doc.size());
    EXPECT_GT(r.ingest.refills, 0u);
    EXPECT_LE(r.ingest.window_peak, 2 * kChunk)
        << "resident window exceeded 2x chunk size";
}

TEST(ChunkedCursorTest, HeapPeakStaysFarBelowDocumentSize)
{
    // Same criterion through the heap accounting hooks: streaming a
    // 1 MiB document at 4 KiB chunks must not materialize it.  The
    // budget leaves room for the window, driver state, and transient
    // allocations, but is ~8x below the document size.
    constexpr size_t kChunk = 4096;
    const std::string doc =
        jsonski::gen::generateLarge(jsonski::gen::DatasetId::TT, 1 << 20);
    ASSERT_GE(doc.size(), size_t{1} << 20);
    jsonski::path::PathQuery q = jsonski::path::parse("$..id");
    Streamer streamer(q);
    // Warm up once so one-time allocations don't count.
    {
        ViewSource warm(doc, kChunk);
        streamer.run(warm, nullptr, kChunk);
    }
    size_t base = jsonski::mem::current();
    jsonski::mem::resetPeak();
    ViewSource src(doc, kChunk);
    StreamResult r = streamer.run(src, nullptr, kChunk);
    size_t high_water = jsonski::mem::peak() - base;
    EXPECT_EQ(r.input_bytes, doc.size());
    EXPECT_LE(high_water, size_t{128} * 1024)
        << "heap high-water " << high_water
        << " bytes while streaming a " << doc.size() << "-byte document";
}

// ---------------------------------------------------------------------
// RecordReader over a ChunkSource
// ---------------------------------------------------------------------

TEST(ChunkedCursorTest, RecordReaderOverSplitSource)
{
    jsonski::gen::SmallRecords small =
        jsonski::gen::generateSmall(jsonski::gen::DatasetId::BB, 1 << 16);
    ASSERT_GT(small.count(), 1u);
    SplitSource src(small.buffer, std::vector<size_t>{997, 3});
    RecordReader reader(src, /*buffer_size=*/4096);
    std::string_view record;
    size_t i = 0;
    while (reader.next(record)) {
        ASSERT_LT(i, small.count());
        EXPECT_EQ(record, small.record(i)) << "record " << i;
        ++i;
    }
    EXPECT_EQ(i, small.count());
    EXPECT_EQ(reader.recordsRead(), small.count());
}

} // namespace
