/**
 * @file
 * Malformed-input unit suite: every public streamer / skipper / cursor
 * entry point must reject truncated, unbalanced, and unterminated
 * documents with ParseError carrying the expected ErrorCode and byte
 * position — never an assert, never a read past the input (the ASan CI
 * job enforces the latter on this same suite).
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "intervals/cursor.h"
#include "path/parser.h"
#include "ski/record_reader.h"
#include "ski/record_scanner.h"
#include "ski/skipper.h"
#include "ski/streamer.h"
#include "util/error.h"

using namespace jsonski;
using jsonski::path::parse;

namespace {

/** Run @p fn and return the ParseError it must throw. */
template <typename Fn>
ParseError
expectParseError(Fn&& fn)
{
    try {
        fn();
    } catch (const ParseError& e) {
        return e;
    }
    ADD_FAILURE() << "no ParseError thrown";
    return ParseError(ErrorCode::Unspecified, "none", 0);
}

/** Skipper fixture over a document. */
struct Fix
{
    explicit Fix(std::string text) : json(std::move(text)), cur(json), skip(cur) {}

    std::string json;
    intervals::StreamCursor cur;
    ski::Skipper skip;
};

} // namespace

TEST(MalformedSkipper, UnterminatedObjectReportsOpener)
{
    Fix f("  {\"a\": {\"b\": 1}");
    ParseError e = expectParseError([&] { f.skip.overObj(ski::Group::G2); });
    EXPECT_EQ(e.code(), ErrorCode::UnterminatedObject);
    EXPECT_EQ(e.position(), 2u); // the unmatched '{'
}

TEST(MalformedSkipper, UnterminatedArrayReportsOpener)
{
    Fix f("[1, [2, 3]");
    ParseError e = expectParseError([&] { f.skip.overAry(ski::Group::G2); });
    EXPECT_EQ(e.code(), ErrorCode::UnterminatedArray);
    EXPECT_EQ(e.position(), 0u);
}

TEST(MalformedSkipper, ToObjEndOnTruncatedInput)
{
    Fix f("\"k\": 1, \"m\": {\"x\": [");
    ParseError e = expectParseError([&] { f.skip.toObjEnd(ski::Group::G4); });
    EXPECT_EQ(e.code(), ErrorCode::UnterminatedObject);
    EXPECT_EQ(e.position(), 0u); // scan start
    EXPECT_LE(f.cur.pos(), f.cur.size()); // position never passes the end
}

TEST(MalformedSkipper, UnterminatedStringReportsOpeningQuote)
{
    Fix f("{\"a\": \"runs off the end");
    size_t quote = f.json.find(": \"") + 2;
    ParseError e = expectParseError([&] { f.skip.stringEnd(quote); });
    EXPECT_EQ(e.code(), ErrorCode::UnterminatedString);
    EXPECT_EQ(e.position(), quote);
}

TEST(MalformedSkipper, UnterminatedStringAcrossManyBlocks)
{
    Fix f("\"" + std::string(300, 'x')); // no closing quote, 5 blocks
    ParseError e = expectParseError([&] { f.skip.stringEnd(0); });
    EXPECT_EQ(e.code(), ErrorCode::UnterminatedString);
    EXPECT_EQ(e.position(), 0u);
}

TEST(MalformedSkipper, OverValueOnEmptyInput)
{
    Fix f("   ");
    ParseError e = expectParseError([&] { f.skip.overValue(ski::Group::G2); });
    EXPECT_EQ(e.code(), ErrorCode::UnexpectedEnd);
}

TEST(MalformedSkipper, ConsumeMissingPunctuation)
{
    Fix f("\"key\" 1");
    ParseError e = expectParseError([&] { f.skip.consume(':'); });
    EXPECT_EQ(e.code(), ErrorCode::ExpectedPunctuation);
    EXPECT_EQ(e.position(), 0u);
}

TEST(MalformedSkipper, ToAttrRejectsNonStringName)
{
    Fix f("42: 1}");
    ParseError e = expectParseError(
        [&] { f.skip.toAttr(ski::Skipper::TypeFilter::Any, ski::Group::G1); });
    EXPECT_EQ(e.code(), ErrorCode::BadAttributeName);
    EXPECT_EQ(e.position(), 0u);
}

TEST(MalformedSkipper, ToAttrMissingValue)
{
    Fix f("\"a\":");
    ParseError e = expectParseError(
        [&] { f.skip.toAttr(ski::Skipper::TypeFilter::Any, ski::Group::G1); });
    EXPECT_EQ(e.code(), ErrorCode::UnexpectedEnd);
    EXPECT_EQ(e.position(), f.json.size());
}

TEST(MalformedSkipper, ToAttrBatchScanHitsTruncation)
{
    // Batched primitive scan under a container filter, cut mid-run.
    Fix f("\"a\": 1, \"b\": 2, \"c\": 3");
    ParseError e = expectParseError(
        [&] { f.skip.toAttr(ski::Skipper::TypeFilter::Object, ski::Group::G1); });
    EXPECT_EQ(e.code(), ErrorCode::UnterminatedObject);
    EXPECT_LE(f.cur.pos(), f.cur.size());
}

TEST(MalformedSkipper, ElementScansOnTruncatedArray)
{
    {
        Fix f("1, 2, 3");
        size_t idx = 0;
        ParseError e = expectParseError([&] {
            f.skip.toTypedElem('{', idx, 10, ski::Group::G1);
        });
        EXPECT_EQ(e.code(), ErrorCode::UnterminatedArray);
    }
    {
        Fix f("1, 2");
        size_t idx = 0;
        ParseError e = expectParseError(
            [&] { f.skip.overElems(5, idx, ski::Group::G5); });
        EXPECT_EQ(e.code(), ErrorCode::UnterminatedArray);
    }
    {
        Fix f("7, 8, ");
        ParseError e = expectParseError(
            [&] { f.skip.toContainerElem(ski::Group::G1); });
        EXPECT_EQ(e.code(), ErrorCode::UnterminatedArray);
    }
}

TEST(MalformedSkipper, DeepUnbalancedOpeners)
{
    // Hundreds of openers, no closer: depth grows past one block's
    // worth without overflow, then the scan reports the damage.
    Fix f(std::string(500, '['));
    ParseError e = expectParseError([&] { f.skip.overAry(ski::Group::G2); });
    EXPECT_EQ(e.code(), ErrorCode::UnterminatedArray);
    EXPECT_EQ(e.position(), 0u);
    EXPECT_LE(f.cur.pos(), f.cur.size());
}

TEST(MalformedStreamer, EmptyAndTruncatedDocuments)
{
    auto q = parse("$.a.b");
    ParseError e =
        expectParseError([&] { ski::Streamer(q).run("", nullptr); });
    EXPECT_EQ(e.code(), ErrorCode::UnexpectedEnd);

    // Truncation on the match path is detected with a position.
    ParseError e2 = expectParseError(
        [&] { ski::Streamer(q).run(R"({"a": {"b": )", nullptr); });
    EXPECT_EQ(e2.code(), ErrorCode::UnexpectedEnd);
    EXPECT_LE(e2.position(), std::string(R"({"a": {"b": )").size());
}

TEST(MalformedStreamer, UnterminatedStringInAttributeName)
{
    auto q = parse("$.key");
    ParseError e = expectParseError(
        [&] { ski::Streamer(q).run(R"({"key)", nullptr); });
    EXPECT_EQ(e.code(), ErrorCode::UnterminatedString);
    EXPECT_EQ(e.position(), 1u); // the opening quote of the name
}

TEST(MalformedScanner, StrayAndUnbalancedBytes)
{
    ParseError stray =
        expectParseError([] { ski::scanRecords("{} junk {}"); });
    EXPECT_EQ(stray.code(), ErrorCode::StrayByte);
    EXPECT_EQ(stray.position(), 3u);

    ParseError unbalanced =
        expectParseError([] { ski::scanRecords("]{}"); });
    EXPECT_EQ(unbalanced.code(), ErrorCode::UnbalancedClose);
    EXPECT_EQ(unbalanced.position(), 0u);

    ParseError tail = expectParseError([] { ski::scanRecords("{} [1,"); });
    EXPECT_EQ(tail.code(), ErrorCode::UnterminatedRecord);
}

TEST(MalformedReader, TruncatedTrailingRecord)
{
    std::istringstream in("{\"ok\":1}\n{\"cut\":");
    ski::RecordReader reader(in, 64);
    std::string_view rec;
    ASSERT_TRUE(reader.next(rec));
    ParseError e = expectParseError([&] { reader.next(rec); });
    EXPECT_EQ(e.code(), ErrorCode::UnterminatedRecord);
}

TEST(MalformedContract, PositionsNeverPassTheInput)
{
    // A grab bag of damaged documents: whatever throws must carry a
    // position inside [0, size].
    const char* docs[] = {
        "{",           "[",          "{\"a\"",      "{\"a\":",
        "{\"a\":1",    "[1,",        "\"abc",       "{]",
        "[}",          "{\"a\":[1}", "[{\"b\":2]",  "{{{{",
        "]]]]",        "{\"a\" 1}",  "nul",         "",
    };
    auto q = parse("$.a[0]");
    for (const char* doc : docs) {
        try {
            ski::Streamer(q).run(doc, nullptr);
        } catch (const ParseError& e) {
            EXPECT_LE(e.position(), std::string(doc).size()) << doc;
            EXPECT_NE(e.code(), ErrorCode::Unspecified) << doc;
        }
    }
}
