/** @file Tests for the heap-accounting hooks (linked via jsonski_memhook). */
#include "util/mem_stats.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace mem = jsonski::mem;

namespace {

/**
 * True when the global new/delete replacements are actually active.
 * Sanitizer builds intercept the allocator before our hooks, leaving
 * the counters untouched; the accounting tests then do not apply.
 */
bool
hooksActive()
{
    size_t before = mem::current();
    auto* p = new char[4096];
    // Keep the optimizer from eliding the allocation pair entirely
    // (permitted since C++14), which would fake an inactive hook.
    asm volatile("" : : "g"(p) : "memory");
    bool active = mem::current() > before;
    delete[] p;
    return active;
}

} // namespace

#define REQUIRE_HOOKS()                                                   \
    if (!hooksActive())                                                   \
    GTEST_SKIP() << "allocation hooks inactive (sanitizer build)"

TEST(MemStats, NewIncreasesCurrent)
{
    REQUIRE_HOOKS();
    size_t before = mem::current();
    auto p = std::make_unique<char[]>(1 << 20);
    EXPECT_GE(mem::current(), before + (1 << 20));
    p.reset();
    EXPECT_LT(mem::current(), before + (1 << 20));
}

TEST(MemStats, PeakTracksHighWater)
{
    REQUIRE_HOOKS();
    mem::resetPeak();
    size_t base = mem::peak();
    {
        std::vector<char> big(4 << 20);
        EXPECT_GE(mem::peak(), base + (4 << 20));
    }
    // Peak persists after the allocation is gone.
    EXPECT_GE(mem::peak(), base + (4 << 20));
}

TEST(MemStats, ResetPeakDropsToCurrent)
{
    {
        std::vector<char> big(2 << 20);
    }
    mem::resetPeak();
    EXPECT_EQ(mem::peak(), mem::current());
}

TEST(MemStats, BalancedAllocFree)
{
    mem::resetPeak();
    size_t before = mem::current();
    for (int i = 0; i < 100; ++i) {
        auto* p = new int[256];
        delete[] p;
    }
    EXPECT_EQ(mem::current(), before);
}
