/** @file Tests for the JPStream-style character-by-character baseline. */
#include "baseline/jpstream/engine.h"

#include <gtest/gtest.h>

#include "baseline/jpstream/tokenizer.h"
#include "path/parser.h"
#include "util/error.h"

using namespace jsonski::jpstream;
using jsonski::ParseError;
using jsonski::ThreadPool;
using jsonski::path::CollectSink;
using jsonski::path::parse;

namespace {

/** Collect SAX events as strings for structural assertions. */
struct EventLog
{
    std::vector<std::string> events;
    std::string_view input;

    void onObjectStart(size_t) { events.push_back("{"); }
    void onObjectEnd(size_t) { events.push_back("}"); }
    void onArrayStart(size_t) { events.push_back("["); }
    void onArrayEnd(size_t) { events.push_back("]"); }
    void onKey(std::string_view k) { events.push_back("K:" + std::string(k)); }
    void
    onPrimitive(size_t b, size_t e)
    {
        events.push_back("P:" + std::string(input.substr(b, e - b)));
    }
};

std::vector<std::string>
sax(std::string_view json)
{
    EventLog log;
    log.input = json;
    saxParse(json, log);
    return log.events;
}

} // namespace

TEST(SaxParser, EventOrder)
{
    auto ev = sax(R"({"a": [1, {"b": "x"}], "c": null})");
    std::vector<std::string> expected = {
        "{", "K:a", "[", "P:1", "{", "K:b", "P:\"x\"", "}", "]",
        "K:c", "P:null", "}",
    };
    EXPECT_EQ(ev, expected);
}

TEST(SaxParser, EmptyContainers)
{
    EXPECT_EQ(sax("{}"), (std::vector<std::string>{"{", "}"}));
    EXPECT_EQ(sax("[]"), (std::vector<std::string>{"[", "]"}));
    EXPECT_EQ(sax(R"({"a":{}})"),
              (std::vector<std::string>{"{", "K:a", "{", "}", "}"}));
}

TEST(SaxParser, RootPrimitive)
{
    EXPECT_EQ(sax("42"), (std::vector<std::string>{"P:42"}));
    EXPECT_EQ(sax("\"s\""), (std::vector<std::string>{"P:\"s\""}));
}

TEST(SaxParser, Malformed)
{
    EXPECT_THROW(sax(""), ParseError);
    EXPECT_THROW(sax("{"), ParseError);
    EXPECT_THROW(sax("{\"a\"}"), ParseError);
    EXPECT_THROW(sax("[1,]"), ParseError);
    EXPECT_THROW(sax("[1] extra"), ParseError);
    EXPECT_THROW(sax("{\"a\":1"), ParseError);
}

TEST(JpStreamEngine, BasicQueries)
{
    Engine e(parse("$.place.name"));
    std::string json =
        R"({"user":{"name":"u"},"place":{"name":"Manhattan"}})";
    CollectSink sink;
    EXPECT_EQ(e.run(json, &sink), 1u);
    EXPECT_EQ(sink.values, (std::vector<std::string>{"\"Manhattan\""}));
}

TEST(JpStreamEngine, WildcardAndSlice)
{
    Engine e(parse("$[1:3].v"));
    std::string json = R"([{"v":0},{"v":1},{"v":2},{"v":3}])";
    CollectSink sink;
    EXPECT_EQ(e.run(json, &sink), 2u);
    EXPECT_EQ(sink.values, (std::vector<std::string>{"1", "2"}));
}

TEST(JpStreamEngine, ContainerMatchEmitsWholeSubtree)
{
    Engine e(parse("$.a"));
    std::string json = R"({"a": {"b": [1, 2, {"c": 3}]}})";
    CollectSink sink;
    EXPECT_EQ(e.run(json, &sink), 1u);
    EXPECT_EQ(sink.values[0], R"({"b": [1, 2, {"c": 3}]})");
}

TEST(JpStreamEngine, CountsDeepMatches)
{
    Engine e(parse("$.dt[*][*][2:4]"));
    std::string json = R"({"dt":[[[1,2,3,4],[5,6,7,8]],[[9,10,11,12]]]})";
    EXPECT_EQ(e.run(json), 6u);
}

TEST(TokenSplits, CoverInputAndAlignToStructure)
{
    std::string json = "[";
    for (int i = 0; i < 600; ++i)
        json += R"({"k)" + std::to_string(i) + R"(":"val "},)";
    json += "{}]";
    auto splits = tokenSplits(json, 4);
    ASSERT_GE(splits.size(), 3u);
    EXPECT_EQ(splits.front(), 0u);
    EXPECT_EQ(splits.back(), json.size());
    for (size_t i = 1; i + 1 < splits.size(); ++i) {
        EXPECT_GT(splits[i], splits[i - 1]);
        char c = json[splits[i]];
        EXPECT_TRUE(c == '{' || c == '}' || c == '[' || c == ']' ||
                    c == ':' || c == ',')
            << c;
    }
}

TEST(TokenSplits, NeverSplitsInsideStrings)
{
    // Long strings containing structural chars right around the
    // nominal boundaries.
    std::string json = "[\"" + std::string(400, ',') + "\",\"" +
                       std::string(400, '}') + "\",123]";
    auto splits = tokenSplits(json, 4);
    EXPECT_EQ(splits.back(), json.size());
    Engine e(parse("$[2]"));
    ThreadPool pool(4);
    EXPECT_EQ(e.runParallel(json, pool), 1u);
}

TEST(TokenizeChunk, RoundTrip)
{
    std::string json = R"({"a": [1, "two", {"b": null}], "c": -7.5})";
    std::vector<Token> tokens;
    tokenizeChunk(json, 0, json.size(), tokens);
    ASSERT_FALSE(tokens.empty());
    EXPECT_EQ(tokens.front().type, Token::Type::ObjStart);
    EXPECT_EQ(tokens.back().type, Token::Type::ObjEnd);
    // Reconstructing the token texts must reproduce the non-ws input.
    std::string compact;
    for (const Token& t : tokens)
        compact += json.substr(t.begin, t.end - t.begin);
    std::string expected;
    bool in_str = false;
    for (size_t i = 0; i < json.size(); ++i) {
        char c = json[i];
        if (c == '"')
            in_str = !in_str;
        if (in_str || !jsonski::json::isWhitespace(c))
            expected += c;
    }
    EXPECT_EQ(compact, expected);
}

TEST(JpStreamEngine, ParallelMatchesSerial)
{
    std::string json = "[";
    for (int i = 0; i < 500; ++i) {
        json += R"({"id":)" + std::to_string(i) +
                R"(,"tags":["a","b"],"info":{"v":)" + std::to_string(i % 7) +
                "}},";
    }
    json += R"({"id":-1,"info":{"v":0}}])";
    for (const char* q : {"$[*].info.v", "$[10:20].id", "$[*].tags[1]"}) {
        Engine e(parse(q));
        size_t serial = e.run(json);
        ThreadPool pool(4);
        size_t parallel = e.runParallel(json, pool);
        EXPECT_EQ(serial, parallel) << q;
        EXPECT_GT(serial, 0u) << q;
    }
}
