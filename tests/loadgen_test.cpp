/**
 * @file
 * Load-generator tests (service/loadgen.h): the log-linear latency
 * histogram's bucketing contract (exactness below 128 µs, bounded
 * relative error above, conservative percentiles, lossless merge) and
 * runLoad() end to end against an in-process sharded server in both
 * closed- and open-loop modes.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "service/loadgen.h"
#include "service/server.h"

using namespace jsonski;
using namespace jsonski::service;

namespace {

TEST(LatencyHistogram, SmallValuesAreExact)
{
    LatencyHistogram h;
    for (uint64_t v = 0; v < 128; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 128u);
    EXPECT_EQ(h.maxValue(), 127u);
    // Each recorded value is its own bucket: the p covering exactly
    // the first k samples reports k-1.
    EXPECT_EQ(h.percentile(100.0 * 1 / 128), 0u);
    EXPECT_EQ(h.percentile(100.0 * 64 / 128), 63u);
    EXPECT_EQ(h.percentile(100), 127u);
}

TEST(LatencyHistogram, RelativeErrorIsBoundedAtEveryMagnitude)
{
    // One sample per magnitude: the reported p100 upper bound may
    // round up, but never by more than one sub-bucket (1/64 ≈ 1.6%).
    const std::vector<uint64_t> magnitudes = {
        129, 1000, 4096, 123456, 9999999, uint64_t{1} << 40};
    for (uint64_t v : magnitudes) {
        LatencyHistogram h;
        h.record(v);
        uint64_t p = h.percentile(100);
        EXPECT_GE(p, v - v / 64);
        EXPECT_LE(p, v); // clamped to the observed max
    }
}

TEST(LatencyHistogram, PercentilesAreMonotonicAndMergeIsLossless)
{
    LatencyHistogram a, b;
    for (uint64_t v = 1; v <= 1000; ++v)
        (v % 2 == 0 ? a : b).record(v * 100);
    LatencyHistogram merged;
    merged.merge(a);
    merged.merge(b);
    EXPECT_EQ(merged.count(), 1000u);
    EXPECT_EQ(merged.maxValue(), 100000u);
    uint64_t prev = 0;
    for (double p : {10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
        uint64_t v = merged.percentile(p);
        EXPECT_GE(v, prev) << "p" << p;
        prev = v;
    }
    // p50 of a uniform 100..100000 grid lands near 50000 (± bucket).
    EXPECT_NEAR(static_cast<double>(merged.percentile(50)), 50000.0,
                50000.0 / 32);
}

TEST(LatencyHistogram, EmptyReportsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
}

TEST(LoadGen, ClosedLoopDrivesShardedServer)
{
    ServerConfig cfg;
    cfg.shards = 2;
    cfg.workers = 1;
    Server server(cfg);
    server.start();

    LoadOptions opt;
    opt.port = server.port();
    opt.query = "$.a[*]";
    opt.body = R"({"a": [1, 2, 3]})";
    opt.connections = 2;
    opt.duration_ms = 300;
    LoadResult r = runLoad(opt);

    EXPECT_GT(r.attempted, 0u);
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(r.ok, r.attempted);
    EXPECT_EQ(r.matches, r.ok * 3);
    EXPECT_EQ(r.latency.count(), r.attempted);
    EXPECT_GT(r.throughput_rps, 0.0);
    EXPECT_EQ(server.stats().responses_ok, r.ok);
    server.stop();
}

TEST(LoadGen, OpenLoopRunsTheFullSchedule)
{
    ServerConfig cfg;
    cfg.shards = 1;
    Server server(cfg);
    server.start();

    LoadOptions opt;
    opt.port = server.port();
    opt.query = "$.a";
    opt.body = R"({"a": 1})";
    opt.connections = 2;
    opt.qps = 100;
    opt.duration_ms = 300;
    LoadResult r = runLoad(opt);

    // Open loop: every scheduled request before the end mark is
    // attempted even if the server lags — that is the point.
    uint64_t scheduled = static_cast<uint64_t>(opt.qps * 0.3);
    EXPECT_EQ(r.attempted, scheduled);
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(r.latency.count(), r.attempted);
    server.stop();
}

} // namespace
