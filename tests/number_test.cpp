/** @file Tests for JSON number decoding. */
#include "json/number.h"

#include <gtest/gtest.h>

#include <cmath>

using jsonski::json::Number;
using jsonski::json::parseNumber;

TEST(Number, Integers)
{
    auto n = parseNumber("42");
    ASSERT_TRUE(n.isInt());
    EXPECT_EQ(n.i, 42);
    EXPECT_EQ(n.asDouble(), 42.0);

    EXPECT_EQ(parseNumber("0").i, 0);
    EXPECT_EQ(parseNumber("-7").i, -7);
    EXPECT_EQ(parseNumber("9223372036854775807").i, INT64_MAX);
    EXPECT_EQ(parseNumber("-9223372036854775808").i, INT64_MIN);
}

TEST(Number, Int64MinStaysIntegral)
{
    // INT64_MIN's magnitude exceeds INT64_MAX, so a naive
    // negate-after-parse scheme overflows; the decoder must still
    // classify it as Kind::Int, not fall back to an inexact double.
    auto n = parseNumber("-9223372036854775808");
    ASSERT_TRUE(n.isInt());
    EXPECT_EQ(n.i, INT64_MIN);
    // One past the minimum no longer fits and must become a double.
    auto over = parseNumber("-9223372036854775809");
    ASSERT_TRUE(over.isDouble());
    EXPECT_NEAR(over.d, -9.223372036854776e18, 1e4);
}

TEST(Number, IntegerOverflowBecomesDouble)
{
    auto n = parseNumber("9223372036854775808"); // INT64_MAX + 1
    ASSERT_TRUE(n.isDouble());
    EXPECT_NEAR(n.d, 9.223372036854776e18, 1e4);
}

TEST(Number, Doubles)
{
    EXPECT_DOUBLE_EQ(parseNumber("3.25").d, 3.25);
    EXPECT_DOUBLE_EQ(parseNumber("-0.5").d, -0.5);
    EXPECT_DOUBLE_EQ(parseNumber("1e3").d, 1000.0);
    EXPECT_DOUBLE_EQ(parseNumber("1E+3").d, 1000.0);
    EXPECT_DOUBLE_EQ(parseNumber("2.5e-2").d, 0.025);
    EXPECT_TRUE(parseNumber("1.0").isDouble()); // fraction => double
}

TEST(Number, ExtremeDoubles)
{
    EXPECT_TRUE(parseNumber("1e308"));
    EXPECT_TRUE(parseNumber("1e-308"));
    EXPECT_TRUE(parseNumber("1e999"));
}

TEST(Number, OverflowSaturatesToSignedInfinity)
{
    // Policy: grammar-valid magnitudes beyond double range decode to
    // +/-inf (and underflow to ~0), never to a silent unrelated value.
    auto big = parseNumber("1e999");
    ASSERT_TRUE(big.isDouble());
    EXPECT_TRUE(std::isinf(big.d));
    EXPECT_GT(big.d, 0.0);

    auto neg = parseNumber("-1e999");
    ASSERT_TRUE(neg.isDouble());
    EXPECT_TRUE(std::isinf(neg.d));
    EXPECT_LT(neg.d, 0.0);

    auto tiny = parseNumber("1e-999");
    ASSERT_TRUE(tiny.isDouble());
    EXPECT_GE(tiny.d, 0.0);
    EXPECT_LT(tiny.d, 1e-300);
}

TEST(Number, RejectsNonNumbers)
{
    EXPECT_FALSE(parseNumber(""));
    EXPECT_FALSE(parseNumber("abc"));
    EXPECT_FALSE(parseNumber("01"));    // leading zero
    EXPECT_FALSE(parseNumber("-01"));
    EXPECT_FALSE(parseNumber("1."));    // missing fraction digits
    EXPECT_FALSE(parseNumber(".5"));    // missing integer part
    EXPECT_FALSE(parseNumber("1e"));    // missing exponent
    EXPECT_FALSE(parseNumber("+1"));    // no leading plus in JSON
    EXPECT_FALSE(parseNumber("1 "));    // trailing junk
    EXPECT_FALSE(parseNumber(" 1"));
    EXPECT_FALSE(parseNumber("0x10"));
    EXPECT_FALSE(parseNumber("NaN"));
    EXPECT_FALSE(parseNumber("Infinity"));
    EXPECT_FALSE(parseNumber("--1"));
    EXPECT_FALSE(parseNumber("1.2.3"));
}

TEST(Number, InvalidDefaultState)
{
    Number n;
    EXPECT_FALSE(n);
    EXPECT_FALSE(n.isInt());
    EXPECT_FALSE(n.isDouble());
}
