/**
 * @file
 * Tier-1 chunk-seam differential rig: the chunked ingestion path must
 * be observationally identical to the whole-buffer path — values byte
 * for byte, error class and position, and FastForwardStats totals — at
 * every chunk size in the ladder, over the full fuzz corpus and query
 * mix (ISSUE 3 acceptance criterion).
 */
#include <gtest/gtest.h>

#include "intervals/chunk_source.h"
#include "ski/multi.h"
#include "path/parser.h"
#include "testing/differential.h"
#include "testing/seam.h"

namespace {

using jsonski::testing::defaultCorpus;
using jsonski::testing::defaultQueries;
using jsonski::testing::runSeamDifferential;
using jsonski::testing::runStreamerChunked;
using jsonski::testing::runStreamerWhole;
using jsonski::testing::SeamReport;
using jsonski::testing::SeamRun;

/** The ISSUE 3 chunk-size ladder; 0 = whole document in one chunk. */
const std::vector<size_t> kChunkSizes = {1, 2, 7, 63, 64, 65, 4096, 0};

TEST(ChunkedDifferential, CorpusTimesQueriesTimesChunkSizes)
{
    SeamReport report = runSeamDifferential(defaultCorpus(),
                                            defaultQueries(), kChunkSizes);
    for (const std::string& f : report.failures)
        ADD_FAILURE() << f;
    EXPECT_TRUE(report.ok());
    EXPECT_GT(report.comparisons, 0u);
}

TEST(ChunkedDifferential, MalformedDocumentsKeepErrorPositions)
{
    // Truncations and stray bytes: the error the engine reports must
    // not depend on chunking.
    std::vector<std::string> docs = {
        R"({"a": [1, 2, {"b": "unterminated)",
        R"({"a": {"b": 1})",
        R"([1, 2, 3)",
        R"({"a" 1})",
        R"({"k": "esc\)",
        "[" + std::string(200, '['),
    };
    SeamReport report =
        runSeamDifferential(docs, defaultQueries(), kChunkSizes);
    for (const std::string& f : report.failures)
        ADD_FAILURE() << f;
    EXPECT_TRUE(report.ok());
}

TEST(ChunkedDifferential, AdversarialSchedulesMatchWholeBuffer)
{
    // Mixed schedules, including pathological 1-byte dribbles between
    // larger chunks, so seams land at shifting offsets.
    const std::string doc =
        R"({"users": [{"id": 1, "name": "a\"b\\c"}, )"
        R"({"id": 22, "name": "éè"}, )"
        R"({"id": 333, "tags": ["x", "y,z", "{"]}], "total": 3})";
    jsonski::path::PathQuery q = jsonski::path::parse("$.users[*].id");
    SeamRun whole = runStreamerWhole(doc, q);
    ASSERT_FALSE(whole.threw_parse_error);
    ASSERT_EQ(whole.values, (std::vector<std::string>{"1", "22", "333"}));

    const std::vector<std::vector<size_t>> schedules = {
        {1, 64}, {3, 1, 5}, {64, 1}, {7}, {2, 2, 61},
    };
    for (const auto& sched : schedules) {
        for (size_t chunk : {size_t{16}, size_t{64}, size_t{4096}}) {
            SeamRun chunked = runStreamerChunked(doc, q, sched, chunk);
            EXPECT_FALSE(chunked.threw_parse_error);
            EXPECT_EQ(chunked.values, whole.values);
            EXPECT_EQ(chunked.stats.skipped, whole.stats.skipped);
        }
    }
}

TEST(ChunkedDifferential, MultiStreamerChunkedMatchesWhole)
{
    const std::string doc =
        R"({"a": {"x": [10, 20, 30], "y": "s"}, )"
        R"("b": [{"x": 1}, {"x": 2}], "c": "tail"})";
    std::vector<jsonski::path::PathQuery> queries;
    queries.push_back(jsonski::path::parse("$.a.x[1]"));
    queries.push_back(jsonski::path::parse("$.b[*].x"));
    queries.push_back(jsonski::path::parse("$.c"));
    jsonski::ski::MultiStreamer ms(queries);

    jsonski::ski::MultiCollectSink whole_sink(queries.size());
    jsonski::ski::MultiStreamer::Result whole = ms.run(doc, &whole_sink);

    for (size_t chunk : {size_t{1}, size_t{7}, size_t{64}, size_t{4096}}) {
        jsonski::intervals::SplitSource src(doc, chunk);
        jsonski::ski::MultiCollectSink sink(queries.size());
        jsonski::ski::MultiStreamer::Result r = ms.run(src, &sink, chunk);
        EXPECT_EQ(r.matches, whole.matches) << "chunk=" << chunk;
        EXPECT_EQ(sink.values, whole_sink.values) << "chunk=" << chunk;
        EXPECT_EQ(r.stats.skipped, whole.stats.skipped)
            << "chunk=" << chunk;
        EXPECT_EQ(r.input_bytes, doc.size());
    }
}

} // namespace
