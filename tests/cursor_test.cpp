/** @file Tests for the forward-only stream cursor. */
#include "intervals/cursor.h"

#include <gtest/gtest.h>

#include <string>

using namespace jsonski::intervals;

TEST(Cursor, BasicAccess)
{
    std::string s = R"({"a": 1})";
    StreamCursor cur(s);
    EXPECT_EQ(cur.pos(), 0u);
    EXPECT_EQ(cur.size(), s.size());
    EXPECT_EQ(cur.current(), '{');
    EXPECT_EQ(cur.at(1), '"');
    EXPECT_EQ(cur.slice(1, 4), "\"a\"");
}

TEST(Cursor, BlockBitsForSmallInput)
{
    std::string s = R"({"a": 1})";
    StreamCursor cur(s);
    const BlockBits& b = cur.block();
    EXPECT_EQ(b.open_brace, 1u);
    EXPECT_EQ((b.close_brace >> 7) & 1, 1u);
}

TEST(Cursor, LazySequentialClassification)
{
    std::string s(300, ' ');
    s[0] = '{';
    s[150] = ':';
    s[299] = '}';
    StreamCursor cur(s);
    EXPECT_EQ(cur.classifiedBlocks(), 0u);
    cur.block();
    EXPECT_EQ(cur.classifiedBlocks(), 1u);
    cur.setPos(150);
    const BlockBits& b = cur.block();
    EXPECT_EQ(cur.classifiedBlocks(), 3u); // blocks 0..2
    EXPECT_NE(b.colon, 0u);
}

TEST(Cursor, InStringStateSurvivesBlockSkips)
{
    // Open a string in block 0 that closes in block 2; a '{' in block 1
    // must be masked even if we jump straight to block 2.
    std::string s = "[\"";
    s += std::string(70, 'a');
    s += "{";                    // inside the string (block 1)
    s += std::string(70, 'b');
    s += "\", {\"k\": 1}]";
    StreamCursor cur(s);
    cur.setPos(140); // in block 2
    (void)cur.block();
    // Reading block 1 is no longer possible (forward-only), but the
    // carry must have flowed through it: check block 2's bits.
    size_t brace_pos = s.find("{\"k\"");
    cur.setPos(brace_pos);
    const BlockBits& b = cur.block();
    EXPECT_NE(b.open_brace & (uint64_t{1} << (brace_pos % 64)), 0u);
}

TEST(Cursor, MaskFromPos)
{
    std::string s(64, ',');
    StreamCursor cur(s);
    cur.setPos(10);
    uint64_t m = cur.maskFromPos(cur.block().comma);
    EXPECT_EQ(m, ~uint64_t{0} << 10);
}

TEST(Cursor, SkipWhitespaceWithinBlock)
{
    std::string s = "   \t\n  {\"a\":1}";
    StreamCursor cur(s);
    EXPECT_EQ(cur.skipWhitespace(), '{');
    EXPECT_EQ(cur.pos(), s.find('{'));
}

TEST(Cursor, SkipWhitespaceAcrossBlocks)
{
    std::string s(200, ' ');
    s += '[';
    StreamCursor cur(s);
    EXPECT_EQ(cur.skipWhitespace(), '[');
    EXPECT_EQ(cur.pos(), 200u);
}

TEST(Cursor, SkipWhitespaceToEnd)
{
    std::string s = "1   ";
    StreamCursor cur(s);
    cur.setPos(1);
    EXPECT_EQ(cur.skipWhitespace(), '\0');
    EXPECT_TRUE(cur.atEnd());
}

TEST(Cursor, SkipWhitespaceNoWhitespace)
{
    std::string s = "123";
    StreamCursor cur(s);
    EXPECT_EQ(cur.skipWhitespace(), '1');
    EXPECT_EQ(cur.pos(), 0u);
}

TEST(Cursor, AtEndAfterAdvance)
{
    std::string s = "{}";
    StreamCursor cur(s);
    cur.advance(2);
    EXPECT_TRUE(cur.atEnd());
}
