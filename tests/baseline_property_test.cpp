/**
 * @file
 * Structural property tests for the baseline engines' internals:
 * tape skip-links must partition containers exactly, the leveled
 * index's nextBit must agree with a naive scan, and the two dataset
 * formats (large record vs small records) must contain the same
 * matches.
 */
#include <gtest/gtest.h>

#include "baseline/pison/leveled_index.h"
#include "baseline/tape/query.h"
#include "gen/datasets.h"
#include "json/validate.h"
#include "json/writer.h"
#include "path/parser.h"
#include "ski/streamer.h"
#include "util/rng.h"

using namespace jsonski;

namespace {

void
genValue(Rng& rng, json::Writer& w, int depth)
{
    double shape = rng.real();
    if (depth <= 0 || shape < 0.45) {
        if (rng.chance(0.3))
            w.string(rng.ident(1 + rng.below(10)));
        else
            w.number(rng.range(-1000, 1000));
    } else if (shape < 0.75) {
        w.beginObject();
        size_t n = rng.below(4);
        for (size_t i = 0; i < n; ++i) {
            w.key("k" + std::to_string(i));
            genValue(rng, w, depth - 1);
        }
        w.endObject();
    } else {
        w.beginArray();
        size_t n = rng.below(5);
        for (size_t i = 0; i < n; ++i)
            genValue(rng, w, depth - 1);
        w.endArray();
    }
}

std::string
genDoc(Rng& rng)
{
    json::Writer w;
    w.beginObject();
    w.key("root");
    genValue(rng, w, 5);
    w.endObject();
    return w.take();
}

} // namespace

TEST(TapeProperty, SkipLinksPartitionContainers)
{
    Rng rng(77);
    for (int iter = 0; iter < 200; ++iter) {
        std::string doc = genDoc(rng);
        tape::Tape t =
            tape::buildTape(doc, tape::buildStructuralIndex(doc));
        // Walk every container: children found via skip() must land
        // exactly on the container's end entry.
        for (size_t i = 0; i < t.words.size(); i += tape::Tape::kNodeWords) {
            tape::TapeType ty = t.typeAt(i);
            if (ty != tape::TapeType::ObjStart &&
                ty != tape::TapeType::AryStart)
                continue;
            size_t end_idx = static_cast<size_t>(t.payloadAt(i)) -
                             tape::Tape::kNodeWords;
            size_t cur = i + tape::Tape::kNodeWords;
            while (cur < end_idx) {
                if (ty == tape::TapeType::ObjStart) {
                    ASSERT_EQ(t.typeAt(cur), tape::TapeType::Key) << doc;
                    cur = t.skip(cur + tape::Tape::kNodeWords);
                } else {
                    cur = t.skip(cur);
                }
            }
            ASSERT_EQ(cur, end_idx) << doc;
            // The end entry must point back at the start.
            ASSERT_EQ(t.payloadAt(end_idx), i);
        }
    }
}

TEST(TapeProperty, TextAtRoundTripsWholeDocument)
{
    Rng rng(78);
    for (int iter = 0; iter < 100; ++iter) {
        std::string doc = genDoc(rng);
        tape::Tape t =
            tape::buildTape(doc, tape::buildStructuralIndex(doc));
        EXPECT_EQ(t.textAt(t.root, doc), doc);
    }
}

TEST(PisonProperty, NextBitMatchesNaiveScan)
{
    Rng rng(79);
    for (int iter = 0; iter < 100; ++iter) {
        std::string doc = genDoc(rng);
        pison::LeveledIndex ix = pison::LeveledIndex::build(doc, 2);
        for (size_t level = 0; level < 2; ++level) {
            const auto& bm = ix.colons(level);
            // Collect positions naively.
            std::vector<size_t> naive;
            for (size_t w = 0; w < bm.size(); ++w) {
                for (int b = 0; b < 64; ++b) {
                    if ((bm[w] >> b) & 1)
                        naive.push_back(w * 64 + static_cast<size_t>(b));
                }
            }
            // nextBit must enumerate exactly those.
            size_t from = 0;
            for (size_t expect : naive) {
                size_t got =
                    pison::LeveledIndex::nextBit(bm, from, doc.size());
                ASSERT_EQ(got, expect);
                from = got + 1;
            }
            EXPECT_EQ(pison::LeveledIndex::nextBit(bm, from, doc.size()),
                      doc.size());
        }
    }
}

TEST(GenProperty, SmallAndLargeFormatsHoldTheSameMatches)
{
    using gen::DatasetId;
    struct Case
    {
        DatasetId id;
        const char* large;
        const char* small;
    };
    const Case cases[] = {
        {DatasetId::TT, "$[*].text", "$.text"},
        {DatasetId::BB, "$.pd[*].cp[1:3].id", "$.cp[1:3].id"},
        {DatasetId::GMD, "$[*].rt[*].lg[*].st[*].dt.tx",
         "$.rt[*].lg[*].st[*].dt.tx"},
        {DatasetId::NSPL, "$.dt[*][*][2:4]", "$[*][2:4]"},
        {DatasetId::WM, "$.it[*].nm", "$.nm"},
        {DatasetId::WP, "$[*].cl.P150[*].ms.pty", "$.cl.P150[*].ms.pty"},
    };
    for (const Case& c : cases) {
        std::string large = gen::generateLarge(c.id, 256 * 1024);
        gen::SmallRecords small = gen::generateSmall(c.id, 256 * 1024);
        size_t large_matches = ski::query(large, c.large).count;
        ski::Streamer per_record(path::parse(c.small));
        size_t small_matches = 0;
        for (size_t i = 0; i < small.count(); ++i)
            small_matches += per_record.run(small.record(i)).matches;
        // Same seed, same record sequence; the wrappers may differ by
        // one record at the size cutoff.
        double ratio = static_cast<double>(large_matches) /
                       static_cast<double>(std::max<size_t>(
                           small_matches, 1));
        EXPECT_GT(ratio, 0.9) << gen::datasetName(c.id);
        EXPECT_LT(ratio, 1.1) << gen::datasetName(c.id);
    }
}
