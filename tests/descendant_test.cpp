/**
 * @file
 * Tests for the descendant operator extension (`$..name`, any step
 * position): JSONSki semantics, pre-order emission and multiset
 * multiplicity, cross-engine agreement (JSONSki / JPStream / DOM /
 * tape), and the documented restrictions (Pison rejects `..`; tape
 * and JPStream support only the terminal form).
 */
#include <gtest/gtest.h>

#include "baseline/dom/query.h"
#include "baseline/jpstream/engine.h"
#include "baseline/pison/query.h"
#include "baseline/tape/query.h"
#include "json/validate.h"
#include "json/writer.h"
#include "path/parser.h"
#include "ski/multi.h"
#include "ski/streamer.h"
#include "util/error.h"
#include "util/rng.h"

using namespace jsonski;
using jsonski::path::parse;

namespace {

std::vector<std::string>
ski_values(std::string_view json, const char* q)
{
    auto r = ski::query(json, q, /*collect=*/true);
    return r.values;
}

} // namespace

TEST(Descendant, ParserAcceptsAnyPosition)
{
    auto q = parse("$..name");
    ASSERT_EQ(q.size(), 1u);
    EXPECT_EQ(q[0].kind, path::PathStep::Kind::Descendant);
    EXPECT_EQ(q.toString(), "$..name");
    EXPECT_TRUE(q.hasDescendant());
    EXPECT_TRUE(q.hasTerminalDescendant());
    EXPECT_FALSE(q.hasInteriorDescendant());

    EXPECT_NO_THROW(parse("$.a[*]..name"));
    // Non-terminal descendant steps are supported since the multiset
    // driver landed (DESIGN.md §13).
    auto interior = parse("$..a.b");
    EXPECT_TRUE(interior.hasInteriorDescendant());
    EXPECT_FALSE(interior.hasTerminalDescendant());
    EXPECT_EQ(interior.toString(), "$..a.b");
    EXPECT_EQ(parse("$..a[0]").toString(), "$..a[0]");
    EXPECT_EQ(parse("$..a..b").toString(), "$..a..b");
    EXPECT_EQ(parse("$..['odd key']").toString(), "$..['odd key']");
    EXPECT_THROW(parse("$.."), PathError);
}

TEST(Descendant, InteriorKeyStep)
{
    // `$..a.b`: every `a` at any depth, then its direct child `b` —
    // document order, including an `a` nested inside another `a`.
    std::string json =
        R"({"a": {"a": {"b": 1}, "b": 2}, "x": {"a": {"b": 3}}})";
    EXPECT_EQ(ski_values(json, "$..a.b"),
              (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Descendant, InteriorIndexStep)
{
    std::string json =
        R"({"a": [10, 20, 30], "o": {"a": [{"b": 5}, {"b": 6}]}})";
    EXPECT_EQ(ski_values(json, "$..a[2]"),
              (std::vector<std::string>{"30"}));
    EXPECT_EQ(ski_values(json, "$..a[1].b"),
              (std::vector<std::string>{"6"}));
    EXPECT_EQ(ski_values(json, "$..a[*].b"),
              (std::vector<std::string>{"5", "6"}));
}

TEST(Descendant, DoubleDescendantMultiplicity)
{
    // `$..a..b`: one value is reported once per accepting path.  The
    // inner b is reachable via BOTH a-ancestors, so it appears twice,
    // consecutively (document pre-order, duplicates adjacent).
    std::string json = R"({"a": {"a": {"b": 1}}})";
    EXPECT_EQ(ski_values(json, "$..a..b"),
              (std::vector<std::string>{"1", "1"}));
    // DOM oracle agrees on the multiset semantics.
    auto q = parse("$..a..b");
    path::CollectSink dom_sink;
    dom::parseAndQuery(json, q, &dom_sink);
    EXPECT_EQ(dom_sink.values,
              (std::vector<std::string>{"1", "1"}));
}

TEST(Descendant, InteriorEnginesAgree)
{
    std::string json = R"({
      "a": {"k": 1, "a": [{"k": [2, 3]}, {"c": {"a": {"k": 4}}}]},
      "k": "top"
    })";
    for (const char* text :
         {"$..a.k", "$..a[0].k", "$..a[*].k", "$..a..k", "$..a[0:2]"}) {
        auto q = parse(text);
        path::CollectSink ski_sink, dom_sink;
        ski::Streamer(q).run(json, &ski_sink);
        dom::parseAndQuery(json, q, &dom_sink);
        EXPECT_EQ(dom_sink.values, ski_sink.values) << text;
    }
}

TEST(Descendant, InteriorDuplicateKeysFirstBindingWins)
{
    // Key steps bind to the FIRST member with their name (the
    // streamer leaves an object after the match, G4); descendant
    // steps keep examining every member, duplicates included.
    std::string json = R"({"a": {"b": 1, "b": 2}, "b": 3})";
    EXPECT_EQ(ski_values(json, "$..a.b"),
              (std::vector<std::string>{"1"}));
    EXPECT_EQ(ski_values(json, "$..b"),
              (std::vector<std::string>{"1", "2", "3"}));
    auto q = parse("$..a.b");
    path::CollectSink dom_sink;
    dom::parseAndQuery(json, q, &dom_sink);
    EXPECT_EQ(dom_sink.values, (std::vector<std::string>{"1"}));
}

TEST(Descendant, InteriorRejectedByLinearBaselines)
{
    // The path-at-a-time tape walk and the deterministic PDA cannot
    // reproduce the multiset document-order contract; they say so
    // instead of answering differently.
    auto q = parse("$..a.b");
    EXPECT_THROW(tape::parseAndQuery(R"({"a":{"b":1}})", q), PathError);
    EXPECT_THROW(jpstream::Engine{q}, PathError);
}

TEST(Descendant, RandomDifferentialInteriorSkiVsDom)
{
    Rng rng(8642);
    const std::vector<std::string> keys = {"a", "b", "k"};
    std::function<void(json::Writer&, int)> gen =
        [&](json::Writer& w, int depth) {
            double shape = rng.real();
            if (depth <= 0 || shape < 0.4) {
                w.number(rng.range(0, 99));
            } else if (shape < 0.75) {
                w.beginObject();
                std::vector<std::string> pool = keys;
                size_t n = rng.below(4);
                for (size_t i = 0; i < n && !pool.empty(); ++i) {
                    size_t pick = rng.below(pool.size());
                    w.key(pool[pick]);
                    pool.erase(pool.begin() + static_cast<long>(pick));
                    gen(w, depth - 1);
                }
                w.endObject();
            } else {
                w.beginArray();
                size_t n = rng.below(4);
                for (size_t i = 0; i < n; ++i)
                    gen(w, depth - 1);
                w.endArray();
            }
        };
    const char* queries[] = {"$..a.b", "$..a[0]", "$..a[*].k", "$..a..k",
                             "$..a[0:2].b"};
    size_t total = 0;
    for (int iter = 0; iter < 200; ++iter) {
        json::Writer w;
        w.beginObject();
        w.key("root");
        gen(w, 5);
        w.endObject();
        std::string doc = w.take();
        ASSERT_TRUE(json::validate(doc));
        for (const char* text : queries) {
            auto q = parse(text);
            path::CollectSink a, b;
            ski::Streamer(q).run(doc, &a);
            dom::parseAndQuery(doc, q, &b);
            ASSERT_EQ(a.values, b.values) << text << "\n" << doc;
            total += a.values.size();
        }
    }
    EXPECT_GT(total, 50u);
}

TEST(Descendant, FindsAtAllDepths)
{
    std::string json = R"({
      "name": "top",
      "user": {"name": "mid", "info": {"name": "deep"}},
      "list": [{"name": "in-array"}, [{"name": "nested-array"}], 5]
    })";
    auto values = ski_values(json, "$..name");
    EXPECT_EQ(values,
              (std::vector<std::string>{"\"top\"", "\"mid\"", "\"deep\"",
                                        "\"in-array\"",
                                        "\"nested-array\""}));
}

TEST(Descendant, NestedMatchesAreAllReportedPreOrder)
{
    std::string json = R"({"a": {"x": 1, "a": {"a": 2}}})";
    auto values = ski_values(json, "$..a");
    ASSERT_EQ(values.size(), 3u);
    // Outer first (pre-order), then its nested matches.
    EXPECT_EQ(values[0], R"({"x": 1, "a": {"a": 2}})");
    EXPECT_EQ(values[1], R"({"a": 2})");
    EXPECT_EQ(values[2], "2");
}

TEST(Descendant, AfterKeyAndArrayPrefix)
{
    std::string json =
        R"({"data": [{"v": {"id": 1}}, {"w": [{"id": 2}, {"id": 3}]}],)"
        R"( "id": 99})";
    EXPECT_EQ(ski_values(json, "$.data..id"),
              (std::vector<std::string>{"1", "2", "3"}));
    EXPECT_EQ(ski_values(json, "$.data[1]..id"),
              (std::vector<std::string>{"2", "3"}));
    EXPECT_EQ(ski_values(json, "$.data[*]..id").size(), 3u);
}

TEST(Descendant, NoMatches)
{
    EXPECT_TRUE(ski_values(R"({"a": [1, {"b": 2}]})", "$..zz").empty());
    EXPECT_TRUE(ski_values("[]", "$..k").empty());
    EXPECT_TRUE(ski_values("{}", "$..k").empty());
    EXPECT_TRUE(ski_values("5", "$..k").empty());
}

TEST(Descendant, DecoysInsideStrings)
{
    std::string json =
        R"({"s": "\"k\": 1", "o": {"k": "real"}})";
    EXPECT_EQ(ski_values(json, "$..k"),
              (std::vector<std::string>{"\"real\""}));
}

TEST(Descendant, EnginesAgree)
{
    std::string json = R"({
      "a": {"k": 1, "b": [{"k": [2, 3]}, {"c": {"k": {"k": 4}}}]},
      "k": "top"
    })";
    auto q = parse("$..k");
    path::CollectSink ski_sink, dom_sink, tape_sink;
    ski::Streamer(q).run(json, &ski_sink);
    dom::parseAndQuery(json, q, &dom_sink);
    tape::parseAndQuery(json, q, &tape_sink);
    EXPECT_FALSE(ski_sink.values.empty());
    EXPECT_EQ(dom_sink.values, ski_sink.values);
    EXPECT_EQ(tape_sink.values, ski_sink.values);

    // The character-level PDA emits container matches on their closing
    // brace, so its *order* differs under nesting; the multiset must
    // still agree.
    path::CollectSink jp_sink;
    jpstream::Engine(q).run(json, &jp_sink);
    auto sorted = [](std::vector<std::string> v) {
        std::sort(v.begin(), v.end());
        return v;
    };
    EXPECT_EQ(sorted(jp_sink.values), sorted(ski_sink.values));
}

TEST(Descendant, PisonRejectsByDesign)
{
    EXPECT_THROW(pison::parseAndQuery(R"({"a":1})", parse("$..a")),
                 PathError);
}

TEST(Descendant, MultiStreamerEvaluatesDescendants)
{
    // Descendant steps ride the divergent-suffix fallback: the
    // combined pass must agree with the single-query run.
    const std::string doc =
        R"({"a":1,"b":{"a":[2,3],"c":{"a":4}},"d":5})";
    std::vector<path::PathQuery> qs;
    qs.push_back(parse("$..a"));
    qs.push_back(parse("$.d"));
    ski::MultiStreamer ms(std::move(qs));
    ski::MultiCollectSink sink(ms.queryCount());
    auto r = ms.run(doc, &sink);

    path::CollectSink solo;
    ski::Streamer single(parse("$..a"));
    auto sr = single.run(doc, &solo);
    EXPECT_EQ(r.matches[0], sr.matches);
    EXPECT_EQ(sink.values[0], solo.values);
    EXPECT_EQ(sink.values[1], (std::vector<std::string>{"5"}));
}

TEST(Descendant, RandomDifferentialSkiVsDom)
{
    Rng rng(1357);
    const std::vector<std::string> keys = {"a", "b", "k"};
    std::function<void(json::Writer&, int)> gen =
        [&](json::Writer& w, int depth) {
            double shape = rng.real();
            if (depth <= 0 || shape < 0.4) {
                w.number(rng.range(0, 99));
            } else if (shape < 0.75) {
                w.beginObject();
                std::vector<std::string> pool = keys;
                size_t n = rng.below(4);
                for (size_t i = 0; i < n && !pool.empty(); ++i) {
                    size_t pick = rng.below(pool.size());
                    w.key(pool[pick]);
                    pool.erase(pool.begin() + static_cast<long>(pick));
                    gen(w, depth - 1);
                }
                w.endObject();
            } else {
                w.beginArray();
                size_t n = rng.below(4);
                for (size_t i = 0; i < n; ++i)
                    gen(w, depth - 1);
                w.endArray();
            }
        };
    auto q = parse("$..k");
    size_t total = 0;
    for (int iter = 0; iter < 300; ++iter) {
        json::Writer w;
        w.beginObject();
        w.key("root");
        gen(w, 5);
        w.endObject();
        std::string doc = w.take();
        ASSERT_TRUE(json::validate(doc));
        path::CollectSink a, b;
        ski::Streamer(q).run(doc, &a);
        dom::parseAndQuery(doc, q, &b);
        ASSERT_EQ(a.values, b.values) << doc;
        total += a.values.size();
    }
    EXPECT_GT(total, 50u);
}

TEST(Descendant, StatsStillAccumulate)
{
    // Primitive runs remain fast-forwardable under `..` (the paper's
    // predicted limitation is on *type* skipping, not primitives).
    std::string json = "{\"rows\": [";
    for (int i = 0; i < 500; ++i)
        json += std::to_string(i) + ",";
    json += R"({"k": 1}], "k": 2})";
    auto r = ski::query(json, "$..k");
    EXPECT_EQ(r.count, 2u);
    EXPECT_GT(r.stats.get(ski::Group::G1), 500u);
}
