/** @file Tests for the query-plan explanation. */
#include "ski/explain.h"

#include <gtest/gtest.h>

#include "path/parser.h"

using jsonski::path::parse;
using jsonski::ski::explain;

TEST(Explain, PaperQueryBb1)
{
    std::string plan = explain(parse("$.pd[*].cp[1:3].id"));
    EXPECT_NE(plan.find("$.pd[*].cp[1:3].id"), std::string::npos);
    EXPECT_NE(plan.find("match key \"pd\" -> value must be ARRAY"),
              std::string::npos);
    EXPECT_NE(plan.find("elements [1:3)"), std::string::npos);
    EXPECT_NE(plan.find("G5 skip out-of-range"), std::string::npos);
    EXPECT_NE(plan.find("accept : emit matched values"),
              std::string::npos);
}

TEST(Explain, TypeInferenceShown)
{
    std::string plan = explain(parse("$.a.b"));
    // a's value must be an object (its child is a key step).
    EXPECT_NE(plan.find("match key \"a\" -> value must be OBJECT"),
              std::string::npos);
    // b is terminal: any type.
    EXPECT_NE(plan.find("match key \"b\" -> value must be any"),
              std::string::npos);
}

TEST(Explain, RootQuery)
{
    std::string plan = explain(parse("$"));
    EXPECT_NE(plan.find("emit the whole record"), std::string::npos);
}

TEST(Explain, WildcardWithUnknownElementType)
{
    std::string plan = explain(parse("$[*]"));
    EXPECT_NE(plan.find("all elements examined"), std::string::npos);
}

TEST(Explain, Descendant)
{
    std::string plan = explain(parse("$..name"));
    EXPECT_NE(plan.find("ANY depth"), std::string::npos);
    EXPECT_NE(plan.find("type inference disabled"), std::string::npos);
}

TEST(Explain, EveryPaperQueryRenders)
{
    const char* queries[] = {
        "$[*].en.urls[*].url", "$[*].text", "$.pd[*].cp[1:3].id",
        "$.pd[*].vc[*].cha",   "$[*].rt[*].lg[*].st[*].dt.tx",
        "$[*].atm",            "$.mt.vw.co[*].nm", "$.dt[*][*][2:4]",
        "$.it[*].bmrpr.pr",    "$.it[*].nm", "$[*].cl.P150[*].ms.pty",
        "$[10:21].cl.P150[*].ms.pty",
    };
    for (const char* q : queries) {
        std::string plan = explain(parse(q));
        EXPECT_GT(plan.size(), 50u) << q;
        EXPECT_NE(plan.find("accept"), std::string::npos) << q;
    }
}
