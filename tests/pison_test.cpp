/** @file Tests for the Pison-class leveled bitmap baseline. */
#include "baseline/pison/query.h"

#include <gtest/gtest.h>

#include "baseline/pison/leveled_index.h"
#include "path/parser.h"
#include "util/bits.h"

using namespace jsonski::pison;
using jsonski::ThreadPool;
using jsonski::path::CollectSink;
using jsonski::path::parse;
namespace bits = jsonski::bits;

namespace {

/** All set-bit positions of a level bitmap. */
std::vector<size_t>
positions(const std::vector<uint64_t>& bm)
{
    std::vector<size_t> out;
    for (size_t w = 0; w < bm.size(); ++w) {
        uint64_t v = bm[w];
        while (v != 0) {
            out.push_back(w * 64 +
                          static_cast<size_t>(bits::trailingZeros(v)));
            v = bits::clearLowest(v);
        }
    }
    return out;
}

} // namespace

TEST(LeveledIndex, ColonLevels)
{
    //                0123456789012345678901234
    std::string json = R"({"a":{"b":1},"c":2})";
    LeveledIndex ix = LeveledIndex::build(json, 2);
    EXPECT_EQ(positions(ix.colons(0)),
              (std::vector<size_t>{4, 16})); // after "a", after "c"
    EXPECT_EQ(positions(ix.colons(1)), (std::vector<size_t>{9}));
    EXPECT_EQ(positions(ix.commas(0)), (std::vector<size_t>{12}));
}

TEST(LeveledIndex, CommaLevelsInNestedArrays)
{
    std::string json = R"([[1,2],[3,4],5])";
    LeveledIndex ix = LeveledIndex::build(json, 2);
    EXPECT_EQ(positions(ix.commas(0)), (std::vector<size_t>{6, 12}));
    EXPECT_EQ(positions(ix.commas(1)), (std::vector<size_t>{3, 9}));
}

TEST(LeveledIndex, StringsMasked)
{
    std::string json = R"({"k": "a:b,c", "m": 1})";
    LeveledIndex ix = LeveledIndex::build(json, 1);
    EXPECT_EQ(positions(ix.colons(0)).size(), 2u);
    EXPECT_EQ(positions(ix.commas(0)).size(), 1u);
}

TEST(LeveledIndex, NextBit)
{
    std::string json = R"({"a":1,"b":2,"c":3})";
    LeveledIndex ix = LeveledIndex::build(json, 1);
    auto cols = positions(ix.colons(0));
    ASSERT_EQ(cols.size(), 3u);
    EXPECT_EQ(LeveledIndex::nextBit(ix.colons(0), 0, json.size()), cols[0]);
    EXPECT_EQ(LeveledIndex::nextBit(ix.colons(0), cols[0] + 1, json.size()),
              cols[1]);
    EXPECT_EQ(LeveledIndex::nextBit(ix.colons(0), cols[2] + 1, json.size()),
              json.size());
    // Range-limited lookup.
    EXPECT_EQ(LeveledIndex::nextBit(ix.colons(0), 0, cols[0]), cols[0]);
}

TEST(LeveledIndex, DeeperLevelsThanIndexAreDropped)
{
    std::string json = R"({"a":{"b":{"c":1}}})";
    LeveledIndex ix = LeveledIndex::build(json, 1);
    EXPECT_EQ(positions(ix.colons(0)).size(), 1u);
}

TEST(LeveledIndex, ParallelMatchesSerial)
{
    std::string json = "[";
    for (int i = 0; i < 2000; ++i) {
        json += R"({"k":"some text, with: stuff","n":[1,2,3],"m":)" +
                std::to_string(i) + "},";
    }
    json += "{}]";
    LeveledIndex serial = LeveledIndex::build(json, 3);
    ThreadPool pool(4);
    LeveledIndex parallel = LeveledIndex::buildParallel(json, 3, pool);
    for (size_t level = 0; level < 3; ++level) {
        EXPECT_EQ(positions(serial.colons(level)),
                  positions(parallel.colons(level)))
            << level;
        EXPECT_EQ(positions(serial.commas(level)),
                  positions(parallel.commas(level)))
            << level;
    }
}

TEST(LeveledIndex, ParallelHandlesStringsAcrossChunks)
{
    // Giant strings force chunk boundaries into string interiors,
    // exercising the mis-speculation re-run path.
    std::string json = "[\"" + std::string(5000, 'x') + ",:\",\"" +
                       std::string(5000, '{') + "\",{\"k\":1}]";
    LeveledIndex serial = LeveledIndex::build(json, 2);
    ThreadPool pool(8);
    LeveledIndex parallel = LeveledIndex::buildParallel(json, 2, pool);
    for (size_t level = 0; level < 2; ++level) {
        EXPECT_EQ(positions(serial.colons(level)),
                  positions(parallel.colons(level)));
        EXPECT_EQ(positions(serial.commas(level)),
                  positions(parallel.commas(level)));
    }
}

TEST(PisonQuery, BasicPaths)
{
    CollectSink sink;
    EXPECT_EQ(parseAndQuery(R"({"place":{"name":"Manhattan","x":1}})",
                            parse("$.place.name"), &sink),
              1u);
    EXPECT_EQ(sink.values[0], "\"Manhattan\"");
}

TEST(PisonQuery, ArraySteps)
{
    std::string json = R"({"pd":[{"id":1},{"id":2},{"id":3}]})";
    EXPECT_EQ(parseAndQuery(json, parse("$.pd[*].id")), 3u);
    EXPECT_EQ(parseAndQuery(json, parse("$.pd[1].id")), 1u);
    EXPECT_EQ(parseAndQuery(json, parse("$.pd[1:3].id")), 2u);
    EXPECT_EQ(parseAndQuery(json, parse("$.pd[5].id")), 0u);
}

TEST(PisonQuery, ValueSpansExcludeSeparators)
{
    CollectSink sink;
    parseAndQuery(R"({"a": [1, 2] , "b": {"c": 2} })", parse("$.a"), &sink);
    parseAndQuery(R"({"a": [1, 2] , "b": {"c": 2} })", parse("$.b"), &sink);
    EXPECT_EQ(sink.values,
              (std::vector<std::string>{"[1, 2]", R"({"c": 2})"}));
}

TEST(PisonQuery, TypeMismatch)
{
    EXPECT_EQ(parseAndQuery(R"({"a":5})", parse("$.a.b")), 0u);
    EXPECT_EQ(parseAndQuery("[1,2]", parse("$.a")), 0u);
    EXPECT_EQ(parseAndQuery(R"({"a":1})", parse("$[0]")), 0u);
}

TEST(PisonQuery, EmptyContainers)
{
    EXPECT_EQ(parseAndQuery("{}", parse("$.a")), 0u);
    EXPECT_EQ(parseAndQuery("[]", parse("$[*]")), 0u);
    EXPECT_EQ(parseAndQuery(R"({"a":[]})", parse("$.a[*]")), 0u);
}

TEST(PisonQuery, ParallelPipelineMatchesSerial)
{
    std::string json = R"({"pd":[)";
    for (int i = 0; i < 300; ++i) {
        json += R"({"cp":[{"id":1},{"id":2},{"id":3}],"x":"a,b:c"},)";
    }
    json += R"({"cp":[]}]})";
    ThreadPool pool(4);
    size_t serial = parseAndQuery(json, parse("$.pd[*].cp[1:3].id"));
    size_t parallel =
        parseAndQueryParallel(json, parse("$.pd[*].cp[1:3].id"), pool);
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(serial, 600u);
}

TEST(PisonQuery, MemoryBytesScalesWithLevels)
{
    std::string json(10000, ' ');
    json[0] = '{';
    json[9999] = '}';
    LeveledIndex one = LeveledIndex::build(json, 1);
    LeveledIndex four = LeveledIndex::build(json, 4);
    EXPECT_EQ(four.memoryBytes(), 4 * one.memoryBytes());
}
