/** @file Tests for the query automaton (Figure 5 transitions). */
#include "path/automaton.h"

#include <gtest/gtest.h>

#include "path/parser.h"

using namespace jsonski::path;

TEST(Automaton, KeyTransitions)
{
    QueryAutomaton qa(parse("$.place.name"));
    EXPECT_EQ(qa.start(), 0);
    EXPECT_EQ(qa.accept(), 2);
    int s = qa.onKey(0, "place");
    EXPECT_EQ(s, 1);
    EXPECT_FALSE(qa.isAccept(s));
    s = qa.onKey(s, "name");
    EXPECT_EQ(s, 2);
    EXPECT_TRUE(qa.isAccept(s));
}

TEST(Automaton, UnmatchedKey)
{
    QueryAutomaton qa(parse("$.place.name"));
    EXPECT_EQ(qa.onKey(0, "user"), QueryAutomaton::kUnmatched);
    EXPECT_EQ(qa.onKey(QueryAutomaton::kUnmatched, "place"),
              QueryAutomaton::kUnmatched);
}

TEST(Automaton, KeyOnArrayStepFails)
{
    QueryAutomaton qa(parse("$[*].text"));
    EXPECT_EQ(qa.onKey(0, "text"), QueryAutomaton::kUnmatched);
    EXPECT_EQ(qa.onElement(0, 5), 1);
    EXPECT_EQ(qa.onKey(1, "text"), 2);
}

TEST(Automaton, ElementRange)
{
    QueryAutomaton qa(parse("$.cp[1:3]"));
    int s = qa.onKey(0, "cp");
    ASSERT_EQ(s, 1);
    EXPECT_EQ(qa.onElement(s, 0), QueryAutomaton::kUnmatched);
    EXPECT_EQ(qa.onElement(s, 1), 2);
    EXPECT_EQ(qa.onElement(s, 2), 2);
    EXPECT_EQ(qa.onElement(s, 3), QueryAutomaton::kUnmatched);
}

TEST(Automaton, AcceptStateHasNoOutgoing)
{
    QueryAutomaton qa(parse("$.a"));
    int s = qa.onKey(0, "a");
    ASSERT_TRUE(qa.isAccept(s));
    EXPECT_EQ(qa.onKey(s, "a"), QueryAutomaton::kUnmatched);
    EXPECT_EQ(qa.onElement(s, 0), QueryAutomaton::kUnmatched);
}

TEST(Automaton, ContainerTypeInference)
{
    QueryAutomaton qa(parse("$.pd[*].id"));
    EXPECT_EQ(qa.containerAt(0), ExpectedType::Object); // root: .pd
    EXPECT_EQ(qa.containerAt(1), ExpectedType::Array);  // pd: [*]
    EXPECT_EQ(qa.containerAt(2), ExpectedType::Object); // element: .id
    EXPECT_EQ(qa.containerAt(3), ExpectedType::Any);    // accept
    EXPECT_EQ(qa.containerAt(QueryAutomaton::kUnmatched),
              ExpectedType::Any);
}

TEST(Automaton, IndexRange)
{
    QueryAutomaton qa(parse("$[10:21]"));
    size_t lo = 0, hi = 0;
    qa.indexRange(0, lo, hi);
    EXPECT_EQ(lo, 10u);
    EXPECT_EQ(hi, 21u);
}

TEST(Automaton, EmptyQueryAcceptsRoot)
{
    QueryAutomaton qa(parse("$"));
    EXPECT_TRUE(qa.isAccept(qa.start()));
}
