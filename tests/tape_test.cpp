/** @file Tests for the simdjson-class two-stage tape baseline. */
#include "baseline/tape/query.h"

#include <gtest/gtest.h>

#include "path/parser.h"
#include "util/error.h"

using namespace jsonski::tape;
using jsonski::ParseError;
using jsonski::path::CollectSink;
using jsonski::path::parse;

TEST(StructuralIndex, FindsAllStructuralChars)
{
    std::string json = R"({"a": [1, "x"], "b": {"c": 2}})";
    StructuralIndex ix = buildStructuralIndex(json);
    // Every indexed position must be a structural char or a quote.
    for (uint32_t p : ix.positions) {
        char c = json[p];
        EXPECT_TRUE(c == '{' || c == '}' || c == '[' || c == ']' ||
                    c == ':' || c == ',' || c == '"')
            << c;
    }
    // Spot-check: the outer braces and the quote of "a".
    EXPECT_EQ(ix.positions.front(), 0u);
    EXPECT_EQ(ix.positions.back(), json.size() - 1);
}

TEST(StructuralIndex, MasksStringInteriors)
{
    std::string json = R"({"k": "a{b}[c]:,d"})";
    StructuralIndex ix = buildStructuralIndex(json);
    // Expect: '{', quote(k), ':', quote(value), '}': 5 entries.
    ASSERT_EQ(ix.positions.size(), 5u);
    EXPECT_EQ(json[ix.positions[0]], '{');
    EXPECT_EQ(json[ix.positions[1]], '"');
    EXPECT_EQ(json[ix.positions[2]], ':');
    EXPECT_EQ(json[ix.positions[3]], '"');
    EXPECT_EQ(json[ix.positions[4]], '}');
}

TEST(Tape, BuildsSkipLinks)
{
    std::string json = R"({"a": [1, 2], "b": 3})";
    Tape t = buildTape(json, buildStructuralIndex(json));
    ASSERT_EQ(t.typeAt(0), TapeType::ObjStart);
    // Skipping the root lands one past the last word.
    EXPECT_EQ(t.skip(0), t.words.size());
    EXPECT_EQ(t.textAt(0, json), json);
}

TEST(Tape, TextSpans)
{
    std::string json = R"({"a": [1, 2], "b": "str", "c": null})";
    Tape t = buildTape(json, buildStructuralIndex(json));
    CollectSink sink;
    EXPECT_EQ(evaluate(t, json, parse("$.a"), &sink), 1u);
    EXPECT_EQ(evaluate(t, json, parse("$.b"), &sink), 1u);
    EXPECT_EQ(evaluate(t, json, parse("$.c"), &sink), 1u);
    EXPECT_EQ(sink.values,
              (std::vector<std::string>{"[1, 2]", "\"str\"", "null"}));
}

TEST(Tape, RootPrimitive)
{
    std::string json = "  42  ";
    Tape t = buildTape(json, buildStructuralIndex(json));
    ASSERT_EQ(t.typeAt(0), TapeType::Primitive);
    EXPECT_EQ(t.textAt(0, json), "42");
}

TEST(Tape, MalformedStructures)
{
    for (const char* bad : {"{", "[", "{]", "[}", "}", ",", "{\"a\":1"}) {
        std::string json = bad;
        EXPECT_THROW(buildTape(json, buildStructuralIndex(json)),
                     ParseError)
            << bad;
    }
}

TEST(TapeQuery, PaperStyleQueries)
{
    std::string json =
        R"({"pd":[{"cp":[{"id":1},{"id":2},{"id":3}],"vc":[]},)"
        R"({"cp":[{"id":4}],"vc":[{"cha":"x"}]}]})";
    EXPECT_EQ(parseAndQuery(json, parse("$.pd[*].cp[1:3].id")), 2u);
    EXPECT_EQ(parseAndQuery(json, parse("$.pd[*].vc[*].cha")), 1u);
    EXPECT_EQ(parseAndQuery(json, parse("$.pd[*].cp[*].id")), 4u);
}

TEST(TapeQuery, EmptyContainers)
{
    EXPECT_EQ(parseAndQuery("{}", parse("$.a")), 0u);
    EXPECT_EQ(parseAndQuery("[]", parse("$[*]")), 0u);
    EXPECT_EQ(parseAndQuery(R"({"a":{}})", parse("$.a.b")), 0u);
}

TEST(TapeQuery, StringsWithStructuralDecoys)
{
    std::string json =
        R"({"decoy": "\"k\": {", "k": [1, "a,b]", 3]})";
    CollectSink sink;
    EXPECT_EQ(parseAndQuery(json, parse("$.k[2]"), &sink), 1u);
    EXPECT_EQ(sink.values[0], "3");
}

TEST(TapeQuery, DeepNesting)
{
    EXPECT_EQ(parseAndQuery(R"({"a":{"b":{"c":{"d":[0,1]}}}})",
                            parse("$.a.b.c.d[1]")),
              1u);
}
