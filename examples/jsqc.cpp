/**
 * @file
 * jsqc — command-line client for the jsqd query daemon.
 *
 * Usage:
 *   jsqc [--host H] [--port P] <query>[,<query>...] [file]
 *   jsqc [--host H] [--port P] --stats
 *
 * Options mirror jsq where they overlap:
 *   -c            count only (no match values on the wire)
 *   -r            body is an NDJSON record stream
 *   -n K          stop after K matches
 *   -s            print the trailer summary (status, bytes, ff) to stderr
 *   --length      send the body length-prefixed instead of EOF-framed
 *   --doc ID      tag the body as a repeat-query document: the server
 *                 answers from its cached structural semi-index when it
 *                 can (DESIGN.md §14) and the trailer reports
 *                 index=hit|miss|none.  Implies --length.
 *   --chunk N     write the body in N-byte chunks (protocol testing)
 *   --multiline   ship all but the first query as query= continuation
 *                 lines (the form that scales past the server's header
 *                 byte cap)
 *
 * Reads the body from stdin when no file is given.  Matches print as
 * they arrive — single query one per line, multi-query prefixed
 * `[qN] ` where N is the first request position asking for that query
 * (duplicates share one stream; the trailer's qmap records the
 * mapping).  Exit status: 0 on an ok trailer, 1 on an error trailer or
 * severed connection (code and position go to stderr), 2 on usage.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "service/loopback.h"
#include "service/protocol.h"
#include "util/parse.h"

using namespace jsonski;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: jsqc [--host H] [--port P] [-c] [-r] [-s] "
                 "[-n K] [--length] [--doc ID] [--chunk N]\n"
                 "            [--multiline]\n"
                 "            <query>[,<query>...] [file]\n"
                 "       jsqc [--host H] [--port P] --stats\n");
    std::exit(2);
}

size_t
sizeArg(int argc, char** argv, int& i, bool positive = false)
{
    if (i + 1 >= argc)
        usage();
    size_t v = 0;
    bool ok = positive ? parsePositiveSize(argv[i + 1], v)
                       : parseSize(argv[i + 1], v);
    if (!ok) {
        std::fprintf(stderr, "jsqc: bad value for %s: '%s'\n", argv[i],
                     argv[i + 1]);
        usage();
    }
    ++i;
    return v;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string host = "127.0.0.1";
    uint16_t port = 9901;
    bool stats = false;
    bool print_trailer = false;
    size_t chunk = 0;
    service::RequestHeader header;
    std::string file;

    int i = 1;
    for (; i < argc; ++i) {
        if (std::strcmp(argv[i], "--host") == 0) {
            if (i + 1 >= argc)
                usage();
            host = argv[++i];
        } else if (std::strcmp(argv[i], "--port") == 0 ||
                   std::strcmp(argv[i], "-p") == 0) {
            size_t p = sizeArg(argc, argv, i, true);
            if (p > 65535)
                usage();
            port = static_cast<uint16_t>(p);
        } else if (std::strcmp(argv[i], "-c") == 0) {
            header.count_only = true;
        } else if (std::strcmp(argv[i], "-r") == 0) {
            header.records = true;
        } else if (std::strcmp(argv[i], "-s") == 0) {
            print_trailer = true;
        } else if (std::strcmp(argv[i], "-n") == 0) {
            header.limit = sizeArg(argc, argv, i, true);
        } else if (std::strcmp(argv[i], "--length") == 0) {
            header.has_length = true;
        } else if (std::strcmp(argv[i], "--doc") == 0) {
            if (i + 1 >= argc)
                usage();
            header.has_doc = true;
            header.doc_id = argv[++i];
            header.has_length = true; // doc= requires length framing
        } else if (std::strcmp(argv[i], "--chunk") == 0) {
            chunk = sizeArg(argc, argv, i, true);
        } else if (std::strcmp(argv[i], "--multiline") == 0) {
            header.multiline = true;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            stats = true;
        } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
            usage();
        } else {
            break;
        }
    }

    try {
        if (stats) {
            if (i != argc)
                usage();
            service::RequestHeader h;
            h.stats = true;
            service::ClientResult r = service::runRequestFd(
                service::connectTcp(host, port), h, {});
            std::fwrite(r.raw.data(), 1, r.raw.size(), stdout);
            return 0;
        }

        if (i >= argc)
            usage();
        header.queries = service::splitQueries(argv[i++]);
        if (i < argc)
            file = argv[i++];
        if (i != argc)
            usage();

        std::string body;
        if (file.empty()) {
            std::ostringstream ss;
            ss << std::cin.rdbuf();
            body = ss.str();
        } else {
            std::ifstream in(file, std::ios::binary);
            if (!in) {
                std::fprintf(stderr, "jsqc: cannot open %s\n",
                             file.c_str());
                return 1;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            body = ss.str();
        }
        if (header.has_length)
            header.length = body.size();

        bool multi = header.queries.size() > 1;
        service::ClientOptions opt;
        if (chunk != 0)
            opt.chunk_schedule = {chunk};
        service::ClientResult r = service::runRequestFd(
            service::connectTcp(host, port), header, body, opt,
            [multi](size_t qi, std::string_view value) {
                if (multi)
                    std::printf("[q%zu] ", qi);
                std::fwrite(value.data(), 1, value.size(), stdout);
                std::fputc('\n', stdout);
            });

        if (!r.has_trailer) {
            std::fprintf(stderr,
                         "jsqc: connection severed before trailer\n");
            return 1;
        }
        const service::Trailer& t = r.trailer;
        if (header.count_only) {
            if (t.per_query.empty()) {
                std::printf("%zu\n", t.matches);
            } else {
                for (size_t qi = 0; qi < t.per_query.size(); ++qi)
                    std::printf("q%zu %s: %zu\n", qi,
                                header.queries[qi].c_str(),
                                t.per_query[qi]);
            }
        }
        if (print_trailer) {
            uint64_t skipped = 0;
            for (uint64_t g : t.ff)
                skipped += g;
            std::fprintf(
                stderr,
                "jsqc: status=%s%s%s matches=%zu bytes_in=%zu "
                "skipped=%llu plan=%s%s%s\n",
                t.ok ? "ok" : "error",
                t.ok ? "" : " code=",
                t.ok ? "" : std::string(errorCodeName(t.code)).c_str(),
                t.matches, t.bytes_in,
                static_cast<unsigned long long>(skipped),
                t.plan.c_str(), t.index.empty() ? "" : " index=",
                t.index.c_str());
        }
        if (!t.ok) {
            std::fprintf(stderr, "jsqc: server error: %s at byte %zu\n",
                         std::string(errorCodeName(t.code)).c_str(),
                         t.error_pos);
            return 1;
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "jsqc: %s\n", e.what());
        return 1;
    }
    return 0;
}
