/**
 * @file
 * Streaming analytics over a feed of tweet records (the paper's
 * small-record scenario): compiled queries are reused across records,
 * matches are aggregated on the fly, and nothing is ever parsed into
 * a tree.
 *
 * Build & run:  ./examples/twitter_analytics [MB]
 */
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "gen/datasets.h"
#include "path/parser.h"
#include "ski/streamer.h"
#include "util/stopwatch.h"

using namespace jsonski;

namespace {

/** Sink that histograms URL top-level domains instead of storing. */
class DomainHistogram : public ski::MatchSink
{
  public:
    void
    onMatch(std::string_view value) override
    {
        // value is a quoted URL string: "https://host.tld/...".
        size_t dot = value.rfind('.', value.find('/', 9));
        if (dot == std::string_view::npos)
            return;
        size_t end = value.find_first_of("/\"?", dot + 1);
        counts_[std::string(value.substr(dot + 1, end - dot - 1))]++;
    }

    const std::map<std::string, size_t>& counts() const { return counts_; }

  private:
    std::map<std::string, size_t> counts_;
};

} // namespace

int
main(int argc, char** argv)
{
    size_t mb = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
    std::printf("generating %zu MB of tweet records...\n", mb);
    gen::SmallRecords feed =
        gen::generateSmall(gen::DatasetId::TT, mb * 1024 * 1024);
    std::printf("%zu records\n\n", feed.count());

    // Compile the queries once; reuse across every record.
    ski::Streamer urls(path::parse("$.en.urls[*].url"));
    ski::Streamer texts(path::parse("$.text"));
    ski::Streamer places(path::parse("$.place.name"));

    Stopwatch sw;
    DomainHistogram domains;
    size_t url_count = 0, text_bytes = 0, located = 0;
    for (size_t i = 0; i < feed.count(); ++i) {
        std::string_view rec = feed.record(i);
        url_count += urls.run(rec, &domains).matches;

        ski::CollectSink text;
        texts.run(rec, &text);
        for (const std::string& t : text.values)
            text_bytes += t.size();

        located += places.run(rec).matches;
    }
    double secs = sw.seconds();

    std::printf("scanned %.1f MB in %.3f s (%.2f GB/s, three queries "
                "per record)\n\n",
                feed.buffer.size() / 1048576.0, secs,
                feed.buffer.size() * 3 / secs / 1e9);
    std::printf("tweets with location : %zu / %zu\n", located,
                feed.count());
    std::printf("urls extracted       : %zu\n", url_count);
    std::printf("total text payload   : %.1f KB\n", text_bytes / 1024.0);
    std::printf("top url domains:\n");
    size_t shown = 0;
    for (const auto& [tld, n] : domains.counts()) {
        if (shown++ == 8)
            break;
        std::printf("  .%-5s %zu\n", tld.c_str(), n);
    }
    return 0;
}
