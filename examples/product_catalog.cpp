/**
 * @file
 * Product-catalog exploration on one large record (the paper's
 * single-large-record scenario): several path queries over a Best
 * Buy-style catalog, with a cross-check against the DOM baseline and
 * a per-query fast-forward report.
 *
 * Build & run:  ./examples/product_catalog [MB]
 */
#include <cstdio>
#include <cstdlib>

#include "baseline/dom/query.h"
#include "gen/datasets.h"
#include "path/parser.h"
#include "ski/streamer.h"
#include "util/stopwatch.h"

using namespace jsonski;

int
main(int argc, char** argv)
{
    size_t mb = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
    std::printf("generating a %zu MB product catalog...\n\n", mb);
    std::string catalog =
        gen::generateLarge(gen::DatasetId::BB, mb * 1024 * 1024);

    const char* queries[] = {
        "$.pd[*].cp[1:3].id", // category slice (the paper's BB1)
        "$.pd[*].vc[*].cha",  // rare attribute (BB2)
        "$.pd[0].name",       // point lookup
        "$.pd[*].price",      // full projection
        "$.total",            // trailing scalar
    };

    std::printf("%-22s %10s %10s %9s  %s\n", "query", "matches",
                "time(ms)", "ff-ratio", "dom-check");
    for (const char* qtext : queries) {
        auto q = path::parse(qtext);
        ski::Streamer streamer(q);
        Stopwatch sw;
        ski::StreamResult r = streamer.run(catalog);
        double ms = sw.milliseconds();
        size_t dom = dom::parseAndQuery(catalog, q);
        std::printf("%-22s %10zu %10.2f %8.1f%%  %s\n", qtext, r.matches,
                    ms, r.stats.overallRatio(catalog.size()) * 100.0,
                    dom == r.matches ? "ok" : "MISMATCH");
    }

    // Pull one concrete value out, end to end.
    auto first = ski::query(catalog, "$.pd[2].name", /*collect=*/true);
    if (first.count == 1)
        std::printf("\nthird product: %s\n", first.values[0].c_str());
    return 0;
}
