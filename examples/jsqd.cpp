/**
 * @file
 * jsqd — the streaming JSONPath query daemon (service/server.h).
 *
 * Usage:
 *   jsqd [-p PORT] [--host ADDR] [--shards N] [--workers N]
 *        [--chunk-bytes N] [--max-header N] [--max-body N]
 *        [--max-matches N] [--read-deadline-ms N]
 *        [--write-deadline-ms N] [--idle-deadline-ms N]
 *        [--plan-cache N] [--doc-cache-bytes N] [--max-doc-bytes N]
 *        [--poll]
 *
 * Prints `jsqd: listening on HOST:PORT` once ready (PORT is ephemeral
 * when -p is omitted), serves until SIGTERM/SIGINT, then drains
 * gracefully — in-flight requests finish, a final stats summary goes
 * to stderr, and the exit status is 0.  Protocol and quickstart:
 * DESIGN.md §10 / README.
 */
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "service/server.h"
#include "util/parse.h"

using namespace jsonski;

namespace {

service::Server* g_server = nullptr;

void
onSignal(int)
{
    if (g_server != nullptr)
        g_server->requestStop(); // async-signal-safe
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: jsqd [-p PORT] [--host ADDR] [--shards N] [--workers N]\n"
        "            [--chunk-bytes N] [--max-header N] [--max-body N]\n"
        "            [--max-matches N] [--read-deadline-ms N]\n"
        "            [--write-deadline-ms N] [--idle-deadline-ms N]\n"
        "            [--plan-cache N] [--doc-cache-bytes N]\n"
        "            [--max-doc-bytes N] [--poll]\n"
        "  --shards 0 (default) = one event-loop shard per hardware "
        "thread\n");
    std::exit(2);
}

size_t
sizeArg(int argc, char** argv, int& i, bool positive = false)
{
    if (i + 1 >= argc)
        usage();
    size_t v = 0;
    bool ok = positive ? parsePositiveSize(argv[i + 1], v)
                       : parseSize(argv[i + 1], v);
    if (!ok) {
        std::fprintf(stderr, "jsqd: bad value for %s: '%s'\n", argv[i],
                     argv[i + 1]);
        usage();
    }
    ++i;
    return v;
}

} // namespace

int
main(int argc, char** argv)
{
    service::ServerConfig cfg;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-p") == 0 ||
            std::strcmp(argv[i], "--port") == 0) {
            size_t p = sizeArg(argc, argv, i);
            if (p > 65535)
                usage();
            cfg.port = static_cast<uint16_t>(p);
        } else if (std::strcmp(argv[i], "--host") == 0) {
            if (i + 1 >= argc)
                usage();
            cfg.bind_addr = argv[++i];
        } else if (std::strcmp(argv[i], "--shards") == 0) {
            cfg.shards = sizeArg(argc, argv, i);
        } else if (std::strcmp(argv[i], "--workers") == 0) {
            cfg.workers = sizeArg(argc, argv, i, /*positive=*/true);
        } else if (std::strcmp(argv[i], "--chunk-bytes") == 0) {
            cfg.chunk_bytes = sizeArg(argc, argv, i, /*positive=*/true);
        } else if (std::strcmp(argv[i], "--max-header") == 0) {
            cfg.max_header_bytes = sizeArg(argc, argv, i, true);
        } else if (std::strcmp(argv[i], "--max-body") == 0) {
            cfg.max_body_bytes = sizeArg(argc, argv, i);
        } else if (std::strcmp(argv[i], "--max-matches") == 0) {
            cfg.max_matches = sizeArg(argc, argv, i);
        } else if (std::strcmp(argv[i], "--read-deadline-ms") == 0) {
            cfg.read_deadline_ms = static_cast<int>(sizeArg(argc, argv, i));
        } else if (std::strcmp(argv[i], "--write-deadline-ms") == 0) {
            cfg.write_deadline_ms =
                static_cast<int>(sizeArg(argc, argv, i));
        } else if (std::strcmp(argv[i], "--idle-deadline-ms") == 0) {
            cfg.idle_deadline_ms =
                static_cast<int>(sizeArg(argc, argv, i));
        } else if (std::strcmp(argv[i], "--plan-cache") == 0) {
            cfg.plan_cache_capacity = sizeArg(argc, argv, i, true);
        } else if (std::strcmp(argv[i], "--doc-cache-bytes") == 0) {
            cfg.doc_cache_bytes = sizeArg(argc, argv, i);
        } else if (std::strcmp(argv[i], "--max-doc-bytes") == 0) {
            cfg.max_doc_bytes = sizeArg(argc, argv, i, true);
        } else if (std::strcmp(argv[i], "--poll") == 0) {
            cfg.force_poll = true;
        } else {
            usage();
        }
    }

    service::Server server(cfg);
    try {
        server.start();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "jsqd: %s\n", e.what());
        return 1;
    }
    g_server = &server;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = onSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    std::printf("jsqd: listening on %s:%u (%zu shards)\n",
                cfg.bind_addr.c_str(),
                static_cast<unsigned>(server.port()),
                server.shardCount());
    std::fflush(stdout);

    server.waitStopped();
    g_server = nullptr;

    service::ServerStats s = server.stats();
    service::PlanCacheStats pc = server.planCacheTotals();
    index::DocumentIndexCacheStats dc = server.docCacheTotals();
    std::fprintf(stderr,
                 "jsqd: drained: %llu connections, %llu requests "
                 "(%llu ok, %llu error), %llu B in, %llu B out, "
                 "plan cache %llu/%llu hit/miss, "
                 "doc index cache %llu/%llu hit/miss\n",
                 static_cast<unsigned long long>(s.connections_total),
                 static_cast<unsigned long long>(s.requests_total),
                 static_cast<unsigned long long>(s.responses_ok),
                 static_cast<unsigned long long>(s.responses_error),
                 static_cast<unsigned long long>(s.bytes_in_total),
                 static_cast<unsigned long long>(s.bytes_out_total),
                 static_cast<unsigned long long>(pc.hits),
                 static_cast<unsigned long long>(pc.misses),
                 static_cast<unsigned long long>(dc.hits),
                 static_cast<unsigned long long>(dc.misses));
    return 0;
}
