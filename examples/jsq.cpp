/**
 * @file
 * jsq — a command-line JSONPath extractor built on the streaming API.
 *
 * Usage:
 *   jsq <query> [file]         print every match, one per line
 *   jsq -c <query> [file]      print only the match count
 *   jsq -n K <query> [file]    stop after K matches (early termination)
 *   jsq -r <query> [file]      treat input as a stream of records
 *   jsq -s <query> [file]      print the fast-forward statistics
 *   jsq -e <query>             print the evaluation plan and exit
 *   jsq -p <query> [file]      profile: suppress matches, print a JSON
 *                              report (matches, fast-forward bytes and
 *                              ratios per group, telemetry counters) on
 *                              stdout and the plan plus a human-readable
 *                              telemetry report on stderr.  --profile is
 *                              a synonym.  In default builds
 *                              (JSONSKI_TELEMETRY=OFF) the telemetry
 *                              section is present but zeroed.
 *
 * Reads from stdin when no file is given.  Multiple queries may be
 * passed separated by commas; they are evaluated in ONE pass with the
 * multi-query streamer.  Match lines are tagged [qN] with the first
 * command-line position asking for that query — duplicates share one
 * stream, and -c repeats the shared count at every position.
 *
 * --chunk-bytes N switches to bounded-memory ingestion: the input —
 * file, pipe, or stdin — is pulled through the engine in N-byte chunks
 * and is never materialized as a whole; resident memory is bounded by
 * the chunk size plus the largest value span still being emitted
 * (DESIGN.md §9).  With -r, N becomes the record reader's buffer size.
 *
 * Sidecar semi-indexes (DESIGN.md §14), single query + whole document
 * only (not -r, not --chunk-bytes):
 *   --index-save PATH   build a structural index of the input and
 *                       write it to PATH (after running the query warm)
 *   --index-load PATH   load PATH; when it describes the input, answer
 *                       skips from it, else warn and stream
 *   --index-cache       keep the sidecar next to the input file
 *                       (FILE.jski): load when fresh, (re)build and
 *                       save when missing or stale
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "index/structural_index.h"
#include "intervals/chunk_source.h"
#include "json/writer.h"
#include "kernels/kernel.h"
#include "path/parser.h"
#include "path/queryset.h"
#include "service/protocol.h"
#include "ski/explain.h"
#include "util/parse.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "ski/record_reader.h"
#include "ski/multi.h"
#include "ski/record_scanner.h"
#include "ski/sinks.h"
#include "ski/streamer.h"

using namespace jsonski;

namespace {

struct Options
{
    bool count_only = false;
    bool records = false;
    bool stats = false;
    bool explain_only = false;
    bool profile = false;
    size_t limit = 0;       // 0 = unlimited
    size_t chunk_bytes = 0; // 0 = materialize the input (legacy path)
    std::string index_save;
    std::string index_load;
    bool index_cache = false;
    std::vector<std::string> queries;
    std::string file;

    bool
    usesIndex() const
    {
        return !index_save.empty() || !index_load.empty() || index_cache;
    }
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: jsq [-c] [-r] [-s] [-p] [-n K] "
                 "[--chunk-bytes N]\n"
                 "           [--index-save PATH] [--index-load PATH] "
                 "[--index-cache]\n"
                 "           <query>[,<query>...] [file]\n");
    std::exit(2);
}

Options
parseArgs(int argc, char** argv)
{
    Options opt;
    int i = 1;
    for (; i < argc && argv[i][0] == '-'; ++i) {
        if (std::strcmp(argv[i], "-c") == 0) {
            opt.count_only = true;
        } else if (std::strcmp(argv[i], "-r") == 0) {
            opt.records = true;
        } else if (std::strcmp(argv[i], "-s") == 0) {
            opt.stats = true;
        } else if (std::strcmp(argv[i], "-e") == 0) {
            opt.explain_only = true;
        } else if (std::strcmp(argv[i], "-p") == 0 ||
                   std::strcmp(argv[i], "--profile") == 0) {
            opt.profile = true;
        } else if (std::strcmp(argv[i], "-n") == 0 && i + 1 < argc) {
            // Strict parse: '-n 5x' and '-n -1' are usage errors, not
            // silently-accepted garbage ('-n 0' stays "unlimited").
            if (!parseSize(argv[++i], opt.limit)) {
                std::fprintf(stderr, "jsq: bad -n value '%s'\n", argv[i]);
                usage();
            }
        } else if (std::strcmp(argv[i], "--chunk-bytes") == 0 &&
                   i + 1 < argc) {
            if (!parsePositiveSize(argv[++i], opt.chunk_bytes)) {
                std::fprintf(stderr,
                             "jsq: bad --chunk-bytes value '%s'\n",
                             argv[i]);
                usage();
            }
        } else if (std::strcmp(argv[i], "--index-save") == 0 &&
                   i + 1 < argc) {
            opt.index_save = argv[++i];
        } else if (std::strcmp(argv[i], "--index-load") == 0 &&
                   i + 1 < argc) {
            opt.index_load = argv[++i];
        } else if (std::strcmp(argv[i], "--index-cache") == 0) {
            opt.index_cache = true;
        } else {
            usage();
        }
    }
    if (i >= argc)
        usage();
    // Same top-level-comma splitting the jsqd wire protocol uses.
    opt.queries = service::splitQueries(argv[i++]);
    if (i < argc)
        opt.file = argv[i++];
    if (i != argc)
        usage();
    if (opt.usesIndex()) {
        if (opt.records || opt.chunk_bytes != 0 ||
            opt.queries.size() != 1) {
            std::fprintf(stderr,
                         "jsq: --index-* needs a single query over a "
                         "whole document (no -r, no --chunk-bytes)\n");
            usage();
        }
        if (opt.index_cache && opt.file.empty()) {
            std::fprintf(stderr, "jsq: --index-cache needs a file "
                                 "(the sidecar lives next to it)\n");
            usage();
        }
        if (opt.index_cache && !opt.index_load.empty()) {
            std::fprintf(stderr, "jsq: --index-cache and --index-load "
                                 "are mutually exclusive\n");
            usage();
        }
    }
    return opt;
}

std::string
readInput(const Options& opt)
{
    if (opt.file.empty()) {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        return ss.str();
    }
    std::ifstream in(opt.file, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "jsq: cannot open %s\n", opt.file.c_str());
        std::exit(1);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Print-and-maybe-stop sink used for the single-query path. */
class PrintSink : public path::MatchSink
{
  public:
    PrintSink(bool quiet, size_t limit) : quiet_(quiet), limit_(limit) {}

    void
    onMatch(std::string_view value) override
    {
        ++count;
        if (!quiet_)
            std::fwrite(value.data(), 1, value.size(), stdout),
                std::fputc('\n', stdout);
        if (limit_ != 0 && count >= limit_)
            throw ski::StopStreaming{};
    }

    size_t count = 0;

  private:
    bool quiet_;
    size_t limit_;
};

/**
 * Multi-query print sink.  Frames are tagged with the *representative*
 * command-line position of each distinct query (the first position that
 * asked for it), so `jsq '$.a,$.b,$.a'` labels matches q0/q1 and the
 * duplicate third query shares q0's stream — the same contract jsqd
 * puts on the wire.
 */
class PrintMultiSink : public ski::MultiSink
{
  public:
    PrintMultiSink(bool quiet, std::vector<size_t> tags)
        : quiet_(quiet), tags_(std::move(tags))
    {}

    void
    onMatch(size_t qi, std::string_view value) override
    {
        if (!quiet_) {
            std::printf("[q%zu] ",
                        qi < tags_.size() ? tags_[qi] : qi);
            std::fwrite(value.data(), 1, value.size(), stdout);
            std::fputc('\n', stdout);
        }
    }

  private:
    bool quiet_;
    std::vector<size_t> tags_;
};

/** Per-position count lines for -c: duplicates repeat their count. */
void
printMultiCounts(const std::vector<std::string>& queries,
                 const path::QuerySet& set,
                 const std::vector<size_t>& dist_counts)
{
    for (size_t i = 0; i < queries.size(); ++i)
        std::printf("q%zu %s: %zu\n", i, queries[i].c_str(),
                    dist_counts[set.id_of[i]]);
}

/**
 * -s report for the combined pass: whole-pass fast-forward ratio, the
 * shared-trie shape, and each distinct query's divergent-suffix replay
 * work (zero for queries fully resident in the trie).
 */
void
printMultiStats(const ski::MultiStreamer& ms,
                const ski::MultiStreamer::Result& r,
                size_t input_bytes)
{
    std::fprintf(stderr,
                 "fast-forwarded %.2f%% of %zu bytes; %zu distinct "
                 "queries over %zu trie nodes, %zu divergent "
                 "suffixes\n",
                 r.stats.overallRatio(input_bytes) * 100, input_bytes,
                 ms.queryCount(), ms.trieNodes(), ms.suffixCount());
    for (size_t qi = 0; qi < r.per_query.size(); ++qi) {
        uint64_t replay = r.per_query[qi].total();
        if (replay != 0)
            std::fprintf(stderr,
                         "  q%zu suffix replay fast-forwarded %llu "
                         "bytes\n",
                         qi,
                         static_cast<unsigned long long>(replay));
    }
}

/**
 * Emit the --profile report: a single machine-readable JSON object on
 * stdout plus the human-readable telemetry breakdown on stderr.  Multi-
 * query runs pass the combined pass's whole-run FastForwardStats
 * (suffix replays included).
 */
void
printProfile(const std::string& query, size_t input_bytes, size_t matches,
             const ski::FastForwardStats* stats,
             const telemetry::Registry& reg)
{
    json::Writer w;
    w.beginObject();
    w.key("schema");
    w.string("jsonski-profile-v1");
    w.key("kernel");
    w.string(kernels::activeName());
    w.key("query");
    w.string(query);
    w.key("input_bytes");
    w.number(static_cast<int64_t>(input_bytes));
    w.key("matches");
    w.number(static_cast<int64_t>(matches));
    w.key("telemetry_compiled");
    w.boolean(telemetry::kEnabled);
    if (stats != nullptr) {
        w.key("ff");
        w.beginObject();
        for (size_t g = 0; g < ski::kGroupCount; ++g) {
            auto grp = static_cast<ski::Group>(g);
            char key[16];
            std::snprintf(key, sizeof key, "G%zu", g + 1);
            w.key(key);
            w.number(static_cast<int64_t>(stats->get(grp)));
            std::snprintf(key, sizeof key, "G%zu_ratio", g + 1);
            w.key(key);
            w.number(stats->ratio(grp, input_bytes));
        }
        w.key("overall_ratio");
        w.number(stats->overallRatio(input_bytes));
        w.endObject();
    }
    w.key("telemetry");
    w.raw(telemetry::toJson(reg));
    w.endObject();
    std::printf("%s\n", w.take().c_str());
    std::fprintf(stderr, "%s", telemetry::renderReport(reg).c_str());
}

/**
 * Resolve the --index-save/--index-load/--index-cache flags against
 * the materialized input: the index to run warm with (if any), loaded
 * when a fresh sidecar exists, built otherwise, saved where asked.
 * A stale or corrupt sidecar is never an error — jsq warns and falls
 * back to streaming (or rebuilds, with --index-cache).
 */
std::optional<index::StructuralIndex>
resolveSidecar(const Options& opt, const std::string& input)
{
    std::optional<index::StructuralIndex> sidecar;
    if (!opt.index_load.empty()) {
        try {
            sidecar = index::loadIndexFile(opt.index_load);
            if (!sidecar->describes(input)) {
                std::fprintf(stderr,
                             "jsq: index %s does not describe this "
                             "input; streaming instead\n",
                             opt.index_load.c_str());
                sidecar.reset();
            }
        } catch (const index::IndexError& e) {
            // A bad sidecar is never trusted and never fatal: the
            // document itself is fine, so stream it.
            std::fprintf(stderr,
                         "jsq: index %s rejected (%s); streaming "
                         "instead\n",
                         opt.index_load.c_str(), e.what());
            sidecar.reset();
        }
    } else if (opt.index_cache) {
        std::string path = opt.file + ".jski";
        try {
            sidecar = index::loadIndexFile(path);
            if (!sidecar->describes(input))
                sidecar.reset(); // stale: the document changed
        } catch (const index::IndexError&) {
            sidecar.reset(); // missing or corrupt: rebuild below
        }
        if (!sidecar) {
            sidecar = index::StructuralIndex::build(input);
            index::saveIndexFile(*sidecar, path);
        }
    }
    if (!opt.index_save.empty()) {
        if (!sidecar)
            sidecar = index::StructuralIndex::build(input);
        index::saveIndexFile(*sidecar, opt.index_save);
    }
    return sidecar;
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt = parseArgs(argc, argv);
    if (opt.explain_only) {
        try {
            for (const std::string& q : opt.queries)
                std::printf("%s", ski::explain(path::parse(q)).c_str());
        } catch (const std::exception& e) {
            std::fprintf(stderr, "jsq: %s\n", e.what());
            return 1;
        }
        return 0;
    }
    try {
        if (opt.records && opt.queries.size() == 1) {
            // True streaming: a fixed window over the record stream.
            std::ifstream file;
            std::istream* in = &std::cin;
            if (!opt.file.empty()) {
                file.open(opt.file, std::ios::binary);
                if (!file) {
                    std::fprintf(stderr, "jsq: cannot open %s\n",
                                 opt.file.c_str());
                    return 1;
                }
                in = &file;
            }
            ski::RecordReader reader(
                *in, opt.chunk_bytes != 0 ? opt.chunk_bytes : 1 << 20);
            path::PathQuery query = path::parse(opt.queries[0]);
            if (opt.profile)
                std::fprintf(stderr, "%s", ski::explain(query).c_str());
            ski::Streamer streamer(query);
            PrintSink sink(opt.count_only || opt.profile, opt.limit);
            ski::FastForwardStats stats;
            telemetry::Registry reg;
            {
                telemetry::Scope scope(reg);
                std::string_view record;
                while (reader.next(record)) {
                    stats.merge(streamer.run(record, &sink).stats);
                    if (opt.limit != 0 && sink.count >= opt.limit)
                        break;
                }
            }
            if (opt.count_only)
                std::printf("%zu\n", sink.count);
            if (opt.profile)
                printProfile(opt.queries[0], reader.bytesRead(),
                             sink.count, &stats, reg);
            if (opt.stats) {
                std::fprintf(stderr,
                             "fast-forwarded %.2f%% of %zu record "
                             "bytes across %zu records\n",
                             stats.overallRatio(reader.bytesRead()) *
                                 100,
                             reader.bytesRead(), reader.recordsRead());
            }
            return 0;
        }

        if (!opt.records && opt.chunk_bytes != 0) {
            // Bounded-memory ingestion: pull the input through the
            // engine chunk by chunk, never materializing the document.
            std::FILE* f = nullptr;
            std::optional<intervals::FileSource> file_src;
            std::optional<intervals::IstreamSource> cin_src;
            intervals::ChunkSource* src = nullptr;
            if (!opt.file.empty()) {
                f = std::fopen(opt.file.c_str(), "rb");
                if (f == nullptr) {
                    std::fprintf(stderr, "jsq: cannot open %s\n",
                                 opt.file.c_str());
                    return 1;
                }
                file_src.emplace(f);
                src = &*file_src;
            } else {
                cin_src.emplace(std::cin);
                src = &*cin_src;
            }

            if (opt.queries.size() == 1) {
                path::PathQuery query = path::parse(opt.queries[0]);
                if (opt.profile)
                    std::fprintf(stderr, "%s",
                                 ski::explain(query).c_str());
                ski::Streamer streamer(query);
                PrintSink sink(opt.count_only || opt.profile, opt.limit);
                ski::StreamResult r;
                telemetry::Registry reg;
                {
                    telemetry::Scope scope(reg);
                    r = streamer.run(*src, &sink, opt.chunk_bytes);
                }
                if (opt.count_only)
                    std::printf("%zu\n", sink.count);
                if (opt.profile)
                    printProfile(opt.queries[0], r.input_bytes,
                                 sink.count, &r.stats, reg);
                if (opt.stats) {
                    std::fprintf(
                        stderr,
                        "fast-forwarded %.2f%% of %zu bytes; chunked "
                        "ingestion: %llu refills, %llu spill bytes, "
                        "window peak %zu bytes\n",
                        r.stats.overallRatio(r.input_bytes) * 100,
                        r.input_bytes,
                        static_cast<unsigned long long>(r.ingest.refills),
                        static_cast<unsigned long long>(
                            r.ingest.spill_bytes),
                        r.ingest.window_peak);
                }
            } else {
                // One combined pass: the multi-streamer normalizes the
                // list (dedup, canonical forms) exactly like the jsqd
                // plan cache, so duplicates share one match stream.
                ski::MultiStreamer ms(
                    path::QuerySet::fromTexts(opt.queries));
                const path::QuerySet& set = ms.querySet();
                if (opt.profile)
                    for (const path::PathQuery& q : ms.queries())
                        std::fprintf(stderr, "%s",
                                     ski::explain(q).c_str());
                PrintMultiSink sink(opt.count_only || opt.profile,
                                    set.representatives());
                ski::MultiStreamer::Result r;
                telemetry::Registry reg;
                {
                    telemetry::Scope scope(reg);
                    r = ms.run(*src, &sink, opt.chunk_bytes);
                }
                if (opt.count_only)
                    printMultiCounts(opt.queries, set, r.matches);
                if (opt.profile) {
                    size_t total = 0;
                    for (size_t m : r.matches)
                        total += m;
                    printProfile(service::joinQueries(opt.queries),
                                 r.input_bytes, total, &r.stats, reg);
                }
                if (opt.stats)
                    printMultiStats(ms, r, r.input_bytes);
            }
            if (f != nullptr)
                std::fclose(f);
            return 0;
        }

        std::string input = readInput(opt);
        std::vector<std::pair<size_t, size_t>> spans;
        if (opt.records)
            spans = ski::scanRecords(input);
        else
            spans.emplace_back(0, input.size());

        if (opt.queries.size() == 1) {
            path::PathQuery query = path::parse(opt.queries[0]);
            if (opt.profile)
                std::fprintf(stderr, "%s", ski::explain(query).c_str());
            std::optional<index::StructuralIndex> sidecar;
            if (opt.usesIndex())
                sidecar = resolveSidecar(opt, input);
            ski::Streamer streamer(query);
            PrintSink sink(opt.count_only || opt.profile, opt.limit);
            ski::FastForwardStats stats;
            telemetry::Registry reg;
            {
                telemetry::Scope scope(reg);
                for (auto [off, len] : spans) {
                    std::string_view slice =
                        std::string_view(input).substr(off, len);
                    ski::StreamResult r =
                        sidecar ? streamer.runIndexed(slice, *sidecar,
                                                      &sink)
                                : streamer.run(slice, &sink);
                    stats.merge(r.stats);
                    if (opt.limit != 0 && sink.count >= opt.limit)
                        break;
                }
            }
            if (opt.count_only)
                std::printf("%zu\n", sink.count);
            if (opt.profile)
                printProfile(opt.queries[0], input.size(), sink.count,
                             &stats, reg);
            if (opt.stats) {
                std::fprintf(stderr,
                             "fast-forwarded %.2f%% of %zu bytes "
                             "(G1..G5: %.1f%% %.1f%% %.1f%% %.1f%% "
                             "%.1f%%)\n",
                             stats.overallRatio(input.size()) * 100,
                             input.size(),
                             stats.ratio(ski::Group::G1, input.size()) * 100,
                             stats.ratio(ski::Group::G2, input.size()) * 100,
                             stats.ratio(ski::Group::G3, input.size()) * 100,
                             stats.ratio(ski::Group::G4, input.size()) * 100,
                             stats.ratio(ski::Group::G5, input.size()) * 100);
            }
        } else {
            // One combined pass per span: the multi-streamer
            // normalizes the list (dedup, canonical forms) exactly
            // like the jsqd plan cache, so duplicates share one match
            // stream.
            ski::MultiStreamer ms(
                path::QuerySet::fromTexts(opt.queries));
            const path::QuerySet& set = ms.querySet();
            if (opt.profile)
                for (const path::PathQuery& q : ms.queries())
                    std::fprintf(stderr, "%s", ski::explain(q).c_str());
            PrintMultiSink sink(opt.count_only || opt.profile,
                                set.representatives());
            ski::MultiStreamer::Result agg;
            agg.matches.assign(set.size(), 0);
            agg.per_query.assign(set.size(), ski::FastForwardStats{});
            telemetry::Registry reg;
            {
                telemetry::Scope scope(reg);
                for (auto [off, len] : spans) {
                    auto r = ms.run(
                        std::string_view(input).substr(off, len), &sink);
                    for (size_t qi = 0; qi < set.size(); ++qi) {
                        agg.matches[qi] += r.matches[qi];
                        agg.per_query[qi].merge(r.per_query[qi]);
                    }
                    agg.stats.merge(r.stats);
                }
            }
            if (opt.count_only)
                printMultiCounts(opt.queries, set, agg.matches);
            if (opt.profile) {
                size_t total = 0;
                for (size_t m : agg.matches)
                    total += m;
                printProfile(service::joinQueries(opt.queries),
                             input.size(), total, &agg.stats, reg);
            }
            if (opt.stats)
                printMultiStats(ms, agg, input.size());
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "jsq: %s\n", e.what());
        return 1;
    }
    return 0;
}
