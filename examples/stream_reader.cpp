/**
 * @file
 * Constant-memory stream processing: a large NDJSON feed is processed
 * through a small fixed buffer with the incremental RecordReader —
 * the paper's "memory consumption is configurable by adjusting the
 * input buffer size" claim, demonstrated end to end.
 *
 * The example writes a feed to a temporary file, then queries it with
 * a 64 KB window while the feed itself is tens of MB.
 *
 * Build & run:  ./examples/stream_reader [MB]
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "gen/datasets.h"
#include "path/parser.h"
#include "ski/record_reader.h"
#include "ski/streamer.h"
#include "util/stopwatch.h"

using namespace jsonski;

int
main(int argc, char** argv)
{
    size_t mb = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 32;
    const char* path = "/tmp/jsonski_feed.ndjson";

    std::printf("writing a %zu MB feed to %s...\n", mb, path);
    size_t feed_bytes = 0;
    size_t feed_records = 0;
    {
        gen::SmallRecords feed =
            gen::generateSmall(gen::DatasetId::WM, mb * 1024 * 1024);
        std::ofstream out(path, std::ios::binary);
        out.write(feed.buffer.data(),
                  static_cast<std::streamsize>(feed.buffer.size()));
        feed_bytes = feed.buffer.size();
        feed_records = feed.count();
    } // feed freed: from here on only the 64 KB window exists

    std::ifstream in(path, std::ios::binary);
    ski::RecordReader reader(in, 64 * 1024);
    ski::Streamer names(path::parse("$.nm"));
    ski::Streamer prices(path::parse("$.bmrpr.pr"));

    Stopwatch sw;
    size_t name_matches = 0, price_matches = 0;
    std::string_view record;
    while (reader.next(record)) {
        name_matches += names.run(record).matches;
        price_matches += prices.run(record).matches;
    }
    double secs = sw.seconds();

    std::printf("processed %zu records (%.1f MB) in %.3f s "
                "(%.2f GB/s over two queries)\n",
                reader.recordsRead(),
                reader.bytesRead() / 1048576.0, secs,
                2.0 * reader.bytesRead() / secs / 1e9);
    std::printf("buffer window  : %zu KB (vs %.1f MB feed)\n",
                reader.bufferSize() / 1024, feed_bytes / 1048576.0);
    std::printf("names found    : %zu / %zu\n", name_matches,
                feed_records);
    std::printf("marketplace pr : %zu\n", price_matches);
    std::remove(path);
    return 0;
}
