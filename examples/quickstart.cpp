/**
 * @file
 * Quickstart: evaluate a JSONPath query over one record with the
 * streaming API — the paper's running example (Figure 1).
 *
 * Build & run:  ./examples/quickstart
 */
#include <cstdio>

#include "path/parser.h"
#include "ski/streamer.h"

int
main()
{
    // The geo-referenced tweet of the paper's Figure 1.
    const char* tweet = R"({
      "coordinates": [40.74118764, -73.9998279],
      "user": {"id": 6253282},
      "place": {
        "name": "Manhattan",
        "bounding_box": {
          "type": "Polygon",
          "pos": [[-74.026675, 40.683935], [-74.026675, 40.877483],
                  [-73.910408, 40.877483], [-73.910408, 40.683935]]
        }
      }
    })";

    // One call: parse the path, stream the record, collect matches.
    jsonski::ski::QueryResult result =
        jsonski::ski::query(tweet, "$.place.name", /*collect=*/true);

    std::printf("query   : $.place.name\n");
    std::printf("matches : %zu\n", result.count);
    for (const std::string& v : result.values)
        std::printf("value   : %s\n", v.c_str());

    // The fast-forward statistics show how little of the record the
    // streamer actually examined.
    double ratio =
        result.stats.overallRatio(std::string_view(tweet).size());
    std::printf("fast-forwarded: %.1f%% of the input\n", ratio * 100.0);

    // Reusable form: compile the query once, run on many records.
    jsonski::ski::Streamer streamer(jsonski::path::parse("$.user.id"));
    jsonski::ski::CollectSink sink;
    streamer.run(tweet, &sink);
    std::printf("user id : %s\n", sink.values.at(0).c_str());
    return 0;
}
