/**
 * @file
 * jsqload — open-loop load generator for jsqd (service/loadgen.h).
 *
 * Usage:
 *   jsqload -p PORT [--host ADDR] [-q QUERY] [--body-bytes N]
 *           [--qps N] [--duration-ms N] [--connections N] [--frames]
 *
 * Offers a fixed request rate (--qps; 0 = closed loop, each connection
 * fires back-to-back) against a running jsqd and reports throughput
 * plus an HDR-style latency distribution (p50/p90/p99/p99.9/max).  In
 * open-loop mode latencies are measured from each request's *scheduled*
 * start, so a stalling server accrues queueing delay into the tail
 * instead of quietly shedding offered load (coordinated omission).
 *
 * The body is a synthesized `{"a": [1, 2, ...]}` document of roughly
 * --body-bytes bytes, queried with $.a[*] by default; --frames turns
 * off count-only mode so match frames stream back over the wire.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "service/loadgen.h"
#include "util/parse.h"

using namespace jsonski;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: jsqload -p PORT [--host ADDR] [-q QUERY] "
        "[--body-bytes N]\n"
        "               [--qps N] [--duration-ms N] [--connections N] "
        "[--frames]\n"
        "  --qps 0 (default) = closed loop\n");
    std::exit(2);
}

size_t
sizeArg(int argc, char** argv, int& i, bool positive = false)
{
    if (i + 1 >= argc)
        usage();
    size_t v = 0;
    bool ok = positive ? parsePositiveSize(argv[i + 1], v)
                       : parseSize(argv[i + 1], v);
    if (!ok) {
        std::fprintf(stderr, "jsqload: bad value for %s: '%s'\n",
                     argv[i], argv[i + 1]);
        usage();
    }
    ++i;
    return v;
}

/** `{"a": [1, 2, ...]}` padded to roughly @p target_bytes. */
std::string
synthBody(size_t target_bytes)
{
    std::string body = "{\"a\": [";
    uint64_t n = 0;
    while (body.size() + 16 < target_bytes) {
        if (n != 0)
            body += ", ";
        body += std::to_string(n % 1000000);
        ++n;
    }
    if (n == 0)
        body += "1";
    body += "]}";
    return body;
}

} // namespace

int
main(int argc, char** argv)
{
    service::LoadOptions opt;
    opt.query = "$.a[*]";
    size_t body_bytes = 4096;
    bool have_port = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-p") == 0 ||
            std::strcmp(argv[i], "--port") == 0) {
            size_t p = sizeArg(argc, argv, i, /*positive=*/true);
            if (p > 65535)
                usage();
            opt.port = static_cast<uint16_t>(p);
            have_port = true;
        } else if (std::strcmp(argv[i], "--host") == 0) {
            if (i + 1 >= argc)
                usage();
            opt.host = argv[++i];
        } else if (std::strcmp(argv[i], "-q") == 0 ||
                   std::strcmp(argv[i], "--query") == 0) {
            if (i + 1 >= argc)
                usage();
            opt.query = argv[++i];
        } else if (std::strcmp(argv[i], "--body-bytes") == 0) {
            body_bytes = sizeArg(argc, argv, i, true);
        } else if (std::strcmp(argv[i], "--qps") == 0) {
            opt.qps = static_cast<double>(sizeArg(argc, argv, i));
        } else if (std::strcmp(argv[i], "--duration-ms") == 0) {
            opt.duration_ms =
                static_cast<int>(sizeArg(argc, argv, i, true));
        } else if (std::strcmp(argv[i], "--connections") == 0) {
            opt.connections = sizeArg(argc, argv, i, true);
        } else if (std::strcmp(argv[i], "--frames") == 0) {
            opt.count_only = false;
        } else {
            usage();
        }
    }
    if (!have_port)
        usage();
    opt.body = synthBody(body_bytes);

    std::printf("jsqload: %s:%u  query=%s  body=%zu B  %s  "
                "%d ms  %zu connection(s)\n",
                opt.host.c_str(), static_cast<unsigned>(opt.port),
                opt.query.c_str(), opt.body.size(),
                opt.qps > 0
                    ? ("open loop @ " + std::to_string(opt.qps) + " qps")
                          .c_str()
                    : "closed loop",
                opt.duration_ms, opt.connections);

    service::LoadResult r = service::runLoad(opt);

    std::printf("requests: %llu attempted, %llu ok, %llu errors; "
                "%llu matches\n",
                static_cast<unsigned long long>(r.attempted),
                static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(r.errors),
                static_cast<unsigned long long>(r.matches));
    std::printf("throughput: %.0f req/s over %.2f s\n", r.throughput_rps,
                r.elapsed_s);
    std::printf("latency us%s: p50 %llu  p90 %llu  p99 %llu  "
                "p99.9 %llu  max %llu\n",
                opt.qps > 0 ? " (from scheduled start)" : "",
                static_cast<unsigned long long>(r.latency.percentile(50)),
                static_cast<unsigned long long>(r.latency.percentile(90)),
                static_cast<unsigned long long>(r.latency.percentile(99)),
                static_cast<unsigned long long>(
                    r.latency.percentile(99.9)),
                static_cast<unsigned long long>(r.latency.maxValue()));
    return r.errors == 0 ? 0 : 1;
}
