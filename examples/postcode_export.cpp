/**
 * @file
 * Column export from an open-data dump (NSPL-style): the root object
 * carries a small metadata header and a huge data array; the range
 * query `[2:4]` pulls two columns out of every row's nested geo array
 * while G5 fast-forwards everything out of range.  Demonstrates the
 * early-match effect the paper highlights for NSPL1: the metadata
 * query finishes after touching a fraction of the stream.
 *
 * Build & run:  ./examples/postcode_export [MB]
 */
#include <cstdio>
#include <cstdlib>

#include "gen/datasets.h"
#include "path/parser.h"
#include "ski/streamer.h"
#include "util/stopwatch.h"

using namespace jsonski;

namespace {

/** Sink that sums exported numeric cells instead of storing them. */
class SumSink : public ski::MatchSink
{
  public:
    void
    onMatch(std::string_view value) override
    {
        sum_ += std::strtod(std::string(value).c_str(), nullptr);
        ++cells_;
    }

    double sum() const { return sum_; }
    size_t cells() const { return cells_; }

  private:
    double sum_ = 0;
    size_t cells_ = 0;
};

} // namespace

int
main(int argc, char** argv)
{
    size_t mb = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
    std::printf("generating a %zu MB postcode-lookup dump...\n\n", mb);
    std::string dump =
        gen::generateLarge(gen::DatasetId::NSPL, mb * 1024 * 1024);

    // 1. Schema discovery: column names live in the metadata header at
    //    the very beginning of the stream.  After the last column name
    //    matches, G4 fast-forwards the entire data section.
    {
        ski::Streamer columns(path::parse("$.mt.vw.co[*].nm"));
        ski::CollectSink names;
        Stopwatch sw;
        ski::StreamResult r = columns.run(dump, &names);
        std::printf("schema: %zu columns in %.2f ms "
                    "(%.2f%% of the stream fast-forwarded)\n",
                    r.matches, sw.milliseconds(),
                    r.stats.overallRatio(dump.size()) * 100.0);
        std::printf("  first columns: %s, %s, %s...\n",
                    names.values[0].c_str(), names.values[1].c_str(),
                    names.values[2].c_str());
    }

    // 2. Column export: grid references are cells [2:4] of each row's
    //    nested geo array.
    {
        ski::Streamer cells(path::parse("$.dt[*][*][2:4]"));
        SumSink sums;
        Stopwatch sw;
        ski::StreamResult r = cells.run(dump, &sums);
        double s = sw.seconds();
        std::printf("\nexport: %zu cells in %.3f s (%.2f GB/s)\n",
                    sums.cells(), s, dump.size() / s / 1e9);
        std::printf("  mean grid value: %.1f\n",
                    sums.sum() / static_cast<double>(sums.cells()));
        std::printf("  G1 (type-matched skips): %.2f%%   "
                    "G5 (range skips): %.2f%%\n",
                    r.stats.ratio(ski::Group::G1, dump.size()) * 100.0,
                    r.stats.ratio(ski::Group::G5, dump.size()) * 100.0);
    }
    return 0;
}
