#!/usr/bin/env bash
# One-shot reproduction: build, test, regenerate every table/figure
# into results/, and verify the comparative shapes against the paper.
#
# Usage:  scripts/reproduce.sh [scale_mb]
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE_MB="${1:-32}"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for b in build/bench/bench_table4_datasets build/bench/bench_table5_queries \
         build/bench/bench_table23_methods \
         build/bench/bench_fig10_large_record build/bench/bench_fig11_small_seq \
         build/bench/bench_fig12_small_par build/bench/bench_fig13_memory \
         build/bench/bench_table6_ff_ratio build/bench/bench_fig14_scalability \
         build/bench/bench_ablation build/bench/bench_ext_multiquery \
         build/bench/bench_ext_parallel build/bench/bench_ext_descendant; do
    name=$(basename "$b" | sed 's/^bench_//')
    echo "== $name =="
    "$b" "$SCALE_MB" | tee "results/${name}.txt"
done

python3 scripts/check_shapes.py results
