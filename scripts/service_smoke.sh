#!/usr/bin/env bash
# Black-box smoke of the query service: boot jsqd, drive it with jsqc
# over a small corpus, and diff every answer against the jsq CLI (the
# direct, no-wire evaluation of the same engine).  Also checks the
# typed error path on a malformed body, length-framed + adversarially
# chunked uploads, the Prometheus stats scrape, and that a SIGTERM
# drain exits 0.  Run under ASan+UBSan in CI so protocol and shutdown
# paths execute sanitized end to end.
#
# Usage: scripts/service_smoke.sh [build-dir]
set -euo pipefail

BUILD=${1:-build}
JSQD="$BUILD/examples/jsqd"
JSQC="$BUILD/examples/jsqc"
JSQ="$BUILD/examples/jsq"
JSQLOAD="$BUILD/examples/jsqload" # optional: exercised when built

for bin in "$JSQD" "$JSQC" "$JSQ"; do
    [ -x "$bin" ] || { echo "missing binary: $bin" >&2; exit 1; }
done

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

port=$(( (RANDOM % 20000) + 20000 ))
"$JSQD" -p "$port" --workers 2 --shards 2 >"$tmp/jsqd.out" 2>"$tmp/jsqd.err" &
pid=$!
for _ in $(seq 100); do
    grep -q "listening" "$tmp/jsqd.out" 2>/dev/null && break
    kill -0 "$pid" 2>/dev/null || { cat "$tmp/jsqd.err" >&2; exit 1; }
    sleep 0.1
done
grep -q "listening" "$tmp/jsqd.out"
echo "jsqd up on port $port"

# --- corpus: every (doc, query) answer must match the jsq CLI -------
cat >"$tmp/doc1.json" <<'EOF'
{"products": [{"id": 1, "name": "ski"}, {"id": 2, "name": "jump"}],
 "total": 2}
EOF
cat >"$tmp/doc2.json" <<'EOF'
{"user": {"entities": {"url": {"urls": [{"url": "u1"}, {"url": "u2"}]}}},
 "text": "tweet \"quoted\" text\nsecond line", "retweet_count": 3}
EOF
cat >"$tmp/doc3.json" <<'EOF'
[{"k": [1, 2, 3]}, {"k": []}, {"k": [4.5e2, true, null]}]
EOF

queries1='$.products[*].name $.products[*].id $.total $.missing'
queries2='$.user.entities.url.urls[*].url $.retweet_count $.text'
queries3='$[*].k[*] $[1:3].k'

for n in 1 2 3; do
    doc="$tmp/doc$n.json"
    eval "queries=\$queries$n"
    for q in $queries; do
        "$JSQ" "$q" "$doc" >"$tmp/expected" 2>/dev/null
        "$JSQC" -p "$port" "$q" "$doc" >"$tmp/got"
        diff -u "$tmp/expected" "$tmp/got" || {
            echo "MISMATCH doc$n query $q" >&2; exit 1; }
    done
done
echo "corpus answers match jsq"

# Multi-query counts agree too.
"$JSQ" -c '$.products[*].name,$.total' "$tmp/doc1.json" >"$tmp/expected"
"$JSQC" -p "$port" -c '$.products[*].name,$.total' "$tmp/doc1.json" \
    >"$tmp/got"
diff -u "$tmp/expected" "$tmp/got"
echo "multi-query counts match jsq"

# A 3-query batch answers one combined pass; each per-query count must
# equal the answer of a separate single-query request.
set -- '$.products[*].name' '$.products[*].id' '$.total'
"$JSQC" -p "$port" -c "$1,$2,$3" "$tmp/doc1.json" >"$tmp/batch"
i=0
for q in "$@"; do
    solo=$("$JSQC" -p "$port" -c "$q" "$tmp/doc1.json")
    batch=$(awk -v n="q$i" '$1 == n {print $NF}' "$tmp/batch")
    [ "$solo" = "$batch" ] || {
        echo "batch count mismatch for $q: solo=$solo batch=$batch" >&2
        exit 1; }
    i=$((i + 1))
done
echo "3-query batch per-query counts match solo requests"

# --- protocol edges -------------------------------------------------
# Length-framed body written 7 bytes at a time.
"$JSQC" -p "$port" --length --chunk 7 '$.total' "$tmp/doc1.json" \
    >"$tmp/got"
[ "$(cat "$tmp/got")" = "2" ]
echo "length-framed chunked upload ok"

# doc= repeat-query document: answers must still match jsq, and the
# trailer's index= verdict must go miss (cold build) then hit (cached
# semi-index) when the same bytes are re-queried.  --shards 2 means the
# two requests can land on different shards with separate cache
# partitions, so accept miss/hit for the second request but require
# its answer to be identical either way.
"$JSQ" '$.products[*].name' "$tmp/doc1.json" >"$tmp/expected"
"$JSQC" -p "$port" -s --doc smoke1 '$.products[*].name' \
    "$tmp/doc1.json" >"$tmp/got" 2>"$tmp/goterr"
diff -u "$tmp/expected" "$tmp/got"
grep -q "index=miss" "$tmp/goterr" || {
    cat "$tmp/goterr" >&2
    echo "first doc= request should be an index miss" >&2; exit 1; }
"$JSQC" -p "$port" -s --doc smoke1 '$.products[*].name' \
    "$tmp/doc1.json" >"$tmp/got" 2>"$tmp/goterr"
diff -u "$tmp/expected" "$tmp/got"
grep -Eq "index=(hit|miss)" "$tmp/goterr" || {
    cat "$tmp/goterr" >&2
    echo "second doc= request lost its index verdict" >&2; exit 1; }
echo "doc= warm path answers match jsq"

# Malformed body: typed error trailer, client exits nonzero.
printf '{"a": [1, 2' >"$tmp/bad.json"
if "$JSQC" -p "$port" '$.a' "$tmp/bad.json" >"$tmp/got" 2>"$tmp/goterr"
then
    echo "malformed body unexpectedly accepted" >&2; exit 1
fi
grep -q "server error:" "$tmp/goterr"
echo "malformed body rejected with a typed trailer"

# Bad query: rejected, daemon unharmed.
if "$JSQC" -p "$port" '$.a[' "$tmp/doc1.json" >/dev/null 2>&1; then
    echo "malformed query unexpectedly accepted" >&2; exit 1
fi

# --- stats scrape ---------------------------------------------------
"$JSQC" -p "$port" --stats >"$tmp/stats"
# The daemon must report which runtime SIMD kernel it dispatched to;
# when JSONSKI_KERNEL is set in the smoke environment the scrape must
# agree with it.
kernel=$(sed -n 's/^jsonski_server_kernel_info{kernel="\([^"]*\)"} 1$/\1/p' \
    "$tmp/stats")
[ -n "$kernel" ] || { echo "no kernel_info in stats scrape" >&2; exit 1; }
if [ -n "${JSONSKI_KERNEL:-}" ] && [ "$kernel" != "$JSONSKI_KERNEL" ]; then
    echo "kernel mismatch: stats say $kernel, env wants $JSONSKI_KERNEL" >&2
    exit 1
fi
echo "active kernel: $kernel"
grep -q "jsonski_server_requests_total" "$tmp/stats"
grep -q "jsonski_server_responses_error" "$tmp/stats"
grep -q "jsonski_server_plan_cache_hits" "$tmp/stats"
grep -q "jsonski_server_doc_index_cache_misses" "$tmp/stats"
misses=$(awk '/^jsonski_server_doc_index_cache_misses /{print $2}' "$tmp/stats")
[ "$misses" -ge 1 ] # the doc= leg above built at least one index
errors=$(awk '/^jsonski_server_responses_error /{print $2}' "$tmp/stats")
[ "$errors" -ge 2 ] # the two rejections above are accounted for
echo "stats scrape ok (responses_error=$errors)"

# --- per-shard series -----------------------------------------------
# Two shards were requested; the scrape must say so and expose one
# labelled requests series per shard that sums to the merged total.
shards=$(awk '/^jsonski_server_shards /{print $2}' "$tmp/stats")
[ "$shards" = "2" ] || { echo "expected 2 shards, got '$shards'" >&2; exit 1; }
total=$(awk '/^jsonski_server_requests_total /{print $2}' "$tmp/stats")
s0=$(sed -n 's/^jsonski_server_shard_requests_total{shard="0"} //p' "$tmp/stats")
s1=$(sed -n 's/^jsonski_server_shard_requests_total{shard="1"} //p' "$tmp/stats")
[ -n "$s0" ] && [ -n "$s1" ] || {
    echo "missing per-shard requests series" >&2; exit 1; }
[ "$((s0 + s1))" -eq "$total" ] || {
    echo "shard requests $s0 + $s1 != total $total" >&2; exit 1; }
echo "per-shard scrape ok (shard0=$s0 shard1=$s1 total=$total)"

# --- load generator (when built) ------------------------------------
# A short open-loop burst across both shards: every request must
# succeed, which exercises the accept path, deadline plumbing, and
# per-shard telemetry under real concurrency.
if [ -x "$JSQLOAD" ]; then
    "$JSQLOAD" -p "$port" -q '$.a[*]' --qps 200 --duration-ms 500 \
        --connections 4 >"$tmp/load.out"
    grep -q ", 0 errors;" "$tmp/load.out" || {
        cat "$tmp/load.out" >&2
        echo "jsqload reported errors" >&2; exit 1; }
    echo "jsqload open-loop burst ok"
fi

# --- graceful SIGTERM drain ----------------------------------------
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" -eq 0 ] || { echo "drain exited $rc" >&2; exit 1; }
grep -q "drained:" "$tmp/jsqd.err"
echo "SIGTERM drain exited 0"
echo "service smoke: PASS"
