#!/usr/bin/env python3
"""Organise bench output for check_shapes.py / reproduce.sh.

Three modes:

1. JSON (preferred): point it at a ``BENCH_*.json`` file, or at a
   directory containing several, and each report is pretty-printed to
   ``results/<artifact>.json``::

       scripts/split_bench_output.py build/bench results/

2. Text fallback: a concatenated ``for b in build/bench/*`` sweep
   transcript is split on banners into per-artifact ``.txt`` files,
   exactly as before the benches learned to emit JSON.

3. Trend diff: compare two machine-readable reports row by row::

       scripts/split_bench_output.py --diff old/BENCH_x.json new/BENCH_x.json

   Rows are keyed by (query, engine); every shared numeric metric gets
   a percentage delta, so a throughput regression shows up as e.g.
   ``gbps -12.3%``.
"""

import json
import re
import sys
from pathlib import Path

BANNER_TO_FILE = {
    "Table 4": "table4_datasets.txt",
    "Table 5": "table5_queries.txt",
    "Table 2": "table23_methods.txt",
    "Table 6": "table6_ff_ratio.txt",
    "Figure 10": "fig10_large_record.txt",
    "Figure 11": "fig11_small_seq.txt",
    "Figure 12": "fig12_small_par.txt",
    "Figure 13": "fig13_memory.txt",
    "Figure 14": "fig14_scalability.txt",
    "Ablation": "ablation.txt",
    "Extension: multi-query": "ext_multiquery.txt",
    "Extension: parallel JSONSki": "ext_parallel.txt",
    "Extension: descendant operator": "ext_descendant.txt",
}

SCHEMA = "jsonski-bench-v1"


def load_report(path: Path) -> dict:
    doc = json.loads(path.read_text())
    if doc.get("schema") != SCHEMA:
        sys.exit(f"{path}: not a {SCHEMA} report "
                 f"(schema={doc.get('schema')!r})")
    return doc


def split_json(paths, out_dir: Path) -> None:
    out_dir.mkdir(exist_ok=True)
    for path in paths:
        doc = load_report(path)
        dest = out_dir / f"{doc['artifact']}.json"
        dest.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {dest} ({len(doc.get('rows', []))} rows)")


def split_text(src: Path, out_dir: Path) -> None:
    out_dir.mkdir(exist_ok=True)
    current = None
    chunks = {}
    for line in src.read_text().splitlines(keepends=True):
        m = re.match(r"^== (.+) ==$", line.rstrip())
        if m:
            label = m.group(1).strip()
            current = None
            for prefix, fname in BANNER_TO_FILE.items():
                if label.startswith(prefix):
                    current = fname
                    break
        if current:
            chunks.setdefault(current, []).append(line)
    for fname, lines in chunks.items():
        (out_dir / fname).write_text("".join(lines))
        print(f"wrote {out_dir / fname} ({len(lines)} lines)")


def numeric_metrics(row: dict):
    """Flat {name: value} for every numeric field, descending into the
    ff sub-object (telemetry is too deep to diff usefully here)."""
    out = {}
    for key, value in row.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[key] = float(value)
        elif key == "ff" and isinstance(value, dict):
            for k, v in value.items():
                if isinstance(v, (int, float)) and not isinstance(v, bool):
                    out[f"ff.{k}"] = float(v)
    return out


def diff_reports(old_path: Path, new_path: Path) -> int:
    old_doc = load_report(old_path)
    new_doc = load_report(new_path)
    old_rows = {(r["query"], r["engine"]): r for r in old_doc["rows"]}
    new_rows = {(r["query"], r["engine"]): r for r in new_doc["rows"]}

    print(f"diff {old_path} -> {new_path} "
          f"(artifact {new_doc['artifact']})")
    shared = sorted(old_rows.keys() & new_rows.keys())
    for key in shared:
        old_m = numeric_metrics(old_rows[key])
        new_m = numeric_metrics(new_rows[key])
        deltas = []
        for name in sorted(old_m.keys() & new_m.keys()):
            a, b = old_m[name], new_m[name]
            if a == b:
                continue
            if a == 0:
                deltas.append(f"{name} {a:g} -> {b:g}")
            else:
                deltas.append(f"{name} {100.0 * (b - a) / a:+.1f}%")
        label = f"{key[0]} / {key[1]}"
        print(f"  {label}: {', '.join(deltas) if deltas else 'unchanged'}")
    for key in sorted(old_rows.keys() - new_rows.keys()):
        print(f"  {key[0]} / {key[1]}: removed")
    for key in sorted(new_rows.keys() - old_rows.keys()):
        print(f"  {key[0]} / {key[1]}: added")
    return 0


def main() -> int:
    args = sys.argv[1:]
    if args and args[0] == "--diff":
        if len(args) != 3:
            sys.exit("usage: split_bench_output.py --diff old.json new.json")
        return diff_reports(Path(args[1]), Path(args[2]))

    src = Path(args[0] if args else "bench_output.txt")
    out_dir = Path(args[1] if len(args) > 1 else "results")
    if src.is_dir():
        reports = sorted(src.glob("BENCH_*.json"))
        if not reports:
            sys.exit(f"{src}: no BENCH_*.json files found")
        split_json(reports, out_dir)
    elif src.suffix == ".json":
        split_json([src], out_dir)
    else:
        split_text(src, out_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
