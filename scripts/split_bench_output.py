#!/usr/bin/env python3
"""Split a concatenated `for b in build/bench/*` sweep transcript into
per-artifact files under results/, named the way check_shapes.py and
reproduce.sh expect."""

import re
import sys
from pathlib import Path

BANNER_TO_FILE = {
    "Table 4": "table4_datasets.txt",
    "Table 5": "table5_queries.txt",
    "Table 2": "table23_methods.txt",
    "Table 6": "table6_ff_ratio.txt",
    "Figure 10": "fig10_large_record.txt",
    "Figure 11": "fig11_small_seq.txt",
    "Figure 12": "fig12_small_par.txt",
    "Figure 13": "fig13_memory.txt",
    "Figure 14": "fig14_scalability.txt",
    "Ablation": "ablation.txt",
    "Extension: multi-query": "ext_multiquery.txt",
    "Extension: parallel JSONSki": "ext_parallel.txt",
    "Extension: descendant operator": "ext_descendant.txt",
}


def main():
    src = Path(sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt")
    out_dir = Path(sys.argv[2] if len(sys.argv) > 2 else "results")
    out_dir.mkdir(exist_ok=True)

    current = None
    chunks = {}
    for line in src.read_text().splitlines(keepends=True):
        m = re.match(r"^== (.+) ==$", line.rstrip())
        if m:
            label = m.group(1).strip()
            current = None
            for prefix, fname in BANNER_TO_FILE.items():
                if label.startswith(prefix):
                    current = fname
                    break
        if current:
            chunks.setdefault(current, []).append(line)
    for fname, lines in chunks.items():
        (out_dir / fname).write_text("".join(lines))
        print(f"wrote {out_dir / fname} ({len(lines)} lines)")


if __name__ == "__main__":
    main()
