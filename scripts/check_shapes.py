#!/usr/bin/env python3
"""Automated shape verification for the paper reproduction.

Parses the bench outputs (saved under results/, or piped files given as
arguments) and asserts the comparative *shapes* EXPERIMENTS.md claims
must hold:

  S1  Table 5: every engine agrees on every query's match count.
  S2  Fig 10: JSONSki is the fastest serial method on every query.
  S3  Fig 10: JSONSki beats the simdjson-class engine by >= 2x geomean.
  S4  Table 6: overall fast-forward ratio >= 90% on every query.
  S5  Fig 13: streaming engines take ~0 extra heap; every
      preprocessing engine takes >= 0.5x the input on every query.
  S6  Fig 14: every method scales linearly (time ratio tracks the size
      ratio within 2x).

Usage:
    python3 scripts/check_shapes.py [results_dir]

Exit code 0 iff every shape holds.
"""

import math
import re
import sys
from pathlib import Path


def rows(path, ncols_min):
    """Yield whitespace-split data rows of a fixed-width table file."""
    for line in Path(path).read_text().splitlines():
        parts = line.split()
        if len(parts) >= ncols_min and re.match(r"^[A-Z]{2,4}[0-9]$",
                                                parts[0]):
            yield parts


def check(name, ok, detail=""):
    print(f"{'PASS' if ok else 'FAIL'}  {name}" +
          (f"  ({detail})" if detail else ""))
    return ok


def main():
    results = Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    ok = True

    # S1: Table 5 agreement.
    t5 = list(rows(results / "table5_queries.txt", 5))
    ok &= check("S1 table5: all engines agree on all queries",
                len(t5) == 12 and all(r[-2] == "yes" for r in t5),
                f"{sum(r[-2] == 'yes' for r in t5)}/12 agree")

    # S2/S3: Figure 10 ranking.
    f10 = list(rows(results / "fig10_large_record.txt", 8))
    # Columns: Query JPStream DOM tape Pison JSONSki JP(16) Pison(16) spd
    serial = [(r[0], [float(x) for x in r[1:6]]) for r in f10]
    fastest = all(min(times) == times[4] for _, times in serial)
    ok &= check("S2 fig10: JSONSki fastest serial on every query",
                len(serial) == 12 and fastest)
    geo = math.exp(
        sum(math.log(t[2] / t[4]) for _, t in serial) / len(serial))
    ok &= check("S3 fig10: >=2x geomean over simdjson-class", geo >= 2.0,
                f"geomean {geo:.1f}x (paper: 4.8x)")

    # S4: Table 6 overall ratios.
    t6 = list(rows(results / "table6_ff_ratio.txt", 8))
    overall = [float(r[6].rstrip("%")) for r in t6]
    ok &= check("S4 table6: overall fast-forward >= 90% everywhere",
                len(overall) == 12 and min(overall) >= 90.0,
                f"min {min(overall):.1f}% (paper min: 95.9%)")

    # S5: Figure 13 memory shape.
    f13 = list(rows(results / "fig13_memory.txt", 12))
    mem_ok = True
    for r in f13:
        # Query input MB JPStream MB DOM MB tape MB Pison MB JSONSki MB
        nums = [float(x) for x in r[1::2][0:6]]
        input_mb, jp, dm, tp, pi, ski = nums
        mem_ok &= jp < 0.05 * input_mb and ski < 0.05 * input_mb
        mem_ok &= (dm >= 0.5 * input_mb and tp >= 0.5 * input_mb and
                   pi >= 0.3 * input_mb)
    ok &= check("S5 fig13: streaming ~0 extra heap, preprocessing >=",
                len(f13) == 12 and mem_ok)

    # S6: Figure 14 linearity.
    f14 = [l.split() for l in
           (results / "fig14_scalability.txt").read_text().splitlines()
           if re.match(r"^\d+\.\d+ MB", l)]
    lin_ok = len(f14) >= 3
    if lin_ok:
        small, large = f14[0], f14[-1]
        size_ratio = float(large[0]) / float(small[0])
        for col in (2, 5, 8, 11, 14):  # the five time columns
            t_ratio = float(large[col]) / float(small[col])
            lin_ok &= 0.5 * size_ratio <= t_ratio <= 2.0 * size_ratio
    ok &= check("S6 fig14: linear scaling for every method", lin_ok)

    print("\nall shapes hold" if ok else "\nSHAPE REGRESSION")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
