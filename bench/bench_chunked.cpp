/**
 * @file
 * Chunked-ingestion overhead and footprint: whole-buffer evaluation
 * vs. the bounded-memory chunked path (DESIGN.md §9) on the paper's
 * large-record queries, at several refill granularities.
 *
 * Expected shape: the chunked path pays a small constant tax per refill
 * (memmove of held bytes, window bookkeeping) on top of the identical
 * fast-forward work, so throughput should sit within a few percent of
 * whole-buffer at 64 KiB chunks and degrade gracefully at 4 KiB —
 * while peak extra heap stays near the chunk size instead of the input
 * size.
 */
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/engines.h"
#include "harness/runner.h"
#include "intervals/chunk_source.h"
#include "path/parser.h"
#include "ski/streamer.h"
#include "util/mem_stats.h"

using namespace jsonski;
using namespace jsonski::harness;

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 32);
    bench::banner("Chunked ingestion",
                  "whole-buffer vs. bounded-memory chunked path, "
                  "total time (s)",
                  bytes);
    BenchReport report("chunked_ingestion",
                      "whole-buffer vs. chunked streaming");
    report.inputBytes(bytes);

    const size_t kChunks[] = {size_t{4} << 10, size_t{64} << 10,
                              size_t{1} << 20};

    std::vector<std::string> header = {"Query", "whole"};
    std::vector<int> widths = {6, 12};
    for (size_t c : kChunks) {
        header.push_back("chunk=" + std::to_string(c >> 10) + "K");
        widths.push_back(12);
    }
    header.push_back("refills@4K");
    header.push_back("spill@4K");
    header.push_back("peak-heap@4K");
    widths.push_back(11);
    widths.push_back(11);
    widths.push_back(13);
    printTableHeader(header, widths);

    for (const QuerySpec& spec : paperQueries()) {
        std::string json = gen::generateLarge(spec.dataset, bytes);
        auto q = path::parse(spec.large_query);
        ski::Streamer streamer(q);

        std::vector<std::string> row = {std::string(spec.id)};

        Timing whole =
            timeBest([&] { return streamer.runResident(json).matches; }, 2);
        row.push_back(fmtSeconds(whole.seconds));
        report.beginRow(spec.id, "whole-buffer");
        report.timing(whole, json.size());

        ski::StreamResult probe_4k;
        size_t extra_heap_4k = 0;
        for (size_t chunk : kChunks) {
            Timing t = timeBest(
                [&] {
                    intervals::ViewSource src(json, chunk);
                    return streamer.run(src, nullptr, chunk).matches;
                },
                2);
            row.push_back(fmtSeconds(t.seconds));
            std::string label = "chunked-" +
                                std::to_string(chunk >> 10) + "K";
            report.beginRow(spec.id, label);
            report.timing(t, json.size());

            // One untimed probe run for the ingestion counters and the
            // heap high-water mark of the evaluation itself.
            mem::resetPeak();
            size_t before = mem::current();
            intervals::ViewSource src(json, chunk);
            ski::StreamResult r = streamer.run(src, nullptr, chunk);
            size_t extra = mem::peak() - before;
            report.metric("refills", r.ingest.refills);
            report.metric("spill_bytes", r.ingest.spill_bytes);
            report.metric("seam_straddles", r.ingest.seam_straddles);
            report.metric("window_peak_bytes",
                          static_cast<uint64_t>(r.ingest.window_peak));
            report.metric("extra_heap_bytes",
                          static_cast<uint64_t>(extra));
            if (chunk == kChunks[0]) {
                probe_4k = r;
                extra_heap_4k = extra;
            }
        }
        char buf[32];
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(
                          probe_4k.ingest.refills));
        row.push_back(buf);
        row.push_back(fmtMb(probe_4k.ingest.spill_bytes));
        row.push_back(fmtMb(extra_heap_4k));
        printTableRow(row, widths);
    }
    report.write();
    std::printf("\nchunked columns stream the same bytes through a "
                "sliding window; peak-heap@4K is the evaluation's heap "
                "high-water mark (window + driver state), vs. an input "
                "of %s resident for the whole-buffer runs.\n",
                fmtMb(bytes).c_str());
    return 0;
}
