/**
 * @file
 * Zero-overhead guard for the telemetry hooks (DESIGN.md §8 contract):
 * times the JSONSki streamer on a large record twice in-process — once
 * with no telemetry scope installed, once recording into a Registry —
 * and compares best-of-N throughput.
 *
 * In the default build (JSONSKI_TELEMETRY=OFF) the hooks compile to
 * nothing, so the two runs must be identical up to timer noise: a
 * relative delta beyond JSONSKI_GUARD_TOLERANCE (default 5%; CI smoke
 * uses a looser bound on shared runners) fails the binary with exit 1.
 * In telemetry-on builds the delta is reported but never fatal —
 * recording overhead is the price of that configuration, and the run
 * instead sanity-checks that the recorded skipped-byte totals equal
 * the FastForwardStats accounting.
 */
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/engines.h"
#include "harness/runner.h"
#include "path/parser.h"
#include "ski/streamer.h"

using namespace jsonski;
using namespace jsonski::harness;

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 32);
    bench::banner("Telemetry guard",
                  "hook overhead with scope vs without", bytes);
    std::printf("telemetry hooks compiled: %s\n\n",
                telemetry::kEnabled ? "ON" : "OFF (must be free)");

    double tolerance = 0.05;
    if (const char* env = std::getenv("JSONSKI_GUARD_TOLERANCE"))
        tolerance = std::strtod(env, nullptr);

    BenchReport report("telemetry_guard",
                       "hook overhead with scope vs without");
    report.inputBytes(bytes);

    // BB1 exercises every hook class: G1/G5 scans, pairing, emits.
    std::string json = gen::generateLarge(gen::DatasetId::BB, bytes);
    auto q = path::parse("$.pd[*].cp[1:3].id");
    ski::Streamer streamer(q);

    Timing plain = timeBest([&] { return streamer.run(json).matches; }, 3);

    telemetry::Registry reg;
    Timing scoped = timeBest(
        [&] {
            reg.reset();
            telemetry::Scope scope(reg);
            return streamer.run(json).matches;
        },
        3);

    double delta =
        (scoped.seconds - plain.seconds) / plain.seconds;
    printTableHeader({"Mode", "best (s)", "median (s)", "rel stddev"},
                     {10, 12, 12, 11});
    printTableRow({"no scope", fmtSeconds(plain.seconds),
                   fmtSeconds(plain.median),
                   fmtPercent(plain.rel_stddev)},
                  {10, 12, 12, 11});
    printTableRow({"scoped", fmtSeconds(scoped.seconds),
                   fmtSeconds(scoped.median),
                   fmtPercent(scoped.rel_stddev)},
                  {10, 12, 12, 11});
    std::printf("\nscope overhead: %+.2f%% (tolerance %.0f%%)\n",
                delta * 100.0, tolerance * 100.0);

    report.beginRow("BB1", "no-scope");
    report.timing(plain, json.size());
    report.beginRow("BB1", "scoped");
    report.timing(scoped, json.size());
    report.metric("overhead_delta", delta);
    report.metric("tolerance", tolerance);

    int rc = 0;
    if (!telemetry::kEnabled) {
        if (std::fabs(delta) > tolerance) {
            std::printf("FAIL: telemetry-off build shows measurable "
                        "hook overhead — the zero-cost contract is "
                        "broken.\n");
            rc = 1;
        } else {
            std::printf("OK: hooks are free when compiled out.\n");
        }
    } else {
        // Differential check: the registry's per-group bytes must equal
        // the FastForwardStats accounting for the same run.
        ski::FastForwardStats stats;
        reg.reset();
        {
            telemetry::Scope scope(reg);
            (void)runJsonSkiWithStats(json, q, stats);
        }
        bool ok = true;
        for (size_t g = 0; g < ski::kGroupCount; ++g)
            ok = ok && reg.skipped[g] ==
                           stats.get(static_cast<ski::Group>(g));
        std::printf("%s: telemetry skipped-byte totals %s "
                    "FastForwardStats.\n",
                    ok ? "OK" : "FAIL", ok ? "match" : "DIVERGE from");
        if (!ok)
            rc = 1;
    }
    report.metric("guard_ok", static_cast<uint64_t>(rc == 0));
    report.write();
    return rc;
}
