/**
 * @file
 * Extension experiment: the cached structural semi-index
 * (DESIGN.md §14) on the build-once / query-many workload it exists
 * for.
 *
 * Three regimes per dataset, same query, same bytes:
 *  - streaming:     the plain one-pass JSONSki run (no index anywhere);
 *  - cold-indexed:  build the semi-index AND answer the query — the
 *                   price of the *first* query against a document;
 *  - warm-indexed:  answer from an already-cached index — every query
 *                   after the first (a jsqd doc= cache hit).
 *
 * Warm < cold always holds (cold = warm + the build); the interesting
 * number is warm vs streaming — how much of the stream time the
 * precomputed colon/comma/open/close bitmaps buy back — plus the
 * sidecar footprint that residency costs (sidecar and in-memory bytes
 * as a fraction of the document).
 */
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/runner.h"
#include "index/structural_index.h"
#include "path/parser.h"
#include "ski/streamer.h"

using namespace jsonski;
using namespace jsonski::harness;

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 32);
    bench::banner("Extension: cached structural semi-index",
                  "cold build+query vs warm cache-hit query, "
                  "total time (s)",
                  bytes);

    BenchReport report("index",
                       "semi-index cold/warm vs plain streaming");

    printTableHeader({"Query", "streaming", "cold(bld+q)", "warm",
                      "warm-speedup", "sidecar"},
                     {7, 12, 12, 12, 13, 10});
    for (const QuerySpec& spec : paperQueries()) {
        // One query per dataset is enough for the trend; the "1"
        // queries are the deep-descent ones where skips dominate.
        if (spec.id.back() != '1')
            continue;
        std::string json = generateLarge(spec.dataset, bytes);
        report.inputBytes(json.size());
        auto q = path::parse(std::string(spec.large_query));
        ski::Streamer streamer(q);

        Timing t_stream =
            timeBest([&] { return streamer.run(json).matches; }, 3);
        Timing t_cold = timeBest(
            [&] {
                index::StructuralIndex ix =
                    index::StructuralIndex::build(json);
                return streamer.runIndexed(json, ix).matches;
            },
            3);
        index::StructuralIndex ix = index::StructuralIndex::build(json);
        Timing t_warm = timeBest(
            [&] { return streamer.runIndexed(json, ix).matches; }, 3);

        if (t_stream.matches != t_warm.matches ||
            t_stream.matches != t_cold.matches)
            std::printf("!! regimes disagree on %s\n",
                        std::string(spec.id).c_str());

        std::string sidecar = ix.serialize();
        double speedup = t_warm.seconds > 0
                             ? t_stream.seconds / t_warm.seconds
                             : 0;
        char spd[32], side[32];
        std::snprintf(spd, sizeof spd, "%.2fx", speedup);
        std::snprintf(side, sizeof side, "%.1f%%",
                      100.0 * static_cast<double>(sidecar.size()) /
                          static_cast<double>(json.size()));
        printTableRow({std::string(spec.id), fmtSeconds(t_stream.seconds),
                       fmtSeconds(t_cold.seconds),
                       fmtSeconds(t_warm.seconds), spd, side},
                      {7, 12, 12, 12, 13, 10});

        report.beginRow(spec.id, "streaming");
        report.timing(t_stream, json.size());
        report.beginRow(spec.id, "cold-indexed");
        report.timing(t_cold, json.size());
        report.beginRow(spec.id, "warm-indexed");
        report.timing(t_warm, json.size());
        report.metric("sidecar_bytes", uint64_t(sidecar.size()));
        report.metric("index_memory_bytes", uint64_t(ix.memoryBytes()));
        report.metric("index_usable", uint64_t(ix.usable() ? 1 : 0));
    }
    report.write();
    std::printf("\n(cold = build + query, what the first doc= request "
                "pays; warm = query against the cached index, what "
                "every later request pays.)\n");
    return 0;
}
