/**
 * @file
 * Reproduces Table 5 (queries and match counts): runs each of the
 * twelve JSONPath queries on its dataset with every engine and prints
 * the (cross-engine agreed) match counts, plus the paper's count at
 * 1 GB for shape comparison.
 */
#include <cstdio>

#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/engines.h"
#include "harness/runner.h"
#include "path/parser.h"

using namespace jsonski;
using namespace jsonski::harness;

namespace {

/** Paper-reported match counts at 1 GB, for reference. */
long
paperMatches(std::string_view id)
{
    if (id == "TT1") return 88881;
    if (id == "TT2") return 150135;
    if (id == "BB1") return 459332;
    if (id == "BB2") return 8857;
    if (id == "GMD1") return 1716752;
    if (id == "GMD2") return 270;
    if (id == "NSPL1") return 44;
    if (id == "NSPL2") return 3509764;
    if (id == "WM1") return 15892;
    if (id == "WM2") return 272499;
    if (id == "WP1") return 15603;
    if (id == "WP2") return 35;
    return -1;
}

} // namespace

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 32);
    bench::banner("Table 5", "JSONPath queries and match counts", bytes);

    BenchReport report("table5_queries",
                       "JSONPath queries and match counts");
    report.inputBytes(bytes);

    auto engines = makeAllEngines();
    printTableHeader({"ID", "Query structure", "#matches", "agree",
                      "paper@1GB"},
                     {6, 30, 10, 6, 10});
    for (const QuerySpec& spec : paperQueries()) {
        std::string json = gen::generateLarge(spec.dataset, bytes);
        auto q = path::parse(spec.large_query);
        size_t reference = engines.back()->run(json, q); // JSONSki
        bool agree = true;
        for (const auto& e : engines)
            agree = agree && e->run(json, q) == reference;
        printTableRow({std::string(spec.id), std::string(spec.large_query),
                       std::to_string(reference), agree ? "yes" : "NO",
                       std::to_string(paperMatches(spec.id))},
                      {6, 30, 10, 6, 10});
        report.beginRow(spec.id, "JSONSki");
        report.text("path", spec.large_query);
        report.metric("matches", static_cast<uint64_t>(reference));
        report.metric("engines_agree", static_cast<uint64_t>(agree));
        bench::addJsonSkiDetail(report, json, q);
    }
    std::printf("\ncounts scale with input size; selectivity shape "
                "(rare vs per-record queries) is the comparison target.\n");
    report.write();
    return 0;
}
