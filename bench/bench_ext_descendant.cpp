/**
 * @file
 * Extension experiment: the descendant operator (`$..name`) — the
 * paper's stated future work.  `..` disables type-directed skipping
 * (every container must be entered), so the gap over the
 * preprocessing engines narrows compared to typed paths; primitive
 * runs are still fast-forwarded.  The Pison-class engine cannot
 * express any-depth steps at all.
 */
#include <cstdio>
#include <vector>

#include "baseline/dom/query.h"
#include "baseline/jpstream/engine.h"
#include "baseline/tape/query.h"
#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/runner.h"
#include "path/parser.h"
#include "ski/streamer.h"

using namespace jsonski;
using namespace jsonski::harness;

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 32);
    bench::banner("Extension: descendant operator",
                  "terminal '..' queries, total time (s)", bytes);

    struct Case
    {
        const char* id;
        gen::DatasetId dataset;
        const char* query;
    };
    const Case cases[] = {
        {"TTd", gen::DatasetId::TT, "$..url"},
        {"BBd", gen::DatasetId::BB, "$..cha"},
        {"WMd", gen::DatasetId::WM, "$..pr"},
        {"WPd", gen::DatasetId::WP, "$..pty"},
        {"GMDd", gen::DatasetId::GMD, "$[*].rt[*]..tx"},
    };

    BenchReport report("ext_descendant", "terminal '..' queries");
    report.inputBytes(bytes);

    printTableHeader({"Query", "JPStream", "RapidJSON-like",
                      "simdjson-like", "JSONSki", "matches", "ff-ratio"},
                     {6, 12, 14, 14, 12, 9, 9});
    for (const Case& c : cases) {
        std::string json = gen::generateLarge(c.dataset, bytes);
        auto q = path::parse(c.query);

        jpstream::Engine jp(q);
        Timing tj = timeBest([&] { return jp.run(json); }, 2);
        Timing td = timeBest([&] { return dom::parseAndQuery(json, q); },
                             2);
        Timing tt = timeBest(
            [&] { return tape::parseAndQuery(json, q); }, 2);
        ski::Streamer streamer(q);
        ski::FastForwardStats stats;
        Timing ts = timeBest(
            [&] {
                auto r = streamer.run(json);
                stats = r.stats;
                return r.matches;
            },
            2);
        if (tj.matches != ts.matches || td.matches != ts.matches ||
            tt.matches != ts.matches)
            std::printf("!! engines disagree on %s\n", c.id);
        printTableRow({c.id, fmtSeconds(tj.seconds),
                       fmtSeconds(td.seconds), fmtSeconds(tt.seconds),
                       fmtSeconds(ts.seconds),
                       std::to_string(ts.matches),
                       fmtPercent(stats.overallRatio(json.size()))},
                      {6, 12, 14, 14, 12, 9, 9});
        report.beginRow(c.id, "JPStream");
        report.timing(tj, json.size());
        report.beginRow(c.id, "RapidJSON-like");
        report.timing(td, json.size());
        report.beginRow(c.id, "simdjson-like");
        report.timing(tt, json.size());
        report.beginRow(c.id, "JSONSki");
        report.timing(ts, json.size());
        report.ffStats(stats, json.size());
    }
    report.write();
    std::printf("\n(Pison-class omitted: leveled bitmaps cannot express "
                "any-depth steps.)\n");
    return 0;
}
