/**
 * @file
 * Reproduces Table 6 (fast-forward ratios by function group): for each
 * query, the fraction of the input skipped by each of the five
 * fast-forward groups, plus the overall ratio.
 *
 * Expected shape: overall above ~95% for every query; the dominant
 * group depends on the query (G4 for per-record key queries like TT2
 * and WM2, G2 for deep-miss queries like GMD2, G1 for NSPL2/WM1/BB2,
 * G5 for the range queries NSPL2/WP2).
 */
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/engines.h"
#include "harness/runner.h"
#include "path/parser.h"
#include "ski/stats.h"

using namespace jsonski;
using namespace jsonski::harness;

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 32);
    bench::banner("Table 6", "fast-forward ratios by function group",
                  bytes);

    BenchReport report("table6_ff_ratio",
                       "fast-forward ratios by function group");
    report.inputBytes(bytes);

    printTableHeader({"Query", "G1", "G2", "G3", "G4", "G5", "Overall",
                      "paper overall"},
                     {6, 8, 8, 8, 8, 8, 8, 13});
    const char* paper_overall[] = {"99.44%", "99.07%", "98.49%", "97.99%",
                                   "97.41%", "99.99%", "99.99%", "95.94%",
                                   "99.77%", "98.79%", "99.33%", "99.99%"};
    size_t qi = 0;
    for (const QuerySpec& spec : paperQueries()) {
        std::string json = gen::generateLarge(spec.dataset, bytes);
        auto q = path::parse(spec.large_query);
        ski::FastForwardStats stats;
        (void)runJsonSkiWithStats(json, q, stats);
        std::vector<std::string> row = {std::string(spec.id)};
        for (size_t g = 0; g < ski::kGroupCount; ++g)
            row.push_back(
                fmtPercent(stats.ratio(static_cast<ski::Group>(g),
                                       json.size())));
        row.push_back(fmtPercent(stats.overallRatio(json.size())));
        row.push_back(paper_overall[qi++]);
        printTableRow(row, {6, 8, 8, 8, 8, 8, 8, 13});
        report.beginRow(spec.id, "JSONSki");
        bench::addJsonSkiDetail(report, json, q);
    }
    std::printf("\nnon-fast-forwarded residue is attribute names and "
                "metacharacters the matcher must examine (paper: <5%%).\n");
    report.write();
    return 0;
}
