/**
 * @file
 * Extension experiment (the paper's future work): parallel JSONSki on
 * a single large record.  A serial bit-parallel split pass enumerates
 * the top-level array elements; the query tail then runs per element
 * across a thread pool.
 *
 * On a multicore host the parallel column should close the gap the
 * paper reports against Pison(16); on one core it shows the split
 * pass's overhead only.
 */
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/engines.h"
#include "harness/runner.h"
#include "path/parser.h"
#include "ski/parallel.h"
#include "ski/streamer.h"

using namespace jsonski;
using namespace jsonski::harness;

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 32);
    size_t threads = benchThreads();
    bench::banner("Extension: parallel JSONSki",
                  "single large record, serial vs element-parallel",
                  bytes);

    BenchReport report("ext_parallel",
                       "single large record, serial vs element-parallel");
    report.inputBytes(bytes);
    report.threads(threads);

    ThreadPool pool(threads);
    printTableHeader({"Query", "serial (s)",
                      "parallel(" + std::to_string(threads) + ") (s)",
                      "speedup", "matches"},
                     {6, 12, 16, 8, 10});
    for (const QuerySpec& spec : paperQueries()) {
        std::string json = gen::generateLarge(spec.dataset, bytes);
        auto q = path::parse(spec.large_query);
        ski::Streamer serial(q);
        ski::ParallelStreamer parallel(q);

        Timing ts = timeBest([&] { return serial.run(json).matches; }, 2);
        Timing tp =
            timeBest([&] { return parallel.run(json, pool); }, 2);
        if (ts.matches != tp.matches)
            std::printf("!! %s: parallel disagrees (%zu vs %zu)\n",
                        std::string(spec.id).c_str(), tp.matches,
                        ts.matches);
        char speedup[16];
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      ts.seconds / tp.seconds);
        printTableRow({std::string(spec.id), fmtSeconds(ts.seconds),
                       fmtSeconds(tp.seconds), speedup,
                       std::to_string(ts.matches)},
                      {6, 12, 16, 8, 10});
        report.beginRow(spec.id, "JSONSki");
        report.timing(ts, json.size());
        report.beginRow(spec.id, "JSONSki(par)");
        report.timing(tp, json.size());
    }
    report.write();
    std::printf("\nnote: needs a multicore host for real speedups; "
                "counts are verified against the serial engine either "
                "way.\n");
    return 0;
}
