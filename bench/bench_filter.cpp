/**
 * @file
 * Extension experiment: filter predicates under fast-forwarding.
 *
 * A filter's cost model is selectivity-driven: every candidate object
 * pays a G1 scan to the predicate field, then either a G3 emit (match)
 * or a G2 skip of its entire remainder (reject).  The sweep runs the
 * same candidate array at 0.1% / 10% / 90% selectivity so the
 * BENCH_filter.json rows show the G2-skipped bytes collapsing into G3
 * as selectivity rises — the evidence that rejected candidates are
 * fast-forwarded, not parsed.
 */
#include <cstdio>
#include <string>

#include "baseline/dom/query.h"
#include "bench_common.h"
#include "harness/runner.h"
#include "path/parser.h"
#include "ski/streamer.h"
#include "util/rng.h"

using namespace jsonski;
using namespace jsonski::harness;

namespace {

/**
 * An array of candidate objects: a small predicate field up front,
 * then a fat payload the verdict decides the fate of.  `sel` is
 * uniform in [0, 1000), so `$[?(@.sel<K)]` has selectivity K/1000.
 */
std::string
makeCandidates(size_t target_bytes, Rng& rng)
{
    std::string doc = "[";
    while (doc.size() < target_bytes) {
        if (doc.size() > 1)
            doc += ",";
        doc += "{\"sel\": " + std::to_string(rng.below(1000)) +
               ", \"pad\": \"" + std::string(96, 'x') +
               "\", \"tags\": [1, 2, 3], \"nested\": {\"deep\": \"" +
               std::string(64, 'y') + "\"}}";
    }
    doc += "]";
    return doc;
}

} // namespace

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 32);
    bench::banner("Extension: filter predicates",
                  "selectivity sweep, total time (s)", bytes);

    Rng rng(20260808);
    std::string json = makeCandidates(bytes, rng);

    struct Case
    {
        const char* id;
        const char* query;
    };
    const Case cases[] = {
        {"0.1%", "$[?(@.sel<1)]"},
        {"10%", "$[?(@.sel<100)]"},
        {"90%", "$[?(@.sel<900)]"},
    };

    BenchReport report("filter", "filter predicate selectivity sweep");
    report.inputBytes(json.size());

    printTableHeader({"Selectivity", "RapidJSON-like", "JSONSki",
                      "matches", "G2-skip", "G3-skip"},
                     {11, 14, 12, 9, 9, 9});
    for (const Case& c : cases) {
        auto q = path::parse(c.query);
        Timing td =
            timeBest([&] { return dom::parseAndQuery(json, q); }, 2);
        ski::Streamer streamer(q);
        ski::FastForwardStats stats;
        Timing ts = timeBest(
            [&] {
                auto r = streamer.run(json);
                stats = r.stats;
                return r.matches;
            },
            2);
        if (td.matches != ts.matches)
            std::printf("!! engines disagree on %s\n", c.id);
        printTableRow(
            {c.id, fmtSeconds(td.seconds), fmtSeconds(ts.seconds),
             std::to_string(ts.matches),
             fmtPercent(stats.ratio(ski::Group::G2, json.size())),
             fmtPercent(stats.ratio(ski::Group::G3, json.size()))},
            {11, 14, 12, 9, 9, 9});
        report.beginRow(c.id, "RapidJSON-like");
        report.timing(td, json.size());
        report.beginRow(c.id, "JSONSki");
        report.timing(ts, json.size());
        report.ffStats(stats, json.size());
        report.metric("g2_skipped_bytes", stats.get(ski::Group::G2));
        report.metric("g3_skipped_bytes", stats.get(ski::Group::G3));
    }
    report.write();
    std::printf("\n(G2 bytes are rejected candidates fast-forwarded "
                "after a failed verdict; they shift to G3 as "
                "selectivity rises.)\n");
    return 0;
}
