/**
 * @file
 * Shared preamble for the table/figure bench binaries: prints the
 * experiment banner and environment facts that matter when comparing
 * against the paper's numbers.
 */
#ifndef JSONSKI_BENCH_BENCH_COMMON_H
#define JSONSKI_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <thread>

#include "intervals/classifier.h"

namespace jsonski::bench {

/** Print the standard banner: what is reproduced and at what scale. */
inline void
banner(const char* artifact, const char* description, size_t bytes)
{
    std::printf("== %s: %s ==\n", artifact, description);
    std::printf("input scale: %.1f MB per dataset "
                "(paper: 1 GB; pass MB as argv[1] or JSONSKI_BENCH_MB)\n",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
    std::printf("hardware threads: %u; SIMD classifier: %s\n\n",
                std::thread::hardware_concurrency(),
                intervals::classifierUsesSimd() ? "AVX2" : "scalar");
}

} // namespace jsonski::bench

#endif // JSONSKI_BENCH_BENCH_COMMON_H
