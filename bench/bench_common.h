/**
 * @file
 * Shared preamble for the table/figure bench binaries: prints the
 * experiment banner and environment facts that matter when comparing
 * against the paper's numbers.
 */
#ifndef JSONSKI_BENCH_BENCH_COMMON_H
#define JSONSKI_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <thread>

#include "harness/engines.h"
#include "harness/report.h"
#include "kernels/kernel.h"
#include "telemetry/telemetry.h"

namespace jsonski::bench {

/** Print the standard banner: what is reproduced and at what scale. */
inline void
banner(const char* artifact, const char* description, size_t bytes)
{
    std::printf("== %s: %s ==\n", artifact, description);
    std::printf("input scale: %.1f MB per dataset "
                "(paper: 1 GB; pass MB as argv[1] or JSONSKI_BENCH_MB)\n",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
    std::printf("hardware threads: %u; SIMD kernel: %s "
                "(runtime-dispatched; JSONSKI_KERNEL overrides)\n\n",
                std::thread::hardware_concurrency(),
                std::string(kernels::activeName()).c_str());
}

/**
 * Attach fast-forward + telemetry detail for one JSONSki evaluation to
 * the report's current row (one extra untimed run with a telemetry
 * scope installed; in telemetry-off builds the registry stays zero and
 * only the ff stats carry data).
 */
inline void
addJsonSkiDetail(harness::BenchReport& report, std::string_view json,
                 const path::PathQuery& query)
{
    telemetry::Registry reg;
    ski::FastForwardStats stats;
    {
        telemetry::Scope scope(reg);
        harness::runJsonSkiWithStats(json, query, stats);
    }
    report.ffStats(stats, json.size());
    report.telemetry(reg);
}

} // namespace jsonski::bench

#endif // JSONSKI_BENCH_BENCH_COMMON_H
