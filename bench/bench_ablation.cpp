/**
 * @file
 * Ablation study over the design choices DESIGN.md calls out:
 *  - full JSONSki (all fast-forward groups, SIMD classifier, batching)
 *  - no G1 type filter (attributes/elements examined name-by-name)
 *  - no batched primitive skipping (one comma interval per primitive)
 *  - scalar classifier (same architecture, char-level classification)
 * plus the JPStream baseline as the "no bit-parallel fast-forward at
 * all" endpoint.
 */
#include <cstdio>
#include <vector>

#include "baseline/jpstream/engine.h"
#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/engines.h"
#include "harness/runner.h"
#include "path/parser.h"
#include "ski/streamer.h"

using namespace jsonski;
using namespace jsonski::harness;

namespace {

struct Variant
{
    const char* name;
    ski::StreamerOptions options;
};

} // namespace

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 32);
    bench::banner("Ablation", "contribution of each design choice",
                  bytes);

    const Variant variants[] = {
        {"full", {}},
        {"no-G1-filter", {.type_filter = false}},
        {"no-batching", {.batch_primitives = false}},
        {"scalar-classify", {.scalar_classifier = true}},
    };

    BenchReport report("ablation", "contribution of each design choice");
    report.inputBytes(bytes);

    std::vector<std::string> header = {"Query"};
    std::vector<int> widths = {6};
    for (const Variant& v : variants) {
        header.push_back(v.name);
        widths.push_back(16);
    }
    header.push_back("jpstream");
    widths.push_back(16);
    printTableHeader(header, widths);

    for (const QuerySpec& spec : paperQueries()) {
        std::string json = gen::generateLarge(spec.dataset, bytes);
        auto q = path::parse(spec.large_query);
        std::vector<std::string> row = {std::string(spec.id)};
        size_t reference = 0;
        for (const Variant& v : variants) {
            ski::Streamer streamer(q, v.options);
            Timing t = timeBest(
                [&] { return streamer.run(json).matches; }, 2);
            if (reference == 0)
                reference = t.matches;
            else if (t.matches != reference)
                std::printf("!! %s: variant %s disagrees\n",
                            std::string(spec.id).c_str(), v.name);
            row.push_back(fmtSeconds(t.seconds));
            report.beginRow(spec.id, v.name);
            report.timing(t, json.size());
        }
        jpstream::Engine jp(q);
        Timing t = timeBest([&] { return jp.run(json); }, 2);
        row.push_back(fmtSeconds(t.seconds));
        report.beginRow(spec.id, "jpstream");
        report.timing(t, json.size());
        printTableRow(row, widths);
    }
    report.write();
    std::printf("\nreading guide: the scalar-classify gap is the SIMD "
                "contribution (largest, uniform).  no-G1-filter and "
                "no-batching matter exactly on the queries whose Table 6 "
                "profile is G1-heavy (BB2, NSPL2, WM1); on queries that "
                "never use the knob the columns differ only by noise.\n");
    return 0;
}
