/**
 * @file
 * Micro-benchmarks (google-benchmark) for the fast-forward primitives:
 * bit-parallel container skipping vs character-level scanning of the
 * same substructure, and batched vs per-element primitive skipping.
 */
#include <benchmark/benchmark.h>

#include <string>

#include "baseline/jpstream/tokenizer.h"
#include "intervals/cursor.h"
#include "json/text.h"
#include "ski/skipper.h"
#include "util/rng.h"

using namespace jsonski;
using namespace jsonski::ski;

namespace {

/** Deeply nested object of roughly @p bytes bytes. */
std::string
nestedObject(size_t bytes)
{
    Rng rng(11);
    std::string s = "{";
    size_t i = 0;
    while (s.size() < bytes) {
        if (i)
            s += ',';
        s += "\"k" + std::to_string(i) + "\":{\"a\":[1,2,3],\"s\":\"" +
             rng.ident(12) + "\",\"n\":{\"x\":" +
             std::to_string(rng.below(100)) + "}}";
        ++i;
    }
    s += "}";
    return s;
}

/** Long array of primitives. */
std::string
primitiveArray(size_t count)
{
    std::string s = "[";
    for (size_t i = 0; i < count; ++i) {
        if (i)
            s += ',';
        s += std::to_string(i * 37 % 100000);
    }
    s += "]";
    return s;
}

void
BM_GoOverObjBitParallel(benchmark::State& state)
{
    std::string json = nestedObject(1 << 18);
    for (auto _ : state) {
        intervals::StreamCursor cur(json);
        Skipper skip(cur);
        skip.overObj(Group::G2);
        benchmark::DoNotOptimize(cur.pos());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * json.size()));
}
BENCHMARK(BM_GoOverObjBitParallel);

void
BM_GoOverObjCharByChar(benchmark::State& state)
{
    std::string json = nestedObject(1 << 18);
    struct NullHandler
    {
        void onObjectStart(size_t) {}
        void onObjectEnd(size_t) {}
        void onArrayStart(size_t) {}
        void onArrayEnd(size_t) {}
        void onKey(std::string_view) {}
        void onPrimitive(size_t, size_t) {}
    };
    for (auto _ : state) {
        NullHandler h;
        jpstream::saxParse(json, h);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * json.size()));
}
BENCHMARK(BM_GoOverObjCharByChar);

void
BM_OverElemsBatched(benchmark::State& state)
{
    std::string json = primitiveArray(100000);
    std::string body = json.substr(1); // element-list position
    for (auto _ : state) {
        intervals::StreamCursor cur(body);
        Skipper skip(cur);
        size_t idx = 0;
        skip.overElems(100000, idx, Group::G5);
        benchmark::DoNotOptimize(idx);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * body.size()));
}
BENCHMARK(BM_OverElemsBatched);

void
BM_OverElemsPerElement(benchmark::State& state)
{
    std::string json = primitiveArray(100000);
    std::string body = json.substr(1);
    for (auto _ : state) {
        intervals::StreamCursor cur(body);
        Skipper skip(cur);
        skip.setBatchPrimitives(false);
        size_t idx = 0;
        skip.overElems(100000, idx, Group::G5);
        benchmark::DoNotOptimize(idx);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * body.size()));
}
BENCHMARK(BM_OverElemsPerElement);

void
BM_StringEndBitParallel(benchmark::State& state)
{
    std::string json = "\"" + std::string(4096, 'x') + "\"";
    for (auto _ : state) {
        intervals::StreamCursor cur(json);
        Skipper skip(cur);
        benchmark::DoNotOptimize(skip.stringEnd(0));
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * json.size()));
}
BENCHMARK(BM_StringEndBitParallel);

void
BM_StringEndCharByChar(benchmark::State& state)
{
    std::string json = "\"" + std::string(4096, 'x') + "\"";
    for (auto _ : state) {
        benchmark::DoNotOptimize(json::scanString(json, 0));
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * json.size()));
}
BENCHMARK(BM_StringEndCharByChar);

} // namespace

BENCHMARK_MAIN();
