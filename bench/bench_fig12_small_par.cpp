/**
 * @file
 * Reproduces Figure 12 (parallel performance on a series of small
 * records): each worker evaluates whole records (record-level
 * parallelism).  Prints a thread sweep so the scaling curve is visible
 * even though absolute speedups depend on the host's core count
 * (paper: 16 cores, ~10-12x for the scalable methods).
 */
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/engines.h"
#include "harness/runner.h"
#include "path/parser.h"
#include "util/thread_pool.h"

using namespace jsonski;
using namespace jsonski::harness;

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 32);
    size_t max_threads = benchThreads();
    bench::banner("Figure 12",
                  "sequence of small records, parallel, time (s)", bytes);

    BenchReport report("fig12_small_par",
                       "sequence of small records, record-parallel");
    report.inputBytes(bytes);
    report.threads(max_threads);

    auto engines = makeAllEngines();
    std::vector<size_t> sweep;
    for (size_t t = 1; t <= max_threads; t *= 2)
        sweep.push_back(t);
    if (sweep.back() != max_threads)
        sweep.push_back(max_threads);

    for (const QuerySpec& spec : paperQueries()) {
        if (spec.small_query.empty())
            continue;
        gen::SmallRecords data = gen::generateSmall(spec.dataset, bytes);
        auto q = path::parse(spec.small_query);

        std::printf("%s (%zu records)\n", std::string(spec.id).c_str(),
                    data.count());
        std::vector<std::string> header = {"Method"};
        std::vector<int> widths = {16};
        for (size_t t : sweep) {
            header.push_back("T=" + std::to_string(t));
            widths.push_back(10);
        }
        printTableHeader(header, widths);
        for (const auto& e : engines) {
            std::vector<std::string> row = {std::string(e->name())};
            for (size_t t : sweep) {
                ThreadPool pool(t);
                Timing timing = timeBest(
                    [&] { return runSmallParallel(*e, data, q, pool); },
                    2);
                row.push_back(fmtSeconds(timing.seconds));
                report.beginRow(spec.id, std::string(e->name()) + "/T=" +
                                             std::to_string(t));
                report.timing(timing, data.buffer.size());
            }
            printTableRow(row, widths);
        }
        std::printf("\n");
    }
    std::printf("paper @16 cores: JPStream 11.9x, Pison 11.8x, JSONSki "
                "10.3x self-scaling; JSONSki 9.5x over JPStream(16).\n");
    report.write();
    return 0;
}
