/**
 * @file
 * Extension experiment (beyond the paper): multi-query single-pass
 * streaming vs one pass per query.  The paper's framework evaluates a
 * single path expression; the MultiStreamer compiles several into a
 * trie and shares both the scan and the fast-forward decisions.
 */
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/runner.h"
#include "path/parser.h"
#include "ski/multi.h"
#include "ski/streamer.h"

using namespace jsonski;
using namespace jsonski::harness;

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 32);
    bench::banner("Extension: multi-query",
                  "k queries in one pass vs k passes", bytes);

    struct Workload
    {
        gen::DatasetId dataset;
        std::vector<const char*> queries;
    };
    const Workload workloads[] = {
        {gen::DatasetId::TT,
         {"$[*].text", "$[*].en.urls[*].url", "$[*].user.name"}},
        {gen::DatasetId::BB,
         {"$.pd[*].cp[1:3].id", "$.pd[*].vc[*].cha", "$.pd[*].price",
          "$.pd[*].name"}},
        {gen::DatasetId::WM, {"$.it[*].nm", "$.it[*].bmrpr.pr"}},
    };

    BenchReport report("ext_multiquery",
                       "k queries in one pass vs k passes");
    report.inputBytes(bytes);

    printTableHeader({"Data", "k", "k passes (s)", "one pass (s)",
                      "speedup", "matches"},
                     {6, 3, 14, 14, 8, 12});
    for (const Workload& w : workloads) {
        std::string json = gen::generateLarge(w.dataset, bytes);
        std::vector<path::PathQuery> qs;
        for (const char* q : w.queries)
            qs.push_back(path::parse(q));

        Timing separate = timeBest(
            [&] {
                size_t total = 0;
                for (const auto& q : qs)
                    total += ski::Streamer(q).run(json).matches;
                return total;
            },
            3);

        ski::MultiStreamer multi(qs);
        Timing combined = timeBest(
            [&] {
                auto r = multi.run(json);
                size_t total = 0;
                for (size_t m : r.matches)
                    total += m;
                return total;
            },
            3);

        if (separate.matches != combined.matches)
            std::printf("!! match counts disagree on %s\n",
                        std::string(gen::datasetName(w.dataset)).c_str());
        char speedup[16];
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      separate.seconds / combined.seconds);
        printTableRow({std::string(gen::datasetName(w.dataset)),
                       std::to_string(qs.size()),
                       fmtSeconds(separate.seconds),
                       fmtSeconds(combined.seconds), speedup,
                       std::to_string(combined.matches)},
                      {6, 3, 14, 14, 8, 12});
        report.beginRow(gen::datasetName(w.dataset), "k-passes");
        report.timing(separate, json.size() * qs.size());
        report.beginRow(gen::datasetName(w.dataset), "one-pass");
        report.timing(combined, json.size());
        report.metric("k", static_cast<uint64_t>(qs.size()));
    }
    report.write();
    std::printf("\nexpected: the one-pass time approaches the slowest "
                "single query's time, not the sum — shared scan, shared "
                "skips.\n");
    return 0;
}
