/**
 * @file
 * Service overhead: end-to-end jsqd evaluation (TCP loopback, header,
 * socket-chunked body, match framing, trailer) vs. the direct chunked
 * Streamer::run it wraps, on the paper's large-record queries — plus a
 * small-request latency profile (p50/p99) with the plan cache hot.
 *
 * Expected shape: the wire adds two copies per body byte (client
 * user->kernel, server kernel->user) that the direct path doesn't pay.
 * With >= 2 hardware threads the full-duplex client overlaps them with
 * evaluation and throughput sits within 1.5x of the direct chunked
 * path; on a single core they serialize, so highly-skipping queries
 * (whose direct run is pure memory-speed fast-forwarding) degrade to
 * roughly eval+copy time.  Small requests are dominated by the round
 * trip and plan-cache hit, well under a millisecond end to end.
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/engines.h"
#include "harness/runner.h"
#include "intervals/chunk_source.h"
#include "path/parser.h"
#include "service/loopback.h"
#include "service/server.h"
#include "ski/streamer.h"
#include "util/stopwatch.h"

using namespace jsonski;
using namespace jsonski::harness;

namespace {

service::RequestHeader
countHeader(std::string query)
{
    service::RequestHeader h;
    h.queries = {std::move(query)};
    h.count_only = true;
    return h;
}

} // namespace

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 32);
    bench::banner("Query service",
                  "end-to-end jsqd vs. direct chunked Streamer::run",
                  bytes);
    BenchReport report("service", "jsqd wire overhead and latency");
    report.inputBytes(bytes);

    service::ServerConfig cfg;
    cfg.workers = 2;
    service::Server server(cfg);
    server.start();

    printTableHeader({"Query", "direct", "service", "svc/dir"},
                     {6, 12, 12, 8});

    for (const QuerySpec& spec : paperQueries()) {
        std::string json = gen::generateLarge(spec.dataset, bytes);
        auto q = path::parse(spec.large_query);
        ski::Streamer streamer(q);

        Timing direct = timeBest(
            [&] {
                intervals::ViewSource src(json, cfg.chunk_bytes);
                return streamer.run(src, nullptr, cfg.chunk_bytes)
                    .matches;
            },
            2);
        report.beginRow(spec.id, "direct-chunked");
        report.timing(direct, json.size());

        service::RequestHeader header =
            countHeader(std::string(spec.large_query));
        Timing wire = timeBest(
            [&] {
                int fd =
                    service::connectTcp("127.0.0.1", server.port());
                service::ClientResult r =
                    service::runRequestFd(fd, header, json);
                return r.has_trailer ? r.trailer.matches : size_t{0};
            },
            2);
        report.beginRow(spec.id, "service-loopback");
        report.timing(wire, json.size());
        report.metric("overhead_ratio", wire.seconds / direct.seconds);

        char ratio[16];
        std::snprintf(ratio, sizeof ratio, "%.2fx",
                      wire.seconds / direct.seconds);
        printTableRow({std::string(spec.id), fmtSeconds(direct.seconds),
                       fmtSeconds(wire.seconds), ratio},
                      {6, 12, 12, 8});
    }

    // Small-request latency: a ~2 KiB record, plan cache hot, one
    // connection per request (the protocol's one-request-per-
    // connection shape) — report the percentiles jsqd users see.
    std::string small = gen::generateLarge(gen::DatasetId::TT, 2048);
    service::RequestHeader header = countHeader("$[*].id");
    constexpr int kWarm = 20, kRuns = 400;
    std::vector<double> us;
    us.reserve(kRuns);
    for (int i = 0; i < kWarm + kRuns; ++i) {
        Stopwatch sw;
        int fd = service::connectTcp("127.0.0.1", server.port());
        service::ClientResult r =
            service::runRequestFd(fd, header, small);
        double t = sw.seconds() * 1e6;
        if (!r.has_trailer)
            std::fprintf(stderr, "latency run severed\n");
        if (i >= kWarm)
            us.push_back(t);
    }
    std::sort(us.begin(), us.end());
    double p50 = us[us.size() / 2];
    double p99 = us[us.size() * 99 / 100];
    report.beginRow("latency", "service-loopback");
    report.metric("body_bytes", static_cast<uint64_t>(small.size()));
    report.metric("runs", static_cast<uint64_t>(kRuns));
    report.metric("p50_us", p50);
    report.metric("p99_us", p99);
    service::PlanCacheStats pc = server.planCacheTotals();
    report.metric("plan_cache_hits", pc.hits);
    report.metric("plan_cache_misses", pc.misses);
    std::printf("\nsmall-request latency (%zu B body, %d runs): "
                "p50 %.0f us, p99 %.0f us; plan cache %llu/%llu "
                "hit/miss\n",
                small.size(), kRuns, p50, p99,
                static_cast<unsigned long long>(pc.hits),
                static_cast<unsigned long long>(pc.misses));

    server.stop();
    report.write();
    return 0;
}
