/**
 * @file
 * Reproduces Figure 11 (sequential performance on a series of small
 * records): one thread, per-record query evaluation.  NSPL1 and WP2
 * are excluded, as in the paper (they have no per-record form).
 *
 * Expected shape: similar ranking to Figure 10, most methods slightly
 * faster thanks to cache-resident records.
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/engines.h"
#include "harness/runner.h"
#include "path/parser.h"

using namespace jsonski;
using namespace jsonski::harness;

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 32);
    bench::banner("Figure 11",
                  "sequence of small records, 1 thread, time (s)", bytes);

    BenchReport report("fig11_small_seq",
                       "sequence of small records, 1 thread");
    report.inputBytes(bytes);

    auto engines = makeAllEngines();
    std::vector<std::string> header = {"Query"};
    std::vector<int> widths = {6};
    for (const auto& e : engines) {
        header.push_back(std::string(e->name()));
        widths.push_back(14);
    }
    header.push_back("speedup*");
    widths.push_back(9);
    printTableHeader(header, widths);

    double geo_sum = 0;
    int geo_n = 0;
    for (const QuerySpec& spec : paperQueries()) {
        if (spec.small_query.empty())
            continue; // NSPL1 / WP2: not applicable to small records
        gen::SmallRecords data = gen::generateSmall(spec.dataset, bytes);
        auto q = path::parse(spec.small_query);

        std::vector<std::string> row = {std::string(spec.id)};
        double jpstream_s = 0, jsonski_s = 0;
        size_t reference = runSmallSerial(*engines.back(), data, q);
        for (const auto& e : engines) {
            Timing t = timeBest(
                [&] { return runSmallSerial(*e, data, q); }, 2);
            row.push_back(fmtSeconds(t.seconds));
            report.beginRow(spec.id, e->name());
            report.timing(t, data.buffer.size());
            if (t.matches != reference)
                std::printf("!! %s disagrees on %s\n",
                            std::string(e->name()).c_str(),
                            std::string(spec.id).c_str());
            if (e->name() == "JPStream")
                jpstream_s = t.seconds;
            if (e->name() == "JSONSki")
                jsonski_s = t.seconds;
        }
        double speedup = jpstream_s / jsonski_s;
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.1fx", speedup);
        row.push_back(buf);
        printTableRow(row, widths);
        geo_sum += std::log(speedup);
        ++geo_n;
    }
    std::printf("\n*speedup = JPStream / JSONSki. geomean: %.1fx\n",
                std::exp(geo_sum / geo_n));
    report.write();
    return 0;
}
