/**
 * @file
 * Micro-benchmarks (google-benchmark) for the bit-parallel substrate:
 * block classification throughput (SIMD vs scalar reference), prefix
 * XOR, bit selection, and structural-interval construction.
 */
#include <benchmark/benchmark.h>

#include <string>

#include "gen/datasets.h"
#include "intervals/classifier.h"
#include "intervals/interval.h"
#include "util/bits.h"
#include "util/rng.h"

using namespace jsonski;
using namespace jsonski::intervals;

namespace {

std::string
sampleJson(size_t bytes)
{
    return gen::generateLarge(gen::DatasetId::TT, bytes);
}

void
BM_ClassifySimd(benchmark::State& state)
{
    std::string json = sampleJson(1 << 20);
    for (auto _ : state) {
        ClassifierCarry carry;
        uint64_t acc = 0;
        for (size_t base = 0; base + kBlockSize <= json.size();
             base += kBlockSize) {
            BlockBits b = classifyBlock(json.data() + base, carry);
            acc ^= b.structural();
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * json.size()));
}
BENCHMARK(BM_ClassifySimd);

void
BM_ClassifyScalarReference(benchmark::State& state)
{
    std::string json = sampleJson(1 << 20);
    for (auto _ : state) {
        ClassifierCarry carry;
        uint64_t acc = 0;
        for (size_t base = 0; base + kBlockSize <= json.size();
             base += kBlockSize) {
            BlockBits b = classifyBlockReference(json.data() + base,
                                                 kBlockSize, carry);
            acc ^= b.structural();
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * json.size()));
}
BENCHMARK(BM_ClassifyScalarReference);

void
BM_PrefixXor(benchmark::State& state)
{
    Rng rng(1);
    uint64_t x = rng.next();
    for (auto _ : state) {
        x = bits::prefixXor(x) + 1;
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_PrefixXor);

void
BM_SelectBit(benchmark::State& state)
{
    Rng rng(2);
    uint64_t x = rng.next() | 1;
    int k = 1;
    for (auto _ : state) {
        int pos = bits::selectBit(x, k);
        benchmark::DoNotOptimize(pos);
        k = (k % bits::popcount(x)) + 1;
    }
}
BENCHMARK(BM_SelectBit);

void
BM_BuildInterval(benchmark::State& state)
{
    Rng rng(3);
    uint64_t bm = rng.next();
    int start = 0;
    for (auto _ : state) {
        uint64_t iv = buildInterval(bm, start);
        benchmark::DoNotOptimize(iv);
        start = (start + 7) & 63;
        bm = (bm >> 1) | (bm << 63);
    }
}
BENCHMARK(BM_BuildInterval);

} // namespace

BENCHMARK_MAIN();
