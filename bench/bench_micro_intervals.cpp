/**
 * @file
 * Micro-benchmarks (google-benchmark) for the bit-parallel substrate:
 * block classification throughput (dispatched kernel vs scalar
 * reference), prefix XOR, bit selection, and structural-interval
 * construction.
 *
 * After the google-benchmark run, a per-kernel sweep re-times block
 * classification under every *runnable* SIMD kernel (kernels::Override)
 * and writes the GB/s ladder to BENCH_micro_intervals.json — the
 * runtime-dispatch analogue of the paper's SIMD-vs-scalar ablation, and
 * the trend data that catches a kernel regressing relative to its
 * siblings.
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "gen/datasets.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "intervals/classifier.h"
#include "intervals/interval.h"
#include "kernels/kernel.h"
#include "util/bits.h"
#include "util/rng.h"

using namespace jsonski;
using namespace jsonski::intervals;

namespace {

std::string
sampleJson(size_t bytes)
{
    return gen::generateLarge(gen::DatasetId::TT, bytes);
}

/** One full-document classification pass; returns structural count. */
size_t
classifyPass(const std::string& json)
{
    ClassifierCarry carry;
    size_t structurals = 0;
    for (size_t base = 0; base + kBlockSize <= json.size();
         base += kBlockSize) {
        BlockBits b = classifyBlock(json.data() + base, carry);
        structurals += static_cast<size_t>(bits::popcount(b.structural()));
    }
    return structurals;
}

void
BM_ClassifySimd(benchmark::State& state)
{
    std::string json = sampleJson(1 << 20);
    for (auto _ : state) {
        ClassifierCarry carry;
        uint64_t acc = 0;
        for (size_t base = 0; base + kBlockSize <= json.size();
             base += kBlockSize) {
            BlockBits b = classifyBlock(json.data() + base, carry);
            acc ^= b.structural();
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * json.size()));
}
BENCHMARK(BM_ClassifySimd);

void
BM_ClassifyScalarReference(benchmark::State& state)
{
    std::string json = sampleJson(1 << 20);
    for (auto _ : state) {
        ClassifierCarry carry;
        uint64_t acc = 0;
        for (size_t base = 0; base + kBlockSize <= json.size();
             base += kBlockSize) {
            BlockBits b = classifyBlockReference(json.data() + base,
                                                 kBlockSize, carry);
            acc ^= b.structural();
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * json.size()));
}
BENCHMARK(BM_ClassifyScalarReference);

void
BM_PrefixXor(benchmark::State& state)
{
    Rng rng(1);
    uint64_t x = rng.next();
    for (auto _ : state) {
        x = kernels::prefixXor(x) + 1;
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_PrefixXor);

void
BM_SelectBit(benchmark::State& state)
{
    Rng rng(2);
    uint64_t x = rng.next() | 1;
    int k = 1;
    for (auto _ : state) {
        int pos = kernels::selectBit(x, k);
        benchmark::DoNotOptimize(pos);
        k = (k % bits::popcount(x)) + 1;
    }
}
BENCHMARK(BM_SelectBit);

void
BM_BuildInterval(benchmark::State& state)
{
    Rng rng(3);
    uint64_t bm = rng.next();
    int start = 0;
    for (auto _ : state) {
        uint64_t iv = buildInterval(bm, start);
        benchmark::DoNotOptimize(iv);
        start = (start + 7) & 63;
        bm = (bm >> 1) | (bm << 63);
    }
}
BENCHMARK(BM_BuildInterval);

/**
 * Classification GB/s under every runnable kernel on this host, plus
 * the byte-at-a-time reference state machine as the floor.  Each row
 * names the kernel it forced; the report's top-level "kernel" field
 * still records the dispatcher's own pick for this host.
 */
void
runKernelSweep(size_t bytes)
{
    std::string json = sampleJson(bytes);
    harness::BenchReport report(
        "micro_intervals",
        "block classification throughput per runtime SIMD kernel");
    report.inputBytes(json.size());

    std::printf("\n== per-kernel classification sweep "
                "(%zu KB, best of 5) ==\n",
                json.size() / 1024);
    std::printf("%-12s %12s %10s\n", "kernel", "seconds", "GB/s");
    for (const kernels::Kernel* k : kernels::runnable()) {
        kernels::Override guard(*k);
        harness::Timing t = harness::timeBest(
            [&] { return classifyPass(json); }, /*repeats=*/5);
        double gbps = static_cast<double>(json.size()) / t.seconds / 1e9;
        std::printf("%-12s %12s %10.2f\n", k->name,
                    harness::fmtSeconds(t.seconds).c_str(), gbps);
        report.beginRow(k->name, "classify");
        report.timing(t, json.size());
    }
    {
        harness::Timing t = harness::timeBest(
            [&] {
                ClassifierCarry carry;
                size_t structurals = 0;
                for (size_t base = 0; base + kBlockSize <= json.size();
                     base += kBlockSize) {
                    BlockBits b = classifyBlockReference(
                        json.data() + base, kBlockSize, carry);
                    structurals += static_cast<size_t>(
                        bits::popcount(b.structural()));
                }
                return structurals;
            },
            /*repeats=*/5);
        double gbps = static_cast<double>(json.size()) / t.seconds / 1e9;
        std::printf("%-12s %12s %10.2f\n", "reference",
                    harness::fmtSeconds(t.seconds).c_str(), gbps);
        report.beginRow("reference", "classify");
        report.timing(t, json.size());
    }
    report.write();
}

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    runKernelSweep(/*bytes=*/1 << 22);
    return 0;
}
