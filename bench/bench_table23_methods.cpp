/**
 * @file
 * Reproduces Tables 2 and 3 (methods under evaluation and their
 * feature matrix).  These are descriptive tables; the binary prints
 * the matrix for *this repository's* implementations and verifies the
 * claims that are checkable programmatically (bitwise parallelism via
 * the classifier mode, parallel support via the engine interface).
 */
#include <cstdio>

#include "harness/engines.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "intervals/classifier.h"
#include "kernels/kernel.h"

using namespace jsonski;
using namespace jsonski::harness;

int
main()
{
    std::printf("== Table 2: methods in the evaluation ==\n\n");
    printTableHeader({"Method", "Reproduces", "Scheme"}, {16, 36, 14});
    printTableRow({"JPStream", "character-level streaming PDA [35]",
                   "streaming"},
                  {16, 36, 14});
    printTableRow({"RapidJSON-like", "conventional DOM parser [11]",
                   "preprocessing"},
                  {16, 36, 14});
    printTableRow({"simdjson-like", "two-stage SIMD tape parser [40]",
                   "preprocessing"},
                  {16, 36, 14});
    printTableRow({"Pison-like", "leveled bitmap index [34]",
                   "preprocessing"},
                  {16, 36, 14});
    printTableRow({"JSONSki", "bit-parallel fast-forward streaming",
                   "streaming"},
                  {16, 36, 14});

    std::printf("\n== Table 3: feature comparison ==\n\n");
    printTableHeader({"Method", "Strategy", "ParallelSingleRec",
                      "BitwiseParallel", "Fast-forward"},
                     {16, 14, 18, 16, 12});
    auto engines = makeAllEngines();
    BenchReport report("table23_methods", "method feature matrix");
    const char* strategy[] = {"Streaming", "Preprocessing",
                              "Preprocessing", "Preprocessing",
                              "Streaming"};
    const char* bitwise[] = {"-", "-", "yes", "yes", "yes"};
    const char* ff[] = {"-", "-", "-", "-", "yes"};
    for (size_t i = 0; i < engines.size(); ++i) {
        printTableRow({std::string(engines[i]->name()), strategy[i],
                       engines[i]->supportsParallelLarge() ? "yes" : "-",
                       bitwise[i], ff[i]},
                      {16, 14, 18, 16, 12});
        report.beginRow("features", engines[i]->name());
        report.text("strategy", strategy[i]);
        report.metric("parallel_single_record",
                      static_cast<uint64_t>(
                          engines[i]->supportsParallelLarge()));
        report.metric("bitwise_parallel",
                      static_cast<uint64_t>(bitwise[i][0] == 'y'));
        report.metric("fast_forward",
                      static_cast<uint64_t>(ff[i][0] == 'y'));
    }
    report.write();
    std::printf(
        "\nvs paper: identical, except this reproduction adds an\n"
        "element-parallel JSONSki mode (the paper's future work; see\n"
        "bench_ext_parallel) and substitutes two-phase chunking for\n"
        "JPStream/Pison speculation (DESIGN.md #3).  SIMD kernel\n"
        "active at runtime: %s.\n",
        std::string(kernels::activeName()).c_str());
    return 0;
}
