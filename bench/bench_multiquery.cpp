/**
 * @file
 * Multi-query batching sweep: one combined pass vs N sequential
 * single-query passes at N in {1, 10, 100, 1000}, for shared-prefix
 * and disjoint query-set shapes (ROADMAP item 1; "earliest query
 * answering over streamed trees" is the theory reference).  The
 * headline number is the speedup at 1000 shared-prefix queries — the
 * standing-query fan-out workload where the sequential baseline pays
 * 1000 full scans of the same bytes.
 *
 * Emits BENCH_multiquery.json (schema jsonski-bench-v1): a sequential
 * and a batched row per (shape, N) with wall time, throughput, the
 * query count, and the batched pass's fast-forward total.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/runner.h"
#include "path/parser.h"
#include "path/queryset.h"
#include "ski/multi.h"
#include "ski/streamer.h"

using namespace jsonski;
using namespace jsonski::harness;

namespace {

/**
 * N queries sharing the `$.pd[*]` prefix: a few that select real BB
 * record fields plus generated never-matching siblings — the shape a
 * tenant's standing-query list takes (everyone watches the same
 * collection, each for a different attribute).
 */
std::vector<std::string>
sharedPrefixSet(size_t n)
{
    const char* real[] = {"$.pd[*].name", "$.pd[*].price",
                          "$.pd[*].cp[0].id", "$.pd[*].vc[0].cha"};
    std::vector<std::string> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        if (i < sizeof(real) / sizeof(real[0]))
            out.emplace_back(real[i]);
        else
            out.push_back("$.pd[*].f" + std::to_string(i));
    }
    return out;
}

/** N queries with disjoint first steps: no shared trie structure. */
std::vector<std::string>
disjointSet(size_t n)
{
    std::vector<std::string> out;
    out.reserve(n);
    out.emplace_back("$.pd[0].name"); // one live query among the noise
    for (size_t i = 1; i < n; ++i)
        out.push_back("$.r" + std::to_string(i) + ".id");
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 8);
    bench::banner("multiquery",
                  "batched query-set pass vs N sequential passes", bytes);

    std::string json = gen::generateLarge(gen::DatasetId::BB, bytes);

    struct Shape
    {
        const char* name;
        std::vector<std::string> (*make)(size_t);
    };
    const Shape shapes[] = {{"shared-prefix", sharedPrefixSet},
                            {"disjoint", disjointSet}};
    const size_t counts[] = {1, 10, 100, 1000};

    BenchReport report("multiquery",
                       "batched query-set pass vs N sequential passes");
    report.inputBytes(bytes);

    printTableHeader({"Shape", "N", "sequential (s)", "batched (s)",
                      "speedup", "matches"},
                     {14, 5, 14, 14, 8, 10});
    double speedup_1000_shared = 0;
    for (const Shape& shape : shapes) {
        for (size_t n : counts) {
            std::vector<std::string> texts = shape.make(n);
            std::vector<ski::Streamer> solos;
            solos.reserve(texts.size());
            for (const std::string& t : texts)
                solos.emplace_back(path::parse(t));

            // Fewer repeats at the largest N: the sequential baseline
            // alone is ~N full scans per repeat.
            int repeats = n >= 1000 ? 2 : 3;
            Timing sequential = timeBest(
                [&] {
                    size_t total = 0;
                    for (const ski::Streamer& s : solos)
                        total += s.run(json).matches;
                    return total;
                },
                repeats);

            ski::MultiStreamer multi(path::QuerySet::fromTexts(texts));
            uint64_t ff_batched = 0;
            Timing batched = timeBest(
                [&] {
                    auto r = multi.run(json);
                    ff_batched = r.stats.total();
                    size_t total = 0;
                    for (size_t m : r.matches)
                        total += m;
                    return total;
                },
                repeats);

            if (sequential.matches != batched.matches)
                std::printf("!! match counts disagree: %s N=%zu "
                            "(sequential %zu, batched %zu)\n",
                            shape.name, n, sequential.matches,
                            batched.matches);
            double speedup = sequential.seconds / batched.seconds;
            if (n == 1000 && std::string(shape.name) == "shared-prefix")
                speedup_1000_shared = speedup;
            char spd[16];
            std::snprintf(spd, sizeof(spd), "%.2fx", speedup);
            printTableRow({shape.name, std::to_string(n),
                           fmtSeconds(sequential.seconds),
                           fmtSeconds(batched.seconds), spd,
                           std::to_string(batched.matches)},
                          {14, 5, 14, 14, 8, 10});

            std::string label =
                std::string(shape.name) + "/N=" + std::to_string(n);
            report.beginRow(label, "sequential");
            report.timing(sequential, json.size() * texts.size());
            report.metric("queries", static_cast<uint64_t>(n));
            report.beginRow(label, "batched");
            report.timing(batched, json.size());
            report.metric("queries", static_cast<uint64_t>(n));
            report.metric("ff_bytes", ff_batched);
            report.metric("trie_nodes",
                          static_cast<uint64_t>(multi.trieNodes()));
        }
    }
    report.write();

    std::printf("\nexpected: batched time tracks ONE scan while the "
                "sequential baseline scales with N; the acceptance bar "
                "is >=5x at N=1000 shared-prefix (got %.1fx).\n",
                speedup_1000_shared);
    return speedup_1000_shared >= 5.0 ? 0 : 1;
}
