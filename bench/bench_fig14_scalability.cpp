/**
 * @file
 * Reproduces Figure 14 (scalability with input size, query BB1): runs
 * every method on BB datasets of doubling size and reports time and
 * peak extra heap.  Links the allocation hooks so the memory blow-up
 * of the preprocessing methods — the cause of the paper's OOM at
 * 72 GB for RapidJSON/Pison and simdjson's 4 GB cap — is measurable
 * at laptop scale.
 *
 * Expected shape: every method linear in input size; JSONSki's line
 * lowest; preprocessing methods' memory grows with a 1-3x multiple of
 * the input while the streaming methods stay flat.
 */
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/engines.h"
#include "harness/runner.h"
#include "path/parser.h"
#include "util/mem_stats.h"

using namespace jsonski;
using namespace jsonski::harness;

int
main(int argc, char** argv)
{
    size_t max_bytes = benchBytes(argc, argv, 128);
    bench::banner("Figure 14", "input-size scalability, query BB1",
                  max_bytes);

    BenchReport report("fig14_scalability",
                       "input-size scalability, query BB1");
    report.inputBytes(max_bytes);

    auto engines = makeAllEngines();
    auto q = path::parse("$.pd[*].cp[1:3].id");

    std::vector<std::string> header = {"Size"};
    std::vector<int> widths = {10};
    for (const auto& e : engines) {
        header.push_back(std::string(e->name()));
        widths.push_back(14);
        header.push_back("mem");
        widths.push_back(10);
    }
    printTableHeader(header, widths);

    for (size_t bytes = max_bytes / 8; bytes <= max_bytes; bytes *= 2) {
        std::string json = gen::generateLarge(gen::DatasetId::BB, bytes);
        std::vector<std::string> row = {fmtMb(json.size())};
        for (const auto& e : engines) {
            mem::resetPeak();
            size_t before = mem::current();
            Timing t = timeBest([&] { return e->run(json, q); }, 1);
            row.push_back(fmtSeconds(t.seconds));
            size_t extra = mem::peak() - before;
            row.push_back(fmtMb(extra));
            report.beginRow("BB1/" + std::to_string(json.size() >> 20) +
                                "MB",
                            e->name());
            report.timing(t, json.size());
            report.metric("extra_heap_bytes",
                          static_cast<uint64_t>(extra));
        }
        printTableRow(row, widths);
    }
    report.write();
    std::printf("\npaper: all methods linear 250 MB - 72 GB; RapidJSON "
                "and Pison OOM at 72 GB on a 128 GB box; simdjson caps "
                "at 4 GB records.  The mem columns show the same "
                "multiples at this scale.\n");
    return 0;
}
