/**
 * @file
 * Reproduces Figure 10 (performance on a single large record): total
 * execution time of the five methods per query, plus the parallel
 * JPStream(T)/Pison(T) single-record modes.
 *
 * Expected shape (paper): JPStream and RapidJSON far slower than the
 * bit-parallel methods; JSONSki fastest serial (≈12× over JPStream,
 * ≈4.8× over simdjson-class, ≈3.1× over Pison-class on average);
 * NSPL1 and WP2 nearly free for JSONSki (early-match fast-forward).
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/engines.h"
#include "harness/runner.h"
#include "path/parser.h"
#include "util/thread_pool.h"

using namespace jsonski;
using namespace jsonski::harness;

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 32);
    size_t threads = benchThreads();
    bench::banner("Figure 10", "single large record, total time (s)",
                  bytes);
    BenchReport report("fig10_large_record",
                       "single large record, total time");
    report.inputBytes(bytes);
    report.threads(threads);

    auto engines = makeAllEngines();
    ThreadPool pool(threads);

    std::vector<std::string> header = {"Query"};
    std::vector<int> widths = {6};
    for (const auto& e : engines) {
        header.push_back(std::string(e->name()));
        widths.push_back(14);
    }
    header.push_back("JPStream(" + std::to_string(threads) + ")");
    widths.push_back(14);
    header.push_back("Pison(" + std::to_string(threads) + ")");
    widths.push_back(14);
    header.push_back("speedup*");
    widths.push_back(9);
    printTableHeader(header, widths);

    double geo_sum = 0;
    int geo_n = 0;
    for (const QuerySpec& spec : paperQueries()) {
        std::string json = gen::generateLarge(spec.dataset, bytes);
        auto q = path::parse(spec.large_query);

        std::vector<std::string> row = {std::string(spec.id)};
        double jpstream_s = 0, jsonski_s = 0;
        for (const auto& e : engines) {
            Timing t = timeBest([&] { return e->run(json, q); }, 2);
            row.push_back(fmtSeconds(t.seconds));
            report.beginRow(spec.id, e->name());
            report.timing(t, json.size());
            if (e->name() == "JPStream")
                jpstream_s = t.seconds;
            if (e->name() == "JSONSki") {
                jsonski_s = t.seconds;
                bench::addJsonSkiDetail(report, json, q);
            }
        }
        for (const auto& e : engines) {
            if (!e->supportsParallelLarge())
                continue;
            Timing t = timeBest(
                [&] { return e->runParallelLarge(json, q, pool); }, 2);
            row.push_back(fmtSeconds(t.seconds));
            report.beginRow(spec.id,
                            std::string(e->name()) + "(T)");
            report.timing(t, json.size());
        }
        double speedup = jpstream_s / jsonski_s;
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.1fx", speedup);
        row.push_back(buf);
        printTableRow(row, widths);
        geo_sum += std::log(speedup);
        ++geo_n;
    }
    std::printf("\n*speedup = JPStream / JSONSki (serial). geomean: "
                "%.1fx (paper: 12.3x)\n",
                std::exp(geo_sum / geo_n));
    std::printf("note: parallel columns are shape-only on few-core "
                "hosts; the paper used 16 cores.\n");
    report.write();
    return 0;
}
