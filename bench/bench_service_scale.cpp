/**
 * @file
 * Shard scale-out sweep: closed-loop jsqd throughput and latency
 * (p50/p99) across shard count x client connections x body size, via
 * the shared load generator (service/loadgen.h).
 *
 * Expected shape: on a multicore host, throughput at 4 shards with
 * enough connections reaches >= 2x the 1-shard figure for small
 * bodies (the accept/event-loop path is the bottleneck there); large
 * bodies scale less, since per-request evaluation already parallelizes
 * across each shard's workers.  On a single hardware thread the curve
 * is flat — every shard multiplexes the same core — so the report
 * records hardware_concurrency and readers judge scaling only where
 * hw >= shards.
 */
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "service/loadgen.h"
#include "service/server.h"

using namespace jsonski;
using namespace jsonski::harness;

namespace {

/** `{"a": [1, 2, ...]}` of roughly @p target_bytes. */
std::string
synthBody(size_t target_bytes)
{
    std::string body = "{\"a\": [";
    uint64_t n = 0;
    while (body.size() + 16 < target_bytes) {
        if (n != 0)
            body += ", ";
        body += std::to_string(n % 1000000);
        ++n;
    }
    if (n == 0)
        body += "1";
    body += "]}";
    return body;
}

} // namespace

int
main(int argc, char** argv)
{
    // --quick halves the per-config duration (CI smoke).
    int duration_ms = 600;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--quick")
            duration_ms = 250;

    unsigned hw = std::thread::hardware_concurrency();
    std::printf("service shard scale-out sweep "
                "(hardware_concurrency=%u, closed loop, %d ms per "
                "config)\n\n",
                hw, duration_ms);

    BenchReport report("service_scale",
                       "jsqd throughput/latency vs. shard count");
    report.threads(hw); // the scaling ceiling readers must judge by

    const std::vector<size_t> kShards = {1, 2, 4};
    const std::vector<size_t> kConnections = {1, 8};
    const std::vector<size_t> kBodyBytes = {256, size_t{64} << 10};

    printTableHeader(
        {"shards", "conns", "body", "req/s", "p50us", "p99us"},
        {6, 5, 8, 10, 8, 8});

    for (size_t shards : kShards) {
        service::ServerConfig cfg;
        cfg.shards = shards;
        cfg.workers = 2;
        service::Server server(cfg);
        server.start();
        for (size_t conns : kConnections) {
            for (size_t body_bytes : kBodyBytes) {
                service::LoadOptions opt;
                opt.port = server.port();
                opt.query = "$.a[*]";
                opt.body = synthBody(body_bytes);
                opt.connections = conns;
                opt.duration_ms = duration_ms;
                service::LoadResult r = service::runLoad(opt);

                std::printf("%-6zu %-5zu %-8zu %-10.0f %-8llu %-8llu\n",
                            shards, conns, body_bytes, r.throughput_rps,
                            static_cast<unsigned long long>(
                                r.latency.percentile(50)),
                            static_cast<unsigned long long>(
                                r.latency.percentile(99)));

                report.beginRow("$.a[*] body=" +
                                    std::to_string(body_bytes) + "B",
                                "shards=" + std::to_string(shards) +
                                    " conns=" + std::to_string(conns));
                report.metric("hardware_concurrency",
                              static_cast<uint64_t>(hw));
                report.metric("shards", static_cast<uint64_t>(shards));
                report.metric("connections",
                              static_cast<uint64_t>(conns));
                report.metric("body_bytes",
                              static_cast<uint64_t>(body_bytes));
                report.metric("requests_ok", r.ok);
                report.metric("errors", r.errors);
                report.metric("throughput_rps", r.throughput_rps);
                report.metric("p50_us", r.latency.percentile(50));
                report.metric("p99_us", r.latency.percentile(99));
            }
        }
        server.stop();
    }

    report.write();
    return 0;
}
