/**
 * @file
 * Reproduces Figure 13 (memory footprint on a single large record).
 * This binary links the global allocation hooks; for each method we
 * reset the peak tracker after the input is resident and report the
 * extra heap the evaluation itself needed.
 *
 * Expected shape: the streaming methods (JPStream, JSONSki) take
 * near-zero extra memory beyond the input buffer, while DOM-, tape-,
 * and Pison-class methods allocate a 1-3x multiple of the input for
 * their parse tree / tape / leveled bitmaps.
 */
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/engines.h"
#include "harness/runner.h"
#include "path/parser.h"
#include "util/mem_stats.h"

using namespace jsonski;
using namespace jsonski::harness;

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 32);
    bench::banner("Figure 13",
                  "peak extra heap while querying one large record",
                  bytes);

    BenchReport report("fig13_memory",
                       "peak extra heap while querying one large record");
    report.inputBytes(bytes);

    auto engines = makeAllEngines();
    std::vector<std::string> header = {"Query", "input"};
    std::vector<int> widths = {6, 10};
    for (const auto& e : engines) {
        header.push_back(std::string(e->name()));
        widths.push_back(14);
    }
    printTableHeader(header, widths);

    for (const QuerySpec& spec : paperQueries()) {
        std::string json = gen::generateLarge(spec.dataset, bytes);
        auto q = path::parse(spec.large_query);
        std::vector<std::string> row = {std::string(spec.id),
                                        fmtMb(json.size())};
        for (const auto& e : engines) {
            mem::resetPeak();
            size_t before = mem::current();
            (void)e->run(json, q);
            size_t extra = mem::peak() - before;
            row.push_back(fmtMb(extra));
            report.beginRow(spec.id, e->name());
            report.metric("extra_heap_bytes",
                          static_cast<uint64_t>(extra));
        }
        printTableRow(row, widths);
    }
    report.write();
    std::printf("\npaper @1GB: JPStream/JSONSki ~1 GB total (the input "
                "buffer); simdjson/RapidJSON/Pison 2-3 GB.  Here the "
                "input column is the buffer; method columns show heap "
                "beyond it.\n");
    return 0;
}
