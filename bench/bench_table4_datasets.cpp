/**
 * @file
 * Reproduces Table 4 (dataset statistics): structural counts of the
 * six synthetic datasets, in both processing formats.  The absolute
 * counts scale with the configured input size; the paper's 1 GB column
 * ratios (#attr per object, primitives per array, depth) are the
 * comparison target.
 */
#include <cinttypes>

#include "bench_common.h"
#include "gen/datasets.h"
#include "harness/runner.h"

using namespace jsonski;
using namespace jsonski::harness;

int
main(int argc, char** argv)
{
    size_t bytes = benchBytes(argc, argv, 32);
    bench::banner("Table 4", "dataset structural statistics", bytes);

    BenchReport report("table4_datasets", "dataset structural statistics");
    report.inputBytes(bytes);

    printTableHeader({"Data", "#objects", "#arrays", "#attr", "#prim.",
                      "#sub", "depth"},
                     {6, 10, 10, 10, 10, 9, 6});
    for (gen::DatasetId id : gen::kAllDatasets) {
        std::string large = gen::generateLarge(id, bytes);
        DatasetStats s = computeStats(large);
        gen::SmallRecords small = gen::generateSmall(id, bytes);
        printTableRow({std::string(gen::datasetName(id)),
                       std::to_string(s.objects), std::to_string(s.arrays),
                       std::to_string(s.attributes),
                       std::to_string(s.primitives),
                       std::to_string(small.count()),
                       std::to_string(s.max_depth)},
                      {6, 10, 10, 10, 10, 9, 6});
        report.beginRow(gen::datasetName(id), "stats");
        report.metric("objects", static_cast<uint64_t>(s.objects));
        report.metric("arrays", static_cast<uint64_t>(s.arrays));
        report.metric("attributes", static_cast<uint64_t>(s.attributes));
        report.metric("primitives", static_cast<uint64_t>(s.primitives));
        report.metric("records", static_cast<uint64_t>(small.count()));
        report.metric("max_depth", static_cast<uint64_t>(s.max_depth));
    }
    report.write();
    std::printf("\npaper (1 GB): TT 2.39M/2.29M objects/arrays deep=11; "
                "NSPL 613 objects vs 3.5M arrays; WM object-heavy; "
                "the relative shapes above should match.\n");
    return 0;
}
