/**
 * @file
 * Telemetry exporters: machine-readable JSON, Prometheus text
 * exposition format, and a human-readable report (the runtime
 * counterpart of ski::explain(), meant to be printed next to it).
 *
 * Export works in every build; in a default (telemetry-off) build the
 * registries simply contain zeros and the reports say so.
 */
#ifndef JSONSKI_TELEMETRY_EXPORT_H
#define JSONSKI_TELEMETRY_EXPORT_H

#include <string>
#include <string_view>

#include "telemetry/telemetry.h"

namespace jsonski::telemetry {

/**
 * Serialize @p r as one JSON object:
 *
 *   {"enabled":bool, "kernel":"avx2",
 *    "counters":{...}, "skipped_bytes":{"G1":n,...},
 *    "skip_histograms":{"G1":[{"le":2,"count":n},...],...},
 *    "phase_ns":{...},
 *    "trace":{"total":n,"dropped":n,"entries":[{...},...]}}
 *
 * Histogram buckets are emitted sparsely (only non-empty buckets);
 * "le" is the exclusive upper bound 2^b of log2 bucket b.
 */
std::string toJson(const Registry& r);

/**
 * Prometheus text exposition format.  Metric names are prefixed
 * `jsonski_`; @p labels (e.g. `query="BB1"`) is inserted verbatim into
 * every sample's label set.
 */
std::string toPrometheus(const Registry& r, std::string_view labels = {});

/**
 * Human-readable report: counter table, per-group skip profile with
 * log2 histograms, phase breakdown, and the trace ring rendered one
 * decision per line — print it after ski::explain() to see the static
 * plan and the dynamic decisions side by side.
 */
std::string renderReport(const Registry& r);

} // namespace jsonski::telemetry

#endif // JSONSKI_TELEMETRY_EXPORT_H
