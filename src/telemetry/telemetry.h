/**
 * @file
 * Zero-overhead telemetry substrate: counters, log2-bucketed skip
 * histograms, per-phase stopwatches, and a bounded trace ring of
 * fast-forward decisions.
 *
 * The data structures (Registry, SkipHistogram, TraceRing) compile in
 * every build so exporters and tests always work.  The *hot-path
 * hooks* (count(), recordSkip(), PhaseScope) are compile-time gated on
 * the JSONSKI_TELEMETRY CMake option (macro JSONSKI_TELEMETRY_ENABLED):
 * in the default OFF build every hook is an empty `if constexpr
 * (false)` body the optimizer removes entirely — no branch, no TLS
 * read, no code.  `bench_telemetry_guard` measures this contract.
 *
 * Recording is per-thread: a Scope installs a Registry into
 * thread-local storage and every hook on that thread writes into it.
 * Parallel runs give each worker task its own Registry and merge them
 * in document order afterwards (see ski/parallel.cpp), which makes the
 * merged result deterministic under the dynamic scheduling of
 * ThreadPool::parallelFor.
 *
 * DESIGN.md §8 is the counter glossary and overhead contract.
 */
#ifndef JSONSKI_TELEMETRY_TELEMETRY_H
#define JSONSKI_TELEMETRY_TELEMETRY_H

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#ifndef JSONSKI_TELEMETRY_ENABLED
#define JSONSKI_TELEMETRY_ENABLED 0
#endif

namespace jsonski::telemetry {

/** True when the hot-path hooks are compiled in. */
inline constexpr bool kEnabled = JSONSKI_TELEMETRY_ENABLED != 0;

/** Event counters beyond the five fast-forward groups. */
enum class Counter : uint8_t {
    BlocksClassified,      ///< 64-byte blocks string-classified by cursors
    StringMaskBuilds,      ///< CLMUL string-mask constructions (classifier)
    PairingProbeWords,     ///< words examined by counting-based pairing
    PairingFallbackParses, ///< scalar key recoveries after a batched scan
    CursorReseeks,         ///< backward setPos() within a block (overshoot)
    BytesScanned,          ///< bytes covered by string classification
    ChunkRefills,          ///< ChunkSource reads that delivered data
    ChunkSpillBytes,       ///< bytes memmoved by window compaction
    SeamStraddleTokens,    ///< compactions where a hold crossed the seam
    kCount,
};

inline constexpr size_t kCounterCount = static_cast<size_t>(Counter::kCount);

/** Stable snake_case identifier (JSON keys, Prometheus metric names). */
const char* counterName(Counter c);

/** Pipeline phases attributed by PhaseScope (exclusive time). */
enum class Phase : uint8_t {
    Classify, ///< string-layer block classification
    Pair,     ///< counting-based container-end pairing
    Skip,     ///< primitive-run scanning / skipping
    Emit,     ///< matched-value delivery (G3)
    Other,    ///< everything outside the scopes above (driver logic)
    kCount,
};

inline constexpr size_t kPhaseCount = static_cast<size_t>(Phase::kCount);

const char* phaseName(Phase p);

/** Mirrors ski::Group G1..G5 without depending on the ski layer. */
inline constexpr size_t kSkipGroupCount = 5;

/**
 * Log2-bucketed length histogram: bucket b counts values whose
 * bit_width is b, i.e. bucket 0 holds length 0 and bucket b >= 1 holds
 * lengths in [2^(b-1), 2^b).
 */
struct SkipHistogram
{
    static constexpr size_t kBuckets = 65; // bit_width(uint64_t) in 0..64

    std::array<uint64_t, kBuckets> buckets{};

    void
    add(uint64_t len)
    {
        buckets[static_cast<size_t>(std::bit_width(len))] += 1;
    }

    uint64_t
    count() const
    {
        uint64_t n = 0;
        for (uint64_t b : buckets)
            n += b;
        return n;
    }

    void
    merge(const SkipHistogram& other)
    {
        for (size_t i = 0; i < kBuckets; ++i)
            buckets[i] += other.buckets[i];
    }
};

/** One fast-forward decision, the dynamic counterpart of explain(). */
struct TraceEntry
{
    uint64_t begin = 0; ///< first byte of the fast-forwarded span
    uint64_t end = 0;   ///< one past the last byte
    uint16_t state = 0; ///< automaton state (query step / trie node)
    uint8_t group = 0;  ///< 0..4 = G1..G5

    bool
    operator==(const TraceEntry&) const = default;
};

/**
 * Bounded ring buffer of TraceEntry: keeps the most recent `capacity`
 * decisions and counts how many older ones were dropped.
 */
class TraceRing
{
  public:
    static constexpr size_t kDefaultCapacity = 256;

    explicit TraceRing(size_t capacity = kDefaultCapacity)
        : capacity_(capacity)
    {}

    void push(const TraceEntry& e);

    /** Entries currently retained (<= capacity). */
    size_t size() const;

    /** Total entries ever pushed (including dropped ones). */
    uint64_t total() const { return total_; }

    /** Entries overwritten by wraparound. */
    uint64_t dropped() const { return total_ - size(); }

    size_t capacity() const { return capacity_; }

    /** Retained entries, oldest first. */
    std::vector<TraceEntry> snapshot() const;

    /** Append the other ring's retained entries, oldest first. */
    void merge(const TraceRing& other);

    void clear();

  private:
    size_t capacity_;
    size_t head_ = 0; ///< next write slot once the ring is full
    uint64_t total_ = 0;
    std::vector<TraceEntry> ring_;
};

/** Everything one query run (or one worker task) records. */
struct Registry
{
    std::array<uint64_t, kCounterCount> counters{};

    /** Bytes fast-forwarded per group; mirrors ski::FastForwardStats. */
    std::array<uint64_t, kSkipGroupCount> skipped{};

    std::array<SkipHistogram, kSkipGroupCount> skip_hist{};

    std::array<uint64_t, kPhaseCount> phase_ns{};

    TraceRing trace;

    uint64_t
    counter(Counter c) const
    {
        return counters[static_cast<size_t>(c)];
    }

    uint64_t
    skippedTotal() const
    {
        uint64_t t = 0;
        for (uint64_t v : skipped)
            t += v;
        return t;
    }

    /** Element-wise sum; traces concatenate in push order. */
    void merge(const Registry& other);

    void reset();
};

/**
 * Registry the current thread records into, or nullptr.  Always
 * functional (tests and jsq --profile install scopes in OFF builds
 * too); only the hooks below are gated out.
 */
Registry* current() noexcept;

/** RAII: install @p r as the current thread's registry. */
class Scope
{
  public:
    explicit Scope(Registry& r);
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

  private:
    Registry* prev_;
};

// --- Hot-path hooks (compiled out when JSONSKI_TELEMETRY is OFF) ------

inline void
count(Counter c, uint64_t n = 1)
{
    if constexpr (kEnabled) {
        if (Registry* r = current())
            r->counters[static_cast<size_t>(c)] += n;
    } else {
        (void)c;
        (void)n;
    }
}

/**
 * Record one fast-forward decision: per-group byte accounting, the
 * skip-length histogram, and a trace-ring entry.
 * @param group 0..4 = G1..G5.  @pre end >= begin.
 */
inline void
recordSkip(uint8_t group, uint64_t begin, uint64_t end, uint16_t state)
{
    if constexpr (kEnabled) {
        if (Registry* r = current()) {
            uint64_t len = end - begin;
            r->skipped[group] += len;
            r->skip_hist[group].add(len);
            r->trace.push(TraceEntry{begin, end, state, group});
        }
    } else {
        (void)group;
        (void)begin;
        (void)end;
        (void)state;
    }
}

#if JSONSKI_TELEMETRY_ENABLED

/**
 * Attribute wall time to @p p until destruction, exclusively: time
 * spent inside a nested PhaseScope is charged to the inner phase.
 * No-op when no Registry is installed.
 */
class PhaseScope
{
  public:
    explicit PhaseScope(Phase p);
    ~PhaseScope();

    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

  private:
    Phase prev_;
    bool active_;
};

#else

class PhaseScope
{
  public:
    explicit PhaseScope(Phase) {}
};

#endif // JSONSKI_TELEMETRY_ENABLED

} // namespace jsonski::telemetry

#endif // JSONSKI_TELEMETRY_TELEMETRY_H
