#include "telemetry/export.h"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "kernels/kernel.h"

namespace jsonski::telemetry {

namespace {

void
appendU64(std::string& out, uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out += buf;
}

/** `"G1"` .. `"G5"` for group index 0..4. */
std::string
groupKey(size_t g)
{
    return "G" + std::to_string(g + 1);
}

void
appendHistogramJson(std::string& out, const SkipHistogram& h)
{
    out += '[';
    bool first = true;
    for (size_t b = 0; b < SkipHistogram::kBuckets; ++b) {
        if (h.buckets[b] == 0)
            continue;
        if (!first)
            out += ',';
        first = false;
        out += "{\"le\":";
        // Exclusive upper bound of log2 bucket b: 2^b (bucket 0 holds
        // only length 0, so its bound is 1).
        appendU64(out, b >= 64 ? UINT64_MAX : (uint64_t{1} << b));
        out += ",\"count\":";
        appendU64(out, h.buckets[b]);
        out += '}';
    }
    out += ']';
}

} // namespace

std::string
toJson(const Registry& r)
{
    std::string out;
    out.reserve(1024);
    out += "{\"enabled\":";
    out += kEnabled ? "true" : "false";

    // Which SIMD kernel produced the counted work (DESIGN.md §11);
    // kernel names are [a-z0-9_-] so no JSON escaping is needed.
    out += ",\"kernel\":\"";
    out += kernels::activeName();
    out += '"';

    out += ",\"counters\":{";
    for (size_t i = 0; i < kCounterCount; ++i) {
        if (i != 0)
            out += ',';
        out += '"';
        out += counterName(static_cast<Counter>(i));
        out += "\":";
        appendU64(out, r.counters[i]);
    }
    out += '}';

    out += ",\"skipped_bytes\":{";
    for (size_t g = 0; g < kSkipGroupCount; ++g) {
        if (g != 0)
            out += ',';
        out += '"';
        out += groupKey(g);
        out += "\":";
        appendU64(out, r.skipped[g]);
    }
    out += '}';

    out += ",\"skip_histograms\":{";
    for (size_t g = 0; g < kSkipGroupCount; ++g) {
        if (g != 0)
            out += ',';
        out += '"';
        out += groupKey(g);
        out += "\":";
        appendHistogramJson(out, r.skip_hist[g]);
    }
    out += '}';

    out += ",\"phase_ns\":{";
    for (size_t i = 0; i < kPhaseCount; ++i) {
        if (i != 0)
            out += ',';
        out += '"';
        out += phaseName(static_cast<Phase>(i));
        out += "\":";
        appendU64(out, r.phase_ns[i]);
    }
    out += '}';

    out += ",\"trace\":{\"total\":";
    appendU64(out, r.trace.total());
    out += ",\"dropped\":";
    appendU64(out, r.trace.dropped());
    out += ",\"entries\":[";
    bool first = true;
    for (const TraceEntry& e : r.trace.snapshot()) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"group\":\"";
        out += groupKey(e.group);
        out += "\",\"begin\":";
        appendU64(out, e.begin);
        out += ",\"end\":";
        appendU64(out, e.end);
        out += ",\"state\":";
        appendU64(out, e.state);
        out += '}';
    }
    out += "]}}";
    return out;
}

std::string
toPrometheus(const Registry& r, std::string_view labels)
{
    std::string out;
    out.reserve(2048);

    auto sample = [&](std::string_view metric, std::string_view extra,
                      uint64_t value) {
        out += "jsonski_";
        out += metric;
        if (!labels.empty() || !extra.empty()) {
            out += '{';
            out += labels;
            if (!labels.empty() && !extra.empty())
                out += ',';
            out += extra;
            out += '}';
        }
        out += ' ';
        appendU64(out, value);
        out += '\n';
    };

    out += "# TYPE jsonski_kernel_info gauge\n";
    {
        std::string extra = "kernel=\"";
        extra += kernels::activeName();
        extra += '"';
        sample("kernel_info", extra, 1);
    }

    out += "# TYPE jsonski_counter_total counter\n";
    for (size_t i = 0; i < kCounterCount; ++i) {
        std::string extra = "name=\"";
        extra += counterName(static_cast<Counter>(i));
        extra += '"';
        sample("counter_total", extra, r.counters[i]);
    }

    out += "# TYPE jsonski_skipped_bytes_total counter\n";
    for (size_t g = 0; g < kSkipGroupCount; ++g)
        sample("skipped_bytes_total", "group=\"" + groupKey(g) + '"',
               r.skipped[g]);

    // Prometheus histogram convention: cumulative le buckets + +Inf.
    out += "# TYPE jsonski_skip_length_bytes histogram\n";
    for (size_t g = 0; g < kSkipGroupCount; ++g) {
        std::string grp = "group=\"" + groupKey(g) + '"';
        uint64_t cum = 0;
        for (size_t b = 0; b < SkipHistogram::kBuckets; ++b) {
            if (r.skip_hist[g].buckets[b] == 0)
                continue;
            cum += r.skip_hist[g].buckets[b];
            std::string extra = grp + ",le=\"";
            if (b >= 64) {
                extra += "+Inf";
            } else {
                char buf[24];
                std::snprintf(buf, sizeof(buf), "%" PRIu64,
                              uint64_t{1} << b);
                extra += buf;
            }
            extra += '"';
            sample("skip_length_bytes_bucket", extra, cum);
        }
        sample("skip_length_bytes_bucket", grp + ",le=\"+Inf\"", cum);
        sample("skip_length_bytes_count", grp, cum);
        sample("skip_length_bytes_sum", grp, r.skipped[g]);
    }

    out += "# TYPE jsonski_phase_seconds_total counter\n";
    for (size_t i = 0; i < kPhaseCount; ++i) {
        std::string extra = "phase=\"";
        extra += phaseName(static_cast<Phase>(i));
        extra += '"';
        // Emit nanoseconds under a _ns suffix to stay integral.
        out += "jsonski_phase_ns_total{";
        if (!labels.empty()) {
            out += labels;
            out += ',';
        }
        out += extra;
        out += "} ";
        appendU64(out, r.phase_ns[i]);
        out += '\n';
    }

    sample("trace_decisions_total", "", r.trace.total());
    sample("trace_dropped_total", "", r.trace.dropped());
    return out;
}

std::string
renderReport(const Registry& r)
{
    std::string out;
    out.reserve(2048);
    char line[160];

    out += "telemetry report";
    if (!kEnabled)
        out += " (hooks compiled out: JSONSKI_TELEMETRY=OFF — all zeros)";
    out += '\n';

    out += "  kernel: ";
    out += kernels::activeName();
    out += '\n';

    out += "  counters:\n";
    for (size_t i = 0; i < kCounterCount; ++i) {
        std::snprintf(line, sizeof(line), "    %-24s %12" PRIu64 "\n",
                      counterName(static_cast<Counter>(i)), r.counters[i]);
        out += line;
    }

    out += "  fast-forward skips (bytes / count):\n";
    for (size_t g = 0; g < kSkipGroupCount; ++g) {
        std::snprintf(line, sizeof(line), "    %-4s %12" PRIu64 " / %" PRIu64,
                      groupKey(g).c_str(), r.skipped[g],
                      r.skip_hist[g].count());
        out += line;
        // Inline sparse histogram: len<2^b:count pairs.
        bool any = false;
        for (size_t b = 0; b < SkipHistogram::kBuckets; ++b) {
            if (r.skip_hist[g].buckets[b] == 0)
                continue;
            out += any ? ", " : "   [";
            any = true;
            if (b >= 64) {
                out += "<inf:";
            } else {
                std::snprintf(line, sizeof(line), "<%" PRIu64 ":",
                              uint64_t{1} << b);
                out += line;
            }
            std::snprintf(line, sizeof(line), "%" PRIu64,
                          r.skip_hist[g].buckets[b]);
            out += line;
        }
        if (any)
            out += ']';
        out += '\n';
    }

    out += "  phases (exclusive):\n";
    uint64_t total_ns = 0;
    for (uint64_t v : r.phase_ns)
        total_ns += v;
    for (size_t i = 0; i < kPhaseCount; ++i) {
        double pct = total_ns == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(r.phase_ns[i]) /
                               static_cast<double>(total_ns);
        std::snprintf(line, sizeof(line),
                      "    %-10s %12.3f ms  %5.1f%%\n",
                      phaseName(static_cast<Phase>(i)),
                      static_cast<double>(r.phase_ns[i]) / 1e6, pct);
        out += line;
    }

    std::snprintf(line, sizeof(line),
                  "  trace (%" PRIu64 " decisions, %" PRIu64
                  " dropped, showing last %zu):\n",
                  r.trace.total(), r.trace.dropped(), r.trace.size());
    out += line;
    for (const TraceEntry& e : r.trace.snapshot()) {
        std::snprintf(line, sizeof(line),
                      "    %-4s [%10" PRIu64 ", %10" PRIu64
                      ")  %8" PRIu64 " B  state=%u\n",
                      groupKey(e.group).c_str(), e.begin, e.end,
                      e.end - e.begin, static_cast<unsigned>(e.state));
        out += line;
    }
    return out;
}

} // namespace jsonski::telemetry
