#include "telemetry/telemetry.h"

#include <chrono>

namespace jsonski::telemetry {

const char*
counterName(Counter c)
{
    switch (c) {
      case Counter::BlocksClassified: return "blocks_classified";
      case Counter::StringMaskBuilds: return "string_mask_builds";
      case Counter::PairingProbeWords: return "pairing_probe_words";
      case Counter::PairingFallbackParses:
        return "pairing_fallback_parses";
      case Counter::CursorReseeks: return "cursor_reseeks";
      case Counter::BytesScanned: return "bytes_scanned";
      case Counter::ChunkRefills: return "chunk_refills";
      case Counter::ChunkSpillBytes: return "chunk_spill_bytes";
      case Counter::SeamStraddleTokens: return "seam_straddle_tokens";
      case Counter::kCount: break;
    }
    return "unknown";
}

const char*
phaseName(Phase p)
{
    switch (p) {
      case Phase::Classify: return "classify";
      case Phase::Pair: return "pair";
      case Phase::Skip: return "skip";
      case Phase::Emit: return "emit";
      case Phase::Other: return "other";
      case Phase::kCount: break;
    }
    return "unknown";
}

void
TraceRing::push(const TraceEntry& e)
{
    ++total_;
    if (capacity_ == 0)
        return;
    if (ring_.size() < capacity_) {
        ring_.push_back(e);
        return;
    }
    ring_[head_] = e;
    head_ = (head_ + 1) % capacity_;
}

size_t
TraceRing::size() const
{
    return ring_.size();
}

std::vector<TraceEntry>
TraceRing::snapshot() const
{
    std::vector<TraceEntry> out;
    out.reserve(ring_.size());
    // Once full, head_ is the oldest retained entry.
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

void
TraceRing::merge(const TraceRing& other)
{
    for (const TraceEntry& e : other.snapshot())
        push(e);
    // Entries the other ring had already dropped stay dropped; account
    // for them so total() remains the true decision count.
    total_ += other.dropped();
}

void
TraceRing::clear()
{
    ring_.clear();
    head_ = 0;
    total_ = 0;
}

void
Registry::merge(const Registry& other)
{
    for (size_t i = 0; i < kCounterCount; ++i)
        counters[i] += other.counters[i];
    for (size_t i = 0; i < kSkipGroupCount; ++i) {
        skipped[i] += other.skipped[i];
        skip_hist[i].merge(other.skip_hist[i]);
    }
    for (size_t i = 0; i < kPhaseCount; ++i)
        phase_ns[i] += other.phase_ns[i];
    trace.merge(other.trace);
}

void
Registry::reset()
{
    counters.fill(0);
    skipped.fill(0);
    for (SkipHistogram& h : skip_hist)
        h.buckets.fill(0);
    phase_ns.fill(0);
    trace.clear();
}

namespace {

thread_local Registry* tls_registry = nullptr;

#if JSONSKI_TELEMETRY_ENABLED

using PhaseClock = std::chrono::steady_clock;

thread_local Phase tls_phase = Phase::Other;
thread_local PhaseClock::time_point tls_mark{};

/** Charge the time since tls_mark to the active phase and re-mark. */
void
flushPhase(Registry* r)
{
    PhaseClock::time_point now = PhaseClock::now();
    if (r != nullptr) {
        r->phase_ns[static_cast<size_t>(tls_phase)] +=
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    now - tls_mark)
                    .count());
    }
    tls_mark = now;
}

#endif // JSONSKI_TELEMETRY_ENABLED

} // namespace

Registry*
current() noexcept
{
    return tls_registry;
}

Scope::Scope(Registry& r) : prev_(tls_registry)
{
    tls_registry = &r;
#if JSONSKI_TELEMETRY_ENABLED
    // Start the phase clock so phase_ns sums to the scope's wall time.
    tls_phase = Phase::Other;
    tls_mark = PhaseClock::now();
#endif
}

Scope::~Scope()
{
#if JSONSKI_TELEMETRY_ENABLED
    flushPhase(tls_registry);
#endif
    tls_registry = prev_;
}

#if JSONSKI_TELEMETRY_ENABLED

PhaseScope::PhaseScope(Phase p) : prev_(tls_phase), active_(false)
{
    Registry* r = tls_registry;
    if (r == nullptr)
        return;
    active_ = true;
    flushPhase(r); // charge the elapsed slice to the outer phase
    tls_phase = p;
}

PhaseScope::~PhaseScope()
{
    if (!active_)
        return;
    flushPhase(tls_registry); // charge this scope's slice to its phase
    tls_phase = prev_;
}

#endif // JSONSKI_TELEMETRY_ENABLED

} // namespace jsonski::telemetry
