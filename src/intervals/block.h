/**
 * @file
 * Per-block classification result for the bit-parallel streaming layer.
 *
 * The input is processed in 64-byte blocks (one word per bitmap,
 * W = 64, per Section 4.1 of the paper).  For each block the classifier
 * produces one bitmap per structural metacharacter with
 * pseudo-metacharacters (those inside string literals) already removed,
 * plus the string-interior mask and a whitespace mask.
 *
 * Bitmap convention: bit i corresponds to byte i of the block ("mirrored
 * bitmap"), so lower bits are earlier characters and forward scans use
 * trailing-zero counts.  See util/bits.h.
 */
#ifndef JSONSKI_INTERVALS_BLOCK_H
#define JSONSKI_INTERVALS_BLOCK_H

#include <cstddef>
#include <cstdint>

namespace jsonski::intervals {

/** Characters per block == bits per bitmap word. */
inline constexpr size_t kBlockSize = 64;

/** Classification bitmaps for one 64-byte block of input. */
struct BlockBits
{
    /** 1 = byte is inside a string literal (opening quote inclusive,
     *  closing quote exclusive). */
    uint64_t in_string = 0;

    /** Unescaped quote characters (string boundaries). */
    uint64_t quote = 0;

    /** Structural metacharacters, already masked by ~in_string. */
    uint64_t open_brace = 0;    ///< '{'
    uint64_t close_brace = 0;   ///< '}'
    uint64_t open_bracket = 0;  ///< '['
    uint64_t close_bracket = 0; ///< ']'
    uint64_t colon = 0;         ///< ':'
    uint64_t comma = 0;         ///< ','

    /** JSON whitespace (space, tab, CR, LF) outside strings. */
    uint64_t whitespace = 0;

    /** All four brace/bracket openers+closers, for convenience. */
    uint64_t
    structural() const
    {
        return open_brace | close_brace | open_bracket | close_bracket |
               colon | comma;
    }
};

/** Carry state threaded between consecutive blocks. */
struct ClassifierCarry
{
    /** 1 if the first byte of the next block is escaped by a trailing
     *  backslash run of odd length. */
    uint64_t prev_escaped = 0;

    /** All-ones if the next block starts inside a string literal. */
    uint64_t prev_in_string = 0;
};

} // namespace jsonski::intervals

#endif // JSONSKI_INTERVALS_BLOCK_H
