#include "intervals/classifier.h"

#include <cstring>

#include "telemetry/telemetry.h"
#include "util/bits.h"

#if defined(__AVX2__)
#include <immintrin.h>
#define JSONSKI_HAVE_AVX2 1
#else
#define JSONSKI_HAVE_AVX2 0
#endif

namespace jsonski::intervals {
namespace {

/**
 * Mark characters escaped by a backslash, handling runs of backslashes
 * that straddle block boundaries (odd-length run => next char escaped).
 * This is the classic odd/even backslash-sequence computation used by
 * simdjson and Pison.
 *
 * @param backslash     Bitmap of '\\' bytes in this block.
 * @param prev_escaped  In/out carry: 1 if bit 0 of this block is escaped.
 * @return Bitmap of escaped characters in this block.
 */
uint64_t
findEscaped(uint64_t backslash, uint64_t& prev_escaped)
{
    if (backslash == 0) {
        uint64_t escaped = prev_escaped;
        prev_escaped = 0;
        return escaped;
    }
    backslash &= ~prev_escaped;
    uint64_t follows_escape = (backslash << 1) | prev_escaped;
    constexpr uint64_t even_bits = 0x5555555555555555ULL;
    uint64_t odd_starts = backslash & ~even_bits & ~follows_escape;
    uint64_t even_carries;
    prev_escaped =
        __builtin_add_overflow(odd_starts, backslash, &even_carries) ? 1 : 0;
    uint64_t invert_mask = even_carries << 1;
    return (even_bits ^ invert_mask) & follows_escape;
}

/** Raw equality bitmaps for the characters the classifier cares about. */
struct RawBits
{
    uint64_t backslash, quote;
    uint64_t open_brace, close_brace, open_bracket, close_bracket;
    uint64_t colon, comma, whitespace;
};

#if JSONSKI_HAVE_AVX2

uint64_t
eqMask(__m256i lo, __m256i hi, char c)
{
    __m256i needle = _mm256_set1_epi8(c);
    uint32_t m_lo = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, needle)));
    uint32_t m_hi = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, needle)));
    return (static_cast<uint64_t>(m_hi) << 32) | m_lo;
}

RawBits
rawBits(const char* data)
{
    __m256i lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(data));
    __m256i hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(data + 32));
    RawBits r;
    r.backslash = eqMask(lo, hi, '\\');
    r.quote = eqMask(lo, hi, '"');
    r.open_brace = eqMask(lo, hi, '{');
    r.close_brace = eqMask(lo, hi, '}');
    r.open_bracket = eqMask(lo, hi, '[');
    r.close_bracket = eqMask(lo, hi, ']');
    r.colon = eqMask(lo, hi, ':');
    r.comma = eqMask(lo, hi, ',');
    r.whitespace = eqMask(lo, hi, ' ') | eqMask(lo, hi, '\t') |
                   eqMask(lo, hi, '\n') | eqMask(lo, hi, '\r');
    return r;
}

#else // !JSONSKI_HAVE_AVX2

RawBits
rawBits(const char* data)
{
    RawBits r{};
    for (size_t i = 0; i < kBlockSize; ++i) {
        uint64_t bit = uint64_t{1} << i;
        switch (data[i]) {
          case '\\': r.backslash |= bit; break;
          case '"': r.quote |= bit; break;
          case '{': r.open_brace |= bit; break;
          case '}': r.close_brace |= bit; break;
          case '[': r.open_bracket |= bit; break;
          case ']': r.close_bracket |= bit; break;
          case ':': r.colon |= bit; break;
          case ',': r.comma |= bit; break;
          case ' ':
          case '\t':
          case '\n':
          case '\r': r.whitespace |= bit; break;
          default: break;
        }
    }
    return r;
}

#endif // JSONSKI_HAVE_AVX2

BlockBits
finishClassification(const RawBits& raw, ClassifierCarry& carry)
{
    BlockBits out;
    uint64_t escaped = findEscaped(raw.backslash, carry.prev_escaped);
    out.quote = raw.quote & ~escaped;
    out.in_string = bits::prefixXor(out.quote) ^ carry.prev_in_string;
    // Carry: all-ones if the block ends inside a string.
    carry.prev_in_string =
        static_cast<uint64_t>(static_cast<int64_t>(out.in_string) >> 63);
    uint64_t outside = ~out.in_string;
    out.open_brace = raw.open_brace & outside;
    out.close_brace = raw.close_brace & outside;
    out.open_bracket = raw.open_bracket & outside;
    out.close_bracket = raw.close_bracket & outside;
    out.colon = raw.colon & outside;
    out.comma = raw.comma & outside;
    out.whitespace = raw.whitespace & outside;
    return out;
}

} // namespace

BlockBits
classifyBlock(const char* data, ClassifierCarry& carry)
{
    return finishClassification(rawBits(data), carry);
}

BlockBits
classifyPartialBlock(const char* data, size_t len, ClassifierCarry& carry)
{
    // Pad the tail with spaces: padding classifies as whitespace, which
    // never produces structural bits and keeps whitespace scans simple.
    // The cursor still clamps positions to the true input length.
    char buf[kBlockSize];
    std::memset(buf, ' ', kBlockSize);
    std::memcpy(buf, data, len);
    return classifyBlock(buf, carry);
}

BlockBits
classifyBlockReference(const char* data, size_t len, ClassifierCarry& carry)
{
    BlockBits out;
    bool in_string = carry.prev_in_string != 0;
    bool escaped = carry.prev_escaped != 0;
    for (size_t i = 0; i < kBlockSize; ++i) {
        char c = i < len ? data[i] : ' ';
        uint64_t bit = uint64_t{1} << i;
        bool was_escaped = escaped;
        escaped = false;
        if (!was_escaped && c == '\\') {
            escaped = true;
            if (in_string)
                out.in_string |= bit;
            continue;
        }
        if (!was_escaped && c == '"') {
            out.quote |= bit;
            if (!in_string) {
                in_string = true;
                out.in_string |= bit; // opening quote inclusive
            } else {
                in_string = false; // closing quote exclusive
            }
            continue;
        }
        // Regular character, or a character neutralized by an escape.
        if (in_string) {
            out.in_string |= bit;
            continue;
        }
        switch (c) {
          case '{': out.open_brace |= bit; break;
          case '}': out.close_brace |= bit; break;
          case '[': out.open_bracket |= bit; break;
          case ']': out.close_bracket |= bit; break;
          case ':': out.colon |= bit; break;
          case ',': out.comma |= bit; break;
          case ' ':
          case '\t':
          case '\n':
          case '\r': out.whitespace |= bit; break;
          default: break;
        }
    }
    carry.prev_escaped = escaped ? 1 : 0;
    carry.prev_in_string = in_string ? ~uint64_t{0} : 0;
    return out;
}

bool
classifierUsesSimd()
{
    return JSONSKI_HAVE_AVX2 != 0;
}

StringBits
classifyStringsBlock(const char* data, ClassifierCarry& carry)
{
#if JSONSKI_HAVE_AVX2
    __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data));
    __m256i hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + 32));
    uint64_t backslash = eqMask(lo, hi, '\\');
    uint64_t quote_raw = eqMask(lo, hi, '"');
#else
    uint64_t backslash = rawEqBits(data, '\\');
    uint64_t quote_raw = rawEqBits(data, '"');
#endif
    telemetry::count(telemetry::Counter::StringMaskBuilds);
    StringBits out;
    uint64_t escaped = findEscaped(backslash, carry.prev_escaped);
    out.quote = quote_raw & ~escaped;
    out.in_string = bits::prefixXor(out.quote) ^ carry.prev_in_string;
    carry.prev_in_string =
        static_cast<uint64_t>(static_cast<int64_t>(out.in_string) >> 63);
    return out;
}

uint64_t
rawEqBits(const char* data, char c)
{
#if JSONSKI_HAVE_AVX2
    __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data));
    __m256i hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + 32));
    return eqMask(lo, hi, c);
#else
    uint64_t out = 0;
    for (size_t i = 0; i < kBlockSize; ++i) {
        if (data[i] == c)
            out |= uint64_t{1} << i;
    }
    return out;
#endif
}

uint64_t
rawWhitespaceBits(const char* data)
{
#if JSONSKI_HAVE_AVX2
    __m256i limit = _mm256_set1_epi8(0x20);
    __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data));
    __m256i hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + 32));
    // bytes <= 0x20  <=>  max(byte, 0x20) == 0x20 (unsigned)
    uint32_t m_lo = static_cast<uint32_t>(_mm256_movemask_epi8(
        _mm256_cmpeq_epi8(_mm256_max_epu8(lo, limit), limit)));
    uint32_t m_hi = static_cast<uint32_t>(_mm256_movemask_epi8(
        _mm256_cmpeq_epi8(_mm256_max_epu8(hi, limit), limit)));
    return (static_cast<uint64_t>(m_hi) << 32) | m_lo;
#else
    uint64_t out = 0;
    for (size_t i = 0; i < kBlockSize; ++i) {
        if (static_cast<unsigned char>(data[i]) <= 0x20)
            out |= uint64_t{1} << i;
    }
    return out;
#endif
}

} // namespace jsonski::intervals
