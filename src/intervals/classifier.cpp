#include "intervals/classifier.h"

#include <cstring>

#include "kernels/kernel.h"
#include "telemetry/telemetry.h"

namespace jsonski::intervals {
namespace {

/**
 * Mark characters escaped by a backslash, handling runs of backslashes
 * that straddle block boundaries (odd-length run => next char escaped).
 * This is the classic odd/even backslash-sequence computation used by
 * simdjson and Pison.  Pure word arithmetic — identical for every
 * kernel, so it lives here rather than in the dispatch layer.
 *
 * @param backslash     Bitmap of '\\' bytes in this block.
 * @param prev_escaped  In/out carry: 1 if bit 0 of this block is escaped.
 * @return Bitmap of escaped characters in this block.
 */
uint64_t
findEscaped(uint64_t backslash, uint64_t& prev_escaped)
{
    if (backslash == 0) {
        uint64_t escaped = prev_escaped;
        prev_escaped = 0;
        return escaped;
    }
    backslash &= ~prev_escaped;
    uint64_t follows_escape = (backslash << 1) | prev_escaped;
    constexpr uint64_t even_bits = 0x5555555555555555ULL;
    uint64_t odd_starts = backslash & ~even_bits & ~follows_escape;
    uint64_t even_carries;
    prev_escaped =
        __builtin_add_overflow(odd_starts, backslash, &even_carries) ? 1 : 0;
    uint64_t invert_mask = even_carries << 1;
    return (even_bits ^ invert_mask) & follows_escape;
}

BlockBits
finishClassification(const kernels::Kernel& k, const kernels::RawBits64& raw,
                     ClassifierCarry& carry)
{
    BlockBits out;
    uint64_t escaped = findEscaped(raw.backslash, carry.prev_escaped);
    out.quote = raw.quote & ~escaped;
    out.in_string = k.prefix_xor(out.quote) ^ carry.prev_in_string;
    // Carry: all-ones if the block ends inside a string.
    carry.prev_in_string =
        static_cast<uint64_t>(static_cast<int64_t>(out.in_string) >> 63);
    uint64_t outside = ~out.in_string;
    out.open_brace = raw.open_brace & outside;
    out.close_brace = raw.close_brace & outside;
    out.open_bracket = raw.open_bracket & outside;
    out.close_bracket = raw.close_bracket & outside;
    out.colon = raw.colon & outside;
    out.comma = raw.comma & outside;
    out.whitespace = raw.whitespace & outside;
    return out;
}

} // namespace

BlockBits
classifyBlock(const char* data, ClassifierCarry& carry)
{
    const kernels::Kernel& k = kernels::active();
    return finishClassification(k, k.raw_bits(data), carry);
}

BlockBits
classifyPartialBlock(const char* data, size_t len, ClassifierCarry& carry)
{
    // Pad the tail with spaces: padding classifies as whitespace, which
    // never produces structural bits and keeps whitespace scans simple.
    // The cursor still clamps positions to the true input length.
    char buf[kBlockSize];
    std::memset(buf, ' ', kBlockSize);
    std::memcpy(buf, data, len);
    return classifyBlock(buf, carry);
}

BlockBits
classifyBlockReference(const char* data, size_t len, ClassifierCarry& carry)
{
    BlockBits out;
    bool in_string = carry.prev_in_string != 0;
    bool escaped = carry.prev_escaped != 0;
    for (size_t i = 0; i < kBlockSize; ++i) {
        char c = i < len ? data[i] : ' ';
        uint64_t bit = uint64_t{1} << i;
        bool was_escaped = escaped;
        escaped = false;
        if (!was_escaped && c == '\\') {
            escaped = true;
            if (in_string)
                out.in_string |= bit;
            continue;
        }
        if (!was_escaped && c == '"') {
            out.quote |= bit;
            if (!in_string) {
                in_string = true;
                out.in_string |= bit; // opening quote inclusive
            } else {
                in_string = false; // closing quote exclusive
            }
            continue;
        }
        // Regular character, or a character neutralized by an escape.
        if (in_string) {
            out.in_string |= bit;
            continue;
        }
        switch (c) {
          case '{': out.open_brace |= bit; break;
          case '}': out.close_brace |= bit; break;
          case '[': out.open_bracket |= bit; break;
          case ']': out.close_bracket |= bit; break;
          case ':': out.colon |= bit; break;
          case ',': out.comma |= bit; break;
          case ' ':
          case '\t':
          case '\n':
          case '\r': out.whitespace |= bit; break;
          default: break;
        }
    }
    carry.prev_escaped = escaped ? 1 : 0;
    carry.prev_in_string = in_string ? ~uint64_t{0} : 0;
    return out;
}

bool
classifierUsesSimd()
{
    return kernels::activeName() != "scalar";
}

StringBits
classifyStringsBlock(const char* data, ClassifierCarry& carry)
{
    const kernels::Kernel& k = kernels::active();
    kernels::StringRaw raw = k.string_raw(data);
    telemetry::count(telemetry::Counter::StringMaskBuilds);
    StringBits out;
    uint64_t escaped = findEscaped(raw.backslash, carry.prev_escaped);
    out.quote = raw.quote & ~escaped;
    out.in_string = k.prefix_xor(out.quote) ^ carry.prev_in_string;
    carry.prev_in_string =
        static_cast<uint64_t>(static_cast<int64_t>(out.in_string) >> 63);
    return out;
}

uint64_t
rawEqBits(const char* data, char c)
{
    return kernels::active().eq_bits(data, c);
}

uint64_t
rawWhitespaceBits(const char* data)
{
    return kernels::active().whitespace_bits(data);
}

} // namespace jsonski::intervals
