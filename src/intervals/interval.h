/**
 * @file
 * Structural intervals (Definition 4.1 / Algorithm 3 of the paper).
 *
 * A structural interval for metacharacter alpha is the run of characters
 * between the current position (inclusive) and the next alpha
 * (exclusive).  Within a single word it is represented as a contiguous
 * run of 1-bits in an *interval bitmap*.  An interval that spans
 * multiple words is handled by the callers word by word: an interval
 * bitmap whose metacharacter does not occur in the word extends to the
 * end of the word, signalling "continue in the next word".
 *
 * These are the word-local building blocks; the multi-word looping
 * lives in ski/skipper.cpp.
 */
#ifndef JSONSKI_INTERVALS_INTERVAL_H
#define JSONSKI_INTERVALS_INTERVAL_H

#include <cstdint>

#include "util/bits.h"

namespace jsonski::intervals {

/**
 * Algorithm 3, buildInterval: interval bitmap from @p start_offset
 * (inclusive) to the first set bit of @p metachar_bm at or after
 * start_offset (exclusive).
 *
 * A metacharacter at start_offset itself does *not* terminate the
 * interval (it has typically just been consumed); the scan looks
 * strictly after the start.  If the metacharacter does not occur after
 * start_offset, the interval extends to the end of the word (bits
 * [start_offset, 64)).
 *
 * @param metachar_bm  Metacharacter bitmap of the current word.
 * @param start_offset In-word offset of the current position, [0, 64).
 */
inline uint64_t
buildInterval(uint64_t metachar_bm, int start_offset)
{
    uint64_t b_start = uint64_t{1} << start_offset;
    uint64_t mask_start = b_start ^ (b_start - 1); // bits [0, start]
    uint64_t bm = metachar_bm & ~mask_start;
    uint64_t b_end = bits::lowestBit(bm);
    return b_end - b_start; // wraps to [start, 64) when b_end == 0
}

/**
 * Algorithm 3, nextInterval: interval bitmap between the first two set
 * bits of @p metachar_bm (first exclusive, second exclusive).  Used to
 * hop from one metacharacter to the next in a series.
 */
inline uint64_t
nextInterval(uint64_t metachar_bm)
{
    uint64_t b_start = bits::lowestBit(metachar_bm);
    uint64_t rest = bits::clearLowest(metachar_bm);
    uint64_t b_end = bits::lowestBit(rest);
    return b_end - b_start;
}

/**
 * Algorithm 3, intervalEnd: in-word offset one past the last character
 * of the interval — i.e. the offset of the metacharacter that
 * terminated it, or 64 when the interval runs off the word.
 *
 * @pre interval != 0
 */
inline int
intervalEnd(uint64_t interval)
{
    return 64 - bits::leadingZeros(interval);
}

/** True when the interval runs to the end of its word (the terminating
 *  metacharacter lies in a later word). */
inline bool
intervalOpen(uint64_t interval)
{
    return (interval >> 63) != 0;
}

} // namespace jsonski::intervals

#endif // JSONSKI_INTERVALS_INTERVAL_H
