/**
 * @file
 * Forward-only streaming cursor over a JSON buffer.
 *
 * The cursor owns the global streaming position `pos` from the paper
 * (Table 1) and serves bitmaps of the 64-byte block the position
 * currently lies in.  Only the *string layer* (escapes, quotes,
 * in-string mask) is computed eagerly and strictly left-to-right —
 * its carries thread through every block.  Metacharacter bitmaps are
 * pure per-block functions and are built lazily, one character class
 * at a time, exactly when a fast-forward case asks for them (the
 * paper's "relevant interval bitmaps", §4.2).
 *
 * Fast-forward primitives (ski/skipper.h) advance `pos` by consuming
 * these bitmaps; everything else (attribute-name extraction, primitive
 * peeks) uses short scalar reads through the same cursor.
 *
 * Bounds guarantee: the cursor never dereferences a byte at or past
 * size().  The final partial block is served from an internal
 * space-padded copy (prepareTail), and the padding classifies as pure
 * whitespace, so it can never be mistaken for structure; block-pointer
 * selection is written overflow-free so even a position past the end
 * (legal transiently, e.g. after a block-skip) resolves to that padded
 * buffer rather than out-of-bounds input memory.
 */
#ifndef JSONSKI_INTERVALS_CURSOR_H
#define JSONSKI_INTERVALS_CURSOR_H

#include <cassert>
#include <cstddef>
#include <string_view>

#include "intervals/block.h"
#include "intervals/classifier.h"
#include "telemetry/telemetry.h"
#include "util/bits.h"

namespace jsonski::intervals {

/** See file comment. */
class StreamCursor
{
  public:
    /**
     * Attach to a JSON buffer; the buffer must outlive the cursor.
     *
     * @param scalar_classifier Use the character-level reference
     *        classifier instead of the SIMD one (ablation studies).
     */
    explicit StreamCursor(std::string_view input,
                          bool scalar_classifier = false)
        : data_(input.data()),
          len_(input.size()),
          scalar_classifier_(scalar_classifier)
    {}

    /** Current absolute byte position. */
    size_t pos() const { return pos_; }

    /** Total input length. */
    size_t size() const { return len_; }

    /** True once the position has reached the end of input. */
    bool atEnd() const { return pos_ >= len_; }

    /** Byte at the current position. @pre !atEnd() */
    char
    current() const
    {
        assert(!atEnd());
        return data_[pos_];
    }

    /** Byte at absolute position @p p. @pre p < size() */
    char
    at(size_t p) const
    {
        assert(p < len_);
        return data_[p];
    }

    /** View of bytes [begin, end). */
    std::string_view
    slice(size_t begin, size_t end) const
    {
        assert(begin <= end && end <= len_);
        return std::string_view(data_ + begin, end - begin);
    }

    /** Underlying buffer. */
    std::string_view
    input() const
    {
        return std::string_view(data_, len_);
    }

    /**
     * Move the position forward (or keep it).  Rewinding within the
     * current block is also allowed (needed when a scan overshoots by
     * a character); rewinding to an earlier block is not.
     */
    void
    setPos(size_t p)
    {
        assert(p / kBlockSize + 1 >= classified_blocks_);
        if constexpr (telemetry::kEnabled) {
            // A backward move is a scan overshoot being corrected.
            if (p < pos_)
                telemetry::count(telemetry::Counter::CursorReseeks);
        }
        pos_ = p;
    }

    /** Advance the position by @p n bytes. */
    void advance(size_t n) { setPos(pos_ + n); }

    /** Index of the block containing the current position. */
    size_t blockIndex() const { return pos_ / kBlockSize; }

    /** Offset of the current position within its block. */
    int
    offsetInBlock() const
    {
        return static_cast<int>(pos_ % kBlockSize);
    }

    /**
     * String-layer bitmaps of block @p idx.  Blocks up to @p idx are
     * classified on demand; access must be monotonically non-
     * decreasing except that the most recent block can be re-read.
     */
    const StringBits&
    stringsAt(size_t idx)
    {
        assert(idx * kBlockSize < len_);
        if (idx + 1 != classified_blocks_)
            classifyThrough(idx);
        return strings_;
    }

    /** String-layer bitmaps of the current block. @pre !atEnd() */
    const StringBits&
    strings()
    {
        return stringsAt(blockIndex());
    }

    /**
     * Structural bitmap of character @p c in the current block:
     * equality bits with pseudo-metacharacters (string interiors)
     * removed.  Built on demand — callers request only the classes the
     * active fast-forward case needs.  @pre !atEnd()
     */
    uint64_t
    bits(char c)
    {
        const StringBits& s = strings();
        return rawEqBits(blockData(), c) & ~s.in_string;
    }

    /** OR of bits(a) | bits(b), with one string-mask application. */
    uint64_t
    bits2(char a, char b)
    {
        const StringBits& s = strings();
        const char* d = blockData();
        return (rawEqBits(d, a) | rawEqBits(d, b)) & ~s.in_string;
    }

    /** OR of three structural bitmaps. */
    uint64_t
    bits3(char a, char b, char c)
    {
        const StringBits& s = strings();
        const char* d = blockData();
        return (rawEqBits(d, a) | rawEqBits(d, b) | rawEqBits(d, c)) &
               ~s.in_string;
    }

    /**
     * Fully eager classification of block @p idx (every metacharacter
     * class).  Retained for tests and non-streaming users; the skipper
     * uses the lazy accessors above.
     */
    BlockBits blockAt(size_t idx);

    /** Eager classification of the current block. @pre !atEnd() */
    const BlockBits&
    block()
    {
        if (!full_valid_ || full_idx_ != blockIndex()) {
            full_cached_ = blockAt(blockIndex());
            full_idx_ = blockIndex();
            full_valid_ = true;
        }
        return full_cached_;
    }

    /**
     * Clear bits of @p bm that fall strictly before the current
     * in-block offset (the "mask bits up to start" step of
     * Algorithm 3).
     */
    uint64_t
    maskFromPos(uint64_t bm) const
    {
        return bm & ~bits::maskBelow(offsetInBlock());
    }

    /**
     * Skip whitespace from the current position using the whitespace
     * bitmaps and return the byte found, or '\0' at end of input.  The
     * position lands on the returned byte.
     */
    char skipWhitespace();

    /** Total number of blocks that have been classified so far. */
    size_t classifiedBlocks() const { return classified_blocks_; }

  private:
    void classifyThrough(size_t idx);

    /**
     * 64 readable bytes for the block holding the current position
     * (the input itself, or the space-padded tail buffer for the final
     * partial block).  The comparison is written overflow-free so a
     * position at or past len_ can never fabricate an out-of-bounds
     * data_ pointer — it resolves to the padded tail, which is always
     * readable.
     */
    const char*
    blockData() const
    {
        return blockDataAt(blockIndex());
    }

    const char*
    blockDataAt(size_t idx) const
    {
        size_t base = idx * kBlockSize;
        return base + kBlockSize <= len_ ? data_ + base : tail_;
    }

    void prepareTail(size_t base);

    const char* data_;
    size_t len_;
    size_t pos_ = 0;
    bool scalar_classifier_ = false;

    ClassifierCarry carry_{};
    StringBits strings_{};
    size_t classified_blocks_ = 0; ///< blocks [0, n) done; cache holds n-1

    BlockBits full_cached_{};
    size_t full_idx_ = 0;
    bool full_valid_ = false;

    char tail_[kBlockSize] = {}; ///< padded copy of the final partial block
    bool tail_ready_ = false;
};

} // namespace jsonski::intervals

#endif // JSONSKI_INTERVALS_CURSOR_H
