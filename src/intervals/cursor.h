/**
 * @file
 * Forward-only streaming cursor over a JSON buffer.
 *
 * The cursor owns the global streaming position `pos` from the paper
 * (Table 1) and serves bitmaps of the 64-byte block the position
 * currently lies in.  Only the *string layer* (escapes, quotes,
 * in-string mask) is computed eagerly and strictly left-to-right —
 * its carries thread through every block.  Metacharacter bitmaps are
 * pure per-block functions and are built lazily, one character class
 * at a time, exactly when a fast-forward case asks for them (the
 * paper's "relevant interval bitmaps", §4.2).
 *
 * Fast-forward primitives (ski/skipper.h) advance `pos` by consuming
 * these bitmaps; everything else (attribute-name extraction, primitive
 * peeks) uses short scalar reads through the same cursor.
 *
 * Two ingestion modes share every algorithm above:
 *
 *  - Whole-buffer: attach to a resident std::string_view (the 1-chunk
 *    special case; zero-copy).
 *  - Chunked: attach to a ChunkSource.  The cursor then assembles the
 *    input incrementally into a sliding window of 64-byte-aligned
 *    storage; the classifier carries (trailing-backslash run, CLMUL
 *    in-string parity) thread across chunk seams exactly as they do
 *    across block boundaries, so classification is seam-oblivious.
 *    Bytes below the discard floor — min(position block, consumer
 *    hold, scan hold) — are recycled at refill time, which bounds
 *    resident memory by the chunk size plus whatever token or value
 *    span a consumer is still holding (DESIGN.md §9 is the carry-state
 *    and hold contract).
 *
 * Positions are always *absolute* stream offsets in both modes, so
 * skipper arithmetic, error positions, and FastForwardStats are
 * byte-identical between modes (the chunk-seam differential rig pins
 * this down).
 *
 * Bounds guarantee: the cursor never dereferences a byte at or past
 * size(), nor below the discard floor.  The final partial block is
 * served from an internal space-padded copy (prepareTail), and the
 * padding classifies as pure whitespace, so it can never be mistaken
 * for structure; block-pointer selection is written overflow-free so
 * even a position past the end (legal transiently, e.g. after a
 * block-skip) resolves to that padded buffer rather than out-of-bounds
 * input memory.
 */
#ifndef JSONSKI_INTERVALS_CURSOR_H
#define JSONSKI_INTERVALS_CURSOR_H

#include <cassert>
#include <cstdio>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "intervals/block.h"
#include "intervals/chunk_source.h"
#include "intervals/classifier.h"
#include "telemetry/telemetry.h"
#include "util/bits.h"

namespace jsonski::intervals {

/** See file comment. */
class StreamCursor
{
  public:
    /** Sentinel for "no hold": nothing below the position is pinned. */
    static constexpr size_t kNoHold = static_cast<size_t>(-1);

    /** Ingestion accounting, maintained in every build (the refill
     *  path is cold, so these do not need the telemetry gate). */
    struct IngestStats
    {
        uint64_t refills = 0;        ///< ChunkSource::read calls that returned data
        uint64_t spill_bytes = 0;    ///< bytes memmoved by window compaction
        uint64_t seam_straddles = 0; ///< compactions where a held token
                                     ///< forced retention across the seam
        size_t window_peak = 0;      ///< high-water window capacity, bytes
        uint64_t bytes_ingested = 0; ///< total bytes pulled from the source
    };

    /**
     * Attach to a resident JSON buffer; the buffer must outlive the
     * cursor.
     *
     * @param scalar_classifier Use the character-level reference
     *        classifier instead of the SIMD one (ablation studies).
     */
    explicit StreamCursor(std::string_view input,
                          bool scalar_classifier = false)
        : data_(input.data()),
          len_(input.size()),
          scalar_classifier_(scalar_classifier)
    {}

    /**
     * Attach to a ChunkSource; the source must outlive the cursor.
     * Bytes are pulled on demand in chunks of at most @p chunk_bytes
     * and retired once the position and the holds have moved past them.
     *
     * @param chunk_bytes Refill granularity (clamped to >= 1).  The
     *        steady-state resident window is one block-rounded chunk
     *        plus one block of slack.
     */
    StreamCursor(ChunkSource& source, size_t chunk_bytes,
                 bool scalar_classifier = false);

    /** Current absolute byte position. */
    size_t pos() const { return pos_; }

    /**
     * Total input length.  In chunked mode this is the byte count
     * ingested *so far* and becomes the document length only once the
     * source is exhausted; atEnd()/ensureBlock() are the refill-aware
     * way to test for end of input.
     */
    size_t size() const { return len_; }

    /** True once the source is exhausted (always true whole-buffer). */
    bool exhausted() const { return eof_; }

    /** True when attached to a ChunkSource. */
    bool chunked() const { return src_ != nullptr; }

    /**
     * True once the position has reached the end of input.  In chunked
     * mode a position at the ingestion frontier triggers a refill, so
     * the answer accounts for bytes the source has not delivered yet.
     */
    bool
    atEnd() const
    {
        if (pos_ < len_)
            return false;
        if (eof_)
            return true;
        // Refilling mutates only ingestion state, never the logical
        // stream; the const facade matches the whole-buffer mode.
        return const_cast<StreamCursor*>(this)->atEndSlow();
    }

    /** Byte at the current position. @pre !atEnd() */
    char
    current() const
    {
        assert(!atEnd());
        return *mem(pos_);
    }

    /** Byte at absolute position @p p. @pre p < size() and resident. */
    char
    at(size_t p) const
    {
        assert(p < len_);
        return *mem(p);
    }

    /** View of resident bytes [begin, end). */
    std::string_view
    slice(size_t begin, size_t end) const
    {
        assert(begin <= end && end <= len_);
        return std::string_view(mem(begin), end - begin);
    }

    /** Underlying buffer. @pre whole-buffer mode. */
    std::string_view
    input() const
    {
        assert(src_ == nullptr &&
               "chunked input is never resident as a whole");
        return std::string_view(data_, len_);
    }

    /**
     * Move the position forward (or keep it).  Rewinding within the
     * current block is also allowed (needed when a scan overshoots by
     * a character); rewinding to an earlier block is not.
     */
    void
    setPos(size_t p)
    {
        assert(p / kBlockSize + 1 >= classified_blocks_);
        if constexpr (telemetry::kEnabled) {
            // A backward move is a scan overshoot being corrected.
            if (p < pos_)
                telemetry::count(telemetry::Counter::CursorReseeks);
        }
        pos_ = p;
    }

    /** Advance the position by @p n bytes. */
    void advance(size_t n) { setPos(pos_ + n); }

    /** Index of the block containing the current position. */
    size_t blockIndex() const { return pos_ / kBlockSize; }

    /** Offset of the current position within its block. */
    int
    offsetInBlock() const
    {
        return static_cast<int>(pos_ % kBlockSize);
    }

    /**
     * Make block @p idx addressable, refilling from the source when it
     * lies past the ingestion frontier.  @return false when the input
     * ends before that block's first byte.
     */
    bool
    ensureBlock(size_t idx)
    {
        size_t start = idx * kBlockSize;
        if (start < len_)
            return true;
        if (eof_)
            return false;
        return refillTo(start + 1);
    }

    /**
     * Teleport the string-layer classification to the block containing
     * @p target, resuming from @p carry (supplied by a structural
     * index, index/structural_index.h) instead of classifying the
     * skipped blocks.  The position is left unchanged — callers
     * setPos() afterwards.
     *
     * In chunked mode the bytes up to @p target are ingested on the
     * way, recycling the window as the frontier advances, so a warp
     * over an arbitrarily long span keeps the steady-state residency
     * bound; retention holds pin bytes exactly as they do for a
     * streaming scan.
     *
     * @return false when the input ends at or before @p target — the
     *         index disagrees with the document; callers raise
     *         ErrorCode::IndexMismatch.
     */
    bool warpTo(size_t target, ClassifierCarry carry);

    /**
     * String-layer bitmaps of block @p idx.  Blocks up to @p idx are
     * classified on demand; access must be monotonically non-
     * decreasing except that the most recent block can be re-read.
     */
    const StringBits&
    stringsAt(size_t idx)
    {
        assert(idx * kBlockSize < len_);
        if (idx + 1 != classified_blocks_)
            classifyThrough(idx);
        return strings_;
    }

    /** String-layer bitmaps of the current block. @pre !atEnd() */
    const StringBits&
    strings()
    {
        return stringsAt(blockIndex());
    }

    /**
     * Structural bitmap of character @p c in the current block:
     * equality bits with pseudo-metacharacters (string interiors)
     * removed.  Built on demand — callers request only the classes the
     * active fast-forward case needs.  @pre !atEnd()
     */
    uint64_t
    bits(char c)
    {
        const StringBits& s = strings();
        return rawEqBits(blockData(), c) & ~s.in_string;
    }

    /** OR of bits(a) | bits(b), with one string-mask application. */
    uint64_t
    bits2(char a, char b)
    {
        const StringBits& s = strings();
        const char* d = blockData();
        return (rawEqBits(d, a) | rawEqBits(d, b)) & ~s.in_string;
    }

    /** OR of three structural bitmaps. */
    uint64_t
    bits3(char a, char b, char c)
    {
        const StringBits& s = strings();
        const char* d = blockData();
        return (rawEqBits(d, a) | rawEqBits(d, b) | rawEqBits(d, c)) &
               ~s.in_string;
    }

    /**
     * Fully eager classification of block @p idx (every metacharacter
     * class).  Retained for tests and non-streaming users; the skipper
     * uses the lazy accessors above.
     */
    BlockBits blockAt(size_t idx);

    /** Eager classification of the current block. @pre !atEnd() */
    const BlockBits&
    block()
    {
        if (!full_valid_ || full_idx_ != blockIndex()) {
            full_cached_ = blockAt(blockIndex());
            full_idx_ = blockIndex();
            full_valid_ = true;
        }
        return full_cached_;
    }

    /**
     * Clear bits of @p bm that fall strictly before the current
     * in-block offset (the "mask bits up to start" step of
     * Algorithm 3).
     */
    uint64_t
    maskFromPos(uint64_t bm) const
    {
        return bm & ~bits::maskBelow(offsetInBlock());
    }

    /**
     * Skip whitespace from the current position using the whitespace
     * bitmaps and return the byte found, or '\0' at end of input.  The
     * position lands on the returned byte.
     */
    char skipWhitespace();

    /** Total number of blocks that have been classified so far. */
    size_t classifiedBlocks() const { return classified_blocks_; }

    /// @name Retention holds (chunked-mode discard floor)
    /// Bytes at or above min(hold, scanHold, position block) stay
    /// resident across refills.  The *consumer hold* is owned by the
    /// driver (value spans being emitted, pending descendant matches)
    /// with save/restore discipline; the *scan hold* is owned by the
    /// skipper (key bytes a batched scan may re-read).  Both are
    /// harmless no-ops in whole-buffer mode.
    /// @{

    /** Current consumer hold (kNoHold when nothing is pinned). */
    size_t hold() const { return hold_; }

    /** Set the consumer hold; callers save and restore the old value. */
    void setHold(size_t p) { hold_ = p; }

    /** Current skipper scan hold. */
    size_t scanHold() const { return scan_hold_; }

    /** Pin bytes from @p p for scalar re-reads (skipper internal). */
    void setScanHold(size_t p) { scan_hold_ = p; }

    /** Drop the scan hold. */
    void clearScanHold() { scan_hold_ = kNoHold; }

    /** Absolute offset of the first resident byte. */
    size_t windowBase() const { return base_; }

    /** Current window capacity in bytes (0 in whole-buffer mode). */
    size_t windowCapacity() const { return window_.size(); }

    /** Refill / spill / peak accounting; zeros in whole-buffer mode. */
    const IngestStats& ingestStats() const { return ingest_; }

    /// @}

  private:
    void classifyThrough(size_t idx);

    bool atEndSlow();

    /**
     * Pull from the source until @p target bytes are ingested or the
     * source is exhausted; recycles window space below the discard
     * floor first.  @return len_ >= target.
     */
    bool refillTo(size_t target);

    /**
     * Address of absolute position @p p.  Whole-buffer mode: base_ is
     * 0 and data_ is the caller's buffer.  Chunked mode: data_ is the
     * window and base_ its absolute offset; p must be resident.
     */
    const char*
    mem(size_t p) const
    {
#ifndef NDEBUG
        if (p < base_) {
            std::fprintf(stderr,
                         "mem breach: p=%zu base=%zu pos=%zu hold=%zd "
                         "scan_hold=%zd classified=%zu len=%zu\n",
                         p, base_, pos_, (ssize_t)hold_, (ssize_t)scan_hold_,
                         classified_blocks_, len_);
        }
#endif
        assert(p >= base_ && "byte was discarded (hold contract breach)");
        return data_ + (p - base_);
    }

    /**
     * 64 readable bytes for the block holding the current position
     * (the input itself, or the space-padded tail buffer for the final
     * partial block).  The comparison is written overflow-free so a
     * position at or past len_ can never fabricate an out-of-bounds
     * data_ pointer — it resolves to the padded tail, which is always
     * readable.
     */
    const char*
    blockData() const
    {
        return blockDataAt(blockIndex());
    }

    const char*
    blockDataAt(size_t idx) const
    {
        size_t base = idx * kBlockSize;
        return base + kBlockSize <= len_ ? mem(base) : tail_;
    }

    void prepareTail(size_t base);

    const char* data_;
    size_t len_;
    size_t pos_ = 0;
    bool scalar_classifier_ = false;

    ClassifierCarry carry_{};
    StringBits strings_{};
    size_t classified_blocks_ = 0; ///< blocks [0, n) done; cache holds n-1

    BlockBits full_cached_{};
    size_t full_idx_ = 0;
    bool full_valid_ = false;

    char tail_[kBlockSize] = {}; ///< padded copy of the final partial block
    bool tail_ready_ = false;

    // --- chunked-mode state (inert in whole-buffer mode) -------------
    ChunkSource* src_ = nullptr;
    bool eof_ = true;           ///< no more source bytes (true = final len_)
    size_t chunk_bytes_ = 0;    ///< refill granularity
    std::vector<char> window_;  ///< resident bytes [base_, len_)
    size_t base_ = 0;           ///< absolute offset of window_[0], block-aligned
    size_t hold_ = kNoHold;      ///< consumer retention mark
    size_t scan_hold_ = kNoHold; ///< skipper retention mark
    IngestStats ingest_;
};

} // namespace jsonski::intervals

#endif // JSONSKI_INTERVALS_CURSOR_H
