/**
 * @file
 * Bounded-memory ingestion sources for the chunked stream cursor.
 *
 * A ChunkSource delivers the input as a sequence of byte chunks into a
 * caller-provided buffer; the cursor (intervals/cursor.h) assembles
 * them into a sliding window of 64-byte-aligned blocks and threads the
 * classifier carries (trailing-backslash run, in-string parity) across
 * every chunk seam.  This is what turns the *logically* streaming
 * engine into a *physically* streaming one: memory consumption is
 * bounded by the chunk size plus whatever spans a consumer is still
 * holding (DESIGN.md §9), not by the document size.
 *
 * Three production sources (memory view, FILE*, std::istream) plus the
 * test-only adversarial SplitSource, which places chunk seams at
 * caller-chosen byte offsets so every seam-sensitive code path can be
 * forced deliberately (seam rig, seam-hunting fuzz mode).
 */
#ifndef JSONSKI_INTERVALS_CHUNK_SOURCE_H
#define JSONSKI_INTERVALS_CHUNK_SOURCE_H

#include <cstddef>
#include <cstdio>
#include <istream>
#include <string_view>
#include <vector>

#include "util/deadline.h"

namespace jsonski::intervals {

/** Pull-based byte source; see file comment. */
class ChunkSource
{
  public:
    virtual ~ChunkSource() = default;

    /**
     * Deliver up to @p cap bytes into @p dst.
     *
     * @return Bytes written; 0 means end of input (a source must keep
     *         returning 0 once exhausted).  A source may return fewer
     *         than @p cap bytes for any reason (its own chunk
     *         granularity, a short read); only 0 is terminal.
     * @pre cap > 0
     */
    virtual size_t read(char* dst, size_t cap) = 0;
};

/**
 * Serves an in-memory buffer.  With the default chunk hint the whole
 * view is delivered in one read (the 1-chunk special case); a nonzero
 * hint caps each delivery, which makes refill behaviour observable in
 * tests without involving I/O.
 */
class ViewSource : public ChunkSource
{
  public:
    explicit ViewSource(std::string_view data, size_t chunk_hint = 0)
        : data_(data), chunk_hint_(chunk_hint)
    {}

    size_t read(char* dst, size_t cap) override;

    /** Bytes not yet delivered. */
    size_t remaining() const { return data_.size() - off_; }

  private:
    std::string_view data_;
    size_t off_ = 0;
    size_t chunk_hint_;
};

/**
 * Reads a C stdio stream (does not own or close it).
 *
 * A short fread() alone cannot distinguish EOF from a failing disk, so
 * read() checks std::ferror after every short delivery and throws
 * ParseError(ErrorCode::IoError) — positioned at the bytes delivered so
 * far — instead of silently truncating the document.
 */
class FileSource : public ChunkSource
{
  public:
    explicit FileSource(std::FILE* f) : f_(f) {}

    size_t read(char* dst, size_t cap) override;

  private:
    std::FILE* f_;
    size_t delivered_ = 0;
};

/**
 * Reads a std::istream (does not own it); covers stdin and pipes.
 *
 * eofbit (with or without failbit) after a short read is normal end of
 * input; badbit means the underlying streambuf failed mid-read and
 * throws ParseError(ErrorCode::IoError) like FileSource.
 */
class IstreamSource : public ChunkSource
{
  public:
    explicit IstreamSource(std::istream& in) : in_(in) {}

    size_t read(char* dst, size_t cap) override;

  private:
    std::istream& in_;
    size_t delivered_ = 0;
};

/**
 * Reads a connected socket (or any pollable fd; does not own or close
 * it).  This is what the query service streams request bodies through:
 * the fd is polled before every read under an *absolute* deadline —
 * armed once, when the source is constructed — so the entire body must
 * arrive within the envelope no matter how the bytes are paced.  A
 * per-poll timeout here would restart on every delivered byte, letting
 * a client that drips one byte per window pin a worker forever (the
 * slow-loris bug DESIGN.md §12 documents).  An optional byte cap
 * bounds how much body a single request may deliver.  Works with both
 * blocking and O_NONBLOCK descriptors (EAGAIN re-polls with the
 * remaining time).
 *
 * Bytes the connection layer read past the request header are pushed
 * back via @p carry and are delivered first.
 *
 * @throws ParseError(ErrorCode::DeadlineExpired) when the envelope
 *         elapses before the body completes, (ErrorCode::IoError) on a
 *         socket error, and (ErrorCode::RecordTooLarge) when the byte
 *         cap is hit — all positioned at the bytes delivered so far.
 */
class SocketChunkSource : public ChunkSource
{
  public:
    /**
     * @param fd           Connected descriptor to read.
     * @param read_deadline_ms  Whole-body envelope, armed now;
     *                     0 = no deadline.
     * @param max_bytes    Total delivery cap; 0 = unlimited.
     * @param carry        Bytes already read from the stream, served
     *                     before any fd read (copied).
     */
    explicit SocketChunkSource(int fd, int read_deadline_ms = 0,
                               size_t max_bytes = 0,
                               std::string_view carry = {});

    /** Same, sharing an already-armed deadline with the caller. */
    SocketChunkSource(int fd, Deadline deadline, size_t max_bytes,
                      std::string_view carry);

    size_t read(char* dst, size_t cap) override;

    /** Total bytes delivered so far (carry included). */
    size_t delivered() const { return delivered_; }

  private:
    int fd_;
    Deadline deadline_;
    size_t max_bytes_;
    std::string carry_;
    size_t carry_off_ = 0;
    size_t delivered_ = 0;
    bool eof_ = false;
};

/**
 * Test-only adversarial splitter: yields an in-memory document in
 * chunks whose sizes follow a caller-chosen schedule (cycled when
 * exhausted), so a seam can be forced at any byte offset — inside a
 * string escape, between UTF-8 continuation bytes, mid-number.  A
 * delivery never crosses a scheduled seam even when the caller's @p cap
 * is larger; a smaller @p cap merely adds extra seams.
 */
class SplitSource : public ChunkSource
{
  public:
    /** Every chunk has size @p chunk_bytes (the last may be short). */
    SplitSource(std::string_view data, size_t chunk_bytes)
        : SplitSource(data, std::vector<size_t>{chunk_bytes})
    {}

    /** Chunk sizes follow @p schedule, cycling; 0 entries count as 1. */
    SplitSource(std::string_view data, std::vector<size_t> schedule);

    size_t read(char* dst, size_t cap) override;

    /** Seams delivered so far (boundaries between returned chunks). */
    size_t seams() const { return seams_; }

  private:
    size_t nextScheduled();

    std::string_view data_;
    size_t off_ = 0;
    std::vector<size_t> schedule_;
    size_t sched_next_ = 0;
    size_t left_in_chunk_ = 0; ///< bytes until the next scheduled seam
    size_t seams_ = 0;
};

} // namespace jsonski::intervals

#endif // JSONSKI_INTERVALS_CHUNK_SOURCE_H
