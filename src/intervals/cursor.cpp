#include "intervals/cursor.h"

#include <algorithm>
#include <cstring>

namespace jsonski::intervals {

StreamCursor::StreamCursor(ChunkSource& source, size_t chunk_bytes,
                           bool scalar_classifier)
    : data_(nullptr),
      len_(0),
      scalar_classifier_(scalar_classifier),
      src_(&source),
      eof_(false),
      chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes)
{
    // Steady-state window: one block-rounded chunk plus a block of
    // slack, so a refill whose discard floor sits at the position
    // block never needs to reallocate.  The window only grows past
    // this when a consumer hold pins a long span across seams.
    size_t cap =
        (chunk_bytes_ + kBlockSize - 1) / kBlockSize * kBlockSize +
        kBlockSize;
    window_.resize(cap);
    data_ = window_.data();
    ingest_.window_peak = cap;
}

bool
StreamCursor::atEndSlow()
{
    refillTo(pos_ + 1);
    return pos_ >= len_;
}

bool
StreamCursor::refillTo(size_t target)
{
    if (eof_ || src_ == nullptr)
        return target <= len_;

    // Discard floor: the lowest absolute byte that must stay resident
    // — the position's own block, both retention holds, and the
    // classifier's resume block (its bytes are read when the block is
    // classified, which may still be ahead of the position).
    // Block-aligned so a block is never torn.
    size_t floor =
        std::min(std::min(pos_, hold_),
                 std::min(scan_hold_, classified_blocks_ * kBlockSize));
    floor -= floor % kBlockSize;
    if (floor > base_) {
        size_t keep = len_ - floor;
        if (keep != 0)
            std::memmove(window_.data(),
                         window_.data() + (floor - base_), keep);
        ingest_.spill_bytes += keep;
        telemetry::count(telemetry::Counter::ChunkSpillBytes, keep);
        // A hold below the position's block means a token or value
        // span is being carried across this seam.
        if (std::min(hold_, scan_hold_) < pos_ - pos_ % kBlockSize) {
            ++ingest_.seam_straddles;
            telemetry::count(telemetry::Counter::SeamStraddleTokens);
        }
        base_ = floor;
    }

    // Capacity for [base_, target) plus one chunk of slack, so the
    // pull loop below always has room for a full read.
    size_t need = std::max(target, len_) - base_ + chunk_bytes_;
    need = (need + kBlockSize - 1) / kBlockSize * kBlockSize;
    if (need > window_.size()) {
        window_.resize(std::max(need, window_.size() + window_.size() / 2));
        ingest_.window_peak =
            std::max(ingest_.window_peak, window_.size());
    }
    data_ = window_.data();

    while (len_ < target) {
        size_t cap =
            std::min(window_.size() - (len_ - base_), chunk_bytes_);
        assert(cap > 0);
        size_t n = src_->read(window_.data() + (len_ - base_), cap);
        if (n == 0) {
            eof_ = true;
            break;
        }
        len_ += n;
        ingest_.bytes_ingested += n;
        ++ingest_.refills;
        telemetry::count(telemetry::Counter::ChunkRefills);
    }
    return target <= len_;
}

void
StreamCursor::prepareTail(size_t base)
{
    // The padding must classify as pure whitespace: it can then never
    // contribute structural or quote bits, so no scan can mistake a
    // byte past len_ for real input (tests/boundary_test.cpp pins this
    // down for structural characters landing on the final byte).
    assert(base <= len_ && len_ - base < kBlockSize);
    // A partial block is only classified once the input is complete:
    // classifyThrough refills a block before classifying it, so in
    // chunked mode reaching here implies the source is exhausted and
    // len_ is final — otherwise the whitespace padding would corrupt
    // the carries of bytes still to come.
    assert(eof_ && "partial-block classification before end of input");
    if (tail_ready_)
        return;
    std::memset(tail_, ' ', kBlockSize);
    std::memcpy(tail_, mem(base), len_ - base);
    tail_ready_ = true;
}

void
StreamCursor::classifyThrough(size_t idx)
{
    assert(idx + 1 >= classified_blocks_ &&
           "cursor cannot rewind to an earlier block");
    telemetry::PhaseScope phase(telemetry::Phase::Classify);
    size_t first = classified_blocks_;
    while (classified_blocks_ <= idx) {
        size_t start = classified_blocks_ * kBlockSize;
        if (start + kBlockSize > len_) { // overflow-free form of the
            if (!eof_)                   // partial-tail test
                refillTo(start + kBlockSize);
            if (start + kBlockSize > len_)
                prepareTail(start);
        }
        const char* d = blockDataAt(classified_blocks_);
        if (scalar_classifier_) {
            // Ablation mode: derive the string layer from the
            // character-level reference classifier.
            BlockBits b = classifyBlockReference(
                d, kBlockSize, carry_);
            strings_.in_string = b.in_string;
            strings_.quote = b.quote;
        } else {
            strings_ = classifyStringsBlock(d, carry_);
        }
        ++classified_blocks_;
    }
    telemetry::count(telemetry::Counter::BlocksClassified,
                     classified_blocks_ - first);
    telemetry::count(telemetry::Counter::BytesScanned,
                     (classified_blocks_ - first) * kBlockSize);
}

bool
StreamCursor::warpTo(size_t target, ClassifierCarry carry)
{
    if (target >= len_) {
        if (src_ == nullptr || eof_)
            return false;
        // Ingest up to the target in chunk strides, advancing the
        // position and the classifier mark with the frontier so the
        // discard floor follows and the window is recycled instead of
        // accumulating the whole skipped span.  Blocks passed this way
        // are never string-classified — that is the point of the warp;
        // the index's entry carry replaces their contribution below.
        while (len_ <= target && !eof_) {
            if (pos_ < len_)
                pos_ = len_;
            if (classified_blocks_ < pos_ / kBlockSize)
                classified_blocks_ = pos_ / kBlockSize;
            refillTo(std::min(target + 1, len_ + chunk_bytes_));
        }
        if (target >= len_)
            return false; // source exhausted short of the target
    }
    size_t blk = target / kBlockSize;
    if (blk + 1 <= classified_blocks_)
        return true; // already classified past the target: no skip
    carry_ = carry;
    classified_blocks_ = blk;
    full_valid_ = false;
    return true;
}

BlockBits
StreamCursor::blockAt(size_t idx)
{
    const StringBits& s = stringsAt(idx);
    const char* d = blockDataAt(idx);
    BlockBits out;
    out.in_string = s.in_string;
    out.quote = s.quote;
    uint64_t outside = ~s.in_string;
    out.open_brace = rawEqBits(d, '{') & outside;
    out.close_brace = rawEqBits(d, '}') & outside;
    out.open_bracket = rawEqBits(d, '[') & outside;
    out.close_bracket = rawEqBits(d, ']') & outside;
    out.colon = rawEqBits(d, ':') & outside;
    out.comma = rawEqBits(d, ',') & outside;
    out.whitespace = rawWhitespaceBits(d) & outside;
    return out;
}

char
StreamCursor::skipWhitespace()
{
    // Fast path: compact JSON rarely has whitespace at all; answer
    // from the raw byte before touching any bitmap.
    if (pos_ < len_) {
        char c = *mem(pos_);
        if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
            return c;
    }
    while (!atEnd()) {
        (void)strings(); // keep the sequential pipeline in step
        uint64_t ws = rawWhitespaceBits(blockData());
        uint64_t candidates = maskFromPos(~ws);
        if (candidates != 0) {
            size_t p = blockIndex() * kBlockSize +
                       static_cast<size_t>(bits::trailingZeros(candidates));
            if (p >= len_) {
                pos_ = len_;
                return '\0';
            }
            pos_ = p;
            return *mem(pos_);
        }
        pos_ = (blockIndex() + 1) * kBlockSize;
    }
    pos_ = len_;
    return '\0';
}

} // namespace jsonski::intervals
