#include "intervals/cursor.h"

#include <algorithm>
#include <cstring>

namespace jsonski::intervals {

void
StreamCursor::prepareTail(size_t base)
{
    // The padding must classify as pure whitespace: it can then never
    // contribute structural or quote bits, so no scan can mistake a
    // byte past len_ for real input (tests/boundary_test.cpp pins this
    // down for structural characters landing on the final byte).
    assert(base <= len_ && len_ - base < kBlockSize);
    if (tail_ready_)
        return;
    std::memset(tail_, ' ', kBlockSize);
    std::memcpy(tail_, data_ + base, len_ - base);
    tail_ready_ = true;
}

void
StreamCursor::classifyThrough(size_t idx)
{
    assert(idx + 1 >= classified_blocks_ &&
           "cursor cannot rewind to an earlier block");
    telemetry::PhaseScope phase(telemetry::Phase::Classify);
    size_t first = classified_blocks_;
    while (classified_blocks_ <= idx) {
        size_t start = classified_blocks_ * kBlockSize;
        if (start + kBlockSize > len_) // overflow-free form of the
            prepareTail(start);        // partial-tail test
        const char* d = blockDataAt(classified_blocks_);
        if (scalar_classifier_) {
            // Ablation mode: derive the string layer from the
            // character-level reference classifier.
            BlockBits b = classifyBlockReference(
                d, kBlockSize, carry_);
            strings_.in_string = b.in_string;
            strings_.quote = b.quote;
        } else {
            strings_ = classifyStringsBlock(d, carry_);
        }
        ++classified_blocks_;
    }
    telemetry::count(telemetry::Counter::BlocksClassified,
                     classified_blocks_ - first);
    telemetry::count(telemetry::Counter::BytesScanned,
                     (classified_blocks_ - first) * kBlockSize);
}

BlockBits
StreamCursor::blockAt(size_t idx)
{
    const StringBits& s = stringsAt(idx);
    const char* d = blockDataAt(idx);
    BlockBits out;
    out.in_string = s.in_string;
    out.quote = s.quote;
    uint64_t outside = ~s.in_string;
    out.open_brace = rawEqBits(d, '{') & outside;
    out.close_brace = rawEqBits(d, '}') & outside;
    out.open_bracket = rawEqBits(d, '[') & outside;
    out.close_bracket = rawEqBits(d, ']') & outside;
    out.colon = rawEqBits(d, ':') & outside;
    out.comma = rawEqBits(d, ',') & outside;
    out.whitespace = rawWhitespaceBits(d) & outside;
    return out;
}

char
StreamCursor::skipWhitespace()
{
    // Fast path: compact JSON rarely has whitespace at all; answer
    // from the raw byte before touching any bitmap.
    if (pos_ < len_) {
        char c = data_[pos_];
        if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
            return c;
    }
    while (!atEnd()) {
        (void)strings(); // keep the sequential pipeline in step
        uint64_t ws = rawWhitespaceBits(blockData());
        uint64_t candidates = maskFromPos(~ws);
        if (candidates != 0) {
            size_t p = blockIndex() * kBlockSize +
                       static_cast<size_t>(bits::trailingZeros(candidates));
            if (p >= len_) {
                pos_ = len_;
                return '\0';
            }
            pos_ = p;
            return data_[pos_];
        }
        pos_ = (blockIndex() + 1) * kBlockSize;
    }
    pos_ = len_;
    return '\0';
}

} // namespace jsonski::intervals
