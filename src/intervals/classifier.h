/**
 * @file
 * Word-at-a-time block classifier.
 *
 * Converts 64 input bytes into the BlockBits bitmaps.  The raw
 * equality bitmaps come from the runtime-dispatched SIMD kernel
 * (src/kernels/: AVX2, Westmere/SSE, or portable scalar — selected by
 * cpuid at first use, overridable with JSONSKI_KERNEL).  The
 * string-interior mask uses the standard odd-backslash-sequence
 * algorithm plus a prefix-XOR over unescaped quotes, with carries
 * threaded between blocks so classification can run strictly left to
 * right — exactly the streaming discipline the paper's interval
 * construction assumes.
 */
#ifndef JSONSKI_INTERVALS_CLASSIFIER_H
#define JSONSKI_INTERVALS_CLASSIFIER_H

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "intervals/block.h"

namespace jsonski::intervals {

/**
 * Classify one full 64-byte block.
 *
 * @param data   Pointer to 64 readable bytes.
 * @param carry  In/out cross-block state (escape and in-string carries).
 * @return       Bitmaps for this block.
 */
BlockBits classifyBlock(const char* data, ClassifierCarry& carry);

/**
 * Classify a final partial block of @p len < 64 bytes.  Bytes past the
 * end are treated as padding whitespace (they produce no structural
 * bits).
 */
BlockBits classifyPartialBlock(const char* data, size_t len,
                               ClassifierCarry& carry);

/**
 * Reference scalar implementation used by tests to validate the SIMD
 * path.  Semantically identical to classifyBlock but processes one
 * character at a time with an explicit state machine.
 */
BlockBits classifyBlockReference(const char* data, size_t len,
                                 ClassifierCarry& carry);

/** True when the active runtime kernel is a SIMD one (not "scalar").
 *  See kernels::activeName() for the exact kernel. */
bool classifierUsesSimd();

/**
 * String-layer bitmaps only — the part of the classification that
 * *must* run sequentially (its escape and in-string carries thread
 * through every block).  Metacharacter bitmaps, by contrast, are pure
 * per-block functions and are built lazily per fast-forward case (the
 * paper's "relevant interval bitmaps").
 */
struct StringBits
{
    uint64_t in_string = 0; ///< see BlockBits::in_string
    uint64_t quote = 0;     ///< unescaped quotes
};

/** String-layer classification of one full block. */
StringBits classifyStringsBlock(const char* data, ClassifierCarry& carry);

/** Raw equality bitmap of @p c over 64 bytes (no string masking). */
uint64_t rawEqBits(const char* data, char c);

/** Bitmap of bytes <= 0x20 over 64 bytes (JSON whitespace superset). */
uint64_t rawWhitespaceBits(const char* data);

} // namespace jsonski::intervals

#endif // JSONSKI_INTERVALS_CLASSIFIER_H
