#include "intervals/chunk_source.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <unistd.h>

#include "util/error.h"

namespace jsonski::intervals {

size_t
ViewSource::read(char* dst, size_t cap)
{
    assert(cap > 0);
    size_t n = std::min(cap, remaining());
    if (chunk_hint_ != 0)
        n = std::min(n, chunk_hint_);
    std::memcpy(dst, data_.data() + off_, n);
    off_ += n;
    return n;
}

size_t
FileSource::read(char* dst, size_t cap)
{
    assert(cap > 0);
    size_t n = std::fread(dst, 1, cap, f_);
    if (n < cap && std::ferror(f_))
        throw ParseError(ErrorCode::IoError, "input read failed",
                         delivered_ + n);
    delivered_ += n;
    return n;
}

size_t
IstreamSource::read(char* dst, size_t cap)
{
    assert(cap > 0);
    in_.read(dst, static_cast<std::streamsize>(cap));
    auto n = static_cast<size_t>(in_.gcount());
    // A short read with only eofbit/failbit set is end of input; badbit
    // is a streambuf-level I/O failure and must not masquerade as EOF.
    if (in_.bad())
        throw ParseError(ErrorCode::IoError, "input stream went bad",
                         delivered_ + n);
    delivered_ += n;
    return n;
}

SocketChunkSource::SocketChunkSource(int fd, int read_deadline_ms,
                                     size_t max_bytes,
                                     std::string_view carry)
    : SocketChunkSource(fd, Deadline::after(read_deadline_ms), max_bytes,
                        carry)
{}

SocketChunkSource::SocketChunkSource(int fd, Deadline deadline,
                                     size_t max_bytes,
                                     std::string_view carry)
    : fd_(fd), deadline_(deadline), max_bytes_(max_bytes), carry_(carry)
{}

size_t
SocketChunkSource::read(char* dst, size_t cap)
{
    assert(cap > 0);
    if (max_bytes_ != 0) {
        // Allow one probe byte past the cap: a body of exactly
        // max_bytes must still be able to observe its EOF, while any
        // byte actually delivered beyond the cap throws below.
        size_t room = max_bytes_ > delivered_ ? max_bytes_ - delivered_ : 0;
        cap = std::min(cap, room + 1);
    }
    if (carry_off_ < carry_.size()) {
        size_t n = std::min(cap, carry_.size() - carry_off_);
        std::memcpy(dst, carry_.data() + carry_off_, n);
        carry_off_ += n;
        delivered_ += n;
        if (max_bytes_ != 0 && delivered_ > max_bytes_)
            throw ParseError(ErrorCode::RecordTooLarge,
                             "request body exceeds the byte limit",
                             max_bytes_);
        return n;
    }
    if (eof_)
        return 0;
    for (;;) {
        // The envelope is absolute: progress does not re-arm it, so a
        // body dripping one byte per window still expires on schedule.
        if (deadline_.expired())
            throw ParseError(ErrorCode::DeadlineExpired,
                             "read deadline expired", delivered_);
        if (deadline_.armed()) {
            pollfd pfd{fd_, POLLIN, 0};
            int pr = ::poll(&pfd, 1, deadline_.pollTimeoutMs());
            if (pr == 0)
                throw ParseError(ErrorCode::DeadlineExpired,
                                 "read deadline expired", delivered_);
            if (pr < 0) {
                if (errno == EINTR)
                    continue;
                throw ParseError(ErrorCode::IoError, "poll failed",
                                 delivered_);
            }
        }
        ssize_t n = ::read(fd_, dst, cap);
        if (n > 0) {
            delivered_ += static_cast<size_t>(n);
            if (max_bytes_ != 0 && delivered_ > max_bytes_)
                throw ParseError(ErrorCode::RecordTooLarge,
                                 "request body exceeds the byte limit",
                                 max_bytes_);
            return static_cast<size_t>(n);
        }
        if (n == 0) {
            eof_ = true;
            return 0;
        }
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
            // EAGAIN without a deadline would spin; poll for readiness.
            if (!deadline_.armed() && errno != EINTR) {
                pollfd pfd{fd_, POLLIN, 0};
                ::poll(&pfd, 1, -1);
            }
            continue;
        }
        throw ParseError(ErrorCode::IoError, "socket read failed",
                         delivered_);
    }
}

SplitSource::SplitSource(std::string_view data, std::vector<size_t> schedule)
    : data_(data), schedule_(std::move(schedule))
{
    assert(!schedule_.empty());
    left_in_chunk_ = nextScheduled();
}

size_t
SplitSource::nextScheduled()
{
    size_t s = schedule_[sched_next_];
    sched_next_ = (sched_next_ + 1) % schedule_.size();
    return s == 0 ? 1 : s; // zero-size chunks cannot make progress
}

size_t
SplitSource::read(char* dst, size_t cap)
{
    assert(cap > 0);
    size_t remaining = data_.size() - off_;
    if (remaining == 0)
        return 0;
    size_t n = std::min({cap, left_in_chunk_, remaining});
    std::memcpy(dst, data_.data() + off_, n);
    off_ += n;
    left_in_chunk_ -= n;
    if (left_in_chunk_ == 0) {
        left_in_chunk_ = nextScheduled();
        if (off_ < data_.size())
            ++seams_;
    }
    return n;
}

} // namespace jsonski::intervals
