#include "intervals/chunk_source.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace jsonski::intervals {

size_t
ViewSource::read(char* dst, size_t cap)
{
    assert(cap > 0);
    size_t n = std::min(cap, remaining());
    if (chunk_hint_ != 0)
        n = std::min(n, chunk_hint_);
    std::memcpy(dst, data_.data() + off_, n);
    off_ += n;
    return n;
}

size_t
FileSource::read(char* dst, size_t cap)
{
    assert(cap > 0);
    return std::fread(dst, 1, cap, f_);
}

size_t
IstreamSource::read(char* dst, size_t cap)
{
    assert(cap > 0);
    in_.read(dst, static_cast<std::streamsize>(cap));
    return static_cast<size_t>(in_.gcount());
}

SplitSource::SplitSource(std::string_view data, std::vector<size_t> schedule)
    : data_(data), schedule_(std::move(schedule))
{
    assert(!schedule_.empty());
    left_in_chunk_ = nextScheduled();
}

size_t
SplitSource::nextScheduled()
{
    size_t s = schedule_[sched_next_];
    sched_next_ = (sched_next_ + 1) % schedule_.size();
    return s == 0 ? 1 : s; // zero-size chunks cannot make progress
}

size_t
SplitSource::read(char* dst, size_t cap)
{
    assert(cap > 0);
    size_t remaining = data_.size() - off_;
    if (remaining == 0)
        return 0;
    size_t n = std::min({cap, left_in_chunk_, remaining});
    std::memcpy(dst, data_.data() + off_, n);
    off_ += n;
    left_in_chunk_ -= n;
    if (left_in_chunk_ == 0) {
        left_in_chunk_ = nextScheduled();
        if (off_ < data_.size())
            ++seams_;
    }
    return n;
}

} // namespace jsonski::intervals
