/**
 * @file
 * In-process client harness for the query service: drives a Server
 * through a socketpair (bypassing accept(), deterministic) or a real
 * loopback TCP connection (exercising the listener/event loop), with
 * adversarial control over how the request body is chunked and paced.
 *
 * The pump is full-duplex: it interleaves body writes with response
 * reads through one poll loop, so a request that produces more match
 * bytes than the kernel buffers hold cannot deadlock the harness
 * against the server's bounded write queue.  Pacing knobs exist to
 * *provoke* the server's limits deliberately — a write stall to trip
 * the read deadline, a read delay to trip the slow-reader write
 * deadline — which is exactly what the robustness tests assert.
 *
 * jsqc is built on runRequestFd(), so the tests exercise the same
 * client code path users run.
 */
#ifndef JSONSKI_SERVICE_LOOPBACK_H
#define JSONSKI_SERVICE_LOOPBACK_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "service/protocol.h"
#include "service/server.h"

namespace jsonski::service {

/** Client-side pacing / framing controls. */
struct ClientOptions
{
    /**
     * Body write sizes, cycled (the adversarial chunking: 1 forces a
     * socket boundary between every byte).  Empty = one write.
     */
    std::vector<size_t> chunk_schedule;

    /** Pause between body chunks, ms. */
    int write_delay_ms = 0;

    /** Pause before each response read, ms (slow-reader simulation). */
    int read_delay_ms = 0;

    /**
     * Stop sending after this many body bytes and keep the connection
     * open without half-closing — the stalled-client scenario that
     * must trip the server's read deadline.
     */
    size_t stall_after = std::numeric_limits<size_t>::max();

    /** shutdown(SHUT_WR) after the body (EOF body framing). */
    bool half_close = true;

    /** Hard cap on the whole exchange, ms. */
    int overall_timeout_ms = 30000;
};

/** Everything observable from one request. */
struct ClientResult
{
    /** Valid iff has_trailer. */
    Trailer trailer;
    bool has_trailer = false;

    /** Decoded match frames, in arrival order. */
    std::vector<std::pair<size_t, std::string>> matches;

    /** Connection ended without a trailer (hard drop / timeout). */
    bool severed = false;

    /** Raw response bytes for non-framed responses (!stats). */
    std::string raw;
};

/** Connect to @p host:@p port; @return the fd. @throws on failure. */
int connectTcp(const std::string& host, uint16_t port);

/**
 * Run one request over a connected descriptor (takes ownership of
 * @p fd and closes it).  @p on_match, when set, streams decoded
 * matches as they arrive (jsqc's print path).
 */
ClientResult runRequestFd(int fd, const RequestHeader& header,
                          std::string_view body,
                          const ClientOptions& options = {},
                          ResponseParser::MatchFn on_match = {});

/** Socketpair injection: the full request path minus the listener. */
ClientResult runRequest(Server& server, const RequestHeader& header,
                        std::string_view body,
                        const ClientOptions& options = {});

/** Convenience: `!stats` scrape over a socketpair. */
std::string scrapeStats(Server& server);

} // namespace jsonski::service

#endif // JSONSKI_SERVICE_LOOPBACK_H
