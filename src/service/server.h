/**
 * @file
 * jsqd — the streaming JSONPath query daemon (DESIGN.md §10).
 *
 * Topology: one event-loop thread multiplexes the listening socket and
 * every accepted-but-idle connection through epoll (Linux) or poll
 * (fallback, also selectable at runtime for testing).  The moment a
 * connection shows its first request byte it is handed to a fixed
 * worker pool (util/thread_pool); the worker runs the whole request —
 * bounded header read, plan-cache lookup, chunked streaming evaluation
 * directly over a SocketChunkSource (the body is never materialized),
 * incremental match frames, status trailer — and closes the
 * connection.  One request per connection keeps the protocol EOF-
 * framable (the client half-closes to end the body) and the state
 * machine worker-local.
 *
 * Robustness envelope, all per connection: the header line is capped
 * (max_header_bytes); the body read polls under a deadline so a
 * stalled client cannot pin a worker; writes go through a bounded
 * queue that flushes under its own deadline, so a slow *reader* is
 * back-pressured and eventually rejected instead of ballooning server
 * memory; the body size and match count are capped.  Every rejection
 * is a typed trailer carrying an ErrorCode (util/error.h).
 *
 * Observability: per-request telemetry registries merge into one
 * server-wide registry, and a `jsq/1 !stats` request answers with a
 * Prometheus text page (telemetry/export) plus server counters; the
 * plan cache contributes hit/miss/eviction gauges.
 *
 * Shutdown: requestStop() is async-signal-safe (it writes one byte to
 * a wake pipe); the event loop then stops accepting, closes idle
 * connections, lets in-flight requests finish, and joins the workers —
 * the graceful SIGTERM drain the CI smoke leg asserts.
 */
#ifndef JSONSKI_SERVICE_SERVER_H
#define JSONSKI_SERVICE_SERVER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "service/plan_cache.h"
#include "telemetry/telemetry.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace jsonski::service {

/** Tunables; the defaults serve tests and small deployments. */
struct ServerConfig
{
    /** TCP port to listen on; 0 picks an ephemeral port. */
    uint16_t port = 0;

    /** Listen address. */
    std::string bind_addr = "127.0.0.1";

    /** Worker threads evaluating requests. */
    size_t workers = 4;

    /** Request header line cap, bytes. */
    size_t max_header_bytes = 4096;

    /** Request body cap, bytes; 0 = unlimited. */
    size_t max_body_bytes = 0;

    /** Server-imposed cap on matches per request; 0 = unlimited. */
    size_t max_matches = 0;

    /** Poll timeout for each body read; 0 = wait forever. */
    int read_deadline_ms = 10000;

    /** Poll timeout for draining the write queue to a slow reader. */
    int write_deadline_ms = 10000;

    /** Accepted connection must show its first byte within this. */
    int idle_deadline_ms = 10000;

    /** Cursor refill granularity for body streaming. */
    size_t chunk_bytes = size_t{64} << 10;

    /** Compiled plans retained across all plan-cache shards. */
    size_t plan_cache_capacity = 64;

    /** Write-queue flush threshold (bounds per-connection buffering). */
    size_t write_queue_bytes = size_t{256} << 10;

    /** Use the poll() event loop even where epoll is available. */
    bool force_poll = false;
};

/** Monotonic server-wide counters (snapshot). */
struct ServerStats
{
    uint64_t connections_total = 0;
    uint64_t requests_total = 0;   ///< header successfully parsed
    uint64_t responses_ok = 0;
    uint64_t responses_error = 0;  ///< error trailer sent
    uint64_t rejected_bad_request = 0;
    uint64_t rejected_header_too_large = 0;
    uint64_t rejected_deadline = 0;    ///< read/write/idle deadline
    uint64_t rejected_too_large = 0;   ///< body byte cap
    uint64_t stats_requests = 0;
    uint64_t idle_closed = 0;      ///< closed with no request byte
    uint64_t bytes_in_total = 0;   ///< request body bytes consumed
    uint64_t bytes_out_total = 0;  ///< response bytes written
};

/** See file comment. */
class Server
{
  public:
    explicit Server(ServerConfig config = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Bind, listen, and spawn the event loop + workers.
     * @throws std::runtime_error when the socket cannot be set up.
     */
    void start();

    /** Bound port (after start()); useful with config.port == 0. */
    uint16_t port() const { return port_; }

    /**
     * Request a graceful drain.  Async-signal-safe: may be called from
     * a SIGTERM handler.  Returns immediately; pair with waitStopped().
     */
    void requestStop() noexcept;

    /** Block until the drain completes and all threads are joined. */
    void waitStopped();

    /** requestStop() + waitStopped(). */
    void stop();

    /**
     * Hand an already-connected descriptor (e.g. one end of a
     * socketpair) straight to a worker, bypassing accept().  The
     * server takes ownership of @p fd.  This is the loopback test
     * harness's injection point — the full request path runs without
     * any listening socket involved.
     *
     * @return false (fd closed) when the server is draining.
     */
    bool adoptConnection(int fd);

    /** Counter snapshot. */
    ServerStats stats() const;

    /** The shared plan cache (for counter assertions in tests). */
    const PlanCache& planCache() const { return plan_cache_; }

    /**
     * The Prometheus text page a `!stats` request answers with:
     * server counters + plan-cache gauges + the merged telemetry
     * registry of every completed request.
     */
    std::string metricsText() const;

  private:
    class Impl;

    void eventLoop();
    void handleConnection(int fd);

    ServerConfig config_;
    PlanCache plan_cache_;

    int listen_fd_ = -1;
    int wake_read_fd_ = -1;
    int wake_write_fd_ = -1;
    uint16_t port_ = 0;

    std::atomic<bool> stopping_{false};
    std::atomic<bool> started_{false};
    std::thread loop_thread_;
    std::unique_ptr<ThreadPool> pool_;

    mutable std::mutex stats_mutex_;
    ServerStats stats_;
    telemetry::Registry merged_telemetry_;

    void bumpOk(uint64_t bytes_in, uint64_t bytes_out,
                const telemetry::Registry& reg);
    void bumpError(uint64_t bytes_in, uint64_t bytes_out,
                   const telemetry::Registry& reg, ErrorCode code);
};

} // namespace jsonski::service

#endif // JSONSKI_SERVICE_SERVER_H
