/**
 * @file
 * jsqd — the streaming JSONPath query daemon (DESIGN.md §10, §12).
 *
 * Topology: N event-loop *shards* (ServerConfig::shards; 1 preserves
 * the original single-loop topology).  Each shard owns its own
 * readiness multiplexer (epoll on Linux, poll fallback), its own
 * accept path, its own worker pool, its own plan-cache and
 * document-index-cache partitions, and
 * its own telemetry registry + counters — a connection is pinned to
 * one shard for its whole life, so hot sockets never bounce between
 * cores and the per-request hot path takes no cross-shard lock.
 *
 * Accept strategy (DESIGN.md §12): on Linux every shard binds its own
 * SO_REUSEPORT listener and the kernel spreads incoming connections;
 * elsewhere — and under force_poll, so the path stays tested on Linux
 * CI — shard 0 owns the single listener and hands accepted fds to the
 * shards round-robin through their wake pipes.  adoptConnection()
 * round-robins injected fds the same way.
 *
 * The moment a connection shows its first request byte its shard hands
 * it to the shard's worker pool; the worker runs the whole request —
 * bounded header read, plan-cache lookup, chunked streaming evaluation
 * directly over a SocketChunkSource (the body is never materialized),
 * incremental match frames, status trailer — and closes the
 * connection.  One request per connection keeps the protocol EOF-
 * framable and the state machine worker-local.
 *
 * Robustness envelope, all per connection and all *absolute* deadlines
 * (util/deadline.h — progress never re-arms a window, so slow-loris
 * drip-feeding expires on schedule): the header line is capped
 * (max_header_bytes) and must arrive within read_deadline_ms; the
 * whole body must stream within its own read_deadline_ms envelope;
 * each write-queue flush must complete within write_deadline_ms, so a
 * slow *reader* is back-pressured and eventually rejected instead of
 * ballooning server memory; the body size and match count are capped.
 * Every rejection is a typed trailer carrying an ErrorCode
 * (util/error.h).  The accept path uses accept4(SOCK_CLOEXEC) where
 * available and answers fd exhaustion (EMFILE/ENFILE) by reaping idle
 * connections and pausing the listener briefly instead of busy-
 * spinning the level-triggered fd.
 *
 * Observability: per-request telemetry registries merge into their
 * shard's registry; a `jsq/1 !stats` request merges *across* shards at
 * scrape time and answers with a Prometheus text page (server totals,
 * per-shard gauges, plan-cache totals, merged engine telemetry).
 *
 * Shutdown: requestStop() is async-signal-safe (it writes one byte to
 * every shard's wake pipe); each shard then stops accepting, closes
 * idle connections, lets in-flight requests finish, and joins its
 * workers — the graceful SIGTERM drain the CI smoke leg asserts.
 */
#ifndef JSONSKI_SERVICE_SERVER_H
#define JSONSKI_SERVICE_SERVER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "index/index_cache.h"
#include "service/plan_cache.h"
#include "telemetry/telemetry.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace jsonski::service {

/** Tunables; the defaults serve tests and small deployments. */
struct ServerConfig
{
    /** TCP port to listen on; 0 picks an ephemeral port. */
    uint16_t port = 0;

    /** Listen address. */
    std::string bind_addr = "127.0.0.1";

    /**
     * Event-loop shards; 0 = one per hardware thread.  1 preserves the
     * single-loop topology (and exact plan-cache counter determinism,
     * since all requests share one partition).
     */
    size_t shards = 0;

    /** Worker threads evaluating requests, per shard. */
    size_t workers = 4;

    /** Request header line cap, bytes. */
    size_t max_header_bytes = 4096;

    /** Request body cap, bytes; 0 = unlimited. */
    size_t max_body_bytes = 0;

    /**
     * Cap on queries per request (header list plus query= continuation
     * lines).  Oversized lists are rejected with TooManyQueries before
     * any continuation line is read, so a hostile header can't make the
     * server buffer an unbounded query set.
     */
    size_t max_queries = 1024;

    /** Server-imposed cap on matches per request; 0 = unlimited. */
    size_t max_matches = 0;

    /**
     * Absolute envelope for the header read and (separately re-armed)
     * for the whole body stream; 0 = no deadline.
     */
    int read_deadline_ms = 10000;

    /** Absolute envelope for each write-queue flush to a slow reader. */
    int write_deadline_ms = 10000;

    /** Accepted connection must show its first byte within this. */
    int idle_deadline_ms = 10000;

    /** Listener pause after EMFILE/ENFILE before re-accepting. */
    int accept_backoff_ms = 100;

    /** Cursor refill granularity for body streaming. */
    size_t chunk_bytes = size_t{64} << 10;

    /** Compiled plans retained across all shards' partitions. */
    size_t plan_cache_capacity = 64;

    /**
     * Resident structural-index bytes retained across all shards'
     * document-index cache partitions (DESIGN.md §14); 0 disables the
     * doc= path entirely (such requests stream with index=none).
     */
    size_t doc_cache_bytes = size_t{64} << 20;

    /**
     * Cap on a doc= request's body, which must be held resident for
     * hashing and warm evaluation (independent of max_body_bytes, which
     * governs the never-materialized streaming path).
     */
    size_t max_doc_bytes = size_t{8} << 20;

    /** Write-queue flush threshold (bounds per-connection buffering). */
    size_t write_queue_bytes = size_t{256} << 10;

    /**
     * Use the poll() event loop even where epoll is available.  Also
     * selects the round-robin fd-handoff accept path instead of
     * SO_REUSEPORT, so both fallbacks stay exercised on Linux.
     */
    bool force_poll = false;
};

/** Monotonic server-wide counters (snapshot; summed across shards). */
struct ServerStats
{
    uint64_t connections_total = 0;
    uint64_t requests_total = 0;   ///< header successfully parsed
    uint64_t responses_ok = 0;
    uint64_t responses_error = 0;  ///< error trailer sent
    uint64_t rejected_bad_request = 0;
    uint64_t rejected_header_too_large = 0;
    uint64_t rejected_deadline = 0;    ///< read/write/idle deadline
    uint64_t rejected_too_large = 0;   ///< body byte cap
    uint64_t rejected_too_many_queries = 0; ///< query-set cap
    uint64_t multi_query_requests = 0; ///< requests with >1 query
    uint64_t stats_requests = 0;
    uint64_t idle_closed = 0;      ///< closed with no request byte
    uint64_t accept_errors = 0;    ///< accept()/poller-add failures
    uint64_t accept_backoffs = 0;  ///< EMFILE/ENFILE pauses taken
    uint64_t bytes_in_total = 0;   ///< request body bytes consumed
    uint64_t bytes_out_total = 0;  ///< response bytes written

    ServerStats& operator+=(const ServerStats& o);
};

/** See file comment. */
class Server
{
  public:
    explicit Server(ServerConfig config = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Bind, listen, and spawn the shard loops + workers.
     * @throws std::runtime_error when the sockets cannot be set up.
     */
    void start();

    /** Bound port (after start()); useful with config.port == 0. */
    uint16_t port() const { return port_; }

    /** Resolved shard count (config.shards, or the auto default). */
    size_t shardCount() const { return shards_.size(); }

    /**
     * Request a graceful drain.  Async-signal-safe: may be called from
     * a SIGTERM handler.  Returns immediately; pair with waitStopped().
     */
    void requestStop() noexcept;

    /** Block until the drain completes and all threads are joined. */
    void waitStopped();

    /** requestStop() + waitStopped(). */
    void stop();

    /**
     * Hand an already-connected descriptor (e.g. one end of a
     * socketpair) to a shard (round-robin), bypassing accept().  The
     * server takes ownership of @p fd.  This is the loopback test
     * harness's injection point — the full request path, shard loop
     * included, runs without any listening socket involved.
     *
     * @return false (fd closed) when the server is draining.
     */
    bool adoptConnection(int fd);

    /** Counter snapshot, summed across shards. */
    ServerStats stats() const;

    /**
     * Shard 0's plan-cache partition.  Exact totals for shards == 1
     * (the deterministic-counter tests pin that); use
     * planCacheTotals() for the cross-shard sums.
     */
    const PlanCache& planCache() const;

    /** Plan-cache counters summed across every shard's partition. */
    PlanCacheStats planCacheTotals() const;

    /** Document-index-cache counters summed across every shard. */
    index::DocumentIndexCacheStats docCacheTotals() const;

    /**
     * The Prometheus text page a `!stats` request answers with:
     * summed server counters, per-shard gauges, plan-cache totals, and
     * the merged telemetry registry of every completed request.
     */
    std::string metricsText() const;

  private:
    struct Shard;

    void shardLoop(Shard& shard);
    void handleConnection(Shard& shard, int fd);
    void bumpOk(Shard& shard, uint64_t bytes_in, uint64_t bytes_out,
                const telemetry::Registry& reg);
    void bumpError(Shard& shard, uint64_t bytes_in, uint64_t bytes_out,
                   const telemetry::Registry& reg, ErrorCode code);

    ServerConfig config_;
    std::vector<std::unique_ptr<Shard>> shards_;
    uint16_t port_ = 0;

    std::atomic<bool> stopping_{false};
    std::atomic<bool> started_{false};
    std::atomic<uint64_t> next_adopt_{0};
};

} // namespace jsonski::service

#endif // JSONSKI_SERVICE_SERVER_H
