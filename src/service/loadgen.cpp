#include "service/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "service/loopback.h"
#include "service/protocol.h"

namespace jsonski::service {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t
usBetween(Clock::time_point a, Clock::time_point b)
{
    auto d = std::chrono::duration_cast<std::chrono::microseconds>(b - a)
                 .count();
    return d > 0 ? static_cast<uint64_t>(d) : 0;
}

int
bitWidth(uint64_t v)
{
    int w = 0;
    while (v != 0) {
        ++w;
        v >>= 1;
    }
    return w;
}

} // namespace

size_t
LatencyHistogram::bucketOf(uint64_t v)
{
    if (v < 128)
        return static_cast<size_t>(v);
    // Octave = MSB position; the 6 bits below the MSB pick the linear
    // sub-bucket within the octave [2^o, 2^(o+1)).
    int o = bitWidth(v) - 1; // >= 7
    uint64_t sub = (v >> (o - 6)) & 63;
    return 128 + static_cast<size_t>(o - 7) * kSubBuckets +
           static_cast<size_t>(sub);
}

uint64_t
LatencyHistogram::bucketTop(size_t b)
{
    if (b < 128)
        return b;
    size_t i = b - 128;
    int o = 7 + static_cast<int>(i / kSubBuckets);
    uint64_t sub = 64 + i % kSubBuckets; // [64, 128): top half mantissa
    uint64_t width = uint64_t{1} << (o - 6);
    return (sub << (o - 6)) + width - 1;
}

void
LatencyHistogram::record(uint64_t us)
{
    ++buckets_[bucketOf(us)];
    ++count_;
    max_ = std::max(max_, us);
}

void
LatencyHistogram::merge(const LatencyHistogram& other)
{
    for (size_t i = 0; i < kBucketCount; ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    max_ = std::max(max_, other.max_);
}

uint64_t
LatencyHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    p = std::min(100.0, std::max(0.0, p));
    uint64_t target = static_cast<uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    if (target == 0)
        target = 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < kBucketCount; ++b) {
        seen += buckets_[b];
        if (seen >= target)
            return std::min(bucketTop(b), max_);
    }
    return max_;
}

LoadResult
runLoad(const LoadOptions& options)
{
    RequestHeader header;
    header.queries = {options.query};
    header.count_only = options.count_only;
    header.has_length = true;
    header.length = options.body.size();
    ClientOptions copt;
    copt.half_close = false; // length-framed; keep the socket simple
    copt.overall_timeout_ms = std::max(options.duration_ms * 2, 10000);

    size_t nconn = std::max<size_t>(1, options.connections);
    struct PerThread
    {
        LoadResult r;
    };
    std::vector<PerThread> per(nconn);
    Clock::time_point start = Clock::now();
    Clock::time_point end =
        start + std::chrono::milliseconds(options.duration_ms);

    auto oneRequest = [&](PerThread& t, Clock::time_point measured_from) {
        ++t.r.attempted;
        try {
            int fd = connectTcp(options.host, options.port);
            ClientResult r =
                runRequestFd(fd, header, options.body, copt);
            t.r.latency.record(usBetween(measured_from, Clock::now()));
            if (r.has_trailer && r.trailer.ok) {
                ++t.r.ok;
                t.r.matches += r.trailer.matches;
            } else {
                ++t.r.errors;
            }
        } catch (...) {
            ++t.r.errors;
            t.r.latency.record(usBetween(measured_from, Clock::now()));
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(nconn);
    for (size_t c = 0; c < nconn; ++c) {
        threads.emplace_back([&, c] {
            PerThread& t = per[c];
            if (options.qps > 0) {
                // Open loop: thread c owns requests c, c+n, c+2n, ...;
                // request i is scheduled at start + i/qps and its
                // latency runs from that schedule, so server stalls
                // show up as queueing delay, not reduced load.
                for (uint64_t i = c;; i += nconn) {
                    Clock::time_point scheduled =
                        start +
                        std::chrono::microseconds(static_cast<int64_t>(
                            1e6 * static_cast<double>(i) / options.qps));
                    if (scheduled >= end)
                        break;
                    std::this_thread::sleep_until(scheduled);
                    oneRequest(t, scheduled);
                }
            } else {
                // Closed loop: back-to-back round trips.
                while (Clock::now() < end)
                    oneRequest(t, Clock::now());
            }
        });
    }
    for (auto& th : threads)
        th.join();

    LoadResult total;
    for (PerThread& t : per) {
        total.attempted += t.r.attempted;
        total.ok += t.r.ok;
        total.errors += t.r.errors;
        total.matches += t.r.matches;
        total.latency.merge(t.r.latency);
    }
    total.elapsed_s =
        static_cast<double>(usBetween(start, Clock::now())) / 1e6;
    if (total.elapsed_s > 0)
        total.throughput_rps =
            static_cast<double>(total.ok) / total.elapsed_s;
    return total;
}

} // namespace jsonski::service
