#include "service/loopback.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace jsonski::service {

namespace {

using Clock = std::chrono::steady_clock;
using Ms = std::chrono::milliseconds;

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int
msUntil(Clock::time_point t)
{
    auto left =
        std::chrono::duration_cast<Ms>(t - Clock::now()).count();
    return static_cast<int>(std::max<long long>(0, left));
}

} // namespace

int
connectTcp(const std::string& host, uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        throw std::runtime_error("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw std::runtime_error("bad address " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
        int err = errno;
        ::close(fd);
        throw std::runtime_error("connect failed: " +
                                 std::string(std::strerror(err)));
    }
    // Deep send buffer: large bodies drain in few writer/reader
    // alternations, which is what bounds loopback throughput when the
    // client and a worker share a core.
    int buf = 1 << 20;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof buf);
    return fd;
}

ClientResult
runRequestFd(int fd, const RequestHeader& header, std::string_view body,
             const ClientOptions& options, ResponseParser::MatchFn on_match)
{
    setNonBlocking(fd);
    ClientResult result;
    ResponseParser parser(std::move(on_match));

    // Outgoing bytes: header first, then the body, cut at the chunk
    // schedule.  The header always goes out as its own write.
    std::string header_bytes = encodeHeader(header);
    size_t send_cap = std::min(body.size(), options.stall_after);
    bool stalled = send_cap < body.size();

    size_t header_off = 0;
    size_t body_off = 0;
    size_t sched_at = 0;
    size_t left_in_chunk = options.chunk_schedule.empty()
                               ? send_cap
                               : 0; // primed below per chunk
    bool write_open = true;   // our direction still writable
    bool half_closed = false;

    Clock::time_point deadline =
        Clock::now() + Ms(options.overall_timeout_ms);
    Clock::time_point next_write = Clock::now();
    Clock::time_point next_read = Clock::now();

    auto nextChunk = [&] {
        if (options.chunk_schedule.empty())
            return send_cap - body_off;
        size_t s = options.chunk_schedule[sched_at %
                                          options.chunk_schedule.size()];
        ++sched_at;
        return s == 0 ? size_t{1} : s;
    };

    char buf[4096];
    for (;;) {
        if (Clock::now() >= deadline) {
            result.severed = !parser.done();
            break;
        }
        bool body_done = body_off >= send_cap;
        bool want_write =
            write_open &&
            (header_off < header_bytes.size() || !body_done ||
             (body_done && options.half_close && !stalled && !half_closed));
        bool want_read = true;

        // Respect pacing: delay gates re-arm the poll timeout.
        Clock::time_point wake = deadline;
        if (want_write && next_write > Clock::now()) {
            wake = std::min(wake, next_write);
            want_write = false;
        }
        if (next_read > Clock::now()) {
            wake = std::min(wake, next_read);
            want_read = false;
        }

        if (want_write && header_off >= header_bytes.size() &&
            !body_done && left_in_chunk == 0)
            left_in_chunk = nextChunk();

        // Half-close is not an fd event; do it directly when due.
        if (want_write && header_off >= header_bytes.size() &&
            body_done) {
            ::shutdown(fd, SHUT_WR);
            half_closed = true;
            write_open = false;
            continue;
        }

        pollfd pfd{fd, 0, 0};
        if (want_read)
            pfd.events |= POLLIN;
        if (want_write)
            pfd.events |= POLLOUT;
        if (pfd.events == 0) {
            // Both directions gated by pacing; sleep until one opens.
            pollfd none{fd, 0, 0};
            ::poll(&none, 0, std::min(msUntil(wake), 50));
            continue;
        }
        int pr = ::poll(&pfd, 1, std::min(msUntil(wake),
                                          msUntil(deadline)));
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            result.severed = !parser.done();
            break;
        }
        if (pr == 0)
            continue;

        if ((pfd.revents & POLLOUT) != 0 && want_write) {
            const char* data;
            size_t len;
            if (header_off < header_bytes.size()) {
                data = header_bytes.data() + header_off;
                len = header_bytes.size() - header_off;
            } else {
                data = body.data() + body_off;
                len = std::min(left_in_chunk, send_cap - body_off);
            }
            ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
            if (n > 0) {
                if (header_off < header_bytes.size()) {
                    header_off += static_cast<size_t>(n);
                } else {
                    body_off += static_cast<size_t>(n);
                    left_in_chunk -= static_cast<size_t>(n);
                    if (left_in_chunk == 0 && options.write_delay_ms > 0)
                        next_write =
                            Clock::now() + Ms(options.write_delay_ms);
                }
            } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR) {
                // Server ended early (rejection): stop sending, keep
                // reading whatever response it managed to deliver.
                write_open = false;
            }
        }

        if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
            want_read) {
            ssize_t n = ::read(fd, buf, sizeof buf);
            if (n > 0) {
                if (options.read_delay_ms > 0)
                    next_read = Clock::now() + Ms(options.read_delay_ms);
                if (header.stats) {
                    result.raw.append(buf, static_cast<size_t>(n));
                } else {
                    try {
                        parser.feed(
                            std::string_view(buf,
                                             static_cast<size_t>(n)));
                    } catch (const ParseError&) {
                        result.severed = true;
                        break;
                    }
                }
            } else if (n == 0) {
                // Peer EOF: the response is complete (or was cut off).
                if (!header.stats && parser.done()) {
                    result.has_trailer = true;
                } else if (!header.stats) {
                    result.severed = true;
                }
                break;
            } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR) {
                result.severed = !parser.done();
                break;
            }
        }
    }
    ::close(fd);
    if (!header.stats && parser.done()) {
        result.has_trailer = true;
        result.trailer = parser.trailer();
        result.matches = parser.matches();
    }
    return result;
}

ClientResult
runRequest(Server& server, const RequestHeader& header,
           std::string_view body, const ClientOptions& options)
{
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
        throw std::runtime_error("socketpair failed");
    if (!server.adoptConnection(sv[0])) {
        ::close(sv[1]);
        throw std::runtime_error("server is draining");
    }
    return runRequestFd(sv[1], header, body, options);
}

std::string
scrapeStats(Server& server)
{
    RequestHeader h;
    h.stats = true;
    return runRequest(server, h, {}).raw;
}

} // namespace jsonski::service
