#include "service/protocol.h"

#include "util/parse.h"

namespace jsonski::service {

namespace {

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
        s.remove_suffix(1);
    return s;
}

[[noreturn]] void
badRequest(const std::string& what)
{
    throw ParseError(ErrorCode::BadRequest, "bad request: " + what, 0);
}

/**
 * Tracks filter-string-literal state so bracket depth and separators
 * are only honoured outside quotes: `$[?(@.a==',]')]` contains a comma,
 * a bracket, and could contain spaces, none of which may split the
 * query list.  Both quote styles the path grammar accepts are tracked,
 * with backslash escapes.
 */
struct QuoteTracker
{
    char quote = '\0';
    bool escaped = false;

    /** Feed one byte; true when the byte is inside/part of a literal. */
    bool
    step(char c)
    {
        if (quote != '\0') {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == quote)
                quote = '\0';
            return true;
        }
        if (c == '\'' || c == '"') {
            quote = c;
            return true;
        }
        return false;
    }
};

/** key=value pairs of a trailer line, after the status token. */
std::string_view
fieldValue(std::string_view line, std::string_view key)
{
    std::string pat = " " + std::string(key) + "=";
    size_t at = line.find(pat);
    if (at == std::string_view::npos)
        return {};
    size_t begin = at + pat.size();
    size_t end = line.find(' ', begin);
    if (end == std::string_view::npos)
        end = line.size();
    return line.substr(begin, end - begin);
}

size_t
parseSizeField(std::string_view line, std::string_view key)
{
    std::string_view v = fieldValue(line, key);
    size_t out = 0;
    if (v.empty() || !parseSize(v, out))
        badRequest("trailer field " + std::string(key));
    return out;
}

} // namespace

std::vector<std::string>
splitQueries(std::string_view text)
{
    std::vector<std::string> out;
    std::string cur;
    int bracket = 0;
    QuoteTracker qt;
    for (char c : text) {
        if (!qt.step(c)) {
            if (c == '[')
                ++bracket;
            if (c == ']')
                --bracket;
            if (c == ',' && bracket == 0) {
                out.emplace_back(trim(cur));
                cur.clear();
                continue;
            }
        }
        cur += c;
    }
    out.emplace_back(trim(cur));
    return out;
}

std::string
joinQueries(const std::vector<std::string>& queries)
{
    std::string out;
    for (size_t i = 0; i < queries.size(); ++i) {
        if (i != 0)
            out += ',';
        out += queries[i];
    }
    return out;
}

RequestHeader
parseHeader(std::string_view line)
{
    if (line.substr(0, kMagic.size()) != kMagic)
        badRequest("magic is not jsq/1");
    line.remove_prefix(kMagic.size());
    if (line.empty() || line.front() != ' ')
        badRequest("missing query list");
    line.remove_prefix(1);

    // The query list runs to the first space outside brackets and
    // outside quotes; flags follow space-separated.  Filter predicates
    // may legally contain spaces (`[?( @.v < 10 )]`) and their string
    // literals may contain anything, so both bracket depth and quote
    // state gate the split.
    size_t split = line.size();
    int bracket = 0;
    QuoteTracker qt;
    for (size_t i = 0; i < line.size(); ++i) {
        if (qt.step(line[i]))
            continue;
        if (line[i] == '[')
            ++bracket;
        if (line[i] == ']')
            --bracket;
        if (line[i] == ' ' && bracket == 0) {
            split = i;
            break;
        }
    }
    std::string_view qtext = line.substr(0, split);
    RequestHeader h;
    if (qtext == "!stats") {
        h.stats = true;
    } else {
        h.queries = splitQueries(qtext);
        for (const std::string& q : h.queries)
            if (q.empty())
                badRequest("empty query in list");
    }

    std::string_view rest = line.substr(split);
    while (!rest.empty()) {
        rest.remove_prefix(1); // the separating space
        size_t end = rest.find(' ');
        std::string_view flag = rest.substr(0, end);
        rest = end == std::string_view::npos ? std::string_view{}
                                             : rest.substr(end);
        if (flag.empty())
            continue;
        if (flag == "records") {
            h.records = true;
        } else if (flag == "count") {
            h.count_only = true;
        } else if (flag.substr(0, 6) == "limit=") {
            if (!parseSize(flag.substr(6), h.limit))
                badRequest("limit flag");
        } else if (flag.substr(0, 7) == "length=") {
            if (!parseSize(flag.substr(7), h.length))
                badRequest("length flag");
            h.has_length = true;
        } else if (flag.substr(0, 4) == "doc=") {
            if (flag.size() == 4)
                badRequest("doc flag needs an id");
            h.has_doc = true;
            h.doc_id = std::string(flag.substr(4));
        } else if (flag.substr(0, 8) == "queries=") {
            if (!parseSize(flag.substr(8), h.pending_queries) ||
                h.pending_queries == 0)
                badRequest("queries flag");
        } else {
            badRequest("unknown flag '" + std::string(flag) + "'");
        }
    }
    if (h.stats && (h.records || h.count_only || h.limit != 0 ||
                    h.has_length || h.has_doc ||
                    h.pending_queries != 0))
        badRequest("!stats takes no flags");
    if (h.has_doc && !h.has_length)
        badRequest("doc= requires length=");
    if (h.has_doc && h.records)
        badRequest("doc= takes a single document, not records");
    return h;
}

std::string
encodeQueryLine(const std::string& query)
{
    return "query=" + query + "\n";
}

std::string
parseQueryLine(std::string_view line)
{
    if (line.substr(0, 6) != "query=")
        badRequest("expected a query= continuation line");
    std::string_view q = trim(line.substr(6));
    if (q.empty())
        badRequest("empty query in continuation line");
    return std::string(q);
}

std::string
encodeHeader(const RequestHeader& h)
{
    std::string out(kMagic);
    out += ' ';
    // Multiline form: first query on the header line, the rest as
    // query= continuation lines declared by a queries=N flag.
    bool lines = h.multiline && h.queries.size() > 1;
    if (h.stats)
        out += "!stats";
    else if (lines)
        out += h.queries.front();
    else
        out += joinQueries(h.queries);
    if (lines)
        out += " queries=" + std::to_string(h.queries.size() - 1);
    if (h.records)
        out += " records";
    if (h.count_only)
        out += " count";
    if (h.limit != 0)
        out += " limit=" + std::to_string(h.limit);
    if (h.has_length)
        out += " length=" + std::to_string(h.length);
    if (h.has_doc)
        out += " doc=" + h.doc_id;
    out += '\n';
    if (lines) {
        for (size_t i = 1; i < h.queries.size(); ++i)
            out += encodeQueryLine(h.queries[i]);
    }
    return out;
}

std::string
encodeTrailer(const Trailer& t)
{
    std::string out = "end status=";
    out += t.ok ? "ok" : "error";
    if (!t.ok) {
        out += " code=";
        out += errorCodeName(t.code);
        out += " pos=" + std::to_string(t.error_pos);
    }
    out += " matches=" + std::to_string(t.matches);
    out += " bytes_in=" + std::to_string(t.bytes_in);
    out += " ff=";
    for (size_t g = 0; g < t.ff.size(); ++g) {
        if (g != 0)
            out += ',';
        out += std::to_string(t.ff[g]);
    }
    out += " plan=" + t.plan;
    if (!t.index.empty())
        out += " index=" + t.index;
    if (!t.per_query.empty()) {
        out += " per_query=";
        for (size_t i = 0; i < t.per_query.size(); ++i) {
            if (i != 0)
                out += ',';
            out += std::to_string(t.per_query[i]);
        }
    }
    if (!t.qmap.empty()) {
        out += " qmap=";
        for (size_t i = 0; i < t.qmap.size(); ++i) {
            if (i != 0)
                out += ',';
            out += std::to_string(t.qmap[i]);
        }
    }
    out += '\n';
    return out;
}

Trailer
parseTrailer(std::string_view line)
{
    Trailer t;
    std::string_view status = fieldValue(line, "status");
    if (line.substr(0, 4) != "end " ||
        (status != "ok" && status != "error"))
        badRequest("not a trailer line");
    t.ok = status == "ok";
    if (!t.ok) {
        std::string_view code = fieldValue(line, "code");
        if (code.empty())
            badRequest("error trailer without code");
        t.code = errorCodeFromName(code);
        t.error_pos = parseSizeField(line, "pos");
    }
    t.matches = parseSizeField(line, "matches");
    t.bytes_in = parseSizeField(line, "bytes_in");
    std::string_view ff = fieldValue(line, "ff");
    for (size_t g = 0; g < t.ff.size(); ++g) {
        size_t comma = ff.find(',');
        std::string_view part = ff.substr(0, comma);
        size_t v = 0;
        if (!parseSize(part, v))
            badRequest("trailer ff field");
        t.ff[g] = v;
        if (comma == std::string_view::npos) {
            if (g + 1 != t.ff.size())
                badRequest("trailer ff field");
            break;
        }
        ff.remove_prefix(comma + 1);
    }
    std::string_view plan = fieldValue(line, "plan");
    if (plan.empty())
        badRequest("trailer plan field");
    t.plan = std::string(plan);
    t.index = std::string(fieldValue(line, "index"));
    std::string_view per = fieldValue(line, "per_query");
    while (!per.empty()) {
        size_t comma = per.find(',');
        size_t v = 0;
        if (!parseSize(per.substr(0, comma), v))
            badRequest("trailer per_query field");
        t.per_query.push_back(v);
        if (comma == std::string_view::npos)
            break;
        per.remove_prefix(comma + 1);
    }
    std::string_view qmap = fieldValue(line, "qmap");
    while (!qmap.empty()) {
        size_t comma = qmap.find(',');
        size_t v = 0;
        if (!parseSize(qmap.substr(0, comma), v))
            badRequest("trailer qmap field");
        t.qmap.push_back(v);
        if (comma == std::string_view::npos)
            break;
        qmap.remove_prefix(comma + 1);
    }
    return t;
}

std::string
encodeMatch(size_t query_index, std::string_view value)
{
    std::string out = "m " + std::to_string(query_index) + " " +
                      std::to_string(value.size()) + "\n";
    out += value;
    out += '\n';
    return out;
}

void
ResponseParser::feed(std::string_view bytes)
{
    if (done_ && !bytes.empty())
        badRequest("bytes after trailer");
    buf_.append(bytes);
    decode();
}

void
ResponseParser::decode()
{
    for (;;) {
        size_t nl = buf_.find('\n');
        if (nl == std::string::npos)
            return;
        std::string_view line(buf_.data(), nl);
        if (line.substr(0, 2) == "m ") {
            size_t sp = line.find(' ', 2);
            if (sp == std::string_view::npos)
                badRequest("match frame header");
            size_t qi = 0, len = 0;
            if (!parseSize(line.substr(2, sp - 2), qi) ||
                !parseSize(line.substr(sp + 1), len))
                badRequest("match frame header");
            // Value plus its trailing newline must be complete.
            if (buf_.size() < nl + 1 + len + 1)
                return;
            std::string_view value(buf_.data() + nl + 1, len);
            if (buf_[nl + 1 + len] != '\n')
                badRequest("match frame not newline-terminated");
            if (on_match_)
                on_match_(qi, value);
            matches_.emplace_back(qi, std::string(value));
            buf_.erase(0, nl + 1 + len + 1);
        } else if (line.substr(0, 4) == "end ") {
            trailer_ = parseTrailer(line);
            done_ = true;
            if (buf_.size() != nl + 1)
                badRequest("bytes after trailer");
            buf_.clear();
            return;
        } else {
            badRequest("unknown response frame");
        }
    }
}

} // namespace jsonski::service
