/**
 * @file
 * Shard-locked LRU cache of compiled query plans.
 *
 * Parsing a JSONPath list and building the streamer (single-query) or
 * the multi-query trie is pure per-query-text work; under serving
 * traffic the same handful of queries arrive over and over from many
 * connections.  The cache keys on the canonical normalized query *set*
 * (split on top-level commas with the same quote-aware splitter jsq's
 * CLI uses, each query parsed and reprinted in its toString() normal
 * form, then sorted and deduplicated — path::QuerySet::key()), so
 * `$.a, $.b` / `$.b,$.a,$.a` / `$['a'],$.b` and every whitespace
 * spelling of a filter predicate share one entry, and hands out
 * shared_ptr<const Plan> so an entry can be evicted while requests
 * still run on it.  A request's positions are mapped onto the plan's
 * distinct queries with QuerySet::mapOnto() (see PlanCache::get).
 *
 * Sharding, locking, and eviction are util::ShardedLru (shared with
 * the document index cache): the compile runs under the shard lock,
 * which serializes concurrent first-misses of the *same* query into
 * one compile (the counters stay deterministic: N concurrent requests
 * for a fresh query are exactly 1 miss + N-1 hits).
 */
#ifndef JSONSKI_SERVICE_PLAN_CACHE_H
#define JSONSKI_SERVICE_PLAN_CACHE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "path/queryset.h"
#include "ski/multi.h"
#include "ski/streamer.h"
#include "util/sharded_lru.h"

namespace jsonski::service {

/**
 * A compiled, immutable, shareable evaluation plan for one query set.
 * A single *distinct* query carries a Streamer; larger sets a
 * MultiStreamer (both are stateless across run() calls, so one plan
 * serves any number of concurrent requests).  Duplicates in the
 * compiled list collapse, so `$.a,$.a` compiles to a single-query
 * plan; callers map request positions onto the distinct queries with
 * path::QuerySet::mapOnto(query_texts).
 */
struct Plan
{
    /** Canonical query-set key this plan was compiled for. */
    std::string key;

    /** The *distinct* canonical query texts, in compile order. */
    std::vector<std::string> query_texts;

    /** Exactly one of these is set. */
    std::optional<ski::Streamer> single;
    std::optional<ski::MultiStreamer> multi;

    /** Distinct query count (match-frame / per-distinct index range). */
    size_t queryCount() const { return query_texts.size(); }
};

/**
 * Compile @p query_list into a Plan (no cache involved).  This is the
 * one plan-construction path shared by the cache, jsq, and jsqc, so
 * the CLI and the service always agree on query-list syntax.
 *
 * @throws PathError on a malformed query.
 */
std::shared_ptr<const Plan> compilePlan(std::string_view query_list);

/**
 * The plan-cache key for @p query_list: split on top-level commas
 * (quote-aware, so filter string literals may contain commas and
 * brackets), each query parsed and reprinted in its canonical form,
 * then sorted, deduplicated, and re-joined — the *set* normal form, so
 * `$.a,$.b`, `$.b, $['a']`, and `$.b,$.a,$.a` yield the same key.
 *
 * @throws PathError on a malformed query.
 */
std::string canonicalQueryList(std::string_view query_list);

/**
 * Counter snapshot of one PlanCache — summable, so a server holding
 * one cache partition per event-loop shard can report fleet totals.
 */
struct PlanCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t size = 0;

    PlanCacheStats&
    operator+=(const PlanCacheStats& o)
    {
        hits += o.hits;
        misses += o.misses;
        evictions += o.evictions;
        size += o.size;
        return *this;
    }
};

/** See file comment. */
class PlanCache
{
  public:
    static constexpr size_t kShards =
        util::ShardedLru<std::string, Plan>::kShards;

    /**
     * @param capacity Total cached plans across all shards (rounded up
     *                 to at least one per shard).
     */
    explicit PlanCache(size_t capacity = 64) : lru_(capacity) {}

    /**
     * Look up @p query_list, compiling and inserting on a miss.  The
     * key is the order-insensitive set normal form, so `$.a,$.b` and
     * `$.b,$.a,$.a` share one entry.
     *
     * @param was_hit     Out: true when the plan came from the cache.
     * @param request_set Out: the request's normalized QuerySet —
     *        `request_set->mapOnto(plan->query_texts)` yields the
     *        request-position -> distinct-plan-index map the caller
     *        needs to tag frames and fill per-position counts.
     * @throws PathError on a malformed query (nothing is inserted).
     */
    std::shared_ptr<const Plan>
    get(std::string_view query_list, bool* was_hit = nullptr,
        path::QuerySet* request_set = nullptr);

    uint64_t hits() const { return lru_.hits(); }
    uint64_t misses() const { return lru_.misses(); }
    uint64_t evictions() const { return lru_.evictions(); }

    /** Plans currently resident across all shards. */
    size_t size() const { return lru_.entries(); }

    /** All four counters in one summable snapshot. */
    PlanCacheStats
    statsSnapshot() const
    {
        util::LruStats st = lru_.statsSnapshot();
        return PlanCacheStats{st.hits, st.misses, st.evictions,
                              st.entries};
    }

  private:
    util::ShardedLru<std::string, Plan> lru_;
};

} // namespace jsonski::service

#endif // JSONSKI_SERVICE_PLAN_CACHE_H
