#include "service/plan_cache.h"

#include <functional>

#include "path/parser.h"
#include "service/protocol.h"

namespace jsonski::service {

std::shared_ptr<const Plan>
compilePlan(std::string_view query_list)
{
    auto plan = std::make_shared<Plan>();
    std::vector<path::PathQuery> queries;
    for (const std::string& text : splitQueries(query_list)) {
        path::PathQuery q = path::parse(text);
        // Store the parse->print normal form, not the client spelling:
        // toString() is the canonical round trip (ast.h), so every
        // spelling of a query shares one plan key and one trailer text.
        plan->query_texts.push_back(q.toString());
        queries.push_back(std::move(q));
    }
    plan->key = joinQueries(plan->query_texts);
    if (queries.size() == 1)
        plan->single.emplace(std::move(queries[0]));
    else
        plan->multi.emplace(std::move(queries));
    return plan;
}

std::string
canonicalQueryList(std::string_view query_list)
{
    std::vector<std::string> canon;
    for (const std::string& text : splitQueries(query_list))
        canon.push_back(path::parse(text).toString());
    return joinQueries(canon);
}

std::shared_ptr<const Plan>
PlanCache::get(std::string_view query_list, bool* was_hit)
{
    // Normalize to the parse->print canonical form before hashing so
    // every spelling of the same list (`$['a']`, `$.a`, whitespace in
    // a predicate) maps to the same shard and entry.  A malformed
    // query throws here, before anything is counted or inserted.
    // Compiling under the shard lock keeps hit/miss counts exact for
    // concurrent first requests (see header); a PathError escapes
    // before anything is inserted.
    std::string key = canonicalQueryList(query_list);
    return lru_.getOrBuild(
        key, [&key] { return compilePlan(key); }, was_hit);
}

} // namespace jsonski::service
