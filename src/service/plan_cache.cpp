#include "service/plan_cache.h"

#include <functional>

#include "path/parser.h"
#include "service/protocol.h"

namespace jsonski::service {

std::shared_ptr<const Plan>
compilePlan(std::string_view query_list)
{
    auto plan = std::make_shared<Plan>();
    std::vector<path::PathQuery> queries;
    for (const std::string& text : splitQueries(query_list)) {
        path::PathQuery q = path::parse(text);
        // Store the parse->print normal form, not the client spelling:
        // toString() is the canonical round trip (ast.h), so every
        // spelling of a query shares one plan key and one trailer text.
        plan->query_texts.push_back(q.toString());
        queries.push_back(std::move(q));
    }
    plan->key = joinQueries(plan->query_texts);
    if (queries.size() == 1)
        plan->single.emplace(std::move(queries[0]));
    else
        plan->multi.emplace(std::move(queries));
    return plan;
}

std::string
canonicalQueryList(std::string_view query_list)
{
    std::vector<std::string> canon;
    for (const std::string& text : splitQueries(query_list))
        canon.push_back(path::parse(text).toString());
    return joinQueries(canon);
}

PlanCache::PlanCache(size_t capacity)
    : per_shard_capacity_((capacity + kShards - 1) / kShards)
{
    if (per_shard_capacity_ == 0)
        per_shard_capacity_ = 1;
}

PlanCache::Shard&
PlanCache::shardFor(std::string_view key)
{
    return shards_[std::hash<std::string_view>{}(key) % kShards];
}

std::shared_ptr<const Plan>
PlanCache::get(std::string_view query_list, bool* was_hit)
{
    // Normalize to the parse->print canonical form before hashing so
    // every spelling of the same list (`$['a']`, `$.a`, whitespace in
    // a predicate) maps to the same shard and entry.  A malformed
    // query throws here, before anything is counted or inserted.
    std::string key = canonicalQueryList(query_list);
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (was_hit != nullptr)
            *was_hit = true;
        // Move to the front of the LRU list; iterators stay valid.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return *it->second;
    }
    // Compiling under the shard lock keeps hit/miss counts exact for
    // concurrent first requests (see header); a PathError escapes
    // before anything is inserted.
    std::shared_ptr<const Plan> plan = compilePlan(key);
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (was_hit != nullptr)
        *was_hit = false;
    shard.lru.push_front(plan);
    shard.map.emplace(std::string_view(shard.lru.front()->key),
                      shard.lru.begin());
    if (shard.lru.size() > per_shard_capacity_) {
        const std::shared_ptr<const Plan>& victim = shard.lru.back();
        shard.map.erase(std::string_view(victim->key));
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    return plan;
}

size_t
PlanCache::size() const
{
    size_t n = 0;
    for (const Shard& s : shards_) {
        std::lock_guard<std::mutex> lock(
            const_cast<std::mutex&>(s.mutex));
        n += s.lru.size();
    }
    return n;
}

} // namespace jsonski::service
