#include "service/plan_cache.h"

#include <functional>

#include "path/parser.h"
#include "path/queryset.h"
#include "service/protocol.h"

namespace jsonski::service {

std::shared_ptr<const Plan>
compilePlan(std::string_view query_list)
{
    auto plan = std::make_shared<Plan>();
    // Normalize into the distinct set (canonical toString() forms,
    // stable dedup): duplicate spellings of one query share one match
    // stream, and `$.a,$.a` compiles to a single-query plan.
    path::QuerySet set =
        path::QuerySet::fromTexts(splitQueries(query_list));
    plan->query_texts = set.canonical;
    plan->key = set.key();
    if (set.size() == 1)
        plan->single.emplace(std::move(set.distinct[0]));
    else
        plan->multi.emplace(std::move(set));
    return plan;
}

std::string
canonicalQueryList(std::string_view query_list)
{
    return path::QuerySet::fromTexts(splitQueries(query_list)).key();
}

std::shared_ptr<const Plan>
PlanCache::get(std::string_view query_list, bool* was_hit,
               path::QuerySet* request_set)
{
    // Normalize to the order-insensitive set normal form before
    // hashing, so every spelling and ordering of the same set maps to
    // one shard and entry.  A malformed query throws here, before
    // anything is counted or inserted.  Compiling under the shard lock
    // keeps hit/miss counts exact for concurrent first requests (see
    // header); a PathError escapes before anything is inserted.
    path::QuerySet set =
        path::QuerySet::fromTexts(splitQueries(query_list));
    std::string key = set.key();
    if (request_set != nullptr)
        *request_set = std::move(set);
    return lru_.getOrBuild(
        key, [&key] { return compilePlan(key); }, was_hit);
}

} // namespace jsonski::service
