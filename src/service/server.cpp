#include "service/server.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "intervals/chunk_source.h"
#include "kernels/kernel.h"
#include "service/protocol.h"
#include "ski/record_reader.h"
#include "ski/sinks.h"
#include "telemetry/export.h"
#include "util/deadline.h"

namespace jsonski::service {

namespace {

using Clock = std::chrono::steady_clock;

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void
setCloexec(int fd)
{
    int flags = ::fcntl(fd, F_GETFD, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/**
 * accept() wrapper: accept4(SOCK_CLOEXEC | SOCK_NONBLOCK) where the
 * platform has it, the portable two-syscall fallback elsewhere.
 */
int
acceptConn(int listen_fd)
{
#ifdef __linux__
    return ::accept4(listen_fd, nullptr, nullptr,
                     SOCK_CLOEXEC | SOCK_NONBLOCK);
#else
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
        setCloexec(fd);
        setNonBlocking(fd);
    }
    return fd;
#endif
}

/**
 * Close @p fd without losing the response: when the server ends a
 * request early (rejection, malformed body) the client may still be
 * sending, and a plain close() with unread bytes in the receive queue
 * RSTs the connection — destroying the already-sent trailer on the
 * client side.  Half-close the write side first and drain incoming
 * bytes until the peer's EOF or a short deadline.
 */
void
lingeringClose(int fd, int deadline_ms)
{
    ::shutdown(fd, SHUT_WR);
    char buf[4096];
    Clock::time_point end =
        Clock::now() + std::chrono::milliseconds(deadline_ms);
    for (;;) {
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        end - Clock::now())
                        .count();
        if (left <= 0)
            break;
        pollfd pfd{fd, POLLIN, 0};
        int pr = ::poll(&pfd, 1, static_cast<int>(left));
        if (pr <= 0)
            break;
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n == 0)
            break;
        if (n < 0 && errno != EINTR && errno != EAGAIN &&
            errno != EWOULDBLOCK)
            break;
    }
    ::close(fd);
}

/**
 * Readiness multiplexer for a shard loop: epoll on Linux, poll()
 * everywhere else.  The poll variant stays compiled (and runtime-
 * selectable via ServerConfig::force_poll) on Linux too, so the
 * fallback is continuously exercised by the test suite.
 *
 * add() reports failure instead of swallowing it: an EPOLL_CTL_ADD
 * that fails (ENOSPC, ENOMEM) would otherwise leave the connection
 * silently untracked — the fd leaks and the client hangs forever.
 */
class Poller
{
  public:
    virtual ~Poller() = default;

    /** @return false when the fd could not be registered. */
    [[nodiscard]] virtual bool add(int fd) = 0;

    /** @return false when the fd was not deregistered (already gone). */
    virtual bool remove(int fd) = 0;

    /** Wait up to @p timeout_ms (-1 = forever); fds ready to read. */
    virtual void wait(int timeout_ms, std::vector<int>& ready) = 0;
};

class PollPoller final : public Poller
{
  public:
    bool
    add(int fd) override
    {
        fds_.push_back(pollfd{fd, POLLIN, 0});
        return true;
    }

    bool
    remove(int fd) override
    {
        size_t before = fds_.size();
        fds_.erase(std::remove_if(fds_.begin(), fds_.end(),
                                  [fd](const pollfd& p) {
                                      return p.fd == fd;
                                  }),
                   fds_.end());
        return fds_.size() != before;
    }

    void
    wait(int timeout_ms, std::vector<int>& ready) override
    {
        ready.clear();
        int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
        if (n <= 0)
            return;
        for (const pollfd& p : fds_)
            if ((p.revents & (POLLIN | POLLHUP | POLLERR)) != 0)
                ready.push_back(p.fd);
    }

  private:
    std::vector<pollfd> fds_;
};

#ifdef __linux__
class EpollPoller final : public Poller
{
  public:
    EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC))
    {
        if (epfd_ < 0)
            throw std::runtime_error("epoll_create1 failed");
    }

    ~EpollPoller() override { ::close(epfd_); }

    bool
    add(int fd) override
    {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
    }

    bool
    remove(int fd) override
    {
        return ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) == 0;
    }

    void
    wait(int timeout_ms, std::vector<int>& ready) override
    {
        ready.clear();
        epoll_event events[64];
        int n = ::epoll_wait(epfd_, events, 64, timeout_ms);
        for (int i = 0; i < n; ++i)
            ready.push_back(events[i].data.fd);
    }

  private:
    int epfd_;
};
#endif

std::unique_ptr<Poller>
makePoller(bool force_poll)
{
#ifdef __linux__
    if (!force_poll) {
        try {
            return std::make_unique<EpollPoller>();
        } catch (const std::runtime_error&) {
            // epoll_create1 can fail under fd exhaustion; the poll()
            // variant needs no descriptor of its own, so degrade
            // rather than losing the shard.
        }
    }
#else
    (void)force_poll;
#endif
    return std::make_unique<PollPoller>();
}

/** SO_REUSEPORT accept sharding, or the round-robin handoff fallback?
 *  force_poll selects the fallback even on Linux so both accept paths
 *  stay continuously exercised by the same CI. */
bool
useReusePortAccept(const ServerConfig& config)
{
#ifdef __linux__
    return !config.force_poll;
#else
    (void)config;
    return false;
#endif
}

int
makeListener(const std::string& bind_addr, uint16_t port, bool reuseport)
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        throw std::runtime_error("socket() failed");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
#ifdef SO_REUSEPORT
    if (reuseport &&
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) !=
            0) {
        int err = errno;
        ::close(fd);
        throw std::runtime_error("SO_REUSEPORT failed: " +
                                 std::string(std::strerror(err)));
    }
#else
    (void)reuseport;
#endif
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw std::runtime_error("bad bind address " + bind_addr);
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        int err = errno;
        ::close(fd);
        throw std::runtime_error("bind failed: " +
                                 std::string(std::strerror(err)));
    }
    if (::listen(fd, 128) != 0) {
        ::close(fd);
        throw std::runtime_error("listen failed");
    }
    setNonBlocking(fd);
    return fd;
}

uint16_t
boundPort(int listen_fd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    return ntohs(addr.sin_port);
}

/**
 * Thrown internally when the connection itself is unusable (write
 * deadline to a slow reader, socket error): no trailer can be
 * delivered, the connection is just torn down and counted.
 */
struct WriterDead
{
    ErrorCode code;
};

/**
 * Bounded outgoing queue: append() buffers up to the flush threshold,
 * then pushes to the socket.  Each flush() runs under an *absolute*
 * deadline armed when the flush starts: a reader draining one byte per
 * poll window makes progress but never resets the clock, so the flush
 * still expires on schedule (the write-side slow-loris fix — the old
 * per-poll timeout restarted on every drained byte).  This is the
 * slow-reader backpressure contract: buffering is capped, and a client
 * that cannot drain a flush within the deadline gets the connection
 * dropped instead of growing the queue without bound.
 */
class ConnWriter
{
  public:
    ConnWriter(int fd, size_t flush_threshold, int deadline_ms)
        : fd_(fd), threshold_(flush_threshold), deadline_ms_(deadline_ms)
    {}

    void
    append(std::string_view data)
    {
        buf_.append(data);
        if (buf_.size() >= threshold_)
            flush();
    }

    void
    flush()
    {
        Deadline deadline = Deadline::after(deadline_ms_);
        size_t off = 0;
        while (off < buf_.size()) {
            ssize_t n = ::send(fd_, buf_.data() + off, buf_.size() - off,
                               MSG_NOSIGNAL);
            if (n > 0) {
                off += static_cast<size_t>(n);
                total_ += static_cast<uint64_t>(n);
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                if (deadline.expired())
                    throw WriterDead{ErrorCode::DeadlineExpired};
                pollfd pfd{fd_, POLLOUT, 0};
                int pr = ::poll(&pfd, 1, deadline.pollTimeoutMs());
                if (pr == 0)
                    throw WriterDead{ErrorCode::DeadlineExpired};
                if (pr < 0 && errno != EINTR)
                    throw WriterDead{ErrorCode::IoError};
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            throw WriterDead{ErrorCode::IoError};
        }
        buf_.clear();
    }

    uint64_t total() const { return total_; }

  private:
    int fd_;
    std::string buf_;
    size_t threshold_;
    int deadline_ms_;
    uint64_t total_ = 0;
};

/** Serves exactly @p length bytes of @p inner, then reports EOF (the
 *  length-prefixed body framing). */
class BoundedSource final : public intervals::ChunkSource
{
  public:
    BoundedSource(intervals::ChunkSource& inner, size_t length)
        : inner_(inner), remaining_(length)
    {}

    size_t
    read(char* dst, size_t cap) override
    {
        if (remaining_ == 0)
            return 0;
        size_t n = inner_.read(dst, std::min(cap, remaining_));
        remaining_ -= n;
        return n;
    }

  private:
    intervals::ChunkSource& inner_;
    size_t remaining_;
};

/**
 * Match receiver shared by the single- and multi-query paths: frames
 * every match onto the wire (unless count-only), enforces the client's
 * `limit=` via StopStreaming (a successful early end) and the server's
 * max_matches cap via ParseError(MatchLimitExceeded) (a typed
 * rejection).
 */
class WireSink final : public path::MatchSink, public ski::MultiSink
{
  public:
    WireSink(ConnWriter& writer, bool count_only, size_t client_limit,
             size_t server_cap)
        : writer_(writer),
          count_only_(count_only),
          client_limit_(client_limit),
          server_cap_(server_cap)
    {}

    void
    onMatch(std::string_view value) override
    {
        deliver(0, value);
    }

    void
    onMatch(size_t query_index, std::string_view value) override
    {
        deliver(query_index, value);
    }

    size_t count = 0;

    /**
     * Frame tag per distinct plan index — the representative request
     * position of each distinct query, so a request repeating a query
     * sees frames tagged with the first position that asked for it.
     * Identity when unset (duplicate-free lists need no remap).
     */
    void setFrameTags(std::vector<size_t> tags)
    {
        tags_ = std::move(tags);
    }

    /** True once the client-requested limit ended the pass. */
    bool clientLimitReached() const
    {
        return client_limit_ != 0 && count >= client_limit_;
    }

  private:
    void
    deliver(size_t qi, std::string_view value)
    {
        if (server_cap_ != 0 && count >= server_cap_)
            throw ParseError(ErrorCode::MatchLimitExceeded,
                             "server match cap reached", 0);
        ++count;
        if (!count_only_)
            writer_.append(
                encodeMatch(qi < tags_.size() ? tags_[qi] : qi, value));
        if (client_limit_ != 0 && count >= client_limit_)
            throw ski::StopStreaming{};
    }

    ConnWriter& writer_;
    bool count_only_;
    size_t client_limit_;
    size_t server_cap_;
    std::vector<size_t> tags_;
};

/**
 * Read the request header line through @p fd (already known readable),
 * up to @p max_bytes, under an absolute deadline: a client dripping
 * one header byte per poll window cannot hold the slot past the
 * envelope (the old per-poll timeout restarted on every byte).  Bytes
 * past the newline were read from the body and are returned in
 * @p carry; incoming carry bytes are consumed first, so the helper can
 * be called repeatedly to read `query=` continuation lines that arrived
 * in one packet with the header.
 */
std::string
readHeaderLine(int fd, size_t max_bytes, const Deadline& deadline,
               std::string& carry)
{
    std::string buf = std::move(carry);
    carry.clear();
    char tmp[1024];
    for (;;) {
        size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            if (nl > max_bytes)
                throw ParseError(ErrorCode::HeaderTooLarge,
                                 "request header exceeds the byte limit",
                                 nl);
            carry = buf.substr(nl + 1);
            return buf.substr(0, nl);
        }
        if (buf.size() > max_bytes)
            throw ParseError(ErrorCode::HeaderTooLarge,
                             "request header exceeds the byte limit",
                             buf.size());
        if (deadline.expired())
            throw ParseError(ErrorCode::DeadlineExpired,
                             "header read deadline expired", buf.size());
        pollfd pfd{fd, POLLIN, 0};
        int pr = ::poll(&pfd, 1, deadline.pollTimeoutMs());
        if (pr == 0)
            throw ParseError(ErrorCode::DeadlineExpired,
                             "header read deadline expired", buf.size());
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            throw ParseError(ErrorCode::IoError, "poll failed",
                             buf.size());
        }
        ssize_t n = ::read(fd, tmp, sizeof tmp);
        if (n > 0) {
            buf.append(tmp, static_cast<size_t>(n));
            continue;
        }
        if (n == 0)
            throw ParseError(ErrorCode::UnexpectedEnd,
                             "connection closed mid-header", buf.size());
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
            continue;
        throw ParseError(ErrorCode::IoError, "socket read failed",
                         buf.size());
    }
}

} // namespace

ServerStats&
ServerStats::operator+=(const ServerStats& o)
{
    connections_total += o.connections_total;
    requests_total += o.requests_total;
    responses_ok += o.responses_ok;
    responses_error += o.responses_error;
    rejected_bad_request += o.rejected_bad_request;
    rejected_header_too_large += o.rejected_header_too_large;
    rejected_deadline += o.rejected_deadline;
    rejected_too_large += o.rejected_too_large;
    rejected_too_many_queries += o.rejected_too_many_queries;
    multi_query_requests += o.multi_query_requests;
    stats_requests += o.stats_requests;
    idle_closed += o.idle_closed;
    accept_errors += o.accept_errors;
    accept_backoffs += o.accept_backoffs;
    bytes_in_total += o.bytes_in_total;
    bytes_out_total += o.bytes_out_total;
    return *this;
}

/** Everything one event-loop shard owns; see the file comment in
 *  server.h for the topology. */
struct Server::Shard
{
    size_t index;

    /** Own SO_REUSEPORT listener, or -1 (handoff fallback, non-0). */
    int listen_fd = -1;
    int wake_read_fd = -1;
    int wake_write_fd = -1;

    std::thread loop;
    std::unique_ptr<ThreadPool> pool;

    /** Shard-local plan-cache partition: no cross-shard contention. */
    PlanCache plan_cache;

    /** Shard-local document-index cache (doc= requests). */
    index::DocumentIndexCache doc_cache;

    mutable std::mutex stats_mutex;
    ServerStats stats;
    telemetry::Registry telemetry;

    /** Fds handed to this shard (adoptConnection / accept fallback);
     *  the shard loop drains it after every wake. */
    std::mutex handoff_mutex;
    std::vector<int> handoff;

    Shard(size_t idx, size_t plan_capacity, size_t doc_bytes)
        : index(idx), plan_cache(plan_capacity), doc_cache(doc_bytes)
    {}
};

Server::Server(ServerConfig config) : config_(std::move(config))
{
    size_t n = config_.shards;
    if (n == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        n = hw > 0 ? hw : 1;
    }
    // The configured capacity is the fleet total; each shard gets an
    // equal partition (rounded up, at least one plan).
    size_t per_shard = (config_.plan_cache_capacity + n - 1) / n;
    if (per_shard == 0)
        per_shard = 1;
    size_t doc_per_shard = (config_.doc_cache_bytes + n - 1) / n;
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        shards_.push_back(
            std::make_unique<Shard>(i, per_shard, doc_per_shard));
}

Server::~Server()
{
    if (started_.load())
        stop();
    for (auto& sh : shards_) {
        if (sh->wake_read_fd >= 0)
            ::close(sh->wake_read_fd);
        if (sh->wake_write_fd >= 0)
            ::close(sh->wake_write_fd);
        if (sh->listen_fd >= 0)
            ::close(sh->listen_fd);
    }
}

void
Server::start()
{
    assert(!started_.load());
    try {
        if (useReusePortAccept(config_)) {
            // Every shard binds its own listener to one shared port;
            // the kernel spreads incoming connections across them.
            uint16_t bind_port = config_.port;
            for (auto& sh : shards_) {
                sh->listen_fd =
                    makeListener(config_.bind_addr, bind_port, true);
                if (bind_port == 0) {
                    port_ = boundPort(sh->listen_fd);
                    bind_port = port_;
                }
            }
            port_ = boundPort(shards_.front()->listen_fd);
        } else {
            // Single listener on shard 0; accepted fds are handed to
            // the shards round-robin through their wake pipes.
            shards_.front()->listen_fd =
                makeListener(config_.bind_addr, config_.port, false);
            port_ = boundPort(shards_.front()->listen_fd);
        }

        for (auto& sh : shards_) {
            int pipefd[2];
            if (::pipe(pipefd) != 0)
                throw std::runtime_error("pipe failed");
            sh->wake_read_fd = pipefd[0];
            sh->wake_write_fd = pipefd[1];
            setNonBlocking(sh->wake_read_fd);
            setNonBlocking(sh->wake_write_fd);
            setCloexec(sh->wake_read_fd);
            setCloexec(sh->wake_write_fd);
        }
    } catch (...) {
        for (auto& sh : shards_) {
            if (sh->listen_fd >= 0) {
                ::close(sh->listen_fd);
                sh->listen_fd = -1;
            }
            if (sh->wake_read_fd >= 0) {
                ::close(sh->wake_read_fd);
                sh->wake_read_fd = -1;
            }
            if (sh->wake_write_fd >= 0) {
                ::close(sh->wake_write_fd);
                sh->wake_write_fd = -1;
            }
        }
        throw;
    }

    for (auto& sh : shards_)
        sh->pool = std::make_unique<ThreadPool>(
            std::max<size_t>(1, config_.workers));
    stopping_.store(false);
    started_.store(true);
    for (auto& sh : shards_)
        sh->loop = std::thread([this, s = sh.get()] { shardLoop(*s); });
}

void
Server::requestStop() noexcept
{
    stopping_.store(true);
    // Async-signal-safe: the shard vector is immutable after the
    // constructor and write(2) is on the safe list.
    for (auto& sh : shards_) {
        if (sh->wake_write_fd >= 0) {
            char b = 's';
            [[maybe_unused]] ssize_t n =
                ::write(sh->wake_write_fd, &b, 1);
        }
    }
}

void
Server::waitStopped()
{
    for (auto& sh : shards_)
        if (sh->loop.joinable())
            sh->loop.join();
    for (auto& sh : shards_) {
        if (sh->pool) {
            sh->pool->waitIdle(); // let in-flight requests finish
            sh->pool.reset();     // drains the queue, joins the workers
        }
    }
    started_.store(false);
}

void
Server::stop()
{
    requestStop();
    waitStopped();
}

bool
Server::adoptConnection(int fd)
{
    if (stopping_.load() || !started_.load()) {
        ::close(fd);
        return false;
    }
    setNonBlocking(fd);
    Shard& sh = *shards_[next_adopt_.fetch_add(1) % shards_.size()];
    {
        std::lock_guard<std::mutex> lock(sh.handoff_mutex);
        sh.handoff.push_back(fd);
    }
    char b = 'c';
    [[maybe_unused]] ssize_t n = ::write(sh.wake_write_fd, &b, 1);
    return true;
}

void
Server::shardLoop(Shard& sh)
{
    std::unique_ptr<Poller> poller = makePoller(config_.force_poll);
    bool listener_registered =
        sh.listen_fd >= 0 && poller->add(sh.listen_fd);
    if (!poller->add(sh.wake_read_fd)) {
        // Without the wake pipe the shard can neither receive handoffs
        // nor stop promptly; bail out rather than serve half-alive.
        std::lock_guard<std::mutex> lock(sh.stats_mutex);
        ++sh.stats.accept_errors;
        return;
    }

    const bool reuseport = useReusePortAccept(config_);
    uint64_t accept_rr = 0; // round-robin cursor (handoff fallback)
    std::unordered_map<int, Clock::time_point> pending;
    std::vector<int> ready;
    bool accept_paused = false;
    Clock::time_point accept_resume{};

    auto bump = [&sh](uint64_t ServerStats::*field) {
        std::lock_guard<std::mutex> lock(sh.stats_mutex);
        ++(sh.stats.*field);
    };

    auto idleDeadline = [this] {
        return config_.idle_deadline_ms > 0
                   ? Clock::now() + std::chrono::milliseconds(
                                        config_.idle_deadline_ms)
                   : Clock::time_point::max();
    };

    // Take ownership of an incoming connection on *this* shard.
    auto registerConn = [&](int fd) {
        bump(&ServerStats::connections_total);
        if (!poller->add(fd)) {
            // A failed EPOLL_CTL_ADD would leave the connection
            // silently untracked: the fd would leak and the client
            // would hang forever.  Surface it as an accept error and
            // close the fd instead.
            ::close(fd);
            bump(&ServerStats::accept_errors);
            return;
        }
        pending.emplace(fd, idleDeadline());
    };

    // Reap every idle connection now (fd pressure or drain).
    auto reapAllIdle = [&] {
        for (const auto& [fd, dl] : pending) {
            poller->remove(fd);
            ::close(fd);
            bump(&ServerStats::idle_closed);
        }
        pending.clear();
    };

    auto acceptSome = [&] {
        for (;;) {
            int conn = acceptConn(sh.listen_fd);
            if (conn >= 0) {
                if (reuseport) {
                    registerConn(conn);
                } else {
                    // Fallback: this shard owns the only listener;
                    // spread connections round-robin.
                    Shard& target =
                        *shards_[accept_rr++ % shards_.size()];
                    if (&target == &sh) {
                        registerConn(conn);
                    } else {
                        {
                            std::lock_guard<std::mutex> lock(
                                target.handoff_mutex);
                            target.handoff.push_back(conn);
                        }
                        char b = 'c';
                        [[maybe_unused]] ssize_t n =
                            ::write(target.wake_write_fd, &b, 1);
                    }
                }
                continue;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (errno == EMFILE || errno == ENFILE ||
                errno == ENOBUFS || errno == ENOMEM) {
                // Fd exhaustion.  The listener is level-triggered, so
                // retrying immediately would spin at 100% CPU; free
                // what we can (idle connections) and pause accepting
                // briefly.  Connections queue in the kernel backlog
                // meanwhile.
                bump(&ServerStats::accept_backoffs);
                reapAllIdle();
                if (listener_registered) {
                    poller->remove(sh.listen_fd);
                    listener_registered = false;
                }
                accept_paused = true;
                accept_resume =
                    Clock::now() +
                    std::chrono::milliseconds(
                        std::max(1, config_.accept_backoff_ms));
                break;
            }
            bump(&ServerStats::accept_errors);
            break;
        }
    };

    auto drainHandoff = [&] {
        std::vector<int> fds;
        {
            std::lock_guard<std::mutex> lock(sh.handoff_mutex);
            fds.swap(sh.handoff);
        }
        for (int fd : fds)
            registerConn(fd);
    };

    while (!stopping_.load()) {
        Clock::time_point wake_at = Clock::time_point::max();
        for (const auto& [fd, dl] : pending)
            wake_at = std::min(wake_at, dl);
        if (accept_paused)
            wake_at = std::min(wake_at, accept_resume);
        int timeout_ms = -1;
        if (wake_at != Clock::time_point::max()) {
            auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    wake_at - Clock::now())
                    .count();
            timeout_ms =
                static_cast<int>(std::max<long long>(0, left));
        }
        poller->wait(timeout_ms, ready);
        for (int fd : ready) {
            if (fd == sh.wake_read_fd) {
                char drain[64];
                while (::read(sh.wake_read_fd, drain, sizeof drain) >
                       0) {
                }
            } else if (fd == sh.listen_fd) {
                acceptSome();
            } else {
                // First request byte arrived: the worker owns the fd
                // from here.  Skip fds already reaped this round (the
                // EMFILE path may have closed them while they sat in
                // the ready list).
                auto it = pending.find(fd);
                if (it == pending.end())
                    continue;
                pending.erase(it);
                poller->remove(fd);
                sh.pool->submit(
                    [this, &sh, fd] { handleConnection(sh, fd); });
            }
        }
        drainHandoff();
        if (accept_paused && Clock::now() >= accept_resume) {
            accept_paused = false;
            listener_registered =
                sh.listen_fd >= 0 && poller->add(sh.listen_fd);
            if (sh.listen_fd >= 0 && !listener_registered)
                bump(&ServerStats::accept_errors);
        }
        Clock::time_point now = Clock::now();
        for (auto it = pending.begin(); it != pending.end();) {
            if (it->second <= now) {
                poller->remove(it->first);
                ::close(it->first);
                bump(&ServerStats::idle_closed);
                it = pending.erase(it);
            } else {
                ++it;
            }
        }
    }

    // Drain: stop accepting, drop connections that never sent a byte,
    // close fds still queued for handoff.
    if (sh.listen_fd >= 0) {
        if (listener_registered)
            poller->remove(sh.listen_fd);
        ::close(sh.listen_fd);
        sh.listen_fd = -1;
    }
    reapAllIdle();
    {
        std::lock_guard<std::mutex> lock(sh.handoff_mutex);
        for (int fd : sh.handoff)
            ::close(fd);
        sh.handoff.clear();
    }
}

void
Server::bumpOk(Shard& sh, uint64_t bytes_in, uint64_t bytes_out,
               const telemetry::Registry& reg)
{
    std::lock_guard<std::mutex> lock(sh.stats_mutex);
    ++sh.stats.responses_ok;
    sh.stats.bytes_in_total += bytes_in;
    sh.stats.bytes_out_total += bytes_out;
    sh.telemetry.merge(reg);
}

void
Server::bumpError(Shard& sh, uint64_t bytes_in, uint64_t bytes_out,
                  const telemetry::Registry& reg, ErrorCode code)
{
    std::lock_guard<std::mutex> lock(sh.stats_mutex);
    ++sh.stats.responses_error;
    sh.stats.bytes_in_total += bytes_in;
    sh.stats.bytes_out_total += bytes_out;
    sh.telemetry.merge(reg);
    switch (code) {
      case ErrorCode::BadRequest:
        ++sh.stats.rejected_bad_request;
        break;
      case ErrorCode::HeaderTooLarge:
        ++sh.stats.rejected_header_too_large;
        break;
      case ErrorCode::DeadlineExpired:
        ++sh.stats.rejected_deadline;
        break;
      case ErrorCode::RecordTooLarge:
        ++sh.stats.rejected_too_large;
        break;
      case ErrorCode::TooManyQueries:
        ++sh.stats.rejected_too_many_queries;
        break;
      default:
        break;
    }
}

void
Server::handleConnection(Shard& sh, int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    // Deep receive buffer: body ingestion alternates with the sender
    // far less often (matters most when both share a core).
    int buf = 1 << 20;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof buf);
    ConnWriter writer(fd, config_.write_queue_bytes,
                      config_.write_deadline_ms);
    // Early-exit paths linger briefly so the trailer survives a client
    // that is still sending body bytes (see lingeringClose).
    const int linger_ms =
        config_.read_deadline_ms > 0
            ? std::min(config_.read_deadline_ms, 1000)
            : 1000;
    telemetry::Registry reg;
    Trailer trailer;
    trailer.ok = false;
    uint64_t bytes_in = 0;
    try {
        std::string carry;
        std::string header_line;
        RequestHeader header;
        try {
            // Absolute envelope: the whole header must arrive within
            // the deadline, no matter how slowly it drips.
            Deadline header_deadline =
                Deadline::after(config_.read_deadline_ms);
            header_line =
                readHeaderLine(fd, config_.max_header_bytes,
                               header_deadline, carry);
            header = parseHeader(header_line);
            // Enforce the query-set cap *before* reading continuation
            // lines, so a hostile queries=N header cannot make the
            // server buffer an unbounded query set.
            if (config_.max_queries != 0 &&
                header.queries.size() + header.pending_queries >
                    config_.max_queries)
                throw ParseError(ErrorCode::TooManyQueries,
                                 "query list exceeds the server cap",
                                 0);
            for (size_t i = 0; i < header.pending_queries; ++i)
                header.queries.push_back(parseQueryLine(readHeaderLine(
                    fd, config_.max_header_bytes, header_deadline,
                    carry)));
            header.pending_queries = 0;
        } catch (const ParseError& e) {
            trailer.code = e.code();
            trailer.error_pos = e.position();
            writer.append(encodeTrailer(trailer));
            writer.flush();
            bumpError(sh, 0, writer.total(), reg, e.code());
            lingeringClose(fd, linger_ms);
            return;
        }
        {
            std::lock_guard<std::mutex> lock(sh.stats_mutex);
            ++sh.stats.requests_total;
        }

        if (header.stats) {
            {
                std::lock_guard<std::mutex> lock(sh.stats_mutex);
                ++sh.stats.stats_requests;
            }
            writer.append(metricsText());
            writer.flush();
            bumpOk(sh, 0, writer.total(), reg);
            ::close(fd);
            return;
        }

        if (header.queries.size() > 1) {
            std::lock_guard<std::mutex> lock(sh.stats_mutex);
            ++sh.stats.multi_query_requests;
        }

        bool plan_hit = false;
        std::shared_ptr<const Plan> plan;
        path::QuerySet request_set;
        try {
            plan = sh.plan_cache.get(joinQueries(header.queries),
                                     &plan_hit, &request_set);
        } catch (const PathError&) {
            trailer.code = ErrorCode::BadRequest;
            trailer.error_pos = 0;
            writer.append(encodeTrailer(trailer));
            writer.flush();
            bumpError(sh, 0, writer.total(), reg,
                      ErrorCode::BadRequest);
            lingeringClose(fd, linger_ms);
            return;
        }
        trailer.plan = plan_hit ? "hit" : "miss";

        // Map request positions onto the plan's distinct queries (the
        // plan is compiled from the sorted, deduplicated set key, so
        // its order need not match the request's) and pick each
        // distinct query's representative: the first request position
        // asking for it, which tags its match frames.
        std::vector<size_t> plan_id =
            request_set.mapOnto(plan->query_texts);
        std::vector<size_t> rep(plan->queryCount(), 0);
        for (size_t i = plan_id.size(); i-- > 0;)
            rep[plan_id[i]] = i;

        // The body gets its own absolute envelope, re-armed now: the
        // entire stream must complete within read_deadline_ms.
        intervals::SocketChunkSource socket_src(
            fd, Deadline::after(config_.read_deadline_ms),
            config_.max_body_bytes, carry);
        BoundedSource bounded_src(socket_src, header.length);
        intervals::ChunkSource& src =
            header.has_length
                ? static_cast<intervals::ChunkSource&>(bounded_src)
                : socket_src;

        WireSink sink(writer, header.count_only, header.limit,
                      config_.max_matches);
        sink.setFrameTags(rep);
        ski::FastForwardStats stats;
        // Match counts per *distinct* plan index; the trailer expands
        // them to one entry per request position (duplicates repeat).
        std::vector<size_t> dist_counts(plan->queryCount(), 0);
        auto fillPerQuery = [&](Trailer& t) {
            if (header.queries.size() < 2)
                return;
            t.per_query.resize(plan_id.size());
            t.qmap.resize(plan_id.size());
            for (size_t i = 0; i < plan_id.size(); ++i) {
                t.per_query[i] = dist_counts[plan_id[i]];
                t.qmap[i] = rep[plan_id[i]];
            }
        };
        try {
            telemetry::Scope scope(reg);
            if (header.records) {
                ski::RecordReader reader(src, config_.chunk_bytes);
                std::string_view record;
                while (reader.next(record)) {
                    if (plan->single) {
                        ski::StreamResult r =
                            plan->single->run(record, &sink);
                        stats.merge(r.stats);
                        dist_counts[0] = sink.count;
                    } else {
                        ski::MultiStreamer::Result r =
                            plan->multi->run(record, &sink);
                        stats.merge(r.stats);
                        for (size_t qi = 0; qi < r.matches.size(); ++qi)
                            dist_counts[qi] += r.matches[qi];
                    }
                    if (sink.clientLimitReached())
                        break;
                }
            } else if (header.has_doc) {
                // doc= : a repeat-query document.  Materialize the
                // sized body (bounded by max_doc_bytes), consult the
                // shard's index cache, and answer skips from the
                // cached semi-index when the document supports one.
                trailer.index = "none";
                if (header.length > config_.max_doc_bytes)
                    throw ParseError(
                        ErrorCode::RecordTooLarge,
                        "doc= body exceeds the resident document cap",
                        0);
                std::string body;
                body.reserve(header.length);
                std::vector<char> buf(
                    std::min<size_t>(config_.chunk_bytes,
                                     header.length == 0
                                         ? size_t{1}
                                         : header.length));
                for (size_t n = 0;
                     (n = src.read(buf.data(), buf.size())) != 0;)
                    body.append(buf.data(), n);
                if (body.size() != header.length)
                    throw ParseError(ErrorCode::UnexpectedEnd,
                                     "connection closed mid-body",
                                     body.size());
                std::shared_ptr<const index::StructuralIndex> ix;
                bool was_hit = false;
                if (config_.doc_cache_bytes != 0 && plan->single)
                    ix = sh.doc_cache.get(body, &was_hit);
                // docSize() guards the (astronomically unlikely)
                // same-hash different-length collision; the hash
                // itself is the cache key, so it already matches.
                if (ix && ix->usable() &&
                    ix->docSize() == body.size()) {
                    trailer.index = was_hit ? "hit" : "miss";
                    ski::StreamResult r =
                        plan->single->runIndexed(body, *ix, &sink);
                    stats.merge(r.stats);
                    dist_counts[0] = sink.count;
                } else if (plan->single) {
                    ski::StreamResult r =
                        plan->single->run(body, &sink);
                    stats.merge(r.stats);
                    dist_counts[0] = sink.count;
                } else {
                    // Multi-query doc= requests stream the resident
                    // bytes; the semi-index only serves the
                    // single-query skipper today.
                    ski::MultiStreamer::Result r =
                        plan->multi->run(body, &sink);
                    stats.merge(r.stats);
                    dist_counts = r.matches;
                }
            } else if (plan->single) {
                ski::StreamResult r =
                    plan->single->run(src, &sink, config_.chunk_bytes);
                stats.merge(r.stats);
                dist_counts[0] = sink.count;
            } else {
                ski::MultiStreamer::Result r =
                    plan->multi->run(src, &sink, config_.chunk_bytes);
                stats.merge(r.stats);
                dist_counts = r.matches;
            }
            bytes_in = socket_src.delivered();
        } catch (const ParseError& e) {
            bytes_in = socket_src.delivered();
            trailer.code = e.code();
            trailer.error_pos = e.position();
            trailer.matches = sink.count;
            trailer.bytes_in = bytes_in;
            trailer.ff = stats.skipped;
            fillPerQuery(trailer);
            writer.append(encodeTrailer(trailer));
            writer.flush();
            bumpError(sh, bytes_in, writer.total(), reg, e.code());
            lingeringClose(fd, linger_ms);
            return;
        }

        trailer.ok = true;
        trailer.matches = sink.count;
        trailer.bytes_in = bytes_in;
        trailer.ff = stats.skipped;
        fillPerQuery(trailer);
        writer.append(encodeTrailer(trailer));
        writer.flush();
        bumpOk(sh, bytes_in, writer.total(), reg);
        lingeringClose(fd, linger_ms);
    } catch (const WriterDead& dead) {
        // The connection itself failed (slow reader, socket error);
        // nothing more can be delivered.
        bumpError(sh, bytes_in, writer.total(), reg, dead.code);
        ::close(fd);
    } catch (...) {
        // Unexpected escape: never take the worker down; sever the
        // connection so the client sees a hard close, not a trailer.
        bumpError(sh, bytes_in, writer.total(), reg,
                  ErrorCode::Unspecified);
        ::close(fd);
    }
}

ServerStats
Server::stats() const
{
    ServerStats total;
    for (const auto& sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->stats_mutex);
        total += sh->stats;
    }
    return total;
}

const PlanCache&
Server::planCache() const
{
    return shards_.front()->plan_cache;
}

PlanCacheStats
Server::planCacheTotals() const
{
    PlanCacheStats total;
    for (const auto& sh : shards_)
        total += sh->plan_cache.statsSnapshot();
    return total;
}

index::DocumentIndexCacheStats
Server::docCacheTotals() const
{
    index::DocumentIndexCacheStats total;
    for (const auto& sh : shards_)
        total += sh->doc_cache.statsSnapshot();
    return total;
}

std::string
Server::metricsText() const
{
    ServerStats total;
    std::vector<ServerStats> per_shard;
    per_shard.reserve(shards_.size());
    telemetry::Registry merged;
    for (const auto& sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->stats_mutex);
        per_shard.push_back(sh->stats);
        total += sh->stats;
        merged.merge(sh->telemetry);
    }
    PlanCacheStats pc = planCacheTotals();

    std::string out;
    auto gauge = [&out](const char* name, uint64_t v) {
        out += "# TYPE jsonski_server_";
        out += name;
        out += " counter\njsonski_server_";
        out += name;
        out += ' ';
        out += std::to_string(v);
        out += '\n';
    };
    // One series per shard: `name{shard="i"}` for the counters that
    // show whether traffic is actually spreading across the shards.
    auto shardGauge = [&](const char* name,
                          uint64_t ServerStats::*field) {
        out += "# TYPE jsonski_server_shard_";
        out += name;
        out += " counter\n";
        for (size_t i = 0; i < per_shard.size(); ++i) {
            out += "jsonski_server_shard_";
            out += name;
            out += "{shard=\"";
            out += std::to_string(i);
            out += "\"} ";
            out += std::to_string(per_shard[i].*field);
            out += '\n';
        }
    };
    // Which SIMD kernel this daemon is running on — the service-smoke
    // script scrapes this to confirm the dispatch decision end to end.
    out += "# TYPE jsonski_server_kernel_info gauge\n"
           "jsonski_server_kernel_info{kernel=\"";
    out += kernels::activeName();
    out += "\"} 1\n";
    out += "# TYPE jsonski_server_shards gauge\n"
           "jsonski_server_shards ";
    out += std::to_string(shards_.size());
    out += '\n';
    gauge("connections_total", total.connections_total);
    gauge("requests_total", total.requests_total);
    gauge("responses_ok", total.responses_ok);
    gauge("responses_error", total.responses_error);
    gauge("rejected_bad_request", total.rejected_bad_request);
    gauge("rejected_header_too_large", total.rejected_header_too_large);
    gauge("rejected_deadline", total.rejected_deadline);
    gauge("rejected_too_large", total.rejected_too_large);
    gauge("rejected_too_many_queries",
          total.rejected_too_many_queries);
    gauge("multi_query_requests", total.multi_query_requests);
    gauge("stats_requests", total.stats_requests);
    gauge("idle_closed", total.idle_closed);
    gauge("accept_errors", total.accept_errors);
    gauge("accept_backoffs", total.accept_backoffs);
    gauge("bytes_in_total", total.bytes_in_total);
    gauge("bytes_out_total", total.bytes_out_total);
    gauge("plan_cache_hits", pc.hits);
    gauge("plan_cache_misses", pc.misses);
    gauge("plan_cache_evictions", pc.evictions);
    gauge("plan_cache_size", pc.size);
    index::DocumentIndexCacheStats dc = docCacheTotals();
    gauge("doc_index_cache_hits", dc.hits);
    gauge("doc_index_cache_misses", dc.misses);
    gauge("doc_index_cache_evictions", dc.evictions);
    gauge("doc_index_cache_entries", dc.entries);
    gauge("doc_index_cache_bytes", dc.bytes);
    shardGauge("connections_total", &ServerStats::connections_total);
    shardGauge("requests_total", &ServerStats::requests_total);
    shardGauge("responses_ok", &ServerStats::responses_ok);
    shardGauge("responses_error", &ServerStats::responses_error);
    out += telemetry::toPrometheus(merged);
    return out;
}

} // namespace jsonski::service
