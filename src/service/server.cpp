#include "service/server.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "intervals/chunk_source.h"
#include "kernels/kernel.h"
#include "service/protocol.h"
#include "ski/record_reader.h"
#include "ski/sinks.h"
#include "telemetry/export.h"

namespace jsonski::service {

namespace {

using Clock = std::chrono::steady_clock;

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/**
 * Close @p fd without losing the response: when the server ends a
 * request early (rejection, malformed body) the client may still be
 * sending, and a plain close() with unread bytes in the receive queue
 * RSTs the connection — destroying the already-sent trailer on the
 * client side.  Half-close the write side first and drain incoming
 * bytes until the peer's EOF or a short deadline.
 */
void
lingeringClose(int fd, int deadline_ms)
{
    ::shutdown(fd, SHUT_WR);
    char buf[4096];
    Clock::time_point end =
        Clock::now() + std::chrono::milliseconds(deadline_ms);
    for (;;) {
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        end - Clock::now())
                        .count();
        if (left <= 0)
            break;
        pollfd pfd{fd, POLLIN, 0};
        int pr = ::poll(&pfd, 1, static_cast<int>(left));
        if (pr <= 0)
            break;
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n == 0)
            break;
        if (n < 0 && errno != EINTR && errno != EAGAIN &&
            errno != EWOULDBLOCK)
            break;
    }
    ::close(fd);
}

/**
 * Readiness multiplexer for the event loop: epoll on Linux, poll()
 * everywhere else.  The poll variant stays compiled (and runtime-
 * selectable via ServerConfig::force_poll) on Linux too, so the
 * fallback is continuously exercised by the test suite.
 */
class Poller
{
  public:
    virtual ~Poller() = default;
    virtual void add(int fd) = 0;
    virtual void remove(int fd) = 0;

    /** Wait up to @p timeout_ms (-1 = forever); fds ready to read. */
    virtual void wait(int timeout_ms, std::vector<int>& ready) = 0;
};

class PollPoller final : public Poller
{
  public:
    void
    add(int fd) override
    {
        fds_.push_back(pollfd{fd, POLLIN, 0});
    }

    void
    remove(int fd) override
    {
        fds_.erase(std::remove_if(fds_.begin(), fds_.end(),
                                  [fd](const pollfd& p) {
                                      return p.fd == fd;
                                  }),
                   fds_.end());
    }

    void
    wait(int timeout_ms, std::vector<int>& ready) override
    {
        ready.clear();
        int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
        if (n <= 0)
            return;
        for (const pollfd& p : fds_)
            if ((p.revents & (POLLIN | POLLHUP | POLLERR)) != 0)
                ready.push_back(p.fd);
    }

  private:
    std::vector<pollfd> fds_;
};

#ifdef __linux__
class EpollPoller final : public Poller
{
  public:
    EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC))
    {
        if (epfd_ < 0)
            throw std::runtime_error("epoll_create1 failed");
    }

    ~EpollPoller() override { ::close(epfd_); }

    void
    add(int fd) override
    {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
    }

    void
    remove(int fd) override
    {
        ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    }

    void
    wait(int timeout_ms, std::vector<int>& ready) override
    {
        ready.clear();
        epoll_event events[64];
        int n = ::epoll_wait(epfd_, events, 64, timeout_ms);
        for (int i = 0; i < n; ++i)
            ready.push_back(events[i].data.fd);
    }

  private:
    int epfd_;
};
#endif

std::unique_ptr<Poller>
makePoller(bool force_poll)
{
#ifdef __linux__
    if (!force_poll)
        return std::make_unique<EpollPoller>();
#else
    (void)force_poll;
#endif
    return std::make_unique<PollPoller>();
}

/**
 * Thrown internally when the connection itself is unusable (write
 * deadline to a slow reader, socket error): no trailer can be
 * delivered, the connection is just torn down and counted.
 */
struct WriterDead
{
    ErrorCode code;
};

/**
 * Bounded outgoing queue: append() buffers up to the flush threshold,
 * then pushes to the socket under the write deadline.  This is the
 * slow-reader backpressure contract — buffering is capped, and a
 * client that stops reading for longer than the deadline gets the
 * connection dropped instead of growing the queue without bound.
 */
class ConnWriter
{
  public:
    ConnWriter(int fd, size_t flush_threshold, int deadline_ms)
        : fd_(fd), threshold_(flush_threshold), deadline_ms_(deadline_ms)
    {}

    void
    append(std::string_view data)
    {
        buf_.append(data);
        if (buf_.size() >= threshold_)
            flush();
    }

    void
    flush()
    {
        size_t off = 0;
        while (off < buf_.size()) {
            ssize_t n = ::send(fd_, buf_.data() + off, buf_.size() - off,
                               MSG_NOSIGNAL);
            if (n > 0) {
                off += static_cast<size_t>(n);
                total_ += static_cast<uint64_t>(n);
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                pollfd pfd{fd_, POLLOUT, 0};
                int pr = ::poll(&pfd, 1,
                                deadline_ms_ > 0 ? deadline_ms_ : -1);
                if (pr == 0)
                    throw WriterDead{ErrorCode::DeadlineExpired};
                if (pr < 0 && errno != EINTR)
                    throw WriterDead{ErrorCode::IoError};
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            throw WriterDead{ErrorCode::IoError};
        }
        buf_.clear();
    }

    uint64_t total() const { return total_; }

  private:
    int fd_;
    std::string buf_;
    size_t threshold_;
    int deadline_ms_;
    uint64_t total_ = 0;
};

/** Serves exactly @p length bytes of @p inner, then reports EOF (the
 *  length-prefixed body framing). */
class BoundedSource final : public intervals::ChunkSource
{
  public:
    BoundedSource(intervals::ChunkSource& inner, size_t length)
        : inner_(inner), remaining_(length)
    {}

    size_t
    read(char* dst, size_t cap) override
    {
        if (remaining_ == 0)
            return 0;
        size_t n = inner_.read(dst, std::min(cap, remaining_));
        remaining_ -= n;
        return n;
    }

  private:
    intervals::ChunkSource& inner_;
    size_t remaining_;
};

/**
 * Match receiver shared by the single- and multi-query paths: frames
 * every match onto the wire (unless count-only), enforces the client's
 * `limit=` via StopStreaming (a successful early end) and the server's
 * max_matches cap via ParseError(MatchLimitExceeded) (a typed
 * rejection).
 */
class WireSink final : public path::MatchSink, public ski::MultiSink
{
  public:
    WireSink(ConnWriter& writer, bool count_only, size_t client_limit,
             size_t server_cap)
        : writer_(writer),
          count_only_(count_only),
          client_limit_(client_limit),
          server_cap_(server_cap)
    {}

    void
    onMatch(std::string_view value) override
    {
        deliver(0, value);
    }

    void
    onMatch(size_t query_index, std::string_view value) override
    {
        deliver(query_index, value);
    }

    size_t count = 0;

    /** True once the client-requested limit ended the pass. */
    bool clientLimitReached() const
    {
        return client_limit_ != 0 && count >= client_limit_;
    }

  private:
    void
    deliver(size_t qi, std::string_view value)
    {
        if (server_cap_ != 0 && count >= server_cap_)
            throw ParseError(ErrorCode::MatchLimitExceeded,
                             "server match cap reached", 0);
        ++count;
        if (!count_only_)
            writer_.append(encodeMatch(qi, value));
        if (client_limit_ != 0 && count >= client_limit_)
            throw ski::StopStreaming{};
    }

    ConnWriter& writer_;
    bool count_only_;
    size_t client_limit_;
    size_t server_cap_;
};

/**
 * Read the request header line through @p fd (already known readable),
 * up to @p max_bytes.  Bytes past the newline were read from the body
 * and are returned in @p carry.
 */
std::string
readHeaderLine(int fd, size_t max_bytes, int deadline_ms,
               std::string& carry)
{
    std::string buf;
    char tmp[1024];
    for (;;) {
        size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            if (nl > max_bytes)
                throw ParseError(ErrorCode::HeaderTooLarge,
                                 "request header exceeds the byte limit",
                                 nl);
            carry = buf.substr(nl + 1);
            return buf.substr(0, nl);
        }
        if (buf.size() > max_bytes)
            throw ParseError(ErrorCode::HeaderTooLarge,
                             "request header exceeds the byte limit",
                             buf.size());
        pollfd pfd{fd, POLLIN, 0};
        int pr = ::poll(&pfd, 1, deadline_ms > 0 ? deadline_ms : -1);
        if (pr == 0)
            throw ParseError(ErrorCode::DeadlineExpired,
                             "header read deadline expired", buf.size());
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            throw ParseError(ErrorCode::IoError, "poll failed",
                             buf.size());
        }
        ssize_t n = ::read(fd, tmp, sizeof tmp);
        if (n > 0) {
            buf.append(tmp, static_cast<size_t>(n));
            continue;
        }
        if (n == 0)
            throw ParseError(ErrorCode::UnexpectedEnd,
                             "connection closed mid-header", buf.size());
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
            continue;
        throw ParseError(ErrorCode::IoError, "socket read failed",
                         buf.size());
    }
}

} // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      plan_cache_(config_.plan_cache_capacity)
{}

Server::~Server()
{
    if (started_.load())
        stop();
    if (wake_read_fd_ >= 0)
        ::close(wake_read_fd_);
    if (wake_write_fd_ >= 0)
        ::close(wake_write_fd_);
}

void
Server::start()
{
    assert(!started_.load());
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0)
        throw std::runtime_error("socket() failed");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bind_addr.c_str(), &addr.sin_addr) !=
        1)
        throw std::runtime_error("bad bind address " + config_.bind_addr);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0)
        throw std::runtime_error("bind failed: " +
                                 std::string(std::strerror(errno)));
    if (::listen(listen_fd_, 128) != 0)
        throw std::runtime_error("listen failed");
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    setNonBlocking(listen_fd_);

    int pipefd[2];
    if (::pipe(pipefd) != 0)
        throw std::runtime_error("pipe failed");
    wake_read_fd_ = pipefd[0];
    wake_write_fd_ = pipefd[1];
    setNonBlocking(wake_read_fd_);
    setNonBlocking(wake_write_fd_);

    pool_ = std::make_unique<ThreadPool>(std::max<size_t>(1,
                                                          config_.workers));
    started_.store(true);
    loop_thread_ = std::thread([this] { eventLoop(); });
}

void
Server::requestStop() noexcept
{
    stopping_.store(true);
    if (wake_write_fd_ >= 0) {
        char b = 's';
        // Best-effort wake; the pipe being full already wakes the loop.
        [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &b, 1);
    }
}

void
Server::waitStopped()
{
    if (loop_thread_.joinable())
        loop_thread_.join();
    if (pool_) {
        pool_->waitIdle(); // let in-flight requests finish
        pool_.reset();     // drains the queue and joins the workers
    }
    started_.store(false);
}

void
Server::stop()
{
    requestStop();
    waitStopped();
}

bool
Server::adoptConnection(int fd)
{
    if (stopping_.load() || !started_.load()) {
        ::close(fd);
        return false;
    }
    setNonBlocking(fd);
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.connections_total;
    }
    pool_->submit([this, fd] { handleConnection(fd); });
    return true;
}

void
Server::eventLoop()
{
    std::unique_ptr<Poller> poller = makePoller(config_.force_poll);
    poller->add(listen_fd_);
    poller->add(wake_read_fd_);

    std::unordered_map<int, Clock::time_point> pending;
    std::vector<int> ready;
    while (!stopping_.load()) {
        int timeout_ms = -1;
        if (!pending.empty() && config_.idle_deadline_ms > 0) {
            Clock::time_point first = Clock::time_point::max();
            for (const auto& [fd, dl] : pending)
                first = std::min(first, dl);
            auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            first - Clock::now())
                            .count();
            timeout_ms = static_cast<int>(std::max<long long>(0, left));
        }
        poller->wait(timeout_ms, ready);
        for (int fd : ready) {
            if (fd == wake_read_fd_) {
                char drain[64];
                while (::read(wake_read_fd_, drain, sizeof drain) > 0) {
                }
            } else if (fd == listen_fd_) {
                for (;;) {
                    int conn = ::accept(listen_fd_, nullptr, nullptr);
                    if (conn < 0)
                        break;
                    setNonBlocking(conn);
                    {
                        std::lock_guard<std::mutex> lock(stats_mutex_);
                        ++stats_.connections_total;
                    }
                    pending.emplace(
                        conn,
                        Clock::now() + std::chrono::milliseconds(
                                           config_.idle_deadline_ms));
                    poller->add(conn);
                }
            } else {
                // First request byte arrived: the worker owns the fd
                // from here.
                poller->remove(fd);
                pending.erase(fd);
                pool_->submit([this, fd] { handleConnection(fd); });
            }
        }
        if (config_.idle_deadline_ms > 0) {
            Clock::time_point now = Clock::now();
            for (auto it = pending.begin(); it != pending.end();) {
                if (it->second <= now) {
                    poller->remove(it->first);
                    ::close(it->first);
                    {
                        std::lock_guard<std::mutex> lock(stats_mutex_);
                        ++stats_.idle_closed;
                    }
                    it = pending.erase(it);
                } else {
                    ++it;
                }
            }
        }
    }
    // Drain: stop accepting, drop connections that never sent a byte.
    poller->remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
    for (const auto& [fd, dl] : pending) {
        poller->remove(fd);
        ::close(fd);
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.idle_closed;
    }
}

void
Server::bumpOk(uint64_t bytes_in, uint64_t bytes_out,
               const telemetry::Registry& reg)
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.responses_ok;
    stats_.bytes_in_total += bytes_in;
    stats_.bytes_out_total += bytes_out;
    merged_telemetry_.merge(reg);
}

void
Server::bumpError(uint64_t bytes_in, uint64_t bytes_out,
                  const telemetry::Registry& reg, ErrorCode code)
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.responses_error;
    stats_.bytes_in_total += bytes_in;
    stats_.bytes_out_total += bytes_out;
    merged_telemetry_.merge(reg);
    switch (code) {
      case ErrorCode::BadRequest:
        ++stats_.rejected_bad_request;
        break;
      case ErrorCode::HeaderTooLarge:
        ++stats_.rejected_header_too_large;
        break;
      case ErrorCode::DeadlineExpired:
        ++stats_.rejected_deadline;
        break;
      case ErrorCode::RecordTooLarge:
        ++stats_.rejected_too_large;
        break;
      default:
        break;
    }
}

void
Server::handleConnection(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    // Deep receive buffer: body ingestion alternates with the sender
    // far less often (matters most when both share a core).
    int buf = 1 << 20;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof buf);
    ConnWriter writer(fd, config_.write_queue_bytes,
                      config_.write_deadline_ms);
    // Early-exit paths linger briefly so the trailer survives a client
    // that is still sending body bytes (see lingeringClose).
    const int linger_ms =
        config_.read_deadline_ms > 0
            ? std::min(config_.read_deadline_ms, 1000)
            : 1000;
    telemetry::Registry reg;
    Trailer trailer;
    trailer.ok = false;
    uint64_t bytes_in = 0;
    try {
        std::string carry;
        std::string header_line;
        RequestHeader header;
        try {
            header_line =
                readHeaderLine(fd, config_.max_header_bytes,
                               config_.read_deadline_ms, carry);
            header = parseHeader(header_line);
        } catch (const ParseError& e) {
            trailer.code = e.code();
            trailer.error_pos = e.position();
            writer.append(encodeTrailer(trailer));
            writer.flush();
            bumpError(0, writer.total(), reg, e.code());
            lingeringClose(fd, linger_ms);
            return;
        }
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.requests_total;
        }

        if (header.stats) {
            {
                std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.stats_requests;
            }
            writer.append(metricsText());
            writer.flush();
            bumpOk(0, writer.total(), reg);
            ::close(fd);
            return;
        }

        bool plan_hit = false;
        std::shared_ptr<const Plan> plan;
        try {
            plan = plan_cache_.get(joinQueries(header.queries),
                                   &plan_hit);
        } catch (const PathError&) {
            trailer.code = ErrorCode::BadRequest;
            trailer.error_pos = 0;
            writer.append(encodeTrailer(trailer));
            writer.flush();
            bumpError(0, writer.total(), reg, ErrorCode::BadRequest);
            lingeringClose(fd, linger_ms);
            return;
        }
        trailer.plan = plan_hit ? "hit" : "miss";

        intervals::SocketChunkSource socket_src(
            fd, config_.read_deadline_ms, config_.max_body_bytes, carry);
        BoundedSource bounded_src(socket_src, header.length);
        intervals::ChunkSource& src =
            header.has_length
                ? static_cast<intervals::ChunkSource&>(bounded_src)
                : socket_src;

        WireSink sink(writer, header.count_only, header.limit,
                      config_.max_matches);
        ski::FastForwardStats stats;
        std::vector<size_t> per_query(plan->queryCount(), 0);
        try {
            telemetry::Scope scope(reg);
            if (header.records) {
                ski::RecordReader reader(src, config_.chunk_bytes);
                std::string_view record;
                while (reader.next(record)) {
                    if (plan->single) {
                        ski::StreamResult r =
                            plan->single->run(record, &sink);
                        stats.merge(r.stats);
                        per_query[0] = sink.count;
                    } else {
                        ski::MultiStreamer::Result r =
                            plan->multi->run(record, &sink);
                        stats.merge(r.stats);
                        for (size_t qi = 0; qi < r.matches.size(); ++qi)
                            per_query[qi] += r.matches[qi];
                    }
                    if (sink.clientLimitReached())
                        break;
                }
            } else if (plan->single) {
                ski::StreamResult r =
                    plan->single->run(src, &sink, config_.chunk_bytes);
                stats.merge(r.stats);
                per_query[0] = sink.count;
            } else {
                ski::MultiStreamer::Result r =
                    plan->multi->run(src, &sink, config_.chunk_bytes);
                stats.merge(r.stats);
                per_query = r.matches;
            }
            bytes_in = socket_src.delivered();
        } catch (const ParseError& e) {
            bytes_in = socket_src.delivered();
            trailer.code = e.code();
            trailer.error_pos = e.position();
            trailer.matches = sink.count;
            trailer.bytes_in = bytes_in;
            trailer.ff = stats.skipped;
            if (plan->queryCount() > 1)
                trailer.per_query = per_query;
            writer.append(encodeTrailer(trailer));
            writer.flush();
            bumpError(bytes_in, writer.total(), reg, e.code());
            lingeringClose(fd, linger_ms);
            return;
        }

        trailer.ok = true;
        trailer.matches = sink.count;
        trailer.bytes_in = bytes_in;
        trailer.ff = stats.skipped;
        if (plan->queryCount() > 1)
            trailer.per_query = per_query;
        writer.append(encodeTrailer(trailer));
        writer.flush();
        bumpOk(bytes_in, writer.total(), reg);
        lingeringClose(fd, linger_ms);
    } catch (const WriterDead& dead) {
        // The connection itself failed (slow reader, socket error);
        // nothing more can be delivered.
        bumpError(bytes_in, writer.total(), reg, dead.code);
        ::close(fd);
    } catch (...) {
        // Unexpected escape: never take the worker down; sever the
        // connection so the client sees a hard close, not a trailer.
        bumpError(bytes_in, writer.total(), reg, ErrorCode::Unspecified);
        ::close(fd);
    }
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
}

std::string
Server::metricsText() const
{
    ServerStats s;
    std::string telemetry_page;
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        s = stats_;
        telemetry_page = telemetry::toPrometheus(merged_telemetry_);
    }
    std::string out;
    auto gauge = [&out](const char* name, uint64_t v) {
        out += "# TYPE jsonski_server_";
        out += name;
        out += " counter\njsonski_server_";
        out += name;
        out += ' ';
        out += std::to_string(v);
        out += '\n';
    };
    // Which SIMD kernel this daemon is running on — the service-smoke
    // script scrapes this to confirm the dispatch decision end to end.
    out += "# TYPE jsonski_server_kernel_info gauge\n"
           "jsonski_server_kernel_info{kernel=\"";
    out += kernels::activeName();
    out += "\"} 1\n";
    gauge("connections_total", s.connections_total);
    gauge("requests_total", s.requests_total);
    gauge("responses_ok", s.responses_ok);
    gauge("responses_error", s.responses_error);
    gauge("rejected_bad_request", s.rejected_bad_request);
    gauge("rejected_header_too_large", s.rejected_header_too_large);
    gauge("rejected_deadline", s.rejected_deadline);
    gauge("rejected_too_large", s.rejected_too_large);
    gauge("stats_requests", s.stats_requests);
    gauge("idle_closed", s.idle_closed);
    gauge("bytes_in_total", s.bytes_in_total);
    gauge("bytes_out_total", s.bytes_out_total);
    gauge("plan_cache_hits", plan_cache_.hits());
    gauge("plan_cache_misses", plan_cache_.misses());
    gauge("plan_cache_evictions", plan_cache_.evictions());
    gauge("plan_cache_size", plan_cache_.size());
    out += telemetry_page;
    return out;
}

} // namespace jsonski::service
