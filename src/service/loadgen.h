/**
 * @file
 * Open-loop load generator for jsqd (DESIGN.md §12).
 *
 * Two pieces, shared by the jsqload CLI and bench_service_scale:
 *
 * LatencyHistogram — an HDR-style log-linear histogram of microsecond
 * latencies: each power-of-two octave is split into 64 linear
 * sub-buckets, so the relative quantization error is bounded (< 1/64)
 * at every magnitude while the whole structure is a few KB of fixed
 * counters.  Values below 128 µs are recorded exactly.  Histograms
 * merge, so per-connection recordings combine into one distribution
 * without storing individual samples.
 *
 * runLoad() — drives a jsqd endpoint with concurrent connections in
 * either of two modes:
 *
 *  - open loop (qps > 0): request i is *scheduled* at
 *    `start + i/qps`, and its latency is measured from the scheduled
 *    start, not the actual send.  A server that stalls therefore
 *    accrues the queueing delay into the recorded latencies instead of
 *    silently slowing the offered load (the coordinated-omission trap
 *    closed-loop harnesses fall into).
 *
 *  - closed loop (qps == 0): each connection fires back-to-back
 *    requests; latency is per-request round trip.  This measures
 *    capacity, not tail behaviour under a fixed offered rate.
 *
 * Every request is one connection (the jsq/1 protocol is one request
 * per connection), length-framed, and counts as ok only when the
 * trailer arrives with ok=true.
 */
#ifndef JSONSKI_SERVICE_LOADGEN_H
#define JSONSKI_SERVICE_LOADGEN_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace jsonski::service {

/** See file comment. */
class LatencyHistogram
{
  public:
    static constexpr int kSubBuckets = 64; // per octave, linear

    LatencyHistogram() : buckets_(kBucketCount, 0) {}

    void record(uint64_t us);
    void merge(const LatencyHistogram& other);

    uint64_t count() const { return count_; }
    uint64_t maxValue() const { return max_; }

    /**
     * Smallest recorded-value upper bound covering @p p percent of the
     * samples (p in [0, 100]); 0 when empty.  Quantization rounds *up*
     * to the bucket's top, so a reported percentile never understates.
     */
    uint64_t percentile(double p) const;

  private:
    // Octaves 7..63 each hold kSubBuckets; [0, 128) is exact.
    static constexpr size_t kBucketCount =
        128 + (63 - 6) * static_cast<size_t>(kSubBuckets);

    static size_t bucketOf(uint64_t v);
    static uint64_t bucketTop(size_t b);

    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    uint64_t max_ = 0;
};

/** One load run's shape. */
struct LoadOptions
{
    std::string host = "127.0.0.1";
    uint16_t port = 0;

    /** Query list sent in every request header. */
    std::string query = "$[*]";

    /** Request body, sent length-framed. */
    std::string body;

    /** Suppress match frames (count only) — measures the engine, not
     *  the response serialization. */
    bool count_only = true;

    /** Target offered rate across all connections; 0 = closed loop. */
    double qps = 0;

    /** Run length. */
    int duration_ms = 1000;

    /** Concurrent client connections (threads). */
    size_t connections = 1;
};

/** What one load run observed. */
struct LoadResult
{
    uint64_t attempted = 0; ///< requests started
    uint64_t ok = 0;        ///< trailer arrived with ok=true
    uint64_t errors = 0;    ///< severed, timed out, or error trailer
    uint64_t matches = 0;   ///< total match count across ok requests
    double elapsed_s = 0;
    double throughput_rps = 0; ///< ok / elapsed

    /** Microseconds; from the scheduled start in open-loop mode. */
    LatencyHistogram latency;
};

/** Run one load shape against a live endpoint.  Blocks until done. */
LoadResult runLoad(const LoadOptions& options);

} // namespace jsonski::service

#endif // JSONSKI_SERVICE_LOADGEN_H
