/**
 * @file
 * Wire protocol of the jsqd streaming query service, shared by the
 * server, the jsqc client, the loopback test harness, and jsq (which
 * reuses the query-list splitter so the CLI and the service accept the
 * same syntax).
 *
 * The protocol is line-framed for control and length-framed for data
 * (DESIGN.md §10 has the full grammar):
 *
 *   request  := header-line query-line* body
 *   header   := "jsq/1 " query-list (" " flag)* "\n"
 *   query-list := JSONPath (',' JSONPath)*  |  "!stats"
 *   flag     := "records" | "count" | "limit=N" | "length=N"
 *             | "doc=ID" | "queries=N"
 *   query-line := "query=" JSONPath "\n"     (exactly N of them when
 *                 the queries=N flag was given; appended to the list)
 *   body     := raw JSON bytes, until EOF (client half-close) or
 *               exactly N bytes when length=N was given
 *
 *   response := match-frame* trailer-line          (query requests)
 *             | Prometheus text until close        ("!stats")
 *   match    := "m " query-index " " byte-len "\n" value "\n"
 *   trailer  := "end status=ok|error [code= pos=] matches= bytes_in="
 *               " ff=g1,g2,g3,g4,g5 plan=hit|miss|none"
 *               " [index=hit|miss|none] [per_query=n0,n1,...]"
 *               " [qmap=r0,r1,...]" "\n"
 *
 * Multi-query requests: the query list in the header plus, for large
 * sets that would overflow the header-line cap, `queries=N` continuation
 * lines.  The server normalizes the combined list into a canonical
 * *set* (duplicates collapsed, plan cache keyed order-insensitively):
 * each match frame's query-index is the *representative* request
 * position of its distinct query — the first request position asking
 * for it — so a request repeating a query gets one frame stream, not
 * two.  The trailer's `per_query` reports one count per *request*
 * position (duplicates repeat their count) and `qmap` maps each
 * request position to the frame id serving it; both appear on requests
 * with more than one query.  Query lists longer than the server's cap
 * are rejected with ErrorCode::TooManyQueries before any continuation
 * line is read.
 *
 * `doc=ID` declares the body a repeat-query document: the server keeps
 * it resident, consults its per-shard structural-index cache (keyed by
 * content hash — the ID is an opaque client-side tag), and answers
 * skips from the cached semi-index (DESIGN.md §14).  It requires
 * `length=` (the body must be sized up front to bound residency) and
 * is incompatible with `records`; violating either is a BadRequest.
 * The trailer's `index=` field is emitted only for doc= requests:
 * hit/miss report the cache verdict for a usable index, none means the
 * request streamed (the document is structurally unclean).
 *
 * Matched values are length-prefixed, so values containing newlines
 * round-trip; the trailer carries the machine-checkable ErrorCode
 * taxonomy (util/error.h) plus the per-request FastForwardStats, which
 * lets the differential tests assert byte-identity against a direct
 * Streamer::run.
 */
#ifndef JSONSKI_SERVICE_PROTOCOL_H
#define JSONSKI_SERVICE_PROTOCOL_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace jsonski::service {

/** Protocol magic carried by every request header. */
inline constexpr std::string_view kMagic = "jsq/1";

/** Default cap on the request header line, bytes. */
inline constexpr size_t kDefaultMaxHeaderBytes = 4096;

/**
 * Split a comma-separated query list on commas *outside* brackets
 * (`$.a[1:3],$.b` is two queries; the slice comma is literal) and trim
 * surrounding whitespace.  Shared by jsq's CLI and the service header.
 */
std::vector<std::string> splitQueries(std::string_view text);

/** Canonical comma-joined form of a split query list (cache key). */
std::string joinQueries(const std::vector<std::string>& queries);

/** Decoded request header. */
struct RequestHeader
{
    /** Query texts, split and trimmed; empty iff stats. */
    std::vector<std::string> queries;

    bool stats = false;      ///< "!stats": metrics scrape request
    bool records = false;    ///< body is an NDJSON record stream
    bool count_only = false; ///< suppress match frames, count only
    size_t limit = 0;        ///< stop after N matches; 0 = unlimited
    size_t length = 0;       ///< declared body length (has_length)
    bool has_length = false; ///< body is length-prefixed, not EOF-framed

    /** "doc=ID": cache a semi-index of the body (requires length=). */
    bool has_doc = false;
    std::string doc_id;      ///< opaque client tag; cache keys by hash

    /**
     * Decoded from the `queries=N` flag: N `query=` continuation lines
     * follow the header and must be appended to `queries` (the server
     * reads them; parseHeader only sees the header line).
     */
    size_t pending_queries = 0;

    /**
     * Client-side encoding knob: when set (and the list has more than
     * one query), encodeHeader() keeps only the first query on the
     * header line and ships the rest as `query=` continuation lines —
     * the form that scales past the header byte cap.
     */
    bool multiline = false;
};

/**
 * Render one `query=` continuation line (newline included).
 * The inverse of parseQueryLine().
 */
std::string encodeQueryLine(const std::string& query);

/**
 * Decode one `query=` continuation line (without the newline).
 * @throws ParseError(ErrorCode::BadRequest) when the line is not a
 *         well-formed, non-empty query line.
 */
std::string parseQueryLine(std::string_view line);

/**
 * Parse one header line (without the trailing newline).
 * @throws ParseError(ErrorCode::BadRequest) on bad magic, an empty
 *         query list, an unknown flag, or a malformed flag value.
 */
RequestHeader parseHeader(std::string_view line);

/** Render @p h as a header line, trailing newline included. */
std::string encodeHeader(const RequestHeader& h);

/** End-of-response status frame. */
struct Trailer
{
    bool ok = true;
    ErrorCode code = ErrorCode::Unspecified; ///< error runs only
    size_t error_pos = 0;                    ///< error runs only
    size_t matches = 0;                      ///< total across queries
    size_t bytes_in = 0;                     ///< body bytes consumed
    std::array<uint64_t, 5> ff{};            ///< G1..G5 skipped bytes
    std::string plan = "none";               ///< plan-cache verdict

    /** Index-cache verdict; empty = omitted (non-doc= request). */
    std::string index;

    /** Count per *request position* (duplicates repeat their count). */
    std::vector<size_t> per_query;

    /**
     * Request position -> frame query-index serving it (the distinct
     * query's representative).  Identity for duplicate-free lists.
     */
    std::vector<size_t> qmap;
};

/** Render @p t as a trailer line, trailing newline included. */
std::string encodeTrailer(const Trailer& t);

/**
 * Parse a trailer line (without the newline).
 * @throws ParseError(ErrorCode::BadRequest) if it is not a trailer.
 */
Trailer parseTrailer(std::string_view line);

/** Render one match frame (header line + value + newline). */
std::string encodeMatch(size_t query_index, std::string_view value);

/**
 * Incremental client-side decoder: feed() it raw response bytes as
 * they arrive; it invokes the match callback per decoded frame and
 * stores the trailer.  Also used by the differential tests to check
 * the server's output framing byte by byte.
 */
class ResponseParser
{
  public:
    using MatchFn = std::function<void(size_t, std::string_view)>;

    /** @param on_match Optional streaming callback (may be empty). */
    explicit ResponseParser(MatchFn on_match = {})
        : on_match_(std::move(on_match))
    {}

    /**
     * Consume @p bytes.
     * @throws ParseError(ErrorCode::BadRequest) on a framing violation.
     */
    void feed(std::string_view bytes);

    /** True once the trailer has been decoded. */
    bool done() const { return done_; }

    /** @pre done() */
    const Trailer& trailer() const { return trailer_; }

    /** Matches decoded so far (kept even when a callback is set). */
    const std::vector<std::pair<size_t, std::string>>& matches() const
    {
        return matches_;
    }

  private:
    void decode();

    MatchFn on_match_;
    std::string buf_;
    std::vector<std::pair<size_t, std::string>> matches_;
    Trailer trailer_;
    bool done_ = false;
};

} // namespace jsonski::service

#endif // JSONSKI_SERVICE_PROTOCOL_H
