#include "gen/gen_common.h"

#include <array>
#include <cstdio>

namespace jsonski::gen {
namespace {

constexpr std::array<const char*, 32> kWords = {
    "stream",  "data",    "query",   "skip",    "record",  "value",
    "object",  "array",   "index",   "level",   "place",   "city",
    "product", "price",   "review",  "travel",  "route",   "summer",
    "winter",  "coffee",  "morning", "evening", "market",  "signal",
    "forward", "parallel","bitmap",  "vector",  "engine",  "student",
    "river",   "mountain",
};

constexpr std::array<const char*, 16> kTlds = {
    "com", "org", "net", "io",  "dev", "app", "co",  "us",
    "uk",  "de",  "fr",  "jp",  "edu", "gov", "info", "biz",
};

} // namespace

std::string
properName(Rng& rng)
{
    std::string s = rng.ident(3 + rng.below(9));
    s[0] = static_cast<char>(s[0] - 'a' + 'A');
    return s;
}

std::string
sentence(Rng& rng, size_t words)
{
    std::string s;
    for (size_t i = 0; i < words; ++i) {
        if (i)
            s += ' ';
        s += kWords[rng.below(kWords.size())];
    }
    return s;
}

std::string
url(Rng& rng)
{
    std::string s = "https://";
    s += rng.ident(3 + rng.below(10));
    s += '.';
    s += kTlds[rng.below(kTlds.size())];
    if (rng.chance(0.7)) {
        s += '/';
        s += rng.ident(4 + rng.below(12));
    }
    if (rng.chance(0.3)) {
        s += "?id=";
        s += std::to_string(rng.below(1000000));
    }
    return s;
}

std::string
timestamp(Rng& rng)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "20%02d-%02d-%02dT%02d:%02d:%02dZ",
                  static_cast<int>(rng.below(27)),
                  static_cast<int>(rng.below(12)) + 1,
                  static_cast<int>(rng.below(28)) + 1,
                  static_cast<int>(rng.below(24)),
                  static_cast<int>(rng.below(60)),
                  static_cast<int>(rng.below(60)));
    return buf;
}

std::string
postcode(Rng& rng)
{
    std::string s;
    s += static_cast<char>('A' + rng.below(26));
    s += static_cast<char>('A' + rng.below(26));
    s += std::to_string(rng.below(100));
    s += ' ';
    s += std::to_string(rng.below(10));
    s += static_cast<char>('A' + rng.below(26));
    s += static_cast<char>('A' + rng.below(26));
    return s;
}

double
latitude(Rng& rng)
{
    return static_cast<double>(rng.range(-90000000, 90000000)) / 1e6;
}

double
longitude(Rng& rng)
{
    return static_cast<double>(rng.range(-180000000, 180000000)) / 1e6;
}

} // namespace jsonski::gen
