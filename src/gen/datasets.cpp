#include "gen/datasets.h"

#include <cassert>

#include "gen/gen_common.h"
#include "json/writer.h"
#include "util/rng.h"

namespace jsonski::gen {
namespace {

using json::Writer;

// --- TT: geo-referenced tweets (paper Figure 1) -----------------------

/** Place object with the nested bounding_box rings of Figure 1. */
void
writeTweetPlace(Writer& w, Rng& rng)
{
    w.beginObject();
    w.key("name");
    w.string(properName(rng));
    w.key("country");
    w.string(properName(rng));
    w.key("bounding_box");
    {
        w.beginObject();
        w.key("type");
        w.string("Polygon");
        w.key("pos");
        w.beginArray();
        w.beginArray(); // one ring of 4 points
        for (int p = 0; p < 4; ++p) {
            w.beginArray();
            w.number(longitude(rng));
            w.number(latitude(rng));
            w.endArray();
        }
        w.endArray();
        w.endArray();
        w.endObject();
    }
    w.endObject();
}

/**
 * Embedded status (retweet / quote), optionally nesting one more
 * level: this is what pushes real tweets to the paper's depth of 11.
 */
void
writeEmbeddedStatus(Writer& w, Rng& rng, int depth)
{
    w.beginObject();
    w.key("id");
    w.number(static_cast<int64_t>(rng.below(1000000000000ULL)));
    w.key("text");
    w.string(sentence(rng, 6 + rng.below(10)));
    w.key("user");
    {
        w.beginObject();
        w.key("id");
        w.number(static_cast<int64_t>(rng.below(100000000)));
        w.key("screen_name");
        w.string(rng.ident(6 + rng.below(8)));
        w.endObject();
    }
    if (rng.chance(0.5)) {
        w.key("place");
        writeTweetPlace(w, rng);
    }
    if (depth > 0 && rng.chance(0.3)) {
        w.key("qt"); // quoted status inside the retweet
        writeEmbeddedStatus(w, rng, depth - 1);
    }
    w.key("rtc");
    w.number(static_cast<int64_t>(rng.below(10000)));
    w.endObject();
}

void
writeTweet(Writer& w, Rng& rng, size_t index)
{
    w.beginObject();
    w.key("created_at");
    w.string(timestamp(rng));
    w.key("id");
    w.number(static_cast<int64_t>(900000000000 + index));
    w.key("text");
    w.string(sentence(rng, 8 + rng.below(16)));
    w.key("user");
    {
        w.beginObject();
        w.key("id");
        w.number(static_cast<int64_t>(rng.below(100000000)));
        w.key("name");
        w.string(properName(rng));
        w.key("screen_name");
        w.string(rng.ident(6 + rng.below(8)));
        w.key("followers_count");
        w.number(static_cast<int64_t>(rng.below(100000)));
        w.key("friends_count");
        w.number(static_cast<int64_t>(rng.below(5000)));
        w.key("description");
        w.string(sentence(rng, 4 + rng.below(12)));
        w.key("verified");
        w.boolean(rng.chance(0.05));
        w.endObject();
    }
    w.key("en");
    {
        w.beginObject();
        w.key("hashtags");
        w.beginArray();
        size_t tags = rng.below(3);
        for (size_t i = 0; i < tags; ++i) {
            w.beginObject();
            w.key("text");
            w.string(rng.ident(4 + rng.below(10)));
            w.key("indices");
            w.beginArray();
            int64_t at = rng.range(0, 100);
            w.number(at);
            w.number(at + 8);
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.key("urls");
        w.beginArray();
        // ~0.6 urls per tweet, matching TT1's selectivity.
        size_t urls = rng.chance(0.45) ? 1 + rng.below(2) : 0;
        for (size_t i = 0; i < urls; ++i) {
            w.beginObject();
            w.key("url");
            w.string(url(rng));
            w.key("expanded_url");
            w.string(url(rng));
            w.key("indices");
            w.beginArray();
            w.number(int64_t{23});
            w.number(int64_t{46});
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.key("user_mentions");
        w.beginArray();
        w.endArray();
        w.endObject();
    }
    w.key("coordinates");
    if (rng.chance(0.4)) {
        w.beginArray();
        w.number(longitude(rng));
        w.number(latitude(rng));
        w.endArray();
    } else {
        w.null();
    }
    if (rng.chance(0.6)) {
        w.key("place");
        writeTweetPlace(w, rng);
    }
    if (rng.chance(0.2)) {
        w.key("rt"); // retweeted status (may nest a quoted status)
        writeEmbeddedStatus(w, rng, 1);
    }
    w.key("rtc");
    w.number(static_cast<int64_t>(rng.below(1000)));
    w.key("lang");
    w.string(rng.chance(0.7) ? "en" : "es");
    w.endObject();
}

// --- BB: Best Buy product catalog --------------------------------------

void
writeProduct(Writer& w, Rng& rng, size_t index)
{
    w.beginObject();
    w.key("sku");
    w.number(static_cast<int64_t>(1000000 + index));
    w.key("name");
    w.string(sentence(rng, 3 + rng.below(5)));
    w.key("type");
    w.string("HardGood");
    w.key("cp"); // category path; >= 3 entries so cp[1:3] yields 2
    w.beginArray();
    size_t cats = 3 + rng.below(3);
    for (size_t i = 0; i < cats; ++i) {
        w.beginObject();
        w.key("id");
        std::string cat_id = "cat";
        cat_id += std::to_string(rng.below(100000));
        w.string(cat_id);
        w.key("name");
        w.string(properName(rng));
        w.endObject();
    }
    w.endArray();
    w.key("price");
    w.number(static_cast<double>(rng.below(200000)) / 100.0);
    w.key("sale");
    w.boolean(rng.chance(0.2));
    // vc (video chapters) is rare: BB2's low match count.
    if (rng.chance(0.035)) {
        w.key("vc");
        w.beginArray();
        w.beginObject();
        w.key("cha");
        w.string(sentence(rng, 3));
        w.key("off");
        w.number(static_cast<int64_t>(rng.below(600)));
        w.endObject();
        w.endArray();
    }
    w.key("shipping");
    {
        w.beginObject();
        w.key("ground");
        w.number(static_cast<double>(rng.below(2000)) / 100.0);
        w.key("nextDay");
        w.number(static_cast<double>(rng.below(5000)) / 100.0);
        w.endObject();
    }
    w.key("description");
    w.string(sentence(rng, 10 + rng.below(25)));
    w.key("image");
    w.string(url(rng));
    w.key("reviews");
    w.beginArray();
    size_t reviews = rng.below(3);
    for (size_t i = 0; i < reviews; ++i) {
        w.beginObject();
        w.key("rating");
        w.number(static_cast<int64_t>(1 + rng.below(5)));
        w.key("comment");
        w.string(sentence(rng, 6 + rng.below(12)));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

// --- GMD: Google Maps Directions ---------------------------------------

void
writeStep(Writer& w, Rng& rng)
{
    w.beginObject();
    w.key("dt"); // distance
    {
        w.beginObject();
        w.key("tx");
        w.string(std::to_string(rng.below(5000)) + " m");
        w.key("vl");
        w.number(static_cast<int64_t>(rng.below(5000)));
        w.endObject();
    }
    w.key("du"); // duration
    {
        w.beginObject();
        w.key("tx");
        w.string(std::to_string(rng.below(60)) + " mins");
        w.key("vl");
        w.number(static_cast<int64_t>(rng.below(3600)));
        w.endObject();
    }
    w.key("el"); // end location
    {
        w.beginObject();
        w.key("lat");
        w.number(latitude(rng));
        w.key("lng");
        w.number(longitude(rng));
        w.endObject();
    }
    w.key("hi"); // html instructions
    w.string(sentence(rng, 5 + rng.below(10)));
    w.key("pl"); // polyline
    {
        w.beginObject();
        w.key("points");
        w.string(rng.ident(20 + rng.below(60)));
        w.endObject();
    }
    w.key("tm");
    w.string("DRIVING");
    w.endObject();
}

void
writeDirections(Writer& w, Rng& rng, size_t index)
{
    w.beginObject();
    w.key("gc"); // geocoded waypoints
    w.beginArray();
    for (int i = 0; i < 2; ++i) {
        w.beginObject();
        w.key("st");
        w.string("OK");
        w.key("pid");
        w.string(rng.ident(27));
        w.endObject();
    }
    w.endArray();
    w.key("rt"); // routes
    w.beginArray();
    size_t routes = 2 + rng.below(3);
    for (size_t r = 0; r < routes; ++r) {
        w.beginObject();
        w.key("su");
        w.string(properName(rng) + " Hwy");
        w.key("lg"); // legs
        w.beginArray();
        size_t legs = 1 + rng.below(3);
        for (size_t l = 0; l < legs; ++l) {
            w.beginObject();
            w.key("st"); // steps
            w.beginArray();
            size_t steps = 30 + rng.below(40);
            for (size_t s = 0; s < steps; ++s)
                writeStep(w, rng);
            w.endArray();
            w.key("dt");
            w.beginObject();
            w.key("tx");
            w.string(std::to_string(rng.below(300)) + " km");
            w.key("vl");
            w.number(static_cast<int64_t>(rng.below(300000)));
            w.endObject();
            w.endObject();
        }
        w.endArray();
        w.key("bounds");
        {
            w.beginObject();
            w.key("ne");
            w.beginArray();
            w.number(latitude(rng));
            w.number(longitude(rng));
            w.endArray();
            w.key("sw");
            w.beginArray();
            w.number(latitude(rng));
            w.number(longitude(rng));
            w.endArray();
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    // atm (alternative transit modes) is rare: GMD2's 270 matches.
    if (rng.chance(0.03)) {
        w.key("atm");
        w.string(rng.chance(0.5) ? "TRANSIT" : "BICYCLING");
    }
    w.key("status");
    w.string("OK");
    w.key("qid");
    w.number(static_cast<int64_t>(index));
    w.endObject();
}

// --- NSPL: postcode lookup (mostly arrays + primitives) -----------------

void
writeNsplRow(Writer& w, Rng& rng, size_t index)
{
    w.beginArray();
    {
        std::string row_id = "row-";
        row_id += rng.ident(12);
        w.string(row_id);
    }
    w.string(postcode(rng));
    w.number(static_cast<int64_t>(index));
    // Nested geo array: the target of NSPL2's [2:4].
    w.beginArray();
    w.number(latitude(rng));
    w.number(longitude(rng));
    w.number(static_cast<int64_t>(rng.below(1000000))); // [2]
    w.number(static_cast<int64_t>(rng.below(1000000))); // [3]
    w.number(static_cast<int64_t>(rng.below(100)));
    w.endArray();
    // ~40 primitive statistics columns.
    size_t cols = 36 + rng.below(10);
    for (size_t i = 0; i < cols; ++i) {
        if (rng.chance(0.15))
            w.string(rng.ident(2 + rng.below(6)));
        else
            w.number(static_cast<int64_t>(rng.below(10000000)));
    }
    w.endArray();
}

void
writeNsplMeta(Writer& w, uint64_t seed)
{
    Rng rng(seed ^ 0x5A5A5A5AULL);
    w.beginObject();
    w.key("vw");
    w.beginObject();
    w.key("id");
    w.string(rng.ident(9));
    w.key("name");
    w.string("National Statistics Postcode Lookup UK");
    w.key("category");
    w.string("Reference");
    w.key("co"); // 44 columns: NSPL1's match count
    w.beginArray();
    for (int i = 0; i < 44; ++i) {
        w.beginObject();
        w.key("id");
        w.number(static_cast<int64_t>(1000 + i));
        w.key("nm");
        std::string col = "col_";
        col += std::to_string(i);
        w.string(col);
        w.key("dataTypeName");
        w.string(i < 4 ? "text" : "number");
        w.key("position");
        w.number(static_cast<int64_t>(i));
        w.endObject();
    }
    w.endArray();
    w.key("rowsUpdatedAt");
    w.number(static_cast<int64_t>(1700000000));
    w.endObject();
    w.endObject();
}

// --- WM: Walmart items ---------------------------------------------------

void
writeWmItem(Writer& w, Rng& rng, size_t index)
{
    w.beginObject();
    w.key("itemId");
    w.number(static_cast<int64_t>(50000000 + index));
    w.key("nm");
    w.string(sentence(rng, 4 + rng.below(6)));
    w.key("msrp");
    w.number(static_cast<double>(rng.below(100000)) / 100.0);
    w.key("salePrice");
    w.number(static_cast<double>(rng.below(100000)) / 100.0);
    w.key("upc");
    w.string(std::to_string(rng.below(1000000000000ULL)));
    w.key("categoryPath");
    w.string(properName(rng) + "/" + properName(rng));
    // bmrpr (best marketplace price) is present for ~6% of items (WM1).
    if (rng.chance(0.058)) {
        w.key("bmrpr");
        w.beginObject();
        w.key("pr");
        w.number(static_cast<double>(rng.below(100000)) / 100.0);
        w.key("sellerInfo");
        w.string(properName(rng));
        w.key("standardShipRate");
        w.number(static_cast<double>(rng.below(1500)) / 100.0);
        w.endObject();
    }
    w.key("shortDescription");
    w.string(sentence(rng, 15 + rng.below(30)));
    w.key("brandName");
    w.string(properName(rng));
    w.key("stock");
    w.string(rng.chance(0.8) ? "Available" : "Limited");
    w.key("customerRating");
    w.number(static_cast<double>(10 + rng.below(41)) / 10.0);
    w.key("numReviews");
    w.number(static_cast<int64_t>(rng.below(5000)));
    w.key("imageEntities");
    w.beginObject();
    w.key("thumbnailImage");
    w.string(url(rng));
    w.key("largeImage");
    w.string(url(rng));
    w.endObject();
    w.endObject();
}

// --- WP: Wikidata entities -----------------------------------------------

void
writeClaim(Writer& w, Rng& rng, std::string_view property)
{
    w.beginObject();
    w.key("ms"); // mainsnak
    {
        w.beginObject();
        w.key("snaktype");
        w.string("value");
        w.key("pty"); // property
        w.string(property);
        w.key("dv"); // datavalue
        {
            w.beginObject();
            w.key("vl");
            {
                w.beginObject();
                w.key("entity-type");
                w.string("item");
                w.key("numeric-id");
                w.number(static_cast<int64_t>(rng.below(90000000)));
                w.endObject();
            }
            w.key("type");
            w.string("wikibase-entityid");
            w.endObject();
        }
        w.endObject();
    }
    w.key("type");
    w.string("statement");
    w.key("rank");
    w.string("normal");
    w.endObject();
}

void
writeWpEntity(Writer& w, Rng& rng, size_t index)
{
    w.beginObject();
    w.key("id");
    std::string qid = "Q";
    qid += std::to_string(100 + index);
    w.string(qid);
    w.key("ty");
    w.string("item");
    w.key("lb"); // labels
    {
        w.beginObject();
        w.key("en");
        w.beginObject();
        w.key("language");
        w.string("en");
        w.key("value");
        w.string(properName(rng));
        w.endObject();
        w.key("de");
        w.beginObject();
        w.key("language");
        w.string("de");
        w.key("value");
        w.string(properName(rng));
        w.endObject();
        w.endObject();
    }
    w.key("cl"); // claims
    {
        w.beginObject();
        w.key("P31");
        w.beginArray();
        writeClaim(w, rng, "P31");
        w.endArray();
        // P150 ("contains administrative territorial entity") is on
        // about one entity in eight with ~2 claims, matching WP1's
        // ~0.11 matches per record; index 17 keeps WP2 non-empty.
        if (index % 8 == 1) {
            w.key("P150");
            w.beginArray();
            size_t n = 1 + rng.below(3);
            for (size_t i = 0; i < n; ++i)
                writeClaim(w, rng, "P150");
            w.endArray();
        }
        w.key("P569");
        w.beginArray();
        writeClaim(w, rng, "P569");
        w.endArray();
        w.endObject();
    }
    w.key("sl"); // sitelinks
    {
        w.beginObject();
        w.key("enwiki");
        w.beginObject();
        w.key("site");
        w.string("enwiki");
        w.key("title");
        w.string(properName(rng));
        w.endObject();
        w.endObject();
    }
    w.endObject();
}

void
writeRecord(DatasetId id, Writer& w, Rng& rng, size_t index)
{
    switch (id) {
      case DatasetId::TT:
        writeTweet(w, rng, index);
        break;
      case DatasetId::BB:
        writeProduct(w, rng, index);
        break;
      case DatasetId::GMD:
        writeDirections(w, rng, index);
        break;
      case DatasetId::NSPL:
        writeNsplRow(w, rng, index);
        break;
      case DatasetId::WM:
        writeWmItem(w, rng, index);
        break;
      case DatasetId::WP:
        writeWpEntity(w, rng, index);
        break;
    }
}

/** Does this dataset's large format wrap records in a bare array? */
bool
rootIsArray(DatasetId id)
{
    return id == DatasetId::TT || id == DatasetId::GMD ||
           id == DatasetId::WP;
}

} // namespace

std::string_view
datasetName(DatasetId id)
{
    switch (id) {
      case DatasetId::TT: return "TT";
      case DatasetId::BB: return "BB";
      case DatasetId::GMD: return "GMD";
      case DatasetId::NSPL: return "NSPL";
      case DatasetId::WM: return "WM";
      case DatasetId::WP: return "WP";
    }
    return "?";
}

std::string
generateLarge(DatasetId id, size_t target_bytes, uint64_t seed)
{
    Writer w;
    Rng rng(seed);
    size_t index = 0;
    if (rootIsArray(id)) {
        w.beginArray();
        while (w.size() < target_bytes)
            writeRecord(id, w, rng, index++);
        w.endArray();
        return w.take();
    }
    w.beginObject();
    switch (id) {
      case DatasetId::BB:
        w.key("code");
        w.number(int64_t{200});
        w.key("pd");
        break;
      case DatasetId::NSPL:
        w.key("mt");
        writeNsplMeta(w, seed);
        w.key("dt");
        break;
      case DatasetId::WM:
        w.key("query");
        w.string("*");
        w.key("sort");
        w.string("relevance");
        w.key("it");
        break;
      default:
        assert(false && "unreachable");
        break;
    }
    w.beginArray();
    while (w.size() < target_bytes)
        writeRecord(id, w, rng, index++);
    w.endArray();
    w.key("total");
    w.number(static_cast<int64_t>(index));
    w.endObject();
    return w.take();
}

SmallRecords
generateSmall(DatasetId id, size_t target_bytes, uint64_t seed)
{
    SmallRecords out;
    out.buffer.reserve(target_bytes + target_bytes / 8);
    Rng rng(seed);
    Writer w;
    size_t index = 0;
    while (out.buffer.size() < target_bytes) {
        writeRecord(id, w, rng, index++);
        std::string rec = w.take();
        out.spans.emplace_back(out.buffer.size(), rec.size());
        out.buffer += rec;
        out.buffer += '\n';
    }
    return out;
}

} // namespace jsonski::gen
