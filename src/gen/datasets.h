/**
 * @file
 * Synthetic counterparts of the paper's six evaluation datasets
 * (Table 4): Twitter (TT), Best Buy (BB), Google Maps Directions
 * (GMD), National Statistics Postcode Lookup (NSPL), Walmart (WM),
 * and Wikidata (WP).
 *
 * The generators reproduce each dataset's *structural* profile — the
 * object/array/attribute/primitive mix, nesting depth, record
 * granularity, and the attributes the Table 5 queries select — not the
 * original payloads (see DESIGN.md §3 for the substitution rationale).
 * Everything is deterministic under the seed, so match counts are
 * stable across runs.
 *
 * Each dataset exists in the paper's two processing formats:
 *  - a single large record (one JSON value), and
 *  - a sequence of small records with an offset table.
 */
#ifndef JSONSKI_GEN_DATASETS_H
#define JSONSKI_GEN_DATASETS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace jsonski::gen {

/** The six paper datasets. */
enum class DatasetId { TT, BB, GMD, NSPL, WM, WP };

/** All ids, in paper order. */
inline constexpr DatasetId kAllDatasets[] = {
    DatasetId::TT, DatasetId::BB,   DatasetId::GMD,
    DatasetId::NSPL, DatasetId::WM, DatasetId::WP,
};

/** Short name as used in the paper's tables ("TT", "BB", ...). */
std::string_view datasetName(DatasetId id);

/**
 * Generate the single-large-record format: one JSON value of at least
 * @p target_bytes bytes (the generator finishes the record it is on,
 * so the result slightly overshoots).
 */
std::string generateLarge(DatasetId id, size_t target_bytes,
                          uint64_t seed = 1);

/** Small-record format: concatenated records plus an offset table. */
struct SmallRecords
{
    std::string buffer;
    /** (offset, length) of each record within buffer. */
    std::vector<std::pair<size_t, size_t>> spans;

    std::string_view
    record(size_t i) const
    {
        return std::string_view(buffer).substr(spans[i].first,
                                               spans[i].second);
    }

    size_t count() const { return spans.size(); }
};

/**
 * Generate the small-records format with the same structural content
 * as generateLarge (same seed => records identical to the large
 * format's inner records).
 */
SmallRecords generateSmall(DatasetId id, size_t target_bytes,
                           uint64_t seed = 1);

} // namespace jsonski::gen

#endif // JSONSKI_GEN_DATASETS_H
