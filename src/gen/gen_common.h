/**
 * @file
 * Shared building blocks for the synthetic dataset generators: word
 * pools, sentence/URL/name synthesis, all deterministic under Rng.
 */
#ifndef JSONSKI_GEN_GEN_COMMON_H
#define JSONSKI_GEN_GEN_COMMON_H

#include <string>

#include "util/rng.h"

namespace jsonski::gen {

/** Random capitalized proper name, 4-12 characters. */
std::string properName(Rng& rng);

/** Random sentence of @p words dictionary words (tweet text, blurbs). */
std::string sentence(Rng& rng, size_t words);

/** Random http URL, sometimes with a path and query. */
std::string url(Rng& rng);

/** Random ISO-8601-looking timestamp string. */
std::string timestamp(Rng& rng);

/** Random UK-style postcode ("AB12 3CD"). */
std::string postcode(Rng& rng);

/** Random latitude in [-90, 90] with 6 decimals. */
double latitude(Rng& rng);

/** Random longitude in [-180, 180] with 6 decimals. */
double longitude(Rng& rng);

} // namespace jsonski::gen

#endif // JSONSKI_GEN_GEN_COMMON_H
