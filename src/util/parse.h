/**
 * @file
 * Strict command-line number parsing shared by the CLI tools (jsq,
 * jsqd, jsqc) and the service flag decoder.
 *
 * `strtoul(arg, nullptr, 10)` silently accepts trailing garbage
 * ("4096x"), empty strings, negative wrap-around, and out-of-range
 * values; every tool that takes a byte count or a limit must reject
 * those with a usage error instead.  These helpers return false on
 * anything but a complete, in-range, base-10 literal.
 */
#ifndef JSONSKI_UTIL_PARSE_H
#define JSONSKI_UTIL_PARSE_H

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string_view>

namespace jsonski {

/**
 * Parse @p text as a base-10 size_t.
 *
 * @return false on empty input, any non-digit character (including
 *         sign characters and trailing garbage), or overflow.
 */
inline bool
parseSize(std::string_view text, size_t& out)
{
    if (text.empty())
        return false;
    // strtoull accepts leading whitespace and a sign; a byte count or
    // limit flag is digits only.
    for (char c : text)
        if (c < '0' || c > '9')
            return false;
    // NUL-terminate for strtoull without assuming text is terminated.
    char buf[32];
    if (text.size() >= sizeof buf)
        return false; // longer than any representable 64-bit decimal
    text.copy(buf, text.size());
    buf[text.size()] = '\0';
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(buf, &end, 10);
    if (errno == ERANGE || end != buf + text.size())
        return false;
    if (v > std::numeric_limits<size_t>::max())
        return false;
    out = static_cast<size_t>(v);
    return true;
}

/** parseSize() that additionally rejects zero (sizes, chunk bytes). */
inline bool
parsePositiveSize(std::string_view text, size_t& out)
{
    return parseSize(text, out) && out != 0;
}

/**
 * Strict identifier token, the shape a name-valued environment
 * variable (JSONSKI_KERNEL=<name>) must have: nonempty, at most 32
 * characters, lowercase letters / digits / '_' / '-' only.  Rejects
 * whitespace, uppercase, and any other garbage so a typo'd override
 * fails loudly instead of matching nothing.
 */
inline bool
parseIdent(std::string_view text)
{
    if (text.empty() || text.size() > 32)
        return false;
    for (char c : text) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

} // namespace jsonski

#endif // JSONSKI_UTIL_PARSE_H
