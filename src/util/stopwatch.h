/**
 * @file
 * Wall-clock timing helper for the benchmark harness.
 */
#ifndef JSONSKI_UTIL_STOPWATCH_H
#define JSONSKI_UTIL_STOPWATCH_H

#include <chrono>

namespace jsonski {

/** Monotonic stopwatch; starts running on construction. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Restart from zero. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace jsonski

#endif // JSONSKI_UTIL_STOPWATCH_H
