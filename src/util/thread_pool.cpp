#include "util/thread_pool.h"

#include <cassert>

namespace jsonski {

ThreadPool::ThreadPool(size_t threads)
{
    assert(threads >= 1);
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_task_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push(std::move(task));
    }
    cv_task_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)>& f)
{
    if (n == 0)
        return;
    auto counter = std::make_shared<std::atomic<size_t>>(0);
    size_t spawn = std::min(n, workers_.size());
    for (size_t t = 0; t < spawn; ++t) {
        submit([counter, n, &f] {
            for (size_t i = counter->fetch_add(1); i < n;
                 i = counter->fetch_add(1)) {
                f(i);
            }
        });
    }
    waitIdle();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_task_.wait(lock,
                          [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop();
            ++active_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                cv_idle_.notify_all();
        }
    }
}

} // namespace jsonski
