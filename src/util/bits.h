/**
 * @file
 * Word-level bit-manipulation primitives used by the bit-parallel
 * fast-forward algorithms (Algorithm 3 of the JSONSki paper).
 *
 * All bitmaps in this codebase follow the "mirrored" convention of
 * simdjson / Mison / Pison (paper footnote 2): bit i of a word
 * corresponds to byte i of the 64-byte block, so the *lowest* set bit is
 * the *earliest* character.  Consequently "next" scans use
 * count-trailing-zeros and interval ends are found at the lowest bit.
 *
 * Everything here is strictly portable: the ISA-accelerated variants of
 * selectBit (PDEP) and prefixXor (CLMUL) live in the runtime-dispatched
 * kernels (src/kernels/) — hot paths call kernels::selectBit /
 * kernels::prefixXor instead, and these functions double as the scalar
 * kernel's implementation and the differential-test reference.
 */
#ifndef JSONSKI_UTIL_BITS_H
#define JSONSKI_UTIL_BITS_H

#include <cstdint>
#include <cstddef>

namespace jsonski::bits {

/** Number of set bits in @p x. */
inline int
popcount(uint64_t x)
{
    return __builtin_popcountll(x);
}

/** Index (0-based) of the lowest set bit; undefined when x == 0. */
inline int
trailingZeros(uint64_t x)
{
    return __builtin_ctzll(x);
}

/** Index of the highest set bit; undefined when x == 0. */
inline int
leadingZeros(uint64_t x)
{
    return __builtin_clzll(x);
}

/** Isolate the lowest set bit (x & -x); 0 stays 0. */
inline uint64_t
lowestBit(uint64_t x)
{
    return x & (0 - x);
}

/** Clear the lowest set bit (x & (x - 1)); 0 stays 0. */
inline uint64_t
clearLowest(uint64_t x)
{
    return x & (x - 1);
}

/** Mask of all bits strictly below the lowest set bit of @p x.
 *  For x == 0 the result is all ones. */
inline uint64_t
maskBelowLowest(uint64_t x)
{
    return lowestBit(x) - 1;
}

/** Mask with bits [0, i) set. i must be in [0, 64]. */
inline uint64_t
maskBelow(int i)
{
    return i >= 64 ? ~uint64_t{0} : ((uint64_t{1} << i) - 1);
}

/**
 * Position of the k-th (1-based) set bit of @p x.
 *
 * Used by the counting-based pairing strategy (Theorem 4.3): once we
 * know the object ends at the depth-th "}" inside an interval, select
 * finds that close brace.  This is the portable clear-lowest loop; the
 * AVX2 kernel replaces it with one PDEP.
 *
 * @pre 1 <= k <= popcount(x)
 */
inline int
selectBit(uint64_t x, int k)
{
    for (int i = 1; i < k; ++i)
        x = clearLowest(x);
    return trailingZeros(x);
}

/**
 * Prefix XOR: bit i of the result is the XOR of bits [0, i] of @p x.
 *
 * This turns an (unescaped) quote bitmap into an in-string mask: bits
 * between an opening quote (inclusive) and the matching closing quote
 * (exclusive) read 1.  This is the portable log-step shift cascade;
 * the SIMD kernels replace it with one carry-less multiplication by
 * all-ones.
 */
inline uint64_t
prefixXor(uint64_t x)
{
    x ^= x << 1;
    x ^= x << 2;
    x ^= x << 4;
    x ^= x << 8;
    x ^= x << 16;
    x ^= x << 32;
    return x;
}

/** Broadcast one byte across a 64-bit word (for SWAR fallbacks). */
inline uint64_t
broadcastByte(uint8_t b)
{
    return uint64_t{0x0101010101010101ULL} * b;
}

} // namespace jsonski::bits

#endif // JSONSKI_UTIL_BITS_H
