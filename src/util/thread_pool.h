/**
 * @file
 * Fixed-size worker pool used by the parallel experiments: record-level
 * parallelism for the small-record scenario (Figure 12) and chunked
 * parallel index construction / tokenization for the single-large-record
 * scenario (Figure 10's JPStream(16) / Pison(16) bars).
 */
#ifndef JSONSKI_UTIL_THREAD_POOL_H
#define JSONSKI_UTIL_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace jsonski {

/**
 * A minimal task-queue thread pool.
 *
 * Tasks are void() callables.  waitIdle() blocks until every submitted
 * task has finished, which is the synchronization shape all the parallel
 * benchmarks need (fork-join over a batch of records or chunks).
 */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (>= 1). */
    explicit ThreadPool(size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueue a task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and no task is running. */
    void waitIdle();

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

    /**
     * Fork-join helper: run f(i) for i in [0, n) across the pool and
     * wait for completion.  Work is pulled dynamically from a shared
     * counter so uneven task costs balance out.
     */
    void parallelFor(size_t n, const std::function<void(size_t)>& f);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_task_;
    std::condition_variable cv_idle_;
    size_t active_ = 0;
    bool stopping_ = false;
};

} // namespace jsonski

#endif // JSONSKI_UTIL_THREAD_POOL_H
