/**
 * @file
 * Shard-locked, weight-bounded LRU used by the service plan cache and
 * the document index cache.
 *
 * The key hash picks one of a fixed set of shards, each an
 * independently locked LRU list + map, so hot keys on different shards
 * never contend.  On a miss the value is built *under the shard lock*,
 * which serializes concurrent first-misses of the same key into one
 * build and keeps the counters deterministic: N concurrent requests
 * for a fresh key are exactly 1 miss + N-1 hits.  Values are handed
 * out as shared_ptr<const V>, so an entry can be evicted while callers
 * still run on it.
 *
 * Capacity is expressed in *weight* — by default every entry weighs 1
 * (entry-count capacity, the plan cache's contract), but a weigher can
 * charge e.g. memoryBytes() so the cache bounds resident bytes.  The
 * per-shard budget is capacity/kShards rounded up; an over-budget
 * shard evicts cold entries but always retains the entry it just
 * inserted, so a single oversized value is cached rather than thrashed.
 */
#ifndef JSONSKI_UTIL_SHARDED_LRU_H
#define JSONSKI_UTIL_SHARDED_LRU_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace jsonski::util {

/**
 * Counter snapshot of one ShardedLru — summable, so a server holding
 * one cache partition per event-loop shard can report fleet totals.
 */
struct LruStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /** Entries currently resident. */
    size_t entries = 0;
    /** Total weight currently resident (== entries when unweighted). */
    size_t weight = 0;

    LruStats&
    operator+=(const LruStats& o)
    {
        hits += o.hits;
        misses += o.misses;
        evictions += o.evictions;
        entries += o.entries;
        weight += o.weight;
        return *this;
    }
};

/** See file comment. */
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLru
{
  public:
    static constexpr size_t kShards = 8;

    /** Charges the weight of a resident value against the capacity. */
    using Weigher = std::function<size_t(const Value&)>;

    /**
     * @param capacity Total weight across all shards (rounded up to at
     *                 least one unit per shard).
     * @param weigher  Weight of one entry; default charges 1 each, so
     *                 @p capacity counts entries.
     */
    explicit ShardedLru(size_t capacity, Weigher weigher = {})
        : per_shard_capacity_((capacity + kShards - 1) / kShards),
          weigher_(std::move(weigher))
    {
        if (per_shard_capacity_ == 0)
            per_shard_capacity_ = 1;
    }

    /**
     * Look up @p key, invoking @p build() under the shard lock on a
     * miss and inserting the result.  @p build must return a
     * shared_ptr<const Value>; an exception escapes before anything is
     * counted or inserted.
     *
     * @param was_hit Out: true when the value came from the cache.
     */
    template <typename BuildFn>
    std::shared_ptr<const Value>
    getOrBuild(const Key& key, BuildFn&& build, bool* was_hit = nullptr)
    {
        Shard& shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            if (was_hit != nullptr)
                *was_hit = true;
            // Move to the front of the LRU list; iterators stay valid.
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            return it->second->value;
        }
        std::shared_ptr<const Value> value = build();
        misses_.fetch_add(1, std::memory_order_relaxed);
        if (was_hit != nullptr)
            *was_hit = false;
        size_t w = weigher_ ? weigher_(*value) : size_t{1};
        shard.lru.push_front(Entry{key, value, w});
        shard.map.emplace(key, shard.lru.begin());
        shard.weight += w;
        while (shard.weight > per_shard_capacity_ && shard.lru.size() > 1) {
            const Entry& victim = shard.lru.back();
            shard.weight -= victim.weight;
            shard.map.erase(victim.key);
            shard.lru.pop_back();
            evictions_.fetch_add(1, std::memory_order_relaxed);
        }
        return value;
    }

    uint64_t hits() const { return hits_.load(); }
    uint64_t misses() const { return misses_.load(); }
    uint64_t evictions() const { return evictions_.load(); }

    /** Entries currently resident across all shards. */
    size_t
    entries() const
    {
        size_t n = 0;
        forEachShard([&n](const Shard& s) { n += s.lru.size(); });
        return n;
    }

    /** Total resident weight across all shards. */
    size_t
    weight() const
    {
        size_t w = 0;
        forEachShard([&w](const Shard& s) { w += s.weight; });
        return w;
    }

    /** All counters in one summable snapshot. */
    LruStats
    statsSnapshot() const
    {
        LruStats st{hits(), misses(), evictions(), 0, 0};
        forEachShard([&st](const Shard& s) {
            st.entries += s.lru.size();
            st.weight += s.weight;
        });
        return st;
    }

  private:
    struct Entry
    {
        Key key;
        std::shared_ptr<const Value> value;
        size_t weight;
    };

    struct Shard
    {
        std::mutex mutex;
        /** Most-recently-used first. */
        std::list<Entry> lru;
        std::unordered_map<Key, typename std::list<Entry>::iterator, Hash>
            map;
        size_t weight = 0;
    };

    Shard&
    shardFor(const Key& key)
    {
        return shards_[Hash{}(key) % kShards];
    }

    template <typename Fn>
    void
    forEachShard(Fn&& fn) const
    {
        for (const Shard& s : shards_) {
            std::lock_guard<std::mutex> lock(
                const_cast<std::mutex&>(s.mutex));
            fn(s);
        }
    }

    size_t per_shard_capacity_;
    Weigher weigher_;
    std::array<Shard, kShards> shards_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> evictions_{0};
};

} // namespace jsonski::util

#endif // JSONSKI_UTIL_SHARDED_LRU_H
