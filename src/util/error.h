/**
 * @file
 * Error types shared across the library.
 *
 * Following the CppCoreGuidelines split between programmer errors
 * (asserted) and input errors (thrown): malformed JSON or malformed
 * JSONPath raised by *user input* throws one of the exceptions below;
 * internal invariant violations use assert().
 *
 * Error handling contract (see DESIGN.md §7 for the full statement):
 * every fast-forward primitive and streaming entry point detects
 * truncated input, unbalanced containers, and unterminated strings and
 * throws ParseError with a machine-checkable ErrorCode and the byte
 * position where the damage was detected.  No primitive ever reads past
 * the end of the attached buffer, even on hostile input.
 */
#ifndef JSONSKI_UTIL_ERROR_H
#define JSONSKI_UTIL_ERROR_H

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

namespace jsonski {

/**
 * Machine-checkable failure kind carried by ParseError, so tests (and
 * retry/telemetry layers) can assert on *what* went wrong rather than
 * string-matching the message.
 */
enum class ErrorCode {
    Unspecified,        ///< legacy sites that predate the enum
    UnexpectedEnd,      ///< input truncated mid-value
    UnterminatedString, ///< no closing quote before end of input
    UnterminatedObject, ///< '{' never balanced by '}'
    UnterminatedArray,  ///< '[' never balanced by ']'
    UnterminatedRecord, ///< record stream ends inside a record
    UnbalancedClose,    ///< '}' or ']' with no matching opener
    ExpectedPunctuation,///< missing ',', ':', '{', ... where required
    BadAttributeName,   ///< attribute name absent or not a string
    BadValue,           ///< malformed literal / missing value
    BadEscape,          ///< malformed backslash or \uXXXX escape
    DepthExceeded,      ///< nesting beyond an engine's recursion bound
    StrayByte,          ///< garbage between top-level records
    RecordTooLarge,     ///< record exceeds an engine's size limit
    IoError,            ///< read failed mid-stream (disk/socket error)
    DeadlineExpired,    ///< a read or write deadline elapsed (service)
    HeaderTooLarge,     ///< request header exceeds the byte limit
    BadRequest,         ///< malformed service request header
    MatchLimitExceeded, ///< per-request match cap reached (service)
    IndexMismatch,      ///< structural index disagrees with the document
    TooManyQueries,     ///< query list exceeds the server's cap
};

/** Short stable name for an ErrorCode ("unterminated-string", ...). */
inline std::string_view
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Unspecified: return "unspecified";
      case ErrorCode::UnexpectedEnd: return "unexpected-end";
      case ErrorCode::UnterminatedString: return "unterminated-string";
      case ErrorCode::UnterminatedObject: return "unterminated-object";
      case ErrorCode::UnterminatedArray: return "unterminated-array";
      case ErrorCode::UnterminatedRecord: return "unterminated-record";
      case ErrorCode::UnbalancedClose: return "unbalanced-close";
      case ErrorCode::ExpectedPunctuation: return "expected-punctuation";
      case ErrorCode::BadAttributeName: return "bad-attribute-name";
      case ErrorCode::BadValue: return "bad-value";
      case ErrorCode::BadEscape: return "bad-escape";
      case ErrorCode::DepthExceeded: return "depth-exceeded";
      case ErrorCode::StrayByte: return "stray-byte";
      case ErrorCode::RecordTooLarge: return "record-too-large";
      case ErrorCode::IoError: return "io-error";
      case ErrorCode::DeadlineExpired: return "deadline-expired";
      case ErrorCode::HeaderTooLarge: return "header-too-large";
      case ErrorCode::BadRequest: return "bad-request";
      case ErrorCode::MatchLimitExceeded: return "match-limit-exceeded";
      case ErrorCode::IndexMismatch: return "index-mismatch";
      case ErrorCode::TooManyQueries: return "too-many-queries";
    }
    return "unknown";
}

/** Inverse of errorCodeName(); Unspecified for unknown names. */
inline ErrorCode
errorCodeFromName(std::string_view name)
{
    for (int i = 0; i <= static_cast<int>(ErrorCode::TooManyQueries);
         ++i) {
        auto code = static_cast<ErrorCode>(i);
        if (errorCodeName(code) == name)
            return code;
    }
    return ErrorCode::Unspecified;
}

/** Malformed JSON input detected during parsing or streaming. */
class ParseError : public std::runtime_error
{
  public:
    ParseError(std::string what, size_t position)
        : ParseError(ErrorCode::Unspecified, std::move(what), position)
    {}

    ParseError(ErrorCode code, std::string what, size_t position)
        : std::runtime_error(std::move(what) + " (at byte " +
                             std::to_string(position) + ")"),
          code_(code),
          position_(position)
    {}

    /** Byte offset in the input where the error was detected. */
    size_t position() const { return position_; }

    /** The failure kind. */
    ErrorCode code() const { return code_; }

  private:
    ErrorCode code_;
    size_t position_;
};

/**
 * Invalid process configuration from the environment or flags (e.g. an
 * unknown JSONSKI_KERNEL name).  Distinct from ParseError: the *input*
 * is fine, the *deployment* is not, and the caller should fail fast
 * rather than fall back silently.
 */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string& what)
        : std::runtime_error("bad configuration: " + what)
    {}
};

/** Malformed JSONPath query expression. */
class PathError : public std::runtime_error
{
  public:
    /** Sentinel for "no position available" (capability rejections). */
    static constexpr size_t kNoPosition = static_cast<size_t>(-1);

    explicit PathError(const std::string& what)
        : std::runtime_error("bad JSONPath: " + what),
          position_(kNoPosition)
    {}

    PathError(const std::string& what, size_t position)
        : std::runtime_error("bad JSONPath: " + what + " (at offset " +
                             std::to_string(position) + ")"),
          position_(position)
    {}

    /**
     * Byte offset in the query text where the parser rejected it, or
     * kNoPosition when the error is not tied to a specific byte (e.g.
     * an engine rejecting an unsupported-but-well-formed query).
     */
    size_t position() const { return position_; }

  private:
    size_t position_;
};

} // namespace jsonski

#endif // JSONSKI_UTIL_ERROR_H
