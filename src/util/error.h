/**
 * @file
 * Error types shared across the library.
 *
 * Following the CppCoreGuidelines split between programmer errors
 * (asserted) and input errors (thrown): malformed JSON or malformed
 * JSONPath raised by *user input* throws one of the exceptions below;
 * internal invariant violations use assert().
 */
#ifndef JSONSKI_UTIL_ERROR_H
#define JSONSKI_UTIL_ERROR_H

#include <cstddef>
#include <stdexcept>
#include <string>

namespace jsonski {

/** Malformed JSON input detected during parsing or streaming. */
class ParseError : public std::runtime_error
{
  public:
    ParseError(std::string what, size_t position)
        : std::runtime_error(std::move(what) + " (at byte " +
                             std::to_string(position) + ")"),
          position_(position)
    {}

    /** Byte offset in the input where the error was detected. */
    size_t position() const { return position_; }

  private:
    size_t position_;
};

/** Malformed JSONPath query expression. */
class PathError : public std::runtime_error
{
  public:
    explicit PathError(const std::string& what)
        : std::runtime_error("bad JSONPath: " + what)
    {}
};

} // namespace jsonski

#endif // JSONSKI_UTIL_ERROR_H
