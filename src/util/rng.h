/**
 * @file
 * Deterministic pseudo-random number generation for the synthetic
 * dataset generators.  A fixed, seedable generator keeps every
 * experiment reproducible bit-for-bit across runs and machines.
 */
#ifndef JSONSKI_UTIL_RNG_H
#define JSONSKI_UTIL_RNG_H

#include <cstdint>
#include <string>
#include <string_view>

namespace jsonski {

/**
 * xoshiro256** by Blackman & Vigna — small, fast, and high quality;
 * implemented locally so the generators do not depend on libstdc++'s
 * unspecified distribution algorithms.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        // SplitMix64 seeding to fill the state from one word.
        uint64_t z = seed;
        for (auto& s : state_) {
            z += 0x9E3779B97F4A7C15ULL;
            uint64_t w = z;
            w = (w ^ (w >> 30)) * 0xBF58476D1CE4E5B9ULL;
            w = (w ^ (w >> 27)) * 0x94D049BB133111EBULL;
            s = w ^ (w >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        auto rotl = [](uint64_t x, int k) {
            return (x << k) | (x >> (64 - k));
        };
        uint64_t result = rotl(state_[1] * 5, 7) * 9;
        uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, n). @pre n > 0. */
    uint64_t
    below(uint64_t n)
    {
        // Lemire's nearly-divisionless method (bias negligible here).
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * n) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

    /** Random lowercase ASCII identifier of length @p len. */
    std::string
    ident(size_t len)
    {
        static constexpr std::string_view alphabet =
            "abcdefghijklmnopqrstuvwxyz";
        std::string s;
        s.reserve(len);
        for (size_t i = 0; i < len; ++i)
            s.push_back(alphabet[below(alphabet.size())]);
        return s;
    }

  private:
    uint64_t state_[4];
};

} // namespace jsonski

#endif // JSONSKI_UTIL_RNG_H
