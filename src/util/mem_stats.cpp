#include "util/mem_stats.h"

namespace jsonski::mem {

std::atomic<size_t> g_current{0};
std::atomic<size_t> g_peak{0};

} // namespace jsonski::mem
