/**
 * @file
 * Global operator new/delete replacements that account every heap
 * allocation.  Linked only into binaries that need Figure 13's memory
 * measurements (and the mem_stats unit test); everything else uses the
 * default allocator untouched.
 *
 * The size of each allocation is remembered in a small header placed in
 * front of the user block so sized and unsized deallocation both work.
 */
#include "util/mem_stats.h"

#include <cstdlib>
#include <new>

namespace jsonski::mem {
namespace {

constexpr size_t kHeader = 2 * sizeof(std::max_align_t);

void
add(size_t n)
{
    size_t cur =
        g_current.fetch_add(n, std::memory_order_relaxed) + n;
    size_t peak = g_peak.load(std::memory_order_relaxed);
    while (cur > peak &&
           !g_peak.compare_exchange_weak(peak, cur,
                                         std::memory_order_relaxed)) {
    }
}

void*
allocate(size_t n)
{
    void* raw = std::malloc(n + kHeader);
    if (!raw)
        throw std::bad_alloc();
    *static_cast<size_t*>(raw) = n;
    add(n);
    return static_cast<char*>(raw) + kHeader;
}

void
release(void* p) noexcept
{
    if (!p)
        return;
    void* raw = static_cast<char*>(p) - kHeader;
    size_t n = *static_cast<size_t*>(raw);
    g_current.fetch_sub(n, std::memory_order_relaxed);
    std::free(raw);
}

} // namespace
} // namespace jsonski::mem

void*
operator new(size_t n)
{
    return jsonski::mem::allocate(n);
}

void*
operator new[](size_t n)
{
    return jsonski::mem::allocate(n);
}

void
operator delete(void* p) noexcept
{
    jsonski::mem::release(p);
}

void
operator delete[](void* p) noexcept
{
    jsonski::mem::release(p);
}

void
operator delete(void* p, size_t) noexcept
{
    jsonski::mem::release(p);
}

void
operator delete[](void* p, size_t) noexcept
{
    jsonski::mem::release(p);
}
