/**
 * @file
 * Heap accounting used to reproduce Figure 13 (memory footprint).
 *
 * Binaries that link the `jsonski_memhook` library get global
 * operator new/delete replacements that maintain the counters declared
 * here.  Binaries that do not link it still compile against this header;
 * the counters then simply stay at zero.
 */
#ifndef JSONSKI_UTIL_MEM_STATS_H
#define JSONSKI_UTIL_MEM_STATS_H

#include <atomic>
#include <cstddef>

namespace jsonski::mem {

/** Live heap bytes allocated through the hooked operators. */
extern std::atomic<size_t> g_current;

/** High-water mark of g_current since the last resetPeak(). */
extern std::atomic<size_t> g_peak;

/** Current live heap bytes. */
inline size_t current() { return g_current.load(std::memory_order_relaxed); }

/** Peak live heap bytes since the last resetPeak(). */
inline size_t peak() { return g_peak.load(std::memory_order_relaxed); }

/** Reset the peak tracker to the current live size. */
inline void
resetPeak()
{
    g_peak.store(g_current.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

} // namespace jsonski::mem

#endif // JSONSKI_UTIL_MEM_STATS_H
