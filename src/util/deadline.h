/**
 * @file
 * Absolute deadline for poll()-driven I/O loops.
 *
 * Every deadline in the service layer used to be a *per-poll* timeout:
 * each `poll(fd, deadline_ms)` restarted the full window, so a peer
 * making one byte of progress per window could hold a connection (and
 * its worker-pool slot) forever — the classic slow-loris shape.  A
 * Deadline is armed once, at the start of the operation it bounds, and
 * every subsequent poll() gets only the *remaining* time; progress
 * never resets the clock.  DESIGN.md §12 states which envelope each
 * server operation runs under.
 *
 * An unarmed (default-constructed, or after(ms<=0)) Deadline never
 * expires and yields the poll() "wait forever" timeout of -1, which
 * preserves the `0 = no deadline` convention of the config knobs.
 */
#ifndef JSONSKI_UTIL_DEADLINE_H
#define JSONSKI_UTIL_DEADLINE_H

#include <algorithm>
#include <chrono>
#include <climits>

namespace jsonski {

/** See file comment. */
class Deadline
{
    using Clock = std::chrono::steady_clock;

  public:
    /** Unarmed: never expires, polls wait forever. */
    Deadline() = default;

    /** Armed @p ms from now; @p ms <= 0 yields an unarmed deadline. */
    static Deadline
    after(int ms)
    {
        Deadline d;
        if (ms > 0) {
            d.armed_ = true;
            d.at_ = Clock::now() + std::chrono::milliseconds(ms);
        }
        return d;
    }

    bool armed() const { return armed_; }

    bool expired() const { return armed_ && Clock::now() >= at_; }

    /**
     * Timeout for the next poll(): remaining whole milliseconds
     * (clamped to >= 0 so an expired deadline polls without blocking),
     * or -1 (wait forever) when unarmed.
     */
    int
    pollTimeoutMs() const
    {
        if (!armed_)
            return -1;
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        at_ - Clock::now())
                        .count();
        if (left <= 0)
            return 0;
        return static_cast<int>(
            std::min<long long>(left, INT_MAX));
    }

  private:
    bool armed_ = false;
    Clock::time_point at_{};
};

} // namespace jsonski

#endif // JSONSKI_UTIL_DEADLINE_H
