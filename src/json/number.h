/**
 * @file
 * Numeric decoding of matched values.  The engines return raw JSON
 * text; these helpers turn number tokens into typed values, keeping
 * the integer/double distinction JSON cannot express in its grammar.
 */
#ifndef JSONSKI_JSON_NUMBER_H
#define JSONSKI_JSON_NUMBER_H

#include <cstdint>
#include <string_view>

namespace jsonski::json {

/** A decoded JSON number: integer when exactly representable. */
struct Number
{
    enum class Kind { Int, Double, Invalid };

    Kind kind = Kind::Invalid;
    int64_t i = 0;  ///< valid when kind == Int
    double d = 0.0; ///< valid for Int (converted) and Double

    bool isInt() const { return kind == Kind::Int; }
    bool isDouble() const { return kind == Kind::Double; }
    explicit operator bool() const { return kind != Kind::Invalid; }

    /** The value as a double regardless of kind. */
    double
    asDouble() const
    {
        return kind == Kind::Int ? static_cast<double>(i) : d;
    }
};

/**
 * Parse a complete JSON number token (no surrounding whitespace).
 * Tokens with a fraction, an exponent, or magnitude beyond int64
 * decode as Double; plain integers as Int.  Returns Kind::Invalid for
 * anything that is not exactly one valid JSON number.
 */
Number parseNumber(std::string_view token);

} // namespace jsonski::json

#endif // JSONSKI_JSON_NUMBER_H
