/**
 * @file
 * Full recursive JSON validator.
 *
 * Used by tests and the dataset generators to guarantee that every
 * synthetic input is well-formed, and exposed publicly for users who
 * want the validation the fast-forwarded stream skips (paper §3.3).
 */
#ifndef JSONSKI_JSON_VALIDATE_H
#define JSONSKI_JSON_VALIDATE_H

#include <cstddef>
#include <string>
#include <string_view>

namespace jsonski::json {

/** Outcome of validate(). */
struct ValidationResult
{
    bool ok = true;
    size_t error_position = 0;
    std::string message;

    explicit operator bool() const { return ok; }
};

/**
 * Validate that @p input is exactly one well-formed JSON value
 * (object, array, or primitive) with optional surrounding whitespace.
 */
ValidationResult validate(std::string_view input);

} // namespace jsonski::json

#endif // JSONSKI_JSON_VALIDATE_H
