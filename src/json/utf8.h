/**
 * @file
 * UTF-8 validation with an ASCII SIMD fast path.
 *
 * Fast-forwarded regions skip syntactic validation (paper §3.3);
 * encoding validation is likewise a separate, optional pass.  This
 * module provides it: blocks that are pure ASCII (the overwhelming
 * majority in machine-generated JSON) are cleared 64 bytes at a time
 * with one vector test; only blocks containing high bytes run the
 * scalar DFA.
 */
#ifndef JSONSKI_JSON_UTF8_H
#define JSONSKI_JSON_UTF8_H

#include <cstddef>
#include <string_view>

namespace jsonski::json {

/** Outcome of UTF-8 validation. */
struct Utf8Result
{
    bool ok = true;
    size_t error_position = 0; ///< offset of the offending byte

    explicit operator bool() const { return ok; }
};

/**
 * Validate that @p data is well-formed UTF-8: no truncated or overlong
 * sequences, no surrogate code points, nothing above U+10FFFF.
 */
Utf8Result validateUtf8(std::string_view data);

} // namespace jsonski::json

#endif // JSONSKI_JSON_UTF8_H
