#include "json/text.h"

#include <cstdint>

#include "util/error.h"

namespace jsonski::json {

size_t
skipWhitespace(std::string_view s, size_t pos)
{
    while (pos < s.size() && isWhitespace(s[pos]))
        ++pos;
    return pos;
}

size_t
scanString(std::string_view s, size_t pos)
{
    // pos is at the opening quote.
    for (size_t i = pos + 1; i < s.size(); ++i) {
        if (s[i] == '\\') {
            ++i; // skip the escaped character
        } else if (s[i] == '"') {
            return i + 1;
        }
    }
    return std::string_view::npos;
}

size_t
scanPrimitive(std::string_view s, size_t pos)
{
    while (pos < s.size()) {
        char c = s[pos];
        if (isWhitespace(c) || c == ',' || c == '}' || c == ']' ||
            c == '{' || c == '[' || c == ':') {
            break;
        }
        ++pos;
    }
    return pos;
}

std::string
escapeString(std::string_view raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static constexpr char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xF];
                out += hex[c & 0xF];
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

unsigned
hexValue(char c, size_t at)
{
    if (c >= '0' && c <= '9')
        return static_cast<unsigned>(c - '0');
    if (c >= 'a' && c <= 'f')
        return static_cast<unsigned>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F')
        return static_cast<unsigned>(c - 'A' + 10);
    throw ParseError(ErrorCode::BadEscape, "bad hex digit in \\u escape",
                         at);
}

void
appendUtf8(std::string& out, uint32_t cp)
{
    if (cp < 0x80) {
        out += static_cast<char>(cp);
    } else if (cp < 0x800) {
        out += static_cast<char>(0xC0 | (cp >> 6));
        out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
        out += static_cast<char>(0xE0 | (cp >> 12));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
        out += static_cast<char>(0xF0 | (cp >> 18));
        out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
    }
}

} // namespace

std::string
unescapeString(std::string_view body)
{
    std::string out;
    out.reserve(body.size());
    for (size_t i = 0; i < body.size(); ++i) {
        char c = body[i];
        if (c != '\\') {
            out += c;
            continue;
        }
        if (i + 1 >= body.size())
            throw ParseError(ErrorCode::BadEscape, "dangling backslash", i);
        char e = body[++i];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (i + 4 >= body.size())
                throw ParseError(ErrorCode::BadEscape, "truncated \\u escape", i);
            uint32_t cp = 0;
            for (int k = 1; k <= 4; ++k)
                cp = cp * 16 + hexValue(body[i + k], i + k);
            i += 4;
            if (cp >= 0xD800 && cp < 0xDC00) {
                // High surrogate: require a following \uXXXX low half.
                if (i + 6 >= body.size() || body[i + 1] != '\\' ||
                    body[i + 2] != 'u') {
                    throw ParseError(ErrorCode::BadEscape, "unpaired high surrogate", i);
                }
                uint32_t lo = 0;
                for (int k = 3; k <= 6; ++k)
                    lo = lo * 16 + hexValue(body[i + k], i + k);
                if (lo < 0xDC00 || lo > 0xDFFF)
                    throw ParseError(ErrorCode::BadEscape, "bad low surrogate", i);
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                i += 6;
            } else if (cp >= 0xDC00 && cp < 0xE000) {
                throw ParseError(ErrorCode::BadEscape, "unpaired low surrogate", i);
            }
            appendUtf8(out, cp);
            break;
          }
          default:
            throw ParseError(ErrorCode::BadEscape, "unknown escape", i);
        }
    }
    return out;
}

} // namespace jsonski::json
