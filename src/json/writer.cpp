#include "json/writer.h"

#include <cassert>
#include <charconv>

#include "json/text.h"

namespace jsonski::json {

void
Writer::prepareValue()
{
    assert((stack_.empty() || stack_.back() == Ctx::Array || after_key_) &&
           "value inside an object requires a preceding key()");
    if (need_comma_ && !after_key_)
        out_ += ',';
    after_key_ = false;
    need_comma_ = true;
}

void
Writer::beginObject()
{
    prepareValue();
    out_ += '{';
    stack_.push_back(Ctx::Object);
    need_comma_ = false;
}

void
Writer::endObject()
{
    assert(!stack_.empty() && stack_.back() == Ctx::Object);
    stack_.pop_back();
    out_ += '}';
    need_comma_ = true;
}

void
Writer::beginArray()
{
    prepareValue();
    out_ += '[';
    stack_.push_back(Ctx::Array);
    need_comma_ = false;
}

void
Writer::endArray()
{
    assert(!stack_.empty() && stack_.back() == Ctx::Array);
    stack_.pop_back();
    out_ += ']';
    need_comma_ = true;
}

void
Writer::key(std::string_view name)
{
    assert(!stack_.empty() && stack_.back() == Ctx::Object);
    assert(!after_key_);
    if (need_comma_)
        out_ += ',';
    out_ += '"';
    out_ += escapeString(name);
    out_ += "\":";
    after_key_ = true;
    need_comma_ = true;
}

void
Writer::string(std::string_view value)
{
    prepareValue();
    out_ += '"';
    out_ += escapeString(value);
    out_ += '"';
}

void
Writer::number(int64_t value)
{
    prepareValue();
    char buf[24];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    assert(ec == std::errc{});
    out_.append(buf, end);
}

void
Writer::number(double value)
{
    prepareValue();
    char buf[32];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    assert(ec == std::errc{});
    out_.append(buf, end);
}

void
Writer::boolean(bool value)
{
    prepareValue();
    out_ += value ? "true" : "false";
}

void
Writer::null()
{
    prepareValue();
    out_ += "null";
}

void
Writer::raw(std::string_view text)
{
    prepareValue();
    out_ += text;
}

std::string
Writer::take()
{
    assert(stack_.empty() && "unbalanced begin/end");
    std::string result = std::move(out_);
    out_.clear();
    need_comma_ = false;
    after_key_ = false;
    return result;
}

} // namespace jsonski::json
