#include "json/utf8.h"

#include <cstdint>

#include "kernels/kernel.h"

namespace jsonski::json {
namespace {

/**
 * Validate one multi-byte sequence starting at @p i.
 * @return length of the sequence, or 0 on error.
 */
size_t
sequenceLength(std::string_view s, size_t i)
{
    auto cont = [&](size_t k) {
        return k < s.size() &&
               (static_cast<uint8_t>(s[k]) & 0xC0) == 0x80;
    };
    uint8_t b0 = static_cast<uint8_t>(s[i]);
    if (b0 < 0xC2)
        return 0; // continuation byte or overlong C0/C1 lead
    if (b0 < 0xE0) {
        // 2-byte: U+0080..U+07FF
        return cont(i + 1) ? 2 : 0;
    }
    if (b0 < 0xF0) {
        // 3-byte: U+0800..U+FFFF, minus surrogates
        if (!cont(i + 1) || !cont(i + 2))
            return 0;
        uint8_t b1 = static_cast<uint8_t>(s[i + 1]);
        if (b0 == 0xE0 && b1 < 0xA0)
            return 0; // overlong
        if (b0 == 0xED && b1 >= 0xA0)
            return 0; // UTF-16 surrogate range
        return 3;
    }
    if (b0 < 0xF5) {
        // 4-byte: U+10000..U+10FFFF
        if (!cont(i + 1) || !cont(i + 2) || !cont(i + 3))
            return 0;
        uint8_t b1 = static_cast<uint8_t>(s[i + 1]);
        if (b0 == 0xF0 && b1 < 0x90)
            return 0; // overlong
        if (b0 == 0xF4 && b1 >= 0x90)
            return 0; // above U+10FFFF
        return 4;
    }
    return 0; // F5..FF are never valid leads
}

} // namespace

Utf8Result
validateUtf8(std::string_view data)
{
    // Hoist the kernel lookup out of the loop: one dispatched
    // ascii_block call per 64 bytes, resolved once.
    const kernels::Kernel& k = kernels::active();
    size_t i = 0;
    const size_t n = data.size();
    while (i < n) {
        // Vector fast path over aligned-ish full blocks.
        while (i + 64 <= n && k.ascii_block(data.data() + i))
            i += 64;
        if (i >= n)
            break;
        uint8_t b = static_cast<uint8_t>(data[i]);
        if (b < 0x80) {
            ++i;
            continue;
        }
        size_t len = sequenceLength(data, i);
        if (len == 0)
            return {false, i};
        i += len;
    }
    return {};
}

} // namespace jsonski::json
