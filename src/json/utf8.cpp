#include "json/utf8.h"

#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace jsonski::json {
namespace {

/** True when all 64 bytes at @p p are ASCII (< 0x80). */
bool
asciiBlock(const char* p)
{
#if defined(__AVX2__)
    __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    __m256i hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32));
    return (_mm256_movemask_epi8(lo) | _mm256_movemask_epi8(hi)) == 0;
#else
    uint64_t acc = 0;
    for (int i = 0; i < 8; ++i) {
        uint64_t w;
        __builtin_memcpy(&w, p + i * 8, 8);
        acc |= w;
    }
    return (acc & 0x8080808080808080ULL) == 0;
#endif
}

/**
 * Validate one multi-byte sequence starting at @p i.
 * @return length of the sequence, or 0 on error.
 */
size_t
sequenceLength(std::string_view s, size_t i)
{
    auto cont = [&](size_t k) {
        return k < s.size() &&
               (static_cast<uint8_t>(s[k]) & 0xC0) == 0x80;
    };
    uint8_t b0 = static_cast<uint8_t>(s[i]);
    if (b0 < 0xC2)
        return 0; // continuation byte or overlong C0/C1 lead
    if (b0 < 0xE0) {
        // 2-byte: U+0080..U+07FF
        return cont(i + 1) ? 2 : 0;
    }
    if (b0 < 0xF0) {
        // 3-byte: U+0800..U+FFFF, minus surrogates
        if (!cont(i + 1) || !cont(i + 2))
            return 0;
        uint8_t b1 = static_cast<uint8_t>(s[i + 1]);
        if (b0 == 0xE0 && b1 < 0xA0)
            return 0; // overlong
        if (b0 == 0xED && b1 >= 0xA0)
            return 0; // UTF-16 surrogate range
        return 3;
    }
    if (b0 < 0xF5) {
        // 4-byte: U+10000..U+10FFFF
        if (!cont(i + 1) || !cont(i + 2) || !cont(i + 3))
            return 0;
        uint8_t b1 = static_cast<uint8_t>(s[i + 1]);
        if (b0 == 0xF0 && b1 < 0x90)
            return 0; // overlong
        if (b0 == 0xF4 && b1 >= 0x90)
            return 0; // above U+10FFFF
        return 4;
    }
    return 0; // F5..FF are never valid leads
}

} // namespace

Utf8Result
validateUtf8(std::string_view data)
{
    size_t i = 0;
    const size_t n = data.size();
    while (i < n) {
        // Vector fast path over aligned-ish full blocks.
        while (i + 64 <= n && asciiBlock(data.data() + i))
            i += 64;
        if (i >= n)
            break;
        uint8_t b = static_cast<uint8_t>(data[i]);
        if (b < 0x80) {
            ++i;
            continue;
        }
        size_t len = sequenceLength(data, i);
        if (len == 0)
            return {false, i};
        i += len;
    }
    return {};
}

} // namespace jsonski::json
