/**
 * @file
 * Streaming JSON writer used by the synthetic dataset generators.
 *
 * Emits syntactically valid JSON into a growable string buffer with
 * explicit begin/end calls; nesting correctness is enforced with an
 * internal context stack in debug builds.
 */
#ifndef JSONSKI_JSON_WRITER_H
#define JSONSKI_JSON_WRITER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace jsonski::json {

/** See file comment. */
class Writer
{
  public:
    Writer() { stack_.reserve(16); }

    /** Start/finish the current object value. */
    void beginObject();
    void endObject();

    /** Start/finish the current array value. */
    void beginArray();
    void endArray();

    /** Emit an attribute name; must be followed by exactly one value. */
    void key(std::string_view name);

    /** Primitive values. */
    void string(std::string_view value);
    void number(int64_t value);
    void number(double value);
    void boolean(bool value);
    void null();

    /** Emit pre-rendered JSON text verbatim as one value. */
    void raw(std::string_view text);

    /** Finished document; @pre nesting is balanced. */
    std::string take();

    /** Current size of the buffer in bytes. */
    size_t size() const { return out_.size(); }

    /** Read-only view of what has been emitted so far. */
    std::string_view view() const { return out_; }

  private:
    enum class Ctx : uint8_t { Object, Array };

    void prepareValue();

    std::string out_;
    std::vector<Ctx> stack_;
    bool need_comma_ = false;
    bool after_key_ = false;
};

} // namespace jsonski::json

#endif // JSONSKI_JSON_WRITER_H
