#include "json/number.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <string>

namespace jsonski::json {
namespace {

/** Grammar check: exactly one RFC 8259 number in @p s. */
bool
isJsonNumber(std::string_view s)
{
    size_t i = 0;
    const size_t n = s.size();
    if (i < n && s[i] == '-')
        ++i;
    if (i >= n || !std::isdigit(static_cast<unsigned char>(s[i])))
        return false;
    if (s[i] == '0') {
        ++i;
    } else {
        while (i < n && std::isdigit(static_cast<unsigned char>(s[i])))
            ++i;
    }
    if (i < n && s[i] == '.') {
        ++i;
        size_t frac = 0;
        while (i < n && std::isdigit(static_cast<unsigned char>(s[i]))) {
            ++i;
            ++frac;
        }
        if (frac == 0)
            return false;
    }
    if (i < n && (s[i] == 'e' || s[i] == 'E')) {
        ++i;
        if (i < n && (s[i] == '+' || s[i] == '-'))
            ++i;
        size_t exp = 0;
        while (i < n && std::isdigit(static_cast<unsigned char>(s[i]))) {
            ++i;
            ++exp;
        }
        if (exp == 0)
            return false;
    }
    return i == n;
}

} // namespace

Number
parseNumber(std::string_view token)
{
    Number out;
    if (!isJsonNumber(token))
        return out;
    bool integral = token.find_first_of(".eE") == std::string_view::npos;
    if (integral) {
        int64_t v = 0;
        auto [end, ec] =
            std::from_chars(token.data(), token.data() + token.size(), v);
        if (ec == std::errc{} && end == token.data() + token.size()) {
            out.kind = Number::Kind::Int;
            out.i = v;
            out.d = static_cast<double>(v);
            return out;
        }
        // Integer overflow: fall through to double decoding.
    }
    double d = 0;
    auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc{} && ec != std::errc::result_out_of_range)
        return out;
    if (end != token.data() + token.size())
        return out;
    if (ec == std::errc::result_out_of_range) {
        // from_chars leaves d unmodified out of range; strtod pins the
        // policy instead: overflow saturates to +/-inf, underflow to a
        // signed (sub)normal near zero.
        d = std::strtod(std::string(token).c_str(), nullptr);
    }
    out.kind = Number::Kind::Double;
    out.d = d;
    return out;
}

} // namespace jsonski::json
