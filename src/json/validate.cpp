#include "json/validate.h"

#include <cctype>

#include "json/text.h"

namespace jsonski::json {
namespace {

/** Iterative-friendly recursive validator with bounded depth. */
class Validator
{
  public:
    explicit Validator(std::string_view s) : s_(s) {}

    ValidationResult
    run()
    {
        pos_ = skipWhitespace(s_, 0);
        if (!value())
            return fail();
        pos_ = skipWhitespace(s_, pos_);
        if (pos_ != s_.size()) {
            error("trailing characters after value");
            return fail();
        }
        return {};
    }

  private:
    static constexpr int kMaxDepth = 1024;

    ValidationResult
    fail()
    {
        return result_;
    }

    bool
    error(std::string msg)
    {
        if (result_.ok) {
            result_.ok = false;
            result_.error_position = pos_;
            result_.message = std::move(msg);
        }
        return false;
    }

    bool
    expect(char c)
    {
        if (pos_ >= s_.size() || s_[pos_] != c)
            return error(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool
    value()
    {
        if (++depth_ > kMaxDepth)
            return error("nesting too deep");
        pos_ = skipWhitespace(s_, pos_);
        if (pos_ >= s_.size()) {
            --depth_;
            return error("unexpected end of input");
        }
        bool ok = false;
        switch (s_[pos_]) {
          case '{': ok = object(); break;
          case '[': ok = array(); break;
          case '"': ok = stringLiteral(); break;
          case 't': ok = literal("true"); break;
          case 'f': ok = literal("false"); break;
          case 'n': ok = literal("null"); break;
          default: ok = number(); break;
        }
        --depth_;
        return ok;
    }

    bool
    object()
    {
        ++pos_; // '{'
        pos_ = skipWhitespace(s_, pos_);
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            pos_ = skipWhitespace(s_, pos_);
            if (pos_ >= s_.size() || s_[pos_] != '"')
                return error("expected attribute name");
            if (!stringLiteral())
                return false;
            pos_ = skipWhitespace(s_, pos_);
            if (!expect(':'))
                return false;
            if (!value())
                return false;
            pos_ = skipWhitespace(s_, pos_);
            if (pos_ >= s_.size())
                return error("unterminated object");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return error("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        pos_ = skipWhitespace(s_, pos_);
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            pos_ = skipWhitespace(s_, pos_);
            if (pos_ >= s_.size())
                return error("unterminated array");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return error("expected ',' or ']'");
        }
    }

    bool
    stringLiteral()
    {
        size_t end = scanString(s_, pos_);
        if (end == std::string_view::npos)
            return error("unterminated string");
        // Check escape validity inside the body.
        for (size_t i = pos_ + 1; i + 1 < end;) {
            if (s_[i] != '\\') {
                if (static_cast<unsigned char>(s_[i]) < 0x20)
                    return error("raw control character in string");
                ++i;
                continue;
            }
            char e = s_[i + 1];
            if (e == 'u') {
                if (i + 6 > end - 1)
                    return error("truncated \\u escape");
                for (size_t k = i + 2; k < i + 6; ++k) {
                    if (!std::isxdigit(static_cast<unsigned char>(s_[k])))
                        return error("bad \\u escape");
                }
                i += 6;
            } else if (e == '"' || e == '\\' || e == '/' || e == 'b' ||
                       e == 'f' || e == 'n' || e == 'r' || e == 't') {
                i += 2;
            } else {
                return error("invalid escape");
            }
        }
        pos_ = end;
        return true;
    }

    bool
    literal(std::string_view word)
    {
        if (s_.substr(pos_, word.size()) != word)
            return error("bad literal");
        pos_ += word.size();
        return true;
    }

    bool
    number()
    {
        size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        size_t digits = 0;
        while (pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
            ++digits;
        }
        if (digits == 0)
            return error("expected a value");
        // No leading zeros (except "0" itself).
        if (digits > 1 && s_[start] == '-' && s_[start + 1] == '0')
            return error("leading zero");
        if (digits > 1 && s_[start] == '0')
            return error("leading zero");
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            size_t frac = 0;
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
                ++frac;
            }
            if (frac == 0)
                return error("missing fraction digits");
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            size_t exp = 0;
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
                ++exp;
            }
            if (exp == 0)
                return error("missing exponent digits");
        }
        return true;
    }

    std::string_view s_;
    size_t pos_ = 0;
    int depth_ = 0;
    ValidationResult result_;
};

} // namespace

ValidationResult
validate(std::string_view input)
{
    return Validator(input).run();
}

} // namespace jsonski::json
