/**
 * @file
 * Scalar JSON text helpers shared by the engines: whitespace handling,
 * string-literal scanning, primitive scanning, and escaping.  These are
 * deliberately simple character-level routines; the bit-parallel layer
 * (intervals/) replaces them on the JSONSki hot path, while the
 * character-by-character baselines use them directly.
 */
#ifndef JSONSKI_JSON_TEXT_H
#define JSONSKI_JSON_TEXT_H

#include <cstddef>
#include <string>
#include <string_view>

namespace jsonski::json {

/** True for the four JSON whitespace bytes. */
inline bool
isWhitespace(char c)
{
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/** Advance @p pos past whitespace; returns the new position. */
size_t skipWhitespace(std::string_view s, size_t pos);

/**
 * Scan a string literal starting at the opening quote.
 *
 * @param s    Input text.
 * @param pos  Position of the opening '"'.
 * @return Position just past the closing quote, or std::string_view::npos
 *         when the literal is unterminated.
 */
size_t scanString(std::string_view s, size_t pos);

/**
 * Scan a primitive (number / true / false / null) starting at @p pos.
 * @return Position of the first byte after the primitive (a structural
 *         character or whitespace).
 */
size_t scanPrimitive(std::string_view s, size_t pos);

/** Escape @p raw into a JSON string literal body (no quotes added). */
std::string escapeString(std::string_view raw);

/**
 * Unescape the body of a JSON string literal (quotes excluded).
 * Handles the standard escapes and \\uXXXX (encoded as UTF-8;
 * surrogate pairs supported).  Throws ParseError on malformed escapes.
 */
std::string unescapeString(std::string_view body);

} // namespace jsonski::json

#endif // JSONSKI_JSON_TEXT_H
