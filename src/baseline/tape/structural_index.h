/**
 * @file
 * Stage 1 of the simdjson-class baseline: a bit-parallel scan that
 * materializes the positions of all structural characters (and string
 * openings) of the whole record *before* any querying — the defining
 * cost of the preprocessing scheme (paper §2, Table 3).
 *
 * Positions are 32-bit, mirroring simdjson's documented 4 GB record
 * limit (paper §5.4 notes the same cap for the original).
 */
#ifndef JSONSKI_BASELINE_TAPE_STRUCTURAL_INDEX_H
#define JSONSKI_BASELINE_TAPE_STRUCTURAL_INDEX_H

#include <cstdint>
#include <string_view>
#include <vector>

namespace jsonski::tape {

/** Record-wide index of structural positions, in document order. */
struct StructuralIndex
{
    /** Offsets of '{' '}' '[' ']' ':' ',' outside strings, plus the
     *  opening quote of every string literal. */
    std::vector<uint32_t> positions;
};

/**
 * Build the index with the SIMD block classifier.
 * @throws jsonski::ParseError if the input exceeds the 4 GB limit.
 */
StructuralIndex buildStructuralIndex(std::string_view json);

} // namespace jsonski::tape

#endif // JSONSKI_BASELINE_TAPE_STRUCTURAL_INDEX_H
