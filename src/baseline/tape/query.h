/**
 * @file
 * Path-query evaluation over the tape (simdjson-class baseline,
 * preprocessing scheme): stage 1 + stage 2 build the tape for the
 * whole record, then navigation touches only tape words.
 */
#ifndef JSONSKI_BASELINE_TAPE_QUERY_H
#define JSONSKI_BASELINE_TAPE_QUERY_H

#include <string_view>

#include "baseline/tape/tape.h"
#include "path/ast.h"
#include "path/matches.h"

namespace jsonski::tape {

/** Evaluate @p query over a built tape. */
size_t evaluate(const Tape& tape, std::string_view input,
                const path::PathQuery& query,
                path::MatchSink* sink = nullptr);

/** Full baseline pipeline: index + tape + query. */
size_t parseAndQuery(std::string_view json, const path::PathQuery& query,
                     path::MatchSink* sink = nullptr);

} // namespace jsonski::tape

#endif // JSONSKI_BASELINE_TAPE_QUERY_H
