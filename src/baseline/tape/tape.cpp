#include "baseline/tape/tape.h"

#include "json/text.h"
#include "util/error.h"

namespace jsonski::tape {
namespace {

constexpr uint64_t
word0(TapeType t, uint64_t payload)
{
    return (static_cast<uint64_t>(t) << Tape::kTypeShift) | payload;
}

} // namespace

Tape
buildTape(std::string_view json, const StructuralIndex& index)
{
    Tape t;
    t.words.reserve(index.positions.size() * Tape::kNodeWords + 4);

    auto pushNode = [&t](TapeType ty, uint64_t payload, uint64_t second) {
        t.words.push_back(word0(ty, payload));
        t.words.push_back(second);
    };

    if (index.positions.empty()) {
        // Root-level number / literal.
        size_t v = json::skipWhitespace(json, 0);
        if (v >= json.size())
            throw ParseError("empty input", 0);
        size_t end = json.size();
        while (end > v && json::isWhitespace(json[end - 1]))
            --end;
        pushNode(TapeType::Primitive, v, end);
        return t;
    }

    std::vector<size_t> stack; // tape indices of open container nodes
    std::vector<char> ctx;     // '{' / '['
    bool expect_key = false;

    // A primitive sits between structural position @p after and the
    // next indexed position iff the first non-whitespace byte comes
    // before it.
    auto maybePrimitive = [&](size_t after, size_t next_pos) {
        size_t v = json::skipWhitespace(json, after);
        if (v < next_pos) {
            size_t end = next_pos;
            while (end > v && json::isWhitespace(json[end - 1]))
                --end;
            pushNode(TapeType::Primitive, v, end);
        }
    };

    size_t n = index.positions.size();
    for (size_t i = 0; i < n; ++i) {
        size_t p = index.positions[i];
        size_t next_pos = i + 1 < n ? index.positions[i + 1] : json.size();
        switch (json[p]) {
          case '{':
            stack.push_back(t.words.size());
            pushNode(TapeType::ObjStart, 0, p);
            ctx.push_back('{');
            expect_key = true;
            break;
          case '}': {
            if (ctx.empty() || ctx.back() != '{')
                throw ParseError("unbalanced '}'", p);
            size_t open = stack.back();
            stack.pop_back();
            ctx.pop_back();
            size_t end_idx = t.words.size();
            t.words[open] = word0(TapeType::ObjStart,
                                  end_idx + Tape::kNodeWords);
            pushNode(TapeType::ObjEnd, open, p + 1);
            expect_key = false;
            break;
          }
          case '[':
            stack.push_back(t.words.size());
            pushNode(TapeType::AryStart, 0, p);
            ctx.push_back('[');
            expect_key = false;
            maybePrimitive(p + 1, next_pos);
            break;
          case ']': {
            if (ctx.empty() || ctx.back() != '[')
                throw ParseError("unbalanced ']'", p);
            size_t open = stack.back();
            stack.pop_back();
            ctx.pop_back();
            size_t end_idx = t.words.size();
            t.words[open] = word0(TapeType::AryStart,
                                  end_idx + Tape::kNodeWords);
            pushNode(TapeType::AryEnd, open, p + 1);
            expect_key = false;
            break;
          }
          case ':':
            expect_key = false;
            maybePrimitive(p + 1, next_pos);
            break;
          case ',':
            if (ctx.empty())
                throw ParseError("',' outside any container", p);
            if (ctx.back() == '{') {
                expect_key = true;
            } else {
                maybePrimitive(p + 1, next_pos);
            }
            break;
          case '"': {
            size_t send = json::scanString(json, p);
            if (send == std::string_view::npos)
                throw ParseError("unterminated string", p);
            pushNode(expect_key ? TapeType::Key : TapeType::String, p,
                     send);
            expect_key = false;
            break;
          }
          default:
            throw ParseError("unexpected structural character", p);
        }
    }
    if (!stack.empty())
        throw ParseError("unterminated container", json.size());
    return t;
}

} // namespace jsonski::tape
