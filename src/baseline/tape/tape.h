/**
 * @file
 * Stage 2 of the simdjson-class baseline: the *tape*, a flat in-memory
 * document representation built from the structural index.  Querying
 * happens over the tape only; the input is no longer parsed.
 *
 * Layout: every node occupies exactly two 64-bit words.
 *   word 0:  type (high 8 bits) | payload (low 56 bits)
 *   word 1:  second payload
 *
 * | type      | word0 payload                 | word1                  |
 * |-----------|-------------------------------|------------------------|
 * | ObjStart  | tape index past matching end  | input offset of '{'    |
 * | ObjEnd    | tape index of matching start  | input offset past '}'  |
 * | AryStart  | tape index past matching end  | input offset of '['    |
 * | AryEnd    | tape index of matching start  | input offset past ']'  |
 * | Key       | input offset of opening quote | offset past close quote|
 * | String    | input offset of opening quote | offset past close quote|
 * | Primitive | input begin offset            | input end offset       |
 */
#ifndef JSONSKI_BASELINE_TAPE_TAPE_H
#define JSONSKI_BASELINE_TAPE_TAPE_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "baseline/tape/structural_index.h"

namespace jsonski::tape {

/** Node kinds on the tape. */
enum class TapeType : uint8_t {
    ObjStart = 1,
    ObjEnd,
    AryStart,
    AryEnd,
    Key,
    String,
    Primitive,
};

/** The parsed document; see file comment for the layout. */
class Tape
{
  public:
    static constexpr int kTypeShift = 56;
    static constexpr uint64_t kPayloadMask =
        (uint64_t{1} << kTypeShift) - 1;

    /** Words per node. */
    static constexpr size_t kNodeWords = 2;

    std::vector<uint64_t> words;

    /** Tape index of the root value (0 unless the doc is empty). */
    size_t root = 0;

    TapeType
    typeAt(size_t i) const
    {
        return static_cast<TapeType>(words[i] >> kTypeShift);
    }

    uint64_t payloadAt(size_t i) const { return words[i] & kPayloadMask; }
    uint64_t secondAt(size_t i) const { return words[i + 1]; }

    /** Tape index just past the node starting at @p i. */
    size_t
    skip(size_t i) const
    {
        TapeType t = typeAt(i);
        if (t == TapeType::ObjStart || t == TapeType::AryStart)
            return static_cast<size_t>(payloadAt(i));
        return i + kNodeWords;
    }

    /** Raw input text of the value at @p i. */
    std::string_view
    textAt(size_t i, std::string_view input) const
    {
        TapeType t = typeAt(i);
        if (t == TapeType::ObjStart || t == TapeType::AryStart) {
            size_t end_idx = static_cast<size_t>(payloadAt(i)) - kNodeWords;
            uint64_t begin = secondAt(i);
            uint64_t end = secondAt(end_idx);
            return input.substr(begin, end - begin);
        }
        return input.substr(payloadAt(i), secondAt(i) - payloadAt(i));
    }
};

/**
 * Build the tape from the structural index (stage 2).
 * @throws jsonski::ParseError on structural malformations.
 */
Tape buildTape(std::string_view json, const StructuralIndex& index);

} // namespace jsonski::tape

#endif // JSONSKI_BASELINE_TAPE_TAPE_H
