#include "baseline/tape/query.h"

#include <algorithm>

#include "util/error.h"

namespace jsonski::tape {
namespace {

class Evaluator
{
  public:
    Evaluator(const Tape& tape, std::string_view input,
              const path::PathQuery& query, path::MatchSink* sink)
        : t_(tape), input_(input), q_(query), sink_(sink)
    {}

    size_t
    run()
    {
        if (t_.words.empty())
            return 0;
        return walk(t_.root, 0);
    }

  private:
    /**
     * Descendant search over the tape: every attribute named by the
     * step at any depth under node @p i, in document pre-order.
     */
    size_t
    walkDescendant(size_t i, size_t step)
    {
        const std::string& key = q_[step].key;
        TapeType ty = t_.typeAt(i);
        size_t matches = 0;
        if (ty == TapeType::ObjStart) {
            size_t end_idx =
                static_cast<size_t>(t_.payloadAt(i)) - Tape::kNodeWords;
            size_t cur = i + Tape::kNodeWords;
            while (cur < end_idx) {
                std::string_view name =
                    input_.substr(t_.payloadAt(cur) + 1,
                                  t_.secondAt(cur) - t_.payloadAt(cur) - 2);
                size_t value_idx = cur + Tape::kNodeWords;
                if (name == key)
                    matches += walk(value_idx, step + 1);
                matches += walkDescendant(value_idx, step);
                cur = t_.skip(value_idx);
            }
        } else if (ty == TapeType::AryStart) {
            size_t end_idx =
                static_cast<size_t>(t_.payloadAt(i)) - Tape::kNodeWords;
            size_t cur = i + Tape::kNodeWords;
            while (cur < end_idx) {
                matches += walkDescendant(cur, step);
                cur = t_.skip(cur);
            }
        }
        return matches;
    }

    size_t
    walk(size_t i, size_t step)
    {
        if (step == q_.size()) {
            if (sink_)
                sink_->onMatch(t_.textAt(i, input_));
            return 1;
        }
        const path::PathStep& s = q_[step];
        if (s.kind == path::PathStep::Kind::Descendant)
            return walkDescendant(i, step);
        if (s.kind == path::PathStep::Kind::Key) {
            if (t_.typeAt(i) != TapeType::ObjStart)
                return 0;
            size_t end_idx =
                static_cast<size_t>(t_.payloadAt(i)) - Tape::kNodeWords;
            size_t cur = i + Tape::kNodeWords;
            while (cur < end_idx) {
                // Key node, then its value node.
                std::string_view key =
                    input_.substr(t_.payloadAt(cur) + 1,
                                  t_.secondAt(cur) - t_.payloadAt(cur) - 2);
                size_t value_idx = cur + Tape::kNodeWords;
                if (key == s.key)
                    return walk(value_idx, step + 1);
                cur = t_.skip(value_idx);
            }
            return 0;
        }
        if (t_.typeAt(i) != TapeType::AryStart)
            return 0;
        size_t end_idx =
            static_cast<size_t>(t_.payloadAt(i)) - Tape::kNodeWords;
        size_t cur = i + Tape::kNodeWords;
        size_t idx = 0;
        size_t matches = 0;
        while (cur < end_idx && idx < s.hi) {
            if (s.coversIndex(idx))
                matches += walk(cur, step + 1);
            cur = t_.skip(cur);
            ++idx;
        }
        return matches;
    }

    const Tape& t_;
    std::string_view input_;
    const path::PathQuery& q_;
    path::MatchSink* sink_;
};

} // namespace

size_t
evaluate(const Tape& tape, std::string_view input,
         const path::PathQuery& query, path::MatchSink* sink)
{
    if (query.hasFilter())
        throw PathError("the tape evaluator does not support filters");
    if (query.hasInteriorDescendant()) {
        // The path-at-a-time recursion explores a matched child twice
        // (continuation first, then the deeper search), which breaks
        // the document-order emission contract interior descendants
        // pin down (DESIGN.md §13).
        throw PathError("the tape evaluator only supports a terminal "
                        "'..' step");
    }
    return Evaluator(tape, input, query, sink).run();
}

size_t
parseAndQuery(std::string_view json, const path::PathQuery& query,
              path::MatchSink* sink)
{
    StructuralIndex index = buildStructuralIndex(json);
    Tape tape = buildTape(json, index);
    return evaluate(tape, json, query, sink);
}

} // namespace jsonski::tape
