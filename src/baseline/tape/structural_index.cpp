#include "baseline/tape/structural_index.h"

#include <limits>

#include "intervals/classifier.h"
#include "util/bits.h"
#include "util/error.h"

namespace jsonski::tape {

StructuralIndex
buildStructuralIndex(std::string_view json)
{
    using namespace jsonski::intervals;
    if (json.size() > std::numeric_limits<uint32_t>::max())
        throw ParseError("record exceeds the 4 GB tape limit", 0);

    StructuralIndex index;
    // Structural density in real JSON is roughly one per 4-10 bytes.
    index.positions.reserve(json.size() / 6 + 16);

    ClassifierCarry carry;
    for (size_t base = 0; base < json.size(); base += kBlockSize) {
        size_t len = std::min(kBlockSize, json.size() - base);
        BlockBits b = len == kBlockSize
                          ? classifyBlock(json.data() + base, carry)
                          : classifyPartialBlock(json.data() + base, len,
                                                 carry);
        // String openings carry in_string = 1 at the quote itself.
        uint64_t interesting = b.structural() | (b.quote & b.in_string);
        while (interesting != 0) {
            index.positions.push_back(static_cast<uint32_t>(
                base + static_cast<size_t>(
                           bits::trailingZeros(interesting))));
            interesting = bits::clearLowest(interesting);
        }
    }
    return index;
}

} // namespace jsonski::tape
