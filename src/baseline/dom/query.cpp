#include "baseline/dom/query.h"

#include "baseline/dom/parser.h"
#include "path/automaton.h"
#include "path/filter.h"

namespace jsonski::dom {
namespace {

using path::NfaSet;
using path::PathQuery;
using path::PathStep;

/**
 * Verdict of filter step @p step on array element @p elem, from the
 * node's raw text — the same lexemes the streaming engine sees, so
 * both engines call the same path::evalPredicate.
 */
bool
filterVerdict(const PathStep& step, const Node* elem)
{
    if (!elem->isObject())
        return false; // `@.field` requires an object element
    const Node* field = elem->find(step.key);
    if (field == nullptr)
        return path::evalPredicate(step, false, {});
    return path::evalPredicate(step, true, field->text);
}

/**
 * NFA-multiset walk shared with the streaming engine's semantics
 * (DESIGN.md §13): emit the node once per accepting path, then recurse
 * in document order — pre-order overall, duplicates consecutive.  For
 * the deterministic surface (no interior descendant, no filter) this
 * reduces exactly to the old path-at-a-time recursion.
 */
size_t
walkNfa(const Node* node, const PathQuery& q, const NfaSet& set,
        path::MatchSink* sink)
{
    size_t matches = 0;
    uint64_t accept = set.acceptCount(q);
    for (uint64_t i = 0; i < accept; ++i) {
        ++matches;
        if (sink)
            sink->onMatch(node->text);
    }
    if (node->isObject() && path::nfaWantsObject(q, set)) {
        // One consumed mask per object: Key states bind to the first
        // member with their name only (duplicate-key contract).
        std::vector<char> consumed(set.states.size(), 0);
        for (const auto& [name, child] : node->members) {
            NfaSet next = path::nfaOnKey(q, set, name, &consumed);
            if (!next.empty())
                matches += walkNfa(child, q, next, sink);
        }
    } else if (node->isArray() && path::nfaWantsArray(q, set)) {
        std::vector<std::pair<size_t, uint64_t>> filters;
        for (size_t idx = 0; idx < node->elements.size(); ++idx) {
            filters.clear();
            NfaSet next =
                path::nfaOnElement(q, set, idx, &filters);
            for (const auto& [s, c] : filters) {
                if (filterVerdict(q[s], node->elements[idx]))
                    next.add(s + 1, c);
            }
            if (!next.empty())
                matches += walkNfa(node->elements[idx], q, next, sink);
        }
    }
    return matches;
}

} // namespace

size_t
evaluate(const Node* root, const path::PathQuery& query,
         path::MatchSink* sink)
{
    if (!root)
        return 0;
    NfaSet start;
    start.add(0, 1);
    return walkNfa(root, query, start, sink);
}

size_t
parseAndQuery(std::string_view json, const path::PathQuery& query,
              path::MatchSink* sink)
{
    Document doc;
    parse(json, doc);
    return evaluate(doc.root(), query, sink);
}

} // namespace jsonski::dom
