#include "baseline/dom/query.h"

#include "baseline/dom/parser.h"

namespace jsonski::dom {
namespace {

size_t walk(const Node* node, const path::PathQuery& q, size_t step,
            path::MatchSink* sink);

/**
 * Descendant search: every attribute named @p key at any depth, in
 * document pre-order (a matching attribute is reported before matches
 * nested inside its value).
 */
size_t
walkDescendant(const Node* node, const path::PathQuery& q, size_t step,
               path::MatchSink* sink)
{
    size_t matches = 0;
    const std::string& key = q[step].key;
    if (node->isObject()) {
        for (const auto& [name, child] : node->members) {
            if (name == key)
                matches += walk(child, q, step + 1, sink);
            matches += walkDescendant(child, q, step, sink);
        }
    } else if (node->isArray()) {
        for (const Node* child : node->elements)
            matches += walkDescendant(child, q, step, sink);
    }
    return matches;
}

size_t
walk(const Node* node, const path::PathQuery& q, size_t step,
     path::MatchSink* sink)
{
    if (step == q.size()) {
        if (sink)
            sink->onMatch(node->text);
        return 1;
    }
    const path::PathStep& s = q[step];
    if (s.kind == path::PathStep::Kind::Descendant)
        return walkDescendant(node, q, step, sink);
    size_t matches = 0;
    if (s.kind == path::PathStep::Kind::Key) {
        if (!node->isObject())
            return 0;
        if (const Node* child = node->find(s.key))
            matches += walk(child, q, step + 1, sink);
    } else {
        if (!node->isArray())
            return 0;
        size_t hi = std::min(s.hi, node->elements.size());
        for (size_t i = s.lo; i < hi; ++i)
            matches += walk(node->elements[i], q, step + 1, sink);
    }
    return matches;
}

} // namespace

size_t
evaluate(const Node* root, const path::PathQuery& query,
         path::MatchSink* sink)
{
    if (!root)
        return 0;
    return walk(root, query, 0, sink);
}

size_t
parseAndQuery(std::string_view json, const path::PathQuery& query,
              path::MatchSink* sink)
{
    Document doc;
    parse(json, doc);
    return evaluate(doc.root(), query, sink);
}

} // namespace jsonski::dom
