/**
 * @file
 * Path-query evaluation over the DOM tree (preprocessing scheme,
 * paper Figure 3-(a)): parse first, then traverse top-down.
 */
#ifndef JSONSKI_BASELINE_DOM_QUERY_H
#define JSONSKI_BASELINE_DOM_QUERY_H

#include <string_view>

#include "baseline/dom/node.h"
#include "path/ast.h"
#include "path/matches.h"

namespace jsonski::dom {

/**
 * Evaluate @p query over a parsed tree rooted at @p root.
 * @return number of matches (also delivered to @p sink if non-null).
 */
size_t evaluate(const Node* root, const path::PathQuery& query,
                path::MatchSink* sink = nullptr);

/** Parse-then-query convenience covering the whole baseline pipeline. */
size_t parseAndQuery(std::string_view json, const path::PathQuery& query,
                     path::MatchSink* sink = nullptr);

} // namespace jsonski::dom

#endif // JSONSKI_BASELINE_DOM_QUERY_H
