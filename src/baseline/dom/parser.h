/**
 * @file
 * Recursive-descent parser building the DOM of node.h — the upfront
 * full-parse whose cost the preprocessing scheme always pays.
 */
#ifndef JSONSKI_BASELINE_DOM_PARSER_H
#define JSONSKI_BASELINE_DOM_PARSER_H

#include <string_view>

#include "baseline/dom/node.h"

namespace jsonski::dom {

/**
 * Parse @p json into @p doc (the document's previous contents are the
 * caller's responsibility — pass a fresh Document).
 *
 * @throws jsonski::ParseError on malformed input.
 */
void parse(std::string_view json, Document& doc);

} // namespace jsonski::dom

#endif // JSONSKI_BASELINE_DOM_PARSER_H
