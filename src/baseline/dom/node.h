/**
 * @file
 * Parse-tree representation for the conventional DOM baseline
 * (RapidJSON-class "preprocessing scheme", paper §2).
 *
 * Nodes reference the input text with string_views, so the input
 * buffer must outlive the Document.  Nodes live in a deque arena for
 * stable pointers and cheap bulk destruction.
 */
#ifndef JSONSKI_BASELINE_DOM_NODE_H
#define JSONSKI_BASELINE_DOM_NODE_H

#include <cstdint>
#include <deque>
#include <string_view>
#include <utility>
#include <vector>

namespace jsonski::dom {

/** One parse-tree node. */
struct Node
{
    enum class Type : uint8_t { Object, Array, String, Number, Bool, Null };

    Type type = Type::Null;

    /** Raw text of the value (primitives; strings include quotes). */
    std::string_view text;

    /** Attribute name -> child (objects; names exclude quotes). */
    std::vector<std::pair<std::string_view, Node*>> members;

    /** Children in order (arrays). */
    std::vector<Node*> elements;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }

    /** Linear member lookup (objects), nullptr when absent. */
    const Node*
    find(std::string_view key) const
    {
        for (const auto& [name, child] : members) {
            if (name == key)
                return child;
        }
        return nullptr;
    }
};

/** A parsed record: node arena plus its root. */
class Document
{
  public:
    Node*
    newNode(Node::Type type)
    {
        Node& n = arena_.emplace_back();
        n.type = type;
        return &n;
    }

    void setRoot(Node* root) { root_ = root; }
    const Node* root() const { return root_; }

    /** Number of nodes in the tree (for memory diagnostics). */
    size_t nodeCount() const { return arena_.size(); }

  private:
    std::deque<Node> arena_;
    Node* root_ = nullptr;
};

} // namespace jsonski::dom

#endif // JSONSKI_BASELINE_DOM_NODE_H
