#include "baseline/dom/parser.h"

#include "json/text.h"
#include "util/error.h"

namespace jsonski::dom {
namespace {

class Parser
{
  public:
    Parser(std::string_view s, Document& doc) : s_(s), doc_(doc) {}

    void
    run()
    {
        pos_ = json::skipWhitespace(s_, 0);
        if (pos_ >= s_.size())
            throw ParseError("empty input", 0);
        Node* root = value();
        pos_ = json::skipWhitespace(s_, pos_);
        if (pos_ != s_.size())
            throw ParseError("trailing characters", pos_);
        doc_.setRoot(root);
    }

  private:
    static constexpr int kMaxDepth = 4096;

    Node*
    value()
    {
        if (++depth_ > kMaxDepth)
            throw ParseError("nesting too deep", pos_);
        pos_ = json::skipWhitespace(s_, pos_);
        if (pos_ >= s_.size())
            throw ParseError("unexpected end of input", pos_);
        Node* n = nullptr;
        switch (s_[pos_]) {
          case '{':
            n = object();
            break;
          case '[':
            n = array();
            break;
          case '"':
            n = stringNode();
            break;
          case 't':
          case 'f':
            n = literal(Node::Type::Bool);
            break;
          case 'n':
            n = literal(Node::Type::Null);
            break;
          default:
            n = number();
            break;
        }
        --depth_;
        return n;
    }

    Node*
    object()
    {
        Node* n = doc_.newNode(Node::Type::Object);
        size_t start = pos_;
        ++pos_; // '{'
        pos_ = json::skipWhitespace(s_, pos_);
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            n->text = s_.substr(start, pos_ - start);
            return n;
        }
        for (;;) {
            pos_ = json::skipWhitespace(s_, pos_);
            if (pos_ >= s_.size() || s_[pos_] != '"')
                throw ParseError("expected attribute name", pos_);
            size_t end = json::scanString(s_, pos_);
            if (end == std::string_view::npos)
                throw ParseError("unterminated attribute name", pos_);
            std::string_view name = s_.substr(pos_ + 1, end - pos_ - 2);
            pos_ = json::skipWhitespace(s_, end);
            if (pos_ >= s_.size() || s_[pos_] != ':')
                throw ParseError("expected ':'", pos_);
            ++pos_;
            n->members.emplace_back(name, value());
            pos_ = json::skipWhitespace(s_, pos_);
            if (pos_ >= s_.size())
                throw ParseError("unterminated object", pos_);
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                n->text = s_.substr(start, pos_ - start);
                return n;
            }
            throw ParseError("expected ',' or '}'", pos_);
        }
    }

    Node*
    array()
    {
        Node* n = doc_.newNode(Node::Type::Array);
        size_t start = pos_;
        ++pos_; // '['
        pos_ = json::skipWhitespace(s_, pos_);
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            n->text = s_.substr(start, pos_ - start);
            return n;
        }
        for (;;) {
            n->elements.push_back(value());
            pos_ = json::skipWhitespace(s_, pos_);
            if (pos_ >= s_.size())
                throw ParseError("unterminated array", pos_);
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                n->text = s_.substr(start, pos_ - start);
                return n;
            }
            throw ParseError("expected ',' or ']'", pos_);
        }
    }

    Node*
    stringNode()
    {
        size_t end = json::scanString(s_, pos_);
        if (end == std::string_view::npos)
            throw ParseError("unterminated string", pos_);
        Node* n = doc_.newNode(Node::Type::String);
        n->text = s_.substr(pos_, end - pos_);
        pos_ = end;
        return n;
    }

    Node*
    literal(Node::Type type)
    {
        std::string_view word =
            s_[pos_] == 't' ? "true" : s_[pos_] == 'f' ? "false" : "null";
        if (s_.substr(pos_, word.size()) != word)
            throw ParseError("bad literal", pos_);
        Node* n = doc_.newNode(type);
        n->text = s_.substr(pos_, word.size());
        pos_ += word.size();
        return n;
    }

    Node*
    number()
    {
        size_t end = json::scanPrimitive(s_, pos_);
        if (end == pos_)
            throw ParseError("expected a value", pos_);
        Node* n = doc_.newNode(Node::Type::Number);
        n->text = s_.substr(pos_, end - pos_);
        pos_ = end;
        return n;
    }

    std::string_view s_;
    Document& doc_;
    size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

void
parse(std::string_view json, Document& doc)
{
    Parser(json, doc).run();
}

} // namespace jsonski::dom
