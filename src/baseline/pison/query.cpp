#include "baseline/pison/query.h"

#include <algorithm>

#include "json/text.h"
#include "util/error.h"

namespace jsonski::pison {
namespace {

void
trim(std::string_view s, size_t& b, size_t& e)
{
    while (b < e && json::isWhitespace(s[b]))
        ++b;
    while (e > b && json::isWhitespace(s[e - 1]))
        --e;
}

/** Attribute name (quotes excluded) that precedes the colon at @p c. */
std::string_view
keyBeforeColon(std::string_view s, size_t colon)
{
    size_t i = colon;
    while (i > 0 && json::isWhitespace(s[i - 1]))
        --i;
    if (i == 0 || s[i - 1] != '"')
        throw ParseError("expected attribute name before ':'", colon);
    size_t key_end = i - 1;
    size_t j = key_end;
    for (;;) {
        if (j == 0)
            throw ParseError("unterminated attribute name", key_end);
        --j;
        if (s[j] == '"') {
            size_t k = j;
            size_t backslashes = 0;
            while (k > 0 && s[k - 1] == '\\') {
                ++backslashes;
                --k;
            }
            if (backslashes % 2 == 0)
                break;
        }
    }
    return s.substr(j + 1, key_end - j - 1);
}

class Evaluator
{
  public:
    Evaluator(const LeveledIndex& index, std::string_view input,
              const path::PathQuery& query, path::MatchSink* sink)
        : ix_(index), s_(input), q_(query), sink_(sink)
    {}

    size_t
    run()
    {
        return walk(0, s_.size(), 0);
    }

  private:
    size_t
    walk(size_t b, size_t e, size_t step)
    {
        trim(s_, b, e);
        if (b >= e)
            return 0;
        if (step == q_.size()) {
            if (sink_)
                sink_->onMatch(s_.substr(b, e - b));
            return 1;
        }
        const path::PathStep& st = q_[step];
        if (st.kind == path::PathStep::Kind::Key) {
            if (s_[b] != '{')
                return 0;
            const auto& colons = ix_.colons(step);
            const auto& commas = ix_.commas(step);
            size_t pos = b + 1;
            for (;;) {
                size_t c = LeveledIndex::nextBit(colons, pos, e);
                if (c >= e)
                    return 0;
                size_t next_comma = LeveledIndex::nextBit(commas, c + 1, e);
                size_t value_b = c + 1;
                size_t value_e = next_comma < e ? next_comma : e - 1;
                if (keyBeforeColon(s_, c) == st.key)
                    return walk(value_b, value_e, step + 1);
                if (next_comma >= e)
                    return 0;
                pos = next_comma + 1;
            }
        }
        if (s_[b] != '[')
            return 0;
        const auto& commas = ix_.commas(step);
        size_t idx = 0;
        size_t cur_b = b + 1;
        size_t matches = 0;
        for (;;) {
            size_t next_comma = LeveledIndex::nextBit(commas, cur_b, e);
            size_t elem_e = next_comma < e ? next_comma : e - 1;
            if (st.coversIndex(idx))
                matches += walk(cur_b, elem_e, step + 1);
            if (idx + 1 >= st.hi)
                break; // beyond the index range: nothing more can match
            if (next_comma >= e)
                break;
            cur_b = next_comma + 1;
            ++idx;
        }
        return matches;
    }

    const LeveledIndex& ix_;
    std::string_view s_;
    const path::PathQuery& q_;
    path::MatchSink* sink_;
};

} // namespace

size_t
evaluate(const LeveledIndex& index, std::string_view input,
         const path::PathQuery& query, path::MatchSink* sink)
{
    if (query.hasDescendant()) {
        // The leveled bitmaps index separators at *fixed* levels; a
        // step that matches at any depth has no corresponding level.
        // (The original Pison shares this restriction.)
        throw PathError(
            "the leveled-bitmap index does not support '..'");
    }
    if (query.hasFilter()) {
        // A filter's verdict needs the candidate's *content*, which
        // the separator bitmaps deliberately do not index.
        throw PathError(
            "the leveled-bitmap index does not support filters");
    }
    return Evaluator(index, input, query, sink).run();
}

size_t
parseAndQuery(std::string_view json, const path::PathQuery& query,
              path::MatchSink* sink)
{
    LeveledIndex index =
        LeveledIndex::build(json, std::max<size_t>(query.size(), 1));
    return evaluate(index, json, query, sink);
}

size_t
parseAndQueryParallel(std::string_view json, const path::PathQuery& query,
                      ThreadPool& pool, path::MatchSink* sink)
{
    LeveledIndex index = LeveledIndex::buildParallel(
        json, std::max<size_t>(query.size(), 1), pool);
    return evaluate(index, json, query, sink);
}

} // namespace jsonski::pison
