#include "baseline/pison/leveled_index.h"

#include <algorithm>

#include "index/structural_scan.h"
#include "util/bits.h"

namespace jsonski::pison {

using intervals::BlockBits;
using intervals::ClassifierCarry;
using intervals::kBlockSize;

namespace {

BlockBits
classifyAt(std::string_view json, size_t base, ClassifierCarry& carry)
{
    size_t len = std::min(kBlockSize, json.size() - base);
    return len == kBlockSize
               ? intervals::classifyBlock(json.data() + base, carry)
               : intervals::classifyPartialBlock(json.data() + base, len,
                                                 carry);
}

} // namespace

LeveledIndex::LeveledIndex(size_t input_size, size_t levels)
    : input_size_(input_size), levels_(levels)
{
    size_t words = (input_size + kBlockSize - 1) / kBlockSize;
    colon_.assign(levels, std::vector<uint64_t>(words, 0));
    comma_.assign(levels, std::vector<uint64_t>(words, 0));
}

void
LeveledIndex::scanRange(std::string_view json, size_t begin_block,
                        size_t end_block, ClassifierCarry carry,
                        int64_t depth)
{
    // Recording policy: Pison keeps only colon/comma bits within its
    // fixed level budget.  The depth walk itself is the shared scan
    // core (index/structural_scan.h).
    struct Sink
    {
        LeveledIndex& idx;
        void onOpen(size_t, uint64_t, int64_t, bool) {}
        void onClose(size_t, uint64_t, int64_t, bool) {}
        void
        onSeparator(size_t blk, uint64_t bit, int64_t level, bool colon)
        {
            if (level < 0 || level >= static_cast<int64_t>(idx.levels_))
                return;
            auto& rows = colon ? idx.colon_ : idx.comma_;
            rows[static_cast<size_t>(level)][blk] |= bit;
        }
    } sink{*this};
    for (size_t blk = begin_block; blk < end_block; ++blk) {
        BlockBits b = classifyAt(json, blk * kBlockSize, carry);
        depth = index::scanStructuralBlock(b, blk, depth, sink);
    }
}

LeveledIndex
LeveledIndex::build(std::string_view json, size_t levels)
{
    LeveledIndex index(json.size(), levels);
    size_t blocks = (json.size() + kBlockSize - 1) / kBlockSize;
    index.scanRange(json, 0, blocks, ClassifierCarry{}, 0);
    return index;
}

LeveledIndex
LeveledIndex::buildParallel(std::string_view json, size_t levels,
                            ThreadPool& pool)
{
    size_t blocks = (json.size() + kBlockSize - 1) / kBlockSize;
    size_t chunks = std::min(pool.size(), std::max<size_t>(blocks, 1));
    if (chunks <= 1 || blocks < chunks * 4)
        return build(json, levels);

    LeveledIndex index(json.size(), levels);
    size_t per = blocks / chunks;
    std::vector<size_t> chunk_begin(chunks + 1);
    for (size_t t = 0; t < chunks; ++t)
        chunk_begin[t] = t * per;
    chunk_begin[chunks] = blocks;

    // Pass 1 (parallel): per-chunk depth delta and exit carry,
    // speculating a clean (outside-string, unescaped) chunk entry.
    std::vector<int64_t> delta(chunks, 0);
    std::vector<ClassifierCarry> exit_carry(chunks);
    auto pass1 = [&](size_t t, ClassifierCarry carry) {
        int64_t d = 0;
        for (size_t blk = chunk_begin[t]; blk < chunk_begin[t + 1]; ++blk) {
            BlockBits b = classifyAt(json, blk * kBlockSize, carry);
            d += bits::popcount(b.open_brace | b.open_bracket);
            d -= bits::popcount(b.close_brace | b.close_bracket);
        }
        delta[t] = d;
        exit_carry[t] = carry;
    };
    pool.parallelFor(chunks, [&](size_t t) { pass1(t, ClassifierCarry{}); });

    // Sequential fix-up: chain the real carries; re-run the rare chunk
    // whose speculative entry was wrong.
    std::vector<ClassifierCarry> entry_carry(chunks);
    std::vector<int64_t> entry_depth(chunks, 0);
    for (size_t t = 1; t < chunks; ++t) {
        ClassifierCarry actual = exit_carry[t - 1];
        entry_carry[t] = actual;
        if (actual.prev_in_string != 0 || actual.prev_escaped != 0)
            pass1(t, actual); // mis-speculated: redo with the real entry
        entry_depth[t] = entry_depth[t - 1] + delta[t - 1];
    }

    // Pass 2 (parallel): fill the bitmaps with known entries.  Chunks
    // are block-aligned, so no two chunks write the same word.
    pool.parallelFor(chunks, [&](size_t t) {
        index.scanRange(json, chunk_begin[t], chunk_begin[t + 1],
                        entry_carry[t], entry_depth[t]);
    });
    return index;
}

size_t
LeveledIndex::nextBit(const std::vector<uint64_t>& bitmap, size_t from,
                      size_t to)
{
    if (from >= to)
        return to;
    size_t word = from / kBlockSize;
    size_t last_word = (to - 1) / kBlockSize;
    uint64_t cur = bitmap[word] &
                   ~bits::maskBelow(static_cast<int>(from % kBlockSize));
    for (;;) {
        if (cur != 0) {
            size_t pos = word * kBlockSize +
                         static_cast<size_t>(bits::trailingZeros(cur));
            return pos < to ? pos : to;
        }
        if (word == last_word)
            return to;
        cur = bitmap[++word];
    }
}

size_t
LeveledIndex::memoryBytes() const
{
    size_t words = (input_size_ + kBlockSize - 1) / kBlockSize;
    return 2 * levels_ * words * sizeof(uint64_t);
}

} // namespace jsonski::pison
