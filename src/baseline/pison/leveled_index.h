/**
 * @file
 * Leveled colon/comma bitmap index — the Pison/Mison-class baseline
 * (paper §2, Figure 3-(b)).
 *
 * For each nesting level up to the query depth, one bitmap marks the
 * colons (attribute separators) and one the commas (element
 * separators) at exactly that level, across the whole record.  Query
 * evaluation then jumps from separator to separator without parsing.
 * Building the index is the preprocessing cost Pison pays before any
 * query runs; Pison's contribution is building it in parallel for a
 * single large record, reproduced here by buildParallel() (see
 * DESIGN.md for the speculation substitution).
 *
 * Level convention: separators directly inside the root container are
 * level 0; each container nesting adds one.
 */
#ifndef JSONSKI_BASELINE_PISON_LEVELED_INDEX_H
#define JSONSKI_BASELINE_PISON_LEVELED_INDEX_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "intervals/classifier.h"
#include "util/thread_pool.h"

namespace jsonski::pison {

/** See file comment. */
class LeveledIndex
{
  public:
    /** Build serially for @p levels levels. */
    static LeveledIndex build(std::string_view json, size_t levels);

    /**
     * Build with chunk-parallel classification: a parallel pre-pass
     * computes per-chunk depth deltas and string-state carries
     * (speculating that chunks start outside strings and re-running
     * the rare mis-speculated chunk), then a parallel second pass
     * fills the level bitmaps with known absolute start depths.
     */
    static LeveledIndex buildParallel(std::string_view json, size_t levels,
                                      ThreadPool& pool);

    size_t levels() const { return levels_; }
    size_t inputSize() const { return input_size_; }

    /** Bitmap words for colons at @p level. */
    const std::vector<uint64_t>&
    colons(size_t level) const
    {
        return colon_[level];
    }

    /** Bitmap words for commas at @p level. */
    const std::vector<uint64_t>&
    commas(size_t level) const
    {
        return comma_[level];
    }

    /**
     * Position of the first set bit of @p bitmap in [from, to), or
     * @p to when none.
     */
    static size_t nextBit(const std::vector<uint64_t>& bitmap, size_t from,
                          size_t to);

    /** Approximate heap bytes held by the index (for Figure 13). */
    size_t memoryBytes() const;

  private:
    LeveledIndex(size_t input_size, size_t levels);

    void scanRange(std::string_view json, size_t begin_block,
                   size_t end_block, intervals::ClassifierCarry carry,
                   int64_t depth);

    size_t input_size_ = 0;
    size_t levels_ = 0;
    std::vector<std::vector<uint64_t>> colon_;
    std::vector<std::vector<uint64_t>> comma_;
};

} // namespace jsonski::pison

#endif // JSONSKI_BASELINE_PISON_LEVELED_INDEX_H
