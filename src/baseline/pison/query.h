/**
 * @file
 * Path-query evaluation over the leveled bitmap index (Pison-class
 * baseline): attribute lookup jumps colon-to-colon, element lookup
 * comma-to-comma, at exactly the query's nesting level.
 */
#ifndef JSONSKI_BASELINE_PISON_QUERY_H
#define JSONSKI_BASELINE_PISON_QUERY_H

#include <string_view>

#include "baseline/pison/leveled_index.h"
#include "path/ast.h"
#include "path/matches.h"
#include "util/thread_pool.h"

namespace jsonski::pison {

/** Evaluate @p query over a built index. */
size_t evaluate(const LeveledIndex& index, std::string_view input,
                const path::PathQuery& query,
                path::MatchSink* sink = nullptr);

/** Full baseline pipeline: build the index, then query. */
size_t parseAndQuery(std::string_view json, const path::PathQuery& query,
                     path::MatchSink* sink = nullptr);

/** Pipeline with parallel index construction (Figure 10's Pison(16)). */
size_t parseAndQueryParallel(std::string_view json,
                             const path::PathQuery& query, ThreadPool& pool,
                             path::MatchSink* sink = nullptr);

} // namespace jsonski::pison

#endif // JSONSKI_BASELINE_PISON_QUERY_H
