/**
 * @file
 * JPStream-baseline engine: character-by-character streaming query
 * evaluation (serial), plus the parallel single-large-record mode used
 * by Figure 10's JPStream(16) bars.
 *
 * The paper's JPStream parallelizes one record with *speculative*
 * execution.  Our reproduction substitutes an equivalent-shape
 * two-phase scheme (documented in DESIGN.md): a cheap bit-parallel
 * pre-scan finds token-aligned chunk boundaries (positions of
 * structural metacharacters outside strings), the expensive
 * character-level tokenization then runs per chunk in parallel, and a
 * token-level pass drives the dual-stack PDA sequentially.
 */
#ifndef JSONSKI_BASELINE_JPSTREAM_ENGINE_H
#define JSONSKI_BASELINE_JPSTREAM_ENGINE_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "path/ast.h"
#include "path/automaton.h"
#include "path/matches.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace jsonski::jpstream {

/** Raw lexical token produced by the parallel tokenizer. */
struct Token
{
    enum class Type : uint8_t {
        ObjStart,
        ObjEnd,
        AryStart,
        AryEnd,
        Colon,
        Comma,
        String,
        Primitive,
    };

    Type type;
    uint64_t begin; ///< byte offset of the token's first character
    uint64_t end;   ///< one past the last character
};

/** See file comment. */
class Engine
{
  public:
    explicit Engine(path::PathQuery query) : qa_(std::move(query))
    {
        // The dual-stack PDA tracks ONE deterministic state per level;
        // the nondeterministic surface (filters, interior descendants)
        // needs the multiset driver and stays out of this baseline.
        if (qa_.query().hasFilter())
            throw PathError(
                "the JPStream baseline does not support filters");
        if (qa_.query().hasInteriorDescendant())
            throw PathError("the JPStream baseline only supports a "
                            "terminal '..' step");
    }

    /** Evaluate over one record, character by character. */
    size_t run(std::string_view json, path::MatchSink* sink = nullptr) const;

    /**
     * Parallel single-record evaluation: parallel tokenization over
     * @p pool, then a sequential token-level PDA pass.
     */
    size_t runParallel(std::string_view json, ThreadPool& pool,
                       path::MatchSink* sink = nullptr) const;

    const path::QueryAutomaton& automaton() const { return qa_; }

  private:
    path::QueryAutomaton qa_;
};

/**
 * Find token-aligned chunk split positions: for each nominal boundary,
 * the next structural metacharacter outside any string.  Exposed for
 * testing.  Returns n+1 positions (first = 0, last = json size).
 */
std::vector<size_t> tokenSplits(std::string_view json, size_t chunks);

/**
 * Tokenize bytes of @p json so that every token starting in
 * [begin, end) is appended to @p out.  @p begin must be token-aligned.
 * Exposed for testing.
 */
void tokenizeChunk(std::string_view json, size_t begin, size_t end,
                   std::vector<Token>& out);

} // namespace jsonski::jpstream

#endif // JSONSKI_BASELINE_JPSTREAM_ENGINE_H
