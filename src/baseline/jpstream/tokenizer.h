/**
 * @file
 * Character-by-character SAX-style JSON parser — the detailed-parsing
 * substrate of the JPStream baseline (paper §2, "streaming scheme").
 *
 * Every byte of the input is examined: strings are scanned character
 * by character, primitives are delimited by scalar scans, and the
 * syntax stack is maintained explicitly.  No bitmaps, no SIMD — this
 * is deliberately the work profile the paper attributes to prior
 * streaming evaluators.
 *
 * The handler is a template parameter so the PDA evaluator is invoked
 * without virtual dispatch; any overhead measured against JSONSki is
 * parsing work, not abstraction tax.
 *
 * Handler concept:
 *   void onObjectStart(size_t pos);
 *   void onObjectEnd(size_t end_pos);        // one past '}'
 *   void onArrayStart(size_t pos);
 *   void onArrayEnd(size_t end_pos);         // one past ']'
 *   void onKey(std::string_view name);       // quotes excluded
 *   void onPrimitive(size_t begin, size_t end);
 */
#ifndef JSONSKI_BASELINE_JPSTREAM_TOKENIZER_H
#define JSONSKI_BASELINE_JPSTREAM_TOKENIZER_H

#include <string_view>
#include <vector>

#include "json/text.h"
#include "util/error.h"

namespace jsonski::jpstream {

/**
 * Parse @p s, delivering events to @p h. Throws ParseError.
 *
 * The loop advances exactly one character per iteration through a
 * single state switch — the character-level DFA work profile of
 * automaton-based streaming evaluators.
 */
template <class Handler>
void
saxParse(std::string_view s, Handler& h)
{
    enum class St : uint8_t {
        ExpectValue,      ///< a value must start here (after ',' / ':')
        ExpectFirstValue, ///< just after '[': value or ']'
        ExpectFirstKey,   ///< just after '{': key or '}'
        ExpectKey,        ///< after ',' in an object
        ExpectColon,      ///< after a key
        AfterValue,       ///< a value just ended
        KeyStr,           ///< inside an attribute name
        KeyEsc,           ///< after '\\' in an attribute name
        ValStr,           ///< inside a string value
        ValEsc,           ///< after '\\' in a string value
        Prim,             ///< inside a number / literal
    };

    std::vector<char> stack; // '{' or '['
    stack.reserve(64);
    St st = St::ExpectValue;
    size_t token_start = 0;
    const size_t n = s.size();

    // Shared handling for the character following a completed value.
    auto afterValue = [&](char c, size_t pos, St& state) {
        if (json::isWhitespace(c)) {
            state = St::AfterValue;
            return;
        }
        if (stack.empty())
            throw ParseError("trailing characters", pos);
        if (stack.back() == '{') {
            if (c == ',') {
                state = St::ExpectKey;
            } else if (c == '}') {
                h.onObjectEnd(pos + 1);
                stack.pop_back();
                state = St::AfterValue;
            } else {
                throw ParseError("expected ',' or '}'", pos);
            }
        } else {
            if (c == ',') {
                state = St::ExpectValue;
            } else if (c == ']') {
                h.onArrayEnd(pos + 1);
                stack.pop_back();
                state = St::AfterValue;
            } else {
                throw ParseError("expected ',' or ']'", pos);
            }
        }
    };

    for (size_t i = 0; i < n; ++i) {
        char c = s[i];
        switch (st) {
          case St::ExpectFirstValue:
            if (c == ']') {
                h.onArrayEnd(i + 1);
                stack.pop_back();
                st = St::AfterValue;
                break;
            }
            [[fallthrough]];
          case St::ExpectValue:
            if (json::isWhitespace(c))
                break;
            if (c == '{') {
                h.onObjectStart(i);
                stack.push_back('{');
                st = St::ExpectFirstKey;
            } else if (c == '[') {
                h.onArrayStart(i);
                stack.push_back('[');
                st = St::ExpectFirstValue;
            } else if (c == '"') {
                token_start = i;
                st = St::ValStr;
            } else if (c == ',' || c == ':' || c == '}' || c == ']') {
                throw ParseError("expected a value", i);
            } else {
                token_start = i;
                st = St::Prim;
            }
            break;
          case St::ExpectFirstKey:
            if (json::isWhitespace(c))
                break;
            if (c == '}') {
                h.onObjectEnd(i + 1);
                stack.pop_back();
                st = St::AfterValue;
            } else if (c == '"') {
                token_start = i;
                st = St::KeyStr;
            } else {
                throw ParseError("expected attribute name", i);
            }
            break;
          case St::ExpectKey:
            if (json::isWhitespace(c))
                break;
            if (c == '"') {
                token_start = i;
                st = St::KeyStr;
            } else {
                throw ParseError("expected attribute name", i);
            }
            break;
          case St::ExpectColon:
            if (json::isWhitespace(c))
                break;
            if (c != ':')
                throw ParseError("expected ':'", i);
            st = St::ExpectValue;
            break;
          case St::AfterValue:
            afterValue(c, i, st);
            break;
          case St::KeyStr:
            if (c == '"') {
                h.onKey(s.substr(token_start + 1, i - token_start - 1));
                st = St::ExpectColon;
            } else if (c == '\\') {
                st = St::KeyEsc;
            }
            break;
          case St::KeyEsc:
            st = St::KeyStr;
            break;
          case St::ValStr:
            if (c == '"') {
                h.onPrimitive(token_start, i + 1);
                st = St::AfterValue;
            } else if (c == '\\') {
                st = St::ValEsc;
            }
            break;
          case St::ValEsc:
            st = St::ValStr;
            break;
          case St::Prim:
            if (json::isWhitespace(c) || c == ',' || c == '}' ||
                c == ']' || c == ':' || c == '{' || c == '[' ||
                c == '"') {
                h.onPrimitive(token_start, i);
                afterValue(c, i, st);
            }
            break;
        }
    }

    // End of input: only a completed root value is acceptable.
    if (st == St::Prim && stack.empty()) {
        h.onPrimitive(token_start, n);
        return;
    }
    if (st == St::AfterValue && stack.empty())
        return;
    throw ParseError(n == 0 ? "empty input" : "unexpected end of input",
                     n);
}

} // namespace jsonski::jpstream

#endif // JSONSKI_BASELINE_JPSTREAM_TOKENIZER_H
