#include "baseline/jpstream/engine.h"

#include <algorithm>

#include "baseline/jpstream/pda.h"
#include "baseline/jpstream/tokenizer.h"
#include "intervals/classifier.h"
#include "util/bits.h"
#include "util/error.h"

namespace jsonski::jpstream {

size_t
Engine::run(std::string_view json, path::MatchSink* sink) const
{
    PdaEvaluator eval(qa_, json, sink);
    saxParse(json, eval);
    return eval.matches();
}

std::vector<size_t>
tokenSplits(std::string_view json, size_t chunks)
{
    using namespace jsonski::intervals;
    std::vector<size_t> splits;
    splits.push_back(0);
    if (chunks <= 1 || json.size() < chunks * 2 * kBlockSize) {
        splits.push_back(json.size());
        return splits;
    }
    size_t nominal = json.size() / chunks;
    ClassifierCarry carry;
    for (size_t base = 0; base < json.size() && splits.size() < chunks;
         base += kBlockSize) {
        size_t len = std::min(kBlockSize, json.size() - base);
        BlockBits b = len == kBlockSize
                          ? classifyBlock(json.data() + base, carry)
                          : classifyPartialBlock(json.data() + base, len,
                                                 carry);
        uint64_t structural = b.structural();
        while (splits.size() < chunks) {
            // Target position for the next split; never at or before the
            // previous one.
            size_t boundary =
                std::max(splits.size() * nominal, splits.back() + 1);
            if (boundary >= base + len)
                break; // the boundary lies in a later block
            uint64_t cand = structural;
            if (boundary > base)
                cand &= ~bits::maskBelow(static_cast<int>(boundary - base));
            if (cand == 0)
                break; // no structural char here; continue in next block
            splits.push_back(base +
                             static_cast<size_t>(bits::trailingZeros(cand)));
        }
    }
    splits.push_back(json.size());
    return splits;
}

void
tokenizeChunk(std::string_view json, size_t begin, size_t end,
              std::vector<Token>& out)
{
    size_t pos = begin;
    for (;;) {
        pos = json::skipWhitespace(json, pos);
        if (pos >= end)
            return;
        char c = json[pos];
        switch (c) {
          case '{':
            out.push_back({Token::Type::ObjStart, pos, pos + 1});
            ++pos;
            break;
          case '}':
            out.push_back({Token::Type::ObjEnd, pos, pos + 1});
            ++pos;
            break;
          case '[':
            out.push_back({Token::Type::AryStart, pos, pos + 1});
            ++pos;
            break;
          case ']':
            out.push_back({Token::Type::AryEnd, pos, pos + 1});
            ++pos;
            break;
          case ':':
            out.push_back({Token::Type::Colon, pos, pos + 1});
            ++pos;
            break;
          case ',':
            out.push_back({Token::Type::Comma, pos, pos + 1});
            ++pos;
            break;
          case '"': {
            size_t send = json::scanString(json, pos);
            if (send == std::string_view::npos)
                throw ParseError("unterminated string", pos);
            out.push_back({Token::Type::String, pos, send});
            pos = send;
            break;
          }
          default: {
            size_t pend = json::scanPrimitive(json, pos);
            if (pend == pos)
                throw ParseError("unexpected character", pos);
            out.push_back({Token::Type::Primitive, pos, pend});
            pos = pend;
            break;
          }
        }
    }
}

namespace {

/**
 * Sequential token-level grammar pass: reconstructs key/value context
 * from the token stream and replays it into the dual-stack PDA.  The
 * JSON grammar guarantees that inside an object, a string following
 * '{' or ',' is an attribute name.
 */
size_t
evaluateTokens(std::string_view json,
               const std::vector<std::vector<Token>>& streams,
               const path::QueryAutomaton& qa, path::MatchSink* sink)
{
    PdaEvaluator eval(qa, json, sink);
    std::vector<char> stack;
    bool expect_key = false;

    for (const auto& stream : streams) {
        for (const Token& t : stream) {
            switch (t.type) {
              case Token::Type::String:
                if (expect_key) {
                    eval.onKey(
                        json.substr(t.begin + 1, t.end - t.begin - 2));
                    expect_key = false;
                } else {
                    eval.onPrimitive(t.begin, t.end);
                }
                break;
              case Token::Type::Colon:
                break; // the key was already delivered
              case Token::Type::Primitive:
                eval.onPrimitive(t.begin, t.end);
                break;
              case Token::Type::ObjStart:
                eval.onObjectStart(t.begin);
                stack.push_back('{');
                expect_key = true;
                break;
              case Token::Type::ObjEnd:
                if (stack.empty())
                    throw ParseError("unbalanced '}'", t.begin);
                eval.onObjectEnd(t.end);
                stack.pop_back();
                expect_key = false;
                break;
              case Token::Type::AryStart:
                eval.onArrayStart(t.begin);
                stack.push_back('[');
                expect_key = false;
                break;
              case Token::Type::AryEnd:
                if (stack.empty())
                    throw ParseError("unbalanced ']'", t.begin);
                eval.onArrayEnd(t.end);
                stack.pop_back();
                expect_key = false;
                break;
              case Token::Type::Comma:
                expect_key = !stack.empty() && stack.back() == '{';
                break;
            }
        }
    }
    if (!stack.empty())
        throw ParseError("unterminated container", json.size());
    return eval.matches();
}

} // namespace

size_t
Engine::runParallel(std::string_view json, ThreadPool& pool,
                    path::MatchSink* sink) const
{
    std::vector<size_t> splits = tokenSplits(json, pool.size());
    size_t chunks = splits.size() - 1;
    std::vector<std::vector<Token>> streams(chunks);
    pool.parallelFor(chunks, [&](size_t i) {
        streams[i].reserve((splits[i + 1] - splits[i]) / 8 + 8);
        tokenizeChunk(json, splits[i], splits[i + 1], streams[i]);
    });
    return evaluateTokens(json, streams, qa_, sink);
}

} // namespace jsonski::jpstream
