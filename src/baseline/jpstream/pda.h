/**
 * @file
 * Dual-stack pushdown evaluator — the query side of the JPStream
 * baseline (paper Figures 4/5).
 *
 * The SAX parser (tokenizer.h) owns the *syntax* stack; this handler
 * owns the *query* stack: one frame per container level holding the
 * automaton state that was current when the container was entered,
 * plus the element counter for arrays ([Ary-S]/[Ary-E]/[Com] rules).
 * Every token makes a transition — nothing is skipped, which is
 * exactly the cost profile the paper contrasts fast-forwarding against.
 */
#ifndef JSONSKI_BASELINE_JPSTREAM_PDA_H
#define JSONSKI_BASELINE_JPSTREAM_PDA_H

#include <cstddef>
#include <string_view>
#include <vector>

#include "path/automaton.h"
#include "path/matches.h"

namespace jsonski::jpstream {

/** SAX handler evaluating one query; see file comment. */
class PdaEvaluator
{
  public:
    PdaEvaluator(const path::QueryAutomaton& qa, std::string_view input,
                 path::MatchSink* sink)
        : qa_(qa), input_(input), sink_(sink), value_state_(qa.start())
    {
        stack_.reserve(64);
    }

    size_t matches() const { return matches_; }

    // --- SAX events --------------------------------------------------

    void
    onObjectStart(size_t pos)
    {
        maybeBeginEmit(pos);
        stack_.push_back(Frame{value_state_, 0, false});
        value_state_ = path::QueryAutomaton::kUnmatched; // until onKey
    }

    void
    onObjectEnd(size_t end_pos)
    {
        stack_.pop_back();
        maybeFinishEmit(end_pos);
        valueDone();
    }

    void
    onArrayStart(size_t pos)
    {
        maybeBeginEmit(pos);
        int array_state = value_state_;
        stack_.push_back(Frame{array_state, 0, true});
        value_state_ = qa_.onElement(array_state, 0);
    }

    void
    onArrayEnd(size_t end_pos)
    {
        stack_.pop_back();
        maybeFinishEmit(end_pos);
        valueDone();
    }

    void
    onKey(std::string_view name)
    {
        value_state_ = qa_.onKey(stack_.back().state, name);
    }

    void
    onPrimitive(size_t begin, size_t end)
    {
        if (qa_.isAccept(value_state_))
            emit(begin, end);
        valueDone();
    }

  private:
    struct Frame
    {
        int state;    ///< automaton state the container was entered with
        size_t idx;   ///< element counter (arrays)
        bool is_array;
    };

    /** An accepted container whose span is pending its close. */
    struct EmitFrame
    {
        size_t depth; ///< stack_ size at the container's start
        size_t start; ///< input offset of its opener
    };

    void
    valueDone()
    {
        if (stack_.empty())
            return;
        Frame& top = stack_.back();
        if (top.is_array) {
            ++top.idx; // [Com]
            value_state_ = qa_.onElement(top.state, top.idx);
        } else {
            value_state_ = path::QueryAutomaton::kUnmatched;
        }
    }

    void
    maybeBeginEmit(size_t pos)
    {
        // Frames may nest: a terminal descendant step can accept a
        // container inside an already-accepted container.
        if (qa_.isAccept(value_state_))
            emit_frames_.push_back(EmitFrame{stack_.size(), pos});
    }

    void
    maybeFinishEmit(size_t end_pos)
    {
        if (!emit_frames_.empty() &&
            emit_frames_.back().depth == stack_.size()) {
            emit(emit_frames_.back().start, end_pos);
            emit_frames_.pop_back();
        }
    }

    void
    emit(size_t begin, size_t end)
    {
        ++matches_;
        if (sink_)
            sink_->onMatch(input_.substr(begin, end - begin));
    }

    const path::QueryAutomaton& qa_;
    std::string_view input_;
    path::MatchSink* sink_;
    std::vector<Frame> stack_;
    std::vector<EmitFrame> emit_frames_;
    int value_state_;
    size_t matches_ = 0;
};

} // namespace jsonski::jpstream

#endif // JSONSKI_BASELINE_JPSTREAM_PDA_H
