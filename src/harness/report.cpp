#include "harness/report.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "json/writer.h"
#include "kernels/kernel.h"
#include "telemetry/export.h"

namespace jsonski::harness {

namespace {

std::string
renderNumber(double v)
{
    if (!std::isfinite(v))
        return "0"; // JSON has no inf/nan; a bench metric never should
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string
renderNumber(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
renderString(std::string_view s)
{
    json::Writer w;
    w.string(s);
    return w.take();
}

} // namespace

void
BenchReport::beginRow(std::string_view query, std::string_view engine)
{
    Row r;
    r.query = query;
    r.engine = engine;
    rows_.push_back(std::move(r));
}

void
BenchReport::rawField(std::string_view name, std::string json_value)
{
    assert(!rows_.empty() && "beginRow() before attaching metrics");
    rows_.back().fields.emplace_back(std::string(name),
                                     std::move(json_value));
}

void
BenchReport::metric(std::string_view name, double value)
{
    rawField(name, renderNumber(value));
}

void
BenchReport::metric(std::string_view name, uint64_t value)
{
    rawField(name, renderNumber(value));
}

void
BenchReport::text(std::string_view name, std::string_view value)
{
    rawField(name, renderString(value));
}

void
BenchReport::timing(const Timing& t, size_t bytes_processed)
{
    metric("seconds", t.seconds);
    metric("median_seconds", t.median);
    metric("rel_stddev", t.rel_stddev);
    metric("runs", static_cast<uint64_t>(t.runs));
    metric("matches", static_cast<uint64_t>(t.matches));
    if (t.seconds > 0 && bytes_processed > 0) {
        metric("gbps", static_cast<double>(bytes_processed) / t.seconds /
                           1e9);
    }
}

void
BenchReport::ffStats(const ski::FastForwardStats& s, size_t input_len)
{
    json::Writer w;
    w.beginObject();
    for (size_t g = 0; g < ski::kGroupCount; ++g) {
        w.key("G" + std::to_string(g + 1));
        w.number(static_cast<int64_t>(s.skipped[g]));
    }
    for (size_t g = 0; g < ski::kGroupCount; ++g) {
        w.key("G" + std::to_string(g + 1) + "_ratio");
        w.number(s.ratio(static_cast<ski::Group>(g), input_len));
    }
    w.key("overall_ratio");
    w.number(s.overallRatio(input_len));
    w.endObject();
    rawField("ff", w.take());
}

void
BenchReport::telemetry(const telemetry::Registry& r)
{
    rawField("telemetry", telemetry::toJson(r));
}

std::string
BenchReport::toJson() const
{
    json::Writer w;
    w.beginObject();
    w.key("schema");
    w.string("jsonski-bench-v1");
    w.key("artifact");
    w.string(artifact_);
    w.key("description");
    w.string(description_);
    w.key("input_bytes");
    w.number(static_cast<int64_t>(input_bytes_));
    w.key("threads");
    w.number(static_cast<int64_t>(threads_));
    w.key("telemetry_compiled");
    w.boolean(telemetry::kEnabled);
    w.key("kernel");
    w.string(kernels::activeName());
    w.key("rows");
    w.beginArray();
    for (const Row& row : rows_) {
        w.beginObject();
        w.key("query");
        w.string(row.query);
        w.key("engine");
        w.string(row.engine);
        for (const auto& [name, value] : row.fields) {
            w.key(name);
            w.raw(value);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.take();
}

bool
BenchReport::write() const
{
    std::string dir;
    if (const char* env = std::getenv("JSONSKI_BENCH_JSON_DIR"))
        dir = env;
    std::string path = dir.empty()
                           ? "BENCH_" + artifact_ + ".json"
                           : dir + "/BENCH_" + artifact_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench report: cannot write %s\n",
                     path.c_str());
        return false;
    }
    std::string body = toJson();
    size_t n = std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    if (n != body.size()) {
        std::fprintf(stderr, "bench report: short write to %s\n",
                     path.c_str());
        return false;
    }
    std::printf("[bench json: %s]\n", path.c_str());
    return true;
}

} // namespace jsonski::harness
