/**
 * @file
 * Experiment-runner utilities shared by the bench binaries: timing,
 * dataset structural statistics (Table 4), small-record execution
 * (serial and parallel), and fixed-width table printing.
 */
#ifndef JSONSKI_HARNESS_RUNNER_H
#define JSONSKI_HARNESS_RUNNER_H

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "gen/datasets.h"
#include "harness/engines.h"
#include "path/ast.h"
#include "util/thread_pool.h"

namespace jsonski::harness {

/** Result of one timed evaluation. */
struct Timing
{
    double seconds = 0;    ///< best (minimum) wall-clock time
    double median = 0;     ///< median over all timed runs
    double rel_stddev = 0; ///< stddev / mean over all timed runs
    size_t matches = 0;
    int runs = 0;          ///< timed runs taken (warm-up excluded)
};

/**
 * Run @p fn (returning a match count) @p repeats times and keep the
 * best wall-clock time — the paper-standard way to suppress timer and
 * scheduler noise for single-digit-second runs.  Median and relative
 * stddev over the same runs are reported so noisy hosts are visible in
 * BENCH_*.json trend data.
 *
 * @throws std::runtime_error if the match count differs between runs:
 *         a nondeterministic engine invalidates the whole measurement
 *         and must fail loudly, not silently report one of the counts.
 */
Timing timeBest(const std::function<size_t()>& fn, int repeats = 3);

/** Structural statistics of a JSON input (Table 4's columns). */
struct DatasetStats
{
    size_t objects = 0;
    size_t arrays = 0;
    size_t attributes = 0;
    size_t primitives = 0;
    size_t max_depth = 0;
};

/** Compute statistics with a full SAX pass. */
DatasetStats computeStats(std::string_view json);

/** Evaluate a per-record query over every record, serially. */
size_t runSmallSerial(const Engine& engine, const gen::SmallRecords& data,
                      const path::PathQuery& query);

/** Evaluate a per-record query with record-level parallelism. */
size_t runSmallParallel(const Engine& engine, const gen::SmallRecords& data,
                        const path::PathQuery& query, ThreadPool& pool);

/**
 * Benchmark input size in bytes: first CLI argument in MB if present,
 * else the JSONSKI_BENCH_MB environment variable, else @p default_mb.
 */
size_t benchBytes(int argc, char** argv, size_t default_mb);

/** Thread count for parallel benches: JSONSKI_BENCH_THREADS or 16. */
size_t benchThreads();

// --- Minimal fixed-width table printer --------------------------------

/** Print a rule + header row for the given column labels/widths. */
void printTableHeader(const std::vector<std::string>& labels,
                      const std::vector<int>& widths);

/** Print one row of cells with the same widths. */
void printTableRow(const std::vector<std::string>& cells,
                   const std::vector<int>& widths);

/** Format seconds with 4 significant digits. */
std::string fmtSeconds(double s);

/** Format a ratio as a percentage with two decimals. */
std::string fmtPercent(double r);

/** Format bytes as MB with one decimal. */
std::string fmtMb(size_t bytes);

} // namespace jsonski::harness

#endif // JSONSKI_HARNESS_RUNNER_H
