#include "harness/runner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "baseline/jpstream/tokenizer.h"
#include "util/stopwatch.h"

namespace jsonski::harness {

Timing
timeBest(const std::function<size_t()>& fn, int repeats)
{
    // Warm-up: page-in, caches, and (important on power-managed
    // hosts) sustained work so the clock ramps before timing starts.
    {
        Stopwatch warm;
        for (int i = 0; i < 16 && warm.seconds() < 0.1; ++i)
            fn();
    }
    Timing best;
    best.seconds = 1e300;
    // At least `repeats` runs; short runs repeat further (up to a time
    // budget) so frequency scaling and scheduler noise average out.
    constexpr double kBudget = 0.2;
    constexpr int kMaxReps = 9;
    double spent = 0;
    std::vector<double> samples;
    samples.reserve(kMaxReps);
    for (int i = 0; i < kMaxReps && (i < repeats || spent < kBudget);
         ++i) {
        Stopwatch sw;
        size_t matches = fn();
        double s = sw.seconds();
        spent += s;
        if (i == 0) {
            best.matches = matches;
        } else if (matches != best.matches) {
            // A benchmark that cannot agree with itself on the answer
            // is measuring a bug, not performance.
            throw std::runtime_error(
                "timeBest: match count varies across repeats (" +
                std::to_string(best.matches) + " vs " +
                std::to_string(matches) + ")");
        }
        samples.push_back(s);
        best.seconds = std::min(best.seconds, s);
    }
    best.runs = static_cast<int>(samples.size());
    std::sort(samples.begin(), samples.end());
    size_t n = samples.size();
    best.median = n % 2 == 1
                      ? samples[n / 2]
                      : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
    double mean = 0;
    for (double s : samples)
        mean += s;
    mean /= static_cast<double>(n);
    double var = 0;
    for (double s : samples)
        var += (s - mean) * (s - mean);
    var /= static_cast<double>(n);
    best.rel_stddev = mean > 0 ? std::sqrt(var) / mean : 0;
    return best;
}

namespace {

/** SAX handler for Table 4 statistics. */
struct StatsHandler
{
    DatasetStats stats;
    size_t depth = 0;

    void
    enter()
    {
        ++depth;
        stats.max_depth = std::max(stats.max_depth, depth);
    }

    void
    onObjectStart(size_t)
    {
        ++stats.objects;
        enter();
    }
    void onObjectEnd(size_t) { --depth; }
    void
    onArrayStart(size_t)
    {
        ++stats.arrays;
        enter();
    }
    void onArrayEnd(size_t) { --depth; }
    void onKey(std::string_view) { ++stats.attributes; }
    void onPrimitive(size_t, size_t) { ++stats.primitives; }
};

} // namespace

DatasetStats
computeStats(std::string_view json)
{
    StatsHandler h;
    jpstream::saxParse(json, h);
    return h.stats;
}

size_t
runSmallSerial(const Engine& engine, const gen::SmallRecords& data,
               const path::PathQuery& query)
{
    size_t matches = 0;
    for (size_t i = 0; i < data.count(); ++i)
        matches += engine.run(data.record(i), query);
    return matches;
}

size_t
runSmallParallel(const Engine& engine, const gen::SmallRecords& data,
                 const path::PathQuery& query, ThreadPool& pool)
{
    std::atomic<size_t> matches{0};
    pool.parallelFor(data.count(), [&](size_t i) {
        matches.fetch_add(engine.run(data.record(i), query),
                          std::memory_order_relaxed);
    });
    return matches.load();
}

size_t
benchBytes(int argc, char** argv, size_t default_mb)
{
    size_t mb = default_mb;
    if (argc > 1) {
        mb = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));
    } else if (const char* env = std::getenv("JSONSKI_BENCH_MB")) {
        mb = static_cast<size_t>(std::strtoull(env, nullptr, 10));
    }
    if (mb == 0)
        mb = default_mb;
    return mb * 1024 * 1024;
}

size_t
benchThreads()
{
    if (const char* env = std::getenv("JSONSKI_BENCH_THREADS")) {
        size_t t = static_cast<size_t>(std::strtoull(env, nullptr, 10));
        if (t > 0)
            return t;
    }
    return 16; // the paper's machine: 16 cores
}

void
printTableHeader(const std::vector<std::string>& labels,
                 const std::vector<int>& widths)
{
    printTableRow(labels, widths);
    int total = 0;
    for (int w : widths)
        total += w + 2;
    std::string rule(static_cast<size_t>(total), '-');
    std::printf("%s\n", rule.c_str());
}

void
printTableRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths)
{
    for (size_t i = 0; i < cells.size(); ++i)
        std::printf("%-*s  ", widths[i], cells[i].c_str());
    std::printf("\n");
}

std::string
fmtSeconds(double s)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", s);
    return buf;
}

std::string
fmtPercent(double r)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f%%", r * 100.0);
    return buf;
}

std::string
fmtMb(size_t bytes)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f MB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
    return buf;
}

} // namespace jsonski::harness
