/**
 * @file
 * Machine-readable benchmark output: every bench binary builds one
 * BenchReport alongside its printed table and writes it to
 * `BENCH_<artifact>.json` (schema `jsonski-bench-v1`) so performance
 * can be tracked across commits — `scripts/split_bench_output.py
 * --diff old.json new.json` compares two such files.
 *
 * Shape:
 *
 *   {"schema": "jsonski-bench-v1",
 *    "artifact": "fig10_large_record",
 *    "description": "...", "input_bytes": N, "threads": N,
 *    "telemetry_compiled": bool, "kernel": "avx2",
 *    "rows": [{"query": "BB1", "engine": "JSONSki",
 *              "seconds": s, "gbps": g, ...,
 *              "ff": {"G1": bytes, ..., "overall_ratio": r},
 *              "telemetry": {...}}, ...]}
 *
 * Rows are flat name→value maps; which metrics a row carries depends
 * on the bench.  The destination directory is $JSONSKI_BENCH_JSON_DIR
 * when set, else the current working directory.
 */
#ifndef JSONSKI_HARNESS_REPORT_H
#define JSONSKI_HARNESS_REPORT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/runner.h"
#include "ski/stats.h"
#include "telemetry/telemetry.h"

namespace jsonski::harness {

/** See file comment. */
class BenchReport
{
  public:
    BenchReport(std::string_view artifact, std::string_view description)
        : artifact_(artifact), description_(description)
    {}

    void inputBytes(size_t bytes) { input_bytes_ = bytes; }
    void threads(size_t n) { threads_ = n; }

    /** Start a new row; subsequent metric calls attach to it. */
    void beginRow(std::string_view query, std::string_view engine);

    /** Attach one numeric metric to the current row. */
    void metric(std::string_view name, double value);
    void metric(std::string_view name, uint64_t value);

    /** Attach one string-valued field to the current row. */
    void text(std::string_view name, std::string_view value);

    /** seconds / median / rel_stddev / runs / matches / gbps. */
    void timing(const Timing& t, size_t bytes_processed);

    /** Per-group skipped bytes + ratios + overall ratio ("ff"). */
    void ffStats(const ski::FastForwardStats& s, size_t input_len);

    /** Full telemetry registry export ("telemetry"). */
    void telemetry(const telemetry::Registry& r);

    /** Whole report as a JSON document. */
    std::string toJson() const;

    /**
     * Write BENCH_<artifact>.json into $JSONSKI_BENCH_JSON_DIR (or the
     * cwd) and print the path; returns false (with a diagnostic on
     * stderr) if the file cannot be written.
     */
    bool write() const;

  private:
    struct Row
    {
        std::string query;
        std::string engine;
        /** Field name → pre-rendered JSON value, in insertion order. */
        std::vector<std::pair<std::string, std::string>> fields;
    };

    void rawField(std::string_view name, std::string json_value);

    std::string artifact_;
    std::string description_;
    size_t input_bytes_ = 0;
    size_t threads_ = 1;
    std::vector<Row> rows_;
};

} // namespace jsonski::harness

#endif // JSONSKI_HARNESS_REPORT_H
