/**
 * @file
 * Uniform engine interface over the five evaluated methods (paper
 * Table 2): JSONSki plus the four baseline reimplementations.  The
 * names match the paper's method names; every implementation here is
 * a from-scratch reproduction of that method's *algorithmic class*
 * (see DESIGN.md), not the original third-party code.
 */
#ifndef JSONSKI_HARNESS_ENGINES_H
#define JSONSKI_HARNESS_ENGINES_H

#include <memory>
#include <string_view>
#include <vector>

#include "gen/datasets.h"
#include "path/ast.h"
#include "path/matches.h"
#include "ski/stats.h"
#include "util/thread_pool.h"

namespace jsonski::harness {

/** The five evaluated methods, in the paper's presentation order. */
enum class Method {
    JpStream,
    RapidJsonLike, ///< conventional DOM parser + tree traversal
    SimdJsonLike,  ///< two-stage SIMD tape parser
    PisonLike,     ///< leveled structural bitmap index
    JsonSki,
};

/** All methods, in Figure 10's bar order. */
inline constexpr Method kAllMethods[] = {
    Method::JpStream, Method::RapidJsonLike, Method::SimdJsonLike,
    Method::PisonLike, Method::JsonSki,
};

/** Uniform evaluation interface. */
class Engine
{
  public:
    virtual ~Engine() = default;

    /** Display name, as printed in the result tables. */
    virtual std::string_view name() const = 0;

    /**
     * Evaluate @p query over a single record; preprocessing-scheme
     * engines build their data structure inside this call (that cost
     * is the point of the comparison).
     */
    virtual size_t run(std::string_view json, const path::PathQuery& query,
                       path::MatchSink* sink = nullptr) const = 0;

    /** True when the engine has a parallel single-record mode. */
    virtual bool supportsParallelLarge() const { return false; }

    /** Parallel single-record evaluation (JPStream / Pison only). */
    virtual size_t
    runParallelLarge(std::string_view json, const path::PathQuery& query,
                     ThreadPool& pool) const
    {
        (void)pool;
        return run(json, query);
    }
};

/** Construct one engine. */
std::unique_ptr<Engine> makeEngine(Method m);

/** Construct all five. */
std::vector<std::unique_ptr<Engine>> makeAllEngines();

/**
 * JSONSki run that also returns the per-group fast-forward statistics
 * (Table 6 instrumentation).
 */
size_t runJsonSkiWithStats(std::string_view json,
                           const path::PathQuery& query,
                           ski::FastForwardStats& stats);

/** One evaluation query of Table 5. */
struct QuerySpec
{
    std::string_view id;          ///< e.g. "TT1"
    gen::DatasetId dataset;       ///< dataset the query runs on
    std::string_view large_query; ///< query text for the large record
    std::string_view small_query; ///< per-record text; empty = excluded
};

/** The twelve queries of Table 5. */
const std::vector<QuerySpec>& paperQueries();

} // namespace jsonski::harness

#endif // JSONSKI_HARNESS_ENGINES_H
