#include "harness/engines.h"

#include "baseline/dom/query.h"
#include "baseline/jpstream/engine.h"
#include "baseline/pison/query.h"
#include "baseline/tape/query.h"
#include "ski/streamer.h"

namespace jsonski::harness {
namespace {

class JsonSkiEngine : public Engine
{
  public:
    std::string_view name() const override { return "JSONSki"; }

    size_t
    run(std::string_view json, const path::PathQuery& query,
        path::MatchSink* sink) const override
    {
        ski::Streamer streamer(query);
        return streamer.run(json, sink).matches;
    }
};

class JpStreamEngine : public Engine
{
  public:
    std::string_view name() const override { return "JPStream"; }

    size_t
    run(std::string_view json, const path::PathQuery& query,
        path::MatchSink* sink) const override
    {
        jpstream::Engine e(query);
        return e.run(json, sink);
    }

    bool supportsParallelLarge() const override { return true; }

    size_t
    runParallelLarge(std::string_view json, const path::PathQuery& query,
                     ThreadPool& pool) const override
    {
        jpstream::Engine e(query);
        return e.runParallel(json, pool);
    }
};

class DomEngine : public Engine
{
  public:
    std::string_view name() const override { return "RapidJSON-like"; }

    size_t
    run(std::string_view json, const path::PathQuery& query,
        path::MatchSink* sink) const override
    {
        return dom::parseAndQuery(json, query, sink);
    }
};

class TapeEngine : public Engine
{
  public:
    std::string_view name() const override { return "simdjson-like"; }

    size_t
    run(std::string_view json, const path::PathQuery& query,
        path::MatchSink* sink) const override
    {
        return tape::parseAndQuery(json, query, sink);
    }
};

class PisonEngine : public Engine
{
  public:
    std::string_view name() const override { return "Pison-like"; }

    size_t
    run(std::string_view json, const path::PathQuery& query,
        path::MatchSink* sink) const override
    {
        return pison::parseAndQuery(json, query, sink);
    }

    bool supportsParallelLarge() const override { return true; }

    size_t
    runParallelLarge(std::string_view json, const path::PathQuery& query,
                     ThreadPool& pool) const override
    {
        return pison::parseAndQueryParallel(json, query, pool);
    }
};

} // namespace

std::unique_ptr<Engine>
makeEngine(Method m)
{
    switch (m) {
      case Method::JsonSki:
        return std::make_unique<JsonSkiEngine>();
      case Method::JpStream:
        return std::make_unique<JpStreamEngine>();
      case Method::RapidJsonLike:
        return std::make_unique<DomEngine>();
      case Method::SimdJsonLike:
        return std::make_unique<TapeEngine>();
      case Method::PisonLike:
        return std::make_unique<PisonEngine>();
    }
    return nullptr;
}

std::vector<std::unique_ptr<Engine>>
makeAllEngines()
{
    std::vector<std::unique_ptr<Engine>> engines;
    for (Method m : kAllMethods)
        engines.push_back(makeEngine(m));
    return engines;
}

size_t
runJsonSkiWithStats(std::string_view json, const path::PathQuery& query,
                    ski::FastForwardStats& stats)
{
    ski::Streamer streamer(query);
    ski::StreamResult r = streamer.run(json);
    stats.merge(r.stats);
    return r.matches;
}

const std::vector<QuerySpec>&
paperQueries()
{
    using gen::DatasetId;
    static const std::vector<QuerySpec> queries = {
        {"TT1", DatasetId::TT, "$[*].en.urls[*].url", "$.en.urls[*].url"},
        {"TT2", DatasetId::TT, "$[*].text", "$.text"},
        {"BB1", DatasetId::BB, "$.pd[*].cp[1:3].id", "$.cp[1:3].id"},
        {"BB2", DatasetId::BB, "$.pd[*].vc[*].cha", "$.vc[*].cha"},
        {"GMD1", DatasetId::GMD, "$[*].rt[*].lg[*].st[*].dt.tx",
         "$.rt[*].lg[*].st[*].dt.tx"},
        {"GMD2", DatasetId::GMD, "$[*].atm", "$.atm"},
        {"NSPL1", DatasetId::NSPL, "$.mt.vw.co[*].nm", ""},
        {"NSPL2", DatasetId::NSPL, "$.dt[*][*][2:4]", "$[*][2:4]"},
        {"WM1", DatasetId::WM, "$.it[*].bmrpr.pr", "$.bmrpr.pr"},
        {"WM2", DatasetId::WM, "$.it[*].nm", "$.nm"},
        {"WP1", DatasetId::WP, "$[*].cl.P150[*].ms.pty",
         "$.cl.P150[*].ms.pty"},
        {"WP2", DatasetId::WP, "$[10:21].cl.P150[*].ms.pty", ""},
    };
    return queries;
}

} // namespace jsonski::harness
