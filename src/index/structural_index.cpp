#include "index/structural_index.h"

#include <cassert>
#include <cstdio>
#include <cstring>

#include "index/structural_scan.h"
#include "intervals/classifier.h"

namespace jsonski::index {

using intervals::BlockBits;
using intervals::kBlockSize;

// --------------------------------------------------------------------
// ContentHasher

void
ContentHasher::update(const char* data, size_t n)
{
    total_ += n;
    const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
    // Drain into the staging word first so feed granularity can't
    // shift word boundaries (chunked and resident builds must agree).
    while (npend_ != 0 && n != 0) {
        pending_ |= uint64_t(*p++) << (8 * npend_);
        --n;
        if (++npend_ == 8) {
            mix(pending_);
            pending_ = 0;
            npend_ = 0;
        }
    }
    while (n >= 8) {
        uint64_t w;
        std::memcpy(&w, p, 8);
        mix(w);
        p += 8;
        n -= 8;
    }
    while (n != 0) {
        pending_ |= uint64_t(*p++) << (8 * npend_);
        ++npend_;
        --n;
    }
}

uint64_t
ContentHasher::finish()
{
    if (npend_ != 0) {
        mix(pending_);
        pending_ = 0;
        npend_ = 0;
    }
    // Folding the length separates prefixes of each other ("a" vs
    // "a\0") even though the tail word is zero-padded.
    mix(total_);
    uint64_t x = h_;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

uint64_t
hashContent(std::string_view doc)
{
    ContentHasher h;
    h.update(doc.data(), doc.size());
    return h.finish();
}

// --------------------------------------------------------------------
// StructuralIndex queries

size_t
StructuralIndex::next1(const std::vector<uint64_t>& a, size_t from) const
{
    size_t word = from / 64;
    if (word >= words_)
        return kNone;
    uint64_t cur = a[word] & ~bits::maskBelow(static_cast<int>(from % 64));
    for (;;) {
        if (cur != 0)
            return word * 64 +
                   static_cast<size_t>(bits::trailingZeros(cur));
        if (++word >= words_)
            return kNone;
        cur = a[word];
    }
}

size_t
StructuralIndex::next2(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b, size_t from) const
{
    size_t word = from / 64;
    if (word >= words_)
        return kNone;
    uint64_t cur = (a[word] | b[word]) &
                   ~bits::maskBelow(static_cast<int>(from % 64));
    for (;;) {
        if (cur != 0)
            return word * 64 +
                   static_cast<size_t>(bits::trailingZeros(cur));
        if (++word >= words_)
            return kNone;
        cur = a[word] | b[word];
    }
}

size_t
StructuralIndex::countCommas(size_t level, size_t from, size_t to) const
{
    if (from >= to)
        return 0;
    const std::vector<uint64_t>& bm = rows_[level].comma;
    size_t w0 = from / 64;
    size_t w1 = (to - 1) / 64;
    size_t n = 0;
    for (size_t w = w0; w <= w1 && w < words_; ++w) {
        uint64_t cur = bm[w];
        if (w == w0)
            cur &= ~bits::maskBelow(static_cast<int>(from % 64));
        if (w == w1 && to % 64 != 0)
            cur &= bits::maskBelow(static_cast<int>(to % 64));
        n += static_cast<size_t>(bits::popcount(cur));
    }
    return n;
}

size_t
StructuralIndex::selectComma(size_t level, size_t from, size_t to,
                             size_t k) const
{
    if (from >= to || k == 0)
        return kNone;
    const std::vector<uint64_t>& bm = rows_[level].comma;
    size_t w0 = from / 64;
    size_t w1 = (to - 1) / 64;
    for (size_t w = w0; w <= w1 && w < words_; ++w) {
        uint64_t cur = bm[w];
        if (w == w0)
            cur &= ~bits::maskBelow(static_cast<int>(from % 64));
        if (w == w1 && to % 64 != 0)
            cur &= bits::maskBelow(static_cast<int>(to % 64));
        size_t c = static_cast<size_t>(bits::popcount(cur));
        if (c < k) {
            k -= c;
            continue;
        }
        while (--k != 0)
            cur = bits::clearLowest(cur);
        return w * 64 + static_cast<size_t>(bits::trailingZeros(cur));
    }
    return kNone;
}

size_t
StructuralIndex::memoryBytes() const
{
    size_t bytes = sizeof(*this);
    bytes += (entry_in_string_.size() + entry_escaped_.size()) *
             sizeof(uint64_t);
    for (const LevelRows& r : rows_)
        bytes += (r.open.size() + r.close.size() + r.colon.size() +
                  r.comma.size()) *
                 sizeof(uint64_t);
    return bytes;
}

// --------------------------------------------------------------------
// IndexBuilder

namespace {

void
setBit(std::vector<uint64_t>& bm, size_t i)
{
    size_t w = i / 64;
    if (bm.size() <= w)
        bm.resize(w + 1, 0);
    bm[w] |= uint64_t{1} << (i % 64);
}

bool
getBit(const std::vector<uint64_t>& bm, size_t i)
{
    size_t w = i / 64;
    return w < bm.size() && ((bm[w] >> (i % 64)) & 1) != 0;
}

void
assignBit(std::vector<uint64_t>& bm, size_t i, bool v)
{
    size_t w = i / 64;
    if (bm.size() <= w)
        bm.resize(w + 1, 0);
    if (v)
        bm[w] |= uint64_t{1} << (i % 64);
    else
        bm[w] &= ~(uint64_t{1} << (i % 64));
}

} // namespace

IndexBuilder::IndexBuilder(size_t max_levels)
    : max_levels_(std::min(max_levels, StructuralIndex::kMaxLevels))
{
    if (max_levels_ == 0)
        max_levels_ = 1;
}

void
IndexBuilder::feed(const char* data, size_t n)
{
    assert(!finished_);
    hasher_.update(data, n);
    total_bytes_ += n;
    while (n != 0) {
        if (tail_len_ != 0 || n < kBlockSize) {
            size_t take = std::min(kBlockSize - tail_len_, n);
            std::memcpy(tail_ + tail_len_, data, take);
            tail_len_ += take;
            data += take;
            n -= take;
            if (tail_len_ == kBlockSize) {
                processBlock(tail_, kBlockSize);
                tail_len_ = 0;
            }
        } else {
            processBlock(data, kBlockSize);
            data += kBlockSize;
            n -= kBlockSize;
        }
    }
}

void
IndexBuilder::processBlock(const char* data, size_t len)
{
    size_t blk = blocks_;
    // Entry carries are recorded *before* classification: they are
    // what a warping cursor needs to resume the string layer at this
    // block.
    if (carry_.prev_in_string != 0)
        setBit(entry_in_string_, blk);
    if (carry_.prev_escaped != 0)
        setBit(entry_escaped_, blk);
    BlockBits b = len == kBlockSize
                      ? intervals::classifyBlock(data, carry_)
                      : intervals::classifyPartialBlock(data, len, carry_);
    ++blocks_;
    depth_ = scanStructuralBlock(b, blk, depth_, *this);
}

void
IndexBuilder::setRowBit(std::vector<uint64_t> LevelRows::* row,
                        size_t blk, uint64_t bit, int64_t level)
{
    if (level < 0 || static_cast<size_t>(level) >= max_levels_)
        return;
    size_t l = static_cast<size_t>(level);
    if (l >= rows_.size())
        rows_.resize(l + 1);
    std::vector<uint64_t>& v = rows_[l].*row;
    if (v.size() <= blk)
        v.resize(blk + 1, 0);
    v[blk] |= bit;
}

void
IndexBuilder::onOpen(size_t blk, uint64_t bit, int64_t level, bool brace)
{
    // The opener's pre-increment depth is its type-stack slot; its
    // matching closer arrives at exactly this level.
    int64_t slot = level + 1;
    if (slot < 0) {
        clean_ = false; // depth underflowed earlier
        return;
    }
    assignBit(type_stack_, static_cast<size_t>(slot), brace);
    if (static_cast<uint64_t>(slot) + 1 > max_depth_)
        max_depth_ = static_cast<uint64_t>(slot) + 1;
    setRowBit(&LevelRows::open, blk, bit, level);
}

void
IndexBuilder::onClose(size_t blk, uint64_t bit, int64_t level, bool brace)
{
    if (level < 0) {
        clean_ = false; // closer without an opener
        return;
    }
    if (getBit(type_stack_, static_cast<size_t>(level)) != brace)
        clean_ = false; // '}' closing '[' or vice versa
    setRowBit(&LevelRows::close, blk, bit, level);
}

void
IndexBuilder::onSeparator(size_t blk, uint64_t bit, int64_t level,
                          bool colon)
{
    if (level < 0) {
        clean_ = false; // separator outside any container
        return;
    }
    setRowBit(colon ? &LevelRows::colon : &LevelRows::comma, blk, bit,
              level);
}

StructuralIndex
IndexBuilder::finish()
{
    assert(!finished_);
    finished_ = true;
    if (tail_len_ != 0) {
        processBlock(tail_, tail_len_);
        tail_len_ = 0;
    }
    if (depth_ != 0 || carry_.prev_in_string != 0)
        clean_ = false; // unbalanced or in-string at EOF

    StructuralIndex idx;
    idx.content_hash_ = hasher_.finish();
    idx.doc_size_ = total_bytes_;
    idx.max_depth_ = max_depth_;
    idx.usable_ = clean_;
    idx.words_ = blocks_;
    if (clean_) {
        // Pad every row to the full word count so the query walkers
        // never bounds-check per word.
        for (LevelRows& r : rows_) {
            r.open.resize(blocks_, 0);
            r.close.resize(blocks_, 0);
            r.colon.resize(blocks_, 0);
            r.comma.resize(blocks_, 0);
        }
        size_t entry_words = (blocks_ + 63) / 64;
        entry_in_string_.resize(entry_words, 0);
        entry_escaped_.resize(entry_words, 0);
        idx.rows_ = std::move(rows_);
        idx.entry_in_string_ = std::move(entry_in_string_);
        idx.entry_escaped_ = std::move(entry_escaped_);
    }
    return idx;
}

StructuralIndex
StructuralIndex::build(std::string_view json, size_t max_levels)
{
    IndexBuilder b(max_levels);
    b.feed(json);
    return b.finish();
}

StructuralIndex
StructuralIndex::build(intervals::ChunkSource& src, size_t max_levels,
                       size_t chunk_bytes)
{
    IndexBuilder b(max_levels);
    std::vector<char> buf(std::max<size_t>(chunk_bytes, 1));
    for (;;) {
        size_t n = src.read(buf.data(), buf.size());
        if (n == 0)
            break;
        b.feed(buf.data(), n);
    }
    return b.finish();
}

// --------------------------------------------------------------------
// Serialization

namespace {

constexpr char kMagic[4] = {'J', 'S', 'K', 'I'};
/** Fixed-size prefix before the bitmap payload. */
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8 + 4 + 4;
/** Sanity ceiling: a corrupt doc_size must not drive allocations. */
constexpr uint64_t kMaxDocSize = uint64_t{1} << 48;

void
appendU32(std::string& out, uint32_t v)
{
    char b[4];
    std::memcpy(b, &v, 4);
    out.append(b, 4);
}

void
appendU64(std::string& out, uint64_t v)
{
    char b[8];
    std::memcpy(b, &v, 8);
    out.append(b, 8);
}

void
appendWords(std::string& out, const std::vector<uint64_t>& v)
{
    for (uint64_t w : v)
        appendU64(out, w);
}

struct Reader
{
    std::string_view bytes;
    size_t off = 0;

    void
    need(size_t n, const char* what)
    {
        if (bytes.size() - off < n)
            throw IndexError(bytes.size(),
                             std::string("truncated ") + what);
    }

    uint32_t
    u32(const char* what)
    {
        need(4, what);
        uint32_t v;
        std::memcpy(&v, bytes.data() + off, 4);
        off += 4;
        return v;
    }

    uint64_t
    u64(const char* what)
    {
        need(8, what);
        uint64_t v;
        std::memcpy(&v, bytes.data() + off, 8);
        off += 8;
        return v;
    }

    void
    words(std::vector<uint64_t>& out, size_t n, const char* what)
    {
        need(n * 8, what);
        out.resize(n);
        if (n != 0)
            std::memcpy(out.data(), bytes.data() + off, n * 8);
        off += n * 8;
    }
};

} // namespace

std::string
StructuralIndex::serialize() const
{
    std::string out;
    size_t entry_words = (words_ + 63) / 64;
    out.reserve(kHeaderBytes +
                rows_.size() * 4 * words_ * 8 + 2 * entry_words * 8 + 8);
    out.append(kMagic, 4);
    appendU32(out, kFormatVersion);
    appendU64(out, content_hash_);
    appendU64(out, doc_size_);
    appendU64(out, max_depth_);
    appendU32(out, usable_ ? 1u : 0u);
    appendU32(out, static_cast<uint32_t>(rows_.size()));
    for (const LevelRows& r : rows_) {
        appendWords(out, r.open);
        appendWords(out, r.close);
        appendWords(out, r.colon);
        appendWords(out, r.comma);
    }
    if (usable_) {
        appendWords(out, entry_in_string_);
        appendWords(out, entry_escaped_);
    }
    ContentHasher ck;
    ck.update(out.data(), out.size());
    appendU64(out, ck.finish());
    return out;
}

StructuralIndex
StructuralIndex::deserialize(std::string_view bytes)
{
    Reader r{bytes};
    r.need(4, "magic");
    if (std::memcmp(bytes.data(), kMagic, 4) != 0)
        throw IndexError(0, "bad magic (not a .jski index)");
    r.off = 4;
    uint32_t version = r.u32("version");
    if (version != kFormatVersion)
        throw IndexError(4, "unsupported format version " +
                                std::to_string(version) + " (expected " +
                                std::to_string(kFormatVersion) + ")");
    StructuralIndex idx;
    idx.content_hash_ = r.u64("content hash");
    idx.doc_size_ = r.u64("document size");
    idx.max_depth_ = r.u64("max depth");
    uint32_t flags = r.u32("flags");
    uint32_t levels = r.u32("level count");
    if (idx.doc_size_ > kMaxDocSize)
        throw IndexError(16, "implausible document size");
    if (levels > kMaxLevels)
        throw IndexError(kHeaderBytes - 4,
                         "level count " + std::to_string(levels) +
                             " exceeds limit");
    idx.usable_ = (flags & 1) != 0;
    if (!idx.usable_ && levels != 0)
        throw IndexError(kHeaderBytes - 8,
                         "unusable index carries bitmap payload");
    idx.words_ = (static_cast<size_t>(idx.doc_size_) + 63) / 64;
    size_t entry_words = idx.usable_ ? (idx.words_ + 63) / 64 : 0;
    size_t expected = kHeaderBytes +
                      static_cast<size_t>(levels) * 4 * idx.words_ * 8 +
                      2 * entry_words * 8 + 8;
    if (bytes.size() < expected)
        throw IndexError(bytes.size(),
                         "truncated: expected " + std::to_string(expected) +
                             " bytes, got " + std::to_string(bytes.size()));
    if (bytes.size() > expected)
        throw IndexError(expected, "trailing garbage after index");
    // Verify the checksum before trusting any payload geometry.
    ContentHasher ck;
    ck.update(bytes.data(), bytes.size() - 8);
    uint64_t want;
    std::memcpy(&want, bytes.data() + bytes.size() - 8, 8);
    if (ck.finish() != want)
        throw IndexError(bytes.size() - 8, "checksum mismatch");
    idx.rows_.resize(levels);
    for (LevelRows& row : idx.rows_) {
        r.words(row.open, idx.words_, "open bitmap");
        r.words(row.close, idx.words_, "close bitmap");
        r.words(row.colon, idx.words_, "colon bitmap");
        r.words(row.comma, idx.words_, "comma bitmap");
    }
    if (idx.usable_) {
        r.words(idx.entry_in_string_, entry_words, "entry-carry bitmap");
        r.words(idx.entry_escaped_, entry_words, "entry-carry bitmap");
    }
    return idx;
}

void
saveIndexFile(const StructuralIndex& idx, const std::string& path)
{
    std::string bytes = idx.serialize();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        throw IndexError(0, "cannot open " + path + " for writing");
    size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
    int rc = std::fclose(f);
    if (n != bytes.size() || rc != 0)
        throw IndexError(n, "short write to " + path);
}

StructuralIndex
loadIndexFile(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw IndexError(0, "cannot open " + path);
    std::string bytes;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) != 0)
        bytes.append(buf, n);
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad)
        throw IndexError(bytes.size(), "read error on " + path);
    return StructuralIndex::deserialize(bytes);
}

} // namespace jsonski::index
