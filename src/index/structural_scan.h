/**
 * @file
 * The one structural-scan loop shared by every leveled-bitmap builder.
 *
 * Both the Pison baseline (`baseline/pison/leveled_index.*`) and the
 * cached StructuralIndex (`index/structural_index.*`) walk the same
 * per-block classification output — the string-masked open / close /
 * colon / comma bit-vectors — in offset order, threading a running
 * container depth and recording metacharacters at their *level*
 * (depth - 1, the depth of the container they punctuate).  This header
 * is that walk, templated over a sink so each builder keeps only its
 * own recording policy instead of a second copy of the bit loop.
 *
 * Level convention (shared with the skippers' counting argument,
 * DESIGN.md §14): with `depth` = number of unclosed openers *before*
 * the character,
 *   - an opener sits at level depth-1 (the root opener at level -1),
 *   - a closer sits at level depth-1 as well (its post-decrement
 *     depth), i.e. the same level as the separators inside the
 *     container it closes,
 *   - a colon/comma sits at level depth-1.
 * So everything punctuating one container — its child openers, its
 * separators, and its own closer — shares one level, which is exactly
 * what lets a skipper inside a container at depth D resolve a G4/G5
 * jump with a single next-bit probe at level D-1.
 */
#ifndef JSONSKI_INDEX_STRUCTURAL_SCAN_H
#define JSONSKI_INDEX_STRUCTURAL_SCAN_H

#include <cstdint>

#include "intervals/block.h"
#include "util/bits.h"

namespace jsonski::index {

/**
 * Walk one classified block's structural characters in offset order.
 *
 * Sink interface (all calls receive the block index, the single-bit
 * mask of the character within the block, and the level):
 *   void onOpen(size_t blk, uint64_t bit, int64_t level, bool brace);
 *   void onClose(size_t blk, uint64_t bit, int64_t level, bool brace);
 *   void onSeparator(size_t blk, uint64_t bit, int64_t level,
 *                    bool colon);
 *
 * @param depth Unclosed-opener count entering the block.
 * @return Unclosed-opener count leaving the block (may go negative on
 *         malformed input; sinks that care must track it).
 */
template <typename Sink>
inline int64_t
scanStructuralBlock(const intervals::BlockBits& b, size_t blk,
                    int64_t depth, Sink&& sink)
{
    uint64_t interesting = b.open_brace | b.open_bracket | b.close_brace |
                           b.close_bracket | b.colon | b.comma;
    while (interesting != 0) {
        int off = bits::trailingZeros(interesting);
        interesting = bits::clearLowest(interesting);
        uint64_t bit = uint64_t{1} << off;
        if ((b.open_brace | b.open_bracket) & bit) {
            sink.onOpen(blk, bit, depth - 1, (b.open_brace & bit) != 0);
            ++depth;
        } else if ((b.close_brace | b.close_bracket) & bit) {
            --depth;
            sink.onClose(blk, bit, depth, (b.close_brace & bit) != 0);
        } else {
            sink.onSeparator(blk, bit, depth - 1, (b.colon & bit) != 0);
        }
    }
    return depth;
}

} // namespace jsonski::index

#endif // JSONSKI_INDEX_STRUCTURAL_SCAN_H
