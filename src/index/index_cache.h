/**
 * @file
 * Byte-bounded, shard-locked LRU of StructuralIndexes keyed by content
 * hash — the "build on first query, jump on every later one" half of
 * the cached semi-index design (DESIGN.md §14).
 *
 * The cache never stores documents, only their indexes; the key is the
 * 64-bit content hash, so identical bytes arriving under different
 * names (or from different connections) share one entry.  The build
 * runs under the shard lock (util::ShardedLru), so N racing first
 * queries for one document build the index exactly once — the same
 * contract the plan cache gives compiled queries.  Entries are
 * weighed by StructuralIndex::memoryBytes(), so the capacity bounds
 * resident *bytes*, not entry count; an unusable index (malformed
 * document) is cached too — negative knowledge is what prevents
 * rebuilding the index on every query of a document that can't have
 * one.
 */
#ifndef JSONSKI_INDEX_INDEX_CACHE_H
#define JSONSKI_INDEX_INDEX_CACHE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

#include "index/structural_index.h"
#include "util/sharded_lru.h"

namespace jsonski::index {

/**
 * Counter snapshot of one DocumentIndexCache — summable across the
 * server's per-shard partitions for the `!stats` page.
 */
struct DocumentIndexCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /** Indexes currently resident. */
    size_t entries = 0;
    /** Resident index bytes (the bounded quantity). */
    size_t bytes = 0;

    DocumentIndexCacheStats&
    operator+=(const DocumentIndexCacheStats& o)
    {
        hits += o.hits;
        misses += o.misses;
        evictions += o.evictions;
        entries += o.entries;
        bytes += o.bytes;
        return *this;
    }
};

/** See file comment. */
class DocumentIndexCache
{
  public:
    /** @param capacity_bytes Total resident index bytes (rounded up to
     *         at least one unit per shard; a single oversized index is
     *         still cached rather than thrashed). */
    explicit DocumentIndexCache(size_t capacity_bytes = 64u << 20)
        : lru_(capacity_bytes,
               [](const StructuralIndex& i) { return i.memoryBytes(); })
    {}

    /**
     * Index for exactly these document bytes, building (under the
     * shard lock) on first sight.  The returned index may be
     * !usable(); callers then stream.
     *
     * @param was_hit Out: true when the index came from the cache.
     */
    std::shared_ptr<const StructuralIndex>
    get(std::string_view doc, bool* was_hit = nullptr)
    {
        uint64_t key = hashContent(doc);
        return lru_.getOrBuild(
            key,
            [doc] {
                return std::make_shared<const StructuralIndex>(
                    StructuralIndex::build(doc));
            },
            was_hit);
    }

    uint64_t hits() const { return lru_.hits(); }
    uint64_t misses() const { return lru_.misses(); }
    uint64_t evictions() const { return lru_.evictions(); }
    size_t entries() const { return lru_.entries(); }
    /** Resident index bytes across all shards. */
    size_t bytes() const { return lru_.weight(); }

    DocumentIndexCacheStats
    statsSnapshot() const
    {
        util::LruStats st = lru_.statsSnapshot();
        return DocumentIndexCacheStats{st.hits, st.misses, st.evictions,
                                       st.entries, st.weight};
    }

  private:
    util::ShardedLru<uint64_t, StructuralIndex> lru_;
};

} // namespace jsonski::index

#endif // JSONSKI_INDEX_INDEX_CACHE_H
