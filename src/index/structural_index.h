/**
 * @file
 * Build-once, query-many structural semi-index (DESIGN.md §14).
 *
 * A StructuralIndex is the per-document positional metadata the
 * skippers need to resolve G4/G5 fast-forward targets without
 * rescanning: per-*level* string-masked bitmaps of the open / close /
 * colon / comma characters (one bit per byte, 64-bit words aligned to
 * the cursor's 64-byte blocks; level convention in
 * index/structural_scan.h), plus two per-block classifier-carry
 * bitmaps (in-string / escaped at block entry) so a cursor can resume
 * string-layer classification at an arbitrary block without touching
 * the bytes in between (StreamCursor::warpTo).
 *
 * It is built in one pass by IndexBuilder — a chunk-source-aware
 * generalization of the Pison baseline builder: feed() accepts bytes
 * at any granularity, so the same code path serves whole buffers,
 * ChunkSources, and network bodies.  The builder also stamps identity
 * and safety metadata:
 *
 *  - contentHash()/docSize(): a 64-bit content hash + length, the
 *    cache key and the staleness check (`describes()`) for sidecar
 *    files — an index is only ever consulted for the exact bytes it
 *    was built from.
 *  - usable(): true only when the document is *structurally clean*
 *    (openers/closers balanced, type-matched, never underflowing, not
 *    in-string at EOF).  On unclean documents the bitmaps are dropped
 *    and every consumer falls back to plain streaming, which makes
 *    warm-path behaviour on malformed input trivially identical to
 *    the streaming path.
 *
 * Indexes serialize to a versioned, checksummed sidecar format
 * (`.jski`); deserialize() rejects corrupt / truncated / mismatched
 * input with a typed IndexError carrying the byte offset and reason.
 */
#ifndef JSONSKI_INDEX_STRUCTURAL_INDEX_H
#define JSONSKI_INDEX_STRUCTURAL_INDEX_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "intervals/block.h"
#include "intervals/chunk_source.h"
#include "util/bits.h"

namespace jsonski::index {

/**
 * Deserialization / sidecar-file failure: where in the input it was
 * detected and why.  Deliberately distinct from ParseError — a bad
 * index file is an artifact problem, not a document problem, and
 * callers (jsq, tests) handle the two differently.
 */
class IndexError : public std::runtime_error
{
  public:
    IndexError(size_t offset, const std::string& reason)
        : std::runtime_error("index error at byte " +
                             std::to_string(offset) + ": " + reason),
          offset_(offset), reason_(reason)
    {}

    /** Byte offset within the serialized index (or file). */
    size_t offset() const { return offset_; }
    const std::string& reason() const { return reason_; }

  private:
    size_t offset_;
    std::string reason_;
};

/**
 * Incremental 64-bit content hash (FNV-1a over little-endian words
 * with a splitmix finalizer, length-folded).  Word-at-a-time keeps the
 * warm path's identity check cheap relative to a structural pass; the
 * internal staging buffer makes the digest independent of feed
 * granularity, so chunked and resident builds of the same bytes agree.
 */
class ContentHasher
{
  public:
    void update(const char* data, size_t n);
    /** Seals the digest; the hasher is spent afterwards. */
    uint64_t finish();

  private:
    void
    mix(uint64_t w)
    {
        h_ = (h_ ^ w) * 0x100000001b3ull;
    }

    uint64_t h_ = 0xcbf29ce484222325ull;
    uint64_t pending_ = 0;
    unsigned npend_ = 0;
    uint64_t total_ = 0;
};

/** One-shot convenience over ContentHasher. */
uint64_t hashContent(std::string_view doc);

/** The four structural bitmaps of one level. */
struct LevelRows
{
    std::vector<uint64_t> open;
    std::vector<uint64_t> close;
    std::vector<uint64_t> colon;
    std::vector<uint64_t> comma;
};

/** See file comment. */
class StructuralIndex
{
  public:
    /** Bump when the serialized layout changes. */
    static constexpr uint32_t kFormatVersion = 1;
    /** Levels indexed by default; deeper nesting streams normally. */
    static constexpr size_t kDefaultLevels = 16;
    /** Hard ceiling a deserializer will accept. */
    static constexpr size_t kMaxLevels = 64;
    /** "No such position" result of the next/select queries. */
    static constexpr size_t kNone = std::numeric_limits<size_t>::max();

    StructuralIndex() = default;

    uint64_t contentHash() const { return content_hash_; }
    size_t docSize() const { return static_cast<size_t>(doc_size_); }
    /** Deepest nesting observed (may exceed levels()). */
    uint64_t maxDepth() const { return max_depth_; }
    /** False on structurally unclean documents: always stream. */
    bool usable() const { return usable_; }
    /** Levels with resident bitmaps (0 when not usable()). */
    size_t levels() const { return rows_.size(); }
    /** Resident footprint, the cache weight. */
    size_t memoryBytes() const;

    /** True iff this index was built from exactly these bytes. */
    bool
    describes(std::string_view doc) const
    {
        return doc.size() == docSize() &&
               hashContent(doc) == content_hash_;
    }

    // --- Warm-path queries.  Positions are absolute byte offsets;
    // `from` is inclusive; kNone means no such bit before docSize().
    // All require level < levels().

    /** First closer ('}' or ']') at @p level at/after @p from. */
    size_t
    nextClose(size_t level, size_t from) const
    {
        return next1(rows_[level].close, from);
    }

    /** First ',' or closer at @p level at/after @p from. */
    size_t
    nextCommaOrClose(size_t level, size_t from) const
    {
        return next2(rows_[level].comma, rows_[level].close, from);
    }

    /** First opener or closer at @p level at/after @p from. */
    size_t
    nextOpenOrClose(size_t level, size_t from) const
    {
        return next2(rows_[level].open, rows_[level].close, from);
    }

    /** Number of ',' bits at @p level in [from, to). */
    size_t countCommas(size_t level, size_t from, size_t to) const;

    /**
     * Position of the @p k 'th (1-based) ',' bit at @p level in
     * [from, to), or kNone when fewer than k exist.
     */
    size_t selectComma(size_t level, size_t from, size_t to,
                       size_t k) const;

    /**
     * Classifier carry at the entry of @p block, for resuming the
     * string layer after a jump.  @pre block < ceil(docSize()/64).
     */
    intervals::ClassifierCarry
    carryFor(size_t block) const
    {
        intervals::ClassifierCarry c;
        if (bitAt(entry_in_string_, block))
            c.prev_in_string = ~uint64_t{0};
        if (bitAt(entry_escaped_, block))
            c.prev_escaped = 1;
        return c;
    }

    // --- Sidecar serialization (.jski).

    std::string serialize() const;
    /** @throws IndexError with offset + reason on any defect. */
    static StructuralIndex deserialize(std::string_view bytes);

    // --- Construction.

    static StructuralIndex build(std::string_view json,
                                 size_t max_levels = kDefaultLevels);
    /** Drains @p src; same result as the resident build of the bytes. */
    static StructuralIndex build(intervals::ChunkSource& src,
                                 size_t max_levels = kDefaultLevels,
                                 size_t chunk_bytes = 64 * 1024);

  private:
    friend class IndexBuilder;

    static bool
    bitAt(const std::vector<uint64_t>& bm, size_t i)
    {
        size_t w = i / 64;
        return w < bm.size() && ((bm[w] >> (i % 64)) & 1) != 0;
    }

    size_t next1(const std::vector<uint64_t>& a, size_t from) const;
    size_t next2(const std::vector<uint64_t>& a,
                 const std::vector<uint64_t>& b, size_t from) const;

    uint64_t content_hash_ = 0;
    uint64_t doc_size_ = 0;
    uint64_t max_depth_ = 0;
    bool usable_ = false;
    /** Words per bitmap == ceil(doc_size_/64). */
    size_t words_ = 0;
    std::vector<LevelRows> rows_;
    /** Bit b: classification state entering block b. */
    std::vector<uint64_t> entry_in_string_;
    std::vector<uint64_t> entry_escaped_;
};

/**
 * One-pass, any-granularity builder; see file comment.  The on*
 * callbacks are the structural-scan sink interface and are not part of
 * the public contract.
 */
class IndexBuilder
{
  public:
    explicit IndexBuilder(
        size_t max_levels = StructuralIndex::kDefaultLevels);

    void feed(const char* data, size_t n);
    void feed(std::string_view s) { feed(s.data(), s.size()); }

    /** Seals and returns the index; the builder is spent afterwards. */
    StructuralIndex finish();

    // Scan-sink callbacks (index/structural_scan.h); internal.
    void onOpen(size_t blk, uint64_t bit, int64_t level, bool brace);
    void onClose(size_t blk, uint64_t bit, int64_t level, bool brace);
    void onSeparator(size_t blk, uint64_t bit, int64_t level, bool colon);

  private:
    void processBlock(const char* data, size_t len);
    void setRowBit(std::vector<uint64_t> LevelRows::* row, size_t blk,
                   uint64_t bit, int64_t level);

    size_t max_levels_;
    std::vector<LevelRows> rows_;
    std::vector<uint64_t> entry_in_string_;
    std::vector<uint64_t> entry_escaped_;
    /** Bit per depth slot: 1 = '{' opened it. */
    std::vector<uint64_t> type_stack_;
    intervals::ClassifierCarry carry_;
    int64_t depth_ = 0;
    uint64_t max_depth_ = 0;
    size_t blocks_ = 0;
    bool clean_ = true;
    bool finished_ = false;
    ContentHasher hasher_;
    uint64_t total_bytes_ = 0;
    char tail_[intervals::kBlockSize];
    size_t tail_len_ = 0;
};

/** Write @p idx to @p path. @throws IndexError on I/O failure. */
void saveIndexFile(const StructuralIndex& idx, const std::string& path);

/** Load and validate a sidecar. @throws IndexError on any defect. */
StructuralIndex loadIndexFile(const std::string& path);

} // namespace jsonski::index

#endif // JSONSKI_INDEX_STRUCTURAL_INDEX_H
