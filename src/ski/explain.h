/**
 * @file
 * Query-plan explanation: a human-readable rendering of how the
 * streamer will evaluate a path — the container type expected at each
 * level (the paper's §3.2 type inference) and the fast-forward groups
 * that can fire there.  Useful for understanding Table 6 profiles and
 * for debugging slow queries.
 */
#ifndef JSONSKI_SKI_EXPLAIN_H
#define JSONSKI_SKI_EXPLAIN_H

#include <string>

#include "path/ast.h"

namespace jsonski::ski {

/**
 * Render the evaluation plan of @p query, one line per level, e.g.
 *
 *   $.pd[*].cp[1:3].id
 *     level 0  object : match key "pd" -> value must be ARRAY
 *              [G1 skip non-array attrs] [G2 skip unmatched] [G4 leave
 *              after match]
 *     ...
 */
std::string explain(const path::PathQuery& query);

} // namespace jsonski::ski

#endif // JSONSKI_SKI_EXPLAIN_H
