/**
 * @file
 * Parallel JSONSki for a single large record — the paper's stated
 * future work ("we expect the slowdown would be addressed after
 * speculation is added to JSONSki", §5.2).
 *
 * Queries whose first step selects array elements (`$[*]...`,
 * `$[m:n]...` — every large-record dataset in the evaluation has this
 * shape, and `$.pd[*]...` reaches it after one cheap key hop) are
 * parallelized in two phases:
 *
 *  1. a sequential but bit-parallel *split pass* locates the spans of
 *     the root array's top-level elements (same counting machinery as
 *     the record scanner — no tokenization), and
 *  2. the remaining query steps are evaluated over the element spans
 *     in parallel, each worker running an ordinary Streamer.
 *
 * Matches are merged in document order, so results are identical to
 * the serial streamer.  Queries that never reach an array step fall
 * back to the serial path.
 */
#ifndef JSONSKI_SKI_PARALLEL_H
#define JSONSKI_SKI_PARALLEL_H

#include <cstddef>
#include <string_view>

#include "path/ast.h"
#include "path/matches.h"
#include "util/thread_pool.h"

namespace jsonski::ski {

/** See file comment. */
class ParallelStreamer
{
  public:
    explicit ParallelStreamer(path::PathQuery query)
        : query_(std::move(query))
    {}

    /**
     * Evaluate over one record using @p pool.  Matches are delivered
     * to @p sink in document order after the parallel phase joins.
     */
    size_t run(std::string_view json, ThreadPool& pool,
               path::MatchSink* sink = nullptr) const;

    /**
     * True when the query shape lets run() actually parallelize
     * (a leading array step, possibly after key steps).
     */
    bool parallelizable() const;

    const path::PathQuery& query() const { return query_; }

  private:
    path::PathQuery query_;
};

} // namespace jsonski::ski

#endif // JSONSKI_SKI_PARALLEL_H
